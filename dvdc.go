// Package dvdc is the public face of this repository: a from-scratch
// implementation of Distributed Virtual Diskless Checkpointing (Eckart, He,
// Wu, Aderholdt, Han, Scott — IPDPS workshops 2012), the scheme that treats
// virtual-machine checkpoints as RAID data elements, partitions VMs into
// orthogonal RAID groups across physical nodes, and rotates parity
// responsibility RAID-5 style so a virtualized cluster checkpoints entirely
// in memory — no disk, no dedicated checkpoint hardware.
//
// The facade re-exports the layered internals:
//
//   - Layouts (orthogonal placement, Figs. 1/3/4): NewFirstShotLayout,
//     NewDedicatedLayout, NewDVDCLayout, PaperLayout.
//   - The byte-real protocol: NewCluster builds an in-process cluster of
//     real paged VM memories with per-group parity keepers; checkpoint it,
//     kill nodes, recover.
//   - The analytical model of Section V (corrected): Model, Sweep,
//     OptimalInterval, plus the two overhead models of Fig. 5.
//   - The event simulation: Simulate runs a whole job under Poisson node
//     failures with a scheme's real overhead and recovery costs.
//   - The distributed runtime: NewNode / NewCoordinator speak the DVDC
//     protocol over TCP (see cmd/dvdcnode and cmd/dvdcctl).
//   - The evaluation harness: Experiment regenerates each of the paper's
//     figures and the corroborating tables (see EXPERIMENTS.md).
package dvdc

import (
	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/experiments"
	"dvdc/internal/failure"
	"dvdc/internal/runtime"
	"dvdc/internal/vm"
)

// Layout construction (the paper's three architectures).

// NewFirstShotLayout builds the Fig. 1 architecture: one VM per compute
// node plus a dedicated parity node, a single RAID group.
func NewFirstShotLayout(computeNodes int) (*cluster.Layout, error) {
	return cluster.BuildFirstShot(computeNodes)
}

// NewDedicatedLayout builds the Fig. 3 architecture: orthogonal groups with
// all parity on one dedicated checkpoint node.
func NewDedicatedLayout(computeNodes, vmsPerNode int) (*cluster.Layout, error) {
	return cluster.BuildDedicated(computeNodes, vmsPerNode)
}

// NewDVDCLayout builds the Fig. 4 architecture: orthogonal groups with
// parity rotated across all nodes (stacks scales VMs per node).
func NewDVDCLayout(nodes, stacks, tolerance int) (*cluster.Layout, error) {
	return cluster.BuildDistributed(nodes, stacks, tolerance)
}

// NewDVDCLayoutGroups is NewDVDCLayout with an explicit group size; smaller
// groups leave spare nodes so recovery can preserve orthogonality.
func NewDVDCLayoutGroups(nodes, stacks, tolerance, groupSize int) (*cluster.Layout, error) {
	return cluster.BuildDistributedGroups(nodes, stacks, tolerance, groupSize)
}

// PaperLayout is the exact 4-node / 12-VM configuration of Figs. 4 and 5.
func PaperLayout() (*cluster.Layout, error) { return cluster.Paper12VM() }

// NewCluster builds a byte-real in-process DVDC cluster on a layout: every
// VM is a paged memory image, every group has one parity keeper per parity
// block (XOR at tolerance 1, GF(256) RS beyond) on its layout-assigned
// node. See core.Cluster for the protocol operations: CheckpointRound,
// FailNode/FailNodes, EvacuateNode, RepairNode, Rebalance, VerifyParity.
func NewCluster(layout *cluster.Layout, pagesPerVM, pageSize int) (*core.Cluster, error) {
	return core.NewCluster(layout, pagesPerVM, pageSize)
}

// Model is the corrected Section V expected-completion-time model.
type Model = analytic.Model

// OverheadModel yields a scheme's checkpoint overhead and latency for a
// candidate interval (see analytic.Diskless and analytic.Diskfull).
type OverheadModel = analytic.OverheadModel

// Sweep evaluates the expected-time ratio across checkpoint intervals: the
// data behind Fig. 5's curves.
func Sweep(m Model, om OverheadModel, lo, hi float64, points int) ([]analytic.SweepPoint, error) {
	return analytic.Sweep(m, om, lo, hi, points)
}

// OptimalInterval finds the checkpoint interval minimizing expected
// completion time (the X marks of Fig. 5).
func OptimalInterval(m Model, om OverheadModel, lo, hi float64) (analytic.Optimum, error) {
	return analytic.OptimalInterval(m, om, lo, hi)
}

// NewDisklessOverheads builds DVDC's Fig. 5 overhead model for a layout.
func NewDisklessOverheads(p analytic.Platform, layout *cluster.Layout, spec vm.Spec) (*analytic.Diskless, error) {
	return analytic.NewDiskless(p, layout, spec)
}

// Simulate runs one full job through the discrete-event engine.
func Simulate(cfg core.Config) (core.Result, error) { return core.Run(cfg) }

// NewPoissonFailures builds the per-node Poisson failure schedule the
// paper's analysis assumes.
func NewPoissonFailures(nodes int, mtbfSeconds float64, seed int64) (*failure.NodeSchedule, error) {
	return failure.NewPoissonNodes(nodes, mtbfSeconds, seed)
}

// NewDVDCScheme builds DVDC's timing model (overhead + recovery) for the
// event engine.
func NewDVDCScheme(p analytic.Platform, layout *cluster.Layout, spec vm.Spec) (*core.DVDCScheme, error) {
	return core.NewDVDCScheme(p, layout, spec)
}

// DefaultPlatform returns era-typical hardware constants (GigE fabric,
// memory-speed capture and XOR, 40 ms base overhead).
func DefaultPlatform(nodes int) (analytic.Platform, error) {
	return analytic.DefaultPlatform(nodes)
}

// Distributed runtime.

// NewNode starts a DVDC node daemon on addr.
func NewNode(addr string) (*runtime.Node, error) { return runtime.NewNode(addr) }

// NewCoordinator drives node daemons through setup, checkpoint rounds, and
// recovery.
func NewCoordinator(layout *cluster.Layout, addrs map[int]string, pages, pageSize int, seed int64) (*runtime.Coordinator, error) {
	return runtime.NewCoordinator(layout, addrs, pages, pageSize, seed)
}

// Evaluation harness.

// ExperimentIDs lists the reproducible artifacts (E1 = Fig. 5, ...).
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentParams returns the paper's default parameterization.
func ExperimentParams() experiments.Params { return experiments.Default() }

// Experiment regenerates one evaluation artifact.
func Experiment(id string, p experiments.Params) (*experiments.Result, error) {
	return experiments.Run(id, p)
}
