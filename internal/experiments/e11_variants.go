package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/checkpoint"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
	"dvdc/internal/vm"
)

func init() {
	register("E11", "Checkpoint variants: full vs incremental vs forked vs compressed (Sec. II-B)", runE11)
}

// runE11 measures, byte-real, what each of Plank's checkpoint variants
// actually ships for workloads of varying locality: the data behind the
// paper's claim that incremental/COW capture plus compression is what makes
// in-memory checkpointing affordable.
func runE11(p Params) (*Result, error) {
	const pages, pageSize = 2048, 4096 // 8 MiB guest
	type wl struct {
		name string
		mk   func() vm.Workload
	}
	zipf := func() vm.Workload {
		w, err := vm.NewZipf(pages, 1.4, p.Seed)
		if err != nil {
			panic(err)
		}
		return w
	}
	phased, err := vm.NewPhased(400, 0.05, p.Seed)
	if err != nil {
		return nil, err
	}
	workloads := []wl{
		{"uniform (worst locality)", func() vm.Workload { return vm.NewUniform(p.Seed) }},
		{"sequential sweep", func() vm.Workload { return vm.NewSequential() }},
		{"zipf hotspot (s=1.4)", zipf},
		{"phased working set", func() vm.Workload { return phased }},
	}
	table := report.NewTable(
		"Checkpoint payload per round (KiB), 8 MiB guest, 1000 writes/round, 5 rounds",
		"workload", "full", "incremental", "forked COW extra", "compressed-delta", "incr/full")
	incr := &metrics.Series{Label: "incremental KiB"}
	for wi, w := range workloads {
		m, err := vm.NewMachine("guest", pages, pageSize)
		if err != nil {
			return nil, err
		}
		work := w.mk()
		vm.Run(work, m, 3000) // warm content
		st, err := checkpoint.NewStore(checkpoint.CaptureFull(m))
		if err != nil {
			return nil, err
		}
		var fullB, incB, cowB, compB int64
		const rounds = 5
		for r := 0; r < rounds; r++ {
			vm.Run(work, m, 1000)
			// Forked COW cost: copy bytes while 200 more writes land.
			f := checkpoint.Fork(m)
			vm.Run(work, m, 200)
			cowB += f.CopiedBytes()
			inc, err := f.MaterializeIncremental()
			if err != nil {
				return nil, err
			}
			f.Release()
			incB += inc.PayloadBytes()
			fullB += m.ImageBytes()
			// Compressed delta against the store's image, then advance it.
			if err := st.Apply(inc); err != nil {
				return nil, err
			}
			compB += compressedSize(inc)
		}
		table.AddRow(w.name,
			fullB/rounds/1024, incB/rounds/1024, cowB/rounds/1024, compB/rounds/1024,
			fmt.Sprintf("%.1f%%", 100*float64(incB)/float64(fullB)))
		incr.Append(float64(wi), float64(incB/rounds/1024))
	}
	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nLocality (zipf, phased) shrinks incremental checkpoints by an order of\n")
	out.WriteString("magnitude versus full images; COW's extra memory tracks the post-fork write\n")
	out.WriteString("rate, exactly Plank's \"2I only in the worst case\" argument.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{incr}}, nil
}

// compressedSize re-encodes an incremental checkpoint's pages through the
// flate path to measure the compressed-difference variant's payload.
func compressedSize(inc *checkpoint.Checkpoint) int64 {
	var total int64
	for _, pr := range inc.Pages {
		// XOR-delta against zero is the page itself; measuring flate on the
		// raw page content gives the same scale as delta compression for
		// synthetic stamps.
		c, err := checkpoint.Compress(pr.Data)
		if err != nil {
			total += int64(len(pr.Data))
			continue
		}
		if len(c) < len(pr.Data) {
			total += int64(len(c))
		} else {
			total += int64(len(pr.Data))
		}
	}
	return total
}
