package experiments

import (
	"strings"
	"time"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/diskfull"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
	"dvdc/internal/vm"
)

func init() {
	register("E10", "Recovery-time breakdown: rollback + reconstruction vs NAS refetch", runE10)
}

// runE10 measures the recovery path the Sec. VI comparison hinges on: DVDC
// must roll everyone back and run a parity reconstruction; the disk-full
// baseline must pull images back through the NAS. Both the timing model and
// a byte-real wall-clock measurement of the in-process recovery are shown.
func runE10(p Params) (*Result, error) {
	table := report.NewTable(
		"Modeled recovery time after one node failure (3 VMs lost)",
		"image size (MiB)", "DVDC reconstruct (s)", "disk-full local-rb (s)", "disk-full NAS-rb (s)")
	series := &metrics.Series{Label: "DVDC reconstruct (s)"}
	layout, err := cluster.BuildDistributed(p.Nodes, p.Stacks, 1)
	if err != nil {
		return nil, err
	}
	plat, err := analytic.DefaultPlatform(layout.Nodes)
	if err != nil {
		return nil, err
	}
	for _, mib := range []float64{64, 256, 1024, 4096} {
		spec := vm.Spec{
			Name:       "rec",
			ImageBytes: int64(mib * float64(1<<20)),
			Dirty:      vm.FullImageDirty{ImageBytes: mib * float64(1<<20)},
		}
		dv, err := core.NewDVDCScheme(plat, layout, spec)
		if err != nil {
			return nil, err
		}
		dvt, err := dv.RecoveryTime(0)
		if err != nil {
			return nil, err
		}
		dfLocal, err := diskfull.New(plat, p.nas(), len(layout.VMs), len(layout.VMs)/layout.Nodes, spec, false)
		if err != nil {
			return nil, err
		}
		dfLocal.LocalRollback = true
		a, err := dfLocal.RecoveryTime(0)
		if err != nil {
			return nil, err
		}
		dfNAS, err := diskfull.New(plat, p.nas(), len(layout.VMs), len(layout.VMs)/layout.Nodes, spec, false)
		if err != nil {
			return nil, err
		}
		b, err := dfNAS.RecoveryTime(0)
		if err != nil {
			return nil, err
		}
		table.AddRow(mib, dvt, a, b)
		series.Append(mib, dvt)
	}

	// Byte-real wall-clock of the full in-process recovery cycle.
	realTable := report.NewTable(
		"Byte-real in-process recovery (paper 4-node/12-VM layout)",
		"VM memory (MiB)", "checkpoint round (ms)", "fail+recover node 0 (ms)", "reconstructed VMs")
	for _, mib := range []int{1, 4, 16} {
		pages := mib * (1 << 20) / vm.DefaultPageSize
		l, err := cluster.Paper12VM()
		if err != nil {
			return nil, err
		}
		c, err := core.NewCluster(l, pages, vm.DefaultPageSize)
		if err != nil {
			return nil, err
		}
		for i, name := range c.VMNames() {
			m, _ := c.Machine(name)
			vm.Run(vm.NewUniform(int64(i)), m, pages/2)
		}
		start := time.Now()
		if err := c.CheckpointRound(); err != nil {
			return nil, err
		}
		ckptMs := time.Since(start).Seconds() * 1000
		start = time.Now()
		rep, err := c.FailNode(0)
		if err != nil {
			return nil, err
		}
		recMs := time.Since(start).Seconds() * 1000
		realTable.AddRow(mib, ckptMs, recMs, len(rep.LostVMs))
	}

	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\n")
	out.WriteString(realTable.String())
	out.WriteString("\nDVDC recovery is bounded by pulling groupSize images across the fabric; the\n")
	out.WriteString("baseline without local copies serializes the whole cluster behind the NAS.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{series}}, nil
}
