package experiments

import (
	"fmt"
	"math"
	"strings"

	"dvdc/internal/core"
	"dvdc/internal/failure"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E2", "Monte-Carlo corroboration of the Section V equations (corrected)", runE2)
}

// constCost is a fixed-cost scheme so the simulation matches the analytic
// model's assumptions exactly.
type constCost struct{ ov, rec float64 }

func (c constCost) Name() string                                { return "analytic-matched" }
func (c constCost) CheckpointOverhead(float64) (float64, error) { return c.ov, nil }
func (c constCost) RecoveryTime(int) (float64, error)           { return c.rec, nil }

func runE2(p Params) (*Result, error) {
	m := p.model()
	// Exercise several interval/overhead points, including the paper's 40 ms
	// base overhead and heavier cases.
	cases := []struct{ interval, overhead float64 }{
		{600, 0.040},
		{600, 30},
		{1800, 30},
		{3600, 120},
		{300, 5},
	}
	table := report.NewTable(
		"Event-simulated vs analytic expected completion time (corrected Eq. 3 + overhead model)",
		"T_int (s)", "T_ov (s)", "analytic E[T] (s)", "simulated mean (s)", "95% CI", "rel err")
	sim := &metrics.Series{Label: "simulated"}
	ana := &metrics.Series{Label: "analytic"}
	var worst float64
	for _, c := range cases {
		want, err := m.ExpectedWithCheckpoint(c.interval, c.overhead)
		if err != nil {
			return nil, err
		}
		var s metrics.Summary
		for run := 0; run < p.MCRuns; run++ {
			sched, err := failure.NewPoissonNodes(1, p.MTBF, p.Seed+int64(run)*104729)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{
				JobSeconds: p.Job, Interval: c.interval,
				Schedule: sched, Scheme: constCost{ov: c.overhead, rec: p.Repair},
			})
			if err != nil {
				return nil, err
			}
			s.Add(res.Completion)
		}
		rel := math.Abs(s.Mean()-want) / want
		if rel > worst {
			worst = rel
		}
		table.AddRow(c.interval, c.overhead, want, s.Mean(),
			fmt.Sprintf("±%.0f", s.CI95()), fmt.Sprintf("%.2f%%", rel*100))
		sim.Append(c.interval, s.Mean())
		ana.Append(c.interval, want)
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%d Monte-Carlo runs per point, MTBF %.0f s, T=%.0f s, Tr=%.0f s\n\n",
		p.MCRuns, p.MTBF, p.Job, p.Repair)
	out.WriteString(table.String())
	fmt.Fprintf(&out, "\nWorst relative error %.2f%%: the event simulation corroborates the corrected\n", worst*100)
	out.WriteString("equations (the paper's printed E[F] = e^{-lambda(N+Tov)}-1 is a sign typo; see DESIGN.md).\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{ana, sim}}, nil
}
