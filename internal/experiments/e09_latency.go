package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
	"dvdc/internal/vm"
)

func init() {
	register("E9", "Checkpoint overhead vs latency: Plank's factor (Sec. II-B2)", runE9)
}

// runE9 separates the two quantities the paper is careful to distinguish:
// overhead (execution suspended) and latency (time until the checkpoint is
// usable). Async disk-full checkpointing hides most of the flush from
// overhead but not from latency; diskless removes the flush entirely. Plank
// measured a factor-34 latency improvement; we sweep the payload size and
// report the factor.
func runE9(p Params) (*Result, error) {
	dl, _, _, err := figure5Models(p)
	if err != nil {
		return nil, err
	}
	plat := dl.Platform
	table := report.NewTable(
		"Overhead vs latency per checkpoint (interval = 600 s)",
		"payload/VM (MiB)", "diskless ov (s)", "diskless lat (s)",
		"disk async ov (s)", "disk async lat (s)", "latency factor")
	factor := &metrics.Series{Label: "disk latency / diskless latency"}
	for _, mib := range []float64{8, 32, 128, 512, 1024} {
		spec := vm.Spec{
			Name:       "sweep",
			ImageBytes: int64(mib * float64(1<<20)),
			Dirty:      vm.FullImageDirty{ImageBytes: mib * float64(1<<20)},
		}
		dlm, err := analytic.NewDiskless(plat, dl.Layout, spec)
		if err != nil {
			return nil, err
		}
		dfm, err := analytic.NewDiskfull(plat, p.nas(), len(dl.Layout.VMs), spec, true)
		if err != nil {
			return nil, err
		}
		const iv = 600.0
		dlOv, err := dlm.Overhead(iv)
		if err != nil {
			return nil, err
		}
		dlLat, err := dlm.Latency(iv)
		if err != nil {
			return nil, err
		}
		dfOv, err := dfm.Overhead(iv)
		if err != nil {
			return nil, err
		}
		dfLat, err := dfm.Latency(iv)
		if err != nil {
			return nil, err
		}
		table.AddRow(mib, dlOv, dlLat, dfOv, dfLat, fmt.Sprintf("%.1fx", dfLat/dlLat))
		factor.Append(mib, dfLat/dlLat)
	}
	// The system-level comparison Plank's factor-34 refers to: diskless
	// ships the incremental working set while the disk path persists full
	// images — the configuration the two systems actually run in.
	dlInc, err := analytic.NewDiskless(plat, dl.Layout, p.incrementalSpec())
	if err != nil {
		return nil, err
	}
	dfFull, err := analytic.NewDiskfull(plat, p.nas(), len(dl.Layout.VMs), p.fullSpec(), true)
	if err != nil {
		return nil, err
	}
	const iv = 600.0
	incLat, err := dlInc.Latency(iv)
	if err != nil {
		return nil, err
	}
	fullLat, err := dfFull.Latency(iv)
	if err != nil {
		return nil, err
	}

	var out strings.Builder
	out.WriteString(table.String())
	fmt.Fprintf(&out, "\nAs deployed (incremental diskless vs full-image disk): %.2f s vs %.1f s\n",
		incLat, fullLat)
	fmt.Fprintf(&out, "latency — a %.0fx improvement. Plank measured 34x with equal payloads; the\n", fullLat/incLat)
	out.WriteString("deployed gap is larger still because diskless also ships only the dirty set.\n")
	out.WriteString("\nWith asynchronous flushing the baseline's *overhead* is competitive, but its\n")
	out.WriteString("*latency* — the window in which a failure still forfeits the checkpoint — stays\n")
	out.WriteString("NAS-bound. Diskless collapses latency to the parity exchange, the multi-x\n")
	out.WriteString("improvement Plank quantified as a factor of 34 on his testbed.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{factor}}, nil
}
