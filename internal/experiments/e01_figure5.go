package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E1", "Fig. 5 — expected-time ratio vs. checkpoint interval, diskless vs. disk-full", runE1)
}

// figure5Models builds the two overhead models of Fig. 5 for the given
// parameters: DVDC on the distributed layout, and full-image checkpoints
// funnelled into one NAS.
func figure5Models(p Params) (*analytic.Diskless, *analytic.Diskfull, *cluster.Layout, error) {
	layout, err := cluster.BuildDistributed(p.Nodes, p.Stacks, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	plat, err := analytic.DefaultPlatform(layout.Nodes)
	if err != nil {
		return nil, nil, nil, err
	}
	dl, err := analytic.NewDiskless(plat, layout, p.incrementalSpec())
	if err != nil {
		return nil, nil, nil, err
	}
	df, err := analytic.NewDiskfull(plat, p.nas(), len(layout.VMs), p.fullSpec(), false)
	if err != nil {
		return nil, nil, nil, err
	}
	return dl, df, layout, nil
}

func runE1(p Params) (*Result, error) {
	m := p.model()
	dl, df, layout, err := figure5Models(p)
	if err != nil {
		return nil, err
	}
	lo, hi := 5.0, p.Job/4

	var out strings.Builder
	fmt.Fprintf(&out, "Configuration: %d nodes, %d VMs (%s), MTBF %.0f s (lambda %.3e/s), T=%.0f s\n\n",
		layout.Nodes, len(layout.VMs), layout.Arch, p.MTBF, 1/p.MTBF, p.Job)

	series := make([]*metrics.Series, 0, 2)
	table := report.NewTable("Optimal checkpoint intervals (X marks in Fig. 5)",
		"method", "T_int* (s)", "T_ov at opt (s)", "E[T]/T", "overhead vs fault-free")
	var optima []analytic.Optimum
	for _, om := range []analytic.OverheadModel{dl, df} {
		pts, err := analytic.Sweep(m, om, lo, hi, p.SweepPoints)
		if err != nil {
			return nil, err
		}
		s := &metrics.Series{Label: om.Name()}
		for _, pt := range pts {
			s.Append(pt.Interval, pt.Ratio)
		}
		series = append(series, s)
		opt, err := analytic.OptimalInterval(m, om, lo, hi)
		if err != nil {
			return nil, err
		}
		optima = append(optima, opt)
		table.AddRow(om.Name(), opt.Interval, opt.Overhead, opt.Ratio,
			fmt.Sprintf("%.2f%%", (opt.Ratio-1)*100))
	}
	chart := report.Chart{
		Title: "Fig. 5: expected time ratio vs checkpoint interval",
		Width: 76, Height: 22, LogX: true, LogY: true,
		XLabel: "checkpoint interval T_int (s)", YLabel: "E[T]/T",
	}
	out.WriteString(chart.RenderWithMinima(series...))
	out.WriteString("\n")
	out.WriteString(table.String())
	reduction := 1 - optima[0].Ratio/optima[1].Ratio
	fmt.Fprintf(&out, "\nDiskless reduces expected completion time by %.1f%% at the optimal intervals\n", reduction*100)
	fmt.Fprintf(&out, "(paper reports 18%% with ~1%% overhead ratio for diskless and ~20%% for disk-full).\n")
	return &Result{Text: out.String(), Series: series}, nil
}
