package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/failure"
	"dvdc/internal/metrics"
	"dvdc/internal/remus"
	"dvdc/internal/report"
)

func init() {
	register("E7", "DVDC vs Remus: overhead, lost work, memory cost (Sec. VI)", runE7)
}

// runE7 quantifies the trade-off Sec. VI describes: Remus loses almost no
// work on failure and recovers nearly instantly, but pays a full-replica
// memory cost and halves usable capacity; DVDC keeps every node computing at
// a fraction of the state overhead, paying with rollback plus parity
// reconstruction on failure.
func runE7(p Params) (*Result, error) {
	layout, err := cluster.BuildDistributed(p.Nodes, p.Stacks, 1)
	if err != nil {
		return nil, err
	}
	plat, err := analytic.DefaultPlatform(layout.Nodes)
	if err != nil {
		return nil, err
	}
	spec := p.incrementalSpec()
	dvdc, err := core.NewDVDCScheme(plat, layout, spec)
	if err != nil {
		return nil, err
	}
	rem, err := remus.NewScheme(spec)
	if err != nil {
		return nil, err
	}

	groupSize := len(layout.Groups[0].Members)
	memTable := report.NewTable("State and capacity overhead",
		"scheme", "extra state per VM", "usable compute fraction", "failures tolerated")
	memTable.AddRow("DVDC", fmt.Sprintf("%.2fx image (1/groupSize parity share)", 1.0/float64(groupSize)),
		"1.00 (all nodes compute)", "1 per RAID group")
	memTable.AddRow("Remus", fmt.Sprintf("%.2fx image (full replica)", remus.MemoryFactor-1),
		"0.50 (standby idles) or N-to-1", "1 per pair")

	runTable := report.NewTable(
		"Event-simulated 2-day job under identical failure schedules",
		"scheme", "interval/epoch (s)", "E[T]/T", "lost work (s)", "recovery total (s)", "checkpoints")
	series := []*metrics.Series{}
	type cand struct {
		scheme   core.Scheme
		interval float64
	}
	remEpoch := rem.SustainableEpoch() * 4
	if remEpoch < 0.1 {
		remEpoch = 0.1
	}
	cands := []cand{
		{dvdc, 120},
		{rem, remEpoch},
	}
	for _, c := range cands {
		var ratio, lost, rec metrics.Summary
		var ckpts int
		for run := 0; run < p.MCRuns/4+1; run++ {
			sched, err := failure.NewPoissonNodes(layout.Nodes, p.MTBF*float64(layout.Nodes), p.Seed+int64(run)*31)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{
				JobSeconds: p.Job, Interval: c.interval, DetectSec: 1,
				Schedule: sched, Scheme: c.scheme,
			})
			if err != nil {
				return nil, err
			}
			ratio.Add(res.Ratio)
			lost.Add(res.LostWork)
			rec.Add(res.RecoveryTime)
			ckpts = res.Checkpoints
		}
		runTable.AddRow(c.scheme.Name(), c.interval, ratio.Mean(), lost.Mean(), rec.Mean(), ckpts)
		s := &metrics.Series{Label: c.scheme.Name()}
		s.Append(c.interval, ratio.Mean())
		series = append(series, s)
	}

	var out strings.Builder
	out.WriteString(memTable.String())
	out.WriteString("\n")
	out.WriteString(runTable.String())
	out.WriteString("\nRemus's tiny epochs bound lost work to milliseconds and failover is constant,\n")
	out.WriteString("but it doubles memory and halves capacity; DVDC trades slower recovery\n")
	out.WriteString("(rollback + reconstruction) for full utilization and 1/groupSize state cost --\n")
	out.WriteString("the exact trade-off Sec. VI describes.\n")
	return &Result{Text: out.String(), Series: series}, nil
}
