package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/core"
	"dvdc/internal/failure"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E14", "Design-choice ablations: adaptive intervals and delta compression", runE14)
}

// runE14 ablates two design choices DESIGN.md calls out: the adaptive
// checkpoint-interval policy (paper-cited: Yi et al.) against fixed
// intervals including badly mistuned ones, and the Sec. IV-C delta
// compression as a bandwidth-scaling factor on the overhead model.
func runE14(p Params) (*Result, error) {
	dl, _, layout, err := figure5Models(p)
	if err != nil {
		return nil, err
	}
	scheme := &core.DVDCScheme{Overheads: dl, Layout: layout, Spec: p.incrementalSpec()}
	m := p.model()
	opt, err := analytic.OptimalInterval(m, dl, 5, p.Job/4)
	if err != nil {
		return nil, err
	}

	// Adaptive-vs-fixed ablation.
	table := report.NewTable(
		fmt.Sprintf("Interval policy ablation (%d seeds; analytic optimum %.0f s)", p.MCRuns/2+1, opt.Interval),
		"policy", "mean E[T]/T", "vs optimum-tuned")
	type pol struct {
		name     string
		interval float64
		policy   core.IntervalPolicy
	}
	pols := []pol{
		{"fixed at analytic optimum", opt.Interval, nil},
		{"fixed 10x too short", opt.Interval / 10, nil},
		{"fixed 10x too long", opt.Interval * 10, nil},
		{"adaptive Young/Daly (starts 10x off)", opt.Interval * 10,
			core.YoungDalyPolicy(p.MTBF, 5, p.Job/4)},
	}
	series := &metrics.Series{Label: "mean ratio"}
	var base float64
	for pi, pc := range pols {
		var s metrics.Summary
		for run := 0; run < p.MCRuns/2+1; run++ {
			sched, err := failure.NewPoissonNodes(layout.Nodes, p.MTBF*float64(layout.Nodes), p.Seed+int64(run)*101)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{
				JobSeconds: p.Job, Interval: pc.interval, DetectSec: 1,
				Schedule: sched, Scheme: scheme, Policy: pc.policy,
			})
			if err != nil {
				return nil, err
			}
			s.Add(res.Ratio)
		}
		if pi == 0 {
			base = s.Mean()
		}
		table.AddRow(pc.name, s.Mean(), fmt.Sprintf("%+.2f%%", (s.Mean()/base-1)*100))
		series.Append(float64(pi), s.Mean())
	}

	// Compression ablation: scale the effective checkpoint payload by the
	// compression ratio and re-derive the optimal overhead.
	compTable := report.NewTable(
		"Delta-compression ablation (payload scaling on the Fig. 5 diskless model)",
		"compression ratio", "T_ov at optimum (s)", "optimal interval (s)", "overhead")
	for _, ratio := range []float64{1.0, 0.5, 0.25, 0.1} {
		spec := p.incrementalSpec()
		spec.Dirty = scaledDirty{inner: spec.Dirty, factor: ratio}
		dlc, err := analytic.NewDiskless(dl.Platform, layout, spec)
		if err != nil {
			return nil, err
		}
		o, err := analytic.OptimalInterval(m, dlc, 5, p.Job/4)
		if err != nil {
			return nil, err
		}
		compTable.AddRow(fmt.Sprintf("%.0f%%", ratio*100), o.Overhead, o.Interval,
			fmt.Sprintf("%.2f%%", (o.Ratio-1)*100))
	}

	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nThe adaptive policy recovers nearly all of the mistuning penalty without\nknowing the platform's overhead curve.\n\n")
	out.WriteString(compTable.String())
	out.WriteString("\nCompression shifts the optimum toward shorter intervals and shaves the\nresidual overhead — the Sec. IV-C suggestion, quantified.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{series}}, nil
}

// scaledDirty scales a dirty model's payload by a constant factor
// (modelling compression of the shipped deltas).
type scaledDirty struct {
	inner interface {
		DirtyBytes(float64) float64
	}
	factor float64
}

func (s scaledDirty) DirtyBytes(interval float64) float64 {
	return s.inner.DirtyBytes(interval) * s.factor
}
