package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/report"
	"dvdc/internal/vm"
)

func init() {
	register("E3", "Figs. 1/3/4 — fault injection across the three architectures", runE3)
}

// runE3 validates the survival claims of the three architectures by
// exhaustive fault injection on byte-real clusters: every single node
// failure (and every pair) is injected into a running cluster, recovery is
// executed, and the restored state verified bit-exactly.
func runE3(p Params) (*Result, error) {
	type arch struct {
		name   string
		layout func() (*cluster.Layout, error)
	}
	vmsPerNode := p.Stacks * (p.Nodes - 1)
	archs := []arch{
		{"Fig.1 first-shot (1 VM/node + parity node)", func() (*cluster.Layout, error) {
			return cluster.BuildFirstShot(p.Nodes)
		}},
		{"Fig.3 dedicated checkpoint node", func() (*cluster.Layout, error) {
			return cluster.BuildDedicated(p.Nodes, vmsPerNode)
		}},
		{"Fig.4 DVDC (distributed parity)", func() (*cluster.Layout, error) {
			return cluster.BuildDistributed(p.Nodes, p.Stacks, 1)
		}},
	}
	table := report.NewTable(
		"Byte-real fault injection (checkpoint, kill node, recover, verify state)",
		"architecture", "nodes", "VMs", "single-failure survival", "double-failure survival", "dedicated hardware")
	for _, a := range archs {
		layout, err := a.layout()
		if err != nil {
			return nil, err
		}
		singleOK := 0
		for n := 0; n < layout.Nodes; n++ {
			ok, err := injectAndVerify(layout, n)
			if err != nil {
				return nil, fmt.Errorf("%s node %d: %w", a.name, n, err)
			}
			if ok {
				singleOK++
			}
		}
		// Double failures: count survivable pairs via the placement math
		// (byte-real double injection is meaningless for tolerance-1).
		pairs, pairsOK := 0, 0
		for x := 0; x < layout.Nodes; x++ {
			for y := x + 1; y < layout.Nodes; y++ {
				pairs++
				if layout.Survives(x, y) {
					pairsOK++
				}
			}
		}
		dedicated := layout.Nodes - len(layout.ComputeNodes())
		table.AddRow(a.name, layout.Nodes, len(layout.VMs),
			fmt.Sprintf("%d/%d", singleOK, layout.Nodes),
			fmt.Sprintf("%d/%d", pairsOK, pairs),
			dedicated)
	}
	// RS-2 double tolerance: byte-real double injection of every node pair.
	l2, err := cluster.BuildDistributedGroups(p.Nodes+2, 1, 2, p.Nodes-1)
	if err != nil {
		return nil, err
	}
	singles2 := 0
	for n := 0; n < l2.Nodes; n++ {
		ok, err := injectAndVerify(l2, n)
		if err != nil {
			return nil, fmt.Errorf("RS-2 node %d: %w", n, err)
		}
		if ok {
			singles2++
		}
	}
	pairs, pairsOK := 0, 0
	for x := 0; x < l2.Nodes; x++ {
		for y := x + 1; y < l2.Nodes; y++ {
			pairs++
			ok, err := injectAndVerify(l2, x, y)
			if err != nil {
				return nil, fmt.Errorf("RS-2 pair (%d,%d): %w", x, y, err)
			}
			if ok {
				pairsOK++
			}
		}
	}
	table.AddRow("DVDC + double parity (RS-2)", l2.Nodes, len(l2.VMs),
		fmt.Sprintf("%d/%d", singles2, l2.Nodes), fmt.Sprintf("%d/%d", pairsOK, pairs), 0)

	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nEvery architecture survives all single node failures (the paper's design goal);\n")
	out.WriteString("single parity cannot survive double failures -- the cited RDP/RS-2 codes can.\n")
	return &Result{Text: out.String()}, nil
}

// injectAndVerify builds a byte-real cluster on the layout, churns and
// checkpoints it, kills the given nodes simultaneously, recovers, and
// verifies every VM is at the committed state.
func injectAndVerify(layout *cluster.Layout, nodes ...int) (bool, error) {
	// Work on a private copy of the layout: recovery mutates it.
	fresh := layout.Clone()
	c, err := core.NewCluster(fresh, 8, 64)
	if err != nil {
		return false, err
	}
	for _, name := range c.VMNames() {
		m, err := c.Machine(name)
		if err != nil {
			return false, err
		}
		w := vm.NewUniform(int64(nodes[0])*1000 + int64(len(name)))
		vm.Run(w, m, 30)
	}
	if err := c.CheckpointRound(); err != nil {
		return false, err
	}
	committed := map[string][]byte{}
	for _, name := range c.VMNames() {
		m, _ := c.Machine(name)
		committed[name] = m.Image()
	}
	if _, err := c.FailNodes(nodes...); err != nil {
		return false, nil // unsurvivable: counts as non-survival, not error
	}
	for _, name := range c.VMNames() {
		m, _ := c.Machine(name)
		img := m.Image()
		want := committed[name]
		for i := range img {
			if img[i] != want[i] {
				return false, fmt.Errorf("VM %q corrupted at byte %d", name, i)
			}
		}
	}
	return true, nil
}
