package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/metrics"
	"dvdc/internal/migrate"
	"dvdc/internal/report"
	"dvdc/internal/vm"
)

func init() {
	register("E5", "Live-migration downtime (Clark-style) and page-hash dedup ablation", runE5)
}

// runE5 reproduces the background claim DVDC leans on (Sec. II-A): pre-copy
// live migration achieves millisecond-scale downtime; and evaluates the
// paper's future-work proposal of page-hash dedup at the destination.
func runE5(p Params) (*Result, error) {
	table := report.NewTable(
		fmt.Sprintf("Pre-copy migration of a %d MiB guest over GigE (flow model)", p.ImageBytes>>20),
		"dirty rate (MiB/s)", "rounds", "total (s)", "downtime (ms)", "bytes moved (MiB)")
	down := &metrics.Series{Label: "downtime (ms)"}
	cfg := migrate.DefaultPrecopyConfig()
	for _, rateMiB := range []float64{0, 1, 5, 10, 20, 50, 100, 200} {
		dirty := vm.SaturatingDirty{
			WriteRate: rateMiB * float64(1<<20),
			WSSBytes:  p.WSSBytes * 4,
		}
		res, err := migrate.SimulatePrecopy(float64(p.ImageBytes), dirty, cfg)
		if err != nil {
			return nil, err
		}
		table.AddRow(rateMiB, res.Rounds, res.TotalSec, res.Downtime*1000,
			res.TotalBytes/float64(1<<20))
		down.Append(rateMiB, res.Downtime*1000)
	}

	// Byte-real dedup ablation: migrate a guest whose destination holds a
	// partially identical template; count wire bytes with and without the
	// hash index.
	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nClark et al. report ~60 ms downtime for a busy guest; the model lands in the\nsame millisecond regime until the dirty rate approaches the link bandwidth.\n\n")

	dedupTable := report.NewTable(
		"Page-hash dedup (paper future work): wire bytes for a 16 MiB guest, varying template similarity",
		"template similarity", "pages sent", "pages deduped", "wire MiB", "savings")
	for _, similarity := range []float64{0, 0.5, 0.9, 1.0} {
		sent, deduped, wire, total, err := dedupRun(similarity)
		if err != nil {
			return nil, err
		}
		dedupTable.AddRow(fmt.Sprintf("%.0f%%", similarity*100), sent, deduped,
			wire/float64(1<<20), fmt.Sprintf("%.0f%%", 100*(1-wire/total)))
	}
	out.WriteString(dedupTable.String())
	out.WriteString("\nDedup savings scale directly with cross-VM similarity, supporting the paper's\nproposal to exploit page hashes when similar VMs reside at the destination.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{down}}, nil
}

// dedupRun migrates a 16 MiB guest against a template sharing the given
// fraction of pages and reports the transfer accounting.
func dedupRun(similarity float64) (sent, deduped int, wireBytes, totalBytes float64, err error) {
	const pages, pageSize = 4096, 4096
	src, err := vm.NewMachine("guest", pages, pageSize)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	w := vm.NewUniform(99)
	vm.Run(w, src, pages*2) // fill with content
	template, err := vm.NewMachine("template", pages, pageSize)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := template.LoadImage(src.Image()); err != nil {
		return 0, 0, 0, 0, err
	}
	// Make (1-similarity) of the template's pages differ.
	differ := int(float64(pages) * (1 - similarity))
	for i := 0; i < differ; i++ {
		template.TouchPage(i, uint64(i)+1e9)
	}
	idx := migrate.NewHashIndex()
	idx.AddMachine(template)
	g, err := migrate.NewMigration(src, idx)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	stats, err := g.Finalize()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	total := float64(stats.BytesSent + stats.BytesDeduped)
	return stats.PagesSent, stats.PagesDeduped, float64(stats.BytesSent), total, nil
}
