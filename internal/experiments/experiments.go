// Package experiments regenerates every evaluation artifact of the paper:
// Fig. 5's interval sweep (E1), the Monte-Carlo corroboration of the
// Section V equations (E2), the survival properties of the three
// architectures in Figs. 1/3/4 (E3), and the corroborating experiments the
// text claims without plotting (parity-work distribution, migration
// downtime, scaling, the Remus and RDP comparisons, latency-vs-overhead,
// recovery cost, checkpoint-variant traffic, and a full-stack end-to-end
// run). Each experiment returns rendered text plus its raw series so the
// benchmark harness and the CLI share one implementation.
package experiments

import (
	"fmt"
	"sort"

	"dvdc/internal/analytic"
	"dvdc/internal/metrics"
	"dvdc/internal/storage"
	"dvdc/internal/vm"
)

// Params collects the knobs shared across experiments, defaulting to the
// paper's Fig. 5 setting.
type Params struct {
	MTBF        float64 // per-system mean time between failures, seconds
	Job         float64 // fault-free job length T, seconds
	Repair      float64 // analytic repair time Tr, seconds
	Nodes       int     // physical nodes
	Stacks      int     // RAID group stacks (VMs per node = stacks*(nodes-1))
	ImageBytes  int64   // VM image size
	WSSBytes    float64 // dirty working-set size (diskless incremental payload)
	WriteRate   float64 // guest write throughput, bytes/sec
	Seed        int64
	SweepPoints int
	MCRuns      int // Monte-Carlo repetitions for E2/E12
}

// Default returns the paper's parameterization: MTBF 3 h (lambda =
// 9.26e-5/s), a 2-day job, 4 nodes with 12 VMs, 2 GiB images with a 32 MiB
// working set, era-typical GigE fabric and NAS. (2 GiB is what makes the
// disk-full baseline's optimal overhead land at the paper's "nearly 20%";
// see EXPERIMENTS.md.)
func Default() Params {
	return Params{
		MTBF:        3 * 3600,
		Job:         2 * 24 * 3600,
		Repair:      60,
		Nodes:       4,
		Stacks:      1,
		ImageBytes:  2 << 30,
		WSSBytes:    32 * float64(1<<20),
		WriteRate:   4 * float64(1<<20),
		Seed:        20120521, // IPDPS'12 workshop date
		SweepPoints: 120,
		MCRuns:      60,
	}
}

// Validate sanity-checks parameters.
func (p Params) Validate() error {
	if p.MTBF <= 0 || p.Job <= 0 || p.Nodes < 2 || p.Stacks < 1 ||
		p.ImageBytes <= 0 || p.WSSBytes <= 0 || p.WriteRate <= 0 ||
		p.SweepPoints < 2 || p.MCRuns < 1 || p.Repair < 0 {
		return fmt.Errorf("experiments: invalid params %+v", p)
	}
	return nil
}

// model builds the analytic failure model for these parameters.
func (p Params) model() analytic.Model {
	return analytic.Model{Lambda: 1 / p.MTBF, T: p.Job, Repair: p.Repair}
}

// incrementalSpec is the DVDC per-VM payload: dirty working set.
func (p Params) incrementalSpec() vm.Spec {
	return vm.Spec{
		Name:       "hpc-guest",
		ImageBytes: p.ImageBytes,
		Dirty:      vm.SaturatingDirty{WriteRate: p.WriteRate, WSSBytes: p.WSSBytes},
	}
}

// fullSpec is the disk-full baseline payload: whole images to the NAS.
func (p Params) fullSpec() vm.Spec {
	return vm.Spec{
		Name:       "hpc-guest-full",
		ImageBytes: p.ImageBytes,
		Dirty:      vm.FullImageDirty{ImageBytes: float64(p.ImageBytes)},
	}
}

// nas is the baseline's shared store.
func (p Params) nas() storage.NAS { return storage.DefaultNAS() }

// Result is one regenerated artifact.
type Result struct {
	ID     string
	Title  string
	Text   string            // rendered tables and ASCII figures
	Series []*metrics.Series // raw curves, for CSV export
}

// runner produces a Result for given parameters.
type runner struct {
	title string
	fn    func(Params) (*Result, error)
}

// registry maps experiment ids to implementations; filled in by init
// functions beside each experiment.
var registry = map[string]runner{}

func register(id, title string, fn func(Params) (*Result, error)) {
	registry[id] = runner{title: title, fn: fn}
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's title ("" if unknown).
func Title(id string) string { return registry[id].title }

// Run executes one experiment.
func Run(id string, p Params) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res, err := r.fn(p)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	return res, nil
}
