package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E18", "The price of tolerance: overhead vs parity blocks per group", runE18)
}

// runE18 sweeps the group tolerance m (1 = the paper's XOR, 2 = the cited
// RDP/Wang et al. class, 3 = beyond): each extra parity block multiplies the
// delta traffic and shrinks per-node memory headroom, but buys survival of
// more simultaneous node losses. The overhead model handles multi-parity
// layouts natively (members ship to every parity node of their group), so
// this is the deployment-decision table a DVDC operator would consult.
func runE18(p Params) (*Result, error) {
	m := p.model()
	nodes := 8
	groupSize := 3
	table := report.NewTable(
		fmt.Sprintf("%d nodes, groups of %d, MTBF %.0f s", nodes, groupSize, p.MTBF),
		"tolerance", "code", "T_ov at opt (s)", "optimal T_int (s)", "overhead",
		"surviving node-pairs", "extra state/VM")
	series := &metrics.Series{Label: "overhead %"}
	for tol := 1; tol <= 3; tol++ {
		layout, err := cluster.BuildDistributedGroups(nodes, p.Stacks, tol, groupSize)
		if err != nil {
			return nil, err
		}
		plat, err := analytic.DefaultPlatform(nodes)
		if err != nil {
			return nil, err
		}
		dl, err := analytic.NewDiskless(plat, layout, p.incrementalSpec())
		if err != nil {
			return nil, err
		}
		opt, err := analytic.OptimalInterval(m, dl, 5, p.Job/4)
		if err != nil {
			return nil, err
		}
		pairs, pairsOK := 0, 0
		for a := 0; a < nodes; a++ {
			for b := a + 1; b < nodes; b++ {
				pairs++
				if layout.Survives(a, b) {
					pairsOK++
				}
			}
		}
		code := "XOR (RAID-5)"
		if tol > 1 {
			code = fmt.Sprintf("RS(%d,%d)", groupSize, tol)
		}
		table.AddRow(tol, code, opt.Overhead, opt.Interval,
			fmt.Sprintf("%.2f%%", (opt.Ratio-1)*100),
			fmt.Sprintf("%d/%d", pairsOK, pairs),
			fmt.Sprintf("%.2fx image", float64(tol)/float64(groupSize)))
		series.Append(float64(tol), (opt.Ratio-1)*100)
	}
	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nEach extra parity block multiplies delta traffic (members ship to every\n")
	out.WriteString("parity node) yet the overhead stays in the low percents — while pair\n")
	out.WriteString("survivability jumps from none to all. This is why the paper's successors\n")
	out.WriteString("(Wang et al.) moved to double-erasure codes: the marginal cost is small.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{series}}, nil
}
