package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E19", "Durability: MTTDL and mission data-loss probability (the title's claim)", runE19)
}

// runE19 quantifies "highly fault tolerant": the mean time to data loss of
// the cluster-as-RAID under the classic Markov machinery, as a function of
// parity tolerance and repair speed, plus the exact combinatorial survival
// fractions of the concrete layouts. The repair rate is grounded in E10's
// reconstruction times rather than assumed.
func runE19(p Params) (*Result, error) {
	missionYear := 365.25 * 24 * 3600.0
	scenarios := []struct {
		label       string
		perNodeMTBF float64
	}{
		{"paper doom (system MTBF 3 h)", p.MTBF * float64(p.Nodes)},
		{"commodity node (MTBF 30 d)", 30 * 24 * 3600},
	}
	table := report.NewTable(
		"Cluster MTTDL, groups of 3+m on 8 nodes (8 groups)",
		"failure regime", "tolerance", "repair time", "cluster MTTDL", "P(loss) in 1 year")
	series := &metrics.Series{Label: "cluster MTTDL (years)"}
	for _, sc := range scenarios {
		lambda := 1 / sc.perNodeMTBF
		for _, tol := range []int{0, 1, 2} {
			for _, mttr := range []float64{60, 4 * 3600} {
				if tol == 0 && mttr != 60 {
					continue // repair rate is irrelevant with no parity
				}
				groupN := 3 + tol
				g, err := analytic.GroupMTTDL(groupN, tol, lambda, 1/mttr)
				if err != nil {
					return nil, err
				}
				cl, err := analytic.ClusterMTTDL(g, 8)
				if err != nil {
					return nil, err
				}
				pl, err := analytic.DataLossProbability(cl, missionYear)
				if err != nil {
					return nil, err
				}
				table.AddRow(sc.label, tol, fmtDuration(mttr), fmtMTTDL(cl),
					fmt.Sprintf("%.2g", pl))
				series.Append(float64(tol), cl/missionYear)
			}
		}
	}

	// Exact combinatorial survival of the concrete layouts.
	combo := report.NewTable(
		"Exact j-failure survival fractions (concrete 8-node layouts, groups of 3)",
		"tolerance", "j=1", "j=2", "j=3")
	for _, tol := range []int{1, 2} {
		layout, err := cluster.BuildDistributedGroups(8, 1, tol, 3)
		if err != nil {
			return nil, err
		}
		groupNodes := make([][]int, len(layout.Groups))
		for i, g := range layout.Groups {
			for _, m := range g.Members {
				v, _ := layout.VM(m)
				groupNodes[i] = append(groupNodes[i], v.Node)
			}
			groupNodes[i] = append(groupNodes[i], g.ParityNodes...)
		}
		row := []interface{}{tol}
		for j := 1; j <= 3; j++ {
			f, err := analytic.SurvivableFraction(layout.Nodes, groupNodes, tol, j)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f%%", f*100))
		}
		combo.AddRow(row...)
	}

	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\n")
	out.WriteString(combo.String())
	out.WriteString("\nAt commodity failure rates, single parity with DVDC's fast in-memory repair\n")
	out.WriteString("(~1 min of reconstruction) yields decades of MTTDL (double parity: 1e5\n")
	out.WriteString("years); with 4-hour repairs it collapses to weeks — the quantitative case\n")
	out.WriteString("for the paper's low-latency\n")
	out.WriteString("reconstruction path. In the paper's doom regime (node MTBF 12 h) checkpoint\n")
	out.WriteString("protection alone cannot make a year-long mission safe: double parity plus\n")
	out.WriteString("fast repair reaches MTTDL of ~1.5 years, everything slower loses data —\n")
	out.WriteString("which is exactly why such machines must checkpoint in the first place\n")
	out.WriteString("(durability here is about losing the CHECKPOINTS, not the job: a loss event\n")
	out.WriteString("costs a restart, not the data).\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{series}}, nil
}

func fmtMTTDL(sec float64) string {
	const year = 365.25 * 24 * 3600
	switch {
	case sec >= year:
		return fmt.Sprintf("%.3g years", sec/year)
	case sec >= 24*3600:
		return fmt.Sprintf("%.3g days", sec/(24*3600))
	default:
		return fmt.Sprintf("%.3g h", sec/3600)
	}
}

func fmtDuration(sec float64) string {
	switch {
	case sec < 120:
		return fmt.Sprintf("%.0f s", sec)
	case sec < 7200:
		return fmt.Sprintf("%.0f min", sec/60)
	default:
		return fmt.Sprintf("%.0f h", sec/3600)
	}
}
