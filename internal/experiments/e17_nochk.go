package experiments

import (
	"fmt"
	"math"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/core"
	"dvdc/internal/failure"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E17", "Eq. 1 vs Eq. 3: why checkpointing at all (Sec. V-A)", runE17)
}

// runE17 reproduces Section V-A's build-up: Eq. 1's restart-from-zero
// expectation explodes exponentially with lambda*T (Schroeder & Gibson's
// "cannot finish even if it does nothing but checkpoint" regime), while
// Eq. 3's checkpointed expectation stays nearly linear. Both are validated
// against the event simulation, including Eq. 1 via the engine's
// no-checkpoint degenerate mode.
func runE17(p Params) (*Result, error) {
	lambda := 1 / p.MTBF
	table := report.NewTable(
		fmt.Sprintf("Expected completion vs job length (MTBF %.0f s, checkpoint T_int=600 s, T_ov=5 s)", p.MTBF),
		"job T (h)", "lambda*T", "no-ckpt E[T]/T (Eq.1)", "ckpt E[T]/T (Eq.3)", "simulated no-ckpt")
	noChk := &metrics.Series{Label: "no checkpointing (Eq.1)"}
	chk := &metrics.Series{Label: "checkpointed (Eq.3)"}
	for _, hours := range []float64{0.5, 1, 2, 4, 8, 16} {
		T := hours * 3600
		m := analytic.Model{Lambda: lambda, T: T, Repair: 0}
		e1 := m.ExpectedNoCheckpoint()
		e3, err := m.ExpectedWithCheckpoint(600, 5)
		if err != nil {
			return nil, err
		}
		// Simulate the no-checkpoint case for the shorter jobs (the long
		// ones take astronomically many restarts — that is the point).
		simCell := "—"
		if lambda*T < 3 {
			var s metrics.Summary
			for run := 0; run < p.MCRuns; run++ {
				sched, err := failure.NewPoissonNodes(1, p.MTBF, p.Seed+int64(run)*271)
				if err != nil {
					return nil, err
				}
				res, err := core.Run(core.Config{
					JobSeconds: T, Interval: T, // one giant window: restart-from-zero
					Schedule: sched, Scheme: zeroCost{},
				})
				if err != nil {
					return nil, err
				}
				s.Add(res.Completion)
			}
			simCell = fmt.Sprintf("%.3f (±%.3f)", s.Mean()/T, s.CI95()/T)
		}
		table.AddRow(hours, lambda*T, e1/T, e3/T, simCell)
		noChk.Append(hours, e1/T)
		chk.Append(hours, e3/T)
	}
	var out strings.Builder
	out.WriteString(table.String())
	chart := report.Chart{
		Title: "E[T]/T vs job length: restart-from-zero vs checkpointed",
		Width: 70, Height: 16, LogY: true,
		XLabel: "job length (h)", YLabel: "E[T]/T",
	}
	out.WriteString("\n" + chart.Render(noChk, chk))
	out.WriteString("\nEq. 1 grows like e^{lambda*T}: the 16-hour job without checkpoints\n")
	out.WriteString("expects hundreds of restarts, while checkpointing holds the ratio near 1 —\n")
	out.WriteString("Section V-A's motivation, with the Monte-Carlo runs confirming Eq. 1 directly\n")
	out.WriteString("in the regime where simulation is feasible.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{noChk, chk}}, nil
}

// zeroCost makes the engine model pure restart-from-zero.
type zeroCost struct{}

func (zeroCost) Name() string                                { return "none" }
func (zeroCost) CheckpointOverhead(float64) (float64, error) { return 0, nil }
func (zeroCost) RecoveryTime(int) (float64, error)           { return math.SmallestNonzeroFloat64, nil }
