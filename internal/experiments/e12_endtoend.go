package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/core"
	"dvdc/internal/diskfull"
	"dvdc/internal/failure"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E12", "End-to-end 2-day job: full-stack event simulation, both schemes", runE12)
}

// runE12 is the capstone: the entire job of Fig. 5 run through the
// discrete-event engine with each scheme's own overhead AND recovery models
// (not the constant-cost abstraction of the analytic curves), at each
// scheme's analytically optimal interval, across many failure seeds.
func runE12(p Params) (*Result, error) {
	m := p.model()
	dl, df, layout, err := figure5Models(p)
	if err != nil {
		return nil, err
	}
	optDl, err := analytic.OptimalInterval(m, dl, 5, p.Job/4)
	if err != nil {
		return nil, err
	}
	optDf, err := analytic.OptimalInterval(m, df, 5, p.Job/4)
	if err != nil {
		return nil, err
	}

	dvdcScheme, err := core.NewDVDCScheme(dl.Platform, layout, p.incrementalSpec())
	if err != nil {
		return nil, err
	}
	dfScheme, err := diskfull.New(dl.Platform, p.nas(), len(layout.VMs),
		len(layout.VMs)/layout.Nodes, p.fullSpec(), false)
	if err != nil {
		return nil, err
	}
	dfScheme.LocalRollback = true // generous to the baseline

	type entry struct {
		scheme   core.Scheme
		interval float64
		analytic float64
	}
	entries := []entry{
		{dvdcScheme, optDl.Interval, optDl.Ratio},
		{dfScheme, optDf.Interval, optDf.Ratio},
	}
	table := report.NewTable(
		fmt.Sprintf("Full-stack simulation, %d seeds, T=%.0f s, per-node MTBF %.0f s",
			p.MCRuns, p.Job, p.MTBF*float64(layout.Nodes)),
		"scheme", "T_int (s)", "analytic E[T]/T", "simulated E[T]/T", "95% CI",
		"failures/run", "lost work/run (s)")
	series := []*metrics.Series{}
	var ratios []float64
	for _, e := range entries {
		var ratio, fails, lost metrics.Summary
		for run := 0; run < p.MCRuns; run++ {
			// Identical seeds across schemes: paired comparison.
			sched, err := failure.NewPoissonNodes(layout.Nodes, p.MTBF*float64(layout.Nodes), p.Seed+int64(run)*7919)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{
				JobSeconds: p.Job, Interval: e.interval, DetectSec: 1,
				Schedule: sched, Scheme: e.scheme,
			})
			if err != nil {
				return nil, err
			}
			ratio.Add(res.Ratio)
			fails.Add(float64(res.Failures))
			lost.Add(res.LostWork)
		}
		table.AddRow(e.scheme.Name(), e.interval, e.analytic, ratio.Mean(),
			fmt.Sprintf("±%.4f", ratio.CI95()), fails.Mean(), lost.Mean())
		s := &metrics.Series{Label: e.scheme.Name()}
		s.Append(e.interval, ratio.Mean())
		series = append(series, s)
		ratios = append(ratios, ratio.Mean())
	}
	var out strings.Builder
	out.WriteString(table.String())
	reduction := 1 - ratios[0]/ratios[1]
	fmt.Fprintf(&out, "\nSimulated completion-time reduction: %.1f%% (analytic curves predicted %.1f%%;\n",
		reduction*100, (1-optDl.Ratio/optDf.Ratio)*100)
	out.WriteString("the full-stack run includes each scheme's real recovery path, which the\n")
	out.WriteString("analytic model folds into a constant Tr — agreement within noise validates both).\n")
	return &Result{Text: out.String(), Series: series}, nil
}
