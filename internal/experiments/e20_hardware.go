package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/metrics"
	"dvdc/internal/netsim"
	"dvdc/internal/report"
	"dvdc/internal/storage"
)

func init() {
	register("E20", "Hardware sensitivity: does diskless still win on faster fabric/NAS?", runE20)
}

// runE20 asks the obvious reviewer question about Fig. 5: the comparison
// was run on GigE-era hardware — does the conclusion survive faster links
// and faster storage? The fabric and the NAS are swept independently; the
// reduction shrinks as the NAS catches up but the diskless scheme keeps its
// lead at every point because the baseline re-centralizes what DVDC spreads.
func runE20(p Params) (*Result, error) {
	m := p.model()
	layout, err := cluster.BuildDistributed(p.Nodes, p.Stacks, 1)
	if err != nil {
		return nil, err
	}
	type hw struct {
		name   string
		link   netsim.Link
		nasBps float64 // array sequential write bandwidth
	}
	configs := []hw{
		{"2012: GigE + 200 MiB/s array", netsim.GigE, 200 * float64(1<<20)},
		{"GigE + 1 GiB/s array", netsim.GigE, float64(1 << 30)},
		{"10GigE + 200 MiB/s array", netsim.TenGigE, 200 * float64(1<<20)},
		{"10GigE + 1 GiB/s array", netsim.TenGigE, float64(1 << 30)},
		{"10GigE + 4 GiB/s flash", netsim.TenGigE, 4 * float64(1<<30)},
	}
	table := report.NewTable(
		"Fig. 5 optima across hardware generations (same paper workload)",
		"hardware", "diskless overhead", "disk-full overhead", "reduction")
	series := &metrics.Series{Label: "reduction %"}
	for i, cfg := range configs {
		fab, err := netsim.NewFabric(layout.Nodes, cfg.link)
		if err != nil {
			return nil, err
		}
		plat := analytic.Platform{
			Fabric:     fab,
			CaptureBps: 4 * float64(1<<30),
			XORBps:     3 * float64(1<<30),
			BaseSec:    0.040,
		}
		nas := storage.NAS{
			Ingest: cfg.link,
			Array:  storage.Disk{SeekSec: 2e-3, WriteBps: cfg.nasBps, ReadBps: cfg.nasBps * 1.1},
		}
		dl, err := analytic.NewDiskless(plat, layout, p.incrementalSpec())
		if err != nil {
			return nil, err
		}
		df, err := analytic.NewDiskfull(plat, nas, len(layout.VMs), p.fullSpec(), false)
		if err != nil {
			return nil, err
		}
		optDl, err := analytic.OptimalInterval(m, dl, 5, p.Job/4)
		if err != nil {
			return nil, err
		}
		optDf, err := analytic.OptimalInterval(m, df, 5, p.Job/4)
		if err != nil {
			return nil, err
		}
		red := 1 - optDl.Ratio/optDf.Ratio
		table.AddRow(cfg.name,
			fmt.Sprintf("%.2f%%", (optDl.Ratio-1)*100),
			fmt.Sprintf("%.2f%%", (optDf.Ratio-1)*100),
			fmt.Sprintf("%.1f%%", red*100))
		series.Append(float64(i), red*100)
	}
	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nFaster NAS and fabric shrink the baseline's penalty but never erase it: the\n")
	out.WriteString("baseline funnels the whole cluster's images through one box while DVDC's\n")
	out.WriteString("traffic stays per-node-constant, so the ordering of Fig. 5 is robust to the\n")
	out.WriteString("hardware generation (only its magnitude is era-specific).\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{series}}, nil
}
