package experiments

import (
	"fmt"
	"strings"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/metrics"
	"dvdc/internal/parity"
	"dvdc/internal/report"
)

func init() {
	register("E4", "Parity work distribution and XOR throughput vs cluster size", runE4)
}

// runE4 validates Sec. IV-B's claim that distributing parity "should relieve
// the CPU burden by a factor linear in the amount of machines": per-node
// parity bytes stay flat as the DVDC cluster grows, while a Fig.-3 dedicated
// checkpoint node's burden grows linearly. It also measures the raw XOR
// kernel, the in-memory operation the paper contrasts with disk writes.
func runE4(p Params) (*Result, error) {
	ckptBytes := p.WSSBytes // one VM's incremental checkpoint payload
	table := report.NewTable(
		"Per-node parity workload per checkpoint round (bytes XORed)",
		"nodes", "VMs", "DVDC max/node (MiB)", "dedicated node (MiB)", "ratio")
	dvdcSeries := &metrics.Series{Label: "DVDC max per node"}
	dedSeries := &metrics.Series{Label: "dedicated parity node"}
	for _, nodes := range []int{4, 8, 16, 32, 64, 128, 256} {
		stacks := 1
		dv, err := cluster.BuildDistributedGroups(nodes, stacks, 1, 3)
		if err != nil {
			return nil, err
		}
		// DVDC: bytes each parity node folds = groups on it * groupSize * ckpt.
		maxPerNode := 0.0
		for n := 0; n < dv.Nodes; n++ {
			var b float64
			for _, g := range dv.ParityGroupsOnNode(n) {
				b += float64(len(dv.Groups[g].Members)) * ckptBytes
			}
			if b > maxPerNode {
				maxPerNode = b
			}
		}
		// Dedicated: the checkpoint node folds every VM's payload.
		ded, err := cluster.BuildDedicated(nodes, len(dv.VMs)/nodes)
		if err != nil {
			return nil, err
		}
		dedBytes := float64(len(ded.VMs)) * ckptBytes
		table.AddRow(nodes, len(dv.VMs),
			maxPerNode/float64(1<<20), dedBytes/float64(1<<20),
			fmt.Sprintf("%.1fx", dedBytes/maxPerNode))
		dvdcSeries.Append(float64(nodes), maxPerNode/float64(1<<20))
		dedSeries.Append(float64(nodes), dedBytes/float64(1<<20))
	}

	// XOR kernel throughput: the in-memory operation that replaces the
	// baseline's disk write.
	block := make([]byte, 1<<20)
	acc := make([]byte, 1<<20)
	for i := range block {
		block[i] = byte(i * 31)
	}
	start := time.Now()
	const reps = 512
	for i := 0; i < reps; i++ {
		if err := parity.XORInto(acc, block); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start).Seconds()
	xorBps := float64(reps*len(block)) / elapsed

	var out strings.Builder
	out.WriteString(table.String())
	chart := report.Chart{
		Title: "Parity bytes per node per round vs cluster size",
		Width: 70, Height: 16, LogX: true, LogY: true,
		XLabel: "nodes", YLabel: "MiB/node/round",
	}
	out.WriteString("\n" + chart.Render(dvdcSeries, dedSeries))
	fmt.Fprintf(&out, "\nMeasured XOR kernel: %.2f GiB/s -- vs ~0.2 GiB/s NAS disk write:\n", xorBps/float64(1<<30))
	out.WriteString("the in-memory parity step is the orders-of-magnitude win Sec. V-B describes.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{dvdcSeries, dedSeries}}, nil
}
