package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/failure"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E16", "Hardware utilization: no dedicated checkpoint nodes (Sec. IV-B)", runE16)
}

// runE16 quantifies the paper's utilization argument — "instead of having
// 'checkpointing processors' that can do no real work ... we can distribute
// the parity and allow all physical machines to host working VMs". For the
// SAME hardware budget of H nodes, DVDC computes on all H while the Fig. 1/3
// architectures idle one node; the idle node still fails (stretching
// recovery exposure) but contributes nothing. The event engine runs the same
// total work through both, with realistic repair delays engaging the
// degraded-rate model.
func runE16(p Params) (*Result, error) {
	const repairHours = 4.0
	budget := p.Nodes + 1 // hardware budget: paper cluster + 1 node
	table := report.NewTable(
		fmt.Sprintf("Same %d-node budget, same total work, %d seeds, %gh repair time",
			budget, p.MCRuns/3+1, repairHours),
		"architecture", "compute nodes", "wall E[T]/T_ideal", "degraded share", "failures/run")
	series := &metrics.Series{Label: "E[T]/T_ideal"}

	// Ideal time on the full budget: the yardstick both divide by.
	idealT := p.Job

	type arch struct {
		name    string
		compute int
	}
	archs := []arch{
		{"DVDC (all nodes compute)", budget},
		{"dedicated checkpoint node (Fig. 1/3)", budget - 1},
	}
	for ai, a := range archs {
		// The same total work spread over fewer compute nodes takes
		// proportionally longer fault-free.
		scaledJob := idealT * float64(budget) / float64(a.compute)
		layout, err := cluster.BuildDistributedGroups(a.compute, p.Stacks, 1, min(3, a.compute-1))
		if err != nil {
			return nil, err
		}
		plat, err := analytic.DefaultPlatform(layout.Nodes)
		if err != nil {
			return nil, err
		}
		scheme, err := core.NewDVDCScheme(plat, layout, p.incrementalSpec())
		if err != nil {
			return nil, err
		}
		var ratio, degr, fails metrics.Summary
		for run := 0; run < p.MCRuns/3+1; run++ {
			// Failures strike the whole budget, idle node included; the
			// schedule covers `budget` nodes but only failures of compute
			// nodes matter for the rate model — conservatively we map every
			// failure onto the compute set (the dedicated node's failure
			// forces a parity rebuild, comparable to a compute recovery).
			sched, err := failure.NewPoissonNodes(layout.Nodes, p.MTBF*float64(budget), p.Seed+int64(run)*17+int64(ai))
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{
				JobSeconds: scaledJob, Interval: 140, DetectSec: 1,
				RepairSec: repairHours * 3600,
				Schedule:  sched, Scheme: scheme,
			})
			if err != nil {
				return nil, err
			}
			ratio.Add(res.Completion / idealT)
			degr.Add(res.DegradedTime / res.Completion)
			fails.Add(float64(res.Failures))
		}
		table.AddRow(a.name, a.compute, ratio.Mean(),
			fmt.Sprintf("%.1f%%", degr.Mean()*100), fails.Mean())
		series.Append(float64(a.compute), ratio.Mean())
	}
	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nOn an equal hardware budget the dedicated-node architectures start ~" +
		fmt.Sprintf("%.0f%%", 100.0/float64(budget-1)) + "\nbehind before any failure occurs; DVDC converts that idle capacity into\nthroughput, which is the Sec. IV-B argument in wall-clock terms.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{series}}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
