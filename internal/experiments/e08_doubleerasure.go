package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dvdc/internal/metrics"
	"dvdc/internal/parity"
	"dvdc/internal/report"
)

func init() {
	register("E8", "Double-erasure codes (RDP, RS) vs single XOR parity", runE8)
}

// runE8 evaluates the stronger codes the paper cites (Wang et al.'s
// double-erasure in-memory checkpointing via RDP): correctness under every
// double erasure, plus encode/decode throughput against plain XOR, on
// checkpoint-sized blocks.
func runE8(p Params) (*Result, error) {
	const block = 1 << 20 // 1 MiB per member block
	rng := rand.New(rand.NewSource(p.Seed))

	table := report.NewTable(
		"Erasure codes over 1 MiB member blocks",
		"code", "data+parity", "tolerance", "encode GiB/s", "worst rebuild GiB/s", "all-erasure check")
	thr := &metrics.Series{Label: "encode GiB/s"}

	// Plain XOR (RAID-5): k=6.
	{
		k := 6
		data := randBlocks(rng, k, block)
		start := time.Now()
		const reps = 24
		var par []byte
		var err error
		for i := 0; i < reps; i++ {
			par, err = parity.Parity(data...)
			if err != nil {
				return nil, err
			}
		}
		encBps := float64(reps*k*block) / time.Since(start).Seconds()
		// Rebuild throughput: reconstruct one member.
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := parity.ReconstructOne(append([][]byte{par}, data[1:]...)...); err != nil {
				return nil, err
			}
		}
		recBps := float64(reps*k*block) / time.Since(start).Seconds()
		ok := "all single erasures OK"
		for lost := 0; lost < k; lost++ {
			surv := [][]byte{par}
			for i, d := range data {
				if i != lost {
					surv = append(surv, d)
				}
			}
			got, err := parity.ReconstructOne(surv...)
			if err != nil || !bytes.Equal(got, data[lost]) {
				ok = fmt.Sprintf("FAILED at erasure %d", lost)
			}
		}
		table.AddRow("XOR (RAID-5)", fmt.Sprintf("%d+1", k), 1,
			encBps/float64(1<<30), recBps/float64(1<<30), ok)
		thr.Append(1, encBps/float64(1<<30))
	}

	// RDP(7): 6 data + 2 parity.
	{
		coder, err := parity.NewRDP(7)
		if err != nil {
			return nil, err
		}
		k := coder.DataBlocks()
		data := randBlocks(rng, k, block-block%(7-1))
		start := time.Now()
		const reps = 12
		var row, diag []byte
		for i := 0; i < reps; i++ {
			row, diag, err = coder.Encode(data)
			if err != nil {
				return nil, err
			}
		}
		encBps := float64(reps*k*len(data[0])) / time.Since(start).Seconds()
		// Worst-case rebuild: two data columns.
		shards := make([][]byte, coder.TotalBlocks())
		rebuildOnce := func() error {
			for i, d := range data {
				shards[i] = append(shards[i][:0], d...)
			}
			shards[7-1] = append(shards[7-1][:0], row...)
			shards[7] = append(shards[7][:0], diag...)
			shards[0], shards[1] = nil, nil
			return coder.Reconstruct(shards)
		}
		start = time.Now()
		for i := 0; i < reps; i++ {
			if err := rebuildOnce(); err != nil {
				return nil, err
			}
		}
		recBps := float64(reps*k*len(data[0])) / time.Since(start).Seconds()
		ok := checkAllDoubles(coder, data, row, diag)
		table.AddRow("RDP(p=7)", fmt.Sprintf("%d+2", k), 2,
			encBps/float64(1<<30), recBps/float64(1<<30), ok)
		thr.Append(2, encBps/float64(1<<30))
	}

	// Reed-Solomon 6+2 and 6+3.
	for _, m := range []int{2, 3} {
		k := 6
		coder, err := parity.NewRS(k, m)
		if err != nil {
			return nil, err
		}
		data := randBlocks(rng, k, block)
		start := time.Now()
		const reps = 4
		var par [][]byte
		for i := 0; i < reps; i++ {
			par, err = coder.Encode(data)
			if err != nil {
				return nil, err
			}
		}
		encBps := float64(reps*k*block) / time.Since(start).Seconds()
		shards := make([][]byte, k+m)
		start = time.Now()
		for i := 0; i < reps; i++ {
			for j, d := range data {
				shards[j] = append([]byte(nil), d...)
			}
			for j, pr := range par {
				shards[k+j] = append([]byte(nil), pr...)
			}
			for e := 0; e < m; e++ {
				shards[e] = nil
			}
			if err := coder.Reconstruct(shards); err != nil {
				return nil, err
			}
		}
		recBps := float64(reps*k*block) / time.Since(start).Seconds()
		table.AddRow(fmt.Sprintf("RS(%d,%d) GF(256)", k, m), fmt.Sprintf("%d+%d", k, m), m,
			encBps/float64(1<<30), recBps/float64(1<<30), "exhaustive in unit tests")
		thr.Append(float64(m), encBps/float64(1<<30))
	}

	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nXOR's word-wise kernel is fastest; RDP buys double tolerance at XOR-class\n")
	out.WriteString("speed (two XOR passes), while GF(256) RS generalizes to any m at table-lookup\n")
	out.WriteString("cost -- matching the paper's narrative for adopting RDP-class codes.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{thr}}, nil
}

func randBlocks(rng *rand.Rand, k, n int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, n)
		rng.Read(out[i])
	}
	return out
}

func checkAllDoubles(coder *parity.RDP, data [][]byte, row, diag []byte) string {
	total := coder.TotalBlocks()
	golden := make([][]byte, total)
	copy(golden, data)
	golden[total-2] = row
	golden[total-1] = diag
	for a := 0; a < total; a++ {
		for b := a + 1; b < total; b++ {
			shards := make([][]byte, total)
			for i := range golden {
				shards[i] = append([]byte(nil), golden[i]...)
			}
			shards[a], shards[b] = nil, nil
			if err := coder.Reconstruct(shards); err != nil {
				return fmt.Sprintf("FAILED (%d,%d): %v", a, b, err)
			}
			for i := range golden {
				if !bytes.Equal(shards[i], golden[i]) {
					return fmt.Sprintf("MISMATCH (%d,%d) shard %d", a, b, i)
				}
			}
		}
	}
	return "all double erasures OK"
}
