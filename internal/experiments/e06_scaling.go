package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E6", "Optimal overhead ratio vs cluster size and MTBF", runE6)
}

// runE6 extends Fig. 5's single configuration across the scaling axis the
// paper's introduction motivates: as clusters grow (and the system MTBF
// shrinks proportionally), the disk-full baseline's single NAS saturates
// while DVDC's balanced exchange stays flat — the gap widens exactly where
// the paper says future machines will live.
func runE6(p Params) (*Result, error) {
	table := report.NewTable(
		"Overhead (E[T]/T - 1) at each scheme's optimal interval",
		"nodes", "VMs", "system MTBF (h)", "diskless", "disk-full", "reduction")
	dl := &metrics.Series{Label: "diskless (DVDC)"}
	df := &metrics.Series{Label: "disk-full (NAS)"}
	perNodeMTBF := p.MTBF * float64(p.Nodes) // hold per-node reliability fixed
	for _, nodes := range []int{4, 8, 16, 32, 64} {
		layout, err := cluster.BuildDistributedGroups(nodes, p.Stacks, 1, 3)
		if err != nil {
			return nil, err
		}
		plat, err := analytic.DefaultPlatform(nodes)
		if err != nil {
			return nil, err
		}
		mtbf := perNodeMTBF / float64(nodes)
		m := analytic.Model{Lambda: 1 / mtbf, T: p.Job, Repair: p.Repair}
		dlm, err := analytic.NewDiskless(plat, layout, p.incrementalSpec())
		if err != nil {
			return nil, err
		}
		dfm, err := analytic.NewDiskfull(plat, p.nas(), len(layout.VMs), p.fullSpec(), false)
		if err != nil {
			return nil, err
		}
		optDl, err := analytic.OptimalInterval(m, dlm, 1, p.Job/4)
		if err != nil {
			return nil, err
		}
		optDf, err := analytic.OptimalInterval(m, dfm, 1, p.Job/4)
		if err != nil {
			return nil, err
		}
		table.AddRow(nodes, len(layout.VMs), mtbf/3600,
			fmt.Sprintf("%.2f%%", (optDl.Ratio-1)*100),
			fmt.Sprintf("%.2f%%", (optDf.Ratio-1)*100),
			fmt.Sprintf("%.1f%%", (1-optDl.Ratio/optDf.Ratio)*100))
		dl.Append(float64(nodes), (optDl.Ratio-1)*100)
		df.Append(float64(nodes), (optDf.Ratio-1)*100)
	}
	var out strings.Builder
	out.WriteString(table.String())
	chart := report.Chart{
		Title: "Overhead at optimal interval vs cluster size (per-node MTBF fixed)",
		Width: 70, Height: 16, LogX: true,
		XLabel: "nodes", YLabel: "overhead %",
	}
	out.WriteString("\n" + chart.Render(dl, df))
	out.WriteString("\nThe NAS bottleneck makes the baseline's overhead explode with scale while\nDVDC's distributed exchange keeps per-node traffic constant.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{dl, df}}, nil
}
