package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/core"
	"dvdc/internal/failure"
	"dvdc/internal/metrics"
	"dvdc/internal/report"
)

func init() {
	register("E13", "Sensitivity of the Poisson model: Weibull failure processes (Sec. V)", runE13)
}

// runE13 probes the assumption the paper flags itself ("cases where the
// Poisson assumption may not hold, cf. the bathtub curve"): the job is
// simulated under Weibull inter-arrival processes with the SAME mean but
// different shapes, and the Poisson-based analytic prediction is compared
// against each.
func runE13(p Params) (*Result, error) {
	m := p.model()
	const interval, overhead = 600.0, 20.0
	want, err := m.ExpectedWithCheckpoint(interval, overhead)
	if err != nil {
		return nil, err
	}
	table := report.NewTable(
		fmt.Sprintf("Simulated E[T] under Weibull failures (mean MTBF %.0f s) vs Poisson-based prediction %.4g s",
			p.MTBF, want),
		"shape k", "regime", "simulated mean (s)", "95% CI", "vs Poisson model")
	series := &metrics.Series{Label: "simulated/analytic"}
	shapes := []struct {
		k     float64
		label string
	}{
		{0.5, "infant mortality (DFR)"},
		{0.7, "early-life (DFR)"},
		{1.0, "exponential (Poisson)"},
		{1.5, "wear-out (IFR)"},
		{3.0, "strong wear-out (IFR)"},
	}
	for _, sh := range shapes {
		// Scale so the mean inter-arrival equals the MTBF.
		w0, err := failure.NewWeibull(sh.k, 1, 1)
		if err != nil {
			return nil, err
		}
		scale := p.MTBF / w0.MeanInterarrival()
		var s metrics.Summary
		for run := 0; run < p.MCRuns; run++ {
			proc, err := failure.NewWeibull(sh.k, scale, p.Seed+int64(run)*613)
			if err != nil {
				return nil, err
			}
			sched, err := failure.NewNodeSchedule([]failure.Process{proc})
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{
				JobSeconds: p.Job, Interval: interval,
				Schedule: sched, Scheme: constCost{ov: overhead, rec: p.Repair},
			})
			if err != nil {
				return nil, err
			}
			s.Add(res.Completion)
		}
		ratio := s.Mean() / want
		table.AddRow(sh.k, sh.label, s.Mean(), fmt.Sprintf("±%.0f", s.CI95()),
			fmt.Sprintf("%+.1f%%", (ratio-1)*100))
		series.Append(sh.k, ratio)
	}
	var out strings.Builder
	out.WriteString(table.String())
	out.WriteString("\nAt Fig. 5 scales (interval << MTBF) the prediction is dominated by the MEAN\n")
	out.WriteString("failure rate: even strongly non-exponential shapes (k = 0.5 .. 3) stay within\n")
	out.WriteString("~1% of the Poisson-based equations, with only a mild ordering (decreasing-\n")
	out.WriteString("hazard clustering is slightly kinder to checkpointing). The paper's\n")
	out.WriteString("tractability assumption is safe in this regime.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{series}}, nil
}
