package experiments

import (
	"strings"
	"testing"
)

// fastParams shrinks the work so the whole registry runs in test time.
func fastParams() Params {
	p := Default()
	p.SweepPoints = 24
	p.MCRuns = 6
	return p
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E2", "E20", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(ids), ids)
	}
	for _, id := range want {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("E99", Default()); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestInvalidParams(t *testing.T) {
	p := Default()
	p.Nodes = 0
	if _, err := Run("E1", p); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	p := fastParams()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id || res.Title == "" {
				t.Errorf("metadata: %+v", res)
			}
			if len(res.Text) < 100 {
				t.Errorf("suspiciously short output (%d bytes):\n%s", len(res.Text), res.Text)
			}
		})
	}
}

func TestE1HeadlineShape(t *testing.T) {
	res, err := Run("E1", fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(res.Series))
	}
	_, dlMin := res.Series[0].MinY()
	_, dfMin := res.Series[1].MinY()
	if dlMin >= dfMin {
		t.Errorf("diskless minimum %v not below disk-full %v", dlMin, dfMin)
	}
	if !strings.Contains(res.Text, "reduces expected completion time") {
		t.Error("missing headline sentence")
	}
}

func TestE3AllArchitecturesSurvive(t *testing.T) {
	res, err := Run("E3", fastParams())
	if err != nil {
		t.Fatal(err)
	}
	// Every architecture row must report full single-failure survival.
	for _, frac := range []string{"5/5", "4/4"} {
		if !strings.Contains(res.Text, frac) {
			t.Errorf("expected survival fraction %q in:\n%s", frac, res.Text)
		}
	}
	if strings.Contains(res.Text, "FAILED") {
		t.Errorf("injection failure reported:\n%s", res.Text)
	}
}

func TestE8CodesAllPass(t *testing.T) {
	res, err := Run("E8", fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Text, "FAILED") || strings.Contains(res.Text, "MISMATCH") {
		t.Errorf("erasure check failed:\n%s", res.Text)
	}
}
