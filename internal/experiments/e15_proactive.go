package experiments

import (
	"fmt"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/metrics"
	"dvdc/internal/migrate"
	"dvdc/internal/report"
	"dvdc/internal/vm"
)

func init() {
	register("E15", "Proactive evacuation vs reactive rollback (intro benefit #2)", runE15)
}

// runE15 quantifies the paper's second enumerated virtualization benefit —
// "moving state: live migration away from failing nodes" — against the
// reactive rollback-and-reconstruct path. With a failure predictor of
// accuracy p, a predicted failure costs one node evacuation (pre-copy of
// its VMs, no work lost anywhere); an unpredicted one costs the usual lost
// window plus parity reconstruction. The expected completion time follows
// from the Section V machinery with the unpredicted rate (1-p)*lambda plus
// an additive evacuation charge:
//
//	W = E_chk[(1-p)λ] / (1 - p·λ·T_evac)
//
// A byte-real evacuation of the in-process cluster grounds T_evac.
func runE15(p Params) (*Result, error) {
	dl, _, layout, err := figure5Models(p)
	if err != nil {
		return nil, err
	}
	opt, err := analytic.OptimalInterval(p.model(), dl, 5, p.Job/4)
	if err != nil {
		return nil, err
	}
	scheme, err := core.NewDVDCScheme(dl.Platform, layout, p.incrementalSpec())
	if err != nil {
		return nil, err
	}
	rec, err := scheme.RecoveryTime(0)
	if err != nil {
		return nil, err
	}
	// Evacuation charge: every hosted VM pre-copies through the node link;
	// conservatively the whole migration (not just downtime) is charged as
	// a pause.
	vmsPerNode := len(layout.VMs) / layout.Nodes
	evac := 0.0
	for i := 0; i < vmsPerNode; i++ {
		res, err := migrate.SimulatePrecopy(float64(p.ImageBytes),
			vm.SaturatingDirty{WriteRate: p.WriteRate, WSSBytes: p.WSSBytes},
			migrate.DefaultPrecopyConfig())
		if err != nil {
			return nil, err
		}
		evac += res.TotalSec
	}
	lambda := 1 / p.MTBF

	table := report.NewTable(
		fmt.Sprintf("Expected completion (T=%.0f s, evac charge %.0f s/event, reactive recovery %.0f s/event)",
			p.Job, evac, rec),
		"predictor accuracy", "E[T]/T", "vs reactive", "evacuations", "rollbacks")
	series := &metrics.Series{Label: "E[T]/T"}
	var reactive float64
	for _, acc := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} {
		mm := analytic.Model{Lambda: (1 - acc) * lambda, T: p.Job, Repair: rec}
		var base float64
		if acc < 1 {
			base, err = mm.ExpectedWithCheckpoint(opt.Interval, opt.Overhead)
			if err != nil {
				return nil, err
			}
		} else {
			// No unpredicted failures: fault-free run plus checkpoints.
			base = p.Job * (1 + opt.Overhead/opt.Interval)
		}
		den := 1 - acc*lambda*evac
		if den <= 0 {
			return nil, fmt.Errorf("evacuation rate exceeds capacity")
		}
		w := base / den
		if acc == 0 {
			reactive = w
		}
		table.AddRow(fmt.Sprintf("%.0f%%", acc*100), w/p.Job,
			fmt.Sprintf("%+.2f%%", (w/reactive-1)*100),
			fmt.Sprintf("%.1f/run", acc*lambda*w),
			fmt.Sprintf("%.1f/run", (1-acc)*lambda*w))
		series.Append(acc, w/p.Job)
	}

	// Byte-real grounding: evacuate a node of the in-process cluster and
	// report what actually moved.
	l2, err := cluster.BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		return nil, err
	}
	cl, err := core.NewCluster(l2, 256, vm.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	for i, name := range cl.VMNames() {
		m, _ := cl.Machine(name)
		vm.Run(vm.NewUniform(int64(i)), m, 300)
	}
	if err := cl.CheckpointRound(); err != nil {
		return nil, err
	}
	rep, err := cl.EvacuateNode(0, nil)
	if err != nil {
		return nil, err
	}
	var moved int64
	for _, mv := range rep.Moves {
		moved += mv.Stats.BytesSent
	}

	var out strings.Builder
	out.WriteString(table.String())
	fmt.Fprintf(&out, "\nByte-real evacuation of node 0 (6-node cluster, 1 MiB guests): %d VMs moved,\n", len(rep.Moves))
	fmt.Fprintf(&out, "%.1f MiB transferred, zero rollbacks, parity verified, degraded=%v.\n",
		float64(moved)/(1<<20), rep.Degraded)
	out.WriteString("\nEven charging the full migration (not just its millisecond downtime) per\n")
	out.WriteString("predicted failure, prediction accuracy converts directly into completion-time\n")
	out.WriteString("savings: evacuation avoids both the lost window and the cluster-wide rollback.\n")
	return &Result{Text: out.String(), Series: []*metrics.Series{series}}, nil
}
