package remus

import (
	"bytes"
	"math/rand"
	"testing"

	"dvdc/internal/vm"
)

func newPair(t *testing.T) (*Pair, *vm.Machine) {
	t.Helper()
	m, err := vm.NewMachine("svc", 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPair(m)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestPairEpochCommitsDirtyState(t *testing.T) {
	p, m := newPair(t)
	rng := rand.New(rand.NewSource(1))
	for e := 0; e < 5; e++ {
		for w := 0; w < 20; w++ {
			m.TouchPage(rng.Intn(m.NumPages()), rng.Uint64())
		}
		committed := m.Image()
		if err := p.Epoch(); err != nil {
			t.Fatal(err)
		}
		if !p.StandbyMatchesCommitted(committed) {
			t.Fatalf("epoch %d: standby diverged", e)
		}
	}
	if p.Stats().Epochs != 5 || p.Stats().BytesShipped == 0 {
		t.Errorf("stats: %+v", p.Stats())
	}
}

func TestFailoverLosesOnlySpeculativeWork(t *testing.T) {
	p, m := newPair(t)
	m.TouchPage(3, 100)
	if err := p.Epoch(); err != nil {
		t.Fatal(err)
	}
	committed := m.Image()
	// Speculative work after the epoch: lost on failover.
	m.TouchPage(3, 999)
	m.TouchPage(9, 998)
	standby, err := p.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(standby.Image(), committed) {
		t.Error("failover image is not the committed epoch")
	}
	if p.Stats().Failovers != 1 {
		t.Error("failover not counted")
	}
}

func TestEpochShipsOnlyDirtyPages(t *testing.T) {
	p, m := newPair(t)
	if err := p.Epoch(); err != nil { // nothing dirty
		t.Fatal(err)
	}
	if p.Stats().PagesShipped != 0 {
		t.Errorf("idle epoch shipped %d pages", p.Stats().PagesShipped)
	}
	m.TouchPage(1, 1)
	m.TouchPage(2, 2)
	if err := p.Epoch(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().PagesShipped != 2 {
		t.Errorf("shipped %d pages, want 2", p.Stats().PagesShipped)
	}
}

func TestNewPairValidation(t *testing.T) {
	if _, err := NewPair(nil); err == nil {
		t.Error("nil machine should fail")
	}
}

func TestSchemeOverheadBackpressure(t *testing.T) {
	spec := vm.Spec{
		Name: "hot", ImageBytes: 1 << 30,
		Dirty: vm.LinearDirty{RatePerSec: 500e6, CapBytes: 1 << 30}, // 500 MB/s dirt
	}
	s, err := NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A 1-second epoch dirties 500 MB; GigE drains 125 MB/s: heavy stall.
	ov, err := s.CheckpointOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if ov < 2 {
		t.Errorf("overhead %v s, expected >= 2 s of backpressure", ov)
	}
	// A cool workload has near-pause-only overhead.
	cool := vm.Spec{Name: "cool", ImageBytes: 1 << 30, Dirty: vm.LinearDirty{RatePerSec: 1 << 20, CapBytes: 1 << 26}}
	cs, _ := NewScheme(cool)
	ov, err = cs.CheckpointOverhead(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ov > 0.05 {
		t.Errorf("cool overhead %v s, want small", ov)
	}
	if _, err := s.CheckpointOverhead(0); err == nil {
		t.Error("zero window should fail")
	}
}

func TestSchemeRecoveryConstant(t *testing.T) {
	spec := vm.Spec{Name: "g", ImageBytes: 1 << 30, Dirty: vm.LinearDirty{RatePerSec: 1, CapBytes: 1}}
	s, _ := NewScheme(spec)
	r, err := s.RecoveryTime(3)
	if err != nil || r != s.FailoverSec {
		t.Errorf("recovery = %v, %v", r, err)
	}
}

func TestSustainableEpoch(t *testing.T) {
	// 10 MB/s dirty rate over GigE: drain(e) = 10e6*e/125e6 + lat < e for
	// any e above ~latency/(1-0.08); the sustainable epoch should be tiny,
	// enabling Cully's tens-of-epochs-per-second.
	spec := vm.Spec{Name: "g", ImageBytes: 1 << 30, Dirty: vm.LinearDirty{RatePerSec: 10e6, CapBytes: 1 << 30}}
	s, _ := NewScheme(spec)
	e := s.SustainableEpoch()
	if e > 0.025 {
		t.Errorf("sustainable epoch %v s: should support ~40/s", e)
	}
	// A dirty rate above the link can never converge below the cap: epoch
	// must be large (the buffer only drains once dirtying saturates).
	hot := vm.Spec{Name: "h", ImageBytes: 1 << 30, Dirty: vm.LinearDirty{RatePerSec: 200e6, CapBytes: 1 << 28}}
	hs, _ := NewScheme(hot)
	if he := hs.SustainableEpoch(); he < e {
		t.Errorf("hot workload epoch %v should exceed cool %v", he, e)
	}
}

func TestMemoryFactor(t *testing.T) {
	if MemoryFactor != 2.0 {
		t.Error("Remus memory factor must be a full replica (2x)")
	}
}
