// Package remus implements the Remus-style active/standby replication
// baseline the paper compares against (Cully et al., NSDI'08). Each
// protected VM runs on an active host and streams epoch-based incremental
// checkpoints to a standby host, which always holds the most recent
// committed image; on failure the standby activates in roughly constant
// time, losing at most one epoch of work.
//
// The package provides both the byte-real Pair (used in tests and the E7
// comparison) and a core.Scheme timing model for the discrete-event engine.
// The structural contrast with DVDC (Sec. VI): Remus consumes a full image
// replica per VM (2x memory) and dedicates standby capacity, while DVDC
// stores one parity block per RAID group (1 + 1/groupSize memory factor) and
// keeps every node computing, but must roll the whole group back and run a
// parity reconstruction on failure.
package remus

import (
	"bytes"
	"fmt"
	"math"

	"dvdc/internal/core"
	"dvdc/internal/netsim"
	"dvdc/internal/vm"
)

// Pair is one active/standby replication pair (byte-real).
type Pair struct {
	active  *vm.Machine
	standby []byte // committed image on the standby host
	buffer  []bufferedPage
	epoch   uint64
	stats   PairStats
}

type bufferedPage struct {
	index int
	data  []byte
}

// PairStats counts replication work.
type PairStats struct {
	Epochs       uint64
	PagesShipped int64
	BytesShipped int64
	Failovers    int
}

// NewPair starts protecting a machine: the standby begins with a full copy.
func NewPair(active *vm.Machine) (*Pair, error) {
	if active == nil {
		return nil, fmt.Errorf("remus: nil active machine")
	}
	p := &Pair{active: active, standby: active.Image()}
	active.BeginEpoch()
	return p, nil
}

// Active returns the protected machine.
func (p *Pair) Active() *vm.Machine { return p.active }

// Stats returns replication counters.
func (p *Pair) Stats() PairStats { return p.stats }

// Epoch runs one Remus epoch: pause (implicit — the caller stops mutating),
// capture the dirty pages into the replication buffer, resume, then commit
// the buffer to the standby. Speculative execution between capture and
// commit is the caller's concern; after Epoch returns, the standby holds the
// state at capture time.
func (p *Pair) Epoch() error {
	dirty := p.active.DirtyPages()
	p.buffer = p.buffer[:0]
	for _, i := range dirty {
		p.buffer = append(p.buffer, bufferedPage{index: i, data: append([]byte(nil), p.active.Page(i)...)})
	}
	p.active.BeginEpoch()
	// Commit: apply the buffer to the standby image (in a real deployment
	// this happens asynchronously; the state outcome is identical).
	ps := p.active.PageSize()
	for _, bp := range p.buffer {
		copy(p.standby[bp.index*ps:(bp.index+1)*ps], bp.data)
		p.stats.PagesShipped++
		p.stats.BytesShipped += int64(len(bp.data))
	}
	p.epoch++
	p.stats.Epochs = p.epoch
	return nil
}

// Failover activates the standby: it returns a machine reconstructed from
// the last committed epoch. Work done after that epoch is lost (Remus "runs
// in the past" relative to the active's speculation).
func (p *Pair) Failover() (*vm.Machine, error) {
	m, err := vm.NewMachine(p.active.ID()+"/standby", p.active.NumPages(), p.active.PageSize())
	if err != nil {
		return nil, err
	}
	if err := m.LoadImage(p.standby); err != nil {
		return nil, err
	}
	p.stats.Failovers++
	return m, nil
}

// StandbyMatchesCommitted reports whether the standby equals the given
// committed image (test invariant).
func (p *Pair) StandbyMatchesCommitted(img []byte) bool {
	return bytes.Equal(p.standby, img)
}

// MemoryFactor is Remus's state overhead: a full replica per VM.
const MemoryFactor = 2.0

// Scheme is the Remus timing model for the discrete-event engine. The
// engine's Interval plays the role of the epoch length; checkpoints are the
// epoch commits.
type Scheme struct {
	Link        netsim.Link
	CaptureBps  float64
	PauseSec    float64 // fixed per-epoch pause (buffer swap)
	FailoverSec float64
	Spec        vm.Spec
}

// NewScheme builds a Remus timing model with Cully-era defaults.
func NewScheme(spec vm.Spec) (*Scheme, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Scheme{
		Link:        netsim.GigE,
		CaptureBps:  4 * float64(1<<30),
		PauseSec:    5e-3,
		FailoverSec: 1.0,
		Spec:        spec,
	}, nil
}

// Name implements core.Scheme.
func (s *Scheme) Name() string { return "Remus (active/standby)" }

// CheckpointOverhead implements core.Scheme: the pause plus the capture,
// plus backpressure when the epoch's dirty bytes exceed what the link can
// drain within the epoch (asynchronous shipping hides transfer time only
// while the link keeps up).
func (s *Scheme) CheckpointOverhead(window float64) (float64, error) {
	if window <= 0 {
		return 0, fmt.Errorf("remus: invalid epoch window %v", window)
	}
	dirty := s.Spec.CheckpointBytes(window)
	over := s.PauseSec + dirty/s.CaptureBps
	drain := dirty/s.Link.BandwidthBps + s.Link.LatencySec
	if drain > window {
		over += drain - window // the buffer cannot drain in time; stall
	}
	return over, nil
}

// RecoveryTime implements core.Scheme: failover is near-constant — the
// standby already holds the state.
func (s *Scheme) RecoveryTime(int) (float64, error) { return s.FailoverSec, nil }

// SustainableEpoch returns the shortest epoch the link can sustain for this
// spec (where drain time equals the epoch): Cully et al. ran up to 40
// epochs/second on fast dirty-set workloads.
func (s *Scheme) SustainableEpoch() float64 {
	lo, hi := 1e-4, 3600.0
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(lo * hi)
		dirty := s.Spec.CheckpointBytes(mid)
		if dirty/s.Link.BandwidthBps+s.Link.LatencySec > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

var _ core.Scheme = (*Scheme)(nil)
