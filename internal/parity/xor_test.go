package parity

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestXORIntoBasic(t *testing.T) {
	dst := []byte{0x00, 0xff, 0xaa, 0x55}
	src := []byte{0xff, 0xff, 0x0f, 0xf0}
	if err := XORInto(dst, src); err != nil {
		t.Fatalf("XORInto: %v", err)
	}
	want := []byte{0xff, 0x00, 0xa5, 0xa5}
	if !bytes.Equal(dst, want) {
		t.Errorf("XORInto = %x, want %x", dst, want)
	}
}

func TestXORIntoLengthMismatch(t *testing.T) {
	if err := XORInto(make([]byte, 3), make([]byte, 4)); err == nil {
		t.Fatal("expected length-mismatch error, got nil")
	}
}

func TestXORIntoUnalignedTail(t *testing.T) {
	// Lengths around the 8-byte word boundary must all be handled.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65} {
		a := randBlock(rng, n)
		b := randBlock(rng, n)
		got := append([]byte(nil), a...)
		if err := XORInto(got, b); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if got[i] != a[i]^b[i] {
				t.Fatalf("n=%d: byte %d = %x, want %x", n, i, got[i], a[i]^b[i])
			}
		}
	}
}

func TestXORZeroBlocks(t *testing.T) {
	if _, err := XOR(); err == nil {
		t.Fatal("XOR() of zero blocks should error")
	}
}

func TestXORSingleBlockIsCopy(t *testing.T) {
	a := []byte{1, 2, 3}
	out, err := XOR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, a) {
		t.Errorf("XOR(a) = %v, want %v", out, a)
	}
	out[0] = 99
	if a[0] == 99 {
		t.Error("XOR must not alias its input")
	}
}

func TestReconstructOneRecoversAnyMember(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const k, n = 5, 1024
	data := make([][]byte, k)
	for i := range data {
		data[i] = randBlock(rng, n)
	}
	par, err := Parity(data...)
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < k; lost++ {
		survivors := [][]byte{par}
		for i, d := range data {
			if i != lost {
				survivors = append(survivors, d)
			}
		}
		got, err := ReconstructOne(survivors...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[lost]) {
			t.Errorf("lost=%d: reconstruction mismatch", lost)
		}
	}
}

func TestUpdateParitySmallWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k, n = 4, 512
	data := make([][]byte, k)
	for i := range data {
		data[i] = randBlock(rng, n)
	}
	par, err := Parity(data...)
	if err != nil {
		t.Fatal(err)
	}
	oldD := append([]byte(nil), data[2]...)
	data[2] = randBlock(rng, n)
	if err := UpdateParity(par, oldD, data[2]); err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyParity(par, data...)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("parity invalid after small-write update")
	}
}

func TestVerifyParityDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := [][]byte{randBlock(rng, 64), randBlock(rng, 64)}
	par, err := Parity(data...)
	if err != nil {
		t.Fatal(err)
	}
	par[10] ^= 0x01
	ok, err := VerifyParity(par, data...)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("VerifyParity accepted corrupted parity")
	}
}

// Property: XOR is self-inverse — a ^ b ^ b == a for random blocks.
func TestQuickXORSelfInverse(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		got := append([]byte(nil), a...)
		if err := XORInto(got, b); err != nil {
			return false
		}
		if err := XORInto(got, b); err != nil {
			return false
		}
		return bytes.Equal(got, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parity of k random blocks always reconstructs any erased member.
func TestQuickParityReconstruction(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%7) + 2
		n := int(nRaw) + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([][]byte, k)
		for i := range data {
			data[i] = randBlock(rng, n)
		}
		par, err := Parity(data...)
		if err != nil {
			return false
		}
		lost := rng.Intn(k)
		survivors := [][]byte{par}
		for i, d := range data {
			if i != lost {
				survivors = append(survivors, d)
			}
		}
		got, err := ReconstructOne(survivors...)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data[lost])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
