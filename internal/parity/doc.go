// Package parity implements the erasure-coding substrate used by DVDC.
//
// The paper's core scheme is single-parity XOR in the style of RAID-5: the
// checkpoints of the k virtual machines in a RAID group are XORed together
// into one parity block, and the responsibility for holding parity rotates
// across the physical nodes so that every node does useful computation while
// also protecting its peers.
//
// Beyond plain XOR the package provides the stronger codes the paper cites as
// related work: RDP (row-diagonal parity, Corbett et al.) for tolerating any
// two simultaneous erasures, and a GF(256) Reed-Solomon coder for arbitrary
// m-erasure protection. All coders operate on equal-length byte slices and
// are deterministic and allocation-conscious; the XOR kernel processes eight
// bytes per step on the aligned body of the block.
package parity
