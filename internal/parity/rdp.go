package parity

import (
	"errors"
	"fmt"
)

// RDP implements Row-Diagonal Parity (Corbett et al., FAST'04), the
// double-erasure code the paper cites via Wang et al. for in-memory
// checkpointing that survives two simultaneous failures.
//
// For a prime p, the logical array has p-1 rows and p+1 columns: columns
// 0..p-2 hold data, column p-1 holds row parity, and column p holds diagonal
// parity. Each column is one block; a block is split into p-1 equal row
// chunks. The diagonal of cell (r, c), c <= p-1, is (r+c) mod p; diagonals
// 0..p-2 are protected, diagonal p-1 is the conventional "missing" diagonal.
// Any two column erasures are recoverable by peeling: RDP's construction
// guarantees there is always a row or a stored diagonal with exactly one
// missing cell until everything is recovered.
type RDP struct {
	p int // prime parameter
}

// NewRDP constructs an RDP coder with prime parameter p >= 3. It protects
// p-1 data blocks with two parity blocks.
func NewRDP(p int) (*RDP, error) {
	if p < 3 {
		return nil, fmt.Errorf("parity: RDP needs p >= 3, got %d", p)
	}
	if !isPrime(p) {
		return nil, fmt.Errorf("parity: RDP parameter %d is not prime", p)
	}
	return &RDP{p: p}, nil
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// P returns the prime parameter.
func (c *RDP) P() int { return c.p }

// DataBlocks returns the number of data blocks the coder protects (p-1).
func (c *RDP) DataBlocks() int { return c.p - 1 }

// TotalBlocks returns data + parity block count (p+1).
func (c *RDP) TotalBlocks() int { return c.p + 1 }

// chunkLen validates the block length and returns the per-row chunk size.
func (c *RDP) chunkLen(blockLen int) (int, error) {
	rows := c.p - 1
	if blockLen == 0 || blockLen%rows != 0 {
		return 0, fmt.Errorf("parity: RDP block length %d not a positive multiple of %d", blockLen, rows)
	}
	return blockLen / rows, nil
}

// cell returns the chunk for row r of column col within blocks.
func cell(blocks [][]byte, col, r, chunk int) []byte {
	return blocks[col][r*chunk : (r+1)*chunk]
}

// Encode computes the two parity blocks for p-1 data blocks of equal length
// (a multiple of p-1 bytes). It returns (rowParity, diagParity).
func (c *RDP) Encode(data [][]byte) (rowPar, diagPar []byte, err error) {
	p := c.p
	if len(data) != p-1 {
		return nil, nil, fmt.Errorf("parity: RDP encode wants %d data blocks, got %d", p-1, len(data))
	}
	n := len(data[0])
	for i, d := range data {
		if len(d) != n {
			return nil, nil, fmt.Errorf("%w: block %d has %d bytes, want %d", ErrLengthMismatch, i, len(d), n)
		}
	}
	chunk, err := c.chunkLen(n)
	if err != nil {
		return nil, nil, err
	}
	rows := p - 1
	rowPar = make([]byte, n)
	diagPar = make([]byte, n)
	// Row parity: XOR of data columns per row.
	for col := 0; col < p-1; col++ {
		if err := XORInto(rowPar, data[col]); err != nil {
			return nil, nil, err
		}
	}
	// Diagonal parity over columns 0..p-1 (data + row parity).
	all := make([][]byte, p)
	copy(all, data)
	all[p-1] = rowPar
	for col := 0; col < p; col++ {
		for r := 0; r < rows; r++ {
			d := (r + col) % p
			if d == p-1 {
				continue // missing diagonal carries no parity
			}
			if err := XORInto(diagPar[d*chunk:(d+1)*chunk], cell(all, col, r, chunk)); err != nil {
				return nil, nil, err
			}
		}
	}
	return rowPar, diagPar, nil
}

// Reconstruct rebuilds up to two erased blocks in place. shards must have
// length p+1 with layout [data 0..p-2, rowParity, diagParity]; nil entries
// mark erasures. All present shards must share one length that is a multiple
// of p-1.
func (c *RDP) Reconstruct(shards [][]byte) error {
	p := c.p
	if len(shards) != p+1 {
		return fmt.Errorf("parity: RDP reconstruct wants %d shards, got %d", p+1, len(shards))
	}
	var missing []int
	n := -1
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
			continue
		}
		if n == -1 {
			n = len(s)
		} else if len(s) != n {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrLengthMismatch, i, len(s), n)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > 2 {
		return fmt.Errorf("parity: RDP tolerates 2 erasures, got %d", len(missing))
	}
	if n == -1 {
		return errors.New("parity: RDP reconstruct with all shards missing")
	}
	chunk, err := c.chunkLen(n)
	if err != nil {
		return err
	}
	for _, m := range missing {
		shards[m] = make([]byte, n)
	}

	// Case A: the diagonal-parity column is among the erasures. Any other
	// erased column is recoverable from row parity alone, then diagonal
	// parity is recomputed from scratch.
	diagMissing := false
	others := make([]int, 0, 2)
	for _, m := range missing {
		if m == p {
			diagMissing = true
		} else {
			others = append(others, m)
		}
	}
	if diagMissing {
		for _, m := range others {
			if err := c.recoverByRows(shards, m, chunk); err != nil {
				return err
			}
		}
		_, diag, err := c.Encode(shards[:p-1])
		if err != nil {
			return err
		}
		copy(shards[p], diag)
		return nil
	}
	if len(others) == 1 {
		return c.recoverByRows(shards, others[0], chunk)
	}

	// Case B: two erased columns among 0..p-1. Peel: repeatedly recover the
	// unique missing cell on a stored diagonal, then the unique missing cell
	// on its row.
	a, b := others[0], others[1]
	rows := p - 1
	recovered := make([]bool, 2*rows) // [0:rows) column a cells, [rows:) column b
	done := 0
	idx := func(col, r int) int {
		if col == a {
			return r
		}
		return rows + r
	}
	colOf := func(i int) int {
		if i < rows {
			return a
		}
		return b
	}
	rowOf := func(i int) int {
		if i < rows {
			return i
		}
		return i - rows
	}
	// Peeling worklist: a cell (col, r) is solvable by its diagonal if the
	// partner column has no cell on that diagonal, or the partner's cell on
	// it is already recovered. Similarly by row. Loop until fixpoint.
	for done < 2*rows {
		progress := false
		for i := 0; i < 2*rows; i++ {
			if recovered[i] {
				continue
			}
			col, r := colOf(i), rowOf(i)
			partner := a + b - col
			// Try the row: partner's cell in row r must be recovered.
			if recovered[idx(partner, r)] {
				c.solveRow(shards, col, r, chunk)
				recovered[i] = true
				done++
				progress = true
				continue
			}
			// Try the diagonal d = (r+col) mod p, if stored.
			d := (r + col) % p
			if d == p-1 {
				continue
			}
			pr := (d - partner + p) % p // partner's row on diagonal d
			if pr == p-1 || recovered[idx(partner, pr)] {
				// Partner has no cell on d (pr == p-1) or it is known.
				c.solveDiagonal(shards, col, r, d, chunk)
				recovered[i] = true
				done++
				progress = true
			}
		}
		if !progress {
			return errors.New("parity: RDP peeling stalled (corrupt shards?)")
		}
	}
	return nil
}

// recoverByRows rebuilds erased column m (a data or row-parity column) when
// it is the only erasure among columns 0..p-1, using row parity.
func (c *RDP) recoverByRows(shards [][]byte, m, chunk int) error {
	p := c.p
	for r := 0; r < p-1; r++ {
		dst := cell(shards, m, r, chunk)
		for i := range dst {
			dst[i] = 0
		}
		for col := 0; col < p; col++ {
			if col == m {
				continue
			}
			if err := XORInto(dst, cell(shards, col, r, chunk)); err != nil {
				return err
			}
		}
	}
	return nil
}

// solveRow recovers cell (col, r) as the XOR of the other cells in row r
// across columns 0..p-1 (the row-parity relation: the XOR of a full row,
// including the row-parity column, is zero).
func (c *RDP) solveRow(shards [][]byte, col, r, chunk int) {
	dst := cell(shards, col, r, chunk)
	for i := range dst {
		dst[i] = 0
	}
	for cc := 0; cc < c.p; cc++ {
		if cc == col {
			continue
		}
		_ = XORInto(dst, cell(shards, cc, r, chunk))
	}
}

// solveDiagonal recovers cell (col, r) lying on stored diagonal d as the XOR
// of the diagonal parity chunk and every other cell on that diagonal.
func (c *RDP) solveDiagonal(shards [][]byte, col, r, d, chunk int) {
	p := c.p
	dst := cell(shards, col, r, chunk)
	copy(dst, shards[p][d*chunk:(d+1)*chunk])
	for cc := 0; cc < p; cc++ {
		if cc == col {
			continue
		}
		rr := (d - cc + p) % p
		if rr == p-1 {
			continue // column cc has no cell on diagonal d
		}
		_ = XORInto(dst, cell(shards, cc, rr, chunk))
	}
}
