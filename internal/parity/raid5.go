package parity

import "fmt"

// Raid5Layout describes the rotating assignment of parity responsibility in
// a cluster of Nodes physical machines hosting Groups RAID groups, in the
// left-symmetric rotation conventional for RAID-5. Group g's parity lives on
// node (g + offset) mod Nodes; DVDC uses this to spread the parity upkeep
// evenly so no machine becomes a dedicated "checkpoint processor".
type Raid5Layout struct {
	Nodes  int // number of physical nodes (>= 2)
	Groups int // number of RAID groups laid out across the nodes
	Offset int // rotation offset, usually 0
}

// NewRaid5Layout validates and constructs a layout.
func NewRaid5Layout(nodes, groups int) (Raid5Layout, error) {
	if nodes < 2 {
		return Raid5Layout{}, fmt.Errorf("parity: RAID-5 layout needs >= 2 nodes, got %d", nodes)
	}
	if groups < 1 {
		return Raid5Layout{}, fmt.Errorf("parity: RAID-5 layout needs >= 1 group, got %d", groups)
	}
	return Raid5Layout{Nodes: nodes, Groups: groups}, nil
}

// ParityNode returns the physical node index responsible for group g's parity.
func (l Raid5Layout) ParityNode(g int) int {
	if g < 0 || g >= l.Groups {
		panic(fmt.Sprintf("parity: group %d out of range [0,%d)", g, l.Groups))
	}
	return (g + l.Offset) % l.Nodes
}

// GroupsOnNode returns the group indices whose parity node n holds.
func (l Raid5Layout) GroupsOnNode(n int) []int {
	if n < 0 || n >= l.Nodes {
		panic(fmt.Sprintf("parity: node %d out of range [0,%d)", n, l.Nodes))
	}
	var gs []int
	for g := 0; g < l.Groups; g++ {
		if l.ParityNode(g) == n {
			gs = append(gs, g)
		}
	}
	return gs
}

// ParityLoad returns, per node, how many groups' parity it maintains. A
// balanced layout differs by at most one across nodes whenever Groups is not
// a multiple of Nodes, and is exactly equal when it is.
func (l Raid5Layout) ParityLoad() []int {
	load := make([]int, l.Nodes)
	for g := 0; g < l.Groups; g++ {
		load[l.ParityNode(g)]++
	}
	return load
}

// Balanced reports whether parity responsibility differs by at most one
// group between the most and least loaded node.
func (l Raid5Layout) Balanced() bool {
	load := l.ParityLoad()
	min, max := load[0], load[0]
	for _, v := range load[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max-min <= 1
}
