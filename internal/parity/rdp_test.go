package parity

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func rdpFixture(t *testing.T, p, chunk int, seed int64) (*RDP, [][]byte) {
	t.Helper()
	c, err := NewRDP(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([][]byte, p-1)
	for i := range data {
		data[i] = randBlock(rng, (p-1)*chunk)
	}
	return c, data
}

func encodeShards(t *testing.T, c *RDP, data [][]byte) [][]byte {
	t.Helper()
	row, diag, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, c.TotalBlocks())
	for i, d := range data {
		shards[i] = append([]byte(nil), d...)
	}
	shards[c.P()-1] = row
	shards[c.P()] = diag
	return shards
}

func TestNewRDPValidation(t *testing.T) {
	for _, p := range []int{0, 1, 2, 4, 6, 8, 9, 10} {
		if _, err := NewRDP(p); err == nil {
			t.Errorf("NewRDP(%d) should fail", p)
		}
	}
	for _, p := range []int{3, 5, 7, 11, 13, 17} {
		if _, err := NewRDP(p); err != nil {
			t.Errorf("NewRDP(%d): %v", p, err)
		}
	}
}

func TestRDPEncodeBlockLengthValidation(t *testing.T) {
	c, _ := NewRDP(5)
	bad := make([][]byte, 4)
	for i := range bad {
		bad[i] = make([]byte, 7) // not a multiple of p-1 = 4
	}
	if _, _, err := c.Encode(bad); err == nil {
		t.Error("Encode with non-multiple block length should fail")
	}
	uneven := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 12)}
	if _, _, err := c.Encode(uneven); err == nil {
		t.Error("Encode with uneven block lengths should fail")
	}
}

func TestRDPAllSingleErasures(t *testing.T) {
	for _, p := range []int{3, 5, 7, 11} {
		c, data := rdpFixture(t, p, 16, int64(p))
		golden := encodeShards(t, c, data)
		for lost := 0; lost < c.TotalBlocks(); lost++ {
			shards := make([][]byte, len(golden))
			for i := range golden {
				shards[i] = append([]byte(nil), golden[i]...)
			}
			shards[lost] = nil
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("p=%d lost=%d: %v", p, lost, err)
			}
			for i := range golden {
				if !bytes.Equal(shards[i], golden[i]) {
					t.Fatalf("p=%d lost=%d: shard %d mismatch", p, lost, i)
				}
			}
		}
	}
}

func TestRDPAllDoubleErasures(t *testing.T) {
	for _, p := range []int{3, 5, 7, 11, 13} {
		c, data := rdpFixture(t, p, 12, int64(100+p))
		golden := encodeShards(t, c, data)
		for a := 0; a < c.TotalBlocks(); a++ {
			for b := a + 1; b < c.TotalBlocks(); b++ {
				shards := make([][]byte, len(golden))
				for i := range golden {
					shards[i] = append([]byte(nil), golden[i]...)
				}
				shards[a], shards[b] = nil, nil
				if err := c.Reconstruct(shards); err != nil {
					t.Fatalf("p=%d lost=(%d,%d): %v", p, a, b, err)
				}
				for i := range golden {
					if !bytes.Equal(shards[i], golden[i]) {
						t.Fatalf("p=%d lost=(%d,%d): shard %d mismatch", p, a, b, i)
					}
				}
			}
		}
	}
}

func TestRDPTripleErasureRejected(t *testing.T) {
	c, data := rdpFixture(t, 5, 8, 9)
	shards := encodeShards(t, c, data)
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); err == nil {
		t.Error("triple erasure should be rejected")
	}
}

func TestRDPNoErasureIsNoop(t *testing.T) {
	c, data := rdpFixture(t, 5, 8, 10)
	shards := encodeShards(t, c, data)
	want := make([][]byte, len(shards))
	for i := range shards {
		want[i] = append([]byte(nil), shards[i]...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], want[i]) {
			t.Errorf("shard %d changed by no-op reconstruct", i)
		}
	}
}

// Property: random data, random double erasure, always recovered exactly.
func TestQuickRDPDoubleErasure(t *testing.T) {
	primes := []int{3, 5, 7, 11}
	f := func(seed int64, pIdx, chunkRaw uint8) bool {
		p := primes[int(pIdx)%len(primes)]
		chunk := int(chunkRaw%32) + 1
		c, err := NewRDP(p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		data := make([][]byte, p-1)
		for i := range data {
			data[i] = randBlock(rng, (p-1)*chunk)
		}
		row, diag, err := c.Encode(data)
		if err != nil {
			return false
		}
		golden := make([][]byte, p+1)
		copy(golden, data)
		golden[p-1], golden[p] = row, diag
		a := rng.Intn(p + 1)
		b := rng.Intn(p + 1)
		shards := make([][]byte, p+1)
		for i := range golden {
			shards[i] = append([]byte(nil), golden[i]...)
		}
		shards[a], shards[b] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range golden {
			if !bytes.Equal(shards[i], golden[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
