package parity

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed-Solomon erasure coder over GF(256) with k data
// blocks and m parity blocks, tolerating any m erasures. The encoding matrix
// is the identity stacked on a column-scaled Cauchy matrix: every square
// submatrix of a Cauchy matrix is nonsingular, which is exactly the MDS
// condition for a systematic code, and column scaling preserves it. The
// columns are scaled so the first parity row is all ones, making parity
// block 0 identical to plain XOR parity (RAID-5 compatible). DVDC uses RS as
// the generalization beyond the paper's single-parity XOR and the RDP double
// parity it cites: protecting a RAID group of VM checkpoints against m
// simultaneous physical-node losses.
type RS struct {
	k, m   int
	matrix [][]byte // (k+m) x k encoding matrix, rows 0..k-1 = identity
}

// NewRS constructs a coder for k data and m parity blocks. k+m must not
// exceed 256 (field size) and both must be positive.
func NewRS(k, m int) (*RS, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("parity: RS requires k>0 and m>0, got k=%d m=%d", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("parity: RS requires k+m <= 256, got %d", k+m)
	}
	rows := k + m
	mat := make([][]byte, rows)
	for r := 0; r < k; r++ {
		mat[r] = make([]byte, k)
		mat[r][r] = 1
	}
	// Cauchy block: P[i][j] = 1 / (x_i + y_j) with x_i = k+i, y_j = j, all
	// distinct so x_i ^ y_j != 0.
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = gfInv(byte(k+i) ^ byte(j))
		}
		mat[k+i] = row
	}
	// Scale each column of the Cauchy block so the first parity row is all
	// ones; submatrix nonsingularity is invariant under column scaling.
	for j := 0; j < k; j++ {
		s := gfInv(mat[k][j])
		for i := 0; i < m; i++ {
			mat[k+i][j] = gfMul(mat[k+i][j], s)
		}
	}
	return &RS{k: k, m: m, matrix: mat}, nil
}

// K returns the number of data blocks. M returns the number of parity blocks.
func (r *RS) K() int { return r.k }

// M returns the number of parity blocks.
func (r *RS) M() int { return r.m }

// Coef returns the encoding coefficient applied to data block dataIdx when
// computing parity block parityIdx. Because the code is linear, a change
// delta in one data block updates parity p as p ^= Coef * delta — the
// GF(256) generalization of the RAID-5 small write, which DVDC's
// multi-parity keepers use to fold checkpoint deltas without member images.
func (r *RS) Coef(parityIdx, dataIdx int) byte {
	if parityIdx < 0 || parityIdx >= r.m || dataIdx < 0 || dataIdx >= r.k {
		panic(fmt.Sprintf("parity: Coef(%d,%d) out of range for RS(%d,%d)", parityIdx, dataIdx, r.k, r.m))
	}
	return r.matrix[r.k+parityIdx][dataIdx]
}

// UpdateParity folds a data-block delta (old XOR new content of block
// dataIdx) into parity block parityIdx in place.
func (r *RS) UpdateParity(par []byte, parityIdx, dataIdx int, delta []byte) error {
	if len(par) < len(delta) {
		return fmt.Errorf("%w: parity %d bytes, delta %d", ErrLengthMismatch, len(par), len(delta))
	}
	gfMulSlice(par[:len(delta)], delta, r.Coef(parityIdx, dataIdx))
	return nil
}

// Encode computes the m parity blocks for the given k data blocks. All data
// blocks must share one length; the returned parity blocks have that length.
func (r *RS) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != r.k {
		return nil, fmt.Errorf("parity: RS encode wants %d data blocks, got %d", r.k, len(data))
	}
	n := len(data[0])
	for i, d := range data {
		if len(d) != n {
			return nil, fmt.Errorf("%w: block %d has %d bytes, want %d", ErrLengthMismatch, i, len(d), n)
		}
	}
	par := make([][]byte, r.m)
	for p := 0; p < r.m; p++ {
		par[p] = make([]byte, n)
		row := r.matrix[r.k+p]
		for c := 0; c < r.k; c++ {
			gfMulSlice(par[p], data[c], row[c])
		}
	}
	return par, nil
}

// Reconstruct rebuilds missing blocks. shards has length k+m: indices 0..k-1
// are data blocks, k..k+m-1 parity blocks; nil entries are erased. At least
// k shards must be present. On success every data entry of shards is filled
// in (parity entries are recomputed only if requested via recomputeParity).
func (r *RS) Reconstruct(shards [][]byte) error {
	if len(shards) != r.k+r.m {
		return fmt.Errorf("parity: RS reconstruct wants %d shards, got %d", r.k+r.m, len(shards))
	}
	present := make([]int, 0, r.k)
	n := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if n == -1 {
			n = len(s)
		} else if len(s) != n {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrLengthMismatch, i, len(s), n)
		}
		present = append(present, i)
	}
	if len(present) < r.k {
		return fmt.Errorf("parity: RS needs %d shards to reconstruct, have %d", r.k, len(present))
	}
	missingData := false
	for i := 0; i < r.k; i++ {
		if shards[i] == nil {
			missingData = true
			break
		}
	}
	if missingData {
		// Solve for data from any k present shards: rows of the encoding
		// matrix for the chosen shards form an invertible k x k system.
		sub := make([][]byte, r.k)
		chosen := present[:r.k]
		for i, idx := range chosen {
			sub[i] = append([]byte(nil), r.matrix[idx]...)
		}
		inv, err := invertMatrix(sub)
		if err != nil {
			return err
		}
		for d := 0; d < r.k; d++ {
			if shards[d] != nil {
				continue
			}
			out := make([]byte, n)
			for j, idx := range chosen {
				gfMulSlice(out, shards[idx], inv[d][j])
			}
			shards[d] = out
		}
	}
	// Recompute any missing parity from the (now complete) data.
	for p := 0; p < r.m; p++ {
		if shards[r.k+p] != nil {
			continue
		}
		out := make([]byte, n)
		row := r.matrix[r.k+p]
		for c := 0; c < r.k; c++ {
			gfMulSlice(out, shards[c], row[c])
		}
		shards[r.k+p] = out
	}
	return nil
}

// invertMatrix inverts a square GF(256) matrix via Gauss-Jordan.
func invertMatrix(m [][]byte) ([][]byte, error) {
	k := len(m)
	work := make([][]byte, k)
	inv := make([][]byte, k)
	for i := range m {
		if len(m[i]) != k {
			return nil, errors.New("parity: invert of non-square matrix")
		}
		work[i] = append([]byte(nil), m[i]...)
		inv[i] = make([]byte, k)
		inv[i][i] = 1
	}
	for c := 0; c < k; c++ {
		pivot := -1
		for r := c; r < k; r++ {
			if work[r][c] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("parity: singular matrix")
		}
		work[c], work[pivot] = work[pivot], work[c]
		inv[c], inv[pivot] = inv[pivot], inv[c]
		pinv := gfInv(work[c][c])
		for j := 0; j < k; j++ {
			work[c][j] = gfMul(work[c][j], pinv)
			inv[c][j] = gfMul(inv[c][j], pinv)
		}
		for r := 0; r < k; r++ {
			if r == c || work[r][c] == 0 {
				continue
			}
			f := work[r][c]
			for j := 0; j < k; j++ {
				work[r][j] ^= gfMul(f, work[c][j])
				inv[r][j] ^= gfMul(f, inv[c][j])
			}
		}
	}
	return inv, nil
}
