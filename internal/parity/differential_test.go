package parity

// Differential and property tests: every optimized kernel (word-wise XOR,
// table-driven GF(256) arithmetic, RS matrix encode, RDP) is checked against
// a naive bytewise reference on randomized shapes — odd tails, chunk-
// boundary-straddling offsets, degenerate sizes — plus encode→erase→
// reconstruct round trips. The references are deliberately slow and obvious.

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveXOR is the bytewise reference for XORInto.
func naiveXOR(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// naiveGfMul multiplies in GF(256) by Russian-peasant shift-and-add over the
// field polynomial, independent of the log/exp tables.
func naiveGfMul(a, b byte) byte {
	var prod uint16
	aa, bb := uint16(a), uint16(b)
	for bb != 0 {
		if bb&1 != 0 {
			prod ^= aa
		}
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= gfPoly
		}
		bb >>= 1
	}
	return byte(prod)
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// Sizes that stress the 8-byte word loop: zero, sub-word, word-aligned,
// word+tail, and page-scale odd lengths.
var awkwardSizes = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 1024, 4093, 4096}

func TestXORIntoMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range awkwardSizes {
		for trial := 0; trial < 8; trial++ {
			dst := randBytes(rng, n)
			src := randBytes(rng, n)
			want := append([]byte(nil), dst...)
			naiveXOR(want, src)
			if err := XORInto(dst, src); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("n=%d: XORInto diverges from bytewise reference", n)
			}
		}
	}
}

func TestXORIntoOverlapGuard(t *testing.T) {
	// Partial overlap in either direction must be rejected: the word loop
	// would read bytes it already rewrote.
	back := make([]byte, 64)
	if err := XORInto(back[0:32], back[8:40]); err == nil {
		t.Fatal("forward partial overlap accepted")
	} else if !bytes.Contains([]byte(err.Error()), []byte("overlap")) {
		t.Fatalf("wrong error: %v", err)
	}
	if err := XORInto(back[8:40], back[0:32]); err == nil {
		t.Fatal("backward partial overlap accepted")
	}
	// One-byte overlap at the boundary is still an overlap.
	if err := XORInto(back[0:16], back[15:31]); err == nil {
		t.Fatal("single-byte overlap accepted")
	}
	// The exact same slice is legal and must zero dst (x ^ x = 0).
	same := randBytes(rand.New(rand.NewSource(2)), 33)
	if err := XORInto(same, same); err != nil {
		t.Fatalf("exact alias rejected: %v", err)
	}
	for i, v := range same {
		if v != 0 {
			t.Fatalf("exact alias did not zero byte %d: %#x", i, v)
		}
	}
	// Adjacent disjoint subslices of one array are fine.
	if err := XORInto(back[0:16], back[16:32]); err != nil {
		t.Fatalf("disjoint subslices rejected: %v", err)
	}
	// Empty slices never overlap.
	if err := XORInto(back[8:8], back[8:8]); err != nil {
		t.Fatalf("empty slices rejected: %v", err)
	}
}

func TestXORDrainMatchesXORIntoPlusClear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range awkwardSizes {
		for trial := 0; trial < 8; trial++ {
			dst := randBytes(rng, n)
			src := randBytes(rng, n)
			wantDst := append([]byte(nil), dst...)
			naiveXOR(wantDst, src)
			if err := XORDrain(dst, src); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !bytes.Equal(dst, wantDst) {
				t.Fatalf("n=%d: XORDrain dst diverges from XORInto reference", n)
			}
			for i, v := range src {
				if v != 0 {
					t.Fatalf("n=%d: src byte %d not drained: %#x", n, i, v)
				}
			}
		}
	}
}

func TestXORDrainRejectsAliases(t *testing.T) {
	back := make([]byte, 64)
	if err := XORDrain(back[0:32], back[8:40]); err == nil {
		t.Fatal("partial overlap accepted")
	}
	// Unlike XORInto, the exact same slice is illegal: draining a buffer
	// into itself would zero both sides.
	same := make([]byte, 32)
	if err := XORDrain(same, same); err == nil {
		t.Fatal("exact alias accepted")
	}
	if err := XORDrain(back[0:16], back[16:32]); err != nil {
		t.Fatalf("disjoint subslices rejected: %v", err)
	}
	if err := XORDrain(back[8:8], back[8:8]); err != nil {
		t.Fatalf("empty slices rejected: %v", err)
	}
}

func TestGfMulMatchesShiftAddReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := gfMul(byte(a), byte(b)), naiveGfMul(byte(a), byte(b)); got != want {
				t.Fatalf("gfMul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestGfTablesMatchLoopReference pins every table-driven scalar op to the
// loop-based log/exp forms (the pre-table implementation, kept in gf.go as
// the reference) and to the shift-and-add naive multiplier, over the full
// operand range.
func TestGfTablesMatchLoopReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			aa, bb := byte(a), byte(b)
			if got, ref := gfMul(aa, bb), gfMulLogExp(aa, bb); got != ref {
				t.Fatalf("gfMul(%d,%d) = %d, log/exp reference %d", a, b, got, ref)
			}
			if got, naive := gfMul(aa, bb), naiveGfMul(aa, bb); got != naive {
				t.Fatalf("gfMul(%d,%d) = %d, shift-add reference %d", a, b, got, naive)
			}
			if b != 0 {
				got, ref := gfDiv(aa, bb), gfDivLogExp(aa, bb)
				if got != ref {
					t.Fatalf("gfDiv(%d,%d) = %d, log/exp reference %d", a, b, got, ref)
				}
				// Division must invert multiplication.
				if back := gfMul(got, bb); back != aa {
					t.Fatalf("gfMul(gfDiv(%d,%d),%d) = %d", a, b, b, back)
				}
			}
		}
	}
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if ref := gfDivLogExp(1, byte(a)); inv != ref {
			t.Fatalf("gfInv(%d) = %d, log/exp reference %d", a, inv, ref)
		}
		if p := gfMul(byte(a), inv); p != 1 {
			t.Fatalf("a * gfInv(a) = %d for a=%d", p, a)
		}
	}
	// gfPow against repeated naive multiplication.
	for a := 0; a < 256; a++ {
		acc := byte(1)
		for n := 0; n < 20; n++ {
			if got := gfPow(byte(a), n); got != acc && !(a == 0 && n > 0) {
				t.Fatalf("gfPow(%d,%d) = %d, repeated mul gives %d", a, n, got, acc)
			}
			acc = naiveGfMul(acc, byte(a))
		}
	}
}

// TestMulSliceIntoMatchesLoopReference sweeps every coefficient over the
// awkward word-loop sizes, comparing the row-table kernel against both the
// loop-based log/exp reference and a scalar naive fold.
func TestMulSliceIntoMatchesLoopReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for c := 0; c < 256; c++ {
		n := awkwardSizes[c%len(awkwardSizes)]
		dst := randBytes(rng, n)
		src := randBytes(rng, n)
		// Plant zero bytes so the reference's zero-skip path is exercised.
		for i := 0; i < n; i += 5 {
			src[i] = 0
		}
		ref := append([]byte(nil), dst...)
		gfMulSliceLogExp(ref, src, byte(c))
		naive := append([]byte(nil), dst...)
		for i := range naive {
			naive[i] ^= naiveGfMul(byte(c), src[i])
		}
		if err := MulSliceInto(dst, src, byte(c)); err != nil {
			t.Fatalf("c=%d n=%d: %v", c, n, err)
		}
		if !bytes.Equal(dst, ref) {
			t.Fatalf("c=%d n=%d: table kernel diverges from log/exp reference", c, n)
		}
		if !bytes.Equal(dst, naive) {
			t.Fatalf("c=%d n=%d: table kernel diverges from naive fold", c, n)
		}
	}
}

func TestMulSliceIntoGuards(t *testing.T) {
	back := make([]byte, 64)
	if err := MulSliceInto(back[:16], back[:17][1:], 3); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := MulSliceInto(back[0:32], back[8:40], 3); err == nil {
		t.Fatal("partial overlap accepted")
	}
	// The exact same slice is fine for c==1 (zeroes dst, like XORInto)...
	same := randBytes(rand.New(rand.NewSource(9)), 24)
	if err := MulSliceInto(same, same, 1); err != nil {
		t.Fatalf("exact alias under c=1 rejected: %v", err)
	}
	for i, v := range same {
		if v != 0 {
			t.Fatalf("exact alias under c=1 did not zero byte %d: %#x", i, v)
		}
	}
	// ...and for c==0 (no-op), but not for a general coefficient, where the
	// kernel would read bytes it already rewrote.
	if err := MulSliceInto(back[:16], back[:16], 0); err != nil {
		t.Fatalf("exact alias under c=0 rejected: %v", err)
	}
	if err := MulSliceInto(back[:16], back[:16], 7); err == nil {
		t.Fatal("exact alias under general coefficient accepted")
	}
	// Disjoint subslices of one array are fine.
	if err := MulSliceInto(back[0:16], back[16:32], 7); err != nil {
		t.Fatalf("disjoint subslices rejected: %v", err)
	}
}

// FuzzGfSliceKernels cross-checks the table slice kernel against the
// loop-based reference on fuzz-chosen data and coefficient.
func FuzzGfSliceKernels(f *testing.F) {
	f.Add([]byte{0, 1, 2, 255, 0, 128}, byte(3))
	f.Add([]byte{}, byte(0))
	f.Add(bytes.Repeat([]byte{0xff}, 129), byte(1))
	f.Fuzz(func(t *testing.T, src []byte, c byte) {
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i * 31)
		}
		ref := append([]byte(nil), dst...)
		gfMulSliceLogExp(ref, src, c)
		if err := MulSliceInto(dst, src, c); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, ref) {
			t.Fatalf("c=%d n=%d: table kernel diverges from log/exp reference", c, len(src))
		}
	})
}

// naiveRSEncode computes parity row p as sum_j Coef(p,j) * data[j] using the
// scalar reference multiplier — no slice kernels, no tables.
func naiveRSEncode(r *RS, data [][]byte) [][]byte {
	n := len(data[0])
	par := make([][]byte, r.M())
	for p := range par {
		par[p] = make([]byte, n)
		for j, d := range data {
			c := r.Coef(p, j)
			for i := 0; i < n; i++ {
				par[p][i] ^= naiveGfMul(c, d[i])
			}
		}
	}
	return par
}

func TestRSEncodeMatchesNaiveMatrixMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		n := awkwardSizes[rng.Intn(len(awkwardSizes))]
		if n == 0 {
			n = 1
		}
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([][]byte, k)
		for j := range data {
			data[j] = randBytes(rng, n)
		}
		got, err := rs.Encode(data)
		if err != nil {
			t.Fatalf("k=%d m=%d n=%d: %v", k, m, n, err)
		}
		want := naiveRSEncode(rs, data)
		for p := range want {
			if !bytes.Equal(got[p], want[p]) {
				t.Fatalf("k=%d m=%d n=%d: parity row %d diverges from naive encode", k, m, n, p)
			}
		}
	}
}

func TestRSEncodeEraseReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(300)
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([][]byte, k)
		for j := range data {
			data[j] = randBytes(rng, n)
		}
		par, err := rs.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		// Erase up to m shards (data and/or parity) at random.
		shards := make([][]byte, 0, k+m)
		for _, d := range data {
			shards = append(shards, append([]byte(nil), d...))
		}
		for _, p := range par {
			shards = append(shards, append([]byte(nil), p...))
		}
		erase := rng.Perm(k + m)[:1+rng.Intn(m)]
		for _, idx := range erase {
			shards[idx] = nil
		}
		if err := rs.Reconstruct(shards); err != nil {
			t.Fatalf("k=%d m=%d erased %v: %v", k, m, erase, err)
		}
		for j := range data {
			if !bytes.Equal(shards[j], data[j]) {
				t.Fatalf("k=%d m=%d erased %v: data shard %d not recovered", k, m, erase, j)
			}
		}
		for p := range par {
			if !bytes.Equal(shards[k+p], par[p]) {
				t.Fatalf("k=%d m=%d erased %v: parity shard %d not recovered", k, m, erase, p)
			}
		}
	}
}

// TestRSReconstructFromNaiveEncode crosses the implementations: parity is
// produced by the naive scalar encoder, shards are erased on random
// patterns, and the table-driven Reconstruct must recover exactly what the
// naive encode implies — encode and decode agree across kernels.
func TestRSReconstructFromNaiveEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(300)
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([][]byte, k)
		for j := range data {
			data[j] = randBytes(rng, n)
		}
		par := naiveRSEncode(rs, data)
		shards := make([][]byte, 0, k+m)
		for _, d := range data {
			shards = append(shards, append([]byte(nil), d...))
		}
		for _, p := range par {
			shards = append(shards, append([]byte(nil), p...))
		}
		erase := rng.Perm(k + m)[:1+rng.Intn(m)]
		for _, idx := range erase {
			shards[idx] = nil
		}
		if err := rs.Reconstruct(shards); err != nil {
			t.Fatalf("k=%d m=%d erased %v: %v", k, m, erase, err)
		}
		for j := range data {
			if !bytes.Equal(shards[j], data[j]) {
				t.Fatalf("k=%d m=%d erased %v: data shard %d diverges from naive encode", k, m, erase, j)
			}
		}
		for p := range par {
			if !bytes.Equal(shards[k+p], par[p]) {
				t.Fatalf("k=%d m=%d erased %v: parity shard %d diverges from naive encode", k, m, erase, p)
			}
		}
	}
}

// TestRSUpdateParityChunkedFoldEquivalence is the property the chunked data
// path rests on: folding a delta piecewise at offsets (chunk boundaries
// straddling word boundaries) must equal folding it whole, and both must
// equal a fresh encode of the updated data.
func TestRSUpdateParityChunkedFoldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(6)
		m := 1 + rng.Intn(3)
		n := 64 + rng.Intn(1000) // keeper block length
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([][]byte, k)
		for j := range data {
			data[j] = randBytes(rng, n)
		}
		par, err := rs.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		// One member writes a delta over a random subrange.
		victim := rng.Intn(k)
		off := rng.Intn(n)
		dlen := 1 + rng.Intn(n-off)
		delta := randBytes(rng, dlen) // delta = old XOR new
		newData := append([]byte(nil), data[victim]...)
		naiveXOR(newData[off:off+dlen], delta)

		for p := 0; p < m; p++ {
			whole := append([]byte(nil), par[p]...)
			if err := rs.UpdateParity(whole[off:], p, victim, delta); err != nil {
				t.Fatal(err)
			}
			// Same delta folded as awkward little chunks, out of order.
			chunked := append([]byte(nil), par[p]...)
			type piece struct{ at, ln int }
			var pieces []piece
			for at := 0; at < dlen; {
				ln := min(1+rng.Intn(37), dlen-at)
				pieces = append(pieces, piece{at, ln})
				at += ln
			}
			rng.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })
			for _, pc := range pieces {
				if err := rs.UpdateParity(chunked[off+pc.at:], p, victim, delta[pc.at:pc.at+pc.ln]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(whole, chunked) {
				t.Fatalf("k=%d m=%d row %d: chunked fold diverges from whole fold", k, m, p)
			}
		}
		// Cross-check against a fresh encode of the updated data.
		updated := make([][]byte, k)
		for j := range data {
			updated[j] = data[j]
		}
		updated[victim] = newData
		wantPar := naiveRSEncode(rs, updated)
		for p := 0; p < m; p++ {
			got := append([]byte(nil), par[p]...)
			if err := rs.UpdateParity(got[off:], p, victim, delta); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantPar[p]) {
				t.Fatalf("k=%d m=%d row %d: small-write fold diverges from re-encode", k, m, p)
			}
		}
	}
}

func TestRDPEncodeEraseReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, p := range []int{3, 5, 7, 11} {
		rdp, err := NewRDP(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			chunk := 1 + rng.Intn(64)
			n := chunk * (p - 1) // block length must split into p-1 rows
			data := make([][]byte, rdp.DataBlocks())
			for j := range data {
				data[j] = randBytes(rng, n)
			}
			rowPar, diagPar, err := rdp.Encode(data)
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			// Erase any two of the p+1 columns (double-failure tolerance).
			shards := make([][]byte, rdp.TotalBlocks())
			for j := range data {
				shards[j] = append([]byte(nil), data[j]...)
			}
			shards[p-1] = append([]byte(nil), rowPar...)
			shards[p] = append([]byte(nil), diagPar...)
			a := rng.Intn(p + 1)
			b := rng.Intn(p + 1)
			shards[a] = nil
			shards[b] = nil
			if err := rdp.Reconstruct(shards); err != nil {
				t.Fatalf("p=%d erased (%d,%d): %v", p, a, b, err)
			}
			for j := range data {
				if !bytes.Equal(shards[j], data[j]) {
					t.Fatalf("p=%d erased (%d,%d): data block %d not recovered", p, a, b, j)
				}
			}
			if !bytes.Equal(shards[p-1], rowPar) || !bytes.Equal(shards[p], diagPar) {
				t.Fatalf("p=%d erased (%d,%d): parity not recovered", p, a, b)
			}
		}
	}
}

func TestUpdateParitySmallWriteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		blocks := make([][]byte, 2+rng.Intn(5))
		for j := range blocks {
			blocks[j] = randBytes(rng, n)
		}
		par, err := Parity(blocks...)
		if err != nil {
			t.Fatal(err)
		}
		victim := rng.Intn(len(blocks))
		oldData := append([]byte(nil), blocks[victim]...)
		blocks[victim] = randBytes(rng, n)
		if err := UpdateParity(par, oldData, blocks[victim]); err != nil {
			t.Fatal(err)
		}
		ok, err := VerifyParity(par, blocks...)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("n=%d: small-write parity update diverges from full recompute", n)
		}
	}
}
