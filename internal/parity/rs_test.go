package parity

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Every nonzero element has an inverse; mul is consistent with div.
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if got := gfMul(byte(a), inv); got != 1 {
			t.Fatalf("a=%d: a*inv(a) = %d, want 1", a, got)
		}
	}
	// Distributivity spot check over all pairs with a fixed c.
	const c = 0x57
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b += 17 {
			left := gfMul(byte(a)^byte(b), c)
			right := gfMul(byte(a), c) ^ gfMul(byte(b), c)
			if left != right {
				t.Fatalf("distributivity fails at a=%d b=%d", a, b)
			}
		}
	}
}

func TestGFPow(t *testing.T) {
	if gfPow(0, 0) != 1 {
		t.Error("0^0 should be 1 by convention")
	}
	if gfPow(0, 5) != 0 {
		t.Error("0^5 should be 0")
	}
	for a := 1; a < 256; a += 13 {
		want := byte(1)
		for n := 0; n < 10; n++ {
			if got := gfPow(byte(a), n); got != want {
				t.Fatalf("gfPow(%d,%d) = %d, want %d", a, n, got, want)
			}
			want = gfMul(want, byte(a))
		}
	}
}

func TestNewRSValidation(t *testing.T) {
	if _, err := NewRS(0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewRS(1, 0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewRS(200, 100); err == nil {
		t.Error("k+m > 256 should fail")
	}
	if _, err := NewRS(3, 2); err != nil {
		t.Errorf("NewRS(3,2): %v", err)
	}
}

func TestRSSystematic(t *testing.T) {
	r, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if r.matrix[i][j] != want {
				t.Fatalf("matrix[%d][%d] = %d, not identity", i, j, r.matrix[i][j])
			}
		}
	}
}

func TestRSRoundTripAllErasurePatterns(t *testing.T) {
	configs := []struct{ k, m int }{{2, 1}, {3, 2}, {4, 2}, {5, 3}, {6, 4}}
	for _, cfg := range configs {
		r, err := NewRS(cfg.k, cfg.m)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(cfg.k*100 + cfg.m)))
		data := make([][]byte, cfg.k)
		for i := range data {
			data[i] = randBlock(rng, 96)
		}
		par, err := r.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		golden := make([][]byte, cfg.k+cfg.m)
		copy(golden, data)
		copy(golden[cfg.k:], par)

		// Erase every subset of size m (exhaustive for these small configs).
		total := cfg.k + cfg.m
		var rec func(start int, chosen []int)
		rec = func(start int, chosen []int) {
			if len(chosen) == cfg.m {
				shards := make([][]byte, total)
				for i := range golden {
					shards[i] = append([]byte(nil), golden[i]...)
				}
				for _, e := range chosen {
					shards[e] = nil
				}
				if err := r.Reconstruct(shards); err != nil {
					t.Fatalf("k=%d m=%d erase=%v: %v", cfg.k, cfg.m, chosen, err)
				}
				for i := range golden {
					if !bytes.Equal(shards[i], golden[i]) {
						t.Fatalf("k=%d m=%d erase=%v: shard %d mismatch", cfg.k, cfg.m, chosen, i)
					}
				}
				return
			}
			for e := start; e < total; e++ {
				rec(e+1, append(chosen, e))
			}
		}
		rec(0, nil)
	}
}

func TestRSTooManyErasures(t *testing.T) {
	r, _ := NewRS(3, 2)
	rng := rand.New(rand.NewSource(7))
	data := [][]byte{randBlock(rng, 8), randBlock(rng, 8), randBlock(rng, 8)}
	par, _ := r.Encode(data)
	shards := [][]byte{nil, nil, nil, par[0], par[1]}
	if err := r.Reconstruct(shards); err == nil {
		t.Error("3 erasures with m=2 should fail")
	}
}

func TestRSMatchesXORForM1(t *testing.T) {
	// With m=1 the single parity block must equal plain XOR parity.
	r, err := NewRS(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	data := make([][]byte, 5)
	for i := range data {
		data[i] = randBlock(rng, 64)
	}
	par, err := r.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := XOR(data...)
	if !bytes.Equal(par[0], want) {
		t.Error("RS(k,1) parity differs from XOR parity")
	}
}

// Property: any m-subset erasure is recoverable for random small (k, m).
func TestQuickRSRandomErasures(t *testing.T) {
	f := func(seed int64, kRaw, mRaw, nRaw uint8) bool {
		k := int(kRaw%6) + 2
		m := int(mRaw%3) + 1
		n := int(nRaw%64) + 1
		r, err := NewRS(k, m)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		data := make([][]byte, k)
		for i := range data {
			data[i] = randBlock(rng, n)
		}
		par, err := r.Encode(data)
		if err != nil {
			return false
		}
		golden := make([][]byte, k+m)
		copy(golden, data)
		copy(golden[k:], par)
		shards := make([][]byte, k+m)
		for i := range golden {
			shards[i] = append([]byte(nil), golden[i]...)
		}
		for e := 0; e < m; e++ {
			shards[rng.Intn(k+m)] = nil
		}
		if err := r.Reconstruct(shards); err != nil {
			return false
		}
		for i := range golden {
			if !bytes.Equal(shards[i], golden[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
