package parity

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d, the conventional Reed-Solomon modulus, under which 2 generates the
// multiplicative group). Log/antilog tables are built once at package init;
// multiplication and division are table lookups, which is plenty for
// checkpoint-sized blocks.

const gfPoly = 0x11d

var (
	gfExp [512]byte // generator powers, doubled so mul avoids a mod
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides a by b; b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("parity: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]+255-gfLog[b]]
}

// gfInv returns the multiplicative inverse; a must be nonzero.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow raises a to the n-th power.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return gfExp[(gfLog[a]*n)%255]
}

// gfMulSlice computes dst[i] ^= c * src[i] for all i. c == 0 is a no-op,
// c == 1 degenerates to XOR.
func gfMulSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		_ = XORInto(dst, src) // lengths checked by caller
		return
	}
	lc := gfLog[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+gfLog[s]]
		}
	}
}
