package parity

import "fmt"

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d, the conventional Reed-Solomon modulus, under which 2 generates the
// multiplicative group). Two table tiers are built once at package init:
//
//   - log/antilog tables — the classic representation, kept both as the
//     generator for the flat tables below and as the loop-based reference
//     the differential test battery compares against;
//   - a full 256x256 product table plus an inverse table — the hot-path
//     representation. A slice kernel indexing one 256-byte row is branch
//     free (no zero check per byte) and keeps the row in L1, which is what
//     the RS small-write fold spends its time in.

const gfPoly = 0x11d

var (
	gfExp [512]byte // generator powers, doubled so mul avoids a mod
	gfLog [256]int

	gfMulTab [256][256]byte // gfMulTab[a][b] = a*b in GF(256)
	gfInvTab [256]byte      // gfInvTab[a] = a^-1 (entry 0 unused)
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			gfMulTab[a][b] = gfExp[gfLog[a]+gfLog[b]]
		}
		gfInvTab[a] = gfExp[255-gfLog[a]]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte { return gfMulTab[a][b] }

// gfDiv divides a by b; b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("parity: GF(256) division by zero")
	}
	return gfMulTab[a][gfInvTab[b]]
}

// gfInv returns the multiplicative inverse; a must be nonzero.
func gfInv(a byte) byte {
	if a == 0 {
		panic("parity: GF(256) division by zero")
	}
	return gfInvTab[a]
}

// gfPow raises a to the n-th power.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return gfExp[(gfLog[a]*n)%255]
}

// gfMulLogExp is the loop-based log/antilog multiply this package used before
// the flat product table. It is retained as the independent reference the
// differential tests compare gfMul and the slice kernels against.
func gfMulLogExp(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDivLogExp is the log/antilog division reference (b must be nonzero).
func gfDivLogExp(a, b byte) byte {
	if b == 0 {
		panic("parity: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]+255-gfLog[b]]
}

// gfMulSliceLogExp is the loop-based slice kernel (per-byte zero test plus
// log/antilog lookups), retained as the differential-test reference for
// gfMulSlice.
func gfMulSliceLogExp(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		_ = XORInto(dst, src) // lengths checked by caller
		return
	}
	lc := gfLog[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+gfLog[s]]
		}
	}
}

// gfMulSlice computes dst[i] ^= c * src[i] for all i. c == 0 is a no-op,
// c == 1 degenerates to XOR; otherwise one 256-byte product-table row covers
// the whole slice with no per-byte branch.
func gfMulSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		_ = XORInto(dst, src) // lengths checked by caller
		return
	}
	row := &gfMulTab[c]
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= row[src[i]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
		dst[i+4] ^= row[src[i+4]]
		dst[i+5] ^= row[src[i+5]]
		dst[i+6] ^= row[src[i+6]]
		dst[i+7] ^= row[src[i+7]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// MulSliceInto computes dst[i] ^= c * src[i] element-wise — the GF(256)
// analogue of XORInto (and exactly XORInto when c == 1). dst and src must
// have equal length and must not partially overlap; the exact same slice is
// allowed only for c in {0, 1} (for other coefficients the kernel would read
// bytes it already rewrote).
func MulSliceInto(dst, src []byte, c byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d, src %d", ErrLengthMismatch, len(dst), len(src))
	}
	if !aliasable(dst, src) {
		return fmt.Errorf("%w: dst and src share %d-byte backing range", ErrOverlap, len(dst))
	}
	if c > 1 && len(dst) > 0 && &dst[0] == &src[0] {
		return fmt.Errorf("%w: dst aliases src under coefficient %d", ErrOverlap, c)
	}
	gfMulSlice(dst, src, c)
	return nil
}
