package parity

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"
)

// ErrLengthMismatch is returned when blocks participating in one parity
// computation do not all share the same length.
var ErrLengthMismatch = errors.New("parity: block length mismatch")

// ErrOverlap is returned when dst and src partially overlap: the word-at-a-
// time kernel would read src bytes it already rewrote through dst, silently
// producing a result that is neither the old nor the elementwise-new value.
var ErrOverlap = errors.New("parity: dst and src overlap")

// aliasable reports whether dst and src may be passed to the word-wise
// kernels: disjoint ranges, or the exact same range (x^x = 0 elementwise, a
// result the word loop also produces). A partial overlap is rejected.
func aliasable(dst, src []byte) bool {
	if len(dst) == 0 || len(src) == 0 {
		return true
	}
	d := uintptr(unsafe.Pointer(unsafe.SliceData(dst)))
	s := uintptr(unsafe.Pointer(unsafe.SliceData(src)))
	if d == s && len(dst) == len(src) {
		return true
	}
	return d+uintptr(len(dst)) <= s || s+uintptr(len(src)) <= d
}

// XORInto xors src into dst element-wise. dst and src must have equal length
// and must not partially overlap (the exact same slice is allowed and zeroes
// dst; any other overlap returns ErrOverlap). The hot loop works on 8-byte
// words; the tail is handled bytewise.
func XORInto(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d, src %d", ErrLengthMismatch, len(dst), len(src))
	}
	if !aliasable(dst, src) {
		return fmt.Errorf("%w: dst and src share %d-byte backing range", ErrOverlap, len(dst))
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
	return nil
}

// XORDrain xors src into dst element-wise and zeroes src in the same pass —
// the commit kernel for accumulation buffers that must return to all-zero for
// reuse. One fused loop touches each cache line once, where XORInto followed
// by clear would stream src through memory twice. Same aliasing contract as
// XORInto, except dst and src may not be the same slice (draining a buffer
// into itself would zero both).
func XORDrain(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d, src %d", ErrLengthMismatch, len(dst), len(src))
	}
	if len(dst) > 0 && (!aliasable(dst, src) || &dst[0] == &src[0]) {
		return fmt.Errorf("%w: dst and src share %d-byte backing range", ErrOverlap, len(dst))
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
		binary.LittleEndian.PutUint64(src[i:], 0)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
		src[i] = 0
	}
	return nil
}

// XOR computes the XOR of all blocks into a freshly allocated block.
// At least one block is required and all blocks must have equal length.
func XOR(blocks ...[]byte) ([]byte, error) {
	if len(blocks) == 0 {
		return nil, errors.New("parity: XOR of zero blocks")
	}
	out := make([]byte, len(blocks[0]))
	copy(out, blocks[0])
	for _, b := range blocks[1:] {
		if err := XORInto(out, b); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Parity computes the single-parity block protecting the given data blocks.
// It is XOR with a name matching the RAID-5 vocabulary used elsewhere.
func Parity(data ...[]byte) ([]byte, error) { return XOR(data...) }

// ReconstructOne recovers the single missing block of a RAID-5 style group.
// survivors must contain the k-1 surviving data blocks plus the parity block
// (order is irrelevant: XOR is commutative). The result has the common block
// length.
func ReconstructOne(survivors ...[]byte) ([]byte, error) {
	if len(survivors) == 0 {
		return nil, errors.New("parity: reconstruct from zero survivors")
	}
	return XOR(survivors...)
}

// UpdateParity applies a small-write style parity update: given the old
// content of one data block and its new content, the parity block is patched
// in place without touching the other group members. This is the incremental
// path DVDC uses when only one VM in a group produced a new checkpoint delta.
func UpdateParity(par, oldData, newData []byte) error {
	if len(par) != len(oldData) || len(par) != len(newData) {
		return fmt.Errorf("%w: parity %d, old %d, new %d",
			ErrLengthMismatch, len(par), len(oldData), len(newData))
	}
	if err := XORInto(par, oldData); err != nil {
		return err
	}
	return XORInto(par, newData)
}

// VerifyParity reports whether par equals the XOR of the data blocks.
func VerifyParity(par []byte, data ...[]byte) (bool, error) {
	want, err := XOR(data...)
	if err != nil {
		return false, err
	}
	if len(par) != len(want) {
		return false, fmt.Errorf("%w: parity %d, data %d", ErrLengthMismatch, len(par), len(want))
	}
	for i := range par {
		if par[i] != want[i] {
			return false, nil
		}
	}
	return true, nil
}
