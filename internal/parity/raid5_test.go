package parity

import "testing"

func TestNewRaid5LayoutValidation(t *testing.T) {
	cases := []struct {
		nodes, groups int
		wantErr       bool
	}{
		{2, 1, false},
		{4, 4, false},
		{1, 1, true},
		{0, 3, true},
		{4, 0, true},
		{-2, -1, true},
	}
	for _, c := range cases {
		_, err := NewRaid5Layout(c.nodes, c.groups)
		if (err != nil) != c.wantErr {
			t.Errorf("NewRaid5Layout(%d,%d) err=%v, wantErr=%v", c.nodes, c.groups, err, c.wantErr)
		}
	}
}

func TestParityNodeRotation(t *testing.T) {
	l, err := NewRaid5Layout(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for g, w := range want {
		if got := l.ParityNode(g); got != w {
			t.Errorf("ParityNode(%d) = %d, want %d", g, got, w)
		}
	}
}

func TestParityLoadBalanced(t *testing.T) {
	for nodes := 2; nodes <= 16; nodes++ {
		for groups := 1; groups <= 40; groups++ {
			l, err := NewRaid5Layout(nodes, groups)
			if err != nil {
				t.Fatal(err)
			}
			if !l.Balanced() {
				t.Errorf("layout %d nodes / %d groups not balanced: %v", nodes, groups, l.ParityLoad())
			}
			total := 0
			for _, v := range l.ParityLoad() {
				total += v
			}
			if total != groups {
				t.Errorf("load sums to %d, want %d", total, groups)
			}
		}
	}
}

func TestGroupsOnNodeConsistency(t *testing.T) {
	l, _ := NewRaid5Layout(3, 7)
	seen := map[int]bool{}
	for n := 0; n < l.Nodes; n++ {
		for _, g := range l.GroupsOnNode(n) {
			if seen[g] {
				t.Errorf("group %d assigned to multiple nodes", g)
			}
			seen[g] = true
			if l.ParityNode(g) != n {
				t.Errorf("GroupsOnNode(%d) lists %d but ParityNode(%d)=%d", n, g, g, l.ParityNode(g))
			}
		}
	}
	if len(seen) != l.Groups {
		t.Errorf("covered %d groups, want %d", len(seen), l.Groups)
	}
}

func TestParityNodePanicsOutOfRange(t *testing.T) {
	l, _ := NewRaid5Layout(2, 2)
	for _, g := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ParityNode(%d) should panic", g)
				}
			}()
			l.ParityNode(g)
		}()
	}
}

func TestOffsetRotation(t *testing.T) {
	l, _ := NewRaid5Layout(4, 4)
	l.Offset = 2
	if got := l.ParityNode(0); got != 2 {
		t.Errorf("offset rotation: ParityNode(0) = %d, want 2", got)
	}
	if got := l.ParityNode(3); got != 1 {
		t.Errorf("offset rotation: ParityNode(3) = %d, want 1", got)
	}
}
