package vm

import (
	"fmt"
	"math"
)

// DirtyModel predicts the size of a VM's dirty set (unique dirtied bytes)
// after it has executed for a given interval since the last checkpoint. The
// discrete-event simulations and the analytical model use this instead of
// byte-real Machines: the paper's overhead arguments depend only on how many
// bytes must move per checkpoint.
type DirtyModel interface {
	// DirtyBytes returns the expected dirty-set size in bytes after
	// interval seconds of execution. It is nondecreasing in interval.
	DirtyBytes(interval float64) float64
}

// LinearDirty dirties bytes at a constant rate up to a cap (the full image
// or a configured working set). The classic simple model.
type LinearDirty struct {
	RatePerSec float64 // unique bytes dirtied per second while below cap
	CapBytes   float64 // maximum dirty-set size
}

// DirtyBytes implements DirtyModel.
func (d LinearDirty) DirtyBytes(interval float64) float64 {
	if interval <= 0 {
		return 0
	}
	return math.Min(d.RatePerSec*interval, d.CapBytes)
}

// SaturatingDirty models re-dirtying: writes land at WriteRate bytes/sec but
// repeatedly hit the same working set, so the unique dirty set approaches
// WSSBytes exponentially: D(t) = WSS * (1 - exp(-rate*t/WSS)). This is the
// page-locality behaviour Sec. II-B1 describes.
type SaturatingDirty struct {
	WriteRate float64 // gross write throughput, bytes/sec
	WSSBytes  float64 // working-set size the dirty set saturates to
}

// DirtyBytes implements DirtyModel.
func (d SaturatingDirty) DirtyBytes(interval float64) float64 {
	if interval <= 0 || d.WSSBytes <= 0 {
		return 0
	}
	return d.WSSBytes * (1 - math.Exp(-d.WriteRate*interval/d.WSSBytes))
}

// FullImageDirty always reports the whole image dirty: the model for
// non-incremental ("normal" in Plank's terms) checkpointing, where every
// checkpoint ships the full VM state.
type FullImageDirty struct {
	ImageBytes float64
}

// DirtyBytes implements DirtyModel.
func (d FullImageDirty) DirtyBytes(interval float64) float64 { return d.ImageBytes }

// Spec is the parametric description of one VM for simulation purposes.
type Spec struct {
	Name       string
	ImageBytes int64      // full memory image size
	Dirty      DirtyModel // dirty-set predictor
}

// Validate checks the spec for usability.
func (s Spec) Validate() error {
	if s.ImageBytes <= 0 {
		return fmt.Errorf("vm: spec %q has non-positive image size %d", s.Name, s.ImageBytes)
	}
	if s.Dirty == nil {
		return fmt.Errorf("vm: spec %q has no dirty model", s.Name)
	}
	return nil
}

// CheckpointBytes returns how many bytes a checkpoint taken after interval
// seconds must capture under this spec, clamped to the image size.
func (s Spec) CheckpointBytes(interval float64) float64 {
	return math.Min(s.Dirty.DirtyBytes(interval), float64(s.ImageBytes))
}
