package vm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearDirtyCaps(t *testing.T) {
	d := LinearDirty{RatePerSec: 100, CapBytes: 1000}
	if got := d.DirtyBytes(5); got != 500 {
		t.Errorf("DirtyBytes(5) = %v, want 500", got)
	}
	if got := d.DirtyBytes(100); got != 1000 {
		t.Errorf("DirtyBytes(100) = %v, want cap 1000", got)
	}
	if got := d.DirtyBytes(0); got != 0 {
		t.Errorf("DirtyBytes(0) = %v, want 0", got)
	}
	if got := d.DirtyBytes(-1); got != 0 {
		t.Errorf("DirtyBytes(-1) = %v, want 0", got)
	}
}

func TestSaturatingDirtyLimits(t *testing.T) {
	d := SaturatingDirty{WriteRate: 1000, WSSBytes: 10000}
	if got := d.DirtyBytes(0); got != 0 {
		t.Errorf("DirtyBytes(0) = %v, want 0", got)
	}
	// Short interval: approximately linear (rate * t).
	short := d.DirtyBytes(0.1)
	if math.Abs(short-100)/100 > 0.01 {
		t.Errorf("short-interval dirty %v, want ~100", short)
	}
	// Long interval: approaches but never exceeds WSS.
	long := d.DirtyBytes(1e6)
	if long > 10000 || long < 9999 {
		t.Errorf("long-interval dirty %v, want ~10000", long)
	}
}

func TestFullImageDirtyConstant(t *testing.T) {
	d := FullImageDirty{ImageBytes: 1 << 30}
	for _, iv := range []float64{0, 1, 1e9} {
		if got := d.DirtyBytes(iv); got != 1<<30 {
			t.Errorf("DirtyBytes(%v) = %v, want full image", iv, got)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "a", ImageBytes: 1024, Dirty: LinearDirty{RatePerSec: 1, CapBytes: 10}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{Name: "b", ImageBytes: 0, Dirty: good.Dirty}).Validate(); err == nil {
		t.Error("zero image should fail")
	}
	if err := (Spec{Name: "c", ImageBytes: 10}).Validate(); err == nil {
		t.Error("nil dirty model should fail")
	}
}

func TestCheckpointBytesClampedToImage(t *testing.T) {
	s := Spec{Name: "x", ImageBytes: 500, Dirty: LinearDirty{RatePerSec: 1000, CapBytes: 1e9}}
	if got := s.CheckpointBytes(10); got != 500 {
		t.Errorf("CheckpointBytes = %v, want image size 500", got)
	}
}

// Property: all dirty models are nondecreasing in the interval.
func TestQuickDirtyModelsMonotone(t *testing.T) {
	models := []DirtyModel{
		LinearDirty{RatePerSec: 123, CapBytes: 1e6},
		SaturatingDirty{WriteRate: 500, WSSBytes: 1e5},
		FullImageDirty{ImageBytes: 1e6},
	}
	f := func(aRaw, bRaw uint32) bool {
		a, b := float64(aRaw)/1000, float64(bRaw)/1000
		if a > b {
			a, b = b, a
		}
		for _, m := range models {
			if m.DirtyBytes(a) > m.DirtyBytes(b)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
