package vm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine("x", 0, 4096); err == nil {
		t.Error("zero pages should fail")
	}
	if _, err := NewMachine("x", 4, 0); err == nil {
		t.Error("zero page size should fail")
	}
	m, err := NewMachine("vm0", 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID() != "vm0" || m.NumPages() != 8 || m.PageSize() != 512 {
		t.Error("geometry accessors wrong")
	}
	if m.ImageBytes() != 8*512 {
		t.Errorf("ImageBytes = %d, want %d", m.ImageBytes(), 8*512)
	}
}

func TestFreshMachineIsZeroedAndClean(t *testing.T) {
	m, _ := NewMachine("x", 4, 64)
	if m.DirtyCount() != 0 || m.DirtyBytes() != 0 {
		t.Error("fresh machine should be clean")
	}
	for i := 0; i < 4; i++ {
		for _, b := range m.Page(i) {
			if b != 0 {
				t.Fatal("fresh page not zeroed")
			}
		}
	}
}

func TestWritePageMarksDirtyOnce(t *testing.T) {
	m, _ := NewMachine("x", 4, 64)
	if err := m.WritePage(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(1, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if m.DirtyCount() != 1 {
		t.Errorf("DirtyCount = %d, want 1 (same page twice)", m.DirtyCount())
	}
	if !m.IsDirty(1) || m.IsDirty(0) {
		t.Error("dirty bits wrong")
	}
	if !bytes.Equal(m.Page(1)[:5], []byte("world")) {
		t.Error("page content wrong")
	}
}

func TestWritePageTooLarge(t *testing.T) {
	m, _ := NewMachine("x", 2, 8)
	if err := m.WritePage(0, make([]byte, 9)); err == nil {
		t.Error("oversized write should fail")
	}
}

func TestPageOutOfRangePanics(t *testing.T) {
	m, _ := NewMachine("x", 2, 8)
	for _, i := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Page(%d) should panic", i)
				}
			}()
			m.Page(i)
		}()
	}
}

func TestBeginEpochClearsDirty(t *testing.T) {
	m, _ := NewMachine("x", 4, 64)
	m.TouchPage(0, 1)
	m.TouchPage(3, 2)
	if m.DirtyCount() != 2 {
		t.Fatalf("DirtyCount = %d, want 2", m.DirtyCount())
	}
	if got := m.DirtyPages(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("DirtyPages = %v, want [0 3]", got)
	}
	e := m.Epoch()
	m.BeginEpoch()
	if m.DirtyCount() != 0 || m.Epoch() != e+1 {
		t.Error("BeginEpoch did not reset state")
	}
}

func TestImageRoundTrip(t *testing.T) {
	m, _ := NewMachine("x", 4, 16)
	m.TouchPage(2, 0xdeadbeef)
	img := m.Image()
	if int64(len(img)) != m.ImageBytes() {
		t.Fatalf("image length %d, want %d", len(img), m.ImageBytes())
	}
	m2, _ := NewMachine("y", 4, 16)
	if err := m2.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(m2) {
		t.Error("restored machine differs")
	}
	if m2.DirtyCount() != 0 {
		t.Error("LoadImage should leave the machine clean")
	}
	if err := m2.LoadImage(img[:10]); err == nil {
		t.Error("short image should fail")
	}
}

func TestMutatePage(t *testing.T) {
	m, _ := NewMachine("x", 2, 8)
	m.MutatePage(0, func(p []byte) { p[7] = 0xff })
	if m.Page(0)[7] != 0xff || !m.IsDirty(0) {
		t.Error("MutatePage did not apply or mark dirty")
	}
}

func TestPageHashChangesWithContent(t *testing.T) {
	m, _ := NewMachine("x", 2, 64)
	h0 := m.PageHash(0)
	if m.PageHash(1) != h0 {
		t.Error("identical pages should hash identically")
	}
	m.TouchPage(0, 42)
	if m.PageHash(0) == h0 {
		t.Error("hash should change when content changes")
	}
	hashes := m.HashAll()
	if len(hashes) != 2 || hashes[0] != m.PageHash(0) {
		t.Error("HashAll inconsistent with PageHash")
	}
}

func TestEqualDetectsGeometryAndContent(t *testing.T) {
	a, _ := NewMachine("a", 2, 8)
	b, _ := NewMachine("b", 2, 8)
	if !a.Equal(b) {
		t.Error("fresh identical machines should be equal")
	}
	c, _ := NewMachine("c", 4, 8)
	if a.Equal(c) {
		t.Error("different geometry should not be equal")
	}
	b.TouchPage(1, 9)
	if a.Equal(b) {
		t.Error("different content should not be equal")
	}
}

// Property: DirtyCount always equals len(DirtyPages) under random writes.
func TestQuickDirtyAccounting(t *testing.T) {
	f := func(writes []uint8) bool {
		m, err := NewMachine("q", 16, 32)
		if err != nil {
			return false
		}
		for i, w := range writes {
			m.TouchPage(int(w)%16, uint64(i))
		}
		return m.DirtyCount() == len(m.DirtyPages()) &&
			m.DirtyBytes() == int64(m.DirtyCount())*32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
