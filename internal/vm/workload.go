package vm

import (
	"fmt"
	"math/rand"
)

// Workload dirties a Machine's pages the way a running guest would. Steps
// is the unit the simulator drives: one Step is one page write.
type Workload interface {
	// Step performs one page write against m.
	Step(m *Machine)
	// Name identifies the workload in reports.
	Name() string
}

// Uniform writes to pages chosen uniformly at random: the worst case for
// incremental checkpointing because the dirty set spreads maximally.
type Uniform struct {
	rng   *rand.Rand
	stamp uint64
}

// NewUniform builds a uniform workload with its own seeded source.
func NewUniform(seed int64) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed))}
}

// Step implements Workload.
func (w *Uniform) Step(m *Machine) {
	w.stamp++
	m.TouchPage(w.rng.Intn(m.NumPages()), w.stamp)
}

// Name implements Workload.
func (w *Uniform) Name() string { return "uniform" }

// Sequential sweeps pages in order, wrapping around: models streaming
// computations (e.g. large dense linear algebra passes).
type Sequential struct {
	next  int
	stamp uint64
}

// NewSequential builds a sequential sweep workload.
func NewSequential() *Sequential { return &Sequential{} }

// Step implements Workload.
func (w *Sequential) Step(m *Machine) {
	w.stamp++
	m.TouchPage(w.next%m.NumPages(), w.stamp)
	w.next++
}

// Name implements Workload.
func (w *Sequential) Name() string { return "sequential" }

// Zipf concentrates writes on a hot set with Zipfian skew: the locality
// case where incremental checkpointing shines ("the working set is so
// comparatively small that saving only the changed state ... becomes a huge
// advantage", Sec. II-B1).
type Zipf struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	n     uint64
	stamp uint64
	s     float64
}

// NewZipf builds a Zipf workload over n pages with skew s > 1. Typical
// guest locality is s in [1.01, 2].
func NewZipf(n int, s float64, seed int64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vm: Zipf needs n > 0 pages, got %d", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("vm: Zipf skew must be > 1, got %v", s)
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{
		rng:  rng,
		zipf: rand.NewZipf(rng, s, 1, uint64(n-1)),
		n:    uint64(n),
		s:    s,
	}, nil
}

// Step implements Workload. Ranks are scattered over the page space with a
// multiplicative hash so "hot" pages are not physically adjacent.
func (w *Zipf) Step(m *Machine) {
	w.stamp++
	rank := w.zipf.Uint64()
	page := (rank * 2654435761) % uint64(m.NumPages())
	m.TouchPage(int(page), w.stamp)
}

// Name implements Workload.
func (w *Zipf) Name() string { return fmt.Sprintf("zipf(s=%.2f)", w.s) }

// Phased alternates between distinct working sets, switching every
// PhaseLen steps: models application phase changes, which defeat a
// checkpointing policy tuned to a single dirty rate and motivate the
// adaptive-interval work the paper cites (Yi et al.).
type Phased struct {
	rng      *rand.Rand
	phaseLen int
	setFrac  float64
	step     int
	phase    int
	stamp    uint64
}

// NewPhased builds a phased workload: each phase writes uniformly within a
// contiguous window covering setFrac of memory; the window moves every
// phaseLen steps.
func NewPhased(phaseLen int, setFrac float64, seed int64) (*Phased, error) {
	if phaseLen <= 0 {
		return nil, fmt.Errorf("vm: phase length must be positive, got %d", phaseLen)
	}
	if setFrac <= 0 || setFrac > 1 {
		return nil, fmt.Errorf("vm: working-set fraction must be in (0,1], got %v", setFrac)
	}
	return &Phased{rng: rand.New(rand.NewSource(seed)), phaseLen: phaseLen, setFrac: setFrac}, nil
}

// Step implements Workload.
func (w *Phased) Step(m *Machine) {
	if w.step > 0 && w.step%w.phaseLen == 0 {
		w.phase++
	}
	w.step++
	w.stamp++
	n := m.NumPages()
	window := int(float64(n) * w.setFrac)
	if window < 1 {
		window = 1
	}
	base := (w.phase * window) % n
	m.TouchPage((base+w.rng.Intn(window))%n, w.stamp)
}

// Name implements Workload.
func (w *Phased) Name() string { return fmt.Sprintf("phased(len=%d,ws=%.2f)", w.phaseLen, w.setFrac) }

// Rewrite models checkpoint similarity: pages are re-dirtied constantly but
// only a fraction of writes change content — the rest store back the values
// already there (databases rewriting clean buffers, zeroed heap arenas,
// double-buffered state). Dirty-page tracking sees every write, so an
// incremental checkpointer ships the whole working set each epoch even
// though most pages are byte-identical to the last committed image. This is
// the workload the cross-epoch page-dedup cache exists for.
type Rewrite struct {
	rng        *rand.Rand
	stamp      uint64
	changeFrac float64
}

// NewRewrite builds a rewrite workload: each step dirties a uniformly
// chosen page, and with probability changeFrac (clamped to [0,1]) actually
// changes its content.
func NewRewrite(seed int64, changeFrac float64) *Rewrite {
	if changeFrac < 0 {
		changeFrac = 0
	}
	if changeFrac > 1 {
		changeFrac = 1
	}
	return &Rewrite{rng: rand.New(rand.NewSource(seed)), changeFrac: changeFrac}
}

// Step implements Workload.
func (w *Rewrite) Step(m *Machine) {
	page := w.rng.Intn(m.NumPages())
	if w.rng.Float64() < w.changeFrac {
		w.stamp++
		m.TouchPage(page, w.stamp)
		return
	}
	// Store-back of identical bytes: the page is dirtied, its content is not.
	m.MutatePage(page, func([]byte) {})
}

// Name implements Workload.
func (w *Rewrite) Name() string { return fmt.Sprintf("rewrite(change=%.2f)", w.changeFrac) }

// Replay drives a machine from a recorded page-access sequence, wrapping
// around when exhausted: the bridge from real guest traces (e.g. captured
// with a hypervisor's dirty-logging) to the simulator. Page indices are
// taken modulo the machine size so traces from differently-sized guests
// still exercise the access pattern.
type Replay struct {
	seq   []int
	pos   int
	stamp uint64
}

// NewReplay builds a replay workload from a page-access sequence.
func NewReplay(seq []int) (*Replay, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("vm: replay needs a non-empty sequence")
	}
	for i, p := range seq {
		if p < 0 {
			return nil, fmt.Errorf("vm: replay entry %d is negative (%d)", i, p)
		}
	}
	return &Replay{seq: append([]int(nil), seq...)}, nil
}

// Step implements Workload.
func (w *Replay) Step(m *Machine) {
	w.stamp++
	m.TouchPage(w.seq[w.pos]%m.NumPages(), w.stamp)
	w.pos = (w.pos + 1) % len(w.seq)
}

// Name implements Workload.
func (w *Replay) Name() string { return fmt.Sprintf("replay(%d accesses)", len(w.seq)) }

// Run advances the workload n steps against m.
func Run(w Workload, m *Machine, n int) {
	for i := 0; i < n; i++ {
		w.Step(m)
	}
}
