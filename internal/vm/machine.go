// Package vm models virtual-machine memory at the level DVDC cares about: a
// paged image with per-epoch dirty tracking, page hashing, and synthetic
// workloads that dirty pages the way real guests do.
//
// Two representations coexist. Machine is byte-real: it holds actual page
// contents and is what the checkpoint variants, the parity pipeline, and the
// TCP runtime operate on. Spec + DirtyModel is parametric: just the sizes
// and rates the discrete-event simulation and the paper's analytical model
// need, so simulating a 2-day run of 1 GiB guests costs no memory.
package vm

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// DefaultPageSize is the conventional 4 KiB page.
const DefaultPageSize = 4096

// Machine is a byte-real paged memory image with dirty tracking.
//
// Dirty bits accumulate from the moment of construction or the last
// BeginEpoch call; checkpointing code snapshots the dirty set and calls
// BeginEpoch to open the next tracking window. Machine is not safe for
// concurrent use.
type Machine struct {
	id         string
	pageSize   int
	pages      [][]byte
	dirty      []bool
	dirtyCount int
	epoch      uint64

	hooks  map[int]WriteHook
	nextID int
}

// WriteHook observes page mutations. It is invoked with the page index and
// the page's current (pre-write) contents immediately before every mutation,
// whether or not the page is already dirty. The old slice is only valid for
// the duration of the call; hooks that keep it must copy. Copy-on-write
// checkpointing (Plank's "forked" variant) is built on this.
type WriteHook func(page int, old []byte)

// AddWriteHook registers a hook and returns an id for RemoveWriteHook.
func (m *Machine) AddWriteHook(h WriteHook) int {
	if m.hooks == nil {
		m.hooks = make(map[int]WriteHook)
	}
	id := m.nextID
	m.nextID++
	m.hooks[id] = h
	return id
}

// RemoveWriteHook unregisters a hook; unknown ids are ignored.
func (m *Machine) RemoveWriteHook(id int) { delete(m.hooks, id) }

// preWrite runs registered hooks before page i changes.
func (m *Machine) preWrite(i int) {
	for _, h := range m.hooks {
		h(i, m.pages[i])
	}
}

// NewMachine allocates a zeroed machine with numPages pages of pageSize
// bytes each.
func NewMachine(id string, numPages, pageSize int) (*Machine, error) {
	if numPages <= 0 {
		return nil, fmt.Errorf("vm: numPages must be positive, got %d", numPages)
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("vm: pageSize must be positive, got %d", pageSize)
	}
	m := &Machine{
		id:       id,
		pageSize: pageSize,
		pages:    make([][]byte, numPages),
		dirty:    make([]bool, numPages),
	}
	backing := make([]byte, numPages*pageSize)
	for i := range m.pages {
		m.pages[i] = backing[i*pageSize : (i+1)*pageSize : (i+1)*pageSize]
	}
	return m, nil
}

// ID returns the machine's identifier.
func (m *Machine) ID() string { return m.id }

// NumPages returns the number of pages.
func (m *Machine) NumPages() int { return len(m.pages) }

// PageSize returns the page size in bytes.
func (m *Machine) PageSize() int { return m.pageSize }

// ImageBytes returns the total memory image size in bytes.
func (m *Machine) ImageBytes() int64 { return int64(len(m.pages)) * int64(m.pageSize) }

// Epoch returns the current dirty-tracking epoch, starting at zero.
func (m *Machine) Epoch() uint64 { return m.epoch }

// checkPage panics on an out-of-range page index; an index bug in a caller
// must not be silently absorbed.
func (m *Machine) checkPage(i int) {
	if i < 0 || i >= len(m.pages) {
		panic(fmt.Sprintf("vm: page %d out of range [0,%d)", i, len(m.pages)))
	}
}

// Page returns a read-only view of page i. Callers must not mutate it;
// use WritePage or MutatePage so dirty tracking stays correct.
func (m *Machine) Page(i int) []byte {
	m.checkPage(i)
	return m.pages[i]
}

// WritePage replaces the contents of page i and marks it dirty. data longer
// than a page is rejected; shorter data overwrites the page prefix.
func (m *Machine) WritePage(i int, data []byte) error {
	m.checkPage(i)
	if len(data) > m.pageSize {
		return fmt.Errorf("vm: write of %d bytes exceeds page size %d", len(data), m.pageSize)
	}
	m.preWrite(i)
	copy(m.pages[i], data)
	m.markDirty(i)
	return nil
}

// MutatePage applies fn to page i's contents in place and marks it dirty.
func (m *Machine) MutatePage(i int, fn func(page []byte)) {
	m.checkPage(i)
	m.preWrite(i)
	fn(m.pages[i])
	m.markDirty(i)
}

// TouchPage marks page i dirty and stamps it with the epoch and a counter so
// the content actually changes (synthetic workloads use this as a cheap
// deterministic mutation).
func (m *Machine) TouchPage(i int, stamp uint64) {
	m.checkPage(i)
	m.preWrite(i)
	binary.LittleEndian.PutUint64(m.pages[i][:8], stamp)
	m.markDirty(i)
}

// MarkDirty flags page i as dirty without changing its contents. The
// two-phase checkpoint protocol uses it when a prepared capture is aborted:
// the captured pages must re-enter the next capture's dirty set.
func (m *Machine) MarkDirty(i int) {
	m.checkPage(i)
	m.markDirty(i)
}

func (m *Machine) markDirty(i int) {
	if !m.dirty[i] {
		m.dirty[i] = true
		m.dirtyCount++
	}
}

// DirtyCount returns how many distinct pages are dirty this epoch.
func (m *Machine) DirtyCount() int { return m.dirtyCount }

// DirtyBytes returns the dirty set size in bytes.
func (m *Machine) DirtyBytes() int64 { return int64(m.dirtyCount) * int64(m.pageSize) }

// IsDirty reports whether page i is dirty this epoch.
func (m *Machine) IsDirty(i int) bool {
	m.checkPage(i)
	return m.dirty[i]
}

// DirtyPages returns the sorted indices of dirty pages.
func (m *Machine) DirtyPages() []int {
	out := make([]int, 0, m.dirtyCount)
	for i, d := range m.dirty {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// BeginEpoch clears all dirty bits and advances the epoch counter. It is
// called by checkpoint code after capturing the dirty set.
func (m *Machine) BeginEpoch() {
	for i := range m.dirty {
		m.dirty[i] = false
	}
	m.dirtyCount = 0
	m.epoch++
}

// Image returns a copy of the full memory image as one contiguous slice.
func (m *Machine) Image() []byte {
	out := make([]byte, 0, m.ImageBytes())
	for _, p := range m.pages {
		out = append(out, p...)
	}
	return out
}

// LoadImage overwrites the whole memory from a contiguous image (e.g. a
// restored checkpoint) and clears dirty state: after a restore the machine
// is by definition in sync with its checkpoint.
func (m *Machine) LoadImage(img []byte) error {
	if int64(len(img)) != m.ImageBytes() {
		return fmt.Errorf("vm: image is %d bytes, machine holds %d", len(img), m.ImageBytes())
	}
	for i, p := range m.pages {
		copy(p, img[i*m.pageSize:])
	}
	for i := range m.dirty {
		m.dirty[i] = false
	}
	m.dirtyCount = 0
	return nil
}

// PageHash returns a 64-bit FNV-1a hash of page i. The paper's future-work
// section proposes page hashes to skip transferring pages already present at
// a migration destination; migrate.Dedup uses these.
func (m *Machine) PageHash(i int) uint64 {
	m.checkPage(i)
	h := fnv.New64a()
	h.Write(m.pages[i])
	return h.Sum64()
}

// HashAll returns the hash of every page.
func (m *Machine) HashAll() []uint64 {
	out := make([]uint64, len(m.pages))
	for i := range m.pages {
		out[i] = m.PageHash(i)
	}
	return out
}

// Equal reports whether two machines have identical geometry and contents.
func (m *Machine) Equal(o *Machine) bool {
	if m.pageSize != o.pageSize || len(m.pages) != len(o.pages) {
		return false
	}
	for i := range m.pages {
		a, b := m.pages[i], o.pages[i]
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}
