package vm

import (
	"testing"
)

func TestUniformSpreadsWrites(t *testing.T) {
	m, _ := NewMachine("x", 256, 64)
	w := NewUniform(1)
	Run(w, m, 2000)
	// With 2000 uniform writes over 256 pages, the dirty set should be
	// nearly full (coupon-collector: expected ~255.9 unique pages).
	if m.DirtyCount() < 240 {
		t.Errorf("uniform dirty count %d, want near 256", m.DirtyCount())
	}
}

func TestSequentialDirtyCountExact(t *testing.T) {
	m, _ := NewMachine("x", 100, 64)
	w := NewSequential()
	Run(w, m, 60)
	if m.DirtyCount() != 60 {
		t.Errorf("sequential 60 steps dirtied %d pages, want 60", m.DirtyCount())
	}
	Run(w, m, 60) // wraps: total unique = 100
	if m.DirtyCount() != 100 {
		t.Errorf("after wrap dirtied %d, want 100", m.DirtyCount())
	}
}

func TestZipfConcentratesWrites(t *testing.T) {
	m, _ := NewMachine("x", 1024, 64)
	w, err := NewZipf(1024, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	Run(w, m, 2000)
	// Skewed access: unique pages should be far below the uniform case.
	if m.DirtyCount() > 600 {
		t.Errorf("zipf dirtied %d of 1024 pages; expected strong concentration", m.DirtyCount())
	}
	if m.DirtyCount() == 0 {
		t.Error("zipf dirtied nothing")
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1.5, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewZipf(10, 1.0, 1); err == nil {
		t.Error("s=1 should fail")
	}
}

func TestPhasedMovesWorkingSet(t *testing.T) {
	m, _ := NewMachine("x", 1000, 64)
	w, err := NewPhased(500, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	Run(w, m, 500) // phase 0: pages [0,100)
	first := m.DirtyPages()
	for _, p := range first {
		if p >= 100 {
			t.Fatalf("phase 0 touched page %d outside [0,100)", p)
		}
	}
	m.BeginEpoch()
	Run(w, m, 500) // phase 1: pages [100,200)
	for _, p := range m.DirtyPages() {
		if p < 100 || p >= 200 {
			t.Fatalf("phase 1 touched page %d outside [100,200)", p)
		}
	}
}

func TestPhasedValidation(t *testing.T) {
	if _, err := NewPhased(0, 0.5, 1); err == nil {
		t.Error("phaseLen=0 should fail")
	}
	if _, err := NewPhased(10, 0, 1); err == nil {
		t.Error("setFrac=0 should fail")
	}
	if _, err := NewPhased(10, 1.5, 1); err == nil {
		t.Error("setFrac>1 should fail")
	}
}

func TestWorkloadNames(t *testing.T) {
	z, _ := NewZipf(10, 1.5, 1)
	p, _ := NewPhased(10, 0.5, 1)
	for _, w := range []Workload{NewUniform(1), NewSequential(), z, p} {
		if w.Name() == "" {
			t.Errorf("%T has empty name", w)
		}
	}
}

func TestReplayFollowsSequenceAndWraps(t *testing.T) {
	m, _ := NewMachine("x", 10, 64)
	w, err := NewReplay([]int{3, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	Run(w, m, 4) // 3,7,3, then wrap to 3
	got := m.DirtyPages()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("DirtyPages = %v, want [3 7]", got)
	}
	if w.Name() == "" {
		t.Error("empty name")
	}
}

func TestReplayModuloMachineSize(t *testing.T) {
	m, _ := NewMachine("x", 4, 64)
	w, _ := NewReplay([]int{9}) // 9 mod 4 = 1
	Run(w, m, 1)
	if !m.IsDirty(1) {
		t.Error("replay should wrap page indices into the machine")
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Error("empty sequence should fail")
	}
	if _, err := NewReplay([]int{1, -2}); err == nil {
		t.Error("negative entry should fail")
	}
}
