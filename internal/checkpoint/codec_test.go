package checkpoint

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripFull(t *testing.T) {
	m := newMachine(t, 8, 64)
	scribble(m, 7, 20)
	c := CaptureFull(m)
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	assertCheckpointEqual(t, c, got)
}

func TestCodecRoundTripIncremental(t *testing.T) {
	m := newMachine(t, 8, 64)
	CaptureFull(m)
	m.TouchPage(2, 1)
	m.TouchPage(7, 2)
	c := CaptureIncremental(m)
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	assertCheckpointEqual(t, c, got)
}

func TestCodecRoundTripCompressed(t *testing.T) {
	m := newMachine(t, 8, 128)
	st, _ := NewStore(CaptureFull(m))
	m.MutatePage(1, func(p []byte) { p[5] = 0xaa })
	c, err := CaptureCompressedDelta(m, st.ImageRef())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	assertCheckpointEqual(t, c, got)
}

func assertCheckpointEqual(t *testing.T, want, got *Checkpoint) {
	t.Helper()
	if got.VMID != want.VMID || got.Epoch != want.Epoch || got.Kind != want.Kind ||
		got.NumPages != want.NumPages || got.PageSize != want.PageSize {
		t.Fatalf("header mismatch: got %+v, want %+v", got, want)
	}
	if len(got.Pages) != len(want.Pages) {
		t.Fatalf("page count %d, want %d", len(got.Pages), len(want.Pages))
	}
	for i := range want.Pages {
		if got.Pages[i].Index != want.Pages[i].Index || !bytes.Equal(got.Pages[i].Data, want.Pages[i].Data) {
			t.Fatalf("page %d differs", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("XXXX"),
		[]byte("DVDC"),                 // truncated after magic
		append([]byte("DVDC"), 99, 0),  // bad version
		append([]byte("DVDC"), 1, 200), // bad kind
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
}

func TestDecodeRejectsTruncationAnywhere(t *testing.T) {
	m := newMachine(t, 4, 32)
	scribble(m, 8, 10)
	enc := CaptureFull(m).Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d/%d", cut, len(enc))
		}
	}
	// Trailing garbage must also be rejected.
	if _, err := Decode(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Error("Decode accepted trailing byte")
	}
}

// Property: encode/decode is an exact round trip for random incremental
// checkpoints.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64, writes uint8) bool {
		m, err := newQuickMachine()
		if err != nil {
			return false
		}
		CaptureFull(m)
		scribbleQuick(m, seed, int(writes))
		c := CaptureIncremental(m)
		got, err := Decode(c.Encode())
		if err != nil {
			return false
		}
		if got.VMID != c.VMID || got.Epoch != c.Epoch || len(got.Pages) != len(c.Pages) {
			return false
		}
		for i := range c.Pages {
			if got.Pages[i].Index != c.Pages[i].Index || !bytes.Equal(got.Pages[i].Data, c.Pages[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
