// Package checkpoint implements the checkpoint variants the paper builds on
// (Sec. II-B): full ("normal" in Plank's terms), incremental (dirty pages
// only), forked copy-on-write, and compressed differences (Plank & Xu).
//
// A Checkpoint is a self-contained record of the pages captured at one
// epoch; a Store materializes any epoch by replaying a base image plus its
// chain of increments, which is exactly what a parity holder needs when it
// reconstructs a failed VM.
package checkpoint

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sort"

	"dvdc/internal/vm"
)

// Kind distinguishes the checkpoint variants.
type Kind int

// Checkpoint kinds.
const (
	Full Kind = iota
	Incremental
	CompressedDelta
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Full:
		return "full"
	case Incremental:
		return "incremental"
	case CompressedDelta:
		return "compressed-delta"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// PageRecord is one captured page.
type PageRecord struct {
	Index int
	Data  []byte // raw page content, or compressed XOR delta for CompressedDelta
}

// Checkpoint is the captured state of one VM at one epoch.
type Checkpoint struct {
	VMID     string
	Epoch    uint64 // the machine epoch this checkpoint closed
	Kind     Kind
	NumPages int
	PageSize int
	Pages    []PageRecord // sorted by Index
}

// PayloadBytes returns the size of the captured page data: the quantity that
// must cross the network and enter parity. For CompressedDelta checkpoints
// this is the compressed size.
func (c *Checkpoint) PayloadBytes() int64 {
	var n int64
	for _, p := range c.Pages {
		n += int64(len(p.Data))
	}
	return n
}

// CaptureFull snapshots every page of m and opens a new epoch. This is the
// "normal" diskless variant that needs memory for the whole image.
func CaptureFull(m *vm.Machine) *Checkpoint {
	c := &Checkpoint{
		VMID:     m.ID(),
		Epoch:    m.Epoch(),
		Kind:     Full,
		NumPages: m.NumPages(),
		PageSize: m.PageSize(),
		Pages:    make([]PageRecord, m.NumPages()),
	}
	for i := 0; i < m.NumPages(); i++ {
		c.Pages[i] = PageRecord{Index: i, Data: append([]byte(nil), m.Page(i)...)}
	}
	m.BeginEpoch()
	return c
}

// CaptureIncremental snapshots only the pages dirtied since the last epoch
// and opens a new one. The first checkpoint of a machine's life should be a
// CaptureFull so the increment chain has a base.
func CaptureIncremental(m *vm.Machine) *Checkpoint {
	dirty := m.DirtyPages()
	c := &Checkpoint{
		VMID:     m.ID(),
		Epoch:    m.Epoch(),
		Kind:     Incremental,
		NumPages: m.NumPages(),
		PageSize: m.PageSize(),
		Pages:    make([]PageRecord, 0, len(dirty)),
	}
	for _, i := range dirty {
		c.Pages = append(c.Pages, PageRecord{Index: i, Data: append([]byte(nil), m.Page(i)...)})
	}
	m.BeginEpoch()
	return c
}

// CaptureCompressedDelta captures dirty pages as flate-compressed XOR deltas
// against the page contents recorded in base (the previous materialized
// image). Pages whose delta does not compress below the raw page are stored
// raw (marked by a leading 0 byte; compressed deltas lead with 1).
func CaptureCompressedDelta(m *vm.Machine, base []byte) (*Checkpoint, error) {
	if int64(len(base)) != m.ImageBytes() {
		return nil, fmt.Errorf("checkpoint: base image is %d bytes, machine holds %d", len(base), m.ImageBytes())
	}
	dirty := m.DirtyPages()
	ps := m.PageSize()
	c := &Checkpoint{
		VMID:     m.ID(),
		Epoch:    m.Epoch(),
		Kind:     CompressedDelta,
		NumPages: m.NumPages(),
		PageSize: ps,
		Pages:    make([]PageRecord, 0, len(dirty)),
	}
	for _, i := range dirty {
		cur := m.Page(i)
		old := base[i*ps : (i+1)*ps]
		delta := make([]byte, ps)
		for j := range delta {
			delta[j] = cur[j] ^ old[j]
		}
		comp, err := deflate(delta)
		if err != nil {
			return nil, err
		}
		var data []byte
		if len(comp)+1 < ps {
			data = append([]byte{1}, comp...)
		} else {
			data = append([]byte{0}, cur...)
		}
		c.Pages = append(c.Pages, PageRecord{Index: i, Data: data})
	}
	m.BeginEpoch()
	return c, nil
}

// Compress deflates a buffer with the same settings the compressed-delta
// capture uses; measurement tools use it to size hypothetical payloads.
func Compress(p []byte) ([]byte, error) { return deflate(p) }

func deflate(p []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(p); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func inflate(p []byte, want int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(p))
	defer r.Close()
	out := make([]byte, 0, want)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("checkpoint: inflated %d bytes, want %d", len(out), want)
	}
	return out, nil
}

// ApplyTo patches a materialized image in place with this checkpoint's
// pages. For CompressedDelta checkpoints the image must currently hold the
// base the deltas were computed against.
func (c *Checkpoint) ApplyTo(img []byte) error {
	want := int64(c.NumPages) * int64(c.PageSize)
	if int64(len(img)) != want {
		return fmt.Errorf("checkpoint: image is %d bytes, want %d", len(img), want)
	}
	for _, p := range c.Pages {
		if p.Index < 0 || p.Index >= c.NumPages {
			return fmt.Errorf("checkpoint: page index %d out of range", p.Index)
		}
		dst := img[p.Index*c.PageSize : (p.Index+1)*c.PageSize]
		switch c.Kind {
		case Full, Incremental:
			if len(p.Data) != c.PageSize {
				return fmt.Errorf("checkpoint: page %d has %d bytes, want %d", p.Index, len(p.Data), c.PageSize)
			}
			copy(dst, p.Data)
		case CompressedDelta:
			if len(p.Data) == 0 {
				return fmt.Errorf("checkpoint: page %d has empty delta record", p.Index)
			}
			switch p.Data[0] {
			case 0: // raw page
				if len(p.Data)-1 != c.PageSize {
					return fmt.Errorf("checkpoint: raw page %d has %d bytes, want %d", p.Index, len(p.Data)-1, c.PageSize)
				}
				copy(dst, p.Data[1:])
			case 1: // compressed XOR delta
				delta, err := inflate(p.Data[1:], c.PageSize)
				if err != nil {
					return err
				}
				for j := range dst {
					dst[j] ^= delta[j]
				}
			default:
				return fmt.Errorf("checkpoint: page %d has unknown delta tag %d", p.Index, p.Data[0])
			}
		default:
			return fmt.Errorf("checkpoint: unknown kind %v", c.Kind)
		}
	}
	return nil
}

// sortPages keeps the page list ordered by index; capture functions emit
// sorted lists already, decode paths call this defensively.
func (c *Checkpoint) sortPages() {
	sort.Slice(c.Pages, func(i, j int) bool { return c.Pages[i].Index < c.Pages[j].Index })
}
