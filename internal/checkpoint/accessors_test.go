package checkpoint

import "testing"

func TestStoreAccessors(t *testing.T) {
	m := newMachine(t, 4, 32)
	st, err := NewStore(CaptureFull(m))
	if err != nil {
		t.Fatal(err)
	}
	if st.VMID() != "vm-test" {
		t.Errorf("VMID = %q", st.VMID())
	}
	if st.Epoch() != 0 {
		t.Errorf("Epoch = %d", st.Epoch())
	}
	if st.ImageBytes() != 4*32 {
		t.Errorf("ImageBytes = %d", st.ImageBytes())
	}
}

func TestForkEpochAccessor(t *testing.T) {
	m := newMachine(t, 4, 32)
	CaptureFull(m)
	f := Fork(m)
	defer f.Release()
	if f.Epoch() != 1 {
		t.Errorf("fork Epoch = %d, want 1", f.Epoch())
	}
}

func TestCompressHelper(t *testing.T) {
	c, err := Compress(make([]byte, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= 4096 {
		t.Errorf("zero page did not compress: %d bytes", len(c))
	}
}
