package checkpoint

import (
	"bytes"
	"testing"
)

func TestForkSnapshotIsolatesFromLaterWrites(t *testing.T) {
	m := newMachine(t, 8, 64)
	scribble(m, 5, 20)
	want := m.Image()
	f := Fork(m)
	defer f.Release()
	// Mutate heavily after the fork; snapshot must not see it.
	scribble(m, 6, 50)
	c, err := f.MaterializeFull()
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, m.ImageBytes())
	if err := c.ApplyTo(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, want) {
		t.Error("forked snapshot polluted by post-fork writes")
	}
}

func TestForkCopiedBytesProportionalToWrites(t *testing.T) {
	m := newMachine(t, 100, 64)
	f := Fork(m)
	defer f.Release()
	if f.CopiedBytes() != 0 {
		t.Errorf("fresh fork copied %d bytes, want 0", f.CopiedBytes())
	}
	m.TouchPage(1, 1)
	m.TouchPage(1, 2) // same page: only first write copies
	m.TouchPage(2, 3)
	if f.CopiedBytes() != 2*64 {
		t.Errorf("copied %d bytes, want 128", f.CopiedBytes())
	}
}

func TestForkMaterializeIncremental(t *testing.T) {
	m := newMachine(t, 16, 64)
	CaptureFull(m)
	m.TouchPage(4, 1)
	m.TouchPage(9, 2)
	f := Fork(m)
	defer f.Release()
	// Post-fork write to page 4 must not change the captured increment.
	m.TouchPage(4, 99)
	c, err := f.MaterializeIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Pages) != 2 || c.Pages[0].Index != 4 || c.Pages[1].Index != 9 {
		t.Fatalf("incremental pages: %+v", c.Pages)
	}
	// Page 4's content must be the pre-overwrite (stamp 1) version.
	var stamp uint64
	for i := 0; i < 8; i++ {
		stamp |= uint64(c.Pages[0].Data[i]) << (8 * i)
	}
	if stamp != 1 {
		t.Errorf("captured stamp %d, want 1 (fork-time content)", stamp)
	}
}

func TestForkReleaseStopsCopying(t *testing.T) {
	m := newMachine(t, 8, 64)
	f := Fork(m)
	f.Release()
	m.TouchPage(0, 1)
	if f.CopiedBytes() != 0 {
		t.Error("released fork still copying")
	}
	if _, err := f.MaterializeFull(); err == nil {
		t.Error("materializing a released fork should fail")
	}
	f.Release() // double release is a no-op
}

func TestForkOpensNewEpoch(t *testing.T) {
	m := newMachine(t, 8, 64)
	m.TouchPage(0, 1)
	e := m.Epoch()
	f := Fork(m)
	defer f.Release()
	if m.Epoch() != e+1 {
		t.Error("fork should advance the epoch")
	}
	if m.DirtyCount() != 0 {
		t.Error("fork should clear dirty bits")
	}
	if got := f.DirtyAtFork(); len(got) != 1 || got[0] != 0 {
		t.Errorf("DirtyAtFork = %v, want [0]", got)
	}
}

func TestConcurrentForksIndependent(t *testing.T) {
	m := newMachine(t, 8, 64)
	f1 := Fork(m)
	defer f1.Release()
	m.TouchPage(0, 10)
	f2 := Fork(m)
	defer f2.Release()
	m.TouchPage(0, 20)

	c1, _ := f1.MaterializeFull()
	c2, _ := f2.MaterializeFull()
	s1 := c1.Pages[0].Data[0]
	s2 := c2.Pages[0].Data[0]
	if s1 != 0 {
		t.Errorf("f1 page0 stamp byte %d, want 0 (pre-write)", s1)
	}
	if s2 != 10 {
		t.Errorf("f2 page0 stamp byte %d, want 10", s2)
	}
}
