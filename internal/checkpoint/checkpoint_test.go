package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"dvdc/internal/vm"
)

func newMachine(t *testing.T, pages, pageSize int) *vm.Machine {
	t.Helper()
	m, err := vm.NewMachine("vm-test", pages, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func scribble(m *vm.Machine, seed int64, writes int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < writes; i++ {
		page := rng.Intn(m.NumPages())
		data := make([]byte, m.PageSize())
		rng.Read(data)
		if err := m.WritePage(page, data); err != nil {
			panic(err)
		}
	}
}

func TestCaptureFullRoundTrip(t *testing.T) {
	m := newMachine(t, 16, 64)
	scribble(m, 1, 40)
	want := m.Image()
	c := CaptureFull(m)
	if c.Kind != Full || len(c.Pages) != 16 {
		t.Fatalf("full capture: kind=%v pages=%d", c.Kind, len(c.Pages))
	}
	if m.DirtyCount() != 0 {
		t.Error("capture should open a clean epoch")
	}
	img := make([]byte, m.ImageBytes())
	if err := c.ApplyTo(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, want) {
		t.Error("materialized image differs from machine at capture")
	}
}

func TestCaptureIncrementalOnlyDirtyPages(t *testing.T) {
	m := newMachine(t, 32, 64)
	CaptureFull(m) // base
	m.TouchPage(3, 1)
	m.TouchPage(17, 2)
	c := CaptureIncremental(m)
	if len(c.Pages) != 2 {
		t.Fatalf("incremental captured %d pages, want 2", len(c.Pages))
	}
	if c.Pages[0].Index != 3 || c.Pages[1].Index != 17 {
		t.Errorf("captured pages %d,%d; want 3,17", c.Pages[0].Index, c.Pages[1].Index)
	}
	if c.PayloadBytes() != 2*64 {
		t.Errorf("payload %d, want 128", c.PayloadBytes())
	}
}

func TestStoreChainMaterializesLatest(t *testing.T) {
	m := newMachine(t, 16, 64)
	scribble(m, 2, 30)
	st, err := NewStore(CaptureFull(m))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		scribble(m, int64(10+round), 10)
		want := m.Image()
		if err := st.Apply(CaptureIncremental(m)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.Image(), want) {
			t.Fatalf("round %d: store image diverged", round)
		}
	}
	if st.Applied() != 6 {
		t.Errorf("Applied = %d, want 6", st.Applied())
	}
}

func TestStoreRejectsOutOfOrderEpoch(t *testing.T) {
	m := newMachine(t, 4, 32)
	st, _ := NewStore(CaptureFull(m))
	m.TouchPage(0, 1)
	c1 := CaptureIncremental(m)
	m.TouchPage(1, 2)
	c2 := CaptureIncremental(m)
	if err := st.Apply(c2); err == nil {
		t.Error("skipping an epoch should fail")
	}
	if err := st.Apply(c1); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(c1); err == nil {
		t.Error("replaying an epoch should fail")
	}
}

func TestStoreRejectsWrongVM(t *testing.T) {
	a := newMachine(t, 4, 32)
	b, _ := vm.NewMachine("other", 4, 32)
	st, _ := NewStore(CaptureFull(a))
	if err := st.Apply(CaptureIncremental(b)); err == nil {
		t.Error("checkpoint from another VM should be rejected")
	}
}

func TestStoreRequiresFullBase(t *testing.T) {
	m := newMachine(t, 4, 32)
	CaptureFull(m)
	m.TouchPage(0, 1)
	if _, err := NewStore(CaptureIncremental(m)); err == nil {
		t.Error("incremental base should be rejected")
	}
}

func TestCompressedDeltaRoundTrip(t *testing.T) {
	m := newMachine(t, 16, 256)
	scribble(m, 3, 40)
	st, _ := NewStore(CaptureFull(m))
	// Small in-place mutations compress well.
	m.MutatePage(5, func(p []byte) { p[0]++ })
	m.MutatePage(9, func(p []byte) { p[100] ^= 0xff })
	want := m.Image()
	c, err := CaptureCompressedDelta(m, st.ImageRef())
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != CompressedDelta || len(c.Pages) != 2 {
		t.Fatalf("kind=%v pages=%d", c.Kind, len(c.Pages))
	}
	if c.PayloadBytes() >= 2*256 {
		t.Errorf("compressed payload %d not smaller than raw 512", c.PayloadBytes())
	}
	if err := st.Apply(c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Image(), want) {
		t.Error("compressed-delta chain diverged")
	}
}

func TestCompressedDeltaIncompressibleFallsBackToRaw(t *testing.T) {
	m := newMachine(t, 4, 128)
	st, _ := NewStore(CaptureFull(m))
	// Random page content: the XOR delta is random, flate cannot shrink it.
	data := make([]byte, 128)
	rand.New(rand.NewSource(9)).Read(data)
	if err := m.WritePage(2, data); err != nil {
		t.Fatal(err)
	}
	want := m.Image()
	c, err := CaptureCompressedDelta(m, st.ImageRef())
	if err != nil {
		t.Fatal(err)
	}
	if c.Pages[0].Data[0] != 0 {
		t.Error("incompressible page should be stored raw (tag 0)")
	}
	if err := st.Apply(c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Image(), want) {
		t.Error("raw fallback diverged")
	}
}

func TestCompressedDeltaBaseMismatch(t *testing.T) {
	m := newMachine(t, 4, 32)
	if _, err := CaptureCompressedDelta(m, make([]byte, 10)); err == nil {
		t.Error("wrong-size base should fail")
	}
}

func TestChangedRegionsReturnsOldContent(t *testing.T) {
	m := newMachine(t, 8, 32)
	scribble(m, 4, 16)
	st, _ := NewStore(CaptureFull(m))
	oldPage3 := append([]byte(nil), st.ImageRef()[3*32:4*32]...)
	m.TouchPage(3, 99)
	c := CaptureIncremental(m)
	regions, err := st.ChangedRegions(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 || regions[0].Index != 3 {
		t.Fatalf("regions = %+v", regions)
	}
	if !bytes.Equal(regions[0].Data, oldPage3) {
		t.Error("ChangedRegions did not return pre-apply content")
	}
}

func TestApplyToWrongSizeImage(t *testing.T) {
	m := newMachine(t, 4, 32)
	c := CaptureFull(m)
	if err := c.ApplyTo(make([]byte, 10)); err == nil {
		t.Error("wrong-size image should fail")
	}
}

func TestKindString(t *testing.T) {
	if Full.String() != "full" || Incremental.String() != "incremental" ||
		CompressedDelta.String() != "compressed-delta" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
