package checkpoint

import (
	"math/rand"

	"dvdc/internal/vm"
)

// Helpers for property-based tests.

func newQuickMachine() (*vm.Machine, error) {
	return vm.NewMachine("quick", 16, 32)
}

func scribbleQuick(m *vm.Machine, seed int64, writes int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < writes; i++ {
		m.TouchPage(rng.Intn(m.NumPages()), rng.Uint64())
	}
}
