package checkpoint

import (
	"fmt"

	"dvdc/internal/vm"
)

// ForkSnapshot is Plank's "forked" (copy-on-write) checkpoint: the snapshot
// is logically taken the instant Fork returns, with only bookkeeping cost.
// The VM keeps executing; the first subsequent write to any page copies the
// page's pre-write content into the snapshot. Materializing later yields the
// exact image at fork time, and the extra memory consumed is proportional to
// the pages written since the fork, not to the image ("if I is consumed, 2I
// is needed" only in the worst case).
type ForkSnapshot struct {
	m           *vm.Machine
	hookID      int
	saved       map[int][]byte
	dirtyAtFork []int
	epoch       uint64
	released    bool
}

// Fork snapshots m with copy-on-write semantics and opens a new dirty epoch.
// The caller must Release the snapshot when done or the write hook stays
// registered forever.
func Fork(m *vm.Machine) *ForkSnapshot {
	f := &ForkSnapshot{
		m:           m,
		saved:       make(map[int][]byte),
		dirtyAtFork: m.DirtyPages(),
		epoch:       m.Epoch(),
	}
	f.hookID = m.AddWriteHook(func(page int, old []byte) {
		if f.released {
			return
		}
		if _, ok := f.saved[page]; !ok {
			f.saved[page] = append([]byte(nil), old...)
		}
	})
	m.BeginEpoch()
	return f
}

// Epoch returns the machine epoch the snapshot closed.
func (f *ForkSnapshot) Epoch() uint64 { return f.epoch }

// DirtyAtFork returns the page indices that were dirty when the snapshot was
// taken (the increment this snapshot represents relative to the previous
// checkpoint).
func (f *ForkSnapshot) DirtyAtFork() []int {
	return append([]int(nil), f.dirtyAtFork...)
}

// CopiedBytes reports how much memory copy-on-write has consumed so far.
func (f *ForkSnapshot) CopiedBytes() int64 {
	return int64(len(f.saved)) * int64(f.m.PageSize())
}

// page returns the snapshot-time content of page i.
func (f *ForkSnapshot) page(i int) []byte {
	if old, ok := f.saved[i]; ok {
		return old
	}
	return f.m.Page(i)
}

// MaterializeFull produces a full checkpoint of the fork-time image.
func (f *ForkSnapshot) MaterializeFull() (*Checkpoint, error) {
	if f.released {
		return nil, fmt.Errorf("checkpoint: snapshot already released")
	}
	c := &Checkpoint{
		VMID:     f.m.ID(),
		Epoch:    f.epoch,
		Kind:     Full,
		NumPages: f.m.NumPages(),
		PageSize: f.m.PageSize(),
		Pages:    make([]PageRecord, f.m.NumPages()),
	}
	for i := 0; i < f.m.NumPages(); i++ {
		c.Pages[i] = PageRecord{Index: i, Data: append([]byte(nil), f.page(i)...)}
	}
	return c, nil
}

// MaterializeIncremental produces an incremental checkpoint holding the
// fork-time content of exactly the pages that were dirty at fork time.
func (f *ForkSnapshot) MaterializeIncremental() (*Checkpoint, error) {
	if f.released {
		return nil, fmt.Errorf("checkpoint: snapshot already released")
	}
	c := &Checkpoint{
		VMID:     f.m.ID(),
		Epoch:    f.epoch,
		Kind:     Incremental,
		NumPages: f.m.NumPages(),
		PageSize: f.m.PageSize(),
		Pages:    make([]PageRecord, 0, len(f.dirtyAtFork)),
	}
	for _, i := range f.dirtyAtFork {
		c.Pages = append(c.Pages, PageRecord{Index: i, Data: append([]byte(nil), f.page(i)...)})
	}
	return c, nil
}

// Release detaches the snapshot from the machine and frees its copies.
// Releasing twice is a no-op.
func (f *ForkSnapshot) Release() {
	if f.released {
		return
	}
	f.released = true
	f.m.RemoveWriteHook(f.hookID)
	f.saved = nil
}
