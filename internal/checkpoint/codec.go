package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire format for checkpoints, used by the TCP runtime and by size
// accounting. Layout (little-endian):
//
//	magic   [4]byte "DVDC"
//	version u8 (currently 1)
//	kind    u8
//	epoch   u64
//	numPages u32, pageSize u32
//	vmidLen u16, vmid bytes
//	pageCount u32, then per page: index u32, dataLen u32, data bytes
const (
	codecMagic   = "DVDC"
	codecVersion = 1
)

// ErrCorrupt marks a malformed encoded checkpoint.
var ErrCorrupt = errors.New("checkpoint: corrupt encoding")

// Encode serializes the checkpoint.
func (c *Checkpoint) Encode() []byte {
	size := 4 + 1 + 1 + 8 + 4 + 4 + 2 + len(c.VMID) + 4
	for _, p := range c.Pages {
		size += 8 + len(p.Data)
	}
	out := make([]byte, 0, size)
	out = append(out, codecMagic...)
	out = append(out, codecVersion, byte(c.Kind))
	out = binary.LittleEndian.AppendUint64(out, c.Epoch)
	out = binary.LittleEndian.AppendUint32(out, uint32(c.NumPages))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.PageSize))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(c.VMID)))
	out = append(out, c.VMID...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(c.Pages)))
	for _, p := range c.Pages {
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Index))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Data)))
		out = append(out, p.Data...)
	}
	return out
}

// Decode parses an encoded checkpoint.
func Decode(b []byte) (*Checkpoint, error) {
	r := reader{buf: b}
	magic := r.bytes(4)
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.u8(); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	kind := Kind(r.u8())
	if kind != Full && kind != Incremental && kind != CompressedDelta {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	c := &Checkpoint{Kind: kind}
	c.Epoch = r.u64()
	c.NumPages = int(r.u32())
	c.PageSize = int(r.u32())
	c.VMID = string(r.bytes(int(r.u16())))
	count := int(r.u32())
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if c.NumPages <= 0 || c.PageSize <= 0 {
		return nil, fmt.Errorf("%w: bad geometry %dx%d", ErrCorrupt, c.NumPages, c.PageSize)
	}
	if count < 0 || count > c.NumPages {
		return nil, fmt.Errorf("%w: page count %d exceeds %d", ErrCorrupt, count, c.NumPages)
	}
	// Every page record needs at least 8 header bytes; a count beyond what
	// the remaining buffer could possibly hold is corrupt, and bounding it
	// here keeps the preallocation proportional to the input size.
	if remaining := len(r.buf) - r.off; count > remaining/8 {
		return nil, fmt.Errorf("%w: page count %d exceeds buffer capacity", ErrCorrupt, count)
	}
	c.Pages = make([]PageRecord, 0, count)
	for i := 0; i < count; i++ {
		idx := int(r.u32())
		n := int(r.u32())
		data := r.bytes(n)
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated page %d", ErrCorrupt, i)
		}
		if idx < 0 || idx >= c.NumPages {
			return nil, fmt.Errorf("%w: page index %d out of range", ErrCorrupt, idx)
		}
		c.Pages = append(c.Pages, PageRecord{Index: idx, Data: append([]byte(nil), data...)})
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	c.sortPages()
	return c, nil
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = ErrCorrupt
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
