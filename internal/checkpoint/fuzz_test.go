package checkpoint

import (
	"bytes"
	"testing"

	"dvdc/internal/vm"
)

// FuzzDecode throws arbitrary bytes at the checkpoint decoder: never panic,
// and anything accepted must re-encode losslessly.
func FuzzDecode(f *testing.F) {
	m, _ := vm.NewMachine("fz", 4, 32)
	m.TouchPage(1, 7)
	f.Add(CaptureFull(m).Encode())
	m.TouchPage(2, 8)
	f.Add(CaptureIncremental(m).Encode())
	f.Add([]byte("DVDC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		// Round trip must parse again to an identical checkpoint.
		again, err := Decode(c.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted checkpoint failed: %v", err)
		}
		if again.VMID != c.VMID || again.Epoch != c.Epoch || len(again.Pages) != len(c.Pages) {
			t.Fatal("round trip mismatch")
		}
		for i := range c.Pages {
			if again.Pages[i].Index != c.Pages[i].Index ||
				!bytes.Equal(again.Pages[i].Data, c.Pages[i].Data) {
				t.Fatal("page mismatch")
			}
		}
	})
}

// FuzzApplyTo exercises ApplyTo with decoded checkpoints against a fixed
// image: malformed records must error, never panic or write out of bounds.
func FuzzApplyTo(f *testing.F) {
	m, _ := vm.NewMachine("fz", 4, 32)
	m.TouchPage(0, 1)
	f.Add(CaptureIncremental(m).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		if int64(c.NumPages)*int64(c.PageSize) > 1<<20 {
			return // keep fuzz memory bounded
		}
		img := make([]byte, c.NumPages*c.PageSize)
		_ = c.ApplyTo(img) // must not panic
	})
}
