package checkpoint

import (
	"fmt"
)

// Store materializes checkpoint chains for one VM: a full base checkpoint
// followed by increments. A parity holder keeps a Store per protected VM so
// it can produce the latest committed image during recovery; the store also
// exposes the previous image so RAID small-write parity updates
// (parity ^= old ^ new) have both sides.
type Store struct {
	vmID     string
	numPages int
	pageSize int
	image    []byte // latest materialized image
	epoch    uint64 // epoch of the latest applied checkpoint
	applied  int    // how many checkpoints have been applied
}

// NewStore creates a store from an initial full checkpoint.
func NewStore(base *Checkpoint) (*Store, error) {
	if base.Kind != Full {
		return nil, fmt.Errorf("checkpoint: store base must be a full checkpoint, got %v", base.Kind)
	}
	s := &Store{
		vmID:     base.VMID,
		numPages: base.NumPages,
		pageSize: base.PageSize,
		image:    make([]byte, int64(base.NumPages)*int64(base.PageSize)),
	}
	if err := base.ApplyTo(s.image); err != nil {
		return nil, err
	}
	s.epoch = base.Epoch
	s.applied = 1
	return s, nil
}

// VMID returns the VM the store protects.
func (s *Store) VMID() string { return s.vmID }

// Epoch returns the epoch of the last applied checkpoint.
func (s *Store) Epoch() uint64 { return s.epoch }

// Applied returns how many checkpoints have been applied, base included.
func (s *Store) Applied() int { return s.applied }

// ImageBytes returns the materialized image size.
func (s *Store) ImageBytes() int64 { return int64(len(s.image)) }

// Image returns a copy of the latest materialized image.
func (s *Store) Image() []byte { return append([]byte(nil), s.image...) }

// ImageRef returns the store's internal image without copying. Callers must
// treat it as read-only; it is invalidated by the next Apply.
func (s *Store) ImageRef() []byte { return s.image }

// Apply advances the store with the next checkpoint in the chain. The
// checkpoint must belong to the same VM, have the same geometry, and carry
// the next epoch.
func (s *Store) Apply(c *Checkpoint) error {
	if c.VMID != s.vmID {
		return fmt.Errorf("checkpoint: store for %q got checkpoint for %q", s.vmID, c.VMID)
	}
	if c.NumPages != s.numPages || c.PageSize != s.pageSize {
		return fmt.Errorf("checkpoint: geometry mismatch: store %dx%d, checkpoint %dx%d",
			s.numPages, s.pageSize, c.NumPages, c.PageSize)
	}
	if c.Epoch != s.epoch+1 {
		return fmt.Errorf("checkpoint: out-of-order epoch %d after %d", c.Epoch, s.epoch)
	}
	if err := c.ApplyTo(s.image); err != nil {
		return err
	}
	s.epoch = c.Epoch
	s.applied++
	return nil
}

// ChangedRegions returns, for each page a checkpoint touches, the page index
// together with the store's current ("old") content — the inputs a RAID-5
// small-write parity update needs before the checkpoint is applied.
func (s *Store) ChangedRegions(c *Checkpoint) ([]PageRecord, error) {
	if c.NumPages != s.numPages || c.PageSize != s.pageSize {
		return nil, fmt.Errorf("checkpoint: geometry mismatch")
	}
	out := make([]PageRecord, 0, len(c.Pages))
	for _, p := range c.Pages {
		if p.Index < 0 || p.Index >= s.numPages {
			return nil, fmt.Errorf("checkpoint: page index %d out of range", p.Index)
		}
		old := s.image[p.Index*s.pageSize : (p.Index+1)*s.pageSize]
		out = append(out, PageRecord{Index: p.Index, Data: append([]byte(nil), old...)})
	}
	return out, nil
}
