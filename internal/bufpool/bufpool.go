// Package bufpool is a size-classed []byte pool for the checkpoint data
// path. Steady-state rounds move chunk- and image-sized buffers through the
// wire codec, the chunk assemblers, and the keepers' pending parity blocks;
// allocating those fresh every round makes the garbage collector the
// bottleneck at production scale. The pool hands out buffers from
// power-of-two size classes, so a buffer freed by one round is reused by the
// next.
//
// Classes are bounded free lists, not sync.Pools: storing a []byte in a
// sync.Pool boxes the slice header into an interface, which costs one heap
// allocation per Put — on a path whose whole point is not allocating, the
// pool itself was the top allocator in the profile. Each class retains at
// most ~maxClassBytes; overflow is dropped to the GC, so a burst cannot pin
// unbounded memory.
//
// Ownership is explicit: Get transfers a buffer to the caller, Put returns
// it. A buffer that is never Put is simply garbage — the free list only
// holds what was explicitly returned — so callers only Put where ownership
// is provably exclusive. After a Put the buffer must not be touched: a
// retained alias corrupts whoever draws it next.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size-class bounds. Requests below the smallest class round up to it;
// requests above the largest are plain allocations (Put drops them) so the
// pool never pins arbitrarily large buffers.
const (
	minShift = 9  // 512 B
	maxShift = 25 // 32 MiB
	classes  = maxShift - minShift + 1

	// Retention bounds per class: at most maxClassBufs buffers and at most
	// ~maxClassBytes of backing memory, whichever is smaller. The buffer cap
	// must cover the page-sized classes' steady-state working set — one
	// checkpoint round keeps every captured dirty page (page-size buffers,
	// prepare through commit) plus its in-flight chunk copies alive at once,
	// which at production page counts is thousands of buffers, not hundreds.
	// The byte cap stays the binding bound for the large classes.
	maxClassBufs  = 4096
	maxClassBytes = 64 << 20
)

// classPool is one size class's bounded free list.
type classPool struct {
	mu   sync.Mutex
	bufs [][]byte
}

var pools [classes]classPool

// classLimit caps how many buffers class c retains.
func classLimit(c int) int {
	n := maxClassBytes >> (c + minShift)
	if n < 4 {
		return 4
	}
	if n > maxClassBufs {
		return maxClassBufs
	}
	return n
}

// Counters for observability; exported via Stats and mounted as gauges by
// the runtime's registry.
var (
	gets     atomic.Int64 // Get calls served from a size class
	misses   atomic.Int64 // class Gets that had to allocate
	puts     atomic.Int64 // buffers returned to a class
	oversize atomic.Int64 // Gets larger than the biggest class (not pooled)
)

// Stats is a snapshot of the pool's counters.
type Stats struct {
	Gets     int64 // pooled Get calls
	Misses   int64 // pooled Gets that allocated fresh
	Puts     int64 // buffers returned
	Oversize int64 // Gets beyond the largest class (unpooled)
}

// Snapshot reads the counters.
func Snapshot() Stats {
	return Stats{
		Gets:     gets.Load(),
		Misses:   misses.Load(),
		Puts:     puts.Load(),
		Oversize: oversize.Load(),
	}
}

// class maps a byte count to its size-class index, or -1 when unpooled.
func class(n int) int {
	if n <= 0 {
		return 0
	}
	s := bits.Len(uint(n - 1)) // ceil(log2 n)
	if s < minShift {
		return 0
	}
	if s > maxShift {
		return -1
	}
	return s - minShift
}

// Get returns a buffer of length n with undefined contents. Capacity is the
// class size, so append within the class never reallocates.
func Get(n int) []byte {
	c := class(n)
	if c < 0 {
		oversize.Add(1)
		return make([]byte, n)
	}
	gets.Add(1)
	p := &pools[c]
	p.mu.Lock()
	if k := len(p.bufs); k > 0 {
		b := p.bufs[k-1]
		p.bufs[k-1] = nil
		p.bufs = p.bufs[:k-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	misses.Add(1)
	return make([]byte, n, 1<<(c+minShift))
}

// GetZero returns a zeroed buffer of length n.
func GetZero(n int) []byte {
	b := Get(n)
	clear(b)
	return b
}

// Put returns a buffer obtained from Get. Buffers whose capacity is not an
// exact class size (or beyond the largest class) are dropped, so Put is safe
// to call on any buffer the caller owns; a class already holding its
// retention limit drops the buffer to the GC.
func Put(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	s := bits.Len(uint(c)) - 1
	if s < minShift || s > maxShift {
		return
	}
	p := &pools[s-minShift]
	p.mu.Lock()
	if len(p.bufs) < classLimit(s-minShift) {
		p.bufs = append(p.bufs, b[:c])
		puts.Add(1)
	}
	p.mu.Unlock()
}
