package bufpool

import "testing"

func TestGetLengthAndClassCapacity(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 512},
		{1, 512},
		{512, 512},
		{513, 1024},
		{64 << 10, 64 << 10},
		{(64 << 10) + 1, 128 << 10},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Errorf("Get(%d): len %d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Errorf("Get(%d): cap %d, want %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestOversizeIsUnpooled(t *testing.T) {
	before := Snapshot().Oversize
	b := Get((32 << 20) + 1)
	if len(b) != (32<<20)+1 {
		t.Fatalf("len %d", len(b))
	}
	if got := Snapshot().Oversize; got != before+1 {
		t.Errorf("oversize counter %d, want %d", got, before+1)
	}
	Put(b) // must not panic or pool it
}

func TestGetZeroIsZeroAfterReuse(t *testing.T) {
	b := Get(4096)
	for i := range b {
		b[i] = 0xAA
	}
	Put(b)
	z := GetZero(4096)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZero reused dirty byte at %d: %#x", i, v)
		}
	}
	Put(z)
}

func TestPutForeignBufferIsDropped(t *testing.T) {
	// A non-power-of-two capacity must not enter any class.
	Put(make([]byte, 0, 777))
	Put(nil)
}

func TestReuseRoundTrip(t *testing.T) {
	b := Get(2048)
	b[0] = 42
	Put(b)
	// The next Get of the same class should (usually) see the same backing
	// array; either way length and class must hold.
	c := Get(2000)
	if len(c) != 2000 || cap(c) != 2048 {
		t.Fatalf("len %d cap %d", len(c), cap(c))
	}
	Put(c)
}
