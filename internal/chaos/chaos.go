// Package chaos is a deterministic fault-injection layer for the distributed
// DVDC runtime. It sits under internal/transport — a seeded wrapper around
// the raw net.Conn/net.Listener surface, wired in via the Dialer hook on
// transport.PoolOptions and the ListenFunc hook on transport.ListenWith —
// and can corrupt, drop, delay, and duplicate framed traffic per peer pair,
// partition pairs entirely, and record node-level kill/restart events driven
// by internal/failure schedules.
//
// Everything is driven by a single seed: each peer pair owns a *rand.Rand
// derived from (seed, src, dst), so fault draws on one pair never perturb
// another pair's stream. Probabilistic injection is reproducible up to
// goroutine interleaving *within* one pair; the one-shot Arm API is exactly
// reproducible — the soak harness arms faults at round boundaries from its
// own seeded plan, which makes a whole soak run replayable from its seed.
//
// Fault semantics against the framed request/response protocol:
//
//   - Corrupt mangles a frame's length prefix past wire.MaxFrame, so the
//     receiver fails with a typed ErrFrame (a corrupted request makes the
//     server drop the connection; a corrupted response surfaces ErrFrame at
//     the caller). Either way transport.Pool must classify it as a
//     connection fault and retry over a fresh dial.
//   - Drop severs the connection instead of delivering the frame (a reset
//     mid-exchange), exercising the redial path.
//   - Delay sleeps before delivery, exercising deadline headroom.
//   - Duplicate delivers a frame twice. For responses this desynchronizes
//     the stream (the extra reply is read by the *next* call); for requests
//     it re-executes the RPC — which the DVDC protocol, having no request
//     identifiers, does not dedupe. Duplicate is therefore a transport-level
//     test tool, not part of the invariant-checked soak (see DESIGN.md,
//     "Fault model & chaos testing").
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"dvdc/internal/metrics"
	"dvdc/internal/obs"
	"dvdc/internal/wire"
)

// Well-known node identities for traffic endpoints that are not daemons.
const (
	// Coordinator is the Src of coordinator-to-node traffic.
	Coordinator = -1
	// UnknownPeer marks an endpoint that could not be resolved to a node id
	// (e.g. the client side of a server-accepted connection).
	UnknownPeer = -2
)

// Kind enumerates injected fault kinds.
type Kind uint8

// Fault kinds. Corrupt..Partition act on traffic; Kill and Restart are
// node-level events the harness performs itself and records here so the
// fault log is the one complete account of a run.
const (
	Corrupt Kind = iota + 1
	Drop
	Delay
	Duplicate
	Partition
	Kill
	Restart
	Slow
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Corrupt:
		return "corrupt"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case Partition:
		return "partition"
	case Kill:
		return "kill"
	case Restart:
		return "restart"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Pair identifies directed traffic src -> dst by node index (Coordinator for
// the control plane's client side, UnknownPeer when unresolvable).
type Pair struct {
	Src, Dst int
}

// String renders "src->dst".
func (p Pair) String() string { return fmt.Sprintf("%d->%d", p.Src, p.Dst) }

// Fault is one injected fault as recorded in the log.
type Fault struct {
	Round int    // harness round the fault fired in (see NextRound)
	Kind  Kind   // what was injected
	Pair  Pair   // traffic pair (Kill/Restart: zero value)
	Node  int    // Kill/Restart target (-1 otherwise)
	Armed bool   // fired from a one-shot Arm (vs. a probabilistic draw)
	Note  string // human detail ("delay 3ms", "frame 27 bytes")
}

// String renders one log line.
func (f Fault) String() string {
	s := fmt.Sprintf("round %d: %s", f.Round, f.Kind)
	if f.Kind == Kill || f.Kind == Restart {
		s += fmt.Sprintf(" node %d", f.Node)
	} else {
		s += " " + f.Pair.String()
	}
	if f.Note != "" {
		s += " (" + f.Note + ")"
	}
	return s
}

// Config tunes probabilistic per-frame injection. All probabilities are per
// outbound frame on a faulted connection; the zero value injects nothing
// (only armed one-shots fire).
type Config struct {
	PCorrupt   float64       // corrupt the frame's length prefix
	PDrop      float64       // sever the connection instead of delivering
	PDelay     float64       // sleep before delivering
	PDuplicate float64       // deliver the frame twice
	DelayMin   time.Duration // delay bounds (default 1ms..10ms)
	DelayMax   time.Duration
}

func (c Config) withDefaults() Config {
	if c.DelayMin <= 0 {
		c.DelayMin = time.Millisecond
	}
	if c.DelayMax < c.DelayMin {
		c.DelayMax = 10 * time.Millisecond
	}
	return c
}

// Active reports whether any probabilistic rate is set.
func (c Config) Active() bool {
	return c.PCorrupt > 0 || c.PDrop > 0 || c.PDelay > 0 || c.PDuplicate > 0
}

// armedFault is one scheduled one-shot fault. msg, when nonzero, restricts
// the fault to frames of that wire message type: the fault waits, still
// armed, until such a frame crosses the pair.
type armedFault struct {
	kind Kind
	msg  uint8
}

// pairState is one peer pair's deterministic fault stream.
type pairState struct {
	rng   *rand.Rand
	armed []armedFault // one-shot faults, fired FIFO at frame boundaries
}

// Injector owns the fault state for one cluster run.
type Injector struct {
	seed int64
	cfg  Config

	mu          sync.Mutex
	round       int
	paused      bool
	pairs       map[Pair]*pairState
	partitioned map[Pair]bool
	slow        map[int]time.Duration
	nodeByAddr  map[string]int
	log         []Fault
	counters    *metrics.Counters
	tracer      *obs.Tracer
	recorder    *obs.FlightRecorder
}

// New builds an injector. cfg may be the zero value (armed faults only).
func New(seed int64, cfg Config) *Injector {
	return &Injector{
		seed:        seed,
		cfg:         cfg.withDefaults(),
		pairs:       map[Pair]*pairState{},
		partitioned: map[Pair]bool{},
		slow:        map[int]time.Duration{},
		nodeByAddr:  map[string]int{},
		counters:    metrics.NewCounters(),
	}
}

// Seed returns the injector's seed (echoed in logs for replay).
func (i *Injector) Seed() int64 { return i.seed }

// Counters exposes per-kind fired-fault tallies.
func (i *Injector) Counters() *metrics.Counters { return i.counters }

// SetTracer attaches a span tracer: every fired traffic fault becomes an
// instant trace event parented under the span of the RPC attempt it hit,
// making fault -> retry -> recovery causality visible in a round's trace.
func (i *Injector) SetTracer(tr *obs.Tracer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.tracer = tr
}

// Tracer returns the attached tracer (nil when tracing is off).
func (i *Injector) Tracer() *obs.Tracer {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.tracer
}

// SetRecorder attaches a flight recorder: every fired fault lands in its
// bounded log, so a postmortem bundle shows the chaos the process absorbed
// right before it failed.
func (i *Injector) SetRecorder(rec *obs.FlightRecorder) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.recorder = rec
}

// Register maps a node's listen address so dialers can resolve Dst ids.
func (i *Injector) Register(node int, addr string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.nodeByAddr[addr] = node
}

// NextRound advances the round tag new faults are logged under and returns
// the new round index. The soak harness calls it once per checkpoint round
// so the fault log lines up with RoundStats.
func (i *Injector) NextRound() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.round++
	return i.round
}

// Round returns the current round tag.
func (i *Injector) Round() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.round
}

// Pause stops probabilistic injection (armed faults still fire). The soak
// harness pauses the injector during recovery, whose multi-step protocol is
// retried at the RPC level but not restartable as a whole.
func (i *Injector) Pause() { i.setPaused(true) }

// Resume re-enables probabilistic injection.
func (i *Injector) Resume() { i.setPaused(false) }

func (i *Injector) setPaused(v bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.paused = v
}

// Arm schedules a one-shot fault on a pair: the next frame boundary on that
// pair fires it, regardless of Pause. Armed faults fire FIFO.
func (i *Injector) Arm(p Pair, k Kind) { i.ArmMsg(p, k, 0) }

// ArmMsg schedules a one-shot fault that fires only on a frame whose wire
// message type is msg (0 = any frame). The soak harness uses this to aim
// faults at individual data-path chunks (MsgDeltaChunk) rather than whatever
// control frame happens to cross the pair first. A filtered fault at the
// head of the FIFO holds the queue until a matching frame appears.
func (i *Injector) ArmMsg(p Pair, k Kind, msg uint8) {
	i.mu.Lock()
	defer i.mu.Unlock()
	ps := i.pair(p)
	ps.armed = append(ps.armed, armedFault{kind: k, msg: msg})
}

// ArmedPending reports how many armed faults have not fired yet (across all
// pairs); the harness uses it to verify its plan was consumed.
func (i *Injector) ArmedPending() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, ps := range i.pairs {
		n += len(ps.armed)
	}
	return n
}

// PartitionPair severs traffic between two nodes in both directions: live
// connections die on their next I/O and dials are refused.
func (i *Injector) PartitionPair(a, b int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.partitioned[Pair{a, b}] = true
	i.partitioned[Pair{b, a}] = true
	i.record(Fault{Round: i.round, Kind: Partition, Pair: Pair{a, b}})
}

// HealPair removes a partition.
func (i *Injector) HealPair(a, b int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.partitioned, Pair{a, b})
	delete(i.partitioned, Pair{b, a})
}

// SlowNode imposes a sustained per-frame delay on every bulk data frame
// (wire.MsgType.Bulk — delta ships, image and parity transfers) destined to
// the node, until HealNode — the "habitually slow peer" the health engine's
// round-time SLO must catch and the adaptive keeper-rebalance rule must
// drain. The model is data-plane ingest congestion: the node's disk or NIC
// queues every member's delta stream, so writers stall per bulk frame they
// send it, while control frames (prepare, commit, acks) and the node's own
// sends are unaffected. That is what makes the condition *adaptable*:
// re-homing parity off the node removes the queued traffic, where a
// control-plane stall would be an irreducible per-round floor no placement
// change could fix. Unlike armed one-shots it is a standing condition (like
// a partition): it applies regardless of Pause and is logged once at call
// time, not per frame, so the fault log stays deterministic across
// timing-dependent retry counts.
func (i *Injector) SlowNode(node int, d time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if d <= 0 {
		delete(i.slow, node)
		return
	}
	i.slow[node] = d
	i.record(Fault{Round: i.round, Kind: Slow, Node: node, Pair: Pair{UnknownPeer, UnknownPeer}, Note: fmt.Sprintf("delay %v/frame", d)})
}

// HealNode lifts a SlowNode delay.
func (i *Injector) HealNode(node int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.slow, node)
}

// SlowDelay returns the standing ingest delay for frames on a pair: the
// destination endpoint's SlowNode delay (zero when the destination is not
// slowed, or is unresolvable — a server writing replies cannot know which
// peer dialed, and replies are not ingest traffic).
func (i *Injector) SlowDelay(p Pair) time.Duration {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.slow[p.Dst]
}

// Partitioned reports whether a pair is currently severed.
func (i *Injector) Partitioned(p Pair) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.partitioned[p]
}

// RecordKill logs a node-level kill the harness performed.
func (i *Injector) RecordKill(node int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.record(Fault{Round: i.round, Kind: Kill, Node: node, Pair: Pair{UnknownPeer, UnknownPeer}})
}

// RecordRestart logs a node-level restart the harness performed.
func (i *Injector) RecordRestart(node int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.record(Fault{Round: i.round, Kind: Restart, Node: node, Pair: Pair{UnknownPeer, UnknownPeer}})
}

// Log returns a copy of every fault fired so far, in firing order.
func (i *Injector) Log() []Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Fault(nil), i.log...)
}

// Fired counts fired faults of the given kinds (all kinds when none given),
// optionally restricted to one round (round < 0 means any).
func (i *Injector) Fired(round int, kinds ...Kind) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, f := range i.log {
		if round >= 0 && f.Round != round {
			continue
		}
		if len(kinds) == 0 {
			n++
			continue
		}
		for _, k := range kinds {
			if f.Kind == k {
				n++
				break
			}
		}
	}
	return n
}

// record appends to the log and bumps counters. Callers hold i.mu.
func (i *Injector) record(f Fault) {
	if f.Kind != Kill && f.Kind != Restart && f.Node == 0 {
		f.Node = -1
	}
	i.log = append(i.log, f)
	i.counters.Add(f.Kind.String(), 1)
	if i.recorder != nil {
		pair := f.Pair.String()
		if f.Kind == Kill || f.Kind == Restart {
			pair = fmt.Sprintf("node%d", f.Node)
		}
		i.recorder.Chaos(f.Kind.String(), pair, f.Note)
	}
}

// pair returns (creating) a pair's state. Callers hold i.mu.
func (i *Injector) pair(p Pair) *pairState {
	ps, ok := i.pairs[p]
	if !ok {
		ps = &pairState{rng: rand.New(rand.NewSource(pairSeed(i.seed, p)))}
		i.pairs[p] = ps
	}
	return ps
}

// pairSeed derives a per-pair seed via splitmix64 so adjacent pairs get
// uncorrelated streams.
func pairSeed(seed int64, p Pair) int64 {
	z := uint64(seed) ^ (uint64(uint32(int32(p.Src))) << 32) ^ uint64(uint32(int32(p.Dst)))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// decision is the outcome of one frame-boundary draw.
type decision struct {
	kind  Kind // 0 = deliver untouched
	delay time.Duration
	armed bool
}

// frameCaps states which faults the current chunk can physically carry:
// duplication needs the whole frame inside the chunk (corruption only needs
// the length prefix, which the frame scan guarantees). With the runtime's
// 64 KiB buffered writers a chunk is almost always exactly one whole frame.
type frameCaps struct {
	corrupt, duplicate bool
}

func (c frameCaps) allows(k Kind) bool {
	switch k {
	case Corrupt:
		return c.corrupt
	case Duplicate:
		return c.duplicate
	}
	return true
}

// frameFault draws the fault (if any) for the next frame on a pair and logs
// it. Exactly one rng call decides the kind (plus one more for a delay
// duration), keeping per-pair streams stable. An armed fault the chunk
// cannot carry — or whose message-type filter doesn't match msgType — stays
// armed for the next frame; a probabilistic draw the chunk cannot carry is
// skipped (and not logged). msgType is the frame's wire type byte (0 when
// the chunk doesn't expose it).
func (i *Injector) frameFault(p Pair, frameBytes int, msgType uint8, caps frameCaps) decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	ps := i.pair(p)
	var d decision
	if len(ps.armed) > 0 {
		head := ps.armed[0]
		if !caps.allows(head.kind) || (head.msg != 0 && head.msg != msgType) {
			return d
		}
		d.kind = head.kind
		ps.armed = ps.armed[1:]
		d.armed = true
	} else if !i.paused && i.cfg.Active() {
		u := ps.rng.Float64()
		switch {
		case u < i.cfg.PCorrupt:
			d.kind = Corrupt
		case u < i.cfg.PCorrupt+i.cfg.PDrop:
			d.kind = Drop
		case u < i.cfg.PCorrupt+i.cfg.PDrop+i.cfg.PDelay:
			d.kind = Delay
		case u < i.cfg.PCorrupt+i.cfg.PDrop+i.cfg.PDelay+i.cfg.PDuplicate:
			d.kind = Duplicate
		}
	}
	if d.kind == 0 || !caps.allows(d.kind) {
		return decision{}
	}
	note := fmt.Sprintf("frame %d bytes", frameBytes)
	if msgType != 0 {
		note = fmt.Sprintf("%s frame, %d bytes", wire.MsgType(msgType), frameBytes)
	}
	if d.kind == Delay {
		span := i.cfg.DelayMax - i.cfg.DelayMin
		d.delay = i.cfg.DelayMin
		if span > 0 {
			d.delay += time.Duration(ps.rng.Int63n(int64(span)))
		}
		note = fmt.Sprintf("delay %v, %s", d.delay.Round(time.Microsecond), note)
	}
	i.record(Fault{Round: i.round, Kind: d.kind, Pair: p, Armed: d.armed, Note: note})
	return d
}

// nodeOf resolves a dialed address to a node id (UnknownPeer if unknown).
func (i *Injector) nodeOf(addr string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	if n, ok := i.nodeByAddr[addr]; ok {
		return n
	}
	return UnknownPeer
}

// Dialer returns a transport dial hook for traffic originating at src
// (Coordinator for the control plane). The returned function matches
// transport.DialFunc. Dials to a partitioned peer are refused; established
// connections carry the pair's fault stream.
func (i *Injector) Dialer(src int) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		p := Pair{Src: src, Dst: i.nodeOf(addr)}
		if i.Partitioned(p) {
			i.counters.Add("dial-refused", 1)
			return nil, fmt.Errorf("chaos: dial %s: pair %s partitioned", addr, p)
		}
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return newFaultConn(c, i, p), nil
	}
}

// ListenFunc returns a transport listen hook for a node daemon: every
// accepted connection carries the fault stream of pair (node, UnknownPeer) —
// the server writes responses and cannot resolve which peer dialed, but
// server-side injection (corrupted/dropped/delayed responses) does not need
// to. The returned function matches transport.ListenFunc.
func (i *Injector) ListenFunc(node int) func(addr string) (net.Listener, error) {
	return func(addr string) (net.Listener, error) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &faultListener{Listener: ln, inj: i, node: node}, nil
	}
}

// faultListener wraps accepted connections with the injector's fault stream.
type faultListener struct {
	net.Listener
	inj  *Injector
	node int
}

// Accept implements net.Listener.
func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newFaultConn(c, l.inj, Pair{Src: l.node, Dst: UnknownPeer}), nil
}
