package chaos

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"dvdc/internal/failure"
	"dvdc/internal/wire"
)

// pipeThrough writes msgs through a faultConn over an in-memory pipe and
// returns what the far side's ReadFrame saw: decoded messages until the
// first error (nil error means the writer closed cleanly first).
func pipeThrough(t *testing.T, inj *Injector, p Pair, msgs []*wire.Message) ([]*wire.Message, error) {
	t.Helper()
	client, server := net.Pipe()
	fc := newFaultConn(client, inj, p)
	type result struct {
		got []*wire.Message
		err error
	}
	done := make(chan result, 1)
	go func() {
		r := bufio.NewReader(server)
		var res result
		for {
			m, err := wire.ReadFrame(r)
			if err != nil {
				if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) &&
					!errors.Is(err, io.ErrClosedPipe) {
					res.err = err
				}
				// Unblock the writer (net.Pipe writes are synchronous) before
				// reporting, or a writer mid-frame would deadlock the test.
				server.Close()
				done <- res
				return
			}
			res.got = append(res.got, m)
		}
	}()
	w := bufio.NewWriter(fc)
	var werr error
	for _, m := range msgs {
		if werr = wire.WriteFrame(w, m); werr != nil {
			break
		}
		if werr = w.Flush(); werr != nil {
			break
		}
	}
	fc.Close()
	res := <-done
	server.Close()
	if res.err == nil && werr != nil {
		return res.got, werr
	}
	return res.got, res.err
}

func msgN(n int) *wire.Message {
	return &wire.Message{Type: wire.MsgType(1), Epoch: uint64(n), VM: fmt.Sprintf("vm%d", n)}
}

func TestCleanPassThrough(t *testing.T) {
	inj := New(1, Config{})
	msgs := []*wire.Message{msgN(1), msgN(2), msgN(3)}
	got, err := pipeThrough(t, inj, Pair{0, 1}, msgs)
	if err != nil {
		t.Fatalf("clean pass-through errored: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d frames, want 3", len(got))
	}
	for i, m := range got {
		if m.Epoch != uint64(i+1) || m.VM != fmt.Sprintf("vm%d", i+1) {
			t.Fatalf("frame %d mangled: %+v", i, m)
		}
	}
	if n := len(inj.Log()); n != 0 {
		t.Fatalf("clean run logged %d faults", n)
	}
}

func TestArmedCorruptYieldsTypedFrameError(t *testing.T) {
	inj := New(1, Config{})
	p := Pair{Coordinator, 2}
	inj.Arm(p, Corrupt)
	// A frame with a payload much larger than the receiver's read buffer, to
	// prove corruption detection does not depend on frame size.
	big := &wire.Message{Type: wire.MsgType(2), Payload: bytes.Repeat([]byte{0xAB}, 200_000)}
	got, err := pipeThrough(t, inj, p, []*wire.Message{big, msgN(2)})
	if err == nil {
		t.Fatalf("corrupted stream decoded cleanly: %d frames", len(got))
	}
	if !wire.IsDecodeErr(err) {
		t.Fatalf("corruption surfaced as %v, want wire.ErrFrame", err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d frames before the corrupted one, want 0", len(got))
	}
	if inj.Fired(-1, Corrupt) != 1 {
		t.Fatalf("fault log: %v, want one corrupt", inj.Log())
	}
	if inj.ArmedPending() != 0 {
		t.Fatalf("armed fault did not fire")
	}
}

func TestArmedDropSeversConnection(t *testing.T) {
	inj := New(1, Config{})
	p := Pair{0, 1}
	inj.Arm(p, Drop)
	_, err := pipeThrough(t, inj, p, []*wire.Message{msgN(1)})
	if err == nil {
		t.Fatal("dropped frame was delivered")
	}
	if inj.Fired(-1, Drop) != 1 {
		t.Fatalf("fault log: %v, want one drop", inj.Log())
	}
}

func TestArmedDuplicateDeliversTwice(t *testing.T) {
	inj := New(1, Config{})
	p := Pair{0, 1}
	inj.Arm(p, Duplicate)
	got, err := pipeThrough(t, inj, p, []*wire.Message{msgN(7), msgN(8)})
	if err != nil {
		t.Fatalf("duplicate run errored: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d frames, want 3 (first duplicated)", len(got))
	}
	if got[0].Epoch != 7 || got[1].Epoch != 7 || got[2].Epoch != 8 {
		t.Fatalf("frame order wrong: %d %d %d", got[0].Epoch, got[1].Epoch, got[2].Epoch)
	}
}

func TestArmedFaultsFireFIFO(t *testing.T) {
	inj := New(1, Config{})
	p := Pair{0, 1}
	inj.Arm(p, Delay)
	inj.Arm(p, Duplicate)
	got, err := pipeThrough(t, inj, p, []*wire.Message{msgN(1), msgN(2), msgN(3)})
	if err != nil {
		t.Fatalf("run errored: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d frames, want 4 (second duplicated)", len(got))
	}
	log := inj.Log()
	if len(log) != 2 || log[0].Kind != Delay || log[1].Kind != Duplicate {
		t.Fatalf("fault order: %v, want delay then duplicate", log)
	}
	if !log[0].Armed || !log[1].Armed {
		t.Fatalf("armed flag missing: %v", log)
	}
}

func TestProbabilisticStreamIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		inj := New(seed, Config{PCorrupt: 0.2, PDrop: 0.2, PDelay: 0.2, DelayMin: time.Microsecond, DelayMax: 2 * time.Microsecond})
		// Drive the decision stream directly (single goroutine, so the rng
		// order is exactly the call order).
		var kinds []string
		for f := 0; f < 200; f++ {
			d := inj.frameFault(Pair{0, 1}, 31, 0, frameCaps{corrupt: true, duplicate: true})
			kinds = append(kinds, d.kind.String())
		}
		return kinds
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-frame fault streams")
	}
}

func TestPairStreamsAreIndependent(t *testing.T) {
	// Interleaving draws on pair B must not shift pair A's stream.
	solo := New(99, Config{PDrop: 0.5})
	var alone []Kind
	for f := 0; f < 50; f++ {
		alone = append(alone, solo.frameFault(Pair{0, 1}, 31, 0, frameCaps{}).kind)
	}
	mixed := New(99, Config{PDrop: 0.5})
	var together []Kind
	for f := 0; f < 50; f++ {
		mixed.frameFault(Pair{2, 3}, 31, 0, frameCaps{}) // interleaved noise
		together = append(together, mixed.frameFault(Pair{0, 1}, 31, 0, frameCaps{}).kind)
	}
	for i := range alone {
		if alone[i] != together[i] {
			t.Fatalf("pair 0->1 stream perturbed by pair 2->3 at frame %d", i)
		}
	}
}

func TestPauseStopsProbabilisticButNotArmed(t *testing.T) {
	inj := New(7, Config{PDrop: 1.0})
	inj.Pause()
	p := Pair{0, 1}
	if d := inj.frameFault(p, 31, 0, frameCaps{}); d.kind != 0 {
		t.Fatalf("paused injector fired %s", d.kind)
	}
	inj.Arm(p, Drop)
	if d := inj.frameFault(p, 31, 0, frameCaps{}); d.kind != Drop || !d.armed {
		t.Fatalf("armed fault suppressed by pause: %+v", d)
	}
	inj.Resume()
	if d := inj.frameFault(p, 31, 0, frameCaps{}); d.kind != Drop {
		t.Fatalf("resume did not restore probabilistic injection: %+v", d)
	}
}

func TestCapsGateArmedAndProbabilistic(t *testing.T) {
	inj := New(7, Config{})
	p := Pair{0, 1}
	inj.Arm(p, Duplicate)
	// Chunk cannot carry a duplicate: the fault must stay armed, unlogged.
	if d := inj.frameFault(p, 31, 0, frameCaps{corrupt: true, duplicate: false}); d.kind != 0 {
		t.Fatalf("incapable chunk fired %s", d.kind)
	}
	if inj.ArmedPending() != 1 {
		t.Fatal("armed duplicate was consumed by an incapable chunk")
	}
	if d := inj.frameFault(p, 31, 0, frameCaps{corrupt: true, duplicate: true}); d.kind != Duplicate {
		t.Fatalf("capable chunk fired %v, want duplicate", d.kind)
	}
}

func TestPartitionRefusesDialsAndSeversConns(t *testing.T) {
	inj := New(1, Config{})
	// A real listener so the dialer path is exercised end to end.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 1024)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()
	inj.Register(1, ln.Addr().String())
	dial := inj.Dialer(Coordinator)

	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("pre-partition dial failed: %v", err)
	}
	inj.PartitionPair(Coordinator, 1)
	if _, err := c.Write([]byte{1, 2, 3, 4}); err == nil {
		t.Fatal("write on partitioned conn succeeded")
	}
	if _, err := dial(ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial across partition succeeded")
	}
	inj.HealPair(Coordinator, 1)
	c2, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("post-heal dial failed: %v", err)
	}
	c2.Close()
	if inj.Counters().Get("dial-refused") != 1 {
		t.Fatalf("counters: %s, want dial-refused=1", inj.Counters())
	}
}

func TestFrameTrackerSplitWrites(t *testing.T) {
	// One 31-byte-body frame delivered in pathological fragments: the tracker
	// must still find the second frame's boundary.
	body := msgN(1).Encode()
	var stream []byte
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	stream = append(stream, hdr[:]...)
	stream = append(stream, body...)

	var tr frameTracker
	// Feed header split 1+3, then body split at 5.
	tr.advance(stream[:1])
	tr.advance(stream[1:4])
	tr.advance(stream[4:9])
	if _, _, ok := tr.firstFrame(stream[9 : len(stream)-1]); ok {
		t.Fatal("mid-body chunk claimed to hold a frame start")
	}
	tr.advance(stream[9:])
	// Now at a boundary: the next chunk's frame must be found at offset 0.
	start, bodyLen, ok := tr.firstFrame(stream)
	if !ok || start != 0 || bodyLen != len(body) {
		t.Fatalf("boundary scan: start=%d len=%d ok=%v, want 0 %d true", start, bodyLen, ok, len(body))
	}
	// A chunk ending mid-prefix is skipped.
	tr2 := frameTracker{}
	if _, _, ok := tr2.firstFrame(stream[:3]); ok {
		t.Fatal("3-byte prefix fragment claimed a frame")
	}
}

func TestKillPlanDeterministicAndBounded(t *testing.T) {
	build := func(seed int64) *KillPlan {
		p, err := PlanPoissonKills(8, 40, 120, 10, seed)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(5), build(5)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	if a.TotalKills() == 0 {
		t.Fatal("MTBF 120s over 40 rounds of 10s injected no kills; plan degenerate")
	}
	for r := 0; r < a.Rounds(); r++ {
		v := a.Victims(r)
		if len(v) > 1 {
			t.Fatalf("round %d kills %v, want at most one victim", r, v)
		}
		for _, n := range v {
			if n < 0 || n >= 8 {
				t.Fatalf("round %d kills out-of-range node %d", r, n)
			}
		}
	}
	if c := build(6); c.String() == a.String() {
		t.Fatal("different seeds produced identical kill plans")
	}
}

func TestKillPlanRestrict(t *testing.T) {
	sched, err := failure.NewPoissonNodes(4, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlanKills(sched, 20, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := p.TotalKills()
	if before == 0 {
		t.Skip("no kills drawn; uninformative seed")
	}
	p.Restrict(func(node int) bool { return node != 0 })
	for r := 0; r < p.Rounds(); r++ {
		for _, n := range p.Victims(r) {
			if n == 0 {
				t.Fatal("restricted node 0 still scheduled")
			}
		}
	}
}

func TestRecordKillRestartInLog(t *testing.T) {
	inj := New(1, Config{})
	inj.NextRound()
	inj.RecordKill(3)
	inj.NextRound()
	inj.RecordRestart(3)
	log := inj.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d entries, want 2", len(log))
	}
	if log[0].Kind != Kill || log[0].Node != 3 || log[0].Round != 1 {
		t.Fatalf("kill entry wrong: %+v", log[0])
	}
	if log[1].Kind != Restart || log[1].Node != 3 || log[1].Round != 2 {
		t.Fatalf("restart entry wrong: %+v", log[1])
	}
	if got := inj.Counters().String(); got != "kill=1 restart=1" {
		t.Fatalf("counters: %q", got)
	}
}
