package chaos

import (
	"fmt"
	"math"
	"sort"

	"dvdc/internal/failure"
)

// KillPlan maps a stochastic failure schedule (internal/failure) onto
// discrete checkpoint rounds: Victims(r) is the set of nodes killed during
// round r. The plan is materialized up front from the schedule's event
// stream, so the same schedule seed always produces the same per-round kill
// sets — the node-level half of a reproducible chaos run.
type KillPlan struct {
	rounds   int
	byRound  [][]int
	killable func(node int) bool
}

// PlanKills drains sched up to rounds*roundSeconds and buckets each failure
// event into round int(Time/roundSeconds). At most maxPerRound distinct
// victims are kept per round (0 = unlimited) and a node killed twice in one
// round counts once — the harness restarts victims between rounds, so a
// second same-round kill has no separate effect.
func PlanKills(sched *failure.NodeSchedule, rounds int, roundSeconds float64, maxPerRound int) (*KillPlan, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("chaos: kill plan needs rounds > 0, got %d", rounds)
	}
	if roundSeconds <= 0 || math.IsNaN(roundSeconds) {
		return nil, fmt.Errorf("chaos: kill plan needs roundSeconds > 0, got %v", roundSeconds)
	}
	p := &KillPlan{rounds: rounds, byRound: make([][]int, rounds)}
	horizon := float64(rounds) * roundSeconds
	seen := make([]map[int]bool, rounds)
	for {
		ev := sched.Next()
		if math.IsInf(ev.Time, 1) || ev.Time >= horizon {
			break
		}
		r := int(ev.Time / roundSeconds)
		if r < 0 || r >= rounds {
			continue
		}
		if seen[r] == nil {
			seen[r] = map[int]bool{}
		}
		if seen[r][ev.Node] {
			continue
		}
		if maxPerRound > 0 && len(p.byRound[r]) >= maxPerRound {
			continue
		}
		seen[r][ev.Node] = true
		p.byRound[r] = append(p.byRound[r], ev.Node)
	}
	for _, v := range p.byRound {
		sort.Ints(v)
	}
	return p, nil
}

// PlanPoissonKills is the common case: independent per-node Poisson failures
// with the given MTBF, bucketed into rounds. One victim per round keeps every
// kill inside the erasure code's single-failure-per-group tolerance for the
// orthogonal layouts the soak harness runs.
func PlanPoissonKills(nodes, rounds int, mtbfSeconds, roundSeconds float64, seed int64) (*KillPlan, error) {
	sched, err := failure.NewPoissonNodes(nodes, mtbfSeconds, seed)
	if err != nil {
		return nil, err
	}
	return PlanKills(sched, rounds, roundSeconds, 1)
}

// Restrict drops victims the predicate rejects (e.g. a node hosting more
// than the recoverable number of a group's members under a weakened layout).
func (p *KillPlan) Restrict(keep func(node int) bool) { p.killable = keep }

// Victims returns the nodes to kill in round r (nil when none, or r is out
// of range). The slice is a copy.
func (p *KillPlan) Victims(r int) []int {
	if r < 0 || r >= p.rounds {
		return nil
	}
	var out []int
	for _, n := range p.byRound[r] {
		if p.killable != nil && !p.killable(n) {
			continue
		}
		out = append(out, n)
	}
	return out
}

// Rounds returns the plan's horizon in rounds.
func (p *KillPlan) Rounds() int { return p.rounds }

// TotalKills counts victims across every round (after Restrict).
func (p *KillPlan) TotalKills() int {
	n := 0
	for r := 0; r < p.rounds; r++ {
		n += len(p.Victims(r))
	}
	return n
}

// String renders the plan compactly: "round 3: kill [1]; round 7: kill [0 2]".
func (p *KillPlan) String() string {
	s := ""
	for r := 0; r < p.rounds; r++ {
		v := p.Victims(r)
		if len(v) == 0 {
			continue
		}
		if s != "" {
			s += "; "
		}
		s += fmt.Sprintf("round %d: kill %v", r, v)
	}
	if s == "" {
		return "no kills"
	}
	return s
}
