package chaos

import (
	"encoding/binary"
	"fmt"
	"net"
	"syscall"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/wire"
)

// Corruption target: the two high bytes of the frame's 4-byte little-endian
// length prefix are forced to 0xFF, making the declared length exceed
// wire.MaxFrame (256 MiB) so the receiver's ReadFrame fails with a typed
// ErrFrame no matter how large the real frame is. Mangling interior body
// bytes instead could decode into a silently *wrong* message (the wire format
// carries no checksum), which would poison the soak harness's invariants;
// an over-limit length prefix is corruption that is always detected.

// frameTracker follows the 4-byte-length-prefixed framing of a byte stream
// so the conn wrapper knows where frames begin inside arbitrary write
// chunks. Zero value is ready (stream starts at a frame boundary).
type frameTracker struct {
	hdr  [4]byte
	hdrN int // length-prefix bytes seen so far (when mid-prefix)
	body int // body bytes of the current frame still outstanding
}

// advance consumes one chunk of stream bytes.
func (t *frameTracker) advance(b []byte) {
	for len(b) > 0 {
		if t.body > 0 {
			n := min(t.body, len(b))
			t.body -= n
			b = b[n:]
			continue
		}
		n := copy(t.hdr[t.hdrN:], b)
		t.hdrN += n
		b = b[n:]
		if t.hdrN == 4 {
			t.body = int(binary.LittleEndian.Uint32(t.hdr[:]))
			t.hdrN = 0
		}
	}
}

// firstFrame scans a chunk without consuming it and reports the first frame
// whose length prefix begins fully inside the chunk: the prefix offset, the
// body length, and whether such a frame exists.
func (t frameTracker) firstFrame(b []byte) (start, bodyLen int, ok bool) {
	off := 0
	for off < len(b) {
		if t.body > 0 {
			n := min(t.body, len(b)-off)
			t.body -= n
			off += n
			continue
		}
		if t.hdrN == 0 {
			if len(b)-off < 4 {
				return 0, 0, false // prefix straddles the chunk; skip
			}
			return off, int(binary.LittleEndian.Uint32(b[off:])), true
		}
		n := copy(t.hdr[t.hdrN:], b[off:])
		t.hdrN += n
		off += n
		if t.hdrN == 4 {
			t.body = int(binary.LittleEndian.Uint32(t.hdr[:]))
			t.hdrN = 0
		}
	}
	return 0, 0, false
}

// faultConn wraps a real connection with one pair's fault stream. Faults are
// decided at outbound frame boundaries; the read path only enforces
// partitions. Conn methods are called under the transport layer's own
// serialization (one in-flight exchange per conn), so the tracker needs no
// lock of its own.
type faultConn struct {
	net.Conn
	inj    *Injector
	pair   Pair
	wtrack frameTracker
}

func newFaultConn(c net.Conn, inj *Injector, p Pair) *faultConn {
	return &faultConn{Conn: c, inj: inj, pair: p}
}

// errSevered builds the error for chaos-severed traffic. It wraps
// ECONNRESET so transport.Pool classifies it exactly like a real peer reset:
// a connection fault, retriable once over a fresh dial.
func (c *faultConn) errSevered(what string) error {
	return fmt.Errorf("chaos: %s on pair %s: %w", what, c.pair, syscall.ECONNRESET)
}

// Read implements net.Conn; a partitioned pair dies on its next read.
func (c *faultConn) Read(b []byte) (int, error) {
	if c.inj.Partitioned(c.pair) {
		c.Conn.Close()
		return 0, c.errSevered("partitioned read")
	}
	return c.Conn.Read(b)
}

// Write implements net.Conn, applying at most one fault per chunk to the
// first frame that starts inside it.
func (c *faultConn) Write(b []byte) (int, error) {
	if c.inj.Partitioned(c.pair) {
		c.Conn.Close()
		return 0, c.errSevered("partitioned write")
	}
	start, bodyLen, ok := c.wtrack.firstFrame(b)
	if !ok {
		c.wtrack.advance(b)
		return c.Conn.Write(b)
	}
	frameEnd := start + 4 + bodyLen
	caps := frameCaps{
		corrupt:   true, // the length prefix is always fully inside the chunk
		duplicate: frameEnd <= len(b),
	}
	var msgType uint8
	if bodyLen >= 1 && start+4 < len(b) {
		msgType = b[start+4] // wire type is the first body byte
	}
	// A standing SlowNode delay stretches every bulk frame queued toward the
	// slow node's data-plane ingest; control frames pass untouched. It is not
	// a frameFault decision: it applies even while probabilistic chaos is
	// paused, and it is never recorded per frame (the fault log got exactly
	// one entry when SlowNode was called).
	if wire.MsgType(msgType).Bulk() {
		if d := c.inj.SlowDelay(c.pair); d > 0 {
			time.Sleep(d)
		}
	}
	d := c.inj.frameFault(c.pair, 4+bodyLen, msgType, caps)
	if d.kind != 0 {
		c.traceFault(b, start, bodyLen, d)
	}
	switch d.kind {
	case Drop:
		c.Conn.Close()
		return 0, c.errSevered("dropped frame")
	case Delay:
		time.Sleep(d.delay)
	case Corrupt:
		mangled := append([]byte(nil), b...)
		mangled[start+2] = 0xFF
		mangled[start+3] = 0xFF
		c.wtrack.advance(b) // track the *real* framing, not the mangled length
		return c.Conn.Write(mangled)
	case Duplicate:
		c.wtrack.advance(b)
		n, err := c.Conn.Write(b)
		if err != nil {
			return n, err
		}
		dup := b[start:frameEnd]
		c.wtrack.advance(dup)
		if _, err := c.Conn.Write(dup); err != nil {
			return n, err
		}
		return n, nil
	}
	c.wtrack.advance(b)
	return c.Conn.Write(b)
}

// traceFault pins a fired fault onto the trace of the frame it mangled: the
// wire header's trace/span fields sit at fixed offsets inside the frame body,
// so the event lands as a child of the exact RPC attempt (the pool re-stamps
// Span per attempt) the fault hit. Untraced frames (trace id 0) are dropped
// by the tracer.
func (c *faultConn) traceFault(b []byte, start, bodyLen int, d decision) {
	tr := c.inj.Tracer()
	if tr == nil {
		return
	}
	hdr := start + 4
	if bodyLen < wire.FixedHeaderLen || hdr+wire.FixedHeaderLen > len(b) {
		return
	}
	ctx := obs.SpanContext{
		Trace: binary.LittleEndian.Uint64(b[hdr+wire.TraceOffset:]),
		Span:  binary.LittleEndian.Uint64(b[hdr+wire.SpanOffset:]),
	}
	kv := []string{"pair", c.pair.String()}
	if d.armed {
		kv = append(kv, "armed", "true")
	}
	tr.Event(ctx, "chaos."+d.kind.String(), "chaos", kv...)
}
