// Package metrics provides the small statistics toolkit the simulators and
// the benchmark harness share: numerically stable summaries (Welford),
// fixed-bucket histograms, and labelled series with CSV output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates count/mean/variance/min/max in a single pass using
// Welford's algorithm. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 with no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with < 2 observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 with none).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with none).
func (s *Summary) Max() float64 { return s.max }

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval on the mean.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// String renders "mean ± ci [min,max] (n=N)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.6g ± %.2g [%.6g, %.6g] (n=%d)", s.Mean(), s.CI95(), s.Min(), s.Max(), s.n)
}

// Histogram counts observations in equal-width buckets over [Lo, Hi);
// outliers land in the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	total   int64
}

// NewHistogram builds a histogram with the given range and bucket count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("metrics: need >= 1 bucket, got %d", buckets)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("metrics: bad histogram range [%v,%v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, buckets)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns an approximate q-quantile (q in [0,1]) by walking the
// buckets and interpolating within the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Lo
	}
	if q >= 1 {
		return h.Hi
	}
	target := q * float64(h.total)
	var cum float64
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Hi
}

// Series is a labelled sequence of (x, y) points for one curve of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the point count.
func (s *Series) Len() int { return len(s.X) }

// MinY returns the minimum y and its x ((0,0) for an empty series).
func (s *Series) MinY() (x, y float64) {
	if len(s.Y) == 0 {
		return 0, 0
	}
	mi := 0
	for i, v := range s.Y {
		if v < s.Y[mi] {
			mi = i
		}
	}
	return s.X[mi], s.Y[mi]
}

// CSV renders one or more series sharing an x-axis into CSV text. Series
// with differing x grids are merged on the union of x values; missing cells
// are empty.
func CSV(xName string, series ...*Series) string {
	var b strings.Builder
	b.WriteString(xName)
	for _, s := range series {
		b.WriteString("," + s.Label)
	}
	b.WriteString("\n")
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			val, ok := "", false
			for i, sx := range s.X {
				if sx == x {
					val, ok = fmt.Sprintf("%g", s.Y[i]), true
					break
				}
			}
			if ok {
				b.WriteString("," + val)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
