package metrics

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Phases accumulates wall-clock observations per named phase (prepare,
// commit, recovery, ...), each backed by a Welford Summary. It is safe for
// concurrent use; the zero value is NOT ready — use NewPhases. Phases render
// in first-observation order, so reports read in protocol order.
type Phases struct {
	mu     sync.Mutex
	order  []string
	byName map[string]*Summary
}

// NewPhases builds an empty phase tracker.
func NewPhases() *Phases {
	return &Phases{byName: map[string]*Summary{}}
}

// Observe records one duration for a phase.
func (p *Phases) Observe(name string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.byName[name]
	if !ok {
		s = &Summary{}
		p.byName[name] = s
		p.order = append(p.order, name)
	}
	s.Add(d.Seconds())
}

// Get returns a copy of one phase's summary (zero Summary if never observed).
func (p *Phases) Get(name string) Summary {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.byName[name]; ok {
		return *s
	}
	return Summary{}
}

// Names lists phases in first-observation order.
func (p *Phases) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.order...)
}

// String renders one line per phase: "name: mean ± ci [min, max] (n=N)" with
// durations in milliseconds.
func (p *Phases) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	for _, name := range p.order {
		s := p.byName[name]
		fmt.Fprintf(&b, "%-10s %.3f ms ± %.3f [%.3f, %.3f] (n=%d)\n",
			name, s.Mean()*1e3, s.CI95()*1e3, s.Min()*1e3, s.Max()*1e3, s.N())
	}
	return b.String()
}
