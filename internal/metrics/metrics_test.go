package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Error("zero Summary should be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample variance of that classic dataset is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("range [%v,%v], want [2,9]", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive")
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSummaryMatchesNaiveComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Summary
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		s.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	naiveVar := ss / float64(len(xs)-1)
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v vs naive %v", s.Mean(), mean)
	}
	if math.Abs(s.Var()-naiveVar)/naiveVar > 1e-9 {
		t.Errorf("var %v vs naive %v", s.Var(), naiveVar)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("0 buckets should fail")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range should fail")
	}
}

func TestHistogramBucketsAndOutliers(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-5)   // clamps to bucket 0
	h.Add(0.5)  // bucket 0
	h.Add(9.99) // bucket 9
	h.Add(42)   // clamps to bucket 9
	if h.Buckets[0] != 2 || h.Buckets[9] != 2 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if math.Abs(med-50) > 2 {
		t.Errorf("median %v, want ~50", med)
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 100 {
		t.Error("extreme quantiles should clamp to range")
	}
	empty, _ := NewHistogram(0, 1, 2)
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestSeriesMinY(t *testing.T) {
	var s Series
	if x, y := s.MinY(); x != 0 || y != 0 {
		t.Error("empty series MinY should be (0,0)")
	}
	s.Append(1, 5)
	s.Append(2, 3)
	s.Append(3, 4)
	x, y := s.MinY()
	if x != 2 || y != 3 {
		t.Errorf("MinY = (%v,%v), want (2,3)", x, y)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestCSVSharedAxis(t *testing.T) {
	a := &Series{Label: "a"}
	a.Append(1, 10)
	a.Append(2, 20)
	b := &Series{Label: "b"}
	b.Append(2, 200)
	b.Append(3, 300)
	got := CSV("x", a, b)
	want := "x,a,b\n1,10,\n2,20,200\n3,,300\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// Property: Summary mean is always within [min, max].
func TestQuickSummaryMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			// Restrict to a range where x-mean cannot overflow; Summary
			// documents no guarantees at the edges of float64.
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				continue
			}
			s.Add(x)
		}
		if s.N() > 0 {
			ok = s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
