package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPhasesObserveAndGet(t *testing.T) {
	p := NewPhases()
	p.Observe("prepare", 10*time.Millisecond)
	p.Observe("prepare", 30*time.Millisecond)
	p.Observe("commit", 5*time.Millisecond)

	prep := p.Get("prepare")
	if prep.N() != 2 {
		t.Errorf("prepare n = %d, want 2", prep.N())
	}
	if got, want := prep.Mean(), 0.020; math.Abs(got-want) > 1e-9 {
		t.Errorf("prepare mean = %v s, want %v s", got, want)
	}
	commit := p.Get("commit")
	if commit.N() != 1 {
		t.Errorf("commit n = %d, want 1", commit.N())
	}
	rec := p.Get("recovery")
	if rec.N() != 0 {
		t.Error("unobserved phase should return a zero summary")
	}
}

func TestPhasesOrderAndString(t *testing.T) {
	p := NewPhases()
	p.Observe("prepare", time.Millisecond)
	p.Observe("commit", time.Millisecond)
	p.Observe("prepare", time.Millisecond)

	names := p.Names()
	if len(names) != 2 || names[0] != "prepare" || names[1] != "commit" {
		t.Errorf("names = %v, want [prepare commit] (first-observation order)", names)
	}
	out := p.String()
	if !strings.Contains(out, "prepare") || !strings.Contains(out, "commit") {
		t.Errorf("render missing phase names:\n%s", out)
	}
	if strings.Index(out, "prepare") > strings.Index(out, "commit") {
		t.Errorf("render out of observation order:\n%s", out)
	}
}

func TestPhasesConcurrentObserve(t *testing.T) {
	p := NewPhases()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Observe("prepare", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := p.Get("prepare")
	if s.N() != 800 {
		t.Errorf("n = %d after concurrent observes, want 800", s.N())
	}
}
