package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Counters is a labelled set of monotonically increasing counters, safe for
// concurrent use. The chaos layer tallies injected faults per kind with it,
// and the soak harness reconciles those tallies against the runtime's own
// retry/death counts. Counters render in first-use order so reports are
// stable across runs with the same event sequence.
type Counters struct {
	mu     sync.Mutex
	order  []string
	byName map[string]int64
}

// NewCounters builds an empty counter set.
func NewCounters() *Counters {
	return &Counters{byName: map[string]int64{}}
}

// Add increments one counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[name]; !ok {
		c.order = append(c.order, name)
	}
	c.byName[name] += delta
}

// Get returns one counter's value (0 if never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[name]
}

// Snapshot copies every counter into a fresh map.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.byName))
	for k, v := range c.byName {
		out[k] = v
	}
	return out
}

// Total sums every counter.
func (c *Counters) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.byName {
		t += v
	}
	return t
}

// String renders "name=value" pairs in first-use order.
func (c *Counters) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	parts := make([]string, 0, len(c.order))
	for _, name := range c.order {
		parts = append(parts, fmt.Sprintf("%s=%d", name, c.byName[name]))
	}
	return strings.Join(parts, " ")
}
