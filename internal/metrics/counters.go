// Package metrics is a thin compatibility layer over the obs package's
// counter sets. It predates internal/obs; existing callers (the chaos
// injector, the soak harness) keep their API while the underlying set can be
// mounted into an obs.Registry and served over the Prometheus endpoint.
package metrics

import "dvdc/internal/obs"

// Counters is a labelled set of monotonically increasing counters, safe for
// concurrent use. The chaos layer tallies injected faults per kind with it,
// and the soak harness reconciles those tallies against the runtime's own
// retry/death counts. Counters render in first-use order so reports are
// stable across runs with the same event sequence.
//
// It is a shim over obs.CounterSet; Set exposes the underlying set for
// mounting into a registry (Registry.MountCounterSet).
type Counters struct {
	set *obs.CounterSet
}

// NewCounters builds an empty counter set.
func NewCounters() *Counters {
	return &Counters{set: obs.NewCounterSet()}
}

// Set returns the underlying obs counter set, for registry mounting.
func (c *Counters) Set() *obs.CounterSet { return c.set }

// Add increments one counter by delta.
func (c *Counters) Add(name string, delta int64) { c.set.Add(name, delta) }

// Get returns one counter's value (0 if never incremented).
func (c *Counters) Get(name string) int64 { return c.set.Get(name) }

// Snapshot copies every counter into a fresh map.
func (c *Counters) Snapshot() map[string]int64 { return c.set.Snapshot() }

// Total sums every counter.
func (c *Counters) Total() int64 { return c.set.Total() }

// String renders "name=value" pairs in first-use order.
func (c *Counters) String() string { return c.set.String() }
