package failure

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is one node failure drawn from a NodeSchedule.
type Event struct {
	Time float64 // absolute seconds
	Node int     // physical node index
}

// NodeSchedule merges independent per-node failure processes into one
// time-ordered stream of (time, node) events. This models the paper's key
// correlation structure: VMs fail together exactly when their physical host
// does, while distinct hosts fail independently.
type NodeSchedule struct {
	procs []Process
	queue eventHeap
}

// NewNodeSchedule builds a schedule over one failure process per node.
func NewNodeSchedule(procs []Process) (*NodeSchedule, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("failure: node schedule needs at least one process")
	}
	s := &NodeSchedule{procs: procs}
	s.prime()
	return s, nil
}

// NewPoissonNodes is a convenience constructor: n independent Poisson
// processes with a per-node MTBF, seeded deterministically from seed.
func NewPoissonNodes(n int, mtbfSeconds float64, seed int64) (*NodeSchedule, error) {
	if n <= 0 {
		return nil, fmt.Errorf("failure: need n > 0 nodes, got %d", n)
	}
	procs := make([]Process, n)
	for i := range procs {
		p, err := NewPoissonMTBF(mtbfSeconds, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		procs[i] = p
	}
	return NewNodeSchedule(procs)
}

func (s *NodeSchedule) prime() {
	s.queue = s.queue[:0]
	for i, p := range s.procs {
		t := p.Next()
		if !math.IsInf(t, 1) {
			s.queue = append(s.queue, Event{Time: t, Node: i})
		}
	}
	heap.Init(&s.queue)
}

// Next pops the earliest pending node failure. When every underlying process
// is exhausted it returns an Event with Time = +Inf.
func (s *NodeSchedule) Next() Event {
	if len(s.queue) == 0 {
		return Event{Time: math.Inf(1), Node: -1}
	}
	ev := heap.Pop(&s.queue).(Event)
	if t := s.procs[ev.Node].Next(); !math.IsInf(t, 1) {
		heap.Push(&s.queue, Event{Time: t, Node: ev.Node})
	}
	return ev
}

// Reset restarts every per-node process and re-primes the queue.
func (s *NodeSchedule) Reset() {
	for _, p := range s.procs {
		p.Reset()
	}
	s.prime()
}

// Nodes returns how many nodes the schedule covers.
func (s *NodeSchedule) Nodes() int { return len(s.procs) }

type eventHeap []Event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].Time < h[j].Time }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
