package failure

import (
	"math"
	"strings"
	"testing"
)

func TestLoadTraceCSVReplaysInOrder(t *testing.T) {
	in := strings.NewReader(`node,seconds
# a comment line
1, 100
0, 50
1, 200
2, 75
`)
	s, err := LoadTraceCSV(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{{50, 0}, {75, 2}, {100, 1}, {200, 1}}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("event %d = %+v, want %+v", i, got, w)
		}
	}
	if got := s.Next(); !math.IsInf(got.Time, 1) {
		t.Errorf("exhausted trace should return +Inf, got %+v", got)
	}
	// Reset replays identically.
	s.Reset()
	if got := s.Next(); got != want[0] {
		t.Errorf("after reset: %+v", got)
	}
}

func TestLoadTraceCSVNoHeader(t *testing.T) {
	s, err := LoadTraceCSV(strings.NewReader("0,10\n1,20\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Next(); got.Node != 0 || got.Time != 10 {
		t.Errorf("first = %+v", got)
	}
}

func TestLoadTraceCSVValidation(t *testing.T) {
	cases := []struct {
		name, in string
		nodes    int
	}{
		{"zero nodes", "0,1\n", 0},
		{"bad field count", "0,1,2\n", 2},
		{"bad node", "x,1\n", 2},
		{"node out of range", "5,1\n", 2},
		{"bad time", "0,zzz\n", 2},
		{"negative time", "0,-5\n", 2},
	}
	for _, c := range cases {
		if _, err := LoadTraceCSV(strings.NewReader(c.in), c.nodes); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLoadTraceCSVEmptyIsQuiet(t *testing.T) {
	s, err := LoadTraceCSV(strings.NewReader(""), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Next(); !math.IsInf(got.Time, 1) {
		t.Errorf("empty trace should never fail, got %+v", got)
	}
}
