package failure

import (
	"math"
	"testing"
)

func TestNodeScheduleMergesInOrder(t *testing.T) {
	s, err := NewPoissonNodes(4, 3600, 11)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	seen := map[int]int{}
	for i := 0; i < 2000; i++ {
		ev := s.Next()
		if ev.Time < prev {
			t.Fatalf("events out of order at %d: %v < %v", i, ev.Time, prev)
		}
		if ev.Node < 0 || ev.Node >= 4 {
			t.Fatalf("bad node index %d", ev.Node)
		}
		prev = ev.Time
		seen[ev.Node]++
	}
	for n := 0; n < 4; n++ {
		if seen[n] == 0 {
			t.Errorf("node %d never failed in 2000 events", n)
		}
	}
}

func TestNodeScheduleRatesBalance(t *testing.T) {
	// With identical per-node MTBFs, event counts should be roughly equal.
	s, err := NewPoissonNodes(3, 1000, 21)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Next().Node]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("node %d got fraction %.3f of failures, want ~1/3", i, frac)
		}
	}
}

func TestNodeScheduleResetReplays(t *testing.T) {
	s, _ := NewPoissonNodes(2, 100, 31)
	var events []Event
	for i := 0; i < 100; i++ {
		events = append(events, s.Next())
	}
	s.Reset()
	for i := 0; i < 100; i++ {
		if got := s.Next(); got != events[i] {
			t.Fatalf("replay diverged at %d: %+v != %+v", i, got, events[i])
		}
	}
}

func TestNodeScheduleWithTraces(t *testing.T) {
	t0, _ := NewTrace([]float64{10, 30})
	t1, _ := NewTrace([]float64{20})
	s, err := NewNodeSchedule([]Process{t0, t1})
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{{10, 0}, {20, 1}, {30, 0}}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("event %d = %+v, want %+v", i, got, w)
		}
	}
	if got := s.Next(); !math.IsInf(got.Time, 1) || got.Node != -1 {
		t.Errorf("exhausted schedule should return +Inf/-1, got %+v", got)
	}
}

func TestNodeScheduleValidation(t *testing.T) {
	if _, err := NewNodeSchedule(nil); err == nil {
		t.Error("empty process list should fail")
	}
	if _, err := NewPoissonNodes(0, 100, 1); err == nil {
		t.Error("zero nodes should fail")
	}
}

func TestNodeScheduleAggregateRate(t *testing.T) {
	// n nodes with MTBF m have aggregate MTBF m/n: check empirically.
	const perNode = 4000.0
	s, _ := NewPoissonNodes(4, perNode, 77)
	const n = 40000
	var last float64
	for i := 0; i < n; i++ {
		last = s.Next().Time
	}
	agg := last / n
	want := perNode / 4
	if rel := math.Abs(agg-want) / want; rel > 0.03 {
		t.Errorf("aggregate MTBF %v deviates %.1f%% from %v", agg, rel*100, want)
	}
}
