package failure

import "testing"

func TestSmallAccessors(t *testing.T) {
	p, err := NewPoisson(0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lambda() != 0.25 {
		t.Errorf("Lambda = %v", p.Lambda())
	}
	s, err := NewPoissonNodes(3, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 3 {
		t.Errorf("Nodes = %d", s.Nodes())
	}
	// Weibull reset replays exactly.
	w, err := NewWeibull(1.5, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := w.Next()
	w.Reset()
	if got := w.Next(); got != first {
		t.Errorf("Weibull replay diverged: %v != %v", got, first)
	}
}
