package failure

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadTraceCSV reads a recorded failure log and builds a NodeSchedule that
// replays it. The format follows the public HPC failure archives (e.g. the
// LANL systems data): one record per failure, `node,seconds`, where node is
// a zero-based node index and seconds the absolute failure time. Lines
// starting with '#' and a header line of `node,seconds` are skipped.
// nodes fixes the schedule width; records naming nodes outside [0,nodes)
// are rejected.
func LoadTraceCSV(r io.Reader, nodes int) (*NodeSchedule, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("failure: need nodes > 0, got %d", nodes)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	perNode := make([][]float64, nodes)
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("failure: trace line %d: %w", line+1, err)
		}
		line++
		if len(rec) != 2 {
			return nil, fmt.Errorf("failure: trace line %d: want 2 fields, got %d", line, len(rec))
		}
		f0 := strings.TrimSpace(rec[0])
		f1 := strings.TrimSpace(rec[1])
		if line == 1 && strings.EqualFold(f0, "node") {
			continue // header
		}
		node, err := strconv.Atoi(f0)
		if err != nil {
			return nil, fmt.Errorf("failure: trace line %d: bad node %q", line, f0)
		}
		if node < 0 || node >= nodes {
			return nil, fmt.Errorf("failure: trace line %d: node %d out of range [0,%d)", line, node, nodes)
		}
		t, err := strconv.ParseFloat(f1, 64)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("failure: trace line %d: bad time %q", line, f1)
		}
		perNode[node] = append(perNode[node], t)
	}
	procs := make([]Process, nodes)
	for i, times := range perNode {
		tr, err := NewTrace(times)
		if err != nil {
			return nil, err
		}
		procs[i] = tr
	}
	return NewNodeSchedule(procs)
}
