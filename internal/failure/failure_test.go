package failure

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPoissonValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewPoisson(bad, 1); err == nil {
			t.Errorf("NewPoisson(%v) should fail", bad)
		}
	}
	if _, err := NewPoissonMTBF(0, 1); err == nil {
		t.Error("NewPoissonMTBF(0) should fail")
	}
}

func TestPoissonMonotoneIncreasing(t *testing.T) {
	p, err := NewPoisson(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 1000; i++ {
		v := p.Next()
		if v <= prev {
			t.Fatalf("failure times not strictly increasing at %d: %v <= %v", i, v, prev)
		}
		prev = v
	}
}

func TestPoissonMeanMatchesMTBF(t *testing.T) {
	const mtbf = 3 * 3600.0 // the paper's 3-hour MTBF
	p, err := NewPoissonMTBF(mtbf, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	last := 0.0
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	mean := last / n
	if rel := math.Abs(mean-mtbf) / mtbf; rel > 0.02 {
		t.Errorf("empirical MTBF %v differs from %v by %.1f%%", mean, mtbf, rel*100)
	}
}

func TestPoissonResetReplaysExactly(t *testing.T) {
	p, _ := NewPoisson(1, 99)
	var first []float64
	for i := 0; i < 50; i++ {
		first = append(first, p.Next())
	}
	p.Reset()
	for i := 0; i < 50; i++ {
		if got := p.Next(); got != first[i] {
			t.Fatalf("replay diverged at %d: %v != %v", i, got, first[i])
		}
	}
}

func TestWeibullShapeOneMatchesExponentialMean(t *testing.T) {
	const scale = 100.0
	w, err := NewWeibull(1, scale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MeanInterarrival(); math.Abs(got-scale) > 1e-9 {
		t.Errorf("Weibull(k=1) mean = %v, want %v", got, scale)
	}
	const n = 100000
	last := 0.0
	for i := 0; i < n; i++ {
		last = w.Next()
	}
	if rel := math.Abs(last/n-scale) / scale; rel > 0.03 {
		t.Errorf("empirical mean %v deviates %.1f%% from %v", last/n, rel*100, scale)
	}
}

func TestWeibullValidation(t *testing.T) {
	if _, err := NewWeibull(0, 1, 1); err == nil {
		t.Error("shape 0 should fail")
	}
	if _, err := NewWeibull(1, 0, 1); err == nil {
		t.Error("scale 0 should fail")
	}
}

func TestWeibullMeanFormula(t *testing.T) {
	// For k=2, mean = scale * Gamma(1.5) = scale * sqrt(pi)/2.
	w, _ := NewWeibull(2, 10, 1)
	want := 10 * math.Sqrt(math.Pi) / 2
	if got := w.MeanInterarrival(); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestTraceOrderingAndExhaustion(t *testing.T) {
	tr, err := NewTrace([]float64{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i, w := range want {
		if got := tr.Next(); got != w {
			t.Errorf("trace[%d] = %v, want %v", i, got, w)
		}
	}
	if got := tr.Next(); !math.IsInf(got, 1) {
		t.Errorf("exhausted trace should return +Inf, got %v", got)
	}
	if tr.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", tr.Remaining())
	}
	tr.Reset()
	if tr.Remaining() != 3 {
		t.Errorf("after Reset Remaining = %d, want 3", tr.Remaining())
	}
}

func TestTraceRejectsNegative(t *testing.T) {
	if _, err := NewTrace([]float64{1, -2}); err == nil {
		t.Error("negative trace time should fail")
	}
}

func TestNeverNeverFails(t *testing.T) {
	var n Never
	if !math.IsInf(n.Next(), 1) {
		t.Error("Never.Next should be +Inf")
	}
	n.Reset()
	if !math.IsInf(n.Next(), 1) {
		t.Error("Never.Next after Reset should be +Inf")
	}
}

// Property: Poisson inter-arrival times are always positive for any seed
// and rate in a sane range.
func TestQuickPoissonPositiveGaps(t *testing.T) {
	f := func(seed int64, rateRaw uint16) bool {
		rate := float64(rateRaw%1000+1) / 1000.0
		p, err := NewPoisson(rate, seed)
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i < 100; i++ {
			v := p.Next()
			if v <= prev || math.IsNaN(v) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
