// Package failure provides the stochastic failure processes DVDC's analysis
// and simulation are driven by.
//
// The paper assumes failures follow a Poisson process (exponential
// inter-arrival times with rate lambda = 1/MTBF) and motivates its numbers
// with published cluster MTBFs as low as a few hours. Besides the Poisson
// process, the package implements the Weibull "bathtub"-capable model the
// paper name-checks, a deterministic trace process for replaying recorded
// failure logs, and a per-node correlated wrapper: in DVDC a physical-node
// failure takes down every VM on that node at once, which is exactly why the
// orthogonal-RAID placement exists.
//
// All processes are seeded explicitly and therefore reproducible.
package failure

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Process yields successive absolute failure times (seconds) in increasing
// order. Implementations are not safe for concurrent use; give each
// goroutine its own process.
type Process interface {
	// Next returns the absolute time of the next failure strictly after the
	// previous one returned (or after zero for the first call).
	Next() float64
	// Reset restarts the process from time zero with its original seed so a
	// run can be replayed exactly.
	Reset()
}

// Poisson is a homogeneous Poisson failure process with rate Lambda
// (failures per second). Inter-arrival times are Exp(lambda).
type Poisson struct {
	lambda float64
	seed   int64
	rng    *rand.Rand
	now    float64
}

// NewPoisson builds a Poisson process with the given rate and seed.
// The rate must be positive and finite.
func NewPoisson(lambda float64, seed int64) (*Poisson, error) {
	if lambda <= 0 || math.IsInf(lambda, 0) || math.IsNaN(lambda) {
		return nil, fmt.Errorf("failure: invalid Poisson rate %v", lambda)
	}
	p := &Poisson{lambda: lambda, seed: seed}
	p.Reset()
	return p, nil
}

// NewPoissonMTBF builds a Poisson process from a mean time between failures
// in seconds (the parameterization the paper uses: lambda = 1/MTBF).
func NewPoissonMTBF(mtbf float64, seed int64) (*Poisson, error) {
	if mtbf <= 0 {
		return nil, fmt.Errorf("failure: invalid MTBF %v", mtbf)
	}
	return NewPoisson(1/mtbf, seed)
}

// Lambda returns the failure rate in failures per second.
func (p *Poisson) Lambda() float64 { return p.lambda }

// Next implements Process.
func (p *Poisson) Next() float64 {
	p.now += p.rng.ExpFloat64() / p.lambda
	return p.now
}

// Reset implements Process.
func (p *Poisson) Reset() {
	p.rng = rand.New(rand.NewSource(p.seed))
	p.now = 0
}

// Weibull is a renewal process whose inter-arrival times follow a Weibull
// distribution with shape K and scale Lambda (seconds). K < 1 produces the
// decreasing hazard of infant mortality, K = 1 reduces to exponential, and
// K > 1 the increasing hazard of wear-out -- together the "bathtub curve"
// regimes the paper contrasts with its Poisson assumption.
type Weibull struct {
	shape, scale float64
	seed         int64
	rng          *rand.Rand
	now          float64
}

// NewWeibull builds a Weibull renewal process.
func NewWeibull(shape, scale float64, seed int64) (*Weibull, error) {
	if shape <= 0 || scale <= 0 {
		return nil, fmt.Errorf("failure: invalid Weibull shape %v scale %v", shape, scale)
	}
	w := &Weibull{shape: shape, scale: scale, seed: seed}
	w.Reset()
	return w, nil
}

// Next implements Process via inverse-CDF sampling.
func (w *Weibull) Next() float64 {
	u := w.rng.Float64()
	for u == 0 { // avoid log(0)
		u = w.rng.Float64()
	}
	w.now += w.scale * math.Pow(-math.Log(u), 1/w.shape)
	return w.now
}

// Reset implements Process.
func (w *Weibull) Reset() {
	w.rng = rand.New(rand.NewSource(w.seed))
	w.now = 0
}

// MeanInterarrival returns the process mean inter-arrival time,
// scale * Gamma(1 + 1/shape).
func (w *Weibull) MeanInterarrival() float64 {
	return w.scale * math.Gamma(1+1/w.shape)
}

// Trace replays a fixed, sorted schedule of failure times. After the trace
// is exhausted Next returns +Inf.
type Trace struct {
	times []float64
	idx   int
}

// NewTrace builds a trace process from absolute failure times; the input is
// copied and sorted. Negative times are rejected.
func NewTrace(times []float64) (*Trace, error) {
	cp := append([]float64(nil), times...)
	for _, t := range cp {
		if t < 0 || math.IsNaN(t) {
			return nil, errors.New("failure: trace times must be non-negative")
		}
	}
	sort.Float64s(cp)
	return &Trace{times: cp}, nil
}

// Next implements Process.
func (t *Trace) Next() float64 {
	if t.idx >= len(t.times) {
		return math.Inf(1)
	}
	v := t.times[t.idx]
	t.idx++
	return v
}

// Reset implements Process.
func (t *Trace) Reset() { t.idx = 0 }

// Remaining returns how many failures the trace still holds.
func (t *Trace) Remaining() int { return len(t.times) - t.idx }

// Never is a Process that never fails; useful for fault-free baselines.
type Never struct{}

// Next implements Process.
func (Never) Next() float64 { return math.Inf(1) }

// Reset implements Process.
func (Never) Reset() {}
