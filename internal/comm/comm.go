// Package comm models the inter-VM communication that makes a distributed
// checkpoint need *coordination* in the first place. The paper's Sec. IV-A
// prescribes "a consistent distributed checkpoint (using the techniques of
// Section II)" before parity is computed; with FIFO channels between VMs,
// the classic blocking approach is: quiesce senders, drain every in-flight
// message into its receiver's memory, then capture. Channels are then empty
// at the checkpoint, so the captured cut is trivially consistent — and on a
// rollback, discarding the post-checkpoint in-flight messages restores
// exactly the committed global state (senders roll back to before those
// sends, so nothing is lost or duplicated).
package comm

import (
	"fmt"
	"sort"
)

// Message is one in-flight payload.
type Message struct {
	Src, Dst string
	Payload  []byte
}

// Network is a set of FIFO channels keyed by (src, dst). It is not safe for
// concurrent use; the simulation drives it from one goroutine, like the rest
// of the in-process cluster.
type Network struct {
	queues map[[2]string][]Message
	count  int
	sent   uint64
	deliv  uint64
}

// NewNetwork builds an empty network.
func NewNetwork() *Network {
	return &Network{queues: map[[2]string][]Message{}}
}

// Send enqueues a message from src to dst. The payload is copied.
func (n *Network) Send(src, dst string, payload []byte) error {
	if src == "" || dst == "" {
		return fmt.Errorf("comm: empty endpoint (src=%q dst=%q)", src, dst)
	}
	if src == dst {
		return fmt.Errorf("comm: self-send from %q", src)
	}
	k := [2]string{src, dst}
	n.queues[k] = append(n.queues[k], Message{Src: src, Dst: dst, Payload: append([]byte(nil), payload...)})
	n.count++
	n.sent++
	return nil
}

// InFlight returns the number of undelivered messages.
func (n *Network) InFlight() int { return n.count }

// Stats returns cumulative sent/delivered counters.
func (n *Network) Stats() (sent, delivered uint64) { return n.sent, n.deliv }

// DeliverTo pops every pending message destined for dst, in FIFO order per
// channel (channels are visited in deterministic src order), invoking the
// handler for each. It returns how many messages were delivered. A handler
// error stops delivery with that error; already-handled messages stay
// delivered.
func (n *Network) DeliverTo(dst string, handler func(m Message) error) (int, error) {
	keys := make([][2]string, 0)
	for k := range n.queues {
		if k[1] == dst && len(n.queues[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i][0] < keys[j][0] })
	delivered := 0
	for _, k := range keys {
		q := n.queues[k]
		for len(q) > 0 {
			m := q[0]
			q = q[1:]
			n.queues[k] = q
			n.count--
			delivered++
			n.deliv++
			if err := handler(m); err != nil {
				return delivered, err
			}
		}
		delete(n.queues, k)
	}
	return delivered, nil
}

// DrainAll delivers every in-flight message, grouped by destination in
// deterministic order: the quiesce step of the blocking coordinated
// checkpoint. After it returns (without error) the network is empty.
func (n *Network) DrainAll(handler func(m Message) error) (int, error) {
	dsts := map[string]bool{}
	for k, q := range n.queues {
		if len(q) > 0 {
			dsts[k[1]] = true
		}
	}
	sorted := make([]string, 0, len(dsts))
	for d := range dsts {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	total := 0
	for _, d := range sorted {
		k, err := n.DeliverTo(d, handler)
		total += k
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Clear discards every in-flight message: the rollback rule. Messages sent
// after the last committed checkpoint vanish together with the sender state
// that produced them, so the restored cut has no orphan messages.
func (n *Network) Clear() int {
	dropped := n.count
	n.queues = map[[2]string][]Message{}
	n.count = 0
	return dropped
}
