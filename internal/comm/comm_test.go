package comm

import (
	"fmt"
	"testing"
)

func TestSendDeliverFIFO(t *testing.T) {
	n := NewNetwork()
	for i := 0; i < 5; i++ {
		if err := n.Send("a", "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n.InFlight() != 5 {
		t.Fatalf("InFlight = %d", n.InFlight())
	}
	var got []byte
	k, err := n.DeliverTo("b", func(m Message) error {
		got = append(got, m.Payload[0])
		return nil
	})
	if err != nil || k != 5 {
		t.Fatalf("delivered %d, %v", k, err)
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
	if n.InFlight() != 0 {
		t.Error("queue not emptied")
	}
}

func TestDeliverToOnlyTargetsDst(t *testing.T) {
	n := NewNetwork()
	n.Send("a", "b", []byte{1})
	n.Send("a", "c", []byte{2})
	k, err := n.DeliverTo("b", func(Message) error { return nil })
	if err != nil || k != 1 {
		t.Fatalf("delivered %d, %v", k, err)
	}
	if n.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1 (message for c)", n.InFlight())
	}
}

func TestDrainAllEmptiesNetwork(t *testing.T) {
	n := NewNetwork()
	n.Send("a", "b", []byte{1})
	n.Send("b", "a", []byte{2})
	n.Send("c", "b", []byte{3})
	seen := map[string]int{}
	k, err := n.DrainAll(func(m Message) error {
		seen[m.Dst]++
		return nil
	})
	if err != nil || k != 3 {
		t.Fatalf("drained %d, %v", k, err)
	}
	if seen["a"] != 1 || seen["b"] != 2 {
		t.Errorf("delivery map: %v", seen)
	}
	if n.InFlight() != 0 {
		t.Error("network not empty")
	}
	sent, deliv := n.Stats()
	if sent != 3 || deliv != 3 {
		t.Errorf("stats: %d/%d", sent, deliv)
	}
}

func TestHandlerErrorStopsDelivery(t *testing.T) {
	n := NewNetwork()
	n.Send("a", "b", []byte{1})
	n.Send("a", "b", []byte{2})
	calls := 0
	_, err := n.DeliverTo("b", func(Message) error {
		calls++
		return fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("handler error swallowed")
	}
	if calls != 1 {
		t.Errorf("handler called %d times, want 1", calls)
	}
}

func TestClearDiscards(t *testing.T) {
	n := NewNetwork()
	n.Send("a", "b", []byte{1})
	n.Send("a", "c", []byte{2})
	if got := n.Clear(); got != 2 {
		t.Errorf("Clear = %d", got)
	}
	if n.InFlight() != 0 {
		t.Error("not cleared")
	}
}

func TestSendValidation(t *testing.T) {
	n := NewNetwork()
	if err := n.Send("", "b", nil); err == nil {
		t.Error("empty src accepted")
	}
	if err := n.Send("a", "a", nil); err == nil {
		t.Error("self-send accepted")
	}
}

func TestPayloadCopied(t *testing.T) {
	n := NewNetwork()
	buf := []byte{7}
	n.Send("a", "b", buf)
	buf[0] = 99
	n.DeliverTo("b", func(m Message) error {
		if m.Payload[0] != 7 {
			t.Error("payload aliased caller buffer")
		}
		return nil
	})
}
