package diskfull

import (
	"testing"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/failure"
	"dvdc/internal/storage"
	"dvdc/internal/vm"
)

func testScheme(t *testing.T, local bool) *Scheme {
	t.Helper()
	plat, err := analytic.DefaultPlatform(4)
	if err != nil {
		t.Fatal(err)
	}
	spec := vm.Spec{Name: "g", ImageBytes: 1 << 28, Dirty: vm.FullImageDirty{ImageBytes: 1 << 28}}
	s, err := New(plat, storage.DefaultNAS(), 12, 3, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	s.LocalRollback = local
	return s
}

func TestNewValidation(t *testing.T) {
	plat, _ := analytic.DefaultPlatform(4)
	spec := vm.Spec{Name: "g", ImageBytes: 1, Dirty: vm.FullImageDirty{ImageBytes: 1}}
	if _, err := New(plat, storage.DefaultNAS(), 12, 0, spec, false); err == nil {
		t.Error("vmsPerNode 0 should fail")
	}
	if _, err := New(plat, storage.DefaultNAS(), 2, 3, spec, false); err == nil {
		t.Error("vmsPerNode > vmCount should fail")
	}
}

func TestOverheadIncludesNASFlush(t *testing.T) {
	s := testScheme(t, false)
	ov, err := s.CheckpointOverhead(600)
	if err != nil {
		t.Fatal(err)
	}
	// 12 x 256 MiB through a GigE NAS: tens of seconds.
	if ov < 10 {
		t.Errorf("overhead %v s, expected NAS-bound tens of seconds", ov)
	}
}

func TestRecoveryLocalRollbackIsCheaper(t *testing.T) {
	nasOnly := testScheme(t, false)
	local := testScheme(t, true)
	a, err := nasOnly.RecoveryTime(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := local.RecoveryTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("local rollback %v should beat NAS-only %v", b, a)
	}
	if b < nasOnly.OptimalRecoveryFloor() {
		t.Errorf("recovery %v below physical floor %v", b, nasOnly.OptimalRecoveryFloor())
	}
}

func TestEndToEndRunAgainstDVDC(t *testing.T) {
	// The E12 shape in miniature: identical failure schedules, disk-full
	// completes later than DVDC.
	plat, _ := analytic.DefaultPlatform(4)
	df := testScheme(t, false)

	mkSched := func() *failure.NodeSchedule {
		s, err := failure.NewPoissonNodes(4, 100000, 42)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	resDF, err := core.Run(core.Config{
		JobSeconds: 200000, Interval: 1500, DetectSec: 1,
		Schedule: mkSched(), Scheme: df,
	})
	if err != nil {
		t.Fatal(err)
	}

	layout, err := cluster.Paper12VM()
	if err != nil {
		t.Fatal(err)
	}
	spec := vm.Spec{
		Name: "g", ImageBytes: 1 << 28,
		Dirty: vm.SaturatingDirty{WriteRate: 1 << 20, WSSBytes: 1 << 25},
	}
	dvdc, err := core.NewDVDCScheme(plat, layout, spec)
	if err != nil {
		t.Fatal(err)
	}
	resDV, err := core.Run(core.Config{
		JobSeconds: 200000, Interval: 300, DetectSec: 1,
		Schedule: mkSched(), Scheme: dvdc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resDV.Completion >= resDF.Completion {
		t.Errorf("DVDC completion %v not below disk-full %v", resDV.Completion, resDF.Completion)
	}
}
