// Package diskfull implements the paper's comparison baseline: conventional
// checkpointing of every VM image to one shared NAS. Checkpoints serialize
// behind the NAS ingest link and its disk array; recovery must read
// checkpoints back out of the NAS, because the NAS holds the only copies.
package diskfull

import (
	"fmt"
	"math"

	"dvdc/internal/analytic"
	"dvdc/internal/core"
	"dvdc/internal/storage"
	"dvdc/internal/vm"
)

// Scheme is the disk-full baseline for the discrete-event engine.
type Scheme struct {
	Overheads  *analytic.Diskfull
	NAS        storage.NAS
	VMsPerNode int
	VMCount    int
	Spec       vm.Spec
	// LocalRollback, when true, lets surviving VMs roll back from a local
	// in-memory copy instead of re-fetching from the NAS: an optimistic
	// variant that narrows the recovery gap (ablation knob for E10).
	LocalRollback bool
}

// New assembles the baseline scheme.
func New(p analytic.Platform, nas storage.NAS, vmCount, vmsPerNode int, spec vm.Spec, async bool) (*Scheme, error) {
	ov, err := analytic.NewDiskfull(p, nas, vmCount, spec, async)
	if err != nil {
		return nil, err
	}
	if vmsPerNode <= 0 || vmsPerNode > vmCount {
		return nil, fmt.Errorf("diskfull: invalid vmsPerNode %d (vmCount %d)", vmsPerNode, vmCount)
	}
	return &Scheme{Overheads: ov, NAS: nas, VMsPerNode: vmsPerNode, VMCount: vmCount, Spec: spec}, nil
}

// Name implements core.Scheme.
func (s *Scheme) Name() string { return s.Overheads.Name() }

// CheckpointOverhead implements core.Scheme.
func (s *Scheme) CheckpointOverhead(window float64) (float64, error) {
	return s.Overheads.Overhead(window)
}

// RecoveryTime implements core.Scheme: the failed node's VMs re-fetch their
// images from the NAS; with LocalRollback the survivors restore from local
// buffers (memory speed), otherwise every VM's rollback image also streams
// out of the NAS, all serialized behind its single egress path.
func (s *Scheme) RecoveryTime(node int) (float64, error) {
	img := float64(s.Spec.ImageBytes)
	fetchVMs := s.VMsPerNode
	if !s.LocalRollback {
		fetchVMs = s.VMCount
	}
	t, err := s.NAS.RestoreFetchTime(float64(fetchVMs) * img)
	if err != nil {
		return 0, err
	}
	load := img / s.Overheads.Platform.CaptureBps
	return s.Overheads.Platform.BaseSec + t + load, nil
}

// OptimalRecoveryFloor returns the minimum conceivable recovery time (one
// image at full array read bandwidth): used by tests as a lower bound.
func (s *Scheme) OptimalRecoveryFloor() float64 {
	return float64(s.Spec.ImageBytes) / math.Max(s.NAS.Array.ReadBps, 1)
}

var _ core.Scheme = (*Scheme)(nil)
