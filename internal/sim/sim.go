// Package sim is a small deterministic discrete-event simulation engine.
//
// Every higher-level model in this repository (the DVDC engine, the
// disk-full baseline, Remus, the Monte-Carlo corroboration of the paper's
// analytical model) runs on this engine: a virtual clock in float64 seconds,
// a binary-heap event queue with FIFO tie-breaking, cancellable timers, and
// an explicitly seeded random source. Given the same seed and the same
// schedule of calls, a simulation replays bit-identically, which the test
// suite relies on.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all callbacks run on the caller's goroutine inside Step,
// Run, or RunUntil.
type Engine struct {
	now    float64
	queue  timerHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// New creates an engine at time zero with a deterministic random source.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's seeded random source. Models share it so a single
// seed reproduces an entire run.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// Fired returns how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns how many scheduled events are still outstanding,
// including cancelled timers that have not yet been popped.
func (e *Engine) Pending() int { return len(e.queue) }

// Timer is a handle to a scheduled event; Cancel prevents a pending timer
// from firing.
type Timer struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel marks the timer so it will not fire. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() { t.cancelled = true }

// Cancelled reports whether Cancel has been called.
func (t *Timer) Cancelled() bool { return t.cancelled }

// When returns the virtual time the timer is scheduled for.
func (t *Timer) When() float64 { return t.at }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would corrupt every downstream measurement.
func (e *Engine) At(at float64, fn func()) *Timer {
	if math.IsNaN(at) {
		panic("sim: scheduling at NaN")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, t)
	return t
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It returns false when the queue is empty or the engine has been halted.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		if e.halted {
			return false
		}
		t := heap.Pop(&e.queue).(*Timer)
		if t.cancelled {
			continue
		}
		e.now = t.at
		e.fired++
		t.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline float64) {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", deadline, e.now))
	}
	for !e.halted {
		// Peek for the next non-cancelled timer.
		for len(e.queue) > 0 && e.queue[0].cancelled {
			heap.Pop(&e.queue)
		}
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if !e.halted && deadline > e.now {
		e.now = deadline
	}
}

// Halt stops Run/RunUntil after the current event returns. Subsequent Step
// calls return false until Resume.
func (e *Engine) Halt() { e.halted = true }

// Resume clears a Halt.
func (e *Engine) Resume() { e.halted = false }

// Halted reports whether the engine is halted.
func (e *Engine) Halted() bool { return e.halted }

// timerHeap orders timers by time, breaking ties by scheduling order so
// same-time events run FIFO (deterministic replay).
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x interface{}) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
