package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Errorf("Now = %v, want 0", e.Now())
	}
	if e.Pending() != 0 || e.Fired() != 0 {
		t.Error("fresh engine should have no pending or fired events")
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(1)
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("final time %v, want 3", e.Now())
	}
}

func TestSameTimeEventsRunFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New(1)
	var at float64 = -1
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Errorf("After fired at %v, want 15", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.At(1, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	if !tm.Cancelled() {
		t.Error("Cancelled() should be true")
	}
}

func TestCancelFromInsideEarlierEvent(t *testing.T) {
	e := New(1)
	fired := false
	later := e.At(2, func() { fired = true })
	e.At(1, func() { later.Cancel() })
	e.Run()
	if fired {
		t.Error("timer cancelled at t=1 still fired at t=2")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	e.After(-1, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback should panic")
		}
	}()
	e.At(1, nil)
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	e := New(1)
	var fired []float64
	e.At(1, func() { fired = append(fired, e.Now()) })
	e.At(5, func() { fired = append(fired, e.Now()) })
	e.RunUntil(3)
	if len(fired) != 1 || fired[0] != 1 {
		t.Errorf("fired = %v, want [1]", fired)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 2 || fired[1] != 5 {
		t.Errorf("fired = %v, want [1 5]", fired)
	}
}

func TestRunUntilIncludesDeadlineEvents(t *testing.T) {
	e := New(1)
	fired := false
	e.At(3, func() { fired = true })
	e.RunUntil(3)
	if !fired {
		t.Error("event exactly at deadline should fire")
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("ran %d events after Halt, want 3", count)
	}
	e.Resume()
	e.Run()
	if count != 10 {
		t.Errorf("after Resume ran %d total, want 10", count)
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next; models the
	// checkpoint-interval loops built on the engine.
	e := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 100 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
	if n != 100 {
		t.Errorf("ticks = %d, want 100", n)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100", e.Now())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		e := New(12345)
		var times []float64
		var tick func()
		tick = func() {
			times = append(times, e.Now())
			if len(times) < 200 {
				e.After(e.RNG().ExpFloat64(), tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestFiredCountsOnlyExecuted(t *testing.T) {
	e := New(1)
	tm := e.At(1, func() {})
	tm.Cancel()
	e.At(2, func() {})
	e.Run()
	if e.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", e.Fired())
	}
}

// Property: for any set of event times, execution order is sorted.
func TestQuickExecutionOrderSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New(1)
		var fired []float64
		for _, r := range raw {
			at := float64(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
