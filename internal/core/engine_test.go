package core

import (
	"math"
	"testing"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/failure"
	"dvdc/internal/metrics"
	"dvdc/internal/vm"
)

// constScheme is a trivial Scheme with fixed costs for engine unit tests.
type constScheme struct {
	ov, rec float64
}

func (c constScheme) Name() string                                { return "const" }
func (c constScheme) CheckpointOverhead(float64) (float64, error) { return c.ov, nil }
func (c constScheme) RecoveryTime(int) (float64, error)           { return c.rec, nil }

func neverSchedule(t *testing.T) *failure.NodeSchedule {
	t.Helper()
	s, err := failure.NewNodeSchedule([]failure.Process{failure.Never{}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func traceSchedule(t *testing.T, times ...float64) *failure.NodeSchedule {
	t.Helper()
	tr, err := failure.NewTrace(times)
	if err != nil {
		t.Fatal(err)
	}
	s, err := failure.NewNodeSchedule([]failure.Process{tr})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunFaultFreeExactCompletion(t *testing.T) {
	// 100 s of work, 10 s intervals, 1 s overhead: 9 checkpoints (the last
	// window needs none) -> 109 s.
	res, err := Run(Config{
		JobSeconds: 100, Interval: 10, Schedule: neverSchedule(t),
		Scheme: constScheme{ov: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 9 {
		t.Errorf("checkpoints = %d, want 9", res.Checkpoints)
	}
	if math.Abs(res.Completion-109) > 1e-9 {
		t.Errorf("completion = %v, want 109", res.Completion)
	}
	if res.Failures != 0 || res.LostWork != 0 {
		t.Errorf("unexpected failures: %+v", res)
	}
}

func TestRunSingleFailureRollsBack(t *testing.T) {
	// Failure at t=15: window 2 had done 4 s of work (committed 10 at
	// t=11 after 10 work + 1 ov). Recovery = 2 s + detect 1 s. Completion:
	// 15 + 3 + remaining work 90 + overheads.
	res, err := Run(Config{
		JobSeconds: 100, Interval: 10, DetectSec: 1,
		Schedule: traceSchedule(t, 15),
		Scheme:   constScheme{ov: 1, rec: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	if math.Abs(res.LostWork-4) > 1e-9 {
		t.Errorf("lost work = %v, want 4", res.LostWork)
	}
	// Work after recovery restarts at committed=10: 90 s remain, 8 more
	// checkpoints. Completion = 18 (failure+recovery) + 90 + 8*1 = 116.
	if math.Abs(res.Completion-116) > 1e-9 {
		t.Errorf("completion = %v, want 116", res.Completion)
	}
	if math.Abs(res.RecoveryTime-3) > 1e-9 {
		t.Errorf("recovery time = %v, want 3", res.RecoveryTime)
	}
}

func TestRunFailureDuringCheckpointLosesWholeWindow(t *testing.T) {
	// Failure at t=10.5, inside the first checkpoint (10..11): the full 10 s
	// window is lost.
	res, err := Run(Config{
		JobSeconds: 30, Interval: 10,
		Schedule: traceSchedule(t, 10.5),
		Scheme:   constScheme{ov: 1, rec: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LostWork-10) > 1e-9 {
		t.Errorf("lost work = %v, want 10", res.LostWork)
	}
	if res.Checkpoints != 2 {
		t.Errorf("checkpoints = %d, want 2 (two committed windows)", res.Checkpoints)
	}
}

func TestRunFailureDuringRecoveryRestartsRecovery(t *testing.T) {
	// First failure at t=5; recovery takes 10 s (until 15). Second failure
	// at t=12 lands inside recovery: recovery restarts, finishing at 22.
	// Then 20 s of work + 1 checkpoint: 20+1+... job = 20, interval 15.
	res, err := Run(Config{
		JobSeconds: 20, Interval: 15,
		Schedule: traceSchedule(t, 5, 12),
		Scheme:   constScheme{ov: 1, rec: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 2 {
		t.Fatalf("failures = %d, want 2", res.Failures)
	}
	// Completion: 22 (second recovery ends) + 15 work + 1 ov + 5 work = 43.
	if math.Abs(res.Completion-43) > 1e-9 {
		t.Errorf("completion = %v, want 43", res.Completion)
	}
	// Lost work: 5 (first) + 0 (during recovery) = 5.
	if math.Abs(res.LostWork-5) > 1e-9 {
		t.Errorf("lost work = %v, want 5", res.LostWork)
	}
}

func TestRunValidation(t *testing.T) {
	good := Config{JobSeconds: 10, Interval: 1, Schedule: neverSchedule(t), Scheme: constScheme{}}
	bad := []func(Config) Config{
		func(c Config) Config { c.JobSeconds = 0; return c },
		func(c Config) Config { c.Interval = 0; return c },
		func(c Config) Config { c.DetectSec = -1; return c },
		func(c Config) Config { c.Schedule = nil; return c },
		func(c Config) Config { c.Scheme = nil; return c },
	}
	for i, mut := range bad {
		if _, err := Run(mut(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunShortJobNoCheckpointNeeded(t *testing.T) {
	res, err := Run(Config{
		JobSeconds: 5, Interval: 10, Schedule: neverSchedule(t),
		Scheme: constScheme{ov: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 || res.Completion != 5 {
		t.Errorf("short job: %+v", res)
	}
}

// TestMonteCarloMatchesAnalyticModel is the E2 experiment in miniature: the
// event simulation's mean completion time must agree with the corrected
// Section V equations within a few percent.
func TestMonteCarloMatchesAnalyticModel(t *testing.T) {
	const (
		mtbf     = 2000.0
		job      = 20000.0
		interval = 400.0
		overhead = 5.0
		repair   = 30.0
		runs     = 300
	)
	var s metrics.Summary
	for seed := int64(0); seed < runs; seed++ {
		sched, err := failure.NewPoissonNodes(1, mtbf, 1000+seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			JobSeconds: job, Interval: interval, DetectSec: 0,
			Schedule: sched, Scheme: constScheme{ov: overhead, rec: repair},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Add(res.Completion)
	}
	m := analytic.Model{Lambda: 1 / mtbf, T: job, Repair: repair}
	want, err := m.ExpectedWithCheckpoint(interval, overhead)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(s.Mean()-want) / want
	t.Logf("MC mean %.1f (±%.1f), analytic %.1f, rel err %.2f%%", s.Mean(), s.CI95(), want, rel*100)
	if rel > 0.05 {
		t.Errorf("Monte-Carlo mean %v vs analytic %v: %.1f%% apart", s.Mean(), want, rel*100)
	}
}

func TestDVDCSchemeCosts(t *testing.T) {
	layout, err := cluster.Paper12VM()
	if err != nil {
		t.Fatal(err)
	}
	plat, err := analytic.DefaultPlatform(layout.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	spec := vm.Spec{Name: "g", ImageBytes: 1 << 28, Dirty: vm.LinearDirty{RatePerSec: 1 << 20, CapBytes: 1 << 26}}
	s, err := NewDVDCScheme(plat, layout, spec)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := s.CheckpointOverhead(60)
	if err != nil {
		t.Fatal(err)
	}
	if ov <= 0 {
		t.Errorf("overhead = %v", ov)
	}
	rec, err := s.RecoveryTime(0)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction of a 256 MiB image from 3 blocks over GigE takes
	// seconds: sanity band.
	if rec < 1 || rec > 60 {
		t.Errorf("recovery = %v s, want O(seconds)", rec)
	}
	if _, err := s.RecoveryTime(-1); err == nil {
		t.Error("bad node should fail")
	}
	// End-to-end run with the real scheme.
	sched, err := failure.NewPoissonNodes(layout.Nodes, 50000, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{JobSeconds: 100000, Interval: 600, DetectSec: 1, Schedule: sched, Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 1 {
		t.Errorf("ratio = %v, want > 1", res.Ratio)
	}
}
