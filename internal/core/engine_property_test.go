package core

import (
	"testing"
	"testing/quick"

	"dvdc/internal/failure"
)

// Property: for any failure pattern, interval, and costs, the simulated run
// satisfies the basic accounting identities.
func TestQuickEngineInvariants(t *testing.T) {
	f := func(seed int64, ivRaw, ovRaw, recRaw uint16, mtbfRaw uint32) bool {
		job := 5000.0
		iv := float64(ivRaw%2000) + 1
		ov := float64(ovRaw % 100)
		rec := float64(recRaw % 200)
		mtbf := float64(mtbfRaw%20000) + 500
		sched, err := failure.NewPoissonNodes(2, mtbf, seed)
		if err != nil {
			return false
		}
		res, err := Run(Config{
			JobSeconds: job, Interval: iv, DetectSec: 1,
			Schedule: sched, Scheme: constScheme{ov: ov, rec: rec},
		})
		if err != nil {
			return false
		}
		// Lower bound: work, committed checkpoint overhead, and re-done work
		// are disjoint wall-time classes that all really elapsed.
		// (RecoveryTime is excluded: a failure during recovery restarts it,
		// so the counter can exceed the wall time actually spent.)
		if res.Completion < job+res.OverheadTime+res.LostWork-1e-6 {
			return false
		}
		// Upper bound: beyond those classes, wall time can only be recovery
		// (counted, possibly over-counted) plus at most one partial
		// checkpoint overhead per failure (spent, then wasted, un-booked).
		upper := job + res.OverheadTime + res.LostWork + res.RecoveryTime +
			float64(res.Failures)*ov + 1e-6
		if res.Completion > upper {
			return false
		}
		if res.Ratio < 1 {
			return false
		}
		if res.Failures == 0 && (res.LostWork != 0 || res.RecoveryTime != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: adding failures never speeds the job up (coupled seeds: the
// trace prefix property — more failures = superset trace).
func TestQuickMoreFailuresNeverFaster(t *testing.T) {
	f := func(t1Raw, t2Raw uint16) bool {
		job, iv := 2000.0, 150.0
		t1 := float64(t1Raw%1800) + 1
		t2 := float64(t2Raw%1800) + 1
		mk := func(times ...float64) *failure.NodeSchedule {
			tr, err := failure.NewTrace(times)
			if err != nil {
				return nil
			}
			s, err := failure.NewNodeSchedule([]failure.Process{tr})
			if err != nil {
				return nil
			}
			return s
		}
		one := mk(t1)
		two := mk(t1, t1+t2)
		if one == nil || two == nil {
			return false
		}
		run := func(s *failure.NodeSchedule) float64 {
			res, err := Run(Config{
				JobSeconds: job, Interval: iv,
				Schedule: s, Scheme: constScheme{ov: 2, rec: 5},
			})
			if err != nil {
				return -1
			}
			return res.Completion
		}
		c1, c2 := run(one), run(two)
		return c1 > 0 && c2 > 0 && c2 >= c1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
