package core

import (
	"sort"

	"dvdc/internal/cluster"
	"dvdc/internal/migrate"
)

// Rebalance restores strict orthogonality after degraded recoveries, once
// repaired nodes have rejoined and made room: co-located VMs live-migrate to
// free nodes and co-located parity blocks re-home (in-process the parity
// content is location-independent, so a parity move is pure bookkeeping plus
// the transfer a real deployment would pay). index optionally enables
// page-hash dedup for the migrations. The resulting layout passes strict
// validation; an empty plan means nothing needed to move.
func (c *Cluster) Rebalance(index *migrate.HashIndex) (*cluster.Plan, error) {
	var down []int
	for d := range c.down {
		down = append(down, d)
	}
	sort.Ints(down)
	plan, err := c.layout.PlanRebalance(down...)
	if err != nil {
		return nil, err
	}
	for _, s := range plan.Steps {
		if s.Kind != cluster.RestoreVM {
			continue
		}
		if _, err := c.moveVM(s.VM, s.TargetNode, index); err != nil {
			return nil, err
		}
	}
	// Parity re-homes and the final strict validation. moveVM already
	// updated the VM placements; ApplyRebalance re-applies them
	// idempotently and moves the parity assignments.
	if err := c.layout.ApplyRebalance(plan); err != nil {
		return nil, err
	}
	for _, s := range plan.Steps {
		if s.Kind == cluster.RehomeParity {
			c.stats.ParityRebuilds++
		}
	}
	return plan, nil
}
