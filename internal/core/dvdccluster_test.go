package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dvdc/internal/cluster"
	"dvdc/internal/vm"
)

func paperCluster(t *testing.T) *Cluster {
	t.Helper()
	layout, err := cluster.Paper12VM()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func churn(t *testing.T, c *Cluster, seed int64, writesPerVM int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, name := range c.VMNames() {
		m, err := c.Machine(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < writesPerVM; i++ {
			m.TouchPage(rng.Intn(m.NumPages()), rng.Uint64())
		}
	}
}

func TestClusterCheckpointMaintainsParity(t *testing.T) {
	c := paperCluster(t)
	if err := c.VerifyParity(); err != nil {
		t.Fatalf("initial parity: %v", err)
	}
	for round := 0; round < 4; round++ {
		churn(t, c, int64(round), 25)
		if err := c.CheckpointRound(); err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyParity(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if c.Stats().Rounds != 4 || c.Stats().DeltaBytes == 0 {
		t.Errorf("stats: %+v", c.Stats())
	}
}

func TestClusterFailAnyNodeRecovers(t *testing.T) {
	for node := 0; node < 4; node++ {
		c := paperCluster(t)
		churn(t, c, 7, 30)
		if err := c.CheckpointRound(); err != nil {
			t.Fatal(err)
		}
		// Record committed state of every VM.
		committed := map[string][]byte{}
		for _, name := range c.VMNames() {
			m, _ := c.Machine(name)
			committed[name] = m.Image()
		}
		// Extra uncommitted churn that recovery must roll back.
		churn(t, c, 8, 10)

		rep, err := c.FailNode(node)
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
		if len(rep.LostVMs) != 3 {
			t.Errorf("node %d: lost %d VMs, want 3", node, len(rep.LostVMs))
		}
		// Every VM (reconstructed or rolled back) must hold the committed
		// checkpoint state.
		for _, name := range c.VMNames() {
			m, _ := c.Machine(name)
			if !bytes.Equal(m.Image(), committed[name]) {
				t.Errorf("node %d: VM %q not at committed state after recovery", node, name)
			}
		}
		if err := c.VerifyParity(); err != nil {
			t.Errorf("node %d: parity invalid after recovery: %v", node, err)
		}
	}
}

func TestClusterContinuesAfterRecovery(t *testing.T) {
	c := paperCluster(t)
	churn(t, c, 1, 20)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNode(2); err != nil {
		t.Fatal(err)
	}
	// The cluster must keep checkpointing and keep parity consistent after
	// the (degraded) recovery.
	for round := 0; round < 3; round++ {
		churn(t, c, int64(100+round), 15)
		if err := c.CheckpointRound(); err != nil {
			t.Fatalf("round %d after recovery: %v", round, err)
		}
		if err := c.VerifyParity(); err != nil {
			t.Fatalf("round %d after recovery: %v", round, err)
		}
	}
}

func TestClusterDoubleFailureRejected(t *testing.T) {
	c := paperCluster(t)
	churn(t, c, 3, 10)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	// Node 0's VMs were re-placed degraded; a second failure must now be
	// reported as data loss for at least one choice of node.
	anyRejected := false
	for n := 1; n < 4; n++ {
		probe := *c // shallow copy is fine: FailNode checks before mutating
		if !probe.layout.Survives(n) {
			anyRejected = true
		}
	}
	if !anyRejected {
		t.Error("after degraded recovery, some second failure should be fatal")
	}
}

func TestClusterFailDownNodeFails(t *testing.T) {
	c := paperCluster(t)
	churn(t, c, 4, 10)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNode(1); err == nil {
		t.Error("failing a down node should error")
	}
	if err := c.RepairNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RepairNode(1); err == nil {
		t.Error("repairing an up node should error")
	}
}

func TestClusterWithToleranceTwoLayoutSurvivesTwoFailures(t *testing.T) {
	// 8 nodes, groups of 4 with tolerance 1... build a spare-rich layout so
	// recovery stays orthogonal and a second failure remains recoverable.
	layout, err := cluster.BuildDistributedGroups(8, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, c, 5, 10)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.FailNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Error("recovery with spare nodes should not degrade")
	}
	churn(t, c, 6, 10)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	// Sequential second failure (after recovery + new checkpoint) must also
	// be recoverable.
	if _, err := c.FailNode(3); err != nil {
		t.Fatalf("second sequential failure: %v", err)
	}
	if err := c.VerifyParity(); err != nil {
		t.Error(err)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 4, 64); err == nil {
		t.Error("nil layout should fail")
	}
	layout, _ := cluster.Paper12VM()
	if _, err := NewCluster(layout, 0, 64); err == nil {
		t.Error("zero pages should fail")
	}
}

func TestClusterMachineLookup(t *testing.T) {
	c := paperCluster(t)
	if _, err := c.Machine("nope"); err == nil {
		t.Error("unknown VM should fail")
	}
	names := c.VMNames()
	if len(names) != 12 {
		t.Errorf("VMNames: %d, want 12", len(names))
	}
	if m, err := c.Machine(names[0]); err != nil || m == nil {
		t.Error("lookup of known VM failed")
	}
	_ = vm.DefaultPageSize // keep the vm import meaningful if geometry changes
}

func TestConcurrentCheckpointMatchesSerial(t *testing.T) {
	// Two identical clusters, identical workloads: serial and concurrent
	// rounds must produce identical parity and committed state.
	a := paperCluster(t)
	b := paperCluster(t)
	for round := 0; round < 3; round++ {
		churn(t, a, int64(round), 25)
		churn(t, b, int64(round), 25)
		if err := a.CheckpointRound(); err != nil {
			t.Fatal(err)
		}
		if err := b.CheckpointRoundConcurrent(); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().DeltaBytes != b.Stats().DeltaBytes {
		t.Errorf("delta bytes differ: %d vs %d", a.Stats().DeltaBytes, b.Stats().DeltaBytes)
	}
	for _, name := range a.VMNames() {
		ma, _ := a.Machine(name)
		mb, _ := b.Machine(name)
		if !ma.Equal(mb) {
			t.Errorf("VM %q diverged between serial and concurrent rounds", name)
		}
	}
	// Recovery still works after concurrent rounds.
	if _, err := b.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}
