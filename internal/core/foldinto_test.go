package core

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"dvdc/internal/checkpoint"
)

// TestFoldIntoCommitPendingMatchesApplyDelta pins the chunked fold path to
// the monolithic one: folding each delta's pages chunk-by-chunk (shuffled,
// at byte offsets) into a zeroed pending buffer and committing it must leave
// the keeper in exactly the state ApplyDelta produces.
func TestFoldIntoCommitPendingMatchesApplyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const pageSize, pages = 32, 16
	for _, tolerance := range []int{1, 2} {
		initial := map[string][]byte{}
		for _, id := range []string{"vm-a", "vm-b", "vm-c"} {
			img := make([]byte, pageSize*pages)
			rng.Read(img)
			initial[id] = img
		}
		for pi := 0; pi < tolerance; pi++ {
			mono, err := NewMKeeper(1, pi, tolerance, initial)
			if err != nil {
				t.Fatal(err)
			}
			chunked, err := NewMKeeper(1, pi, tolerance, initial)
			if err != nil {
				t.Fatal(err)
			}

			for epoch := uint64(1); epoch <= 3; epoch++ {
				pending := make([]byte, chunked.Size())
				epochs := map[string]uint64{}
				for id := range initial {
					// Random dirty pages for this member.
					var recs []checkpoint.PageRecord
					for p := 0; p < pages; p++ {
						if rng.Intn(3) == 0 {
							data := make([]byte, pageSize)
							rng.Read(data)
							recs = append(recs, checkpoint.PageRecord{Index: p, Data: data})
						}
					}
					d := &Delta{VMID: id, Epoch: epoch, Pages: recs}
					if err := mono.ApplyDelta(d); err != nil {
						t.Fatal(err)
					}
					// Chunked: split every page into odd-sized pieces folded
					// at byte offsets, in shuffled order.
					type piece struct {
						off  int
						data []byte
					}
					var pieces []piece
					for _, p := range recs {
						base := p.Index * pageSize
						for at := 0; at < len(p.Data); {
							n := min(1+rng.Intn(13), len(p.Data)-at)
							pieces = append(pieces, piece{base + at, p.Data[at : at+n]})
							at += n
						}
					}
					rng.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })
					for _, pc := range pieces {
						if err := chunked.FoldInto(pending, id, pc.off, pc.data); err != nil {
							t.Fatal(err)
						}
					}
					epochs[id] = epoch
				}
				if err := chunked.CommitPending(pending, epochs); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mono.Parity(), chunked.Parity()) {
					t.Fatalf("tolerance=%d row=%d epoch=%d: chunked parity diverges", tolerance, pi, epoch)
				}
				for id := range initial {
					if mono.Epoch(id) != chunked.Epoch(id) {
						t.Fatalf("epoch bookkeeping diverges for %s", id)
					}
				}
			}
		}
	}
}

func TestCommitPendingRejectsBadEpochAtomically(t *testing.T) {
	initial := map[string][]byte{"a": make([]byte, 64), "b": make([]byte, 64)}
	k, err := NewMKeeper(0, 0, 1, initial)
	if err != nil {
		t.Fatal(err)
	}
	before := k.Parity()
	pending := bytes.Repeat([]byte{0xFF}, 64)
	// "a" is valid (epoch 1), "b" skips ahead — the whole commit must fail
	// without touching parity or epochs.
	err = k.CommitPending(pending, map[string]uint64{"a": 1, "b": 2})
	if err == nil {
		t.Fatal("epoch skip accepted")
	}
	if !bytes.Equal(k.Parity(), before) {
		t.Fatal("failed commit mutated parity")
	}
	if k.Epoch("a") != 0 {
		t.Fatal("failed commit advanced an epoch")
	}
	if err := k.CommitPending(pending, map[string]uint64{"a": 1, "b": 1}); err != nil {
		t.Fatal(err)
	}
}

// TestCommitPendingRangesMatchesFullCommit pins the range-restricted commit
// to the full-buffer one: when the ranges cover every byte a fold touched
// (and the rest of the buffer is zero, as the runtime guarantees), both
// commits must land the identical parity block.
func TestCommitPendingRangesMatchesFullCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const pageSize, pages = 32, 16
	initial := map[string][]byte{}
	for _, id := range []string{"vm-a", "vm-b"} {
		img := make([]byte, pageSize*pages)
		rng.Read(img)
		initial[id] = img
	}
	full, err := NewMKeeper(2, 0, 2, initial)
	if err != nil {
		t.Fatal(err)
	}
	ranged, err := NewMKeeper(2, 0, 2, initial)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 4; epoch++ {
		pending := make([]byte, full.Size())
		var ranges [][2]int
		epochs := map[string]uint64{}
		for id := range initial {
			for p := 0; p < pages; p++ {
				if rng.Intn(4) != 0 {
					continue
				}
				data := make([]byte, pageSize)
				rng.Read(data)
				off := p * pageSize
				if err := full.FoldInto(pending, id, off, data); err != nil {
					t.Fatal(err)
				}
				ranges = append(ranges, [2]int{off, off + pageSize})
			}
			epochs[id] = epoch
		}
		// Deduplicate overlapping ranges (two members dirtying the same page)
		// the same way the runtime does: sort and merge into disjoint runs.
		sort.Slice(ranges, func(i, j int) bool { return ranges[i][0] < ranges[j][0] })
		merged := ranges[:0]
		for _, r := range ranges {
			if n := len(merged); n > 0 && r[0] <= merged[n-1][1] {
				merged[n-1][1] = max(merged[n-1][1], r[1])
			} else {
				merged = append(merged, r)
			}
		}
		fullBuf := append([]byte(nil), pending...)
		if err := full.CommitPending(fullBuf, epochs); err != nil {
			t.Fatal(err)
		}
		if err := ranged.CommitPendingRanges(pending, epochs, merged); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full.Parity(), ranged.Parity()) {
			t.Fatalf("epoch %d: ranged commit diverges from full commit", epoch)
		}
	}
}

func TestCommitPendingRangesRejectsBadRangeAtomically(t *testing.T) {
	initial := map[string][]byte{"a": make([]byte, 64)}
	k, err := NewMKeeper(0, 0, 1, initial)
	if err != nil {
		t.Fatal(err)
	}
	before := k.Parity()
	pending := bytes.Repeat([]byte{0xFF}, 64)
	for _, bad := range [][2]int{{-1, 8}, {8, 4}, {32, 65}} {
		err := k.CommitPendingRanges(pending, map[string]uint64{"a": 1}, [][2]int{{0, 8}, bad})
		if err == nil {
			t.Fatalf("range %v accepted", bad)
		}
		if !bytes.Equal(k.Parity(), before) {
			t.Fatalf("failed commit with range %v mutated parity", bad)
		}
		if k.Epoch("a") != 0 {
			t.Fatalf("failed commit with range %v advanced an epoch", bad)
		}
	}
}

func TestFoldIntoRejectsBadRanges(t *testing.T) {
	initial := map[string][]byte{"a": make([]byte, 64)}
	k, err := NewMKeeper(0, 0, 1, initial)
	if err != nil {
		t.Fatal(err)
	}
	pending := make([]byte, 64)
	if err := k.FoldInto(pending, "ghost", 0, []byte{1}); err == nil {
		t.Fatal("unknown member accepted")
	}
	if err := k.FoldInto(pending[:32], "a", 0, []byte{1}); err == nil {
		t.Fatal("short pending buffer accepted")
	}
	if err := k.FoldInto(pending, "a", 60, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("out-of-range fold accepted")
	}
	if err := k.FoldInto(pending, "a", -1, []byte{1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}
