package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dvdc/internal/checkpoint"
)

// TestFoldIntoCommitPendingMatchesApplyDelta pins the chunked fold path to
// the monolithic one: folding each delta's pages chunk-by-chunk (shuffled,
// at byte offsets) into a zeroed pending buffer and committing it must leave
// the keeper in exactly the state ApplyDelta produces.
func TestFoldIntoCommitPendingMatchesApplyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const pageSize, pages = 32, 16
	for _, tolerance := range []int{1, 2} {
		initial := map[string][]byte{}
		for _, id := range []string{"vm-a", "vm-b", "vm-c"} {
			img := make([]byte, pageSize*pages)
			rng.Read(img)
			initial[id] = img
		}
		for pi := 0; pi < tolerance; pi++ {
			mono, err := NewMKeeper(1, pi, tolerance, initial)
			if err != nil {
				t.Fatal(err)
			}
			chunked, err := NewMKeeper(1, pi, tolerance, initial)
			if err != nil {
				t.Fatal(err)
			}

			for epoch := uint64(1); epoch <= 3; epoch++ {
				pending := make([]byte, chunked.Size())
				epochs := map[string]uint64{}
				for id := range initial {
					// Random dirty pages for this member.
					var recs []checkpoint.PageRecord
					for p := 0; p < pages; p++ {
						if rng.Intn(3) == 0 {
							data := make([]byte, pageSize)
							rng.Read(data)
							recs = append(recs, checkpoint.PageRecord{Index: p, Data: data})
						}
					}
					d := &Delta{VMID: id, Epoch: epoch, Pages: recs}
					if err := mono.ApplyDelta(d); err != nil {
						t.Fatal(err)
					}
					// Chunked: split every page into odd-sized pieces folded
					// at byte offsets, in shuffled order.
					type piece struct {
						off  int
						data []byte
					}
					var pieces []piece
					for _, p := range recs {
						base := p.Index * pageSize
						for at := 0; at < len(p.Data); {
							n := min(1+rng.Intn(13), len(p.Data)-at)
							pieces = append(pieces, piece{base + at, p.Data[at : at+n]})
							at += n
						}
					}
					rng.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })
					for _, pc := range pieces {
						if err := chunked.FoldInto(pending, id, pc.off, pc.data); err != nil {
							t.Fatal(err)
						}
					}
					epochs[id] = epoch
				}
				if err := chunked.CommitPending(pending, epochs); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mono.Parity(), chunked.Parity()) {
					t.Fatalf("tolerance=%d row=%d epoch=%d: chunked parity diverges", tolerance, pi, epoch)
				}
				for id := range initial {
					if mono.Epoch(id) != chunked.Epoch(id) {
						t.Fatalf("epoch bookkeeping diverges for %s", id)
					}
				}
			}
		}
	}
}

func TestCommitPendingRejectsBadEpochAtomically(t *testing.T) {
	initial := map[string][]byte{"a": make([]byte, 64), "b": make([]byte, 64)}
	k, err := NewMKeeper(0, 0, 1, initial)
	if err != nil {
		t.Fatal(err)
	}
	before := k.Parity()
	pending := bytes.Repeat([]byte{0xFF}, 64)
	// "a" is valid (epoch 1), "b" skips ahead — the whole commit must fail
	// without touching parity or epochs.
	err = k.CommitPending(pending, map[string]uint64{"a": 1, "b": 2})
	if err == nil {
		t.Fatal("epoch skip accepted")
	}
	if !bytes.Equal(k.Parity(), before) {
		t.Fatal("failed commit mutated parity")
	}
	if k.Epoch("a") != 0 {
		t.Fatal("failed commit advanced an epoch")
	}
	if err := k.CommitPending(pending, map[string]uint64{"a": 1, "b": 1}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldIntoRejectsBadRanges(t *testing.T) {
	initial := map[string][]byte{"a": make([]byte, 64)}
	k, err := NewMKeeper(0, 0, 1, initial)
	if err != nil {
		t.Fatal(err)
	}
	pending := make([]byte, 64)
	if err := k.FoldInto(pending, "ghost", 0, []byte{1}); err == nil {
		t.Fatal("unknown member accepted")
	}
	if err := k.FoldInto(pending[:32], "a", 0, []byte{1}); err == nil {
		t.Fatal("short pending buffer accepted")
	}
	if err := k.FoldInto(pending, "a", 60, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("out-of-range fold accepted")
	}
	if err := k.FoldInto(pending, "a", -1, []byte{1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}
