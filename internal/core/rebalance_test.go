package core

import (
	"bytes"
	"testing"
)

func TestClusterRebalanceAfterDegradedRecovery(t *testing.T) {
	c := paperCluster(t)
	churn(t, c, 1, 30)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.FailNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("expected degraded recovery on the 4-node layout")
	}
	if c.Layout().Validate() == nil {
		t.Fatal("layout should be degraded")
	}
	// Still degraded while node 2 is down: rebalance must fail (no room).
	if _, err := c.Rebalance(nil); err == nil {
		t.Error("rebalance without repaired node should fail")
	}
	// Repair and rebalance: strict orthogonality returns, live state intact.
	if err := c.RepairNode(2); err != nil {
		t.Fatal(err)
	}
	live := map[string][]byte{}
	for _, name := range c.VMNames() {
		m, _ := c.Machine(name)
		live[name] = m.Image()
	}
	plan, err := c.Rebalance(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("rebalance should have moved something")
	}
	if err := c.Layout().Validate(); err != nil {
		t.Errorf("layout not orthogonal after rebalance: %v", err)
	}
	for _, name := range c.VMNames() {
		m, _ := c.Machine(name)
		if !bytes.Equal(m.Image(), live[name]) {
			t.Errorf("VM %q live state changed by rebalance", name)
		}
	}
	if err := c.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	// The rebalanced cluster keeps working: checkpoint, fail another node.
	churn(t, c, 2, 15)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNode(0); err != nil {
		t.Fatalf("failure after rebalance: %v", err)
	}
	if err := c.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterRebalanceNoopWhenOrthogonal(t *testing.T) {
	c := paperCluster(t)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Rebalance(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Errorf("orthogonal cluster rebalance moved %d things", len(plan.Steps))
	}
}
