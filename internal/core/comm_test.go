package core

import (
	"encoding/binary"
	"fmt"
	"testing"

	"dvdc/internal/cluster"
	"dvdc/internal/comm"
	"dvdc/internal/vm"
)

// The message-passing consistency property of Sec. IV-A: producers stamp
// monotonically increasing sequence numbers into messages and into their own
// memory; consumers record the last sequence received in theirs. Across
// checkpoints, in-flight drains, failures, rollbacks, and recoveries, the
// consumer must never observe a gap or a duplicate.

// seqSend emits the producer's next message and advances its counter
// (page 0 bytes [0:8] hold the counter — part of the checkpointed state).
func seqSend(t *testing.T, c *Cluster, n *comm.Network, producer, consumer string) {
	t.Helper()
	m, err := c.Machine(producer)
	if err != nil {
		t.Fatal(err)
	}
	var next uint64
	m.MutatePage(0, func(p []byte) {
		next = binary.LittleEndian.Uint64(p[:8]) + 1
		binary.LittleEndian.PutUint64(p[:8], next)
	})
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, next)
	if err := n.Send(producer, consumer, payload); err != nil {
		t.Fatal(err)
	}
}

// seqDeliver validates continuity and records the sequence in the consumer.
func seqDeliver(dst *vm.Machine, m comm.Message) error {
	seq := binary.LittleEndian.Uint64(m.Payload)
	var bad error
	dst.MutatePage(0, func(p []byte) {
		last := binary.LittleEndian.Uint64(p[:8])
		if seq != last+1 {
			bad = fmt.Errorf("consumer %s: got seq %d after %d", dst.ID(), seq, last)
			return
		}
		binary.LittleEndian.PutUint64(p[:8], seq)
	})
	return bad
}

func TestMessagingConsistentAcrossFailure(t *testing.T) {
	layout, err := cluster.BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	net := comm.NewNetwork()
	if err := c.AttachNetwork(net, seqDeliver); err != nil {
		t.Fatal(err)
	}
	names := c.VMNames()
	producer, consumer := names[0], names[1]

	// Interval 1: sends, some delivered mid-interval, rest drained by the
	// checkpoint.
	for i := 0; i < 5; i++ {
		seqSend(t, c, net, producer, consumer)
	}
	if _, err := c.Deliver(consumer); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seqSend(t, c, net, producer, consumer)
	}
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if net.InFlight() != 0 {
		t.Fatalf("checkpoint left %d messages in flight", net.InFlight())
	}

	// Interval 2: more sends, left in flight; then the producer's node dies.
	for i := 0; i < 4; i++ {
		seqSend(t, c, net, producer, consumer)
	}
	v, _ := c.Layout().VM(producer)
	if _, err := c.FailNode(v.Node); err != nil {
		t.Fatal(err)
	}
	if net.InFlight() != 0 {
		t.Fatalf("rollback left %d orphan messages", net.InFlight())
	}

	// Post-recovery: both counters rolled back to the committed cut (8 sent
	// = 8 received). Resuming must continue seamlessly.
	pm, _ := c.Machine(producer)
	cm, _ := c.Machine(consumer)
	if got := binary.LittleEndian.Uint64(pm.Page(0)[:8]); got != 8 {
		t.Errorf("producer counter after rollback = %d, want 8", got)
	}
	if got := binary.LittleEndian.Uint64(cm.Page(0)[:8]); got != 8 {
		t.Errorf("consumer counter after rollback = %d, want 8", got)
	}
	for i := 0; i < 6; i++ {
		seqSend(t, c, net, producer, consumer)
	}
	if err := c.CheckpointRound(); err != nil {
		t.Fatalf("post-recovery round (seq continuity) failed: %v", err)
	}
	if got := binary.LittleEndian.Uint64(cm.Page(0)[:8]); got != 14 {
		t.Errorf("consumer counter = %d, want 14", got)
	}
}

func TestMessagingConsumerFailure(t *testing.T) {
	// Kill the CONSUMER's node instead: its received-counter state is
	// reconstructed from parity and must still line up with the producer.
	layout, err := cluster.BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	net := comm.NewNetwork()
	if err := c.AttachNetwork(net, seqDeliver); err != nil {
		t.Fatal(err)
	}
	names := c.VMNames()
	producer, consumer := names[0], names[3]
	for i := 0; i < 7; i++ {
		seqSend(t, c, net, producer, consumer)
	}
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seqSend(t, c, net, producer, consumer)
	}
	v, _ := c.Layout().VM(consumer)
	if _, err := c.FailNode(v.Node); err != nil {
		t.Fatal(err)
	}
	// Continue: the reconstructed consumer expects seq 8 next.
	for i := 0; i < 2; i++ {
		seqSend(t, c, net, producer, consumer)
	}
	if err := c.CheckpointRound(); err != nil {
		t.Fatalf("continuity after consumer reconstruction: %v", err)
	}
	cm, _ := c.Machine(consumer)
	if got := binary.LittleEndian.Uint64(cm.Page(0)[:8]); got != 9 {
		t.Errorf("consumer counter = %d, want 9", got)
	}
}

func TestAttachNetworkValidation(t *testing.T) {
	c := paperCluster(t)
	if err := c.AttachNetwork(nil, seqDeliver); err == nil {
		t.Error("nil network accepted")
	}
	if err := c.AttachNetwork(comm.NewNetwork(), nil); err == nil {
		t.Error("nil deliver accepted")
	}
	if _, err := c.Deliver("x"); err == nil {
		t.Error("Deliver without network accepted")
	}
}
