package core

import (
	"fmt"
	"math"

	"dvdc/internal/failure"
	"dvdc/internal/sim"
)

// Scheme abstracts a checkpointing system's costs for the discrete-event
// engine: how long a coordinated checkpoint suspends execution, and how long
// recovery takes after a given node fails. DVDC, the disk-full baseline, and
// Remus each implement it.
type Scheme interface {
	Name() string
	// CheckpointOverhead is Tov for a checkpoint closing an execution window
	// of the given length (dirty-set dependent).
	CheckpointOverhead(window float64) (float64, error)
	// RecoveryTime is the time from failure detection to resumed execution
	// after the given node fails.
	RecoveryTime(node int) (float64, error)
}

// IntervalPolicy chooses the next execution-window length given the
// previous window and the overhead its checkpoint cost. It enables the
// adaptive checkpointing the paper cites (Yi et al.): when checkpoint cost
// is not constant, the interval should track it.
type IntervalPolicy func(prevWindow, prevOverhead float64) float64

// FixedInterval returns a policy that always picks the same interval.
func FixedInterval(interval float64) IntervalPolicy {
	return func(float64, float64) float64 { return interval }
}

// YoungDalyPolicy adapts the interval to sqrt(2 * lastOverhead * MTBF),
// clamped to [min, max]: the first-order optimum re-derived online from the
// cost actually observed, which converges as the dirty-set behaviour
// stabilizes.
func YoungDalyPolicy(mtbf, min, max float64) IntervalPolicy {
	return func(prevWindow, prevOverhead float64) float64 {
		next := math.Sqrt(2 * prevOverhead * mtbf)
		if next < min {
			next = min
		}
		if next > max {
			next = max
		}
		return next
	}
}

// DegradedRate is an optional Scheme extension: the relative execution rate
// of the job while k nodes are simultaneously out of service (lost VMs are
// re-placed onto survivors, which then time-share). Schemes that do not
// implement it run at full rate regardless — the instant-repair idealization
// of the paper's model.
type DegradedRate interface {
	RateWithDown(k int) float64
}

// Config parameterizes one simulated job run.
type Config struct {
	JobSeconds float64 // fault-free execution length T
	Interval   float64 // checkpoint interval Tint (the initial one, if Policy is set)
	DetectSec  float64 // failure detection delay before recovery starts
	RepairSec  float64 // how long a failed node stays out of service (0 = instant repair)
	Schedule   *failure.NodeSchedule
	Scheme     Scheme
	Policy     IntervalPolicy // optional: adapts the interval between windows
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.JobSeconds <= 0 || math.IsNaN(c.JobSeconds) {
		return fmt.Errorf("core: invalid job length %v", c.JobSeconds)
	}
	if c.Interval <= 0 || math.IsNaN(c.Interval) {
		return fmt.Errorf("core: invalid checkpoint interval %v", c.Interval)
	}
	if c.DetectSec < 0 {
		return fmt.Errorf("core: negative detection delay %v", c.DetectSec)
	}
	if c.Schedule == nil {
		return fmt.Errorf("core: no failure schedule")
	}
	if c.Scheme == nil {
		return fmt.Errorf("core: no scheme")
	}
	return nil
}

// Result reports one simulated run.
type Result struct {
	Completion   float64 // wall-clock seconds to finish the job
	Ratio        float64 // Completion / JobSeconds
	Checkpoints  int
	Failures     int
	LostWork     float64 // execution seconds redone due to rollbacks
	OverheadTime float64 // seconds spent inside checkpoint windows
	RecoveryTime float64 // seconds spent detecting + recovering
	DegradedTime float64 // wall-clock seconds executed below full rate
}

// runPhase is the engine's current activity.
type runPhase int

const (
	phaseRunning runPhase = iota // executing an open window
	phaseCkpt                    // inside a checkpoint's overhead
	phaseRecover                 // detecting + recovering from a failure
)

// engineState is the run's mutable state, driven by sim events.
type engineState struct {
	eng       *sim.Engine
	cfg       Config
	committed float64 // work safely behind the last committed checkpoint
	segStart  float64 // wall time the current execution window opened
	segWork   float64 // work this window will commit
	phase     runPhase
	interval  float64 // current window length target (policy-adapted)
	downUntil map[int]float64
	rate      float64 // execution rate of the current window
	ckptTimer *sim.Timer
	ckptDone  *sim.Timer
	recTimer  *sim.Timer
	res       Result
	err       error
	nextFail  failure.Event
}

// Run simulates the job to completion and reports the result. The simulation
// alternates execution windows of Config.Interval (shorter for the final
// stretch) with checkpoint windows of scheme-dependent overhead; failures
// from the schedule interrupt either window, cost detection plus recovery,
// and roll work back to the last committed checkpoint. A failure during
// recovery restarts recovery. With RepairSec = 0 nodes return to service
// immediately after recovery (the analytical model's idealization); with a
// positive RepairSec they stay out for that long and, if the scheme
// implements DegradedRate, execution slows to the surviving fraction.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg.Schedule.Reset()
	s := &engineState{eng: sim.New(1), cfg: cfg, interval: cfg.Interval,
		downUntil: map[int]float64{}, rate: 1}
	s.nextFail = cfg.Schedule.Next()
	s.scheduleFailure()
	s.beginWindow()
	s.eng.Run()
	if s.err != nil {
		return Result{}, s.err
	}
	s.res.Completion = s.eng.Now()
	s.res.Ratio = s.res.Completion / cfg.JobSeconds
	return s.res, nil
}

// scheduleFailure arms the next failure event if one is pending.
func (s *engineState) scheduleFailure() {
	for !math.IsInf(s.nextFail.Time, 1) && s.nextFail.Time < s.eng.Now() {
		// Failures that "occurred" while the node was already being repaired
		// are absorbed by the repair (the schedule is memoryless anyway).
		s.nextFail = s.cfg.Schedule.Next()
	}
	if math.IsInf(s.nextFail.Time, 1) {
		return
	}
	ev := s.nextFail
	s.eng.At(ev.Time, func() { s.onFailure(ev.Node) })
	s.nextFail = s.cfg.Schedule.Next()
}

// currentRate returns the execution rate given how many nodes are still
// out of service at the current time.
func (s *engineState) currentRate() float64 {
	k := 0
	for n, until := range s.downUntil {
		if until > s.eng.Now() {
			k++
		} else {
			delete(s.downUntil, n)
		}
	}
	if k == 0 {
		return 1
	}
	if dr, ok := s.cfg.Scheme.(DegradedRate); ok {
		if r := dr.RateWithDown(k); r > 0 && r <= 1 {
			return r
		}
	}
	return 1
}

// beginWindow opens the next execution window, scheduling its checkpoint.
// The window's execution rate is sampled at its start (windows are short
// relative to repair times, so mid-window repairs are approximated).
func (s *engineState) beginWindow() {
	remaining := s.cfg.JobSeconds - s.committed
	if remaining <= 0 {
		s.eng.Halt()
		return
	}
	s.segStart = s.eng.Now()
	s.segWork = math.Min(s.interval, remaining)
	s.phase = phaseRunning
	s.rate = s.currentRate()
	if s.rate < 1 {
		s.res.DegradedTime += s.segWork / s.rate
	}
	final := s.segWork >= remaining-1e-12
	s.ckptTimer = s.eng.After(s.segWork/s.rate, func() {
		if final {
			// The job ends inside this window; no checkpoint needed after
			// the last piece of work.
			s.committed = s.cfg.JobSeconds
			s.eng.Halt()
			return
		}
		s.startCheckpoint()
	})
}

// startCheckpoint suspends execution for the scheme's overhead.
func (s *engineState) startCheckpoint() {
	ov, err := s.cfg.Scheme.CheckpointOverhead(s.segWork)
	if err != nil {
		s.fail(err)
		return
	}
	s.phase = phaseCkpt
	s.ckptDone = s.eng.After(ov, func() {
		s.committed += s.segWork
		s.res.Checkpoints++
		s.res.OverheadTime += ov
		if s.cfg.Policy != nil {
			if next := s.cfg.Policy(s.segWork, ov); next > 0 {
				s.interval = next
			}
		}
		s.beginWindow()
	})
}

// onFailure handles a node failure in any state.
func (s *engineState) onFailure(node int) {
	if s.eng.Halted() {
		return
	}
	s.res.Failures++
	// Cancel whatever was in flight; uncommitted work is lost.
	if s.ckptTimer != nil {
		s.ckptTimer.Cancel()
	}
	if s.ckptDone != nil {
		s.ckptDone.Cancel()
	}
	if s.recTimer != nil {
		s.recTimer.Cancel()
	}
	switch s.phase {
	case phaseCkpt:
		// The whole window's work plus partial checkpoint time is lost.
		s.res.LostWork += s.segWork
	case phaseRunning:
		s.res.LostWork += (s.eng.Now() - s.segStart) * s.rate
	case phaseRecover:
		// A failure during recovery restarts recovery; no additional work
		// was at risk.
	}
	s.phase = phaseRecover
	rec, err := s.cfg.Scheme.RecoveryTime(node)
	if err != nil {
		s.fail(err)
		return
	}
	total := s.cfg.DetectSec + rec
	s.res.RecoveryTime += total
	if s.cfg.RepairSec > 0 {
		s.downUntil[node] = s.eng.Now() + total + s.cfg.RepairSec
	}
	s.recTimer = s.eng.After(total, s.beginWindow)
	s.scheduleFailure()
}

func (s *engineState) fail(err error) {
	s.err = err
	s.eng.Halt()
}
