// Package core is DVDC itself: the distributed virtual diskless
// checkpointing protocol and the discrete-event engine that measures it.
//
// The package has two halves. The byte-real half (Member, Keeper) implements
// the actual data path: members capture incremental checkpoints of their VM,
// keep the last committed image locally for rollback, and ship XOR deltas of
// the changed pages to their group's parity keeper, which patches its parity
// block RAID-5-small-write style without ever holding member images. On a
// failure, the survivors' committed images plus the parity block reconstruct
// the lost VM bit-exactly. The TCP runtime (internal/runtime) drives exactly
// this code over the network.
//
// The timing half (Scheme, Engine in engine.go) is the discrete-event
// simulation used to corroborate the paper's Section V model and to
// regenerate its evaluation figures.
package core

import (
	"fmt"

	"dvdc/internal/checkpoint"
	"dvdc/internal/parity"
	"dvdc/internal/vm"
)

// Delta is the RAID-5 small-write update a member sends its parity keeper
// for one checkpoint epoch: for every page the checkpoint touched, the XOR
// of the page's previous committed content and its new content.
type Delta struct {
	VMID  string
	Epoch uint64
	Pages []checkpoint.PageRecord // Data = old XOR new, len = page size
}

// PayloadBytes is the wire size of the delta's page data.
func (d *Delta) PayloadBytes() int64 {
	var n int64
	for _, p := range d.Pages {
		n += int64(len(p.Data))
	}
	return n
}

// Member is the per-VM state on its hosting node: the running machine plus
// the last committed checkpoint image, kept locally so rollback never
// touches the network (the essence of diskless checkpointing).
type Member struct {
	machine   *vm.Machine
	committed []byte // image as of the last committed checkpoint
	epoch     uint64 // protocol epoch of the committed image (0 = initial)
}

// NewMember wraps a machine and takes its initial full checkpoint (protocol
// epoch 0), which the caller must feed to the group's Keeper as the base for
// parity. The protocol epoch is the member's own counter, deliberately
// independent of vm.Machine's dirty-tracking epoch: a machine rebuilt during
// recovery starts a fresh dirty-tracking history but resumes the protocol
// epoch of the image it was restored to.
func NewMember(m *vm.Machine) (*Member, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil machine")
	}
	mem := &Member{machine: m}
	mem.committed = m.Image()
	m.BeginEpoch()
	return mem, nil
}

// Machine returns the underlying VM.
func (mem *Member) Machine() *vm.Machine { return mem.machine }

// Epoch returns the committed checkpoint epoch.
func (mem *Member) Epoch() uint64 { return mem.epoch }

// CommittedImage returns a copy of the last committed checkpoint image;
// during recovery this is what the member contributes to reconstruction.
func (mem *Member) CommittedImage() []byte {
	return append([]byte(nil), mem.committed...)
}

// CommittedLen returns the committed image size without copying it.
func (mem *Member) CommittedLen() int { return len(mem.committed) }

// CommittedRange copies bytes [off, off+n) of the committed image into a
// fresh slice — the chunked read path serves image chunks with this instead
// of materializing a full CommittedImage copy per request.
func (mem *Member) CommittedRange(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(mem.committed) {
		return nil, fmt.Errorf("core: committed range [%d,+%d) outside %d-byte image", off, n, len(mem.committed))
	}
	return append([]byte(nil), mem.committed[off:off+n]...), nil
}

// CaptureDelta closes the current epoch: it snapshots the dirty pages,
// computes their XOR against the committed image, advances the committed
// image to the new state, and returns the delta for the parity keeper.
// If the keeper never acknowledges, the caller must roll the member back
// with RestoreImage(oldImage) — the two-phase protocol in the runtime
// handles that; in-process callers are expected not to fail.
func (mem *Member) CaptureDelta() (*Delta, error) {
	return mem.CaptureDeltaInto(nil)
}

// CaptureDeltaInto is CaptureDelta with a caller-supplied allocator for the
// per-page XOR buffers (e.g. a buffer pool); nil means plain make. alloc(n)
// must return a slice of length n, which may hold stale bytes — every byte is
// overwritten. The caller owns the returned buffers: if they are pooled, it
// must return them once the delta is dead (after commit, or after
// UndoCapture on abort) and never sooner — UndoCapture reads them.
func (mem *Member) CaptureDeltaInto(alloc func(int) []byte) (*Delta, error) {
	m := mem.machine
	ps := m.PageSize()
	dirty := m.DirtyPages()
	mem.epoch++
	d := &Delta{VMID: m.ID(), Epoch: mem.epoch, Pages: make([]checkpoint.PageRecord, 0, len(dirty))}
	for _, i := range dirty {
		cur := m.Page(i)
		old := mem.committed[i*ps : (i+1)*ps]
		var x []byte
		if alloc != nil {
			x = alloc(ps)
		} else {
			x = make([]byte, ps)
		}
		for j := range x {
			x[j] = cur[j] ^ old[j]
		}
		d.Pages = append(d.Pages, checkpoint.PageRecord{Index: i, Data: x})
		copy(old, cur) // advance committed image in place
	}
	m.BeginEpoch()
	return d, nil
}

// UndoCapture reverses a CaptureDelta whose checkpoint round was aborted:
// the committed image steps back (the XOR delta is self-inverting) and the
// captured pages are re-marked dirty so the next capture includes them. The
// delta must be the one most recently returned by CaptureDelta.
func (mem *Member) UndoCapture(d *Delta) error {
	if d == nil || d.Epoch != mem.epoch {
		return fmt.Errorf("core: undo of epoch %v, member is at %d", d, mem.epoch)
	}
	ps := mem.machine.PageSize()
	for _, p := range d.Pages {
		if len(p.Data) != ps || p.Index < 0 || (p.Index+1)*ps > len(mem.committed) {
			return fmt.Errorf("core: undo page %d malformed", p.Index)
		}
		old := mem.committed[p.Index*ps : (p.Index+1)*ps]
		for j := range old {
			old[j] ^= p.Data[j]
		}
		mem.machine.MarkDirty(p.Index)
	}
	mem.epoch--
	return nil
}

// Rollback restores the machine to the last committed checkpoint.
func (mem *Member) Rollback() error {
	return mem.machine.LoadImage(mem.committed)
}

// RestoreImage replaces both the committed image and the machine state, the
// operation a reconstructed VM performs when it is respawned on a new node.
func (mem *Member) RestoreImage(img []byte, epoch uint64) error {
	if err := mem.machine.LoadImage(img); err != nil {
		return err
	}
	mem.committed = append(mem.committed[:0], img...)
	mem.epoch = epoch
	return nil
}

// Keeper maintains one RAID group's parity block on the group's parity
// node. It never stores member images — only their XOR — which is what
// distinguishes parity checkpointing from replication (and is why the
// memory overhead is one image per group rather than one per VM).
type Keeper struct {
	group    int
	pageSize int
	numPages int
	parity   []byte
	epochs   map[string]uint64 // member -> epoch folded into parity
}

// NewKeeper builds the keeper from the members' initial full images.
func NewKeeper(group int, initial map[string][]byte) (*Keeper, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("core: keeper for group %d has no members", group)
	}
	var par []byte
	epochs := make(map[string]uint64, len(initial))
	for id, img := range initial {
		if par == nil {
			par = append([]byte(nil), img...)
		} else {
			if len(img) != len(par) {
				return nil, fmt.Errorf("core: member %q image %d bytes, group uses %d", id, len(img), len(par))
			}
			if err := parity.XORInto(par, img); err != nil {
				return nil, err
			}
		}
		epochs[id] = 0
	}
	return &Keeper{group: group, parity: par, epochs: epochs}, nil
}

// Group returns the group index.
func (k *Keeper) Group() int { return k.group }

// ParityBytes returns the parity block size.
func (k *Keeper) ParityBytes() int64 { return int64(len(k.parity)) }

// Parity returns a copy of the parity block (for re-homing to another node).
func (k *Keeper) Parity() []byte { return append([]byte(nil), k.parity...) }

// ApplyDelta folds one member's checkpoint delta into the parity block.
// Deltas must arrive in epoch order per member.
func (k *Keeper) ApplyDelta(d *Delta) error {
	prev, ok := k.epochs[d.VMID]
	if !ok {
		return fmt.Errorf("core: keeper group %d got delta from unknown member %q", k.group, d.VMID)
	}
	if d.Epoch != prev+1 {
		return fmt.Errorf("core: keeper group %d member %q epoch %d after %d", k.group, d.VMID, d.Epoch, prev)
	}
	for _, p := range d.Pages {
		off := p.Index * len(p.Data)
		if p.Index < 0 || off+len(p.Data) > len(k.parity) {
			return fmt.Errorf("core: delta page %d out of parity range", p.Index)
		}
		if err := parity.XORInto(k.parity[off:off+len(p.Data)], p.Data); err != nil {
			return err
		}
	}
	k.epochs[d.VMID] = d.Epoch
	return nil
}

// Reconstruct rebuilds the image of lost member lostID from the surviving
// members' committed images. Every member other than lostID must be present
// in survivors, and all members must have the same committed epoch (the
// coordinator's two-phase commit guarantees this).
func (k *Keeper) Reconstruct(lostID string, survivors map[string][]byte) ([]byte, error) {
	if _, ok := k.epochs[lostID]; !ok {
		return nil, fmt.Errorf("core: keeper group %d does not protect %q", k.group, lostID)
	}
	blocks := make([][]byte, 0, len(k.epochs))
	blocks = append(blocks, k.parity)
	for id := range k.epochs {
		if id == lostID {
			continue
		}
		img, ok := survivors[id]
		if !ok {
			return nil, fmt.Errorf("core: reconstruction of %q missing survivor %q", lostID, id)
		}
		if len(img) != len(k.parity) {
			return nil, fmt.Errorf("core: survivor %q image %d bytes, parity %d", id, len(img), len(k.parity))
		}
		blocks = append(blocks, img)
	}
	return parity.ReconstructOne(blocks...)
}

// SetEpochs overrides the per-member epoch bookkeeping; the distributed
// runtime uses it when a keeper is rebuilt mid-run from committed images
// whose protocol epochs are nonzero. Every keeper member must be covered.
func (k *Keeper) SetEpochs(epochs map[string]uint64) error {
	for id := range k.epochs {
		e, ok := epochs[id]
		if !ok {
			return fmt.Errorf("core: SetEpochs missing member %q", id)
		}
		k.epochs[id] = e
	}
	return nil
}

// Members returns the member IDs the keeper protects.
func (k *Keeper) Members() []string {
	out := make([]string, 0, len(k.epochs))
	for id := range k.epochs {
		out = append(out, id)
	}
	return out
}

// Epoch returns the last epoch folded in for a member (0 if unknown).
func (k *Keeper) Epoch(id string) uint64 { return k.epochs[id] }
