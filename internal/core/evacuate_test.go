package core

import (
	"bytes"
	"testing"

	"dvdc/internal/cluster"
	"dvdc/internal/migrate"
	"dvdc/internal/vm"
)

func TestEvacuatePreservesLiveAndCommittedState(t *testing.T) {
	layout, err := cluster.BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, c, 1, 30)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	churn(t, c, 2, 10) // live (uncommitted) changes must survive evacuation

	live := map[string][]byte{}
	for _, name := range c.VMNames() {
		m, _ := c.Machine(name)
		live[name] = m.Image()
	}

	rep, err := c.EvacuateNode(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) != len(layout.VMsOnNode(0))+0 && len(rep.Moves) == 0 {
		t.Fatalf("no moves in report: %+v", rep)
	}
	if rep.Degraded {
		t.Error("evacuation with spare nodes should preserve orthogonality")
	}
	// Unlike failure recovery there is NO rollback: live state is intact.
	for _, name := range c.VMNames() {
		m, _ := c.Machine(name)
		if !bytes.Equal(m.Image(), live[name]) {
			t.Errorf("VM %q live state changed by evacuation", name)
		}
	}
	if got := c.Layout().VMsOnNode(0); len(got) != 0 {
		t.Errorf("node 0 still hosts %v", got)
	}
	if got := c.Layout().ParityGroupsOnNode(0); len(got) != 0 {
		t.Errorf("node 0 still holds parity %v", got)
	}
	if err := c.VerifyParity(); err != nil {
		t.Errorf("parity invalid after evacuation: %v", err)
	}
}

func TestEvacuateThenCheckpointAndFail(t *testing.T) {
	// The moved VMs must keep participating: their uncommitted dirt gets
	// captured in the next round, and a later real failure still recovers.
	layout, err := cluster.BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, c, 3, 20)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	churn(t, c, 4, 15)
	if _, err := c.EvacuateNode(2, nil); err != nil {
		t.Fatal(err)
	}
	// The dirty pages from before the evacuation must enter this round.
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	committed := map[string][]byte{}
	for _, name := range c.VMNames() {
		m, _ := c.Machine(name)
		committed[name] = m.Image()
	}
	// Now a node that received evacuated VMs fails for real.
	victim := c.Layout().VMs[0].Node
	if _, err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	for _, name := range c.VMNames() {
		m, _ := c.Machine(name)
		if !bytes.Equal(m.Image(), committed[name]) {
			t.Errorf("VM %q lost state after post-evacuation failure", name)
		}
	}
}

func TestEvacuateWithDedupIndex(t *testing.T) {
	layout, err := cluster.BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Most pages are still zero: an index holding a zero machine dedups them.
	churn(t, c, 5, 5)
	idx := migrate.NewHashIndex()
	zm, _ := c.Machine(c.VMNames()[0])
	_ = zm
	zero, err := newZeroMachine(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	idx.AddMachine(zero)
	rep, err := c.EvacuateNode(1, idx)
	if err != nil {
		t.Fatal(err)
	}
	var deduped int64
	for _, mv := range rep.Moves {
		deduped += mv.Stats.BytesDeduped
	}
	if deduped == 0 {
		t.Error("expected some dedup against the zero-page index")
	}
	if err := c.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

func TestEvacuateDegradedOnPaperLayout(t *testing.T) {
	// The 4-node paper layout has no spare node: evacuation succeeds but is
	// degraded, like recovery.
	c := paperCluster(t)
	churn(t, c, 6, 10)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.EvacuateNode(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Error("4-node evacuation should be degraded")
	}
	if err := c.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

func TestEvacuateValidation(t *testing.T) {
	c := paperCluster(t)
	if _, err := c.EvacuateNode(-1, nil); err == nil {
		t.Error("negative node should fail")
	}
	if _, err := c.EvacuateNode(99, nil); err == nil {
		t.Error("out-of-range node should fail")
	}
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EvacuateNode(0, nil); err == nil {
		t.Error("evacuating a down node should fail")
	}
}

// newZeroMachine builds a fresh zeroed machine for dedup indexing.
func newZeroMachine(pages, pageSize int) (*vm.Machine, error) {
	return vm.NewMachine("zero-template", pages, pageSize)
}
