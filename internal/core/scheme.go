package core

import (
	"fmt"
	"math"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/vm"
)

// DVDCScheme is DVDC's timing model for the discrete-event engine: the
// overhead of a distributed diskless checkpoint (capture + balanced exchange
// + XOR) and the recovery path (parity reconstruction over the fabric +
// local rollbacks).
type DVDCScheme struct {
	Overheads *analytic.Diskless
	Layout    *cluster.Layout
	Spec      vm.Spec
}

// NewDVDCScheme assembles the scheme from a platform, layout and VM spec.
func NewDVDCScheme(p analytic.Platform, layout *cluster.Layout, spec vm.Spec) (*DVDCScheme, error) {
	ov, err := analytic.NewDiskless(p, layout, spec)
	if err != nil {
		return nil, err
	}
	return &DVDCScheme{Overheads: ov, Layout: layout, Spec: spec}, nil
}

// Name implements Scheme.
func (s *DVDCScheme) Name() string { return "DVDC" }

// CheckpointOverhead implements Scheme.
func (s *DVDCScheme) CheckpointOverhead(window float64) (float64, error) {
	return s.Overheads.Overhead(window)
}

// RecoveryTime implements Scheme: reconstructing each lost VM pulls the
// surviving group images plus parity (groupSize blocks of the full image)
// into the target node, XORs them, and loads the result; surviving VMs roll
// back from their local committed images in parallel. Reconstructions of
// different VMs proceed in parallel on distinct targets, so the per-VM cost
// bounds the phase.
func (s *DVDCScheme) RecoveryTime(node int) (float64, error) {
	if node < 0 || node >= s.Layout.Nodes {
		return 0, fmt.Errorf("core: node %d out of range [0,%d)", node, s.Layout.Nodes)
	}
	img := float64(s.Spec.ImageBytes)
	p := s.Overheads.Platform
	lost := s.Layout.VMsOnNode(node)
	if len(lost) == 0 {
		// Only parity blocks were lost: rebuild them from member images.
		rebuild := 0.0
		for range s.Layout.ParityGroupsOnNode(node) {
			rebuild = math.Max(rebuild, img/p.XORBps)
		}
		return p.BaseSec + rebuild, nil
	}
	// Group size of the lost VMs' groups (uniform in built layouts).
	v, _ := s.Layout.VM(lost[0])
	g := s.Layout.Groups[v.Group]
	blocks := len(g.Members) // g-1 survivors + 1 parity
	fanIn, err := p.Fabric.FanInTime(blocks, img, p.Fabric.NodeLink)
	if err != nil {
		return 0, err
	}
	xor := float64(blocks) * img / p.XORBps
	load := img / p.CaptureBps
	rollback := img / p.CaptureBps // survivors, in parallel with reconstruction
	return p.BaseSec + math.Max(fanIn+xor+load, rollback), nil
}

// RateWithDown implements DegradedRate: DVDC re-places lost VMs onto the
// survivors, which time-share, so the job proceeds at the surviving compute
// fraction until repair.
func (s *DVDCScheme) RateWithDown(k int) float64 {
	n := s.Layout.Nodes
	if k >= n {
		return 0
	}
	return float64(n-k) / float64(n)
}

var (
	_ Scheme       = (*DVDCScheme)(nil)
	_ DegradedRate = (*DVDCScheme)(nil)
)
