package core

import (
	"fmt"
	"sort"
	"sync"

	"dvdc/internal/cluster"
	"dvdc/internal/comm"
	"dvdc/internal/vm"
)

// Cluster is the byte-real, in-process DVDC cluster: real vm.Machines placed
// per a cluster.Layout, one Member per VM, and one MKeeper per parity block
// of every RAID group, each on its layout-assigned parity node. With
// tolerance 1 the parity code is plain XOR; higher tolerances use the
// GF(256) RS generalization, so the cluster survives any simultaneous loss
// of up to `tolerance` physical nodes. It executes coordinated checkpoint
// rounds and full failure-recovery cycles, and is the reference
// implementation the TCP runtime mirrors over the network.
type Cluster struct {
	layout  *cluster.Layout
	members map[string]*Member
	keepers map[int][]*MKeeper // group -> one keeper per parity block
	down    map[int]bool
	rounds  uint64
	stats   ClusterStats

	network *comm.Network
	deliver DeliverFunc
}

// DeliverFunc applies one in-flight message to its destination machine:
// the application-defined "receive" (e.g. write the payload into a mailbox
// page). It runs during the coordinated checkpoint's drain phase and during
// explicit Deliver calls.
type DeliverFunc func(dst *vm.Machine, m comm.Message) error

// ClusterStats counts protocol work.
type ClusterStats struct {
	Rounds           uint64
	DeltaBytes       int64 // checkpoint delta payload shipped to keepers
	Reconstructions  int   // lost VMs rebuilt from parity
	ReconstructBytes int64 // survivor image bytes read during reconstructions
	ParityRebuilds   int   // keepers recomputed after losing their node
	Rollbacks        int   // member rollbacks performed during recoveries
}

// NewCluster builds machines for every VM in the layout (pagesPerVM pages of
// pageSize bytes each) and initializes members and keepers. Every group's
// parity blocks are computed from its members' initial full checkpoints.
func NewCluster(layout *cluster.Layout, pagesPerVM, pageSize int) (*Cluster, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil layout")
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		layout:  layout,
		members: make(map[string]*Member, len(layout.VMs)),
		keepers: make(map[int][]*MKeeper, len(layout.Groups)),
		down:    map[int]bool{},
	}
	for _, v := range layout.VMs {
		m, err := vm.NewMachine(v.Name, pagesPerVM, pageSize)
		if err != nil {
			return nil, err
		}
		mem, err := NewMember(m)
		if err != nil {
			return nil, err
		}
		c.members[v.Name] = mem
	}
	for _, g := range layout.Groups {
		initial := make(map[string][]byte, len(g.Members))
		for _, name := range g.Members {
			initial[name] = c.members[name].CommittedImage()
		}
		ks := make([]*MKeeper, layout.Tolerance)
		for i := range ks {
			k, err := NewMKeeper(g.Index, i, layout.Tolerance, initial)
			if err != nil {
				return nil, err
			}
			ks[i] = k
		}
		c.keepers[g.Index] = ks
	}
	return c, nil
}

// Layout exposes the (live, mutated-by-recovery) layout.
func (c *Cluster) Layout() *cluster.Layout { return c.layout }

// Stats returns protocol counters.
func (c *Cluster) Stats() ClusterStats { return c.stats }

// Machine returns the running machine for a VM so workloads can execute.
func (c *Cluster) Machine(name string) (*vm.Machine, error) {
	mem, ok := c.members[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown VM %q", name)
	}
	return mem.Machine(), nil
}

// VMNames returns every VM name in a stable order.
func (c *Cluster) VMNames() []string {
	out := make([]string, 0, len(c.members))
	for name := range c.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AttachNetwork couples an inter-VM message network to the cluster. The
// coordinated checkpoint then implements the paper's Sec. IV-A consistency
// step: all in-flight messages drain into their receivers before capture,
// so the checkpointed cut has empty channels; a recovery discards the
// post-checkpoint in-flight messages along with the rolled-back sender
// state, which keeps sends and receives exactly consistent.
func (c *Cluster) AttachNetwork(n *comm.Network, deliver DeliverFunc) error {
	if n == nil || deliver == nil {
		return fmt.Errorf("core: AttachNetwork needs a network and a deliver function")
	}
	c.network = n
	c.deliver = deliver
	return nil
}

// Deliver flushes the pending messages for one VM into its machine (a
// mid-interval receive, outside any checkpoint).
func (c *Cluster) Deliver(dst string) (int, error) {
	if c.network == nil {
		return 0, fmt.Errorf("core: no network attached")
	}
	m, err := c.Machine(dst)
	if err != nil {
		return 0, err
	}
	return c.network.DeliverTo(dst, func(msg comm.Message) error {
		return c.deliver(m, msg)
	})
}

// drainNetwork empties every channel into the receivers: the quiesce step.
func (c *Cluster) drainNetwork() error {
	if c.network == nil {
		return nil
	}
	_, err := c.network.DrainAll(func(msg comm.Message) error {
		m, merr := c.Machine(msg.Dst)
		if merr != nil {
			return merr
		}
		return c.deliver(m, msg)
	})
	return err
}

// CheckpointRound runs one coordinated checkpoint: in-flight messages drain
// into their receivers (the Sec. IV-A consistency step), then every member
// captures its delta and every parity block of its group folds it in.
// In-process this cannot partially fail, so commit is immediate; the network
// runtime wraps the same sequence in prepare/commit.
func (c *Cluster) CheckpointRound() error {
	if err := c.drainNetwork(); err != nil {
		return err
	}
	for _, g := range c.layout.Groups {
		ks := c.keepers[g.Index]
		for _, name := range g.Members {
			d, err := c.members[name].CaptureDelta()
			if err != nil {
				return fmt.Errorf("core: capture %q: %w", name, err)
			}
			for _, k := range ks {
				if err := k.ApplyDelta(d); err != nil {
					return fmt.Errorf("core: apply delta of %q: %w", name, err)
				}
			}
			c.stats.DeltaBytes += d.PayloadBytes()
		}
	}
	c.rounds++
	c.stats.Rounds = c.rounds
	return nil
}

// CheckpointRoundConcurrent is CheckpointRound with one goroutine per RAID
// group: groups share no members and no keepers, so their capture+fold work
// is embarrassingly parallel — the in-process realization of Sec. IV-B's
// claim that distributing parity "should relieve the CPU burden by a factor
// linear in the amount of machines". Stats merge after the barrier.
func (c *Cluster) CheckpointRoundConcurrent() error {
	if err := c.drainNetwork(); err != nil {
		return err
	}
	type result struct {
		bytes int64
		err   error
	}
	results := make([]result, len(c.layout.Groups))
	var wg sync.WaitGroup
	for gi := range c.layout.Groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			g := c.layout.Groups[gi]
			ks := c.keepers[g.Index]
			var total int64
			for _, name := range g.Members {
				d, err := c.members[name].CaptureDelta()
				if err != nil {
					results[gi] = result{err: fmt.Errorf("core: capture %q: %w", name, err)}
					return
				}
				for _, k := range ks {
					if err := k.ApplyDelta(d); err != nil {
						results[gi] = result{err: fmt.Errorf("core: apply delta of %q: %w", name, err)}
						return
					}
				}
				total += d.PayloadBytes()
			}
			results[gi] = result{bytes: total}
		}(gi)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		c.stats.DeltaBytes += r.bytes
	}
	c.rounds++
	c.stats.Rounds = c.rounds
	return nil
}

// FailureReport describes a completed recovery.
type FailureReport struct {
	Nodes    []int
	Plan     *cluster.Plan
	LostVMs  []string
	Degraded bool
}

// Node returns the first failed node (convenience for single-node reports).
func (r *FailureReport) Node() int {
	if len(r.Nodes) == 0 {
		return -1
	}
	return r.Nodes[0]
}

// FailNode simulates the loss of one physical node; see FailNodes.
func (c *Cluster) FailNode(n int) (*FailureReport, error) { return c.FailNodes(n) }

// FailNodes simulates the simultaneous loss of the given physical nodes and
// performs the full DVDC recovery: every VM hosted on them is reconstructed
// from its group's surviving committed images plus the surviving parity
// blocks (up to `tolerance` losses per group); keepers homed on failed nodes
// are recomputed from their members' committed images; every surviving VM
// rolls back to its committed checkpoint; and the layout is updated per the
// recovery plan. On return the cluster is consistent at the last committed
// epoch.
func (c *Cluster) FailNodes(ns ...int) (*FailureReport, error) {
	if len(ns) == 0 {
		return &FailureReport{Plan: &cluster.Plan{}}, nil
	}
	for _, n := range ns {
		if c.down[n] {
			return nil, fmt.Errorf("core: node %d is already down", n)
		}
	}
	if !c.layout.Survives(ns...) {
		return nil, fmt.Errorf("core: failure of nodes %v exceeds parity tolerance (data loss)", ns)
	}
	// Snapshot parity homes before recovery mutates the layout.
	parityHomes := map[int][]int{}
	for _, g := range c.layout.Groups {
		parityHomes[g.Index] = append([]int(nil), g.ParityNodes...)
	}
	down := append([]int(nil), ns...)
	for d := range c.down {
		down = append(down, d)
	}
	plan, err := c.layout.PlanRecovery(down...)
	if err != nil {
		return nil, err
	}
	newDown := map[int]bool{}
	for _, n := range ns {
		newDown[n] = true
	}
	report := &FailureReport{Nodes: append([]int(nil), ns...), Plan: plan, Degraded: plan.Degraded}
	sort.Ints(report.Nodes)

	// Phase 1: reconstruct lost VMs group by group. A group may lose up to
	// `tolerance` members at once; gather all of its losses first.
	lostByGroup := map[int][]string{}
	for _, s := range plan.Steps {
		if s.Kind == cluster.RestoreVM {
			lostByGroup[s.Group] = append(lostByGroup[s.Group], s.VM)
			report.LostVMs = append(report.LostVMs, s.VM)
		}
	}
	sort.Strings(report.LostVMs)
	for gi, lost := range lostByGroup {
		g := c.layout.Groups[gi]
		survivors := map[string][]byte{}
		lostSet := map[string]bool{}
		for _, id := range lost {
			lostSet[id] = true
		}
		for _, name := range g.Members {
			if lostSet[name] {
				continue
			}
			img := c.members[name].CommittedImage()
			survivors[name] = img
			c.stats.ReconstructBytes += int64(len(img))
		}
		parityBlocks := map[int][]byte{}
		for i, k := range c.keepers[gi] {
			home := parityHomes[gi][i]
			if newDown[home] || c.down[home] {
				continue // this parity block died with its node
			}
			parityBlocks[i] = k.Parity()
		}
		rebuilt, err := ReconstructMembers(c.layout.Tolerance, g.Members, survivors, parityBlocks, lost)
		if err != nil {
			return nil, fmt.Errorf("core: reconstruct group %d: %w", gi, err)
		}
		for _, name := range lost {
			img, ok := rebuilt[name]
			if !ok {
				return nil, fmt.Errorf("core: group %d reconstruction missing %q", gi, name)
			}
			old := c.members[name].Machine()
			fresh, err := vm.NewMachine(name, old.NumPages(), old.PageSize())
			if err != nil {
				return nil, err
			}
			mem, err := NewMember(fresh)
			if err != nil {
				return nil, err
			}
			if err := mem.RestoreImage(img, c.members[name].Epoch()); err != nil {
				return nil, err
			}
			c.members[name] = mem
			c.stats.Reconstructions++
		}
	}

	// Phase 2: rebuild parity blocks that lived on failed nodes from their
	// members' committed images (members are all intact now).
	for _, s := range plan.Steps {
		if s.Kind != cluster.RehomeParity {
			continue
		}
		gi := s.Group
		g := c.layout.Groups[gi]
		// Identify which parity indices of this group died and are not yet
		// rebuilt this pass.
		for i, home := range parityHomes[gi] {
			if !newDown[home] {
				continue
			}
			initial := make(map[string][]byte, len(g.Members))
			epochs := make(map[string]uint64, len(g.Members))
			for _, name := range g.Members {
				initial[name] = c.members[name].CommittedImage()
				epochs[name] = c.members[name].Epoch()
			}
			nk, err := NewMKeeper(gi, i, c.layout.Tolerance, initial)
			if err != nil {
				return nil, err
			}
			if err := nk.SetEpochs(epochs); err != nil {
				return nil, err
			}
			c.keepers[gi][i] = nk
			c.stats.ParityRebuilds++
			parityHomes[gi][i] = -1 // consumed: don't rebuild twice
			break                   // one RehomeParity step handles one block
		}
	}

	// Phase 3: global rollback — the paper's recovery semantics: "DVDC
	// requires all nodes to roll back to their previous checkpoints". The
	// channels drop their in-flight messages with it: they were sent after
	// the committed cut, and their senders are rolling back to before the
	// sends, so discarding them is what keeps the cut consistent.
	if c.network != nil {
		c.network.Clear()
	}
	lostSet := map[string]bool{}
	for _, lv := range report.LostVMs {
		lostSet[lv] = true
	}
	for name, mem := range c.members {
		if lostSet[name] {
			continue // already at the committed state by reconstruction
		}
		if err := mem.Rollback(); err != nil {
			return nil, fmt.Errorf("core: rollback %q: %w", name, err)
		}
		c.stats.Rollbacks++
	}

	if err := c.layout.ApplyRecovery(plan); err != nil {
		return nil, err
	}
	for _, n := range ns {
		c.down[n] = true
	}
	return report, nil
}

// RepairNode marks a previously failed node as available again. VMs do not
// move back automatically; subsequent recoveries may use it as a target.
func (c *Cluster) RepairNode(n int) error {
	if !c.down[n] {
		return fmt.Errorf("core: node %d is not down", n)
	}
	delete(c.down, n)
	return nil
}

// VerifyParity recomputes every group's parity blocks from the members'
// committed images and compares them with the keepers' blocks; it returns
// the first mismatch. Tests use it as the global protocol invariant.
func (c *Cluster) VerifyParity() error {
	for _, g := range c.layout.Groups {
		initial := make(map[string][]byte, len(g.Members))
		for _, name := range g.Members {
			initial[name] = c.members[name].CommittedImage()
		}
		for i, k := range c.keepers[g.Index] {
			want, err := NewMKeeper(g.Index, i, c.layout.Tolerance, initial)
			if err != nil {
				return err
			}
			got, exp := k.Parity(), want.Parity()
			if len(got) != len(exp) {
				return fmt.Errorf("core: group %d parity[%d] length %d, want %d", g.Index, i, len(got), len(exp))
			}
			for j := range got {
				if got[j] != exp[j] {
					return fmt.Errorf("core: group %d parity[%d] mismatch at byte %d", g.Index, i, j)
				}
			}
		}
	}
	return nil
}
