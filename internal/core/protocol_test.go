package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dvdc/internal/vm"
)

func newGroup(t *testing.T, n, pages, pageSize int) ([]*Member, *Keeper) {
	t.Helper()
	members := make([]*Member, n)
	initial := map[string][]byte{}
	for i := 0; i < n; i++ {
		m, err := vm.NewMachine(string(rune('A'+i)), pages, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := NewMember(m)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = mem
		initial[m.ID()] = mem.CommittedImage()
	}
	k, err := NewKeeper(0, initial)
	if err != nil {
		t.Fatal(err)
	}
	return members, k
}

func runAndCheckpoint(t *testing.T, members []*Member, k *Keeper, seed int64, writes int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, mem := range members {
		m := mem.Machine()
		for i := 0; i < writes; i++ {
			m.TouchPage(rng.Intn(m.NumPages()), rng.Uint64())
		}
		d, err := mem.CaptureDelta()
		if err != nil {
			t.Fatal(err)
		}
		if err := k.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReconstructAfterCheckpointRounds(t *testing.T) {
	members, k := newGroup(t, 3, 32, 64)
	for round := 0; round < 5; round++ {
		runAndCheckpoint(t, members, k, int64(round), 20)
	}
	for lost := 0; lost < 3; lost++ {
		survivors := map[string][]byte{}
		for i, mem := range members {
			if i != lost {
				survivors[mem.Machine().ID()] = mem.CommittedImage()
			}
		}
		img, err := k.Reconstruct(members[lost].Machine().ID(), survivors)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, members[lost].CommittedImage()) {
			t.Errorf("lost member %d: reconstruction differs from committed image", lost)
		}
	}
}

func TestDeltaOnlyCoversDirtyPages(t *testing.T) {
	members, _ := newGroup(t, 2, 16, 32)
	m := members[0].Machine()
	m.TouchPage(5, 1)
	d, err := members[0].CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pages) != 1 || d.Pages[0].Index != 5 {
		t.Fatalf("delta pages: %+v", d.Pages)
	}
	if d.PayloadBytes() != 32 {
		t.Errorf("payload %d, want 32", d.PayloadBytes())
	}
}

func TestRollbackRestoresCommittedState(t *testing.T) {
	members, k := newGroup(t, 2, 16, 32)
	runAndCheckpoint(t, members, k, 1, 10)
	committed := members[0].CommittedImage()
	// Dirty the machine beyond the checkpoint, then roll back.
	members[0].Machine().TouchPage(0, 999)
	members[0].Machine().TouchPage(7, 998)
	if err := members[0].Rollback(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(members[0].Machine().Image(), committed) {
		t.Error("rollback did not restore the committed image")
	}
}

func TestKeeperRejectsOutOfOrderDeltas(t *testing.T) {
	members, k := newGroup(t, 2, 8, 32)
	m := members[0].Machine()
	m.TouchPage(0, 1)
	d1, _ := members[0].CaptureDelta()
	m.TouchPage(1, 2)
	d2, _ := members[0].CaptureDelta()
	if err := k.ApplyDelta(d2); err == nil {
		t.Error("skipping an epoch should fail")
	}
	if err := k.ApplyDelta(d1); err != nil {
		t.Fatal(err)
	}
	if err := k.ApplyDelta(d1); err == nil {
		t.Error("replaying an epoch should fail")
	}
	if err := k.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
}

func TestKeeperRejectsUnknownMember(t *testing.T) {
	_, k := newGroup(t, 2, 8, 32)
	if err := k.ApplyDelta(&Delta{VMID: "stranger", Epoch: 1}); err == nil {
		t.Error("unknown member should fail")
	}
	if _, err := k.Reconstruct("stranger", nil); err == nil {
		t.Error("reconstructing unknown member should fail")
	}
}

func TestReconstructMissingSurvivorFails(t *testing.T) {
	members, k := newGroup(t, 3, 8, 32)
	survivors := map[string][]byte{
		members[1].Machine().ID(): members[1].CommittedImage(),
		// member 2 missing
	}
	if _, err := k.Reconstruct(members[0].Machine().ID(), survivors); err == nil {
		t.Error("missing survivor should fail")
	}
}

func TestRestoreImageResetsCommitted(t *testing.T) {
	members, _ := newGroup(t, 1, 8, 32)
	img := make([]byte, 8*32)
	for i := range img {
		img[i] = byte(i)
	}
	if err := members[0].RestoreImage(img, 7); err != nil {
		t.Fatal(err)
	}
	if members[0].Epoch() != 7 {
		t.Errorf("epoch = %d, want 7", members[0].Epoch())
	}
	if !bytes.Equal(members[0].Machine().Image(), img) {
		t.Error("machine not restored")
	}
	if !bytes.Equal(members[0].CommittedImage(), img) {
		t.Error("committed image not updated")
	}
}

func TestNewKeeperValidation(t *testing.T) {
	if _, err := NewKeeper(0, nil); err == nil {
		t.Error("empty member set should fail")
	}
	if _, err := NewKeeper(0, map[string][]byte{"a": make([]byte, 4), "b": make([]byte, 8)}); err == nil {
		t.Error("mismatched image sizes should fail")
	}
}

// Property: after arbitrary interleaved writes and checkpoint rounds, any
// single member reconstructs exactly.
func TestQuickProtocolReconstruction(t *testing.T) {
	f := func(seed int64, rounds, writes uint8) bool {
		members, k := quickGroup()
		if members == nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < int(rounds%5)+1; r++ {
			for _, mem := range members {
				m := mem.Machine()
				for w := 0; w < int(writes%30); w++ {
					m.TouchPage(rng.Intn(m.NumPages()), rng.Uint64())
				}
				d, err := mem.CaptureDelta()
				if err != nil {
					return false
				}
				if err := k.ApplyDelta(d); err != nil {
					return false
				}
			}
		}
		lost := rng.Intn(len(members))
		survivors := map[string][]byte{}
		for i, mem := range members {
			if i != lost {
				survivors[mem.Machine().ID()] = mem.CommittedImage()
			}
		}
		img, err := k.Reconstruct(members[lost].Machine().ID(), survivors)
		if err != nil {
			return false
		}
		return bytes.Equal(img, members[lost].CommittedImage())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func quickGroup() ([]*Member, *Keeper) {
	members := make([]*Member, 3)
	initial := map[string][]byte{}
	for i := range members {
		m, err := vm.NewMachine(string(rune('A'+i)), 16, 32)
		if err != nil {
			return nil, nil
		}
		mem, err := NewMember(m)
		if err != nil {
			return nil, nil
		}
		members[i] = mem
		initial[m.ID()] = mem.CommittedImage()
	}
	k, err := NewKeeper(0, initial)
	if err != nil {
		return nil, nil
	}
	return members, k
}
