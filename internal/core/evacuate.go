package core

import (
	"fmt"
	"sort"

	"dvdc/internal/cluster"
	"dvdc/internal/migrate"
)

// EvacuationReport describes a completed proactive evacuation.
type EvacuationReport struct {
	Node     int
	Moves    []EvacuationMove
	Degraded bool // some move had to violate orthogonality
}

// EvacuationMove is one VM's live migration off the suspect node.
type EvacuationMove struct {
	VM         string
	TargetNode int
	Stats      migrate.Stats
	Degraded   bool
}

// EvacuateNode proactively live-migrates every VM off a node that is
// predicted to fail — the paper's "moving state: live migration away from
// failing nodes" benefit. Unlike FailNode, nothing is lost and nobody rolls
// back: each VM pre-copies its memory to a target chosen like recovery
// placement (least-loaded node holding no other element of the VM's group),
// the committed image and protocol epoch travel with it, and parity is
// untouched because the VM's state is unchanged. Parity blocks homed on the
// node are re-homed by recomputation, exactly as in recovery.
//
// An optional HashIndex enables the paper's page-hash dedup during the
// migrations (nil disables it).
func (c *Cluster) EvacuateNode(n int, index *migrate.HashIndex) (*EvacuationReport, error) {
	if n < 0 || n >= c.layout.Nodes {
		return nil, fmt.Errorf("core: node %d out of range [0,%d)", n, c.layout.Nodes)
	}
	if c.down[n] {
		return nil, fmt.Errorf("core: node %d is already down", n)
	}
	report := &EvacuationReport{Node: n}

	// Load per node for target choice, like the recovery planner.
	load := make([]int, c.layout.Nodes)
	for _, v := range c.layout.VMs {
		if v.Node != n && !c.down[v.Node] {
			load[v.Node]++
		}
	}
	groupOccupied := func(g cluster.Group, extra map[int]bool) map[int]bool {
		occ := map[int]bool{}
		for _, m := range g.Members {
			v, _ := c.layout.VM(m)
			if v.Node != n {
				occ[v.Node] = true
			}
		}
		for _, p := range g.ParityNodes {
			if p != n {
				occ[p] = true
			}
		}
		for e := range extra {
			occ[e] = true
		}
		return occ
	}
	planned := map[int]map[int]bool{} // group -> nodes taken by this evacuation
	pickTarget := func(g cluster.Group) (int, bool, error) {
		occ := groupOccupied(g, planned[g.Index])
		best, bestLoad, degraded := -1, int(^uint(0)>>1), false
		for t := 0; t < c.layout.Nodes; t++ {
			if t == n || c.down[t] || occ[t] {
				continue
			}
			if load[t] < bestLoad {
				best, bestLoad = t, load[t]
			}
		}
		if best == -1 {
			degraded = true
			for t := 0; t < c.layout.Nodes; t++ {
				if t == n || c.down[t] {
					continue
				}
				if load[t] < bestLoad {
					best, bestLoad = t, load[t]
				}
			}
		}
		if best == -1 {
			return 0, false, fmt.Errorf("core: no surviving target for group %d", g.Index)
		}
		if planned[g.Index] == nil {
			planned[g.Index] = map[int]bool{}
		}
		planned[g.Index][best] = true
		return best, degraded, nil
	}

	// Live-migrate every hosted VM, in stable order.
	vms := c.layout.VMsOnNode(n)
	sort.Strings(vms)
	for _, name := range vms {
		v, _ := c.layout.VM(name)
		g := c.layout.Groups[v.Group]
		target, degraded, err := pickTarget(g)
		if err != nil {
			return nil, err
		}
		stats, err := c.moveVM(name, target, index)
		if err != nil {
			return nil, err
		}
		report.Moves = append(report.Moves, EvacuationMove{
			VM: name, TargetNode: target, Stats: stats, Degraded: degraded,
		})
		report.Degraded = report.Degraded || degraded
		load[target]++
	}

	// Re-home parity blocks from the suspect node by recomputation.
	for _, g := range c.layout.Groups {
		for i, p := range g.ParityNodes {
			if p != n {
				continue
			}
			target, degraded, err := pickTarget(g)
			if err != nil {
				return nil, err
			}
			initial := make(map[string][]byte, len(g.Members))
			epochs := make(map[string]uint64, len(g.Members))
			for _, m := range g.Members {
				initial[m] = c.members[m].CommittedImage()
				epochs[m] = c.members[m].Epoch()
			}
			nk, err := NewMKeeper(g.Index, i, c.layout.Tolerance, initial)
			if err != nil {
				return nil, err
			}
			if err := nk.SetEpochs(epochs); err != nil {
				return nil, err
			}
			c.keepers[g.Index][i] = nk
			c.layout.Groups[g.Index].ParityNodes[i] = target
			report.Degraded = report.Degraded || degraded
			c.stats.ParityRebuilds++
		}
	}
	if report.Degraded {
		return report, c.layout.ValidateDegraded()
	}
	return report, c.layout.Validate()
}

// moveVM live-migrates one VM to a target node: iterative pre-copy, a
// stop-and-copy finalize, identity adoption (committed image, protocol
// epoch, dirty set), and a placement update. index may be nil.
func (c *Cluster) moveVM(name string, target int, index *migrate.HashIndex) (migrate.Stats, error) {
	mem, ok := c.members[name]
	if !ok {
		return migrate.Stats{}, fmt.Errorf("core: unknown VM %q", name)
	}
	// The guest is paused for the in-process move, so its
	// dirty-since-last-commit set is fixed now; migration rounds clear the
	// source's dirty bits, so remember it for the adopted member.
	dirtyBefore := mem.Machine().DirtyPages()
	mig, err := migrate.NewMigration(mem.Machine(), index)
	if err != nil {
		return migrate.Stats{}, err
	}
	// Iterative pre-copy until the dirty residue is small, then
	// stop-and-copy. (In-process the guest is paused during the loop; the
	// round structure still exercises the real transfer path.)
	for round := 0; round < 4; round++ {
		moved, err := mig.CopyRound()
		if err != nil {
			return migrate.Stats{}, err
		}
		if moved <= mem.Machine().NumPages()/50 {
			break
		}
	}
	stats, err := mig.Finalize()
	if err != nil {
		return migrate.Stats{}, err
	}
	// The member's identity, committed image, and epoch carry over; only
	// the machine object (its "physical host") changes.
	fresh, err := NewMember(mig.Dst())
	if err != nil {
		return migrate.Stats{}, err
	}
	if err := fresh.adopt(mem, dirtyBefore); err != nil {
		return migrate.Stats{}, err
	}
	c.members[name] = fresh
	for i := range c.layout.VMs {
		if c.layout.VMs[i].Name == name {
			c.layout.VMs[i].Node = target
		}
	}
	return stats, nil
}

// adopt transfers another member's protocol identity (committed image and
// epoch) onto this member, whose machine must already hold the same live
// state (a completed migration guarantees it). dirty lists the pages that
// were dirty on the source since its last commit; they are re-marked so the
// next capture includes them.
func (mem *Member) adopt(old *Member, dirty []int) error {
	if mem.machine.ImageBytes() != old.machine.ImageBytes() {
		return fmt.Errorf("core: adopt geometry mismatch")
	}
	mem.committed = append(mem.committed[:0], old.committed...)
	mem.epoch = old.epoch
	for _, i := range dirty {
		mem.machine.MarkDirty(i)
	}
	return nil
}
