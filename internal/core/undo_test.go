package core

import (
	"bytes"
	"testing"

	"dvdc/internal/analytic"
	"dvdc/internal/cluster"
	"dvdc/internal/vm"
)

func TestUndoCaptureRestoresCommittedAndDirty(t *testing.T) {
	m, err := vm.NewMachine("u", 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMember(m)
	if err != nil {
		t.Fatal(err)
	}
	m.TouchPage(1, 11)
	m.TouchPage(5, 12)
	before := mem.CommittedImage()
	d, err := mem.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(mem.CommittedImage(), before) {
		t.Fatal("capture should advance the committed image")
	}
	if mem.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", mem.Epoch())
	}
	if err := mem.UndoCapture(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem.CommittedImage(), before) {
		t.Error("undo did not restore the committed image")
	}
	if mem.Epoch() != 0 {
		t.Errorf("epoch %d after undo, want 0", mem.Epoch())
	}
	// The captured pages must be dirty again so the next capture re-ships them.
	if !m.IsDirty(1) || !m.IsDirty(5) {
		t.Error("undone pages not re-marked dirty")
	}
	// A fresh capture after the undo must produce an equivalent delta.
	d2, err := mem.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d2.Epoch != 1 || len(d2.Pages) != 2 {
		t.Errorf("re-capture: epoch %d, %d pages", d2.Epoch, len(d2.Pages))
	}
}

func TestUndoCaptureValidation(t *testing.T) {
	m, _ := vm.NewMachine("u", 4, 32)
	mem, _ := NewMember(m)
	m.TouchPage(0, 1)
	d, _ := mem.CaptureDelta()
	stale := &Delta{VMID: d.VMID, Epoch: 99}
	if err := mem.UndoCapture(stale); err == nil {
		t.Error("undo with wrong epoch should fail")
	}
	if err := mem.UndoCapture(nil); err == nil {
		t.Error("undo with nil delta should fail")
	}
	if err := mem.UndoCapture(d); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	m, _ := vm.NewMachine("a", 4, 32)
	mem, _ := NewMember(m)
	k, err := NewKeeper(7, map[string][]byte{"a": mem.CommittedImage()})
	if err != nil {
		t.Fatal(err)
	}
	if k.Group() != 7 {
		t.Errorf("Group = %d", k.Group())
	}
	if k.ParityBytes() != 4*32 {
		t.Errorf("ParityBytes = %d", k.ParityBytes())
	}
	if got := k.Members(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Members = %v", got)
	}
	if k.Epoch("a") != 0 {
		t.Errorf("Epoch = %d", k.Epoch("a"))
	}
	if len(k.Parity()) != 4*32 {
		t.Error("Parity length wrong")
	}
	if err := k.SetEpochs(map[string]uint64{"a": 3}); err != nil {
		t.Fatal(err)
	}
	if k.Epoch("a") != 3 {
		t.Error("SetEpochs did not apply")
	}
	if err := k.SetEpochs(map[string]uint64{}); err == nil {
		t.Error("SetEpochs missing member should fail")
	}

	mk, err := NewMKeeper(3, 1, 2, map[string][]byte{"a": mem.CommittedImage(), "b": mem.CommittedImage()})
	if err != nil {
		t.Fatal(err)
	}
	if mk.Group() != 3 || mk.ParityIndex() != 1 {
		t.Error("MKeeper accessors wrong")
	}
	if got := mk.Members(); len(got) != 2 || got[0] != "a" {
		t.Errorf("MKeeper.Members = %v", got)
	}
	if mk.Epoch("b") != 0 {
		t.Error("MKeeper.Epoch wrong")
	}
}

func TestIntervalPolicies(t *testing.T) {
	fixed := FixedInterval(42)
	if fixed(1, 2) != 42 || fixed(100, 200) != 42 {
		t.Error("FixedInterval not constant")
	}
	yd := YoungDalyPolicy(10000, 5, 1000)
	if got := yd(0, 2); got < 5 || got > 1000 {
		t.Errorf("YoungDaly out of clamp: %v", got)
	}
	if got := yd(0, 0); got != 5 {
		t.Errorf("zero overhead should clamp to min, got %v", got)
	}
	if got := yd(0, 1e9); got != 1000 {
		t.Errorf("huge overhead should clamp to max, got %v", got)
	}
}

func TestSchemeAccessors(t *testing.T) {
	layout, plat, spec := schemeFixture(t)
	s, err := NewDVDCScheme(plat, layout, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "DVDC" {
		t.Errorf("Name = %q", s.Name())
	}
	if got := s.RateWithDown(0); got != 1 {
		t.Errorf("RateWithDown(0) = %v", got)
	}
	if got := s.RateWithDown(1); got != 0.75 {
		t.Errorf("RateWithDown(1) = %v", got)
	}
	if got := s.RateWithDown(99); got != 0 {
		t.Errorf("RateWithDown(99) = %v", got)
	}
}

func TestFailureReportNode(t *testing.T) {
	r := &FailureReport{}
	if r.Node() != -1 {
		t.Error("empty report Node should be -1")
	}
	r.Nodes = []int{2, 3}
	if r.Node() != 2 {
		t.Error("Node should return first")
	}
}

// schemeFixture builds the common scheme inputs for accessor tests.
func schemeFixture(t *testing.T) (*cluster.Layout, analytic.Platform, vm.Spec) {
	t.Helper()
	layout, err := cluster.Paper12VM()
	if err != nil {
		t.Fatal(err)
	}
	plat, err := analytic.DefaultPlatform(layout.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	spec := vm.Spec{Name: "x", ImageBytes: 1 << 20, Dirty: vm.LinearDirty{RatePerSec: 1, CapBytes: 1}}
	return layout, plat, spec
}
