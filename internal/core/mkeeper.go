package core

import (
	"fmt"
	"sort"

	"dvdc/internal/parity"
)

// MKeeper maintains ONE of the m parity blocks protecting a RAID group
// under a systematic RS(k, m) code — the generalization to multi-failure
// tolerance that the paper motivates through Wang et al.'s double-erasure
// checkpointing. With m = 1 the code degenerates to plain XOR (the RS
// construction's first parity row is all ones), so MKeeper subsumes the
// single-parity Keeper semantically; the group's m parity blocks live on m
// distinct nodes per the layout's ParityNodes.
//
// Like Keeper, an MKeeper never stores member images: deltas fold in via
// the linear small-write update parity ^= Coef * (old XOR new).
type MKeeper struct {
	group     int
	parityIdx int
	coder     *parity.RS
	members   []string       // sorted; position = RS data index
	index     map[string]int // member -> data index
	parityBlk []byte
	epochs    map[string]uint64
}

// NewMKeeper builds parity block parityIdx (0..tolerance-1) for a group
// from the members' initial full images. All keepers of one group must be
// constructed with the same member set and tolerance so their coders agree.
func NewMKeeper(group, parityIdx, tolerance int, initial map[string][]byte) (*MKeeper, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("core: mkeeper for group %d has no members", group)
	}
	if parityIdx < 0 || parityIdx >= tolerance {
		return nil, fmt.Errorf("core: parity index %d out of range [0,%d)", parityIdx, tolerance)
	}
	coder, err := parity.NewRS(len(initial), tolerance)
	if err != nil {
		return nil, err
	}
	members := make([]string, 0, len(initial))
	for id := range initial {
		members = append(members, id)
	}
	sort.Strings(members)
	k := &MKeeper{
		group:     group,
		parityIdx: parityIdx,
		coder:     coder,
		members:   members,
		index:     make(map[string]int, len(members)),
		epochs:    make(map[string]uint64, len(members)),
	}
	var size int
	for j, id := range members {
		k.index[id] = j
		img := initial[id]
		if j == 0 {
			size = len(img)
			k.parityBlk = make([]byte, size)
		} else if len(img) != size {
			return nil, fmt.Errorf("core: member %q image %d bytes, group uses %d", id, len(img), size)
		}
		// parity ^= Coef * img (initial fold).
		if err := coder.UpdateParity(k.parityBlk, parityIdx, j, img); err != nil {
			return nil, err
		}
		k.epochs[id] = 0
	}
	return k, nil
}

// Group returns the group index; ParityIndex which of the m blocks this is.
func (k *MKeeper) Group() int { return k.group }

// ParityIndex returns which of the group's parity blocks this keeper holds.
func (k *MKeeper) ParityIndex() int { return k.parityIdx }

// Members returns the sorted member list (positions are RS data indices).
func (k *MKeeper) Members() []string { return append([]string(nil), k.members...) }

// Parity returns a copy of the parity block.
func (k *MKeeper) Parity() []byte { return append([]byte(nil), k.parityBlk...) }

// ParityRange copies bytes [off, off+n) of the parity block into a fresh
// slice — the chunked read path serves parity chunks with this instead of
// materializing a full Parity copy per request.
func (k *MKeeper) ParityRange(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(k.parityBlk) {
		return nil, fmt.Errorf("core: parity range [%d,+%d) outside %d-byte block", off, n, len(k.parityBlk))
	}
	return append([]byte(nil), k.parityBlk[off:off+n]...), nil
}

// Epoch returns the last folded epoch for a member.
func (k *MKeeper) Epoch(id string) uint64 { return k.epochs[id] }

// SetEpochs overrides epoch bookkeeping after a mid-run rebuild.
func (k *MKeeper) SetEpochs(epochs map[string]uint64) error {
	for id := range k.epochs {
		e, ok := epochs[id]
		if !ok {
			return fmt.Errorf("core: SetEpochs missing member %q", id)
		}
		k.epochs[id] = e
	}
	return nil
}

// Size returns the parity block length in bytes.
func (k *MKeeper) Size() int { return len(k.parityBlk) }

// FoldInto folds one member's delta bytes at a byte offset into dst, an
// accumulation buffer of the keeper's block size (NOT the live parity
// block). This is the chunked data path's streaming primitive: each arriving
// chunk folds immediately — dst accumulates Coef*delta terms from any number
// of members in any order (the code is linear, so ordering is irrelevant) —
// and the whole accumulation lands in the parity block atomically at commit
// via CommitPending. Keeping the fold off the live block preserves
// two-phase-commit semantics: an aborted round just drops dst.
func (k *MKeeper) FoldInto(dst []byte, id string, off int, data []byte) error {
	j, ok := k.index[id]
	if !ok {
		return fmt.Errorf("core: mkeeper group %d fold from unknown member %q", k.group, id)
	}
	if len(dst) != len(k.parityBlk) {
		return fmt.Errorf("core: fold buffer %d bytes, parity block %d", len(dst), len(k.parityBlk))
	}
	if off < 0 || off+len(data) > len(dst) {
		return fmt.Errorf("core: fold range [%d,+%d) outside %d-byte block", off, len(data), len(dst))
	}
	return k.coder.UpdateParity(dst[off:off+len(data)], k.parityIdx, j, data)
}

// CommitPending folds an accumulation buffer built by FoldInto into the live
// parity block and advances the given members' epochs. Every epoch must be
// exactly one past the member's folded epoch — the same ordering rule
// ApplyDelta enforces — and all of them are checked before any state
// changes, so a bad commit leaves the keeper untouched.
func (k *MKeeper) CommitPending(pending []byte, epochs map[string]uint64) error {
	return k.CommitPendingRanges(pending, epochs, [][2]int{{0, len(pending)}})
}

// CommitPendingRanges is CommitPending restricted to the byte ranges of the
// accumulation buffer that folds actually touched: everything outside them
// must still be zero, so XORing only the touched ranges lands the identical
// parity at O(folded bytes) instead of O(block) per commit. Ranges must be
// disjoint ([start, end) pairs; overlap would fold the overlap twice) and
// are checked, like the epochs, before any state changes.
func (k *MKeeper) CommitPendingRanges(pending []byte, epochs map[string]uint64, ranges [][2]int) error {
	return k.commitRanges(pending, epochs, ranges, false)
}

// DrainPendingRanges is CommitPendingRanges for a reusable accumulation
// buffer: each committed range is zeroed in the same pass that folds it
// (parity.XORDrain), so pending leaves the call all-zero inside the ranges
// without a second memory sweep. A failed commit leaves parity, epochs, and
// pending all untouched.
func (k *MKeeper) DrainPendingRanges(pending []byte, epochs map[string]uint64, ranges [][2]int) error {
	return k.commitRanges(pending, epochs, ranges, true)
}

func (k *MKeeper) commitRanges(pending []byte, epochs map[string]uint64, ranges [][2]int, drain bool) error {
	if len(pending) != len(k.parityBlk) {
		return fmt.Errorf("core: pending buffer %d bytes, parity block %d", len(pending), len(k.parityBlk))
	}
	for _, r := range ranges {
		if r[0] < 0 || r[1] < r[0] || r[1] > len(pending) {
			return fmt.Errorf("core: commit range [%d,%d) outside %d-byte block", r[0], r[1], len(pending))
		}
	}
	for id, e := range epochs {
		if _, ok := k.index[id]; !ok {
			return fmt.Errorf("core: mkeeper group %d commit for unknown member %q", k.group, id)
		}
		if e != k.epochs[id]+1 {
			return fmt.Errorf("core: mkeeper group %d member %q epoch %d after %d",
				k.group, id, e, k.epochs[id])
		}
	}
	for _, r := range ranges {
		if r[0] == r[1] {
			continue
		}
		var err error
		if drain {
			err = parity.XORDrain(k.parityBlk[r[0]:r[1]], pending[r[0]:r[1]])
		} else {
			err = parity.XORInto(k.parityBlk[r[0]:r[1]], pending[r[0]:r[1]])
		}
		if err != nil {
			return err
		}
	}
	for id, e := range epochs {
		k.epochs[id] = e
	}
	return nil
}

// ApplyDelta folds one member's checkpoint delta into this parity block.
func (k *MKeeper) ApplyDelta(d *Delta) error {
	j, ok := k.index[d.VMID]
	if !ok {
		return fmt.Errorf("core: mkeeper group %d got delta from unknown member %q", k.group, d.VMID)
	}
	if d.Epoch != k.epochs[d.VMID]+1 {
		return fmt.Errorf("core: mkeeper group %d member %q epoch %d after %d",
			k.group, d.VMID, d.Epoch, k.epochs[d.VMID])
	}
	for _, p := range d.Pages {
		off := p.Index * len(p.Data)
		if p.Index < 0 || off+len(p.Data) > len(k.parityBlk) {
			return fmt.Errorf("core: delta page %d out of parity range", p.Index)
		}
		if err := k.coder.UpdateParity(k.parityBlk[off:off+len(p.Data)], k.parityIdx, j, p.Data); err != nil {
			return err
		}
	}
	k.epochs[d.VMID] = d.Epoch
	return nil
}

// ReconstructMembers rebuilds up to m lost members of one group from the
// surviving members' committed images plus the available parity blocks
// (keyed by parity index). It needs at least k total shards; with t lost
// members, any t parity blocks suffice.
func ReconstructMembers(tolerance int, members []string, survivors map[string][]byte,
	parityBlocks map[int][]byte, lost []string) (map[string][]byte, error) {
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	coder, err := parity.NewRS(len(sorted), tolerance)
	if err != nil {
		return nil, err
	}
	lostSet := map[string]bool{}
	for _, id := range lost {
		lostSet[id] = true
	}
	shards := make([][]byte, len(sorted)+tolerance)
	for j, id := range sorted {
		if lostSet[id] {
			continue
		}
		img, ok := survivors[id]
		if !ok {
			return nil, fmt.Errorf("core: reconstruction missing survivor %q", id)
		}
		shards[j] = append([]byte(nil), img...)
	}
	for idx, blk := range parityBlocks {
		if idx < 0 || idx >= tolerance {
			return nil, fmt.Errorf("core: parity index %d out of range [0,%d)", idx, tolerance)
		}
		shards[len(sorted)+idx] = append([]byte(nil), blk...)
	}
	if err := coder.Reconstruct(shards); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(lost))
	for j, id := range sorted {
		if lostSet[id] {
			out[id] = shards[j]
		}
	}
	return out, nil
}
