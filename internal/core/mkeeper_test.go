package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dvdc/internal/cluster"
	"dvdc/internal/vm"
)

// newMGroup builds n members plus all m parity keepers of one group.
func newMGroup(t *testing.T, n, m, pages, pageSize int) ([]*Member, []*MKeeper) {
	t.Helper()
	members := make([]*Member, n)
	initial := map[string][]byte{}
	for i := 0; i < n; i++ {
		mach, err := vm.NewMachine(string(rune('A'+i)), pages, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := NewMember(mach)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = mem
		initial[mach.ID()] = mem.CommittedImage()
	}
	keepers := make([]*MKeeper, m)
	for i := range keepers {
		k, err := NewMKeeper(0, i, m, initial)
		if err != nil {
			t.Fatal(err)
		}
		keepers[i] = k
	}
	return members, keepers
}

func mChurnAndCheckpoint(t *testing.T, members []*Member, keepers []*MKeeper, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, mem := range members {
		mach := mem.Machine()
		for w := 0; w < 25; w++ {
			mach.TouchPage(rng.Intn(mach.NumPages()), rng.Uint64())
		}
		d, err := mem.CaptureDelta()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keepers {
			if err := k.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestMKeeperDoubleLossReconstruction(t *testing.T) {
	members, keepers := newMGroup(t, 4, 2, 16, 64)
	names := make([]string, len(members))
	for i, mem := range members {
		names[i] = mem.Machine().ID()
	}
	for round := 0; round < 4; round++ {
		mChurnAndCheckpoint(t, members, keepers, int64(round))
	}
	// Every pair of members can be lost and rebuilt from the 2 survivors
	// plus both parity blocks.
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			lost := []string{names[a], names[b]}
			survivors := map[string][]byte{}
			for i, mem := range members {
				if i != a && i != b {
					survivors[names[i]] = mem.CommittedImage()
				}
			}
			blocks := map[int][]byte{0: keepers[0].Parity(), 1: keepers[1].Parity()}
			got, err := ReconstructMembers(2, names, survivors, blocks, lost)
			if err != nil {
				t.Fatalf("lost (%d,%d): %v", a, b, err)
			}
			for _, i := range []int{a, b} {
				if !bytes.Equal(got[names[i]], members[i].CommittedImage()) {
					t.Errorf("lost (%d,%d): member %d mismatch", a, b, i)
				}
			}
		}
	}
}

func TestMKeeperSingleLossWithOneParityBlock(t *testing.T) {
	// Losing one member AND one parity block (same node in an orthogonal
	// layout never happens, but different nodes can die together): the
	// remaining parity block must suffice.
	members, keepers := newMGroup(t, 3, 2, 8, 32)
	names := []string{"A", "B", "C"}
	mChurnAndCheckpoint(t, members, keepers, 7)
	survivors := map[string][]byte{
		"B": members[1].CommittedImage(),
		"C": members[2].CommittedImage(),
	}
	// Only parity block 1 available.
	got, err := ReconstructMembers(2, names, survivors, map[int][]byte{1: keepers[1].Parity()}, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got["A"], members[0].CommittedImage()) {
		t.Error("reconstruction from second parity block failed")
	}
}

func TestMKeeperInsufficientShards(t *testing.T) {
	members, keepers := newMGroup(t, 3, 1, 8, 32)
	names := []string{"A", "B", "C"}
	mChurnAndCheckpoint(t, members, keepers, 8)
	// Two losses with tolerance 1: must fail.
	survivors := map[string][]byte{"C": members[2].CommittedImage()}
	if _, err := ReconstructMembers(1, names, survivors,
		map[int][]byte{0: keepers[0].Parity()}, []string{"A", "B"}); err == nil {
		t.Error("2 losses with 1 parity should fail")
	}
}

func TestMKeeperValidation(t *testing.T) {
	if _, err := NewMKeeper(0, 0, 1, nil); err == nil {
		t.Error("empty members should fail")
	}
	if _, err := NewMKeeper(0, 2, 2, map[string][]byte{"a": {1}}); err == nil {
		t.Error("parity index out of range should fail")
	}
	if _, err := NewMKeeper(0, 0, 1, map[string][]byte{"a": {1}, "b": {1, 2}}); err == nil {
		t.Error("mismatched sizes should fail")
	}
}

func TestMKeeperRejectsBadDeltas(t *testing.T) {
	members, keepers := newMGroup(t, 2, 1, 8, 32)
	m := members[0].Machine()
	m.TouchPage(0, 1)
	d, _ := members[0].CaptureDelta()
	if err := keepers[0].ApplyDelta(&Delta{VMID: "stranger", Epoch: 1}); err == nil {
		t.Error("unknown member should fail")
	}
	if err := keepers[0].ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if err := keepers[0].ApplyDelta(d); err == nil {
		t.Error("replay should fail")
	}
}

func TestClusterToleranceTwoSurvivesSimultaneousDoubleFailure(t *testing.T) {
	// 7 nodes, groups of 3 with 2 parity blocks: any two nodes may die at
	// once.
	layout, err := cluster.BuildDistributedGroups(7, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 7; a++ {
		for b := a + 1; b < 7; b++ {
			l := layout.Clone()
			c, err := NewCluster(l, 8, 64)
			if err != nil {
				t.Fatal(err)
			}
			churn(t, c, int64(a*10+b), 20)
			if err := c.CheckpointRound(); err != nil {
				t.Fatal(err)
			}
			committed := map[string][]byte{}
			for _, name := range c.VMNames() {
				m, _ := c.Machine(name)
				committed[name] = m.Image()
			}
			churn(t, c, 99, 5) // uncommitted churn
			if _, err := c.FailNodes(a, b); err != nil {
				t.Fatalf("nodes (%d,%d): %v", a, b, err)
			}
			for _, name := range c.VMNames() {
				m, _ := c.Machine(name)
				if !bytes.Equal(m.Image(), committed[name]) {
					t.Errorf("nodes (%d,%d): VM %q not at committed state", a, b, name)
				}
			}
			if err := c.VerifyParity(); err != nil {
				t.Errorf("nodes (%d,%d): %v", a, b, err)
			}
		}
	}
}

func TestClusterToleranceTwoContinuesAfterDoubleFailure(t *testing.T) {
	layout, err := cluster.BuildDistributedGroups(8, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, c, 1, 20)
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNodes(1, 5); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		churn(t, c, int64(50+round), 10)
		if err := c.CheckpointRound(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := c.VerifyParity(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestClusterTripleFailureWithToleranceTwoRejected(t *testing.T) {
	layout, err := cluster.BuildDistributedGroups(7, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(layout, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	// Find a triple that actually overwhelms some group (groups span 5 of 7
	// nodes, so some triples hit a group three times).
	rejected := false
	for a := 0; a < 7 && !rejected; a++ {
		for b := a + 1; b < 7 && !rejected; b++ {
			for cc := b + 1; cc < 7 && !rejected; cc++ {
				if !c.Layout().Survives(a, b, cc) {
					if _, err := c.FailNodes(a, b, cc); err == nil {
						t.Errorf("unsurvivable triple (%d,%d,%d) accepted", a, b, cc)
					}
					rejected = true
				}
			}
		}
	}
	if !rejected {
		t.Skip("no unsurvivable triple in this layout")
	}
}

// Property: random churn/checkpoint sequences keep all parity blocks
// verifiable and double losses recoverable.
func TestQuickMKeeperInvariant(t *testing.T) {
	f := func(seed int64, rounds uint8) bool {
		layout, err := cluster.BuildDistributedGroups(6, 1, 2, 3)
		if err != nil {
			return false
		}
		c, err := NewCluster(layout, 8, 32)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < int(rounds%4)+1; r++ {
			for _, name := range c.VMNames() {
				m, _ := c.Machine(name)
				for w := 0; w < 10; w++ {
					m.TouchPage(rng.Intn(m.NumPages()), rng.Uint64())
				}
			}
			if err := c.CheckpointRound(); err != nil {
				return false
			}
		}
		if err := c.VerifyParity(); err != nil {
			return false
		}
		a := rng.Intn(6)
		b := (a + 1 + rng.Intn(5)) % 6
		if _, err := c.FailNodes(a, b); err != nil {
			return false
		}
		return c.VerifyParity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
