package core

import (
	"math"
	"testing"
)

// rateScheme is a constant-cost scheme with a degraded-rate model.
type rateScheme struct {
	constScheme
	nodes int
}

func (r rateScheme) RateWithDown(k int) float64 {
	return float64(r.nodes-k) / float64(r.nodes)
}

func TestRepairDelaySlowsExecution(t *testing.T) {
	// One failure at t=5 with rec=1, repair lasting 100 s; 4-node rate
	// model: windows during repair run at 3/4 speed.
	sch := rateScheme{constScheme{ov: 0, rec: 1}, 4}
	res, err := Run(Config{
		JobSeconds: 50, Interval: 10, RepairSec: 100,
		Schedule: traceSchedule(t, 5),
		Scheme:   sch,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Failure at 5: lost 5 s work; recovery ends at 6; node down until 106.
	// All 50 s of work re-run at rate 0.75: wall 50/0.75 = 66.67 s.
	want := 6 + 50/0.75
	if math.Abs(res.Completion-want) > 1e-9 {
		t.Errorf("completion %v, want %v", res.Completion, want)
	}
	if res.DegradedTime <= 0 {
		t.Error("expected degraded time to be recorded")
	}
}

func TestRepairCompletesAndRateRecovers(t *testing.T) {
	// Short repair: after it elapses, windows run at full rate again.
	sch := rateScheme{constScheme{ov: 0, rec: 1}, 4}
	res, err := Run(Config{
		JobSeconds: 100, Interval: 10, RepairSec: 5,
		Schedule: traceSchedule(t, 5),
		Scheme:   sch,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recovery ends at 6, node down until 11. First window (6..19.33 at
	// 0.75) samples degraded; subsequent windows full rate. Just verify the
	// bound: completion well below the always-degraded case.
	alwaysDegraded := 6 + 100/0.75
	if res.Completion >= alwaysDegraded {
		t.Errorf("completion %v suggests rate never recovered", res.Completion)
	}
	if res.Completion <= 106 {
		t.Errorf("completion %v below physical minimum", res.Completion)
	}
}

func TestInstantRepairKeepsOldBehaviour(t *testing.T) {
	// RepairSec 0: identical to the pre-extension engine semantics.
	res, err := Run(Config{
		JobSeconds: 100, Interval: 10, DetectSec: 1,
		Schedule: traceSchedule(t, 15),
		Scheme:   rateScheme{constScheme{ov: 1, rec: 2}, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Completion-116) > 1e-9 {
		t.Errorf("completion = %v, want 116 (matching the legacy test)", res.Completion)
	}
	if res.DegradedTime != 0 {
		t.Errorf("instant repair should record no degraded time, got %v", res.DegradedTime)
	}
}

func TestSchemeWithoutRateRunsFullSpeed(t *testing.T) {
	// A plain Scheme (no DegradedRate) ignores RepairSec for pacing.
	res, err := Run(Config{
		JobSeconds: 50, Interval: 10, RepairSec: 1000,
		Schedule: traceSchedule(t, 5),
		Scheme:   constScheme{ov: 0, rec: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 6 + 50.0
	if math.Abs(res.Completion-want) > 1e-9 {
		t.Errorf("completion %v, want %v", res.Completion, want)
	}
}
