package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestChunkCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 65536} {
		block := make([]byte, n)
		rng.Read(block)
		for _, cs := range []int{1, 7, 64, 4096, 65536} {
			count := ChunkCount(n, cs)
			for i := 0; i < count; i++ {
				c, err := ChunkOf(block, i, cs)
				if err != nil {
					t.Fatalf("n=%d cs=%d: %v", n, cs, err)
				}
				got, err := DecodeChunk(EncodeChunk(&c))
				if err != nil {
					t.Fatalf("n=%d cs=%d i=%d: %v", n, cs, i, err)
				}
				if got.Offset != c.Offset || got.Total != c.Total || got.Index != c.Index ||
					got.Count != c.Count || got.RawLen != c.RawLen || !bytes.Equal(got.Data, c.Data) {
					t.Fatalf("n=%d cs=%d i=%d: round trip mismatch", n, cs, i)
				}
			}
		}
	}
}

func TestChunkCRCDetectsEveryByteFlip(t *testing.T) {
	c, err := ChunkOf([]byte("chunked data path payload"), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeChunk(&c)
	for pos := range enc {
		for bit := 0; bit < 8; bit++ {
			mangled := append([]byte(nil), enc...)
			mangled[pos] ^= 1 << bit
			if _, err := DecodeChunk(mangled); err == nil {
				t.Fatalf("flip at byte %d bit %d accepted", pos, bit)
			} else if !errors.Is(err, ErrFrame) {
				t.Fatalf("flip at byte %d bit %d: untyped error %v", pos, bit, err)
			}
		}
	}
}

func TestChunkDecodeRejectsTruncationAndTrailing(t *testing.T) {
	c, err := ChunkOf(bytes.Repeat([]byte{7}, 100), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeChunk(&c)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeChunk(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodeChunk(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestDecodeChunkPrefixBatch walks a buffer of back-to-back frames (the
// shipping path's batched message payload) and checks every frame decodes
// with the right consumed length, in order, with intact data.
func TestDecodeChunkPrefixBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	block := make([]byte, 1000)
	rng.Read(block)
	const cs = 150
	count := ChunkCount(len(block), cs)
	var batch []byte
	for i := 0; i < count; i++ {
		c, err := ChunkOf(block, i, cs)
		if err != nil {
			t.Fatal(err)
		}
		batch = AppendChunk(batch, &c)
	}
	buf, decoded := batch, 0
	for len(buf) > 0 {
		c, n, err := DecodeChunkPrefix(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", decoded, err)
		}
		if n != ChunkHeaderLen+len(c.Data) {
			t.Fatalf("frame %d: consumed %d, frame is %d", decoded, n, ChunkHeaderLen+len(c.Data))
		}
		if int(c.Index) != decoded {
			t.Fatalf("frame %d decoded out of order as index %d", decoded, c.Index)
		}
		want := block[c.Offset : c.Offset+uint64(c.RawLen)]
		if !bytes.Equal(c.Data, want) {
			t.Fatalf("frame %d: data mismatch", decoded)
		}
		buf = buf[n:]
		decoded++
	}
	if decoded != count {
		t.Fatalf("decoded %d frames, packed %d", decoded, count)
	}
}

// TestDecodeChunkPrefixRejectsMangledBatch: truncations anywhere in a batch,
// an empty buffer, and corrupt interior frames are all loud ErrFrame
// failures, never a silent short decode.
func TestDecodeChunkPrefixRejectsMangledBatch(t *testing.T) {
	c1, err := ChunkOf(bytes.Repeat([]byte{3}, 96), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ChunkOf(bytes.Repeat([]byte{3}, 96), 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	batch := AppendChunk(AppendChunk(nil, &c1), &c2)
	first := ChunkHeaderLen + len(c1.Data)

	if _, _, err := DecodeChunkPrefix(nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("empty buffer: %v", err)
	}
	// Truncating inside the second frame: the first decodes, the remainder
	// must fail instead of being swallowed.
	for cut := first + 1; cut < len(batch); cut++ {
		_, n, err := DecodeChunkPrefix(batch[:cut])
		if err != nil {
			t.Fatalf("first frame of %d-byte truncation: %v", cut, err)
		}
		if _, _, err := DecodeChunkPrefix(batch[n:cut]); !errors.Is(err, ErrFrame) {
			t.Fatalf("truncated second frame accepted at cut %d: %v", cut, err)
		}
	}
	// A flipped byte in the second frame fails its CRC even though the batch
	// length is intact.
	mangled := append([]byte(nil), batch...)
	mangled[first+ChunkHeaderLen] ^= 0x40
	if _, n, err := DecodeChunkPrefix(mangled); err != nil || n != first {
		t.Fatalf("first frame after interior corruption: n=%d err=%v", n, err)
	}
	if _, _, err := DecodeChunkPrefix(mangled[first:]); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt second frame accepted: %v", err)
	}
}

func TestChunkDeflateRoundTrip(t *testing.T) {
	// Highly compressible data must shrink; random data must stay raw.
	c, err := ChunkOf(bytes.Repeat([]byte{0xAB}, 8192), 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	c.Deflate()
	if c.Flags&ChunkFlate == 0 {
		t.Fatal("compressible chunk not deflated")
	}
	if len(c.Data) >= int(c.RawLen) {
		t.Fatalf("deflated to %d bytes, raw %d", len(c.Data), c.RawLen)
	}
	got, err := DecodeChunk(EncodeChunk(&c))
	if err != nil {
		t.Fatal(err)
	}
	data, err := got.Inflate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0xAB}, 8192)) {
		t.Fatal("inflate mismatch")
	}

	rnd := make([]byte, 4096)
	rand.New(rand.NewSource(12)).Read(rnd)
	r, err := ChunkOf(rnd, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	r.Deflate()
	if r.Flags&ChunkFlate != 0 {
		t.Fatal("incompressible chunk was deflated")
	}
}

func TestAssemblerOutOfOrderAndDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	payload := make([]byte, 10000)
	rng.Read(payload)
	const cs = 777
	count := ChunkCount(len(payload), cs)
	order := rng.Perm(count)
	var asm Assembler
	for _, i := range order {
		c, err := ChunkOf(payload, i, cs)
		if err != nil {
			t.Fatal(err)
		}
		if err := asm.Add(c); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		// An exact duplicate is an idempotent no-op.
		if err := asm.Add(c); err != nil {
			t.Fatalf("duplicate of chunk %d rejected: %v", i, err)
		}
	}
	if !asm.Complete() {
		t.Fatal("stream not complete after all chunks")
	}
	got, err := asm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("assembled bytes differ from payload")
	}
}

func TestAssemblerRejectsConflicts(t *testing.T) {
	payload := bytes.Repeat([]byte{1, 2, 3, 4}, 100)
	const cs = 64
	var asm Assembler
	c0, _ := ChunkOf(payload, 0, cs)
	if err := asm.Add(c0); err != nil {
		t.Fatal(err)
	}
	// Same index, different content.
	bad := c0
	bad.Data = append([]byte(nil), c0.Data...)
	bad.Data[0] ^= 0xFF
	if err := asm.Add(bad); err == nil {
		t.Fatal("conflicting duplicate accepted")
	}
	// Different index claiming an overlapping range.
	c1, _ := ChunkOf(payload, 1, cs)
	c1.Offset = 10
	if err := asm.Add(c1); err == nil {
		t.Fatal("overlapping chunk accepted")
	}
	// A chunk describing a different stream shape.
	c2, _ := ChunkOf(payload, 2, cs)
	c2.Total++
	if err := asm.Add(c2); err == nil {
		t.Fatal("mismatched stream shape accepted")
	}
	// Incomplete stream must refuse to hand out bytes.
	if _, err := asm.Bytes(); err == nil {
		t.Fatal("incomplete stream produced bytes")
	}
}

func TestAssemblerEmptyStream(t *testing.T) {
	// An empty payload still announces itself as one zero-length chunk.
	c, err := ChunkOf(nil, 0, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	var asm Assembler
	if err := asm.Add(c); err != nil {
		t.Fatal(err)
	}
	if !asm.Complete() {
		t.Fatal("empty stream not complete")
	}
	got, err := asm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream assembled %d bytes", len(got))
	}
}
