package wire

import (
	"encoding/binary"
	"hash/crc32"
	"net"
)

// Scatter-gather chunk encoding: the ship path batches many chunk frames
// into one message payload. AppendChunk renders header and data into one
// contiguous buffer — a memcpy of every data byte just to frame it. The
// FrameWriter below instead emits each frame as two segments, a header slot
// carved from a small pooled arena and the caller's data slice aliased
// as-is, collected into a net.Buffers (writev-style). The bytes on the wire
// are identical to the contiguous encoding, so receivers decode through the
// unchanged DecodeChunkPrefix/Assembler path.

// AppendChunkHeader appends the chunk's header — including the CRC, which
// covers the header (crc field zeroed) followed by c.Data — without
// appending the data bytes themselves. The header followed by c.Data is
// byte-identical to AppendChunk's output.
func AppendChunkHeader(dst []byte, c *Chunk) []byte {
	base := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, c.Offset)
	dst = binary.LittleEndian.AppendUint64(dst, c.Total)
	dst = binary.LittleEndian.AppendUint32(dst, c.Index)
	dst = binary.LittleEndian.AppendUint32(dst, c.Count)
	dst = append(dst, c.Flags)
	dst = binary.LittleEndian.AppendUint32(dst, c.RawLen)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Data)))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc placeholder
	crc := crc32.ChecksumIEEE(dst[base:])
	crc = crc32.Update(crc, crc32.IEEETable, c.Data)
	binary.LittleEndian.PutUint32(dst[base+ChunkHeaderLen-4:], crc)
	return dst
}

// frameWriterArenaHeaders sizes a header arena: ~4 KiB holds 110 headers,
// which covers a whole default-size batch in one pooled buffer.
const frameWriterArenaHeaders = 110

// FrameWriter collects chunk frames as scatter-gather segments. Each
// AppendChunk adds two segments: a header rendered into an internal arena
// and the chunk's Data slice, aliased without copying. The accumulated
// Segments are wire-identical to AppendChunk run over the same chunks, so
// they decode through DecodeChunkPrefix unchanged.
//
// Data slices are aliased until the segments have been written, so the
// caller must keep them alive (and unmodified) until then. Release returns
// the header arenas; the zero FrameWriter is ready to use.
type FrameWriter struct {
	// Alloc provides header-arena buffers (nil = make). Arenas are returned
	// through Release's free func.
	Alloc func(int) []byte

	arenas [][]byte
	cur    []byte // active arena, len = bytes used
	segs   net.Buffers
	n      int
	frames int
}

// AppendChunk adds one chunk frame to the segment list, aliasing c.Data.
func (fw *FrameWriter) AppendChunk(c *Chunk) {
	var data [][]byte
	if len(c.Data) > 0 {
		data = [][]byte{c.Data}
	}
	fw.AppendChunkScatter(c, data)
}

// AppendChunkScatter adds one chunk frame whose data arrives as a scatter
// list instead of a contiguous slice: the concatenation of data plays the
// role of c.Data (which is ignored and may be nil). The header's length and
// CRC fields are computed across the pieces, and each piece becomes its own
// wire segment — so a chunk spanning several dirty pages ships straight from
// the page buffers with no coalescing copy. Pieces are aliased until the
// segments have been written.
func (fw *FrameWriter) AppendChunkScatter(c *Chunk, data [][]byte) {
	if len(fw.cur)+ChunkHeaderLen > cap(fw.cur) {
		alloc := fw.Alloc
		if alloc == nil {
			alloc = func(n int) []byte { return make([]byte, n) }
		}
		a := alloc(frameWriterArenaHeaders * ChunkHeaderLen)
		fw.arenas = append(fw.arenas, a)
		fw.cur = a[:0]
	}
	var dataLen int
	for _, d := range data {
		dataLen += len(d)
	}
	base := len(fw.cur)
	dst := fw.cur
	dst = binary.LittleEndian.AppendUint64(dst, c.Offset)
	dst = binary.LittleEndian.AppendUint64(dst, c.Total)
	dst = binary.LittleEndian.AppendUint32(dst, c.Index)
	dst = binary.LittleEndian.AppendUint32(dst, c.Count)
	dst = append(dst, c.Flags)
	dst = binary.LittleEndian.AppendUint32(dst, c.RawLen)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dataLen))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc placeholder
	crc := crc32.ChecksumIEEE(dst[base:])
	for _, d := range data {
		crc = crc32.Update(crc, crc32.IEEETable, d)
	}
	binary.LittleEndian.PutUint32(dst[base+ChunkHeaderLen-4:], crc)
	fw.cur = dst
	fw.segs = append(fw.segs, fw.cur[base:len(fw.cur):len(fw.cur)])
	for _, d := range data {
		if len(d) > 0 {
			fw.segs = append(fw.segs, d)
		}
	}
	fw.n += ChunkHeaderLen + dataLen
	fw.frames++
}

// Len returns the total encoded bytes across all appended frames.
func (fw *FrameWriter) Len() int { return fw.n }

// Frames returns how many chunk frames have been appended.
func (fw *FrameWriter) Frames() int { return fw.frames }

// Segments returns the accumulated scatter list. The slices alias the
// writer's arenas and the callers' data buffers; they are valid until Reset
// or Release.
func (fw *FrameWriter) Segments() net.Buffers { return fw.segs }

// Bytes renders the contiguous encoding (a copy) — test and fallback use.
func (fw *FrameWriter) Bytes() []byte {
	out := make([]byte, 0, fw.n)
	for _, s := range fw.segs {
		out = append(out, s...)
	}
	return out
}

// Reset forgets the segment list, keeping the first arena for reuse (any
// overflow arenas are dropped to the GC).
func (fw *FrameWriter) Reset() {
	fw.segs = fw.segs[:0]
	fw.n = 0
	fw.frames = 0
	if len(fw.arenas) > 0 {
		fw.cur = fw.arenas[0][:0]
		fw.arenas = fw.arenas[:1]
	} else {
		fw.cur = nil
	}
}

// Release returns every header arena through free (e.g. bufpool.Put) and
// clears the writer. Segments obtained earlier are invalid afterwards.
func (fw *FrameWriter) Release(free func([]byte)) {
	if free != nil {
		for _, a := range fw.arenas {
			free(a)
		}
	}
	fw.arenas = nil
	fw.cur = nil
	fw.segs = nil
	fw.n = 0
	fw.frames = 0
}
