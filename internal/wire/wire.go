// Package wire defines the framed binary protocol the distributed DVDC
// runtime speaks: a fixed header (type, epoch, group) plus string and byte
// fields, length-prefixed on the stream. The format is deliberately dumb —
// little-endian integers and explicit lengths — so a corrupted or truncated
// frame is always detected by the decoder rather than misparsed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol messages. Requests originate at the coordinator unless noted.
const (
	MsgHello MsgType = iota + 1 // probe; node replies with MsgHelloOK
	MsgHelloOK
	MsgConfigure // assign VMs/keepers and peer addresses to a node
	MsgConfigureOK
	MsgStep // run workload steps on hosted VMs
	MsgStepOK
	MsgPrepare // phase 1: capture deltas, ship to parity peers, stage
	MsgPrepareOK
	MsgCommit // phase 2: fold staged deltas into parity
	MsgCommitOK
	MsgAbort // undo a prepared capture
	MsgAbortOK
	MsgDelta // node -> parity peer: staged checkpoint delta for one VM
	MsgDeltaOK
	MsgGetImage // fetch a member's committed image (recovery source)
	MsgImage
	MsgReconstruct // parity node: rebuild a lost VM from survivor images
	MsgReconstructOK
	MsgInstall // target node: adopt a VM with the given image
	MsgInstallOK
	MsgChecksum // fetch a VM's committed-image checksum (verification)
	MsgChecksumOK
	MsgRollback // roll every hosted VM back to its committed checkpoint
	MsgRollbackOK
	MsgRebuildKeeper // become parity node for a group: pull member images, XOR
	MsgRebuildKeeperOK
	MsgSetParity // update the parity-node assignment for hosted VMs of a group
	MsgSetParityOK
	MsgStats // fetch a node's protocol counters (JSON in Text)
	MsgStatsOK
	MsgGetParity // fetch a group's parity block held by this node
	MsgGetParityOK
	MsgEvict // remove a quiescent VM from this node, returning its committed image
	MsgEvictOK
	MsgSetParityBatch // apply a batch of parity-node reassignments (JSON in Text)
	MsgSetParityBatchOK
	MsgError // any request may be answered with an error
)

// String names the message type.
func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgHello: "hello", MsgHelloOK: "hello-ok",
		MsgConfigure: "configure", MsgConfigureOK: "configure-ok",
		MsgStep: "step", MsgStepOK: "step-ok",
		MsgPrepare: "prepare", MsgPrepareOK: "prepare-ok",
		MsgCommit: "commit", MsgCommitOK: "commit-ok",
		MsgAbort: "abort", MsgAbortOK: "abort-ok",
		MsgDelta: "delta", MsgDeltaOK: "delta-ok",
		MsgGetImage: "get-image", MsgImage: "image",
		MsgReconstruct: "reconstruct", MsgReconstructOK: "reconstruct-ok",
		MsgInstall: "install", MsgInstallOK: "install-ok",
		MsgChecksum: "checksum", MsgChecksumOK: "checksum-ok",
		MsgRollback: "rollback", MsgRollbackOK: "rollback-ok",
		MsgRebuildKeeper: "rebuild-keeper", MsgRebuildKeeperOK: "rebuild-keeper-ok",
		MsgSetParity: "set-parity", MsgSetParityOK: "set-parity-ok",
		MsgStats: "stats", MsgStatsOK: "stats-ok",
		MsgGetParity: "get-parity", MsgGetParityOK: "get-parity-ok",
		MsgEvict: "evict", MsgEvictOK: "evict-ok",
		MsgSetParityBatch: "set-parity-batch", MsgSetParityBatchOK: "set-parity-batch-ok",
		MsgError: "error",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is one protocol frame.
type Message struct {
	Type    MsgType
	Epoch   uint64
	Group   int32
	Arg     uint64 // small numeric argument (steps, seeds, checksums)
	Trace   uint64 // observability: trace id this RPC belongs to (0 = untraced)
	Span    uint64 // observability: caller's span id (parent for remote work)
	VM      string // subject VM, when applicable
	Text    string // error text or auxiliary string (e.g. JSON config)
	Payload []byte // bulk data: deltas, images
}

// Fixed-header byte offsets. The chaos injector peeks at these to tag
// injected faults with the trace context of the frame it mangled.
const (
	TraceOffset    = 1 + 8 + 4 + 8   // Trace field within the encoded body
	SpanOffset     = TraceOffset + 8 // Span field within the encoded body
	FixedHeaderLen = SpanOffset + 8  // bytes before the VM length prefix
)

// MaxFrame bounds a frame to keep a corrupted length prefix from allocating
// unbounded memory. 256 MiB accommodates any test-scale VM image.
const MaxFrame = 256 << 20

// ErrFrame marks malformed frames.
var ErrFrame = errors.New("wire: malformed frame")

// Encode renders the message body (without the stream length prefix).
func (m *Message) Encode() []byte {
	n := FixedHeaderLen + 2 + len(m.VM) + 4 + len(m.Text) + 4 + len(m.Payload)
	out := make([]byte, 0, n)
	out = append(out, byte(m.Type))
	out = binary.LittleEndian.AppendUint64(out, m.Epoch)
	out = binary.LittleEndian.AppendUint32(out, uint32(m.Group))
	out = binary.LittleEndian.AppendUint64(out, m.Arg)
	out = binary.LittleEndian.AppendUint64(out, m.Trace)
	out = binary.LittleEndian.AppendUint64(out, m.Span)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.VM)))
	out = append(out, m.VM...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Text)))
	out = append(out, m.Text...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Payload)))
	out = append(out, m.Payload...)
	return out
}

// Decode parses a message body.
func Decode(b []byte) (*Message, error) {
	if len(b) < FixedHeaderLen+2 {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrFrame, len(b))
	}
	m := &Message{}
	off := 0
	m.Type = MsgType(b[off])
	off++
	m.Epoch = binary.LittleEndian.Uint64(b[off:])
	off += 8
	m.Group = int32(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	m.Arg = binary.LittleEndian.Uint64(b[off:])
	off += 8
	m.Trace = binary.LittleEndian.Uint64(b[off:])
	off += 8
	m.Span = binary.LittleEndian.Uint64(b[off:])
	off += 8
	take := func(n int) ([]byte, error) {
		if n < 0 || off+n > len(b) {
			return nil, fmt.Errorf("%w: truncated field", ErrFrame)
		}
		s := b[off : off+n]
		off += n
		return s, nil
	}
	vl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	vb, err := take(vl)
	if err != nil {
		return nil, err
	}
	m.VM = string(vb)
	if off+4 > len(b) {
		return nil, fmt.Errorf("%w: truncated text length", ErrFrame)
	}
	tl := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	tb, err := take(tl)
	if err != nil {
		return nil, err
	}
	m.Text = string(tb)
	if off+4 > len(b) {
		return nil, fmt.Errorf("%w: truncated payload length", ErrFrame)
	}
	pl := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	pb, err := take(pl)
	if err != nil {
		return nil, err
	}
	m.Payload = append([]byte(nil), pb...)
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(b)-off)
	}
	return m, nil
}

// WriteFrame writes a length-prefixed message to w.
func WriteFrame(w io.Writer, m *Message) error {
	body := m.Encode()
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds max %d", ErrFrame, len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds max %d", ErrFrame, n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Decode(body)
}

// IsDecodeErr reports whether err stems from frame decoding (ErrFrame): the
// bytes on the stream were corrupt or truncated. Transport code uses this to
// classify such failures as connection faults — the stream is garbage and the
// connection must be replaced — rather than caller errors: the request itself
// was fine, the wire mangled it.
func IsDecodeErr(err error) bool { return errors.Is(err, ErrFrame) }

// Errorf builds an error reply.
func Errorf(format string, args ...interface{}) *Message {
	return &Message{Type: MsgError, Text: fmt.Sprintf(format, args...)}
}

// RemoteError is an application-level error reply (MsgError) from the peer.
// The connection that carried it is still healthy: the handler ran and
// answered, it just answered with a failure. Transport code uses the
// distinction to decide whether a connection may be reused.
type RemoteError struct{ Text string }

// Error implements error.
func (e *RemoteError) Error() string { return "wire: remote error: " + e.Text }

// AsError converts an error reply into a Go error (nil for non-errors).
func (m *Message) AsError() error {
	if m.Type != MsgError {
		return nil
	}
	return &RemoteError{Text: m.Text}
}
