// Package wire defines the framed binary protocol the distributed DVDC
// runtime speaks: a fixed header (type, epoch, group) plus string and byte
// fields, length-prefixed on the stream. The format is deliberately dumb —
// little-endian integers and explicit lengths — so a corrupted or truncated
// frame is always detected by the decoder rather than misparsed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"dvdc/internal/bufpool"
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol messages. Requests originate at the coordinator unless noted.
const (
	MsgHello MsgType = iota + 1 // probe; node replies with MsgHelloOK
	MsgHelloOK
	MsgConfigure // assign VMs/keepers and peer addresses to a node
	MsgConfigureOK
	MsgStep // run workload steps on hosted VMs
	MsgStepOK
	MsgPrepare // phase 1: capture deltas, ship to parity peers, stage
	MsgPrepareOK
	MsgCommit // phase 2: fold staged deltas into parity
	MsgCommitOK
	MsgAbort // undo a prepared capture
	MsgAbortOK
	MsgDelta // node -> parity peer: staged checkpoint delta for one VM
	MsgDeltaOK
	MsgGetImage // fetch a member's committed image (recovery source)
	MsgImage
	MsgReconstruct // parity node: rebuild a lost VM from survivor images
	MsgReconstructOK
	MsgInstall // target node: adopt a VM with the given image
	MsgInstallOK
	MsgChecksum // fetch a VM's committed-image checksum (verification)
	MsgChecksumOK
	MsgRollback // roll every hosted VM back to its committed checkpoint
	MsgRollbackOK
	MsgRebuildKeeper // become parity node for a group: pull member images, XOR
	MsgRebuildKeeperOK
	MsgSetParity // update the parity-node assignment for hosted VMs of a group
	MsgSetParityOK
	MsgStats // fetch a node's protocol counters (JSON in Text)
	MsgStatsOK
	MsgGetParity // fetch a group's parity block held by this node
	MsgGetParityOK
	MsgEvict // remove a quiescent VM from this node, returning its committed image
	MsgEvictOK
	MsgSetParityBatch // apply a batch of parity-node reassignments (JSON in Text)
	MsgSetParityBatchOK
	MsgError // any request may be answered with an error

	// Chunked data path (appended after MsgError so existing wire values —
	// and the checked-in fuzz corpus — keep their numbering).
	MsgDeltaChunk // node -> parity peer: one chunk of a staged delta stream
	MsgDeltaChunkOK
	MsgReadChunk // fetch one chunk of a committed image or parity block
	MsgReadChunkOK
	MsgInstallChunk // target node: stage one chunk of an incoming VM image
	MsgInstallChunkOK

	// Adaptive data-path tuning (appended to keep earlier wire numbering and
	// the checked-in fuzz corpus stable).
	MsgRetune // live-retune a node's chunk size / pipeline width (JSON in Text)
	MsgRetuneOK
)

// msgNames is package-level: String runs per RPC on the hot path (span
// names, metric labels) and rebuilding the table there dominated the data
// path's allocation profile.
var msgNames = map[MsgType]string{
	MsgHello: "hello", MsgHelloOK: "hello-ok",
	MsgConfigure: "configure", MsgConfigureOK: "configure-ok",
	MsgStep: "step", MsgStepOK: "step-ok",
	MsgPrepare: "prepare", MsgPrepareOK: "prepare-ok",
	MsgCommit: "commit", MsgCommitOK: "commit-ok",
	MsgAbort: "abort", MsgAbortOK: "abort-ok",
	MsgDelta: "delta", MsgDeltaOK: "delta-ok",
	MsgGetImage: "get-image", MsgImage: "image",
	MsgReconstruct: "reconstruct", MsgReconstructOK: "reconstruct-ok",
	MsgInstall: "install", MsgInstallOK: "install-ok",
	MsgChecksum: "checksum", MsgChecksumOK: "checksum-ok",
	MsgRollback: "rollback", MsgRollbackOK: "rollback-ok",
	MsgRebuildKeeper: "rebuild-keeper", MsgRebuildKeeperOK: "rebuild-keeper-ok",
	MsgSetParity: "set-parity", MsgSetParityOK: "set-parity-ok",
	MsgStats: "stats", MsgStatsOK: "stats-ok",
	MsgGetParity: "get-parity", MsgGetParityOK: "get-parity-ok",
	MsgEvict: "evict", MsgEvictOK: "evict-ok",
	MsgSetParityBatch: "set-parity-batch", MsgSetParityBatchOK: "set-parity-batch-ok",
	MsgError:      "error",
	MsgDeltaChunk: "delta-chunk", MsgDeltaChunkOK: "delta-chunk-ok",
	MsgReadChunk: "read-chunk", MsgReadChunkOK: "read-chunk-ok",
	MsgInstallChunk: "install-chunk", MsgInstallChunkOK: "install-chunk-ok",
	MsgRetune: "retune", MsgRetuneOK: "retune-ok",
}

// String names the message type.
func (t MsgType) String() string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Bulk reports whether a frame type carries checkpoint or recovery payload —
// the data plane — as opposed to protocol control. Delta ships, image and
// parity transfers, and chunk streams qualify; requests, acks, and stats do
// not. The chaos layer keys its standing slow-node condition off this: a
// "habitually slow" node in the paper's sense has a congested data-plane
// ingest (the disk or NIC absorbing every member's delta stream), while
// small control frames ride an uncongested queue.
func (t MsgType) Bulk() bool {
	switch t {
	case MsgDelta, MsgDeltaChunk, MsgImage, MsgInstall, MsgInstallChunk,
		MsgReconstructOK, MsgReadChunkOK, MsgGetParityOK, MsgEvictOK:
		return true
	}
	return false
}

// Message is one protocol frame.
type Message struct {
	Type    MsgType
	Epoch   uint64
	Group   int32
	Arg     uint64 // small numeric argument (steps, seeds, checksums)
	Trace   uint64 // observability: trace id this RPC belongs to (0 = untraced)
	Span    uint64 // observability: caller's span id (parent for remote work)
	VM      string // subject VM, when applicable
	Text    string // error text or auxiliary string (e.g. JSON config)
	Payload []byte // bulk data: deltas, images

	// PayloadSegs is a send-only scatter list: when non-empty, the segments
	// are framed on the wire after Payload as if they had been concatenated
	// onto it, without ever being copied into one buffer (the ship path
	// batches chunk frames this way, writev-style). Receivers always see the
	// contiguous form — Decode fills Payload only. The segments are aliased,
	// not copied; they must stay valid and unmodified until the frame is
	// written.
	PayloadSegs net.Buffers
}

// payloadLen is the total payload length as framed: Payload plus every
// scatter segment.
func (m *Message) payloadLen() int {
	n := len(m.Payload)
	for _, s := range m.PayloadSegs {
		n += len(s)
	}
	return n
}

// Fixed-header byte offsets. The chaos injector peeks at these to tag
// injected faults with the trace context of the frame it mangled.
const (
	TraceOffset    = 1 + 8 + 4 + 8   // Trace field within the encoded body
	SpanOffset     = TraceOffset + 8 // Span field within the encoded body
	FixedHeaderLen = SpanOffset + 8  // bytes before the VM length prefix
)

// MaxFrame bounds a frame to keep a corrupted length prefix from allocating
// unbounded memory. 256 MiB accommodates any test-scale VM image.
const MaxFrame = 256 << 20

// ErrFrame marks malformed frames.
var ErrFrame = errors.New("wire: malformed frame")

// appendHead appends everything up to and including the payload length —
// the whole body except the payload bytes themselves.
func (m *Message) appendHead(out []byte) []byte {
	out = append(out, byte(m.Type))
	out = binary.LittleEndian.AppendUint64(out, m.Epoch)
	out = binary.LittleEndian.AppendUint32(out, uint32(m.Group))
	out = binary.LittleEndian.AppendUint64(out, m.Arg)
	out = binary.LittleEndian.AppendUint64(out, m.Trace)
	out = binary.LittleEndian.AppendUint64(out, m.Span)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.VM)))
	out = append(out, m.VM...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Text)))
	out = append(out, m.Text...)
	out = binary.LittleEndian.AppendUint32(out, uint32(m.payloadLen()))
	return out
}

// Encode renders the message body (without the stream length prefix).
func (m *Message) Encode() []byte {
	n := FixedHeaderLen + 2 + len(m.VM) + 4 + len(m.Text) + 4 + m.payloadLen()
	out := m.appendHead(make([]byte, 0, n))
	out = append(out, m.Payload...)
	for _, s := range m.PayloadSegs {
		out = append(out, s...)
	}
	return out
}

// Decode parses a message body.
func Decode(b []byte) (*Message, error) {
	if len(b) < FixedHeaderLen+2 {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrFrame, len(b))
	}
	m := &Message{}
	off := 0
	m.Type = MsgType(b[off])
	off++
	m.Epoch = binary.LittleEndian.Uint64(b[off:])
	off += 8
	m.Group = int32(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	m.Arg = binary.LittleEndian.Uint64(b[off:])
	off += 8
	m.Trace = binary.LittleEndian.Uint64(b[off:])
	off += 8
	m.Span = binary.LittleEndian.Uint64(b[off:])
	off += 8
	take := func(n int) ([]byte, error) {
		if n < 0 || off+n > len(b) {
			return nil, fmt.Errorf("%w: truncated field", ErrFrame)
		}
		s := b[off : off+n]
		off += n
		return s, nil
	}
	vl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	vb, err := take(vl)
	if err != nil {
		return nil, err
	}
	m.VM = string(vb)
	if off+4 > len(b) {
		return nil, fmt.Errorf("%w: truncated text length", ErrFrame)
	}
	tl := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	tb, err := take(tl)
	if err != nil {
		return nil, err
	}
	m.Text = string(tb)
	if off+4 > len(b) {
		return nil, fmt.Errorf("%w: truncated payload length", ErrFrame)
	}
	pl := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	pb, err := take(pl)
	if err != nil {
		return nil, err
	}
	if pl > 0 {
		// Copy into a pooled buffer so the caller's frame scratch can be
		// reused. Ownership of Payload passes to whoever consumes the
		// message; see transport's serve loop for the release point.
		m.Payload = bufpool.Get(pl)
		copy(m.Payload, pb)
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(b)-off)
	}
	return m, nil
}

// inlinePayload is the largest payload folded into the header write; bigger
// payloads are written as a second Write so a bulk chunk or image is never
// copied just to be framed.
const inlinePayload = 4 << 10

// WriteFrame writes a length-prefixed message to w. The length prefix and
// all header fields go out in one pooled-buffer write; a payload beyond
// inlinePayload follows as further writes straight from the caller's slices
// (Payload first, then each PayloadSegs segment — never copied into an
// assembly buffer).
func WriteFrame(w io.Writer, m *Message) error {
	pl := m.payloadLen()
	n := FixedHeaderLen + 2 + len(m.VM) + 4 + len(m.Text) + 4 + pl
	if n > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds max %d", ErrFrame, n, MaxFrame)
	}
	head := 4 + n - pl
	inline := pl <= inlinePayload
	want := head
	if inline {
		want += pl
	}
	buf := bufpool.Get(want)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = m.appendHead(buf)
	if inline {
		buf = append(buf, m.Payload...)
		for _, s := range m.PayloadSegs {
			buf = append(buf, s...)
		}
	}
	_, err := w.Write(buf)
	if err == nil && !inline {
		if len(m.Payload) > 0 {
			_, err = w.Write(m.Payload)
		}
		for _, s := range m.PayloadSegs {
			if err != nil {
				break
			}
			if len(s) > 0 {
				_, err = w.Write(s)
			}
		}
	}
	bufpool.Put(buf)
	return err
}

// ReadFrame reads one length-prefixed message from r. The frame scratch is
// pooled: Decode copies every field out, so the scratch is released before
// returning.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds max %d", ErrFrame, n, MaxFrame)
	}
	body := bufpool.Get(int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		bufpool.Put(body)
		return nil, err
	}
	m, err := Decode(body)
	bufpool.Put(body)
	return m, err
}

// IsDecodeErr reports whether err stems from frame decoding (ErrFrame): the
// bytes on the stream were corrupt or truncated. Transport code uses this to
// classify such failures as connection faults — the stream is garbage and the
// connection must be replaced — rather than caller errors: the request itself
// was fine, the wire mangled it.
func IsDecodeErr(err error) bool { return errors.Is(err, ErrFrame) }

// Errorf builds an error reply.
func Errorf(format string, args ...interface{}) *Message {
	return &Message{Type: MsgError, Text: fmt.Sprintf(format, args...)}
}

// RemoteError is an application-level error reply (MsgError) from the peer.
// The connection that carried it is still healthy: the handler ran and
// answered, it just answered with a failure. Transport code uses the
// distinction to decide whether a connection may be reused.
type RemoteError struct{ Text string }

// Error implements error.
func (e *RemoteError) Error() string { return "wire: remote error: " + e.Text }

// AsError converts an error reply into a Go error (nil for non-errors).
func (m *Message) AsError() error {
	if m.Type != MsgError {
		return nil
	}
	return &RemoteError{Text: m.Text}
}
