package wire

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"dvdc/internal/bufpool"
)

var regenSGCorpus = flag.Bool("regen-sg-corpus", false, "rewrite the scatter-gather fuzz corpus under testdata/")

const sgCorpusDir = "testdata/fuzz/FuzzScatterGatherFrames"

// sgSeed is one scatter-gather fuzz seed: a stream to chunk, the chunk
// payload size, and whether to flate-compress alternating chunks.
type sgSeed struct {
	block     []byte
	chunkSize int
	deflate   bool
}

// sgCorpus deterministically generates the checked-in seed corpus for
// FuzzScatterGatherFrames: empty and single-byte streams, word-boundary-
// straddling chunk sizes, highly compressible data (so the flate path
// produces RawLen != datalen frames), and page-scale random blocks. The
// generator is the source of truth; TestSGCorpusCheckedIn fails if the
// files on disk drift (rerun with -regen-sg-corpus to refresh).
func sgCorpus() []sgSeed {
	rng := rand.New(rand.NewSource(0x5CA77E2))
	randb := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	return []sgSeed{
		{nil, 64, false},         // empty stream still ships one frame
		{[]byte{0xA5}, 1, false}, // single byte, chunk per byte
		{randb(37), 7, false},    // header-size block, odd chunks
		{bytes.Repeat([]byte("checkpoint"), 200), 512, true}, // compressible, flate on
		{randb(3000), 1024, false},                           // incompressible mid-size
		{randb(4093), 37, true},                              // odd total, header-sized chunks
		{randb(4 * 4096), 4096, false},                       // page-aligned stream
	}
}

func sgCorpusPath(i int) string {
	return filepath.Join(sgCorpusDir, fmt.Sprintf("sg-%03d", i))
}

// encodeSGCorpusEntry renders one seed in the `go test fuzz v1` format for
// the (block, chunkSize, deflate) fuzz signature.
func encodeSGCorpusEntry(s sgSeed) []byte {
	return []byte("go test fuzz v1\n" +
		"[]byte(" + strconv.Quote(string(s.block)) + ")\n" +
		"int(" + strconv.Itoa(s.chunkSize) + ")\n" +
		"bool(" + strconv.FormatBool(s.deflate) + ")\n")
}

// TestSGCorpusCheckedIn pins the checked-in corpus to the generator.
func TestSGCorpusCheckedIn(t *testing.T) {
	entries := sgCorpus()
	if *regenSGCorpus {
		if err := os.MkdirAll(sgCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, e := range entries {
			if err := os.WriteFile(sgCorpusPath(i), encodeSGCorpusEntry(e), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d corpus entries", len(entries))
		return
	}
	for i, e := range entries {
		got, err := os.ReadFile(sgCorpusPath(i))
		if err != nil {
			t.Fatalf("corpus entry %d missing (run go test -run TestSGCorpusCheckedIn -regen-sg-corpus): %v", i, err)
		}
		if !bytes.Equal(got, encodeSGCorpusEntry(e)) {
			t.Errorf("corpus entry %d drifted from generator", i)
		}
	}
}

// sgRoundTrip chunks block at chunkSize, encodes the stream through a
// FrameWriter, and asserts the scatter-gather form is byte-identical to the
// contiguous AppendChunk encoding, frames a Message through the segmented
// WriteFrame path, and decodes everything back through the unchanged
// DecodeChunkPrefix/Assembler pipeline.
func sgRoundTrip(t *testing.T, block []byte, chunkSize int, deflate bool) {
	t.Helper()
	count := ChunkCount(len(block), chunkSize)
	if count > MaxChunkCount {
		t.Skip("chunk count out of protocol range")
	}
	fw := FrameWriter{Alloc: bufpool.Get}
	defer fw.Release(bufpool.Put)
	scattered := FrameWriter{Alloc: bufpool.Get}
	defer scattered.Release(bufpool.Put)
	var contiguous []byte
	// Deterministic splitter for the AppendChunkScatter leg: cut each
	// chunk's data into uneven pieces (the ship path hands page subslices).
	pieceSizes := []int{1, 7, 64, 1024}
	for i := 0; i < count; i++ {
		c, err := ChunkOf(block, i, chunkSize)
		if err != nil {
			t.Fatal(err)
		}
		if deflate && i%2 == 0 {
			c.Deflate()
		}
		fw.AppendChunk(&c)
		var pieces [][]byte
		for at, pi := 0, i; at < len(c.Data); pi++ {
			n := min(pieceSizes[pi%len(pieceSizes)], len(c.Data)-at)
			pieces = append(pieces, c.Data[at:at+n])
			at += n
		}
		stripped := c
		stripped.Data = nil
		scattered.AppendChunkScatter(&stripped, pieces)
		contiguous = AppendChunk(contiguous, &c)
	}
	if fw.Frames() != count {
		t.Fatalf("FrameWriter counts %d frames, appended %d", fw.Frames(), count)
	}
	if fw.Len() != len(contiguous) {
		t.Fatalf("FrameWriter length %d, contiguous encoding %d", fw.Len(), len(contiguous))
	}
	if got := fw.Bytes(); !bytes.Equal(got, contiguous) {
		t.Fatal("scatter-gather encoding diverges from AppendChunk")
	}
	if got := scattered.Bytes(); !bytes.Equal(got, contiguous) {
		t.Fatal("AppendChunkScatter encoding diverges from AppendChunk")
	}

	// Frame a message with the scatter list and read it back: the receiver
	// must see the contiguous payload.
	msg := &Message{Type: MsgDeltaChunk, Epoch: 3, VM: "vm-sg", PayloadSegs: fw.Segments()}
	var stream bytes.Buffer
	if err := WriteFrame(&stream, msg); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadFrame(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt.Payload, contiguous) {
		t.Fatal("segmented WriteFrame payload diverges from contiguous encoding")
	}

	// Decode the received payload through the existing chunk pipeline.
	var asm Assembler
	rest := rt.Payload
	for len(rest) > 0 {
		c, n, err := DecodeChunkPrefix(rest)
		if err != nil {
			t.Fatalf("decode scatter-gather frame: %v", err)
		}
		if err := asm.Add(c); err != nil {
			t.Fatalf("assemble scatter-gather frame: %v", err)
		}
		rest = rest[n:]
	}
	out, err := asm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, block) {
		t.Fatal("assembled stream diverges from source block")
	}
}

// FuzzScatterGatherFrames asserts the FrameWriter's scatter-gather frames
// are byte-identical to the contiguous encoding and decode through the
// unchanged DecodeChunk/Assembler path.
func FuzzScatterGatherFrames(f *testing.F) {
	for _, e := range sgCorpus() {
		f.Add(e.block, e.chunkSize, e.deflate)
	}
	f.Fuzz(func(t *testing.T, block []byte, chunkSize int, deflate bool) {
		if len(block) > 1<<18 {
			t.Skip("block beyond test scale")
		}
		chunkSize &= 0xFFFF
		if chunkSize == 0 {
			chunkSize = 1
		}
		sgRoundTrip(t, block, chunkSize, deflate)
	})
}

// TestScatterGatherCorpusRoundTrips runs every generated seed through the
// full round trip as a plain test, so the property holds in `go test` runs
// without the fuzz engine.
func TestScatterGatherCorpusRoundTrips(t *testing.T) {
	for i, e := range sgCorpus() {
		e := e
		t.Run(fmt.Sprintf("seed-%03d", i), func(t *testing.T) {
			sgRoundTrip(t, e.block, e.chunkSize, e.deflate)
		})
	}
}

// TestFrameWriterResetReuse exercises arena reuse across Reset and the
// multi-arena growth path (enough frames to spill the first arena).
func TestFrameWriterResetReuse(t *testing.T) {
	var fw FrameWriter
	block := bytes.Repeat([]byte{0x42}, 4096)
	for round := 0; round < 3; round++ {
		var contiguous []byte
		n := 2*frameWriterArenaHeaders + 3 // force a second and third arena
		for i := 0; i < n; i++ {
			c, err := ChunkOf(block, i, 16) // 256 chunks exist; reuse low indices
			if err != nil {
				c, err = ChunkOf(block, i%16, 256)
				if err != nil {
					t.Fatal(err)
				}
			}
			fw.AppendChunk(&c)
			contiguous = AppendChunk(contiguous, &c)
		}
		if got := fw.Bytes(); !bytes.Equal(got, contiguous) {
			t.Fatalf("round %d: scatter-gather encoding diverges after Reset", round)
		}
		fw.Reset()
	}
	fw.Release(nil)
}
