package wire

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// FuzzChunkReassembly drives the chunk codec and assembler with a hostile
// delivery schedule: out-of-order, duplicated, truncated, bit-flipped, and
// conflicting chunk frames. The invariants are absolute — a mangled encoding
// never decodes (the CRC covers header and data), a conflicting delivery
// never lands silently, and once every genuine chunk has been delivered the
// assembly is byte-identical to the original payload.
//
// script is a byte program: each byte picks an operation (low bits) and a
// parameter (high bits). Whatever the schedule, the harness finishes by
// delivering all remaining chunks, so every run checks final assembly too.
func FuzzChunkReassembly(f *testing.F) {
	for _, seed := range chunkCorpus() {
		f.Add(seed.payload, seed.chunkSize, seed.script)
	}
	f.Fuzz(func(t *testing.T, payload []byte, chunkSize uint16, script []byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		cs := 1 + int(chunkSize)%4096
		count := ChunkCount(len(payload), cs)
		encs := make([][]byte, count)
		chunks := make([]Chunk, count)
		for i := range encs {
			c, err := ChunkOf(payload, i, cs)
			if err != nil {
				t.Fatalf("ChunkOf(%d): %v", i, err)
			}
			chunks[i] = c
			encs[i] = EncodeChunk(&c)
		}

		var asm Assembler
		delivered := make([]bool, count)
		deliveredCount := 0
		deliver := func(i int) {
			c, err := DecodeChunk(encs[i])
			if err != nil {
				t.Fatalf("own encoding of chunk %d rejected: %v", i, err)
			}
			if err := asm.Add(c); err != nil {
				t.Fatalf("genuine chunk %d rejected: %v", i, err)
			}
			if !delivered[i] {
				delivered[i] = true
				deliveredCount++
			}
		}

		for _, op := range script {
			arg := int(op >> 3)
			switch op % 6 {
			case 0: // deliver the next undelivered chunk in order
				for i, d := range delivered {
					if !d {
						deliver(i)
						break
					}
				}
			case 1: // deliver an arbitrary chunk (out of order)
				deliver(arg % count)
			case 2: // exact duplicate of an already-delivered chunk: no-op
				if deliveredCount > 0 {
					for i := arg % count; ; i = (i + 1) % count {
						if delivered[i] {
							deliver(i)
							break
						}
					}
				}
			case 3: // truncated encoding must fail CRC/length checks
				i := arg % count
				cut := 1 + arg%len(encs[i])
				if _, err := DecodeChunk(encs[i][:len(encs[i])-cut]); err == nil {
					t.Fatalf("truncated chunk %d decoded", i)
				} else if !errors.Is(err, ErrFrame) {
					t.Fatalf("truncated chunk %d: untyped error %v", i, err)
				}
			case 4: // single bit flip anywhere must fail the CRC
				i := arg % count
				mangled := append([]byte(nil), encs[i]...)
				pos := arg % len(mangled)
				mangled[pos] ^= 1 << (arg % 8)
				if bytes.Equal(mangled, encs[i]) {
					continue // zero-bit "flip"
				}
				if _, err := DecodeChunk(mangled); err == nil {
					t.Fatalf("bit-flipped chunk %d (byte %d) decoded", i, pos)
				} else if !errors.Is(err, ErrFrame) {
					t.Fatalf("bit-flipped chunk %d: untyped error %v", i, err)
				}
			case 5: // validly-encoded conflict: re-CRC'd different content
				if deliveredCount == 0 {
					continue // shape not fixed yet; a conflict would *become* the stream
				}
				i := arg % count
				if !delivered[i] || len(chunks[i].Data) == 0 {
					continue
				}
				evil := chunks[i]
				evil.Data = append([]byte(nil), evil.Data...)
				evil.Data[arg%len(evil.Data)] ^= 0xFF
				c, err := DecodeChunk(EncodeChunk(&evil))
				if err != nil {
					t.Fatalf("re-encoded conflict chunk rejected at decode: %v", err)
				}
				if err := asm.Add(c); err == nil {
					t.Fatalf("conflicting content for chunk %d accepted", i)
				}
			}
		}

		// However hostile the schedule was, the genuine stream must still
		// assemble perfectly.
		for i := range delivered {
			if !delivered[i] {
				deliver(i)
			}
		}
		if !asm.Complete() {
			t.Fatal("stream incomplete after all chunks delivered")
		}
		got, err := asm.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("assembled bytes differ from payload")
		}
	})
}

// chunkSeed is one seed triple for FuzzChunkReassembly.
type chunkSeed struct {
	payload   []byte
	chunkSize uint16
	script    []byte
}

const chunkCorpusDir = "testdata/fuzz/FuzzChunkReassembly"

// chunkCorpus deterministically generates the checked-in seed corpus:
// payload/chunk-size shapes that exercise single-chunk, many-chunk, odd-tail,
// and empty streams, with scripts that hit every op. As with the FuzzDecode
// corpus, the generator is the source of truth and a drift test pins the
// files on disk to it.
func chunkCorpus() []chunkSeed {
	rng := rand.New(rand.NewSource(0xC4A11C))
	allOps := make([]byte, 48)
	for i := range allOps {
		allOps[i] = byte(rng.Intn(256))
	}
	seeds := []chunkSeed{
		{nil, 64, []byte{0}},                           // empty stream
		{[]byte("x"), 0, []byte{0, 1, 2, 3, 4, 5}},     // 1-byte payload, cs=1
		{bytes.Repeat([]byte{0xAB}, 300), 7, allOps},   // many tiny chunks
		{randPayload(rng, 1000), 64, allOps},           // odd tail
		{randPayload(rng, 4096), 4095, []byte{1, 9}},   // boundary straddle
		{randPayload(rng, 100), 512, []byte{3, 4, 5}},  // single chunk, attacks only
		{randPayload(rng, 2048), 100, reverseScript()}, // strictly reverse order
	}
	return seeds
}

func randPayload(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// reverseScript delivers high indices first via op 1 with descending args.
func reverseScript() []byte {
	var s []byte
	for i := 30; i >= 0; i-- {
		s = append(s, byte(i<<3|1))
	}
	return s
}

// encodeChunkSeed renders one seed in the `go test fuzz v1` format (three
// typed arguments, one per line).
func encodeChunkSeed(s chunkSeed) []byte {
	return []byte("go test fuzz v1\n" +
		"[]byte(" + strconv.Quote(string(s.payload)) + ")\n" +
		"uint16(" + strconv.FormatUint(uint64(s.chunkSize), 10) + ")\n" +
		"[]byte(" + strconv.Quote(string(s.script)) + ")\n")
}

// TestChunkCorpusCheckedIn pins the checked-in corpus to the generator
// (rerun with -regen-corpus to refresh it).
func TestChunkCorpusCheckedIn(t *testing.T) {
	seeds := chunkCorpus()
	path := func(i int) string {
		return filepath.Join(chunkCorpusDir, fmt.Sprintf("seed-%03d", i))
	}
	if *regenCorpus {
		if err := os.MkdirAll(chunkCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			if err := os.WriteFile(path(i), encodeChunkSeed(s), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d chunk corpus entries", len(seeds))
		return
	}
	for i, s := range seeds {
		got, err := os.ReadFile(path(i))
		if err != nil {
			t.Fatalf("chunk corpus entry %d missing (run go test -run TestChunkCorpusCheckedIn -regen-corpus): %v", i, err)
		}
		if !bytes.Equal(got, encodeChunkSeed(s)) {
			t.Errorf("chunk corpus entry %d drifted from generator", i)
		}
	}
	// And every file on disk must be an entry the generator knows about.
	files, err := filepath.Glob(filepath.Join(chunkCorpusDir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(seeds) {
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = filepath.Base(f)
		}
		t.Errorf("corpus has %d files, generator makes %d: %s", len(files), len(seeds), strings.Join(names, ", "))
	}
}
