package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Chunk framing: the checkpoint data path ships deltas, images, and parity
// blocks as streams of fixed-size chunks instead of monolithic payloads, so
// network transfer and parity folding overlap and no image-sized buffer is
// ever allocated per message. A chunk is one contiguous byte range of the
// stream, self-describing enough to be folded or assembled on arrival in any
// order:
//
//	offset  u64  byte offset of the chunk's (inflated) data in the stream
//	total   u64  total stream bytes
//	index   u32  chunk ordinal within the stream, < count
//	count   u32  chunks in the stream
//	flags   u8   bit 0: data is flate-compressed
//	rawlen  u32  inflated data length (== datalen when uncompressed)
//	datalen u32  carried (possibly compressed) bytes
//	crc     u32  IEEE CRC32 of the whole encoding with this field zeroed
//	data    ...
//
// Unlike the outer Message framing, chunks carry a checksum: a mangled
// interior byte of a monolithic frame could decode into a silently wrong
// payload, but a chunk that is folded straight into parity on arrival must
// be verified before the fold — the CRC covers header and data, so any
// single-burst corruption (including a flipped offset or index) is detected
// and the receiver fails loudly instead of corrupting parity.

// ChunkHeaderLen is the fixed chunk header size preceding the data.
const ChunkHeaderLen = 8 + 8 + 4 + 4 + 1 + 4 + 4 + 4

// DefaultChunkSize is the data-path chunk payload size when the operator
// does not choose one. 64 KiB keeps per-chunk overhead under 0.1% while
// giving the keeper fold pipeline enough grain to overlap with transfer.
const DefaultChunkSize = 64 << 10

// MaxChunkCount bounds a stream's chunk count so a hostile header cannot
// make an assembler allocate unbounded bookkeeping.
const MaxChunkCount = 1 << 16

// ChunkFlate marks a chunk whose data is flate-compressed.
const ChunkFlate = 1 << 0

const chunkKnownFlags = ChunkFlate

// Chunk is one decoded chunk frame. Data aliases the decoder's input; copy
// it before the input buffer is reused.
type Chunk struct {
	Offset uint64
	Total  uint64
	Index  uint32
	Count  uint32
	Flags  uint8
	RawLen uint32 // inflated data length
	Data   []byte
}

// ChunkCount returns how many chunks of size chunkSize cover total bytes
// (at least 1, so even an empty stream announces itself).
func ChunkCount(total, chunkSize int) int {
	if total <= 0 {
		return 1
	}
	return (total + chunkSize - 1) / chunkSize
}

// ChunkOf slices chunk index out of a contiguous block: the byte range
// [index*chunkSize, min((index+1)*chunkSize, len(block))). Data aliases
// block.
func ChunkOf(block []byte, index, chunkSize int) (Chunk, error) {
	count := ChunkCount(len(block), chunkSize)
	if index < 0 || index >= count {
		return Chunk{}, fmt.Errorf("%w: chunk index %d of %d", ErrFrame, index, count)
	}
	lo := index * chunkSize
	hi := min(lo+chunkSize, len(block))
	if lo > hi {
		lo = hi
	}
	return Chunk{
		Offset: uint64(lo),
		Total:  uint64(len(block)),
		Index:  uint32(index),
		Count:  uint32(count),
		RawLen: uint32(hi - lo),
		Data:   block[lo:hi],
	}, nil
}

// Deflate attempts to flate-compress the chunk's data (RawLen must already
// describe it). The compressed form is kept only when strictly smaller.
func (c *Chunk) Deflate() {
	if c.Flags&ChunkFlate != 0 || len(c.Data) == 0 {
		return
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return
	}
	if _, err := w.Write(c.Data); err != nil || w.Close() != nil {
		return
	}
	if buf.Len() < len(c.Data) {
		c.Data = buf.Bytes()
		c.Flags |= ChunkFlate
	}
}

// AppendChunk appends the chunk's canonical encoding to dst (which may come
// from a buffer pool) and returns the extended slice.
func AppendChunk(dst []byte, c *Chunk) []byte {
	base := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, c.Offset)
	dst = binary.LittleEndian.AppendUint64(dst, c.Total)
	dst = binary.LittleEndian.AppendUint32(dst, c.Index)
	dst = binary.LittleEndian.AppendUint32(dst, c.Count)
	dst = append(dst, c.Flags)
	dst = binary.LittleEndian.AppendUint32(dst, c.RawLen)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Data)))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc placeholder
	dst = append(dst, c.Data...)
	crc := crc32.ChecksumIEEE(dst[base:])
	binary.LittleEndian.PutUint32(dst[base+ChunkHeaderLen-4:], crc)
	return dst
}

// EncodeChunk renders the chunk's canonical encoding.
func EncodeChunk(c *Chunk) []byte {
	return AppendChunk(make([]byte, 0, ChunkHeaderLen+len(c.Data)), c)
}

// DecodeChunkPrefix parses and verifies the chunk frame at the start of b,
// returning the decoded chunk and the encoded length consumed. Frames are
// self-delimiting (the header carries the data length), so several frames
// packed back-to-back in one message payload — the shipping path batches
// small run-bounded chunks this way to amortize per-message cost — decode by
// repeated calls. The returned Data aliases b.
func DecodeChunkPrefix(b []byte) (Chunk, int, error) {
	if len(b) < ChunkHeaderLen {
		return Chunk{}, 0, fmt.Errorf("%w: chunk: short header (%d bytes)", ErrFrame, len(b))
	}
	dataLen := binary.LittleEndian.Uint32(b[29:])
	n := ChunkHeaderLen + int(dataLen)
	if int(dataLen) > MaxFrame || n > len(b) {
		return Chunk{}, 0, fmt.Errorf("%w: chunk: frame wants %d bytes, %d present", ErrFrame, n, len(b))
	}
	c, err := DecodeChunk(b[:n])
	if err != nil {
		return Chunk{}, 0, err
	}
	return c, n, nil
}

// DecodeChunk parses and verifies one chunk encoding. The returned Data
// aliases b. Any mismatch — truncation, trailing bytes, a failed CRC, or an
// inconsistent header — is an ErrFrame: chunked receivers fail loudly rather
// than fold questionable bytes into parity.
func DecodeChunk(b []byte) (Chunk, error) {
	var c Chunk
	bad := func(format string, args ...interface{}) (Chunk, error) {
		return Chunk{}, fmt.Errorf("%w: chunk: %s", ErrFrame, fmt.Sprintf(format, args...))
	}
	if len(b) < ChunkHeaderLen {
		return bad("short header (%d bytes)", len(b))
	}
	c.Offset = binary.LittleEndian.Uint64(b)
	c.Total = binary.LittleEndian.Uint64(b[8:])
	c.Index = binary.LittleEndian.Uint32(b[16:])
	c.Count = binary.LittleEndian.Uint32(b[20:])
	c.Flags = b[24]
	c.RawLen = binary.LittleEndian.Uint32(b[25:])
	dataLen := binary.LittleEndian.Uint32(b[29:])
	crc := binary.LittleEndian.Uint32(b[33:])
	if int(dataLen) != len(b)-ChunkHeaderLen {
		return bad("data length %d, %d bytes present", dataLen, len(b)-ChunkHeaderLen)
	}
	// Verify the CRC over the exact bytes as sent, with the CRC field zeroed.
	sum := crc32.NewIEEE()
	sum.Write(b[:ChunkHeaderLen-4])
	sum.Write([]byte{0, 0, 0, 0})
	sum.Write(b[ChunkHeaderLen:])
	if sum.Sum32() != crc {
		return bad("crc mismatch (got %08x, header says %08x)", sum.Sum32(), crc)
	}
	if c.Flags&^uint8(chunkKnownFlags) != 0 {
		return bad("unknown flags %#x", c.Flags)
	}
	if c.Count == 0 || c.Count > MaxChunkCount {
		return bad("count %d out of range", c.Count)
	}
	if c.Index >= c.Count {
		return bad("index %d of %d", c.Index, c.Count)
	}
	if c.Total > MaxFrame {
		return bad("total %d exceeds frame limit", c.Total)
	}
	if c.RawLen > MaxFrame || c.Offset+uint64(c.RawLen) > c.Total {
		return bad("range [%d,+%d) outside total %d", c.Offset, c.RawLen, c.Total)
	}
	if c.Flags&ChunkFlate == 0 && c.RawLen != dataLen {
		return bad("uncompressed chunk claims rawlen %d with %d data bytes", c.RawLen, dataLen)
	}
	c.Data = b[ChunkHeaderLen:]
	return c, nil
}

// Inflate returns the chunk's uncompressed data: Data itself when the chunk
// is raw (aliasing it), or a fresh buffer from alloc (nil = make) when
// flate-compressed. The inflated size must match RawLen exactly.
func (c Chunk) Inflate(alloc func(int) []byte) ([]byte, error) {
	if c.Flags&ChunkFlate == 0 {
		return c.Data, nil
	}
	if alloc == nil {
		alloc = func(n int) []byte { return make([]byte, n) }
	}
	out := alloc(int(c.RawLen))
	r := flate.NewReader(bytes.NewReader(c.Data))
	defer r.Close()
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("%w: chunk inflate: %v", ErrFrame, err)
	}
	// The stream must end exactly at RawLen.
	var sniff [1]byte
	if n, _ := r.Read(sniff[:]); n != 0 {
		return nil, fmt.Errorf("%w: chunk inflates past rawlen %d", ErrFrame, c.RawLen)
	}
	return out, nil
}

// Assembler reassembles a chunk stream into its contiguous byte image.
// Chunks may arrive in any order; an exact duplicate of an already-applied
// chunk is an idempotent no-op (retried RPCs re-deliver chunks whose reply
// was lost), while any conflicting delivery — overlapping ranges from
// different chunks, a duplicate index with different content, or headers
// disagreeing about the stream shape — is a hard error.
type Assembler struct {
	// Alloc provides the backing buffer (and inflate scratch); nil = make.
	// Set it before the first Add.
	Alloc func(int) []byte

	buf     []byte
	started bool
	total   uint64
	count   uint32
	offs    []uint64
	lens    []uint32
	seen    []bool
	got     uint32
	covered uint64
}

// Add verifies one chunk against the stream and copies its data into place.
func (a *Assembler) Add(c Chunk) error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: assemble: %s", ErrFrame, fmt.Sprintf(format, args...))
	}
	if !a.started {
		a.started = true
		a.total, a.count = c.Total, c.Count
		alloc := a.Alloc
		if alloc == nil {
			alloc = func(n int) []byte { return make([]byte, n) }
		}
		a.buf = alloc(int(a.total))
		a.offs = make([]uint64, a.count)
		a.lens = make([]uint32, a.count)
		a.seen = make([]bool, a.count)
	}
	if c.Total != a.total || c.Count != a.count {
		return bad("chunk %d describes stream %d/%d, assembling %d/%d",
			c.Index, c.Total, c.Count, a.total, a.count)
	}
	if c.Index >= a.count || c.Offset+uint64(c.RawLen) > a.total {
		return bad("chunk %d range [%d,+%d) outside stream", c.Index, c.Offset, c.RawLen)
	}
	data, err := c.Inflate(a.Alloc)
	if err != nil {
		return err
	}
	if a.seen[c.Index] {
		if c.Offset != a.offs[c.Index] || c.RawLen != a.lens[c.Index] ||
			!bytes.Equal(data, a.buf[c.Offset:c.Offset+uint64(c.RawLen)]) {
			return bad("chunk %d re-delivered with different content", c.Index)
		}
		return nil // idempotent duplicate
	}
	for i := range a.seen {
		if !a.seen[i] || a.lens[i] == 0 || c.RawLen == 0 {
			continue
		}
		if c.Offset < a.offs[i]+uint64(a.lens[i]) && a.offs[i] < c.Offset+uint64(c.RawLen) {
			return bad("chunk %d [%d,+%d) overlaps chunk %d [%d,+%d)",
				c.Index, c.Offset, c.RawLen, i, a.offs[i], a.lens[i])
		}
	}
	copy(a.buf[c.Offset:], data)
	a.offs[c.Index], a.lens[c.Index] = c.Offset, c.RawLen
	a.seen[c.Index] = true
	a.got++
	a.covered += uint64(c.RawLen)
	return nil
}

// Complete reports whether every chunk arrived and the stream is fully
// covered.
func (a *Assembler) Complete() bool {
	return a.started && a.got == a.count && a.covered == a.total
}

// Bytes returns the assembled image; ownership transfers to the caller.
func (a *Assembler) Bytes() ([]byte, error) {
	if !a.Complete() {
		var missing uint32
		if a.started {
			missing = a.count - a.got
		}
		return nil, fmt.Errorf("%w: assemble: stream incomplete (%d chunks missing, %d/%d bytes)",
			ErrFrame, missing, a.covered, a.total)
	}
	return a.buf, nil
}

// Buffer exposes the backing buffer regardless of completeness, so an owner
// abandoning a partial stream can return it to its pool.
func (a *Assembler) Buffer() []byte { return a.buf }
