package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sample() *Message {
	return &Message{
		Type:    MsgDelta,
		Epoch:   42,
		Group:   -3,
		Arg:     0xdeadbeef,
		Trace:   0x1122334455667788,
		Span:    0x99aabbccddeeff00,
		VM:      "vm-01.02",
		Text:    "aux",
		Payload: []byte{1, 2, 3, 4, 5},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Epoch != m.Epoch || got.Group != m.Group ||
		got.Arg != m.Arg || got.Trace != m.Trace || got.Span != m.Span ||
		got.VM != m.VM || got.Text != m.Text ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

// TestTraceOffsets pins the exported header offsets to the encoding: the
// chaos injector reads trace context straight out of raw frame bytes at
// these positions, so they must track Encode exactly.
func TestTraceOffsets(t *testing.T) {
	enc := sample().Encode()
	if got := binaryLE64(enc[TraceOffset:]); got != sample().Trace {
		t.Errorf("Trace at offset %d = %x", TraceOffset, got)
	}
	if got := binaryLE64(enc[SpanOffset:]); got != sample().Span {
		t.Errorf("Span at offset %d = %x", SpanOffset, got)
	}
	if FixedHeaderLen != SpanOffset+8 {
		t.Error("FixedHeaderLen out of step with field offsets")
	}
}

func binaryLE64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestDecodeEmptyFields(t *testing.T) {
	m := &Message{Type: MsgHello}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.VM != "" || got.Text != "" || len(got.Payload) != 0 {
		t.Errorf("empty fields round trip: %+v", got)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := sample().Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d/%d", cut, len(enc))
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 9)); err == nil {
		t.Error("accepted trailing byte")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := sample()
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VM != m.VM || !bytes.Equal(got.Payload, m.Payload) {
		t.Error("frame round trip mismatch")
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB length prefix
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestMultipleFramesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		m := sample()
		m.Epoch = uint64(i)
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Epoch != uint64(i) {
			t.Errorf("frame %d: epoch %d", i, got.Epoch)
		}
	}
}

func TestErrorHelpers(t *testing.T) {
	e := Errorf("boom %d", 7)
	if e.Type != MsgError || e.Text != "boom 7" {
		t.Errorf("Errorf: %+v", e)
	}
	if err := e.AsError(); err == nil {
		t.Error("AsError should be non-nil for MsgError")
	}
	ok := &Message{Type: MsgCommitOK}
	if err := ok.AsError(); err != nil {
		t.Error("AsError should be nil for non-errors")
	}
}

func TestMsgTypeString(t *testing.T) {
	for mt := MsgHello; mt <= MsgError; mt++ {
		if mt.String() == "" {
			t.Errorf("empty name for %d", mt)
		}
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type should render")
	}
}

// Property: arbitrary field contents round trip exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(epoch uint64, group int32, arg uint64, vm, text string, payload []byte) bool {
		if len(vm) > 1000 {
			vm = vm[:1000]
		}
		m := &Message{Type: MsgImage, Epoch: epoch, Group: group, Arg: arg, VM: vm, Text: text, Payload: payload}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return got.Epoch == epoch && got.Group == group && got.Arg == arg &&
			got.VM == vm && got.Text == text && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
