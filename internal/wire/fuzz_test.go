package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the frame decoder: it must never
// panic, and everything it accepts must re-encode to the same bytes
// (canonical form).
func FuzzDecode(f *testing.F) {
	f.Add(sample().Encode())
	f.Add((&Message{Type: MsgHello}).Encode())
	f.Add([]byte{})
	f.Add([]byte("DVDCDVDCDVDCDVDCDVDCDVDC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := m.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical frame: % x -> % x", data, re)
		}
	})
}

// FuzzRoundTrip checks that any field combination survives encode/decode.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(7), int32(-2), uint64(9), "vm", "text", []byte{1, 2})
	f.Fuzz(func(t *testing.T, typ uint8, epoch uint64, group int32, arg uint64, vm, text string, payload []byte) {
		if len(vm) > 65535 {
			vm = vm[:65535]
		}
		m := &Message{Type: MsgType(typ), Epoch: epoch, Group: group, Arg: arg, VM: vm, Text: text, Payload: payload}
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if got.Type != m.Type || got.Epoch != epoch || got.Group != group ||
			got.Arg != arg || got.VM != vm || got.Text != text || !bytes.Equal(got.Payload, payload) {
			t.Fatal("round trip mismatch")
		}
	})
}
