package wire

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite the chaos fuzz corpus under testdata/")

const corpusDir = "testdata/fuzz/FuzzDecode"

// chaosCorpus deterministically generates the checked-in seed corpus for
// FuzzDecode: frame bodies mangled the way the chaos transport layer (and a
// hostile network) mangles them — bit flips, truncations, inflated length
// fields, trailing garbage — plus a few valid frames as canonical anchors.
// The generator is the source of truth; TestChaosCorpusCheckedIn fails if
// the files on disk drift from it (rerun with -regen-corpus to refresh).
func chaosCorpus() [][]byte {
	rng := rand.New(rand.NewSource(0xC0DEC))
	bases := [][]byte{
		sample().Encode(),
		(&Message{Type: MsgHello}).Encode(),
		(&Message{Type: MsgPrepare, Epoch: 1 << 40, Group: -3, Arg: 7,
			VM: "vm-03.01", Text: strings.Repeat("t", 300)}).Encode(),
		(&Message{Type: MsgCommit, Epoch: 9, Payload: bytes.Repeat([]byte{0xAB}, 1024)}).Encode(),
	}
	var out [][]byte
	add := func(b []byte) { out = append(out, b) }
	for _, base := range bases {
		add(append([]byte(nil), base...)) // canonical anchor

		// Bit flips: single and burst, anywhere in the body.
		for i := 0; i < 3; i++ {
			m := append([]byte(nil), base...)
			for n := 0; n <= i; n++ {
				m[rng.Intn(len(m))] ^= 1 << uint(rng.Intn(8))
			}
			add(m)
		}
		// Truncations: mid-header, mid-field, one byte short.
		for _, cut := range []int{1, len(base) / 2, len(base) - 1} {
			if cut < len(base) {
				add(append([]byte(nil), base[:cut]...))
			}
		}
		// Length-field inflation: saturate each of the three length fields
		// (vm at offset FixedHeaderLen, then text, then payload) so the
		// declared size runs past the end of the buffer.
		for _, off := range []int{FixedHeaderLen, FixedHeaderLen + 1} {
			if off < len(base) {
				m := append([]byte(nil), base...)
				m[off] = 0xFF
				add(m)
			}
		}
		// Trailing garbage after a well-formed body.
		g := make([]byte, 1+rng.Intn(16))
		rng.Read(g)
		add(append(append([]byte(nil), base...), g...))
	}
	add([]byte{})
	add([]byte{byte(MsgHello)})
	return out
}

func corpusPath(i int) string {
	return filepath.Join(corpusDir, fmt.Sprintf("chaos-%03d", i))
}

// encodeCorpusEntry renders one entry in the `go test fuzz v1` seed format.
func encodeCorpusEntry(b []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n")
}

// decodeCorpusEntry parses a single-[]byte v1 seed file.
func decodeCorpusEntry(data []byte) ([]byte, error) {
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		return nil, fmt.Errorf("not a v1 corpus file")
	}
	body := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		return nil, fmt.Errorf("unquote corpus literal: %w", err)
	}
	return []byte(s), nil
}

// TestChaosCorpusCheckedIn pins the checked-in corpus to the generator:
// every generated entry must exist on disk byte-for-byte.
func TestChaosCorpusCheckedIn(t *testing.T) {
	entries := chaosCorpus()
	if *regenCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, e := range entries {
			if err := os.WriteFile(corpusPath(i), encodeCorpusEntry(e), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d corpus entries", len(entries))
		return
	}
	for i, e := range entries {
		got, err := os.ReadFile(corpusPath(i))
		if err != nil {
			t.Fatalf("corpus entry %d missing (run go test -run TestChaosCorpusCheckedIn -regen-corpus): %v", i, err)
		}
		if !bytes.Equal(got, encodeCorpusEntry(e)) {
			t.Errorf("corpus entry %d drifted from generator", i)
		}
	}
}

// TestDecodeChaosCorpus runs every checked-in corpus file through Decode:
// it must never panic, every rejection must be a typed ErrFrame error, and
// everything accepted must re-encode canonically. (The same files also seed
// FuzzDecode's mutation engine under `go test -fuzz`.)
func TestDecodeChaosCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files under %s", corpusDir)
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := decodeCorpusEntry(raw)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: Decode panicked: %v", filepath.Base(path), r)
				}
			}()
			m, err := Decode(frame)
			if err != nil {
				if !errors.Is(err, ErrFrame) {
					t.Errorf("%s: Decode error is not a typed ErrFrame: %v", filepath.Base(path), err)
				}
				return
			}
			if re := m.Encode(); !bytes.Equal(re, frame) {
				t.Errorf("%s: accepted non-canonical frame", filepath.Base(path))
			}
		}()
	}
}
