// Package analytic implements the paper's Section V model: expected time to
// completion of a long-running job under Poisson failures, with and without
// checkpointing, including non-negligible checkpoint overhead and repair
// time; plus the overhead sub-models for disk-full and diskless (DVDC)
// checkpointing that Fig. 5 compares, and an optimal-interval search.
//
// # Corrections to the printed equations
//
// The paper's derivation treats execution as a sequence of segments, each of
// which must complete failure-free; a failure inside a segment costs the
// expended time plus a repair, and the segment restarts. For a segment of
// length tau and rate lambda the success probability is p = exp(-lambda*tau),
// so the expected number of failures before success is (1-p)/p =
// exp(lambda*tau) - 1. The paper prints E[F] = e^{-lambda(N+Tov)} - 1, which
// is negative, and Eq. 3 keeps T rather than N inside the exponentials; both
// are evident typos. This package implements the corrected forms, and the
// Monte-Carlo experiment (E2) verifies them against event simulation.
//
// Usefully, the corrected segment expectation has a closed form:
//
//	E[segment] = (e^{lambda*tau} - 1) * (1/lambda + Tr)
//
// which for Tr = 0 and tau = T reduces to the classic restart formula
// (e^{lambda*T} - 1)/lambda.
package analytic

import (
	"fmt"
	"math"
)

// Model carries the job- and platform-level parameters of Section V.
type Model struct {
	Lambda float64 // failure rate, failures/sec (1/MTBF)
	T      float64 // fault-free execution length, seconds
	Repair float64 // Tr: repair time charged per failure, seconds
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.Lambda <= 0 || math.IsNaN(m.Lambda) || math.IsInf(m.Lambda, 0) {
		return fmt.Errorf("analytic: invalid lambda %v", m.Lambda)
	}
	if m.T <= 0 || math.IsNaN(m.T) {
		return fmt.Errorf("analytic: invalid T %v", m.T)
	}
	if m.Repair < 0 || math.IsNaN(m.Repair) {
		return fmt.Errorf("analytic: invalid repair time %v", m.Repair)
	}
	return nil
}

// ExpectedFailures is E[F] for one segment of length tau: the mean number of
// failed attempts before the first failure-free pass, e^{lambda*tau} - 1.
func ExpectedFailures(lambda, tau float64) float64 {
	return math.Expm1(lambda * tau)
}

// CondMeanTimeToFail is E[T_fail | T_fail < tau] for an exponential failure
// time: the mean progress lost per failed attempt,
//
//	[1 - (lambda*tau + 1) e^{-lambda*tau}] / [lambda (1 - e^{-lambda*tau})].
func CondMeanTimeToFail(lambda, tau float64) float64 {
	if tau <= 0 {
		return 0
	}
	x := lambda * tau
	den := -math.Expm1(-x) // 1 - e^{-x}
	if den == 0 {
		return 0
	}
	// 1 - (x+1)e^{-x} rearranged as (1 - e^{-x}) - x e^{-x} to avoid the
	// catastrophic cancellation the textbook form suffers for x << 1.
	num := den - x*math.Exp(-x)
	return num / (lambda * den)
}

// SegmentTimeDecomposed mirrors the paper's E[F]*(E[T_fail|...]+Tr) + tau
// presentation term by term; the tests check it equals the closed form.
func (m Model) SegmentTimeDecomposed(tau float64) float64 {
	ef := ExpectedFailures(m.Lambda, tau)
	return ef*(CondMeanTimeToFail(m.Lambda, tau)+m.Repair) + tau
}

// SegmentTime is the expected wall-clock time to push one segment of length
// tau through to a failure-free completion, paying Repair per failure, in
// closed form: (e^{lambda*tau}-1)(1/lambda + Tr). It equals the decomposed
// presentation but is numerically robust at large lambda*tau.
func (m Model) SegmentTime(tau float64) float64 {
	return ExpectedFailures(m.Lambda, tau) * (1/m.Lambda + m.Repair)
}

// ExpectedNoCheckpoint is Eq. 1: the expected completion time when any
// failure restarts the job from the beginning.
func (m Model) ExpectedNoCheckpoint() float64 {
	return m.SegmentTime(m.T)
}

// ExpectedWithCheckpoint is the Section V overhead model (corrected): the
// job is T/N segments, each of effective length N + Tov.
func (m Model) ExpectedWithCheckpoint(interval, overhead float64) (float64, error) {
	if interval <= 0 {
		return 0, fmt.Errorf("analytic: checkpoint interval must be positive, got %v", interval)
	}
	if overhead < 0 {
		return 0, fmt.Errorf("analytic: negative overhead %v", overhead)
	}
	segments := m.T / interval
	return segments * m.SegmentTime(interval+overhead), nil
}

// Ratio is the Fig. 5 y-axis: expected completion time divided by the
// fault-free execution time T.
func (m Model) Ratio(interval, overhead float64) (float64, error) {
	e, err := m.ExpectedWithCheckpoint(interval, overhead)
	if err != nil {
		return 0, err
	}
	return e / m.T, nil
}

// MTBF returns 1/lambda for presentation.
func (m Model) MTBF() float64 { return 1 / m.Lambda }
