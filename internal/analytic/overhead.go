package analytic

import (
	"fmt"
	"math"

	"dvdc/internal/cluster"
	"dvdc/internal/netsim"
	"dvdc/internal/storage"
	"dvdc/internal/vm"
)

// OverheadModel yields, for a candidate checkpoint interval, the overhead
// Tov a checkpoint costs (execution suspended) and the latency until the
// checkpoint is usable for recovery. The distinction is Plank's: diskless
// checkpointing barely improves overhead but slashes latency; with
// synchronous commit (the paper's Fig. 5 setting) overhead equals latency
// for both schemes, and the NAS bottleneck is what separates them.
type OverheadModel interface {
	// Overhead returns Tov in seconds for a checkpoint taken after
	// `interval` seconds of execution.
	Overhead(interval float64) (float64, error)
	// Latency returns the time from checkpoint start until it is usable.
	Latency(interval float64) (float64, error)
	// Name identifies the scheme in reports.
	Name() string
}

// Platform collects the hardware constants shared by the overhead models.
type Platform struct {
	Fabric     *netsim.Fabric
	CaptureBps float64 // memory snapshot speed while the VM is paused
	XORBps     float64 // in-memory XOR throughput per node
	BaseSec    float64 // fixed coordination cost per checkpoint (paper: 40 ms)
}

// DefaultPlatform matches the paper's era: GigE fabric, 4 GiB/s capture,
// 3 GiB/s XOR, 40 ms base overhead.
func DefaultPlatform(nodes int) (Platform, error) {
	fab, err := netsim.NewFabric(nodes, netsim.GigE)
	if err != nil {
		return Platform{}, err
	}
	return Platform{
		Fabric:     fab,
		CaptureBps: 4 * float64(1<<30),
		XORBps:     3 * float64(1<<30),
		BaseSec:    0.040,
	}, nil
}

// Validate checks platform parameters.
func (p Platform) Validate() error {
	if p.Fabric == nil {
		return fmt.Errorf("analytic: platform has no fabric")
	}
	if p.CaptureBps <= 0 || p.XORBps <= 0 {
		return fmt.Errorf("analytic: invalid platform rates capture=%v xor=%v", p.CaptureBps, p.XORBps)
	}
	if p.BaseSec < 0 {
		return fmt.Errorf("analytic: negative base overhead %v", p.BaseSec)
	}
	return nil
}

// Diskless is the DVDC overhead model: capture dirty sets, exchange them
// across the fabric to the rotated parity holders, XOR in memory. Every
// node both sends (its hosted VMs' checkpoints) and receives (the groups it
// holds parity for), so the network step is bounded by the busiest edge
// rather than a central bottleneck.
type Diskless struct {
	Platform Platform
	Layout   *cluster.Layout
	Spec     vm.Spec // per-VM size/dirty behaviour (uniform across VMs)
}

// NewDiskless validates and builds the model.
func NewDiskless(p Platform, l *cluster.Layout, spec vm.Spec) (*Diskless, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if l == nil {
		return nil, fmt.Errorf("analytic: diskless model needs a layout")
	}
	if p.Fabric.Nodes != l.Nodes {
		return nil, fmt.Errorf("analytic: fabric has %d nodes, layout %d", p.Fabric.Nodes, l.Nodes)
	}
	return &Diskless{Platform: p, Layout: l, Spec: spec}, nil
}

// Name implements OverheadModel.
func (d *Diskless) Name() string { return "diskless (DVDC)" }

// trafficPerNode computes egress and ingress checkpoint bytes per node for
// one checkpoint round with per-VM payload ckptBytes.
func (d *Diskless) trafficPerNode(ckptBytes float64) (egress, ingress []float64) {
	n := d.Layout.Nodes
	egress = make([]float64, n)
	ingress = make([]float64, n)
	parityOf := make(map[int][]int, len(d.Layout.Groups)) // group -> parity nodes
	for _, g := range d.Layout.Groups {
		parityOf[g.Index] = g.ParityNodes
	}
	for _, v := range d.Layout.VMs {
		for _, pn := range parityOf[v.Group] {
			if pn == v.Node {
				continue // parity co-located (degraded layout): no wire cost
			}
			egress[v.Node] += ckptBytes
			ingress[pn] += ckptBytes
		}
	}
	return egress, ingress
}

// Overhead implements OverheadModel.
func (d *Diskless) Overhead(interval float64) (float64, error) {
	ckpt := d.Spec.CheckpointBytes(interval)
	capture := ckpt / d.Platform.CaptureBps
	egress, ingress := d.trafficPerNode(ckpt)
	net, err := d.Platform.Fabric.ExchangeTime(egress, ingress)
	if err != nil {
		return 0, err
	}
	// XOR runs on each parity node over what it received, in parallel
	// across nodes: the busiest node bounds the step.
	var xor float64
	for _, in := range ingress {
		if t := in / d.Platform.XORBps; t > xor {
			xor = t
		}
	}
	return d.Platform.BaseSec + capture + net + xor, nil
}

// Latency implements OverheadModel: with synchronous parity commit the
// checkpoint is usable the moment the overhead window ends.
func (d *Diskless) Latency(interval float64) (float64, error) {
	return d.Overhead(interval)
}

// Diskfull is the baseline: capture, then every VM's checkpoint funnels
// into a single NAS and must reach its disks. With synchronous commit the
// entire flush is overhead; the asynchronous variant (Async=true) suspends
// execution only for the capture and local buffering, but the checkpoint is
// not usable until the flush finishes — that gap is the latency Plank's
// diskless scheme removes.
type Diskfull struct {
	Platform Platform
	NAS      storage.NAS
	VMCount  int
	Spec     vm.Spec
	Async    bool
}

// NewDiskfull validates and builds the baseline model.
func NewDiskfull(p Platform, nas storage.NAS, vmCount int, spec vm.Spec, async bool) (*Diskfull, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := nas.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if vmCount <= 0 {
		return nil, fmt.Errorf("analytic: diskfull model needs vmCount > 0, got %d", vmCount)
	}
	return &Diskfull{Platform: p, NAS: nas, VMCount: vmCount, Spec: spec, Async: async}, nil
}

// Name implements OverheadModel.
func (d *Diskfull) Name() string {
	if d.Async {
		return "disk-full (async)"
	}
	return "disk-full (NAS)"
}

func (d *Diskfull) parts(interval float64) (capture, flush float64, err error) {
	ckpt := d.Spec.CheckpointBytes(interval)
	capture = ckpt / d.Platform.CaptureBps
	flush, err = d.NAS.CheckpointFlushTime(d.VMCount, ckpt)
	return capture, flush, err
}

// Overhead implements OverheadModel.
func (d *Diskfull) Overhead(interval float64) (float64, error) {
	capture, flush, err := d.parts(interval)
	if err != nil {
		return 0, err
	}
	if d.Async {
		return d.Platform.BaseSec + capture, nil
	}
	return d.Platform.BaseSec + capture + flush, nil
}

// Latency implements OverheadModel.
func (d *Diskfull) Latency(interval float64) (float64, error) {
	capture, flush, err := d.parts(interval)
	if err != nil {
		return 0, err
	}
	return d.Platform.BaseSec + capture + flush, nil
}

// ConstantOverhead is a trivial model for tests and for reproducing
// textbook optimal-interval results.
type ConstantOverhead struct {
	Tov   float64
	Label string
}

// Overhead implements OverheadModel.
func (c ConstantOverhead) Overhead(float64) (float64, error) {
	if c.Tov < 0 || math.IsNaN(c.Tov) {
		return 0, fmt.Errorf("analytic: invalid constant overhead %v", c.Tov)
	}
	return c.Tov, nil
}

// Latency implements OverheadModel.
func (c ConstantOverhead) Latency(float64) (float64, error) { return c.Overhead(0) }

// Name implements OverheadModel.
func (c ConstantOverhead) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "constant"
}
