package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// paperModel is the Fig. 5 parameterization: 3 h MTBF, 2-day job.
func paperModel() Model {
	return Model{Lambda: 1.0 / (3 * 3600), T: 2 * 24 * 3600, Repair: 60}
}

func TestModelValidate(t *testing.T) {
	if err := paperModel().Validate(); err != nil {
		t.Errorf("paper model invalid: %v", err)
	}
	bad := []Model{
		{Lambda: 0, T: 1},
		{Lambda: -1, T: 1},
		{Lambda: math.NaN(), T: 1},
		{Lambda: 1, T: 0},
		{Lambda: 1, T: 1, Repair: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestExpectedFailuresSmallRate(t *testing.T) {
	// For lambda*tau << 1, E[F] ~ lambda*tau.
	got := ExpectedFailures(1e-6, 100)
	if math.Abs(got-1e-4)/1e-4 > 1e-3 {
		t.Errorf("E[F] = %v, want ~1e-4", got)
	}
}

func TestCondMeanBounds(t *testing.T) {
	// The conditional mean time to fail within tau is in (0, tau/2) for an
	// exponential (failures cluster early given truncation... strictly it is
	// below tau/2 for any lambda > 0) and approaches tau/2 as lambda -> 0.
	lambda, tau := 1e-5, 1000.0
	got := CondMeanTimeToFail(lambda, tau)
	if got <= 0 || got >= tau/2 {
		t.Errorf("cond mean %v outside (0, tau/2)", got)
	}
	// lambda -> 0 limit: tau/2.
	small := CondMeanTimeToFail(1e-12, tau)
	if math.Abs(small-tau/2)/(tau/2) > 1e-3 {
		t.Errorf("small-lambda cond mean %v, want ~%v", small, tau/2)
	}
	if CondMeanTimeToFail(lambda, 0) != 0 {
		t.Error("tau=0 should give 0")
	}
}

func TestSegmentDecomposedMatchesClosedForm(t *testing.T) {
	m := paperModel()
	for _, tau := range []float64{1, 60, 3600, 24 * 3600} {
		dec := m.SegmentTimeDecomposed(tau)
		closed := m.SegmentTime(tau)
		if math.Abs(dec-closed)/closed > 1e-9 {
			t.Errorf("tau=%v: decomposed %v != closed %v", tau, dec, closed)
		}
	}
}

func TestNoCheckpointMatchesClassicRestartFormula(t *testing.T) {
	// With Tr=0, E[T_nochk] = (e^{lambda T} - 1)/lambda.
	m := Model{Lambda: 1e-5, T: 50000}
	want := math.Expm1(m.Lambda*m.T) / m.Lambda
	got := m.ExpectedNoCheckpoint()
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("E[T_nochk] = %v, want %v", got, want)
	}
}

func TestCheckpointingBeatsNoCheckpointing(t *testing.T) {
	m := paperModel()
	nochk := m.ExpectedNoCheckpoint()
	chk, err := m.ExpectedWithCheckpoint(600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if chk >= nochk {
		t.Errorf("checkpointing (%v) should beat restart-from-zero (%v)", chk, nochk)
	}
	if chk <= m.T {
		t.Errorf("expected time %v cannot be below fault-free %v", chk, m.T)
	}
}

func TestExpectedWithCheckpointValidation(t *testing.T) {
	m := paperModel()
	if _, err := m.ExpectedWithCheckpoint(0, 1); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := m.ExpectedWithCheckpoint(10, -1); err == nil {
		t.Error("negative overhead should fail")
	}
}

func TestRatioAboveOne(t *testing.T) {
	m := paperModel()
	r, err := m.Ratio(600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 1 {
		t.Errorf("ratio %v must exceed 1 under failures", r)
	}
}

func TestMTBF(t *testing.T) {
	m := Model{Lambda: 0.5, T: 1}
	if m.MTBF() != 2 {
		t.Errorf("MTBF = %v, want 2", m.MTBF())
	}
}

// Property: the expected-time ratio is U-shaped-ish: extremely short and
// extremely long intervals are both worse than an intermediate one, and the
// expected time always exceeds the fault-free time.
func TestQuickRatioSanity(t *testing.T) {
	m := paperModel()
	f := func(ivRaw uint16) bool {
		iv := float64(ivRaw%50000) + 1
		e, err := m.ExpectedWithCheckpoint(iv, 40e-3)
		if err != nil {
			return false
		}
		return e > m.T && !math.IsNaN(e) && !math.IsInf(e, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
