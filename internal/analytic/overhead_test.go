package analytic

import (
	"strings"
	"testing"

	"dvdc/internal/cluster"
	"dvdc/internal/storage"
	"dvdc/internal/vm"
)

// paperSpec is the Fig. 5 per-VM behaviour for DVDC: a 1 GiB image whose
// live-migration-style incremental checkpoints carry only the dirty working
// set (saturating toward 32 MiB). The disk-full baseline, per the paper's
// Sec. IV framing ("large VM images sent to a shared network store"), ships
// the whole image every checkpoint — see paperFullSpec.
func paperSpec() vm.Spec {
	return vm.Spec{
		Name:       "hpc-guest",
		ImageBytes: 1 << 30,
		Dirty: vm.SaturatingDirty{
			WriteRate: 4 * float64(1<<20), // 4 MiB/s of writes
			WSSBytes:  32 * float64(1<<20),
		},
	}
}

// paperFullSpec is the baseline's payload: the full VM image per checkpoint.
func paperFullSpec() vm.Spec {
	return vm.Spec{
		Name:       "hpc-guest-full",
		ImageBytes: 1 << 30,
		Dirty:      vm.FullImageDirty{ImageBytes: 1 << 30},
	}
}

func paperModels(t *testing.T) (*Diskless, *Diskfull) {
	t.Helper()
	layout, err := cluster.Paper12VM()
	if err != nil {
		t.Fatal(err)
	}
	plat, err := DefaultPlatform(layout.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := NewDiskless(plat, layout, paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewDiskfull(plat, storage.DefaultNAS(), len(layout.VMs), paperFullSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	return dl, df
}

func TestDisklessOverheadComponentsPositive(t *testing.T) {
	dl, _ := paperModels(t)
	ov, err := dl.Overhead(600)
	if err != nil {
		t.Fatal(err)
	}
	if ov <= dl.Platform.BaseSec {
		t.Errorf("overhead %v should exceed the base cost", ov)
	}
}

func TestDisklessBeatsDiskfullAtEveryInterval(t *testing.T) {
	dl, df := paperModels(t)
	for _, iv := range []float64{10, 60, 600, 3600, 6 * 3600} {
		a, err := dl.Overhead(iv)
		if err != nil {
			t.Fatal(err)
		}
		b, err := df.Overhead(iv)
		if err != nil {
			t.Fatal(err)
		}
		if a >= b {
			t.Errorf("interval %v: diskless %v not below disk-full %v", iv, a, b)
		}
	}
}

func TestDiskfullAsyncOverheadVsLatencyGap(t *testing.T) {
	dl, df := paperModels(t)
	async, err := NewDiskfull(df.Platform, df.NAS, df.VMCount, df.Spec, true)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := async.Overhead(600)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := async.Latency(600)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= ov {
		t.Errorf("async disk-full latency %v should exceed overhead %v", lat, ov)
	}
	// Plank's observation: diskless latency is dramatically below the
	// disk-full latency (factor 34 in his measurements; we require >5x).
	dlat, err := dl.Latency(600)
	if err != nil {
		t.Fatal(err)
	}
	if lat/dlat < 5 {
		t.Errorf("latency improvement %vx, want >5x (disk %v vs diskless %v)", lat/dlat, lat, dlat)
	}
}

func TestDisklessTrafficBalanced(t *testing.T) {
	dl, _ := paperModels(t)
	ckpt := dl.Spec.CheckpointBytes(600)
	egress, ingress := dl.trafficPerNode(ckpt)
	// Paper layout: each node sends 3 VM checkpoints and receives 3 (one
	// group's worth): perfectly balanced.
	for n := range egress {
		if egress[n] != 3*ckpt {
			t.Errorf("node %d egress %v, want %v", n, egress[n], 3*ckpt)
		}
		if ingress[n] != 3*ckpt {
			t.Errorf("node %d ingress %v, want %v", n, ingress[n], 3*ckpt)
		}
	}
}

func TestNewDisklessValidation(t *testing.T) {
	layout, _ := cluster.Paper12VM()
	plat, _ := DefaultPlatform(4)
	if _, err := NewDiskless(plat, nil, paperSpec()); err == nil {
		t.Error("nil layout should fail")
	}
	if _, err := NewDiskless(plat, layout, vm.Spec{}); err == nil {
		t.Error("invalid spec should fail")
	}
	plat5, _ := DefaultPlatform(5)
	if _, err := NewDiskless(plat5, layout, paperSpec()); err == nil {
		t.Error("fabric/layout node mismatch should fail")
	}
}

func TestNewDiskfullValidation(t *testing.T) {
	plat, _ := DefaultPlatform(4)
	if _, err := NewDiskfull(plat, storage.DefaultNAS(), 0, paperSpec(), false); err == nil {
		t.Error("zero VMs should fail")
	}
}

func TestConstantOverhead(t *testing.T) {
	c := ConstantOverhead{Tov: 5}
	ov, err := c.Overhead(123)
	if err != nil || ov != 5 {
		t.Errorf("Overhead = %v, %v", ov, err)
	}
	if c.Name() != "constant" {
		t.Errorf("Name = %q", c.Name())
	}
	named := ConstantOverhead{Tov: 1, Label: "x"}
	if named.Name() != "x" {
		t.Error("label ignored")
	}
	if _, err := (ConstantOverhead{Tov: -1}).Overhead(0); err == nil {
		t.Error("negative constant overhead should fail")
	}
}

func TestModelNames(t *testing.T) {
	dl, df := paperModels(t)
	if !strings.Contains(dl.Name(), "diskless") {
		t.Errorf("diskless name %q", dl.Name())
	}
	if !strings.Contains(df.Name(), "disk-full") {
		t.Errorf("diskfull name %q", df.Name())
	}
	async, _ := NewDiskfull(df.Platform, df.NAS, df.VMCount, df.Spec, true)
	if !strings.Contains(async.Name(), "async") {
		t.Errorf("async name %q", async.Name())
	}
}
