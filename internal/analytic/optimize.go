package analytic

import (
	"fmt"
	"math"
)

// SweepPoint is one sample of the Fig. 5 curves.
type SweepPoint struct {
	Interval float64 // Tint, seconds
	Overhead float64 // Tov at that interval, seconds
	Ratio    float64 // E[T]/T
}

// Sweep evaluates the expected-time ratio across logarithmically spaced
// checkpoint intervals in [lo, hi]: the data behind Fig. 5.
func Sweep(m Model, om OverheadModel, lo, hi float64, points int) ([]SweepPoint, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("analytic: bad sweep range [%v,%v]", lo, hi)
	}
	if points < 2 {
		return nil, fmt.Errorf("analytic: sweep needs >= 2 points, got %d", points)
	}
	out := make([]SweepPoint, 0, points)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := 0; i < points; i++ {
		iv := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(points-1))
		ov, err := om.Overhead(iv)
		if err != nil {
			return nil, err
		}
		r, err := m.Ratio(iv, ov)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Interval: iv, Overhead: ov, Ratio: r})
	}
	return out, nil
}

// Optimum is the minimizing point of a sweep-style objective.
type Optimum struct {
	Interval float64
	Overhead float64
	Ratio    float64
}

// OptimalInterval finds the checkpoint interval minimizing the expected
// completion-time ratio via golden-section search over [lo, hi], seeded by
// a coarse grid to avoid non-unimodal edge cases.
func OptimalInterval(m Model, om OverheadModel, lo, hi float64) (Optimum, error) {
	if err := m.Validate(); err != nil {
		return Optimum{}, err
	}
	if lo <= 0 || hi <= lo {
		return Optimum{}, fmt.Errorf("analytic: bad search range [%v,%v]", lo, hi)
	}
	eval := func(iv float64) (float64, error) {
		ov, err := om.Overhead(iv)
		if err != nil {
			return 0, err
		}
		return m.Ratio(iv, ov)
	}
	// Coarse log-grid seed.
	const grid = 64
	bestIv, bestR := lo, math.Inf(1)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := 0; i <= grid; i++ {
		iv := math.Exp(logLo + (logHi-logLo)*float64(i)/grid)
		r, err := eval(iv)
		if err != nil {
			return Optimum{}, err
		}
		if r < bestR {
			bestIv, bestR = iv, r
		}
	}
	// Golden-section refine around the grid winner.
	a := bestIv / math.Exp((logHi-logLo)/grid)
	b := bestIv * math.Exp((logHi-logLo)/grid)
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, err := eval(x1)
	if err != nil {
		return Optimum{}, err
	}
	f2, err := eval(x2)
	if err != nil {
		return Optimum{}, err
	}
	for i := 0; i < 200 && (b-a) > 1e-6*b; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			if f1, err = eval(x1); err != nil {
				return Optimum{}, err
			}
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			if f2, err = eval(x2); err != nil {
				return Optimum{}, err
			}
		}
	}
	iv := (a + b) / 2
	ov, err := om.Overhead(iv)
	if err != nil {
		return Optimum{}, err
	}
	r, err := m.Ratio(iv, ov)
	if err != nil {
		return Optimum{}, err
	}
	if r > bestR { // golden section should never lose to its seed
		iv, r = bestIv, bestR
		if ov, err = om.Overhead(iv); err != nil {
			return Optimum{}, err
		}
	}
	return Optimum{Interval: iv, Overhead: ov, Ratio: r}, nil
}

// YoungDaly is the first-order optimal interval sqrt(2 * Tov * MTBF),
// included as the standard reference approximation for constant overhead.
func YoungDaly(tov, mtbf float64) float64 {
	if tov <= 0 || mtbf <= 0 {
		return 0
	}
	return math.Sqrt(2 * tov * mtbf)
}
