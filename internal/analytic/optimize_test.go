package analytic

import (
	"math"
	"testing"
)

func TestSweepShapeAndMinimumInterior(t *testing.T) {
	m := paperModel()
	om := ConstantOverhead{Tov: 30}
	pts, err := Sweep(m, om, 10, 24*3600, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	// Intervals strictly increasing; ratios finite.
	minIdx := 0
	for i, p := range pts {
		if i > 0 && p.Interval <= pts[i-1].Interval {
			t.Fatal("intervals not increasing")
		}
		if math.IsNaN(p.Ratio) || p.Ratio < 1 {
			t.Fatalf("bad ratio %v", p.Ratio)
		}
		if p.Ratio < pts[minIdx].Ratio {
			minIdx = i
		}
	}
	// U-shape: the minimum is interior, and both edges are worse.
	if minIdx == 0 || minIdx == len(pts)-1 {
		t.Errorf("minimum at edge (index %d): not U-shaped", minIdx)
	}
	if pts[0].Ratio < pts[minIdx].Ratio*1.05 || pts[len(pts)-1].Ratio < pts[minIdx].Ratio*1.05 {
		t.Error("edges should be clearly worse than the minimum")
	}
}

func TestSweepValidation(t *testing.T) {
	m := paperModel()
	om := ConstantOverhead{Tov: 1}
	if _, err := Sweep(m, om, 0, 100, 10); err == nil {
		t.Error("lo=0 should fail")
	}
	if _, err := Sweep(m, om, 100, 10, 10); err == nil {
		t.Error("hi<lo should fail")
	}
	if _, err := Sweep(m, om, 1, 100, 1); err == nil {
		t.Error("1 point should fail")
	}
}

func TestOptimalIntervalNearYoungDaly(t *testing.T) {
	// With constant small overhead and rare failures, the optimum should be
	// within ~20% of the Young/Daly first-order approximation.
	m := Model{Lambda: 1.0 / (6 * 3600), T: 2 * 24 * 3600}
	tov := 10.0
	opt, err := OptimalInterval(m, ConstantOverhead{Tov: tov}, 1, 24*3600)
	if err != nil {
		t.Fatal(err)
	}
	yd := YoungDaly(tov, m.MTBF())
	if rel := math.Abs(opt.Interval-yd) / yd; rel > 0.2 {
		t.Errorf("optimum %v vs Young/Daly %v: %.1f%% apart", opt.Interval, yd, rel*100)
	}
}

func TestOptimalIntervalIsMinimum(t *testing.T) {
	m := paperModel()
	om := ConstantOverhead{Tov: 45}
	opt, err := OptimalInterval(m, om, 1, 24*3600)
	if err != nil {
		t.Fatal(err)
	}
	// No swept point may beat the reported optimum (within tolerance).
	pts, err := Sweep(m, om, 1, 24*3600, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Ratio < opt.Ratio-1e-9 {
			t.Errorf("sweep point (iv=%v r=%v) beats optimum (iv=%v r=%v)",
				p.Interval, p.Ratio, opt.Interval, opt.Ratio)
		}
	}
}

func TestOptimalIntervalValidation(t *testing.T) {
	m := paperModel()
	if _, err := OptimalInterval(m, ConstantOverhead{Tov: 1}, -1, 10); err == nil {
		t.Error("negative lo should fail")
	}
	if _, err := OptimalInterval(Model{}, ConstantOverhead{Tov: 1}, 1, 10); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestYoungDaly(t *testing.T) {
	if got := YoungDaly(2, 100); math.Abs(got-20) > 1e-12 {
		t.Errorf("YoungDaly = %v, want 20", got)
	}
	if YoungDaly(0, 100) != 0 || YoungDaly(1, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

// TestFigure5Shape reproduces the paper's headline comparison: at their
// respective optimal intervals, DVDC's overhead ratio is dramatically below
// the disk-full baseline's, and the completion-time reduction is in the
// neighbourhood the paper reports (18%).
func TestFigure5Shape(t *testing.T) {
	m := paperModel()
	dl, df := paperModels(t)
	optDl, err := OptimalInterval(m, dl, 1, 24*3600)
	if err != nil {
		t.Fatal(err)
	}
	optDf, err := OptimalInterval(m, df, 1, 24*3600)
	if err != nil {
		t.Fatal(err)
	}
	if optDl.Ratio >= optDf.Ratio {
		t.Fatalf("diskless optimum %v not below disk-full %v", optDl.Ratio, optDf.Ratio)
	}
	// Diskless should land near the paper's ~1% overhead; disk-full well
	// above it (paper: ~20%). Shapes, not exact values.
	if over := optDl.Ratio - 1; over > 0.05 {
		t.Errorf("diskless overhead ratio %.3f, want <= 0.05", over)
	}
	if over := optDf.Ratio - 1; over < 0.05 {
		t.Errorf("disk-full overhead ratio %.3f, want >= 0.05", over)
	}
	// Cheap checkpoints => checkpoint more often.
	if optDl.Interval >= optDf.Interval {
		t.Errorf("diskless optimal interval %v should be below disk-full %v",
			optDl.Interval, optDf.Interval)
	}
	reduction := 1 - optDl.Ratio/optDf.Ratio
	if reduction < 0.05 {
		t.Errorf("completion-time reduction %.1f%%, want >= 5%%", reduction*100)
	}
	t.Logf("diskless: iv=%.0fs ratio=%.4f; disk-full: iv=%.0fs ratio=%.4f; reduction=%.1f%%",
		optDl.Interval, optDl.Ratio, optDf.Interval, optDf.Ratio, reduction*100)
}
