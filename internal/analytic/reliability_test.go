package analytic

import (
	"math"
	"testing"
)

func TestGroupMTTDLKnownValues(t *testing.T) {
	lambda := 1.0 / 1000 // per-node
	mu := 1.0 / 10       // repairs 100x faster than failures

	// m=0: first failure kills: 1/(n*lambda).
	got, err := GroupMTTDL(4, 0, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	if want := 250.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("m=0: %v, want %v", got, want)
	}
	// m=1: mu/(n(n-1)lambda^2).
	got, err = GroupMTTDL(4, 1, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (4 * 3 * lambda * lambda)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("m=1: %v, want %v", got, want)
	}
	// m=2: mu^2/(n(n-1)(n-2)lambda^3).
	got, err = GroupMTTDL(4, 2, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	want = mu * mu / (4 * 3 * 2 * lambda * lambda * lambda)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("m=2: %v, want %v", got, want)
	}
}

func TestGroupMTTDLMonotoneInTolerance(t *testing.T) {
	lambda, mu := 1.0/3600, 1.0/60
	prev := 0.0
	for m := 0; m <= 3; m++ {
		got, err := GroupMTTDL(5, m, lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Errorf("MTTDL not increasing at m=%d: %v <= %v", m, got, prev)
		}
		prev = got
	}
}

func TestGroupMTTDLValidation(t *testing.T) {
	if _, err := GroupMTTDL(0, 0, 1, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := GroupMTTDL(3, 3, 1, 1); err == nil {
		t.Error("m>=n should fail")
	}
	if _, err := GroupMTTDL(3, 1, 0, 1); err == nil {
		t.Error("lambda=0 should fail")
	}
	if _, err := GroupMTTDL(3, 1, 1, 0); err == nil {
		t.Error("mu=0 with m>0 should fail")
	}
	if _, err := GroupMTTDL(3, 0, 1, 0); err != nil {
		t.Error("mu unused for m=0")
	}
}

func TestClusterMTTDL(t *testing.T) {
	got, err := ClusterMTTDL(1000, 4)
	if err != nil || got != 250 {
		t.Errorf("ClusterMTTDL = %v, %v", got, err)
	}
	if _, err := ClusterMTTDL(1000, 0); err == nil {
		t.Error("0 groups should fail")
	}
	if _, err := ClusterMTTDL(0, 3); err == nil {
		t.Error("0 MTTDL should fail")
	}
}

func TestDataLossProbability(t *testing.T) {
	p, err := DataLossProbability(1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - math.Exp(-1); math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v, want %v", p, want)
	}
	p, _ = DataLossProbability(1e12, 1)
	if p <= 0 || p > 1e-11 {
		t.Errorf("tiny mission p = %v", p)
	}
	if _, err := DataLossProbability(0, 1); err == nil {
		t.Error("invalid mttdl should fail")
	}
}

func TestSurvivableFractionMatchesLayoutIntuition(t *testing.T) {
	// One group occupying all 4 nodes with tolerance 1: every single
	// failure survivable, no double failure survivable.
	groups := [][]int{{0, 1, 2, 3}}
	f, err := SurvivableFraction(4, groups, 1, 1)
	if err != nil || f != 1 {
		t.Errorf("single: %v, %v", f, err)
	}
	f, err = SurvivableFraction(4, groups, 1, 2)
	if err != nil || f != 0 {
		t.Errorf("double: %v, %v", f, err)
	}
	// Two disjoint groups of 2 on 4 nodes, tolerance 1: the intra-group
	// pairs (0,1) and (2,3) are fatal, the four cross pairs survive: 4/6.
	groups = [][]int{{0, 1}, {2, 3}}
	f, err = SurvivableFraction(4, groups, 1, 2)
	if err != nil || math.Abs(f-4.0/6) > 1e-12 {
		t.Errorf("disjoint doubles: %v, %v", f, err)
	}
	// j=0 is trivially survivable.
	f, err = SurvivableFraction(4, groups, 1, 0)
	if err != nil || f != 1 {
		t.Errorf("j=0: %v, %v", f, err)
	}
	if _, err := SurvivableFraction(2, groups, 1, 3); err == nil {
		t.Error("j > nodes should fail")
	}
}
