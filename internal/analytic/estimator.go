package analytic

import (
	"fmt"
	"math"
	"sync"
)

// RateEstimator is an online, exponentially-decayed estimator of the cluster
// failure rate lambda: the live replacement for the static -mtbf style flags
// the Section V model was previously fed. Each Observe(failures, elapsed)
// call ages both accumulators by the elapsed virtual time and adds the new
// observations, so the estimate tracks regime changes (a run of kills raises
// it, a quiet stretch decays it back) with a half-life the caller picks.
//
// The estimator is clock-free by design: the caller supplies elapsed time
// explicitly (the soak harness feeds its virtual kill-clock seconds), so the
// same observation sequence always yields the same estimate — the property
// every soak invariant in this repo is built on. Safe for concurrent use.
type RateEstimator struct {
	mu       sync.Mutex
	halfLife float64 // seconds of observed time until a sample's weight halves
	failures float64 // decayed failure count
	seconds  float64 // decayed observed seconds
}

// DefaultRateHalfLife is the decay half-life (in observed seconds) a zero
// half-life resolves to: long enough to smooth one noisy round, short enough
// that a standing fault regime dominates the estimate within a few rounds.
const DefaultRateHalfLife = 120.0

// NewRateEstimator builds an estimator with the given half-life in observed
// seconds (<= 0 picks DefaultRateHalfLife).
func NewRateEstimator(halfLife float64) *RateEstimator {
	if halfLife <= 0 || math.IsNaN(halfLife) || math.IsInf(halfLife, 0) {
		halfLife = DefaultRateHalfLife
	}
	return &RateEstimator{halfLife: halfLife}
}

// Observe records that `failures` node failures were seen across `elapsed`
// seconds of observed (virtual or wall) time. Nonpositive elapsed and
// negative failures are rejected so a bad caller cannot poison the estimate.
func (e *RateEstimator) Observe(failures int, elapsed float64) error {
	if e == nil {
		return nil
	}
	if failures < 0 {
		return fmt.Errorf("analytic: negative failure count %d", failures)
	}
	if elapsed <= 0 || math.IsNaN(elapsed) || math.IsInf(elapsed, 0) {
		return fmt.Errorf("analytic: invalid elapsed time %v", elapsed)
	}
	decay := math.Exp2(-elapsed / e.halfLife)
	e.mu.Lock()
	e.failures = e.failures*decay + float64(failures)
	e.seconds = e.seconds*decay + elapsed
	e.mu.Unlock()
	return nil
}

// Rate returns the current failure-rate estimate in failures/second, 0 until
// any time has been observed. A long failure-free stretch decays toward — but
// never reaches — zero, matching the prior that a cluster that has failed
// before can fail again.
func (e *RateEstimator) Rate() float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seconds <= 0 {
		return 0
	}
	return e.failures / e.seconds
}

// ObservedSeconds returns the decayed observation mass backing the estimate;
// callers gate "enough data to act" decisions on it.
func (e *RateEstimator) ObservedSeconds() float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seconds
}

// MTBF returns 1/Rate() (+Inf while the estimate is zero), for presentation.
func (e *RateEstimator) MTBF() float64 {
	r := e.Rate()
	if r <= 0 {
		return math.Inf(1)
	}
	return 1 / r
}
