package analytic

import (
	"math"
	"testing"
)

func TestRateEstimatorBasics(t *testing.T) {
	e := NewRateEstimator(0)
	if got := e.Rate(); got != 0 {
		t.Fatalf("empty estimator rate = %v, want 0", got)
	}
	if !math.IsInf(e.MTBF(), 1) {
		t.Fatalf("empty estimator MTBF = %v, want +Inf", e.MTBF())
	}
	// 5 failures over 100 seconds with no decay crossing: rate near 5/100.
	if err := e.Observe(5, 100); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Rate(), 0.05; math.Abs(got-want) > 1e-12 {
		t.Fatalf("rate = %v, want %v", got, want)
	}
	if got := e.MTBF(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("MTBF = %v, want 20", got)
	}
}

func TestRateEstimatorTracksRegimeChange(t *testing.T) {
	e := NewRateEstimator(50)
	// A long quiet stretch...
	for i := 0; i < 20; i++ {
		if err := e.Observe(0, 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Rate(); got != 0 {
		t.Fatalf("quiet rate = %v, want 0", got)
	}
	// ...then a failure regime: one failure per 10s observed window.
	for i := 0; i < 30; i++ {
		if err := e.Observe(1, 10); err != nil {
			t.Fatal(err)
		}
	}
	// The decayed estimate must have converged most of the way to 0.1/s.
	if got := e.Rate(); got < 0.06 || got > 0.1+1e-9 {
		t.Fatalf("post-regime rate = %v, want in (0.06, 0.1]", got)
	}
	// And a recovery decays it back down.
	for i := 0; i < 30; i++ {
		if err := e.Observe(0, 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Rate(); got > 0.02 {
		t.Fatalf("post-recovery rate = %v, want < 0.02", got)
	}
}

func TestRateEstimatorDeterministic(t *testing.T) {
	a, b := NewRateEstimator(30), NewRateEstimator(30)
	seq := []struct {
		f int
		s float64
	}{{0, 5}, {2, 12}, {1, 3}, {0, 40}, {3, 7}}
	for _, o := range seq {
		if err := a.Observe(o.f, o.s); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range seq {
		if err := b.Observe(o.f, o.s); err != nil {
			t.Fatal(err)
		}
	}
	if a.Rate() != b.Rate() || a.ObservedSeconds() != b.ObservedSeconds() {
		t.Fatalf("same observation sequence diverged: %v/%v vs %v/%v",
			a.Rate(), a.ObservedSeconds(), b.Rate(), b.ObservedSeconds())
	}
}

func TestRateEstimatorRejectsBadInput(t *testing.T) {
	e := NewRateEstimator(0)
	if err := e.Observe(-1, 10); err == nil {
		t.Fatal("negative failures accepted")
	}
	if err := e.Observe(0, 0); err == nil {
		t.Fatal("zero elapsed accepted")
	}
	if err := e.Observe(0, math.NaN()); err == nil {
		t.Fatal("NaN elapsed accepted")
	}
	if e.Rate() != 0 || e.ObservedSeconds() != 0 {
		t.Fatalf("rejected observations mutated the estimator")
	}
	var nilE *RateEstimator
	if nilE.Rate() != 0 || nilE.Observe(1, 1) != nil {
		t.Fatal("nil estimator not inert")
	}
}

// TestRateEstimatorFeedsOptimalInterval is the integration the advisor relies
// on: a live estimate slots straight into the Section V model, and a higher
// observed failure rate yields a shorter optimal checkpoint interval.
func TestRateEstimatorFeedsOptimalInterval(t *testing.T) {
	low, high := NewRateEstimator(1000), NewRateEstimator(1000)
	if err := low.Observe(1, 3600); err != nil {
		t.Fatal(err)
	}
	if err := high.Observe(30, 3600); err != nil {
		t.Fatal(err)
	}
	om := ConstantOverhead{Tov: 2, Label: "measured"}
	optLow, err := OptimalInterval(Model{Lambda: low.Rate(), T: 24 * 3600, Repair: 30}, om, 1, 7200)
	if err != nil {
		t.Fatal(err)
	}
	optHigh, err := OptimalInterval(Model{Lambda: high.Rate(), T: 24 * 3600, Repair: 30}, om, 1, 7200)
	if err != nil {
		t.Fatal(err)
	}
	if optHigh.Interval >= optLow.Interval {
		t.Fatalf("higher failure rate gave interval %v >= lower rate's %v",
			optHigh.Interval, optLow.Interval)
	}
}
