package analytic

import (
	"fmt"
	"math"
)

// Reliability analysis for the cluster-as-RAID view the paper takes: with
// VMs as data elements and nodes as "disks", the classic MTTDL (mean time to
// data loss) machinery applies. A RAID group of size g (members + parity
// blocks, each on its own node) loses data when more than m of its nodes are
// simultaneously down, where m is the parity tolerance; repairs (parity
// reconstruction + re-placement) race subsequent failures.
//
// The standard Markov-chain results, with lambda the per-node failure rate
// and mu = 1/MTTR the repair rate (mu >> lambda):
//
//	MTTDL(m=0) = 1 / (g*lambda)
//	MTTDL(m=1) ~ mu / (g*(g-1)*lambda^2)
//	MTTDL(m=2) ~ mu^2 / (g*(g-1)*(g-2)*lambda^3)
//
// These govern one group; a cluster of G independent groups loses data G
// times as fast (the union bound is exact for exponential approximations).

// GroupMTTDL returns the mean time to data loss of one RAID group of n
// nodes tolerating m losses, with per-node failure rate lambda (1/s) and
// repair rate mu (1/s). Exact for m = 0; the standard high-mu approximation
// for m >= 1.
func GroupMTTDL(n, m int, lambda, mu float64) (float64, error) {
	if n < 1 || m < 0 || m >= n {
		return 0, fmt.Errorf("analytic: invalid group n=%d m=%d", n, m)
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return 0, fmt.Errorf("analytic: invalid lambda %v", lambda)
	}
	if m > 0 && (mu <= 0 || math.IsNaN(mu)) {
		return 0, fmt.Errorf("analytic: invalid mu %v", mu)
	}
	num := math.Pow(mu, float64(m))
	den := 1.0
	for i := 0; i <= m; i++ {
		den *= float64(n-i) * lambda
	}
	return num / den, nil
}

// ClusterMTTDL divides a group MTTDL across G independent groups.
func ClusterMTTDL(groupMTTDL float64, groups int) (float64, error) {
	if groups < 1 {
		return 0, fmt.Errorf("analytic: need >= 1 group, got %d", groups)
	}
	if groupMTTDL <= 0 {
		return 0, fmt.Errorf("analytic: invalid group MTTDL %v", groupMTTDL)
	}
	return groupMTTDL / float64(groups), nil
}

// DataLossProbability is the probability of at least one data-loss event
// within a mission of the given length, under the exponential MTTDL
// approximation: 1 - exp(-mission/mttdl).
func DataLossProbability(mttdl, mission float64) (float64, error) {
	if mttdl <= 0 || mission < 0 {
		return 0, fmt.Errorf("analytic: invalid mttdl %v / mission %v", mttdl, mission)
	}
	return -math.Expm1(-mission / mttdl), nil
}

// SurvivableFraction counts the fraction of j-node-failure combinations a
// layout-like structure survives, given per-group tolerance and the group
// membership expressed as, for each group, the set of nodes it occupies.
// It is the combinatorial ground truth the MTTDL approximations smooth over;
// cluster.Layout computes the same thing for concrete layouts, this version
// serves parameter studies without building layouts.
func SurvivableFraction(nodes int, groupNodes [][]int, tolerance, j int) (float64, error) {
	if nodes < 1 || j < 0 || j > nodes {
		return 0, fmt.Errorf("analytic: invalid nodes=%d j=%d", nodes, j)
	}
	idx := make([]int, j)
	for i := range idx {
		idx[i] = i
	}
	total, ok := 0, 0
	for {
		total++
		down := map[int]bool{}
		for _, n := range idx {
			down[n] = true
		}
		survives := true
		for _, g := range groupNodes {
			lost := 0
			for _, n := range g {
				if down[n] {
					lost++
				}
			}
			if lost > tolerance {
				survives = false
				break
			}
		}
		if survives {
			ok++
		}
		// Next combination.
		i := j - 1
		for i >= 0 && idx[i] == nodes-j+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for k := i + 1; k < j; k++ {
			idx[k] = idx[k-1] + 1
		}
		if j == 0 {
			break
		}
	}
	if j == 0 {
		return 1, nil
	}
	return float64(ok) / float64(total), nil
}
