package storage

import (
	"math"
	"testing"
	"testing/quick"

	"dvdc/internal/netsim"
)

func TestDiskValidate(t *testing.T) {
	if err := RAIDArray.Validate(); err != nil {
		t.Errorf("RAIDArray invalid: %v", err)
	}
	bad := []Disk{
		{SeekSec: 0, WriteBps: 0, ReadBps: 1},
		{SeekSec: 0, WriteBps: 1, ReadBps: 0},
		{SeekSec: -1, WriteBps: 1, ReadBps: 1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid disk accepted", i)
		}
	}
}

func TestDiskTimes(t *testing.T) {
	d := Disk{SeekSec: 0.01, WriteBps: 100, ReadBps: 200}
	if got := d.WriteTime(100); math.Abs(got-1.01) > 1e-12 {
		t.Errorf("WriteTime = %v, want 1.01", got)
	}
	if got := d.ReadTime(100); math.Abs(got-0.51) > 1e-12 {
		t.Errorf("ReadTime = %v, want 0.51", got)
	}
	if d.WriteTime(0) != 0 || d.ReadTime(0) != 0 {
		t.Error("zero-byte IO should cost nothing")
	}
}

func TestNASFlushBottleneckSelection(t *testing.T) {
	// Slow network, fast disk: network time dominates.
	n := NAS{
		Ingest: netsim.Link{BandwidthBps: 100, LatencySec: 0},
		Array:  Disk{SeekSec: 0, WriteBps: 1e9, ReadBps: 1e9},
	}
	got, err := n.CheckpointFlushTime(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("flush = %v, want 4 (network bound)", got)
	}
	// Fast network, slow disk: disk time dominates.
	n = NAS{
		Ingest: netsim.Link{BandwidthBps: 1e9, LatencySec: 0},
		Array:  Disk{SeekSec: 1, WriteBps: 100, ReadBps: 100},
	}
	got, err = n.CheckpointFlushTime(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("flush = %v, want 5 (disk bound)", got)
	}
}

func TestNASFlushZeroAndNegative(t *testing.T) {
	n := DefaultNAS()
	got, err := n.CheckpointFlushTime(0, 100)
	if err != nil || got != 0 {
		t.Errorf("zero clients: %v, %v", got, err)
	}
	if _, err := n.CheckpointFlushTime(-1, 100); err == nil {
		t.Error("negative clients should fail")
	}
	if _, err := n.CheckpointFlushTime(1, -5); err == nil {
		t.Error("negative bytes should fail")
	}
}

func TestRestoreFetchTime(t *testing.T) {
	n := NAS{
		Ingest: netsim.Link{BandwidthBps: 100, LatencySec: 0},
		Array:  Disk{SeekSec: 0, WriteBps: 100, ReadBps: 50},
	}
	got, err := n.RestoreFetchTime(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("restore = %v, want 2 (disk read bound)", got)
	}
	if _, err := n.RestoreFetchTime(-1); err == nil {
		t.Error("negative restore should fail")
	}
}

// Property: flush time scales at least linearly with total volume.
func TestQuickFlushMonotone(t *testing.T) {
	n := DefaultNAS()
	f := func(c1, c2 uint8, b uint16) bool {
		ca, cb := int(c1%32), int(c2%32)
		if ca > cb {
			ca, cb = cb, ca
		}
		t1, err1 := n.CheckpointFlushTime(ca, float64(b))
		t2, err2 := n.CheckpointFlushTime(cb, float64(b))
		return err1 == nil && err2 == nil && t1 <= t2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
