// Package storage models the secondary-storage side of the disk-full
// checkpointing baseline: a disk with positioning cost and sequential
// bandwidth, and a NAS that serializes every client behind one ingest link
// and one disk array. "The network step in the baseline is bottlenecked by a
// single NAS" (Sec. V-B) is exactly this structure.
package storage

import (
	"fmt"
	"math"

	"dvdc/internal/netsim"
)

// Disk is a simple positioning + streaming model.
type Disk struct {
	SeekSec  float64 // average positioning time per operation
	WriteBps float64 // sequential write bandwidth, bytes/sec
	ReadBps  float64 // sequential read bandwidth, bytes/sec
}

// RAIDArray is an era-typical NAS backing array: ~200 MiB/s sequential.
var RAIDArray = Disk{SeekSec: 8e-3, WriteBps: 200 * 1 << 20, ReadBps: 220 * 1 << 20}

// Validate checks the disk parameters.
func (d Disk) Validate() error {
	if d.WriteBps <= 0 || d.ReadBps <= 0 {
		return fmt.Errorf("storage: invalid disk bandwidth write=%v read=%v", d.WriteBps, d.ReadBps)
	}
	if d.SeekSec < 0 || math.IsNaN(d.SeekSec) {
		return fmt.Errorf("storage: invalid seek time %v", d.SeekSec)
	}
	return nil
}

// WriteTime returns the time to persist bytes as one sequential stream.
func (d Disk) WriteTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return d.SeekSec + bytes/d.WriteBps
}

// ReadTime returns the time to read bytes back as one sequential stream.
func (d Disk) ReadTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return d.SeekSec + bytes/d.ReadBps
}

// NAS is a network-attached store: one ingest link shared by every client,
// in front of one disk array.
type NAS struct {
	Ingest netsim.Link
	Array  Disk
}

// DefaultNAS pairs a GigE front end with the RAID array model.
func DefaultNAS() NAS { return NAS{Ingest: netsim.GigE, Array: RAIDArray} }

// Validate checks the NAS parameters.
func (n NAS) Validate() error {
	if err := n.Ingest.Validate(); err != nil {
		return err
	}
	return n.Array.Validate()
}

// CheckpointFlushTime is the end-to-end time for `clients` nodes to each
// ship bytesPerClient of checkpoint data into the NAS and have it reach the
// platters. Transfers serialize on the ingest link; the disk write streams
// behind it, so the slower of the two stages plus one positioning cost
// bounds completion (store-and-forward pipeline).
func (n NAS) CheckpointFlushTime(clients int, bytesPerClient float64) (float64, error) {
	if clients < 0 || bytesPerClient < 0 {
		return 0, fmt.Errorf("storage: negative flush parameters clients=%d bytes=%v", clients, bytesPerClient)
	}
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if clients == 0 || bytesPerClient == 0 {
		return 0, nil
	}
	total := float64(clients) * bytesPerClient
	netTime := n.Ingest.LatencySec + total/n.Ingest.BandwidthBps
	diskTime := n.Array.WriteTime(total)
	return math.Max(netTime, diskTime), nil
}

// RestoreFetchTime is the time for one node to read bytes of checkpoint back
// from the NAS during recovery.
func (n NAS) RestoreFetchTime(bytes float64) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative restore size %v", bytes)
	}
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if bytes == 0 {
		return 0, nil
	}
	return math.Max(n.Ingest.TransferTime(bytes), n.Array.ReadTime(bytes)), nil
}
