// Package netsim models cluster network timing at the granularity the
// paper's analysis needs: per-node links with bandwidth and latency, fan-in
// contention at a single receiver (the NAS bottleneck of the disk-full
// baseline), and the balanced all-to-all exchange DVDC's distributed parity
// performs.
//
// The model is deliberately flow-level rather than packet-level: the
// quantities entering the paper's equations are transfer completion times
// for known byte volumes, which a bandwidth-sharing model yields directly.
package netsim

import (
	"errors"
	"fmt"
	"math"
)

// Link is a full-duplex point of attachment with fixed bandwidth and
// propagation latency.
type Link struct {
	BandwidthBps float64 // bytes per second
	LatencySec   float64 // one-way propagation + stack latency
}

// GigE is a 1 Gb/s Ethernet link with 100 us latency, the era-typical
// cluster fabric of the paper's references.
var GigE = Link{BandwidthBps: 125e6, LatencySec: 100e-6}

// TenGigE is a 10 Gb/s link.
var TenGigE = Link{BandwidthBps: 1.25e9, LatencySec: 50e-6}

// Validate checks link parameters.
func (l Link) Validate() error {
	if l.BandwidthBps <= 0 || math.IsNaN(l.BandwidthBps) {
		return fmt.Errorf("netsim: invalid bandwidth %v", l.BandwidthBps)
	}
	if l.LatencySec < 0 || math.IsNaN(l.LatencySec) {
		return fmt.Errorf("netsim: invalid latency %v", l.LatencySec)
	}
	return nil
}

// TransferTime returns the time to push the given bytes through the link.
func (l Link) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.LatencySec + bytes/l.BandwidthBps
}

// Fabric is a non-blocking (full-bisection) switch connecting n nodes, each
// attached by NodeLink. Only edge links constrain transfers, which matches
// the paper's framing: the disk-full baseline is bottlenecked by the single
// NAS edge, the diskless scheme by the per-node edges.
type Fabric struct {
	Nodes    int
	NodeLink Link
}

// NewFabric validates and constructs a fabric.
func NewFabric(nodes int, link Link) (*Fabric, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("netsim: fabric needs > 0 nodes, got %d", nodes)
	}
	if err := link.Validate(); err != nil {
		return nil, err
	}
	return &Fabric{Nodes: nodes, NodeLink: link}, nil
}

// FanInTime is the completion time when `senders` nodes each push
// bytesPerSender to one receiver attached by recvLink: the receiver's edge
// serializes the aggregate.
func (f *Fabric) FanInTime(senders int, bytesPerSender float64, recvLink Link) (float64, error) {
	if senders < 0 {
		return 0, fmt.Errorf("netsim: negative sender count %d", senders)
	}
	if bytesPerSender < 0 {
		return 0, errors.New("netsim: negative transfer size")
	}
	if err := recvLink.Validate(); err != nil {
		return 0, err
	}
	if senders == 0 || bytesPerSender == 0 {
		return 0, nil
	}
	total := float64(senders) * bytesPerSender
	// Senders' own edges matter only if a single sender's share exceeds the
	// receiver edge; with equal shares the receiver edge dominates whenever
	// senders >= 1, but a slow sender link can still bound completion.
	senderTime := f.NodeLink.TransferTime(bytesPerSender)
	recvTime := recvLink.LatencySec + total/recvLink.BandwidthBps
	return math.Max(senderTime, recvTime), nil
}

// ExchangeTime is the completion time of a general exchange where node i
// must send egress[i] bytes and receive ingress[i] bytes, all flows
// proceeding in parallel through the non-blocking core. The slowest edge
// (in either direction) determines completion; links are full duplex.
func (f *Fabric) ExchangeTime(egress, ingress []float64) (float64, error) {
	if len(egress) != f.Nodes || len(ingress) != f.Nodes {
		return 0, fmt.Errorf("netsim: exchange wants %d entries, got %d/%d", f.Nodes, len(egress), len(ingress))
	}
	var worst float64
	any := false
	for i := 0; i < f.Nodes; i++ {
		if egress[i] < 0 || ingress[i] < 0 {
			return 0, errors.New("netsim: negative exchange volume")
		}
		if egress[i] > 0 || ingress[i] > 0 {
			any = true
		}
		dir := math.Max(egress[i], ingress[i])
		if dir > worst {
			worst = dir
		}
	}
	if !any {
		return 0, nil
	}
	return f.NodeLink.TransferTime(worst), nil
}

// BroadcastTime is the time for one node to push the same bytes to every
// other node (used for coordinator commit messages): the sender's edge
// serializes n-1 copies unless the payload is negligible.
func (f *Fabric) BroadcastTime(bytes float64) float64 {
	if bytes <= 0 || f.Nodes <= 1 {
		return f.NodeLink.LatencySec
	}
	return f.NodeLink.LatencySec + float64(f.Nodes-1)*bytes/f.NodeLink.BandwidthBps
}
