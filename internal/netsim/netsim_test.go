package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinkValidate(t *testing.T) {
	if err := GigE.Validate(); err != nil {
		t.Errorf("GigE invalid: %v", err)
	}
	bad := []Link{
		{BandwidthBps: 0, LatencySec: 0},
		{BandwidthBps: -1, LatencySec: 0},
		{BandwidthBps: 1, LatencySec: -1},
		{BandwidthBps: math.NaN(), LatencySec: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid link accepted", i)
		}
	}
}

func TestTransferTime(t *testing.T) {
	l := Link{BandwidthBps: 100, LatencySec: 0.5}
	if got := l.TransferTime(200); got != 2.5 {
		t.Errorf("TransferTime = %v, want 2.5", got)
	}
	if got := l.TransferTime(0); got != 0 {
		t.Errorf("TransferTime(0) = %v, want 0", got)
	}
}

func TestNewFabricValidation(t *testing.T) {
	if _, err := NewFabric(0, GigE); err == nil {
		t.Error("0 nodes should fail")
	}
	if _, err := NewFabric(4, Link{}); err == nil {
		t.Error("invalid link should fail")
	}
}

func TestFanInReceiverBottleneck(t *testing.T) {
	f, _ := NewFabric(8, Link{BandwidthBps: 1000, LatencySec: 0})
	// 8 senders x 1000 bytes into a 1000 B/s receiver: 8 seconds.
	got, err := f.FanInTime(8, 1000, Link{BandwidthBps: 1000, LatencySec: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("FanInTime = %v, want 8", got)
	}
}

func TestFanInSlowSenderDominates(t *testing.T) {
	f, _ := NewFabric(2, Link{BandwidthBps: 10, LatencySec: 0})
	// One sender at 10 B/s pushing 1000 bytes to a fast receiver: 100 s.
	got, err := f.FanInTime(1, 1000, Link{BandwidthBps: 1e9, LatencySec: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("FanInTime = %v, want 100", got)
	}
}

func TestFanInZeroCases(t *testing.T) {
	f, _ := NewFabric(4, GigE)
	for _, c := range []struct {
		s int
		b float64
	}{{0, 100}, {4, 0}} {
		got, err := f.FanInTime(c.s, c.b, GigE)
		if err != nil || got != 0 {
			t.Errorf("FanIn(%d,%v) = %v,%v; want 0,nil", c.s, c.b, got, err)
		}
	}
	if _, err := f.FanInTime(-1, 1, GigE); err == nil {
		t.Error("negative senders should fail")
	}
	if _, err := f.FanInTime(1, -1, GigE); err == nil {
		t.Error("negative bytes should fail")
	}
}

func TestExchangeTimeWorstEdge(t *testing.T) {
	f, _ := NewFabric(3, Link{BandwidthBps: 100, LatencySec: 0.1})
	// Node 1 receives 400 bytes: 4s + latency dominates.
	got, err := f.ExchangeTime([]float64{100, 0, 100}, []float64{0, 400, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 + 4.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ExchangeTime = %v, want %v", got, want)
	}
}

func TestExchangeTimeFullDuplex(t *testing.T) {
	f, _ := NewFabric(2, Link{BandwidthBps: 100, LatencySec: 0})
	// Equal send+receive on both: full duplex means max, not sum.
	got, err := f.ExchangeTime([]float64{100, 100}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("ExchangeTime = %v, want 1 (full duplex)", got)
	}
}

func TestExchangeTimeValidation(t *testing.T) {
	f, _ := NewFabric(2, GigE)
	if _, err := f.ExchangeTime([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := f.ExchangeTime([]float64{-1, 0}, []float64{0, 0}); err == nil {
		t.Error("negative volume should fail")
	}
	got, err := f.ExchangeTime([]float64{0, 0}, []float64{0, 0})
	if err != nil || got != 0 {
		t.Errorf("empty exchange = %v,%v; want 0,nil", got, err)
	}
}

func TestBroadcastTime(t *testing.T) {
	f, _ := NewFabric(5, Link{BandwidthBps: 100, LatencySec: 0.01})
	got := f.BroadcastTime(100)
	want := 0.01 + 4.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("BroadcastTime = %v, want %v", got, want)
	}
	if got := f.BroadcastTime(0); got != 0.01 {
		t.Errorf("zero-byte broadcast = %v, want latency only", got)
	}
}

// Property: fan-in time is monotone in sender count and bytes.
func TestQuickFanInMonotone(t *testing.T) {
	f, _ := NewFabric(64, GigE)
	fn := func(s1, s2 uint8, b1, b2 uint32) bool {
		sa, sb := int(s1%64), int(s2%64)
		if sa > sb {
			sa, sb = sb, sa
		}
		ba, bb := float64(b1), float64(b2)
		if ba > bb {
			ba, bb = bb, ba
		}
		t1, err1 := f.FanInTime(sa, ba, GigE)
		t2, err2 := f.FanInTime(sb, bb, GigE)
		return err1 == nil && err2 == nil && t1 <= t2+1e-9
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
