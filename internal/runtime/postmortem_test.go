package runtime

import (
	"errors"
	"strings"
	"testing"

	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/obs/collect"
)

// TestPartialCommitDumpsPostmortemBundle is the black-box recorder's
// end-to-end contract: a node that dies mid-commit must leave a postmortem
// bundle on disk — flight log, metrics snapshot, and meta naming the reason —
// without any cooperation from the caller beyond attaching the recorder.
func TestPartialCommitDumpsPostmortemBundle(t *testing.T) {
	dir := t.TempDir()
	layout := paperLayout(t)
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	proxyAddr, failing := commitFailProxy(t, nodes[1].Addr())
	addrs[1] = proxyAddr

	tr := obs.NewTracer(1 << 12)
	reg := obs.NewRegistry()
	rec := obs.NewFlightRecorder(512)
	rec.SetDumpDir(dir)
	rec.SetRegistry(reg)
	rec.SetMeta("test", "partial-commit")
	tr.SetTap(rec.Span)

	coord, err := NewCoordinator(layout, addrs, 16, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coord.SetObserver(tr, reg)
	coord.SetFlightRecorder(rec)
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}

	// One clean round fills the flight ring with healthy traffic, then node
	// 1's commits start failing.
	if err := coord.Step(30); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if found, _ := obs.FindBundles(dir); len(found) != 0 {
		t.Fatalf("bundle dumped on a healthy round: %v", found)
	}
	failing.Store(true)
	var pce *PartialCommitError
	if err := coord.Checkpoint(); !errors.As(err, &pce) {
		t.Fatalf("checkpoint error = %v, want *PartialCommitError", err)
	}

	found, err := obs.FindBundles(dir)
	if err != nil || len(found) != 1 {
		t.Fatalf("FindBundles = %v, %v, want exactly one bundle", found, err)
	}
	b, err := obs.ReadBundle(found[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.Reason != "partial-commit" {
		t.Errorf("bundle reason = %q", b.Meta.Reason)
	}
	if b.Meta.Meta["test"] != "partial-commit" {
		t.Errorf("bundle meta = %v, SetMeta lost", b.Meta.Meta)
	}
	if len(b.Entries) == 0 {
		t.Fatal("bundle has no flight entries")
	}
	// The flight log must hold the failing RPCs against node1 and the
	// coordinator's closing note naming the epoch and casualty list.
	var failedRPC, note bool
	for _, e := range b.Entries {
		if e.Kind == "rpc" && e.Peer == "node1" && strings.Contains(e.Err, "injected commit failure") {
			failedRPC = true
		}
		if e.Kind == "note" && e.Name == "partial-commit" && e.Attrs["nodes"] == "[1]" {
			note = true
		}
	}
	if !failedRPC {
		t.Error("no errored rpc entry for node1 in the flight log")
	}
	if !note {
		t.Error("no partial-commit note entry in the flight log")
	}
	if !strings.Contains(b.Metrics, "dvdc_") {
		t.Error("bundle metrics snapshot is empty")
	}
	// Spans reached the recorder through the tracer tap.
	var sawSpan bool
	for _, e := range b.Entries {
		if e.Kind == "span" {
			sawSpan = true
			break
		}
	}
	if !sawSpan {
		t.Error("no span entries in the flight log; tracer tap not wired")
	}
}

// TestSoakPostmortemWiring runs a clean chaos-free soak with a postmortem dir
// attached: the recorder must see traffic (spans and RPCs tapped) yet dump
// nothing, because nothing went wrong. The failure path is covered by
// TestPartialCommitDumpsPostmortemBundle above and by the chaos soak in CI.
func TestSoakPostmortemWiring(t *testing.T) {
	dir := t.TempDir()
	rec := obs.NewFlightRecorder(1024)
	cfg := SoakConfig{
		Layout:        paperLayout(t),
		Rounds:        3,
		StepsPerRound: 20,
		Seed:          7,
		Recorder:      rec,
		PostmortemDir: dir,
	}
	if _, err := RunSoak(cfg); err != nil {
		t.Fatalf("clean soak failed: %v", err)
	}
	if found, _ := obs.FindBundles(dir); len(found) != 0 {
		t.Fatalf("clean soak dumped bundles: %v", found)
	}
	var spans, rpcs int
	for _, e := range rec.Entries() {
		switch e.Kind {
		case "span":
			spans++
		case "rpc":
			rpcs++
		}
	}
	if spans == 0 || rpcs == 0 {
		t.Fatalf("recorder saw %d spans / %d rpcs; soak wiring broken", spans, rpcs)
	}
}

// BenchmarkObsOverhead is the in-repo twin of `dvdcbench -obs`: one
// checkpointed round on the paper layout with the telemetry plane dark versus
// fully lit (tracer, registry, flight-recorder tap, and a per-round collector
// merge/verify/attribute pass). The two subbenches make the plane's cost a
// one-line `benchstat` comparison.
func BenchmarkObsOverhead(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "dark"
		if full {
			name = "full"
		}
		b.Run(name, func(b *testing.B) {
			benchObsRound(b, full)
		})
	}
}

func benchObsRound(b *testing.B, full bool) {
	layout, err := cluster.Paper12VM()
	if err != nil {
		b.Fatal(err)
	}
	var nopts NodeOptions
	var (
		tr  *obs.Tracer
		reg *obs.Registry
		rec *obs.FlightRecorder
	)
	if full {
		tr = obs.NewTracer(1 << 15)
		reg = obs.NewRegistry()
		rec = obs.NewFlightRecorder(0)
		rec.SetRegistry(reg)
		tr.SetTap(rec.Span)
		nopts = NodeOptions{Tracer: tr, Registry: reg, Recorder: rec}
	}
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNodeWith("127.0.0.1:0", nopts)
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	b.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	coord, err := NewCoordinator(layout, addrs, 256, 4096, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(coord.Close)
	if full {
		coord.SetObserver(tr, reg)
		coord.SetFlightRecorder(rec)
	}
	if err := coord.Setup(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coord.Step(20); err != nil {
			b.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		if full {
			// The collector pass the telemetry plane adds per round: merge the
			// round's spans, verify the tree, and name the straggler.
			tree := collect.BuildTree(tr.TraceSpans(coord.RoundStats().TraceID))
			if err := tree.Verify(); err != nil {
				b.Fatal(err)
			}
			collect.Attribute(tree).Export(reg)
		}
	}
}
