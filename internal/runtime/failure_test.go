package runtime

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/transport"
	"dvdc/internal/wire"
)

// TestStalledNodeDoesNotBlockPastDeadline proves the coordinator's RPC
// deadline: a node whose handler hangs surfaces as a timeout error within the
// configured budget instead of wedging the control plane forever.
func TestStalledNodeDoesNotBlockPastDeadline(t *testing.T) {
	layout := paperLayout(t)
	nodes := make([]*Node, 3)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	// Node 3 is a daemon that configures fine and then hangs on everything.
	stall := make(chan struct{})
	stalled, err := transport.Listen("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		if req.Type == wire.MsgConfigure {
			return &wire.Message{Type: wire.MsgConfigureOK}, nil
		}
		<-stall
		return nil, fmt.Errorf("stalled")
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stalled.Close() })
	t.Cleanup(func() { close(stall) }) // unblock handlers before Close waits on them
	addrs[3] = stalled.Addr()

	coord, err := NewCoordinator(layout, addrs, 16, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coord.SetRPCTimeout(200 * time.Millisecond)
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	err = coord.Step(5)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("step against a stalled node should fail")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v is not a timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("stalled node blocked the coordinator for %v, deadline is 200ms", elapsed)
	}
}

// commitFailProxy sits in front of one node and, once armed, rejects every
// MsgCommit while forwarding everything else untouched.
func commitFailProxy(t *testing.T, backend string) (string, *atomic.Bool) {
	t.Helper()
	pool := transport.NewPool(backend, transport.PoolOptions{Size: 16})
	var failing atomic.Bool
	s, err := transport.Listen("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		if failing.Load() && req.Type == wire.MsgCommit {
			return nil, fmt.Errorf("injected commit failure")
		}
		return pool.Call(req)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		pool.Close()
	})
	return s.Addr(), &failing
}

// TestCommitFailureDeclaresNodeDeadAndRecovers exercises the commit-phase
// invariant: a node that keeps failing commit through the retry budget is
// declared dead, the epoch still advances on the survivors (commit is not
// undoable), the error names the casualty as a *PartialCommitError, Repair
// refuses the node until it is recovered, and RecoverNodes restores
// redundancy.
func TestCommitFailureDeclaresNodeDeadAndRecovers(t *testing.T) {
	layout := paperLayout(t)
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	proxyAddr, failing := commitFailProxy(t, nodes[1].Addr())
	addrs[1] = proxyAddr
	coord, err := NewCoordinator(layout, addrs, 16, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}

	// A clean round first, then a round whose commit fails on node 1.
	if err := coord.Step(30); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Step(10); err != nil {
		t.Fatal(err)
	}
	failing.Store(true)
	err = coord.Checkpoint()
	var pce *PartialCommitError
	if !errors.As(err, &pce) {
		t.Fatalf("checkpoint error = %v, want *PartialCommitError", err)
	}
	if len(pce.Nodes) != 1 || pce.Nodes[0] != 1 {
		t.Fatalf("partial commit lost nodes %v, want [1]", pce.Nodes)
	}
	if coord.Epoch() != 2 {
		t.Errorf("epoch = %d after partial commit, want 2 (commit is not undoable)", coord.Epoch())
	}
	stats := coord.RoundStats()
	if len(stats.DeadDuring) != 1 || stats.DeadDuring[0] != 1 {
		t.Errorf("RoundStats.DeadDuring = %v, want [1]", stats.DeadDuring)
	}

	// The node is dead pending recovery: repair must refuse it.
	if err := coord.Repair(1); err == nil {
		t.Error("repair of a mid-commit casualty should fail before recovery")
	}

	// Recovery reconstructs node 1's VMs at the committed epoch — possible
	// precisely because the survivors' parity absorbed node 1's prepared
	// deltas before the commit fan-out lost it.
	if _, err := coord.RecoverNodes(1); err != nil {
		t.Fatalf("recovery after partial commit: %v", err)
	}
	if _, err := coord.Checksums(); err != nil {
		t.Fatalf("checksums after recovery: %v", err)
	}

	// The cluster keeps working.
	if err := coord.Step(10); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("round after recovery: %v", err)
	}
}

// TestReconfigureResetsNodeState runs one controller session whose recovery
// relocates VMs, then points a brand-new coordinator (fresh layout, same
// daemons) at the cluster. Configure must be a complete assignment: if
// members from the first session leak through, the relocated VM exists on
// two nodes at once and both ship deltas — at different epochs — to the
// same parity keeper ("conflicting staged delta").
func TestReconfigureResetsNodeState(t *testing.T) {
	coord, nodes := testCluster(t, paperLayout(t))
	if err := coord.Step(20); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Recovery moves node 2's VMs onto survivors. The daemon itself stays up:
	// the controller just stops talking to it (the dvdcctl -kill flow).
	if _, err := coord.RecoverNode(2); err != nil {
		t.Fatal(err)
	}
	coord.Close()

	addrs := map[int]string{}
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}
	coord2, err := NewCoordinator(paperLayout(t), addrs, 16, 64, 54321)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord2.Close)
	if err := coord2.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := coord2.Step(20); err != nil {
		t.Fatal(err)
	}
	if err := coord2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint under a fresh controller session: %v", err)
	}
	if _, err := coord2.Checksums(); err != nil {
		t.Fatal(err)
	}
}

// TestNodeRestartMidRoundRedials bounces a daemon between two rounds: the
// coordinator's pooled connections to it are stale, and the next round must
// transparently re-dial (recorded in RoundStats.RPCRetries) instead of
// failing the round.
func TestNodeRestartMidRoundRedials(t *testing.T) {
	// A 4-node layout stretched to 5 daemons leaves node 4 hosting nothing,
	// so its daemon can bounce without losing protocol state.
	layout, err := cluster.BuildDistributedGroups(4, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	layout.Nodes = 5
	coord, nodes := testCluster(t, layout)
	if err := coord.Step(20); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Bounce the spare daemon on its own address.
	addr := nodes[4].Addr()
	if err := nodes[4].Close(); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewNode(addr)
	if err != nil {
		t.Fatalf("restart daemon on %s: %v", addr, err)
	}
	t.Cleanup(func() { fresh.Close() })

	// The next round's fan-out lands on stale pooled connections.
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("round after daemon restart: %v", err)
	}
	if coord.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", coord.Epoch())
	}
	if got := coord.RoundStats().RPCRetries; got == 0 {
		t.Error("expected the round to record at least one transport retry over the stale connection")
	}
}
