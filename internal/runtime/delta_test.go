package runtime

import (
	"dvdc/internal/checkpoint"
	"dvdc/internal/core"
)

// sampleDelta builds a small synthetic delta for codec tests.
func sampleDelta() *core.Delta {
	return &core.Delta{
		VMID:  "vm-01.02",
		Epoch: 7,
		Pages: []checkpoint.PageRecord{
			{Index: 0, Data: []byte{1, 2, 3, 4}},
			{Index: 9, Data: []byte{5, 6, 7, 8}},
		},
	}
}
