// Package runtime is the distributed DVDC implementation: node daemons that
// host real VM memories, keep RAID-group parity, and speak the wire protocol
// over TCP; and a coordinator that drives two-phase checkpoint rounds and
// failure recovery across them. It is the networked twin of core.Cluster —
// the same Member/MKeeper data path, with prepare/commit, parity shipping,
// and reconstruction traffic actually crossing sockets. Groups may carry any
// parity tolerance m: each of the m parity blocks lives on its own node, and
// up to m simultaneous node deaths are recoverable.
package runtime

import "encoding/json"

// VMConfig places one VM on a node.
type VMConfig struct {
	Name        string `json:"name"`
	Pages       int    `json:"pages"`
	PageSize    int    `json:"page_size"`
	Group       int    `json:"group"`
	ParityNodes []int  `json:"parity_nodes"` // node of parity block i, i = 0..tolerance-1
	Seed        int64  `json:"seed"`         // workload seed

	// Workload selects the synthetic workload kind driving this VM ("" =
	// uniform). The shadow model mirrors the same kind and seed, so both
	// sides replay identical write streams.
	Workload string `json:"workload,omitempty"`
}

// KeeperConfig makes a node the holder of one parity block of one group.
type KeeperConfig struct {
	Group     int      `json:"group"`
	ParityIdx int      `json:"parity_idx"`
	Tolerance int      `json:"tolerance"`
	Members   []string `json:"members"`
	Pages     int      `json:"pages"`
	PageSize  int      `json:"page_size"`
}

// NodeConfig is the full assignment a node receives at setup.
type NodeConfig struct {
	NodeID   int            `json:"node_id"`
	Peers    map[int]string `json:"peers"` // node id -> address, self included
	VMs      []VMConfig     `json:"vms"`
	Keepers  []KeeperConfig `json:"keepers"`
	Compress bool           `json:"compress"` // flate-compress delta shipments (Sec. IV-C)

	// ChunkSize selects the data-path granularity: 0 picks the default
	// chunked pipeline (wire.DefaultChunkSize), a positive value sets the
	// chunk payload size, and a negative value falls back to the legacy
	// monolithic shipments (whole delta / image per message).
	ChunkSize int `json:"chunk_size,omitempty"`

	// Dedup enables the cross-epoch page-hash cache on the ship path: dirty
	// pages whose content hash is unchanged since the member's last committed
	// epoch are not shipped (their XOR delta is all zeros, so the parity fold
	// they would trigger is a no-op). The cache is invalidated on abort,
	// rollback, and recovery/rebalance parity reassignment.
	Dedup bool `json:"dedup,omitempty"`

	// PipelineWidth bounds the in-flight chunk batches per (stream, peer) on
	// the chunked ship path; nonpositive selects the built-in default.
	PipelineWidth int `json:"pipeline_width,omitempty"`
}

// retuneConfig rides MsgRetune: a live data-path retune. Unlike MsgConfigure
// it leaves VM and keeper assignments untouched, so the advisor can adjust
// chunk size and pipeline width between rounds without re-seeding the node.
// Retunes may not cross the chunked/monolithic boundary — that would change
// the shipped representation mid-stream.
type retuneConfig struct {
	ChunkSize     int `json:"chunk_size"`
	PipelineWidth int `json:"pipeline_width"`
}

// NodeStats are a node's protocol counters, served via MsgStats.
type NodeStats struct {
	DeltasSent     int64 `json:"deltas_sent"`
	DeltaRawBytes  int64 `json:"delta_raw_bytes"`  // uncompressed delta payload
	DeltaWireBytes int64 `json:"delta_wire_bytes"` // bytes actually shipped

	// Chunked data path counters.
	ChunksSent     int64 `json:"chunks_sent"`     // delta chunks shipped to parity peers
	ChunksReceived int64 `json:"chunks_received"` // delta chunks folded as keeper
	DupChunks      int64 `json:"dup_chunks"`      // idempotently dropped re-deliveries
	FoldNanos      int64 `json:"fold_nanos"`      // cumulative chunk fold time as keeper

	// Page-dedup cache counters (ship path, when NodeConfig.Dedup is on).
	DedupHits          int64 `json:"dedup_hits"`          // dirty pages skipped: hash unchanged since last commit
	DedupMisses        int64 `json:"dedup_misses"`        // dirty pages hashed and shipped
	DedupSavedBytes    int64 `json:"dedup_saved_bytes"`   // raw delta bytes not shipped thanks to hits
	DedupInvalidations int64 `json:"dedup_invalidations"` // cache entries dropped on abort/rollback/reassignment
}

// prepareSummary rides a MsgPrepareOK reply's Text field so the coordinator
// can aggregate chunk counts next to the wire bytes Arg already carries.
type prepareSummary struct {
	Chunks  int64 `json:"chunks"`
	Deduped int64 `json:"deduped,omitempty"` // dirty pages skipped by the dedup cache
}

// encodeJSON marshals a config for the wire's Text field.
func encodeJSON(v interface{}) (string, error) {
	b, err := json.Marshal(v)
	return string(b), err
}

// decodeJSON unmarshals a config from the wire's Text field.
func decodeJSON(s string, v interface{}) error {
	return json.Unmarshal([]byte(s), v)
}

// installConfig rides MsgInstall: geometry and ownership for an adopted VM.
type installConfig struct {
	VMConfig
	Epoch uint64 `json:"epoch"`
}

// reconstructConfig rides MsgReconstruct: everything the solving parity node
// needs to rebuild LostVM — which members are gone, where the survivors
// live, and where the still-alive parity blocks of the group are.
type reconstructConfig struct {
	LostVM      string         `json:"lost_vm"`
	AllLost     []string       `json:"all_lost"` // every lost member of the group
	Group       int            `json:"group"`
	Tolerance   int            `json:"tolerance"`
	Survivors   map[string]int `json:"survivors"`    // member -> node id
	ParityPeers map[int]int    `json:"parity_peers"` // parity index -> node id (alive)
}

// rebuildKeeperConfig rides MsgRebuildKeeper.
type rebuildKeeperConfig struct {
	KeeperConfig
	MemberNodes map[string]int    `json:"member_nodes"`
	Epochs      map[string]uint64 `json:"epochs"`
}

// parityUpdate is one entry of a MsgSetParityBatch (JSON list in Text):
// parity block Idx of group Group now lives on node Node. Batching turns the
// post-recovery pointer refresh from O(groups x parity x nodes) round trips
// into one message per node.
type parityUpdate struct {
	Group int `json:"group"`
	Idx   int `json:"idx"`
	Node  int `json:"node"`
}
