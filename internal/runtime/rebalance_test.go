package runtime

import (
	"testing"

	"dvdc/internal/wire"
)

// TestRepairAndRebalanceOverTCP runs the full lifecycle on the paper's
// 4-node layout across real sockets: degraded recovery, daemon replacement
// on the same address, repair, rebalance, and a subsequent failure that is
// again recoverable.
func TestRepairAndRebalanceOverTCP(t *testing.T) {
	coord, nodes := testCluster(t, paperLayout(t))
	if err := coord.Step(50); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	committed, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}

	// Node 1 dies; recovery is degraded on the tight layout.
	addr := nodes[1].Addr()
	nodes[1].Close()
	plan, err := coord.RecoverNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded {
		t.Fatal("expected degraded recovery")
	}
	if coord.Layout().Validate() == nil {
		t.Fatal("layout should be non-orthogonal")
	}

	// A replacement daemon comes up on the same address.
	fresh, err := NewNode(addr)
	if err != nil {
		t.Fatalf("replacement daemon on %s: %v", addr, err)
	}
	t.Cleanup(func() { fresh.Close() })
	if err := coord.Repair(1); err != nil {
		t.Fatal(err)
	}

	// Rebalance right after the recovery (state is committed: recovery
	// rolled everyone back, no steps since).
	rb, err := coord.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Steps) == 0 {
		t.Fatal("rebalance should move something")
	}
	if err := coord.Layout().Validate(); err != nil {
		t.Errorf("layout not orthogonal after rebalance: %v", err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for vmName, want := range committed {
		if after[vmName] != want {
			t.Errorf("VM %q state changed through repair+rebalance", vmName)
		}
	}

	// Full protection is back: another round and another failure recover.
	if err := coord.Step(30); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	nodes[3].Close()
	if _, err := coord.RecoverNode(3); err != nil {
		t.Fatalf("failure after rebalance: %v", err)
	}
}

func TestRebalanceNoopWhenOrthogonal(t *testing.T) {
	coord, _ := testCluster(t, paperLayout(t))
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	plan, err := coord.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Errorf("orthogonal cluster rebalanced %d steps", len(plan.Steps))
	}
}

func TestEvictRejectsDirtyVM(t *testing.T) {
	coord, nodes := testCluster(t, paperLayout(t))
	if err := coord.Step(10); err != nil {
		t.Fatal(err)
	}
	// Find a VM on node 0 and try to evict while dirty.
	vmName := coord.Layout().VMsOnNode(0)[0]
	if _, err := nodes[0].handle(evictMsg(vmName)); err == nil {
		t.Error("evicting a dirty VM should fail")
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].handle(evictMsg(vmName)); err != nil {
		t.Errorf("evicting a quiescent VM should succeed: %v", err)
	}
	if _, err := nodes[0].handle(evictMsg(vmName)); err == nil {
		t.Error("double evict should fail")
	}
}

func TestRepairValidation(t *testing.T) {
	coord, _ := testCluster(t, paperLayout(t))
	if err := coord.Repair(0); err == nil {
		t.Error("repairing an alive node should fail")
	}
}

// evictMsg builds an evict request for a VM.
func evictMsg(vmName string) *wire.Message {
	return &wire.Message{Type: wire.MsgEvict, VM: vmName}
}
