package runtime

import "time"

// One home for every tunable default shared between the coordinator, the node
// daemon, the soak harness, and the CLI flag surfaces. The cmd/ binaries
// register flags whose defaults reference these constants (and their tests
// assert the flag defaults match), so the library and the CLIs cannot drift.
const (
	// DefaultRPCTimeout is the per-RPC I/O deadline of coordinator and
	// node-daemon calls.
	DefaultRPCTimeout = 30 * time.Second
	// DefaultFanout is the concurrent-RPC width of every control-plane
	// fan-out phase.
	DefaultFanout = 16
	// DefaultCommitRetries is how many commit attempts a node gets before
	// being declared dead.
	DefaultCommitRetries = 3

	// Soak-harness defaults (SoakConfig zero fields resolve to these).
	DefaultSoakRounds       = 10
	DefaultSoakSteps        = uint64(40)
	DefaultSoakPages        = 16
	DefaultSoakPageSize     = 64
	DefaultSoakRoundSeconds = 10
	DefaultSoakRPCTimeout   = 5 * time.Second
)

// withDefaults resolves every zero SoakConfig field to its default, in one
// place; RunSoak and the service-mode soak both normalize through it.
func (c SoakConfig) withDefaults() SoakConfig {
	if c.Rounds <= 0 {
		c.Rounds = DefaultSoakRounds
	}
	if c.StepsPerRound == 0 {
		c.StepsPerRound = DefaultSoakSteps
	}
	if c.Pages <= 0 {
		c.Pages = DefaultSoakPages
	}
	if c.PageSize <= 0 {
		c.PageSize = DefaultSoakPageSize
	}
	if c.RoundSeconds <= 0 {
		c.RoundSeconds = DefaultSoakRoundSeconds
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = DefaultSoakRPCTimeout
	}
	return c
}
