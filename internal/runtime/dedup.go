package runtime

import (
	"dvdc/internal/core"
	"dvdc/internal/vm"
)

// Workload kind names a VMConfig can carry. The node and the shadow model
// both build workloads through newWorkload, so a kind string plus a seed
// fully determines the write stream on either side.
const (
	WorkloadUniform = "uniform"
	WorkloadRewrite = "rewrite"
)

// rewriteChangeFrac is the content-change probability of the rewrite
// workload: ~1 in 8 writes stores new bytes, the rest re-dirty pages with
// identical content — the low-dirty-rate regime the page-dedup cache
// targets.
const rewriteChangeFrac = 0.125

// newWorkload builds the workload for a kind string ("" = uniform).
func newWorkload(kind string, seed int64) vm.Workload {
	switch kind {
	case WorkloadRewrite:
		return vm.NewRewrite(seed, rewriteChangeFrac)
	default:
		return vm.NewUniform(seed)
	}
}

// dedupFilter splits a freshly captured delta against the member's page-hash
// cache. Caller holds ms.mu, immediately after CaptureDelta: the machine's
// live pages equal the just-advanced committed image, so hashing a live page
// hashes the content the parity fold would land.
//
// A dirty page whose content hash equals the cached hash of the last
// committed epoch carries an all-zero XOR delta — folding it into parity is
// a no-op — so it is dropped from the shipped delta. The decision is
// hash-only by design: a poisoned cache entry produces wrong parity, which
// the soak harness's shadow-model invariant catches at reconstruction. Pages
// that do ship have their new hash staged; commit promotes staged hashes,
// abort drops only the staged ones (dedupAbort), and rollback/recovery/
// rebalance invalidate the cache wholesale (dedupInvalidate).
//
// The returned delta shares page records with d (never the slice header), so
// d remains intact for UndoCapture.
func (ms *memberState) dedupFilter(d *core.Delta) (shipped *core.Delta, hits, misses int64) {
	if ms.pageHashes == nil {
		ms.pageHashes = map[int]uint64{}
	}
	if ms.stagedHashes == nil {
		ms.stagedHashes = map[int]uint64{}
	}
	m := ms.mem.Machine()
	out := &core.Delta{VMID: d.VMID, Epoch: d.Epoch}
	for _, p := range d.Pages {
		h := m.PageHash(p.Index)
		if cached, ok := ms.pageHashes[p.Index]; ok && cached == h {
			hits++
			continue
		}
		misses++
		ms.stagedHashes[p.Index] = h
		out.Pages = append(out.Pages, p)
	}
	return out, hits, misses
}

// dedupCommit promotes hashes staged by the last prepare into the cache.
// Caller holds ms.mu.
func (ms *memberState) dedupCommit() {
	for idx, h := range ms.stagedHashes {
		ms.pageHashes[idx] = h
	}
	clear(ms.stagedHashes)
}

// dedupAbort drops only the hashes staged by the aborted prepare. The
// committed entries stay: an abort never touches parity (staged deltas and
// the keeper's pending buffer are discarded, and UndoCapture restores the
// committed image to exactly the content the cached hashes describe), so
// they still name what the keeper last folded. Caller holds ms.mu.
func (ms *memberState) dedupAbort() {
	clear(ms.stagedHashes)
}

// dedupInvalidate drops the whole cache (abort, rollback, recovery,
// rebalance): conservative, but those paths are rare and a stale entry
// silently corrupts parity. Returns the number of entries dropped, so the
// caller can surface invalidation churn as telemetry. Caller holds ms.mu.
func (ms *memberState) dedupInvalidate() int64 {
	dropped := int64(len(ms.pageHashes) + len(ms.stagedHashes))
	clear(ms.pageHashes)
	clear(ms.stagedHashes)
	return dropped
}
