package runtime

import (
	"testing"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/transport"
	"dvdc/internal/wire"
)

// benchCluster spins up a localhost cluster with real VM geometry (pages x
// pageSize bytes per VM) and returns a coordinator over it. rtt > 0 inserts
// a latency-injecting proxy in front of every node, emulating a network
// where each message spends rtt/2 on the wire — the regime the paper's
// Sec. IV-B utilization argument lives in, and where serial fan-out hurts.
// chunkSize follows SetChunkSize: 0 default chunked, <0 monolithic.
func benchCluster(b *testing.B, layout *cluster.Layout, pages, pageSize int, rtt time.Duration, chunkSize int) (*Coordinator, []*Node) {
	b.Helper()
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
		if rtt > 0 {
			addrs[i] = delayProxy(b, n.Addr(), rtt/2)
		}
	}
	b.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	coord, err := NewCoordinator(layout, addrs, pages, pageSize, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(coord.Close)
	coord.SetChunkSize(chunkSize)
	if err := coord.Setup(); err != nil {
		b.Fatal(err)
	}
	return coord, nodes
}

// delayProxy forwards wire messages to backend after an injected one-way
// delay, so loopback behaves like a LAN hop.
func delayProxy(b *testing.B, backend string, delay time.Duration) string {
	b.Helper()
	pool := transport.NewPool(backend, transport.PoolOptions{Size: 64})
	s, err := transport.Listen("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		time.Sleep(delay)
		return pool.Call(req)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		s.Close()
		pool.Close()
	})
	return s.Addr()
}

// serialize forces the seed's serial behavior: the coordinator contacts one
// node at a time and each node prepares one member at a time.
func serialize(coord *Coordinator, nodes []*Node) {
	coord.SetFanout(1)
	for _, n := range nodes {
		n.SetFanout(1)
	}
}

// BenchmarkRuntimeRound measures one checkpointed work round (Step +
// two-phase Checkpoint) end to end over real sockets. The 4-node case is the
// paper's Fig. 5 layout (4 nodes, 12 VMs); the 8-node cases are the
// acceptance layout for the serial-vs-concurrent coordinator comparison,
// with the "serial" variants pinning the fan-out width to 1 (the seed's
// behavior) and the "1msRTT" variants adding a 1ms round trip per message.
// VMs are 256 pages x 4 KiB = 1 MiB, so delta capture, shipping, and parity
// folding dominate over RPC framing.
func BenchmarkRuntimeRound(b *testing.B) {
	eightNode := func() (*cluster.Layout, error) {
		return cluster.BuildDistributedGroups(8, 1, 1, 7)
	}
	cases := []struct {
		name   string
		layout func() (*cluster.Layout, error)
		rtt    time.Duration
		serial bool
	}{
		{name: "4node12vm", layout: cluster.Paper12VM},
		{name: "8node", layout: eightNode},
		{name: "8node-serial", layout: eightNode, serial: true},
		{name: "8node-1msRTT", layout: eightNode, rtt: time.Millisecond},
		{name: "8node-1msRTT-serial", layout: eightNode, rtt: time.Millisecond, serial: true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			layout, err := tc.layout()
			if err != nil {
				b.Fatal(err)
			}
			coord, nodes := benchCluster(b, layout, 256, 4096, tc.rtt, 0)
			if tc.serial {
				serialize(coord, nodes)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := coord.Step(20); err != nil {
					b.Fatal(err)
				}
				if err := coord.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if coord.Epoch() != uint64(b.N) {
				b.Fatalf("epoch %d after %d rounds", coord.Epoch(), b.N)
			}
		})
	}
}

// BenchmarkDataPath compares the monolithic and chunked delta paths on
// large-image rounds (paper layout, 256 pages x 4 KiB = 1 MiB per VM, heavy
// write phase so deltas span many chunks). Run with -benchmem: the chunked
// path recycles every frame, fold buffer, and pending accumulation through
// internal/bufpool, so the allocation column is the headline number;
// shipped-MB/s is reported as a custom metric. cmd/dvdcbench -datapath wraps
// the same comparison and emits BENCH_datapath.json.
func BenchmarkDataPath(b *testing.B) {
	cases := []struct {
		name  string
		chunk int
	}{
		{"monolithic", -1},
		{"chunked-64KiB", 0}, // wire.DefaultChunkSize, the shipping default
		{"chunked-16KiB", 16 << 10},
		{"chunked-256KiB", 256 << 10},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			layout, err := cluster.Paper12VM()
			if err != nil {
				b.Fatal(err)
			}
			coord, _ := benchCluster(b, layout, 256, 4096, 0, tc.chunk)
			b.ReportAllocs()
			b.ResetTimer()
			var shipped int64
			for i := 0; i < b.N; i++ {
				if err := coord.Step(120); err != nil {
					b.Fatal(err)
				}
				if err := coord.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				shipped += coord.RoundStats().BytesShipped
			}
			b.StopTimer()
			if coord.Epoch() != uint64(b.N) {
				b.Fatalf("epoch %d after %d rounds", coord.Epoch(), b.N)
			}
			b.ReportMetric(float64(shipped)/1e6/b.Elapsed().Seconds(), "shippedMB/s")
		})
	}
}
