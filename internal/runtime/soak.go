package runtime

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"dvdc/internal/chaos"
	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/obs/adapt"
	"dvdc/internal/obs/collect"
	"dvdc/internal/obs/health"
	"dvdc/internal/wire"
)

// SoakConfig drives one invariant-checked chaos soak: N checkpoint rounds on
// a live TCP cluster while a seeded chaos.Injector corrupts, drops, delays,
// and partitions traffic and a seeded kill plan takes whole nodes down.
// Everything nondeterministic is derived from Seed, so a failing run is
// replayed by its seed alone.
type SoakConfig struct {
	Layout        *cluster.Layout
	Rounds        int           // checkpoint rounds (default 10)
	StepsPerRound uint64        // workload steps before each checkpoint (default 40)
	Pages         int           // VM geometry (default 16)
	PageSize      int           // (default 64)
	Seed          int64         // master seed: workloads, chaos, kills, arm plan
	Chaos         chaos.Config  // probabilistic rates, active only during checkpoints
	ArmPerRound   int           // armed one-shot faults per round on coordinator pairs
	ChunkSize     int           // data-path granularity: 0 default chunked, <0 monolithic, >0 bytes
	ChunkFaults   int           // armed one-shot chunk-frame faults per round on member-host -> parity edges
	Workload      string        // workload kind every VM runs ("" = uniform; see WorkloadRewrite)
	Dedup         bool          // cross-epoch page-hash dedup on node ship paths
	PPartition    float64       // per-round probability of a transient node-pair partition
	KillMTBF      float64       // per-node MTBF in virtual seconds (0 = no kills)
	RoundSeconds  float64       // virtual seconds per round on the kill clock (default 10)
	RPCTimeout    time.Duration // coordinator/node per-call deadline (default 5s)
	RoundInterval time.Duration // wall-clock pause after each round (0 = flat out); paces a soak being watched over -obs-addr

	// Slow-node plan: a standing per-frame delay on every bulk data frame
	// destined to SlowNode (data-plane ingest congestion; see
	// chaos.Injector.SlowNode) for 0-based rounds [SlowFrom, SlowUntil) —
	// the "habitually slow peer" the health engine's round-time SLO is built
	// to catch and the adaptive keeper-rebalance rule is built to drain.
	// SlowDelay <= 0 disables; SlowUntil <= 0 means through the last round.
	// Unlike armed one-shots the delay applies even while probabilistic
	// chaos is paused, so it stretches whole checkpoint rounds.
	SlowDelay time.Duration
	SlowNode  int
	SlowFrom  int
	SlowUntil int

	// Health, when set, is ticked once after each round's invariant
	// verification, so a fixed-step evaluator's SLO windows march in lockstep
	// with rounds: N slow rounds are N evaluation ticks, deterministically.
	Health *health.Evaluator

	// Adaptive closes the telemetry loop: after each round's verification an
	// obs/adapt.Advisor consumes the round's critical-path attribution, the
	// outlier tracker's habitual-slow-peer flags, and the observed failure
	// rate, and may (a) evacuate parity keepers off a flagged node, (b) retune
	// chunk size / pipeline width, or (c) retune the checkpoint interval
	// (scaling the workload steps between checkpoints on the virtual clock).
	// Every decision lands in RoundRecord.Adapt and the dvdc_adapt_* metric
	// family; applications pause while a Health rule is firing. Classic-loop
	// only (not Service mode).
	Adaptive bool

	// Service routes every checkpoint and recovery through the declarative
	// control plane (internal/service) instead of invoking the coordinator
	// directly: each round submits request objects to a reconciler-backed
	// Service and waits for them to reach a terminal phase, then runs the
	// same invariant battery — plus request-convergence assertions (no stuck
	// phases, observed generations current, reconcile spans rooting the round
	// traces).
	Service bool

	// StateDir (service mode) backs the control plane with a durable journal
	// there, so requests survive controller restarts. ControllerRestarts > 0
	// with an empty StateDir gets a temp dir for the run.
	StateDir string
	// ControllerRestarts (service mode) kills and restarts the controller
	// that many times, spread across the soak: on a restart round the
	// reconciler is stopped first, the round's faults are armed, its victims
	// killed, and its requests submitted — landing in the journal untouched,
	// the way a crash between persisting and scheduling leaves them — then
	// the store is closed and a fresh Service replays the state dir and must
	// converge every request it inherits, with the full shadow-invariant
	// battery still green.
	ControllerRestarts int

	// Observability (all optional). Tracer receives every span the soak
	// produces (nil = the harness builds its own and additionally asserts no
	// span leaks open); TraceSink streams those spans as JSONL; Registry
	// collects the cluster's metrics, including the injector's fault tallies
	// mounted as dvdc_chaos_faults_total{kind}. Recorder is the run's black
	// box: it taps the tracer, the pools' RPC outcomes, and the injector's
	// fired faults, and dumps a postmortem bundle on any invariant violation
	// (nil with a PostmortemDir set builds one internally). PostmortemDir is
	// where bundles land ("" disables dumping).
	Tracer        *obs.Tracer
	TraceSink     io.Writer
	Registry      *obs.Registry
	Recorder      *obs.FlightRecorder
	PostmortemDir string
}

// RoundRecord is the deterministic per-round outcome of a soak. Wall-clock
// durations and retry totals are deliberately split out: under a fixed seed
// the fields of this struct except RPCRetries and Straggler are
// bit-reproducible, while RPCRetries depends on connection-pool reuse timing
// (checked as a lower-bounded reconciliation instead) and Straggler on which
// member's spans happened to dominate the round's critical path.
type RoundRecord struct {
	Round        int    // 1-based, matches the injector's round tags
	Epoch        uint64 // coordinator epoch at the end of the round
	Aborted      bool   // the round's first checkpoint aborted
	BytesShipped int64  // delta bytes shipped across the round's checkpoints
	RPCRetries   int64  // pool retries across the round's checkpoints (timing-dependent)
	DeadDuring   []int  // nodes declared dead mid-commit (PartialCommitError)
	Kills        []int  // nodes the kill plan took down this round
	Straggler    string // lane the round's critical path waited on (timing-dependent)
	Retries      int    // service mode: reconcile attempts beyond the first, summed over the round's requests

	// Wall is the round's checkpoint-trace wall clock (the merged span tree's
	// extent) and Adapt the advisor's decisions for the round (Adaptive mode).
	// Both timing-dependent, both excluded from RoundDigest.
	Wall  time.Duration
	Adapt []adapt.Decision
}

// SoakResult is the full account of a soak run.
type SoakResult struct {
	Rounds    []RoundRecord
	FaultLog  []chaos.Fault
	Checksums map[string]uint64 // final committed-image checksums
	Epoch     uint64            // final committed epoch
	Counters  map[string]int64  // injector fault tallies by kind
	// ControllerRestarts counts the controller kill/restart cycles the run
	// actually performed (service mode with SoakConfig.ControllerRestarts).
	ControllerRestarts int
}

// FaultLogDigest renders the fault log in a canonical order (faults within
// one round fire concurrently across pairs, so raw log order is not
// reproducible; the sorted rendering is).
func (r *SoakResult) FaultLogDigest() []string {
	out := make([]string, len(r.FaultLog))
	for i, f := range r.FaultLog {
		out[i] = f.String()
	}
	sort.Strings(out)
	return out
}

// RoundDigest renders the reproducible per-round fields as one line per
// round, for byte-comparison between same-seed runs.
func (r *SoakResult) RoundDigest() []string {
	out := make([]string, len(r.Rounds))
	for i, rr := range r.Rounds {
		out[i] = fmt.Sprintf("round %d: epoch=%d aborted=%v shipped=%d dead=%v kills=%v",
			rr.Round, rr.Epoch, rr.Aborted, rr.BytesShipped, rr.DeadDuring, rr.Kills)
	}
	return out
}

// pendingRecovery lists nodes declared dead mid-commit and not yet recovered.
func (c *Coordinator) pendingRecovery() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for n := range c.pending {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// soakCluster is the live half of a soak: daemons the harness can kill and
// restart, and the injector hooks each one was built with.
type soakCluster struct {
	inj   *chaos.Injector
	nodes []*Node
	addrs map[int]string
	tr    *obs.Tracer
	reg   *obs.Registry
	rec   *obs.FlightRecorder
}

func (sc *soakCluster) start(i int, addr string) error {
	n, err := NewNodeWith(addr, NodeOptions{
		Dialer:   sc.inj.Dialer(i),
		Listen:   sc.inj.ListenFunc(i),
		Tracer:   sc.tr,
		Registry: sc.reg,
		Recorder: sc.rec,
	})
	if err != nil {
		return err
	}
	sc.nodes[i] = n
	sc.addrs[i] = n.Addr()
	sc.inj.Register(i, n.Addr())
	return nil
}

func (sc *soakCluster) close() {
	for _, n := range sc.nodes {
		if n != nil {
			n.Close()
		}
	}
}

// soakEnv is everything a soak run shares between the classic loop and the
// service-mode loop: the instrumented cluster, the shadow model, the chaos
// machinery, and the invariant checks. Both loops drive the same cluster
// through the same verifications; they differ only in who invokes the
// protocol — the harness directly, or the service reconciler on its behalf.
type soakEnv struct {
	cfg       SoakConfig
	layout    *cluster.Layout
	res       *SoakResult
	rec       *obs.FlightRecorder
	tr        *obs.Tracer
	ownTracer bool
	inj       *chaos.Injector
	kills     *chaos.KillPlan
	harness   *rand.Rand
	sc        *soakCluster
	coord     *Coordinator
	shadow    *Shadow
	outliers  *collect.OutlierTracker
	lastEpoch map[string]uint64

	// Adaptive-mode state: the advisor, plus the last verified round's
	// attribution and root span context, the evidence the advisor consumes.
	advisor  *adapt.Advisor
	lastAttr *collect.Attribution
	lastCtx  obs.SpanContext
}

// newSoakEnv boots the instrumented cluster: flight recorder, tracer,
// injector, kill plan, node daemons, coordinator, shadow model. cfg must
// already be defaulted and carry a layout.
func newSoakEnv(cfg SoakConfig) (*soakEnv, error) {
	layout := cfg.Layout
	e := &soakEnv{cfg: cfg, layout: layout, res: &SoakResult{}, lastEpoch: map[string]uint64{}}

	// The run's black box: tap every finished span, RPC outcome, and fired
	// fault into a bounded ring so an invariant violation dumps the failure's
	// immediate past as a postmortem bundle.
	e.rec = cfg.Recorder
	if e.rec == nil && cfg.PostmortemDir != "" {
		e.rec = obs.NewFlightRecorder(0)
	}
	if cfg.PostmortemDir != "" {
		e.rec.SetDumpDir(cfg.PostmortemDir)
	}
	e.rec.SetRegistry(cfg.Registry)
	e.rec.SetMeta("seed", cfg.Seed)
	e.rec.SetMeta("rounds", cfg.Rounds)
	e.rec.SetMeta("nodes", layout.Nodes)

	e.tr = cfg.Tracer
	e.ownTracer = e.tr == nil
	if e.ownTracer {
		e.tr = obs.NewTracer(1 << 15)
	}
	if cfg.TraceSink != nil {
		e.tr.SetSink(cfg.TraceSink)
	}
	if e.rec != nil {
		e.tr.SetTap(e.rec.Span)
	}

	e.inj = chaos.New(cfg.Seed, cfg.Chaos)
	e.inj.SetTracer(e.tr)
	e.inj.SetRecorder(e.rec)
	e.inj.Pause() // probabilistic injection only runs inside checkpoint windows
	if cfg.Registry != nil {
		cfg.Registry.MountCounterSet("dvdc_chaos_faults_total", "kind", e.inj.Counters().Set())
	}

	if cfg.KillMTBF > 0 {
		var err error
		e.kills, err = chaos.PlanPoissonKills(layout.Nodes, cfg.Rounds, cfg.KillMTBF, cfg.RoundSeconds, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	// The harness's own decisions (which pair to arm, which kind, transient
	// partitions) come from a dedicated stream so they never perturb the
	// injector's or the workloads' streams.
	e.harness = rand.New(rand.NewSource(cfg.Seed ^ 0x5eed50a4c0ffee))

	e.sc = &soakCluster{inj: e.inj, nodes: make([]*Node, layout.Nodes), addrs: map[int]string{}, tr: e.tr, reg: cfg.Registry, rec: e.rec}
	for i := 0; i < layout.Nodes; i++ {
		if err := e.sc.start(i, "127.0.0.1:0"); err != nil {
			e.sc.close()
			return nil, err
		}
		e.sc.nodes[i].SetRPCTimeout(cfg.RPCTimeout)
	}
	coord, err := NewCoordinator(layout, e.sc.addrs, cfg.Pages, cfg.PageSize, cfg.Seed)
	if err != nil {
		e.sc.close()
		return nil, err
	}
	e.coord = coord
	coord.SetObserver(e.tr, cfg.Registry)
	coord.SetFlightRecorder(e.rec)
	coord.SetRPCTimeout(cfg.RPCTimeout)
	coord.SetChunkSize(cfg.ChunkSize)
	coord.SetWorkload(cfg.Workload)
	coord.SetDedup(cfg.Dedup)
	coord.SetDialer(e.inj.Dialer(chaos.Coordinator))
	if err := coord.Setup(); err != nil {
		e.close()
		return nil, err
	}
	e.shadow, err = NewShadowWith(layout, cfg.Pages, cfg.PageSize, cfg.Seed, cfg.Workload)
	if err != nil {
		e.close()
		return nil, err
	}
	e.outliers = collect.NewOutlierTracker(0, 0)
	e.outliers.SetRegistry(cfg.Registry)
	if cfg.Adaptive {
		e.advisor = adapt.New(adapt.Config{
			Tracer:   e.tr,
			Registry: cfg.Registry,
			Recorder: e.rec,
			Hooks: adapt.Hooks{
				EvacuateKeepers: func(peer string) (int, error) {
					id, err := laneNodeID(peer)
					if err != nil {
						return 0, err
					}
					plan, err := e.coord.EvacuateKeepers(id)
					if err != nil {
						return 0, err
					}
					// Keeper evacuations are pure RehomeParity plans: the
					// shadow model tracks VM images, not parity homes, so
					// nothing needs mirroring and bit-identity is untouched.
					return len(plan.Steps), nil
				},
				Retune:      func(cs, pw int) error { return e.coord.Retune(cs, pw) },
				SetInterval: func(float64) error { return nil }, // interval state lives in the advisor; roundSteps reads it back
			},
			ChunkSize:       resolveChunkSize(cfg.ChunkSize),
			PipelineWidth:   resolvePipelineWidth(0),
			IntervalSeconds: cfg.RoundSeconds,
			// Soak rounds cover RoundSeconds of virtual exposure each; a
			// half-life of a few rounds tracks regime changes within one run.
			RateHalfLife:   6 * cfg.RoundSeconds,
			MinRateSeconds: 2 * cfg.RoundSeconds,
			OverheadSec:    1,
			IntervalLo:     1,
			IntervalHi:     8 * cfg.RoundSeconds,
		})
	} else if cfg.Registry != nil {
		// Static runs still export the tuning state (satellite gauges): the
		// interval simply never moves. Adaptive runs get this gauge from the
		// advisor instead.
		iv := cfg.RoundSeconds
		cfg.Registry.GaugeFunc("dvdc_checkpoint_interval_seconds", func() float64 { return iv })
	}
	return e, nil
}

// laneNodeID maps a telemetry lane name ("node3") back to the node index —
// the advisor speaks lanes, the coordinator speaks indices.
func laneNodeID(lane string) (int, error) {
	var id int
	if _, err := fmt.Sscanf(lane, "node%d", &id); err != nil || id < 0 {
		return 0, fmt.Errorf("soak: lane %q is not a node lane", lane)
	}
	return id, nil
}

// roundSteps scales the per-round workload steps by the advisor's current
// checkpoint interval: the interval_retune rule moves how much work runs
// between checkpoints on the virtual clock, which is exactly what
// StepsPerRound models. Static soaks always get cfg.StepsPerRound.
func (e *soakEnv) roundSteps() uint64 {
	steps := e.cfg.StepsPerRound
	if e.advisor == nil || e.cfg.RoundSeconds <= 0 {
		return steps
	}
	iv := e.advisor.Interval()
	if iv <= 0 {
		return steps
	}
	scaled := uint64(float64(steps)*iv/e.cfg.RoundSeconds + 0.5)
	return max(1, scaled)
}

// stepAdapt feeds the advisor one verified round's telemetry and records its
// decisions on the round. Runs after verification and the health tick, on a
// quiesced cluster, so an applied placement or tuning change lands between
// rounds, never mid-protocol.
func (e *soakEnv) stepAdapt(rr *RoundRecord) {
	if e.advisor == nil {
		return
	}
	outliers := e.outliers.Outliers()
	evidence := map[string]string{}
	for _, p := range outliers {
		evidence["p99 "+p] = e.outliers.P99(p).String()
	}
	if med := e.outliers.ClusterMedian(); med > 0 {
		evidence["cluster_median"] = med.String()
	}
	var firing []string
	if e.cfg.Health != nil {
		firing = e.cfg.Health.Firing()
	}
	o := adapt.Observation{
		Round:    rr.Round,
		Ctx:      e.lastCtx,
		Attr:     e.lastAttr,
		Outliers: outliers,
		Evidence: evidence,
		Failures: len(rr.Kills) + len(rr.DeadDuring),
		Elapsed:  e.cfg.RoundSeconds,
		Firing:   firing,
	}
	if e.lastAttr != nil {
		o.Wall = e.lastAttr.Wall
	}
	rr.Adapt = e.advisor.Step(o)
}

// close tears the environment down in the same order RunSoak's defers used
// to: coordinator pools, node daemons, tracer tap, sink flush.
func (e *soakEnv) close() {
	if e.coord != nil {
		e.coord.Close()
	}
	e.sc.close()
	if e.rec != nil {
		e.tr.SetTap(nil)
	}
	if e.cfg.TraceSink != nil {
		e.tr.Flush() //nolint:errcheck // sink errors surface via SinkErr
	}
}

// fail records an invariant violation in the flight recorder, dumps a
// postmortem bundle, and renders the canonical soak error.
func (e *soakEnv) fail(round int, format string, args ...interface{}) (*SoakResult, error) {
	msg := fmt.Sprintf(format, args...)
	e.rec.Note("soak-invariant", "round", fmt.Sprintf("%d", round), "violation", msg)
	e.rec.AutoDump("soak-invariant") //nolint:errcheck // never turn a postmortem into a second failure
	return e.res, fmt.Errorf("soak[seed %d, round %d]: %s", e.cfg.Seed, round, msg)
}

// checkTrace asserts one checkpoint's span tree is closed: the collector's
// merged-tree verifier demands exactly one root and every span's parent
// recorded in the same trace. Handlers abandoned by an RPC timeout can
// record their spans a beat after the caller returned, so a transient
// orphan is retried briefly before it counts as a violation. On success
// the verified tree is returned for straggler attribution.
func (e *soakEnv) checkTrace(traceID uint64) (*collect.Tree, error) {
	if traceID == 0 {
		return nil, fmt.Errorf("trace: round recorded no trace id")
	}
	var lastErr error
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans := e.tr.TraceSpans(traceID)
		var tree *collect.Tree
		if len(spans) == 0 {
			lastErr = fmt.Errorf("trace %016x: no spans recorded", traceID)
		} else {
			tree = collect.BuildTree(spans)
			lastErr = tree.Verify()
		}
		if lastErr == nil {
			return tree, nil
		}
		if !time.Now().Before(deadline) {
			return nil, lastErr
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// recoverAndRepair runs the fault-free repair cycle for a set of down
// nodes: recover their state onto survivors, restart the daemons on the
// same addresses, repair, re-checkpoint, and rebalance. Mirrored into the
// shadow step by step. The injector must already be paused. A valid parent
// context nests the cycle's protocol spans under the caller's span (the
// service reconciler passes its reconcile span; the classic loop passes a
// zero context).
func (e *soakEnv) recoverAndRepair(parent obs.SpanContext, down []int) error {
	plan, err := e.coord.RecoverNodesIn(parent, down...)
	if err != nil {
		return fmt.Errorf("recover %v: %w", down, err)
	}
	if err := e.shadow.Recover(plan, e.coord.Epoch()); err != nil {
		return err
	}
	for _, v := range down {
		if err := e.sc.start(v, e.sc.addrs[v]); err != nil {
			return fmt.Errorf("restart node %d on %s: %w", v, e.sc.addrs[v], err)
		}
		e.sc.nodes[v].SetRPCTimeout(e.cfg.RPCTimeout)
		e.inj.RecordRestart(v)
		if err := e.coord.Repair(v); err != nil {
			return fmt.Errorf("repair node %d: %w", v, err)
		}
	}
	// The post-recovery checkpoint runs clean: it certifies the repaired
	// cluster can commit before rebalance moves anything.
	if err := e.coord.CheckpointIn(parent); err != nil {
		return fmt.Errorf("post-recovery checkpoint: %w", err)
	}
	e.shadow.Commit()
	rb, err := e.coord.Rebalance()
	if err != nil {
		return fmt.Errorf("rebalance: %w", err)
	}
	return e.shadow.Rebalance(rb, e.coord.Epoch())
}

// applySlowPlan arms or heals the standing slow-node delay at the boundary
// rounds of the configured window (r is the 0-based round index).
func (e *soakEnv) applySlowPlan(r int) {
	cfg := e.cfg
	if cfg.SlowDelay <= 0 {
		return
	}
	until := cfg.SlowUntil
	if until <= 0 {
		until = cfg.Rounds
	}
	if r == cfg.SlowFrom {
		e.inj.SlowNode(cfg.SlowNode, cfg.SlowDelay)
	}
	if r == until {
		e.inj.HealNode(cfg.SlowNode)
	}
}

// tickHealth advances the run's health evaluator one step, if one is wired.
// Called after each round's verification so the evaluator samples quiesced,
// fully-recorded metrics.
func (e *soakEnv) tickHealth() {
	if e.cfg.Health != nil {
		e.cfg.Health.Tick()
	}
}

// armRoundFaults arms this round's one-shot faults (coordinator pairs, an
// optional transient partition, chunk-frame faults) from the harness stream,
// identically in both soak modes. Returns the partitioned pair ({-1,-1} if
// none); the caller heals it after the checkpoint window.
func (e *soakEnv) armRoundFaults(victims []int) [2]int {
	cfg, layout := e.cfg, e.layout
	isVictim := map[int]bool{}
	for _, v := range victims {
		isVictim[v] = true
	}
	armedKinds := []chaos.Kind{chaos.Drop, chaos.Corrupt, chaos.Delay}
	// Arm this round's one-shot faults on coordinator pairs to distinct
	// live nodes; the prepare fanout guarantees each fires this round.
	if cfg.ArmPerRound > 0 {
		var targets []int
		for n := 0; n < layout.Nodes; n++ {
			if !isVictim[n] {
				targets = append(targets, n)
			}
		}
		e.harness.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
		for i := 0; i < cfg.ArmPerRound && i < len(targets); i++ {
			e.inj.Arm(chaos.Pair{Src: chaos.Coordinator, Dst: targets[i]},
				armedKinds[e.harness.Intn(len(armedKinds))])
		}
	}
	// Occasionally sever one node pair for the duration of the checkpoint.
	partitioned := [2]int{-1, -1}
	if len(victims) == 0 && cfg.PPartition > 0 && layout.Nodes >= 2 && e.harness.Float64() < cfg.PPartition {
		a := e.harness.Intn(layout.Nodes)
		b := e.harness.Intn(layout.Nodes - 1)
		if b >= a {
			b++
		}
		partitioned = [2]int{a, b}
		e.inj.PartitionPair(a, b)
	}
	// Chunk-stream faults: one-shot drop/corrupt aimed at MsgDeltaChunk
	// frames on member-host -> parity-node edges, so the fault lands on an
	// individual data-path chunk mid-prepare and the keeper-side stream
	// dedup plus the node pools' retries must absorb it. Armed after the
	// partition choice: an edge whose traffic is severed (or whose endpoint
	// is a scheduled victim) would never consume its fault and trip the
	// consumption invariant. Self-hosted parity never crosses the wire, so
	// src == dst edges are skipped too. Delay is excluded — it would fire
	// without forcing the retry path this satellite is meant to exercise.
	if cfg.ChunkFaults > 0 && resolveChunkSize(cfg.ChunkSize) > 0 {
		lay := e.coord.Layout()
		hostOf := make(map[string]int, len(lay.VMs))
		for _, v := range lay.VMs {
			hostOf[v.Name] = v.Node
		}
		seen := map[chaos.Pair]bool{}
		var edges []chaos.Pair
		for _, g := range lay.Groups {
			for _, m := range g.Members {
				src := hostOf[m]
				for _, p := range g.ParityNodes {
					if src == p || isVictim[src] || isVictim[p] {
						continue
					}
					if (src == partitioned[0] && p == partitioned[1]) ||
						(src == partitioned[1] && p == partitioned[0]) {
						continue
					}
					pr := chaos.Pair{Src: src, Dst: p}
					if !seen[pr] {
						seen[pr] = true
						edges = append(edges, pr)
					}
				}
			}
		}
		e.harness.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		chunkKinds := []chaos.Kind{chaos.Drop, chaos.Corrupt}
		for i := 0; i < cfg.ChunkFaults && i < len(edges); i++ {
			e.inj.ArmMsg(edges[i], chunkKinds[e.harness.Intn(len(chunkKinds))], uint8(wire.MsgDeltaChunk))
		}
	}
	return partitioned
}

// verifyRound runs the per-round invariant battery on a quiesced cluster and
// fills rr's straggler attribution. Any returned error is an invariant
// violation the caller turns into a soak failure.
func (e *soakEnv) verifyRound(round int, rr *RoundRecord) error {
	// A lost abort may have left staged captures behind; measuring must not
	// race the protocol.
	if err := e.coord.Quiesce(); err != nil {
		return fmt.Errorf("quiesce: %v", err)
	}
	states, err := e.coord.VMStates()
	if err != nil {
		return fmt.Errorf("fetch VM states: %v", err)
	}
	want := e.shadow.Checksums()
	if len(states) != len(want) {
		return fmt.Errorf("cluster reports %d VMs, shadow models %d", len(states), len(want))
	}
	for name, s := range states {
		if s.Checksum != want[name] {
			return fmt.Errorf("VM %q committed checksum %x diverged from shadow %x", name, s.Checksum, want[name])
		}
		if s.Epoch != e.coord.Epoch() {
			return fmt.Errorf("VM %q at epoch %d, coordinator at %d", name, s.Epoch, e.coord.Epoch())
		}
		if prev, ok := e.lastEpoch[name]; ok && s.Epoch < prev {
			return fmt.Errorf("VM %q epoch regressed %d -> %d", name, prev, s.Epoch)
		}
		e.lastEpoch[name] = s.Epoch
	}
	if e.coord.Epoch() != e.shadow.Epoch() {
		return fmt.Errorf("coordinator epoch %d, shadow epoch %d", e.coord.Epoch(), e.shadow.Epoch())
	}
	if p := e.coord.pendingRecovery(); len(p) > 0 {
		return fmt.Errorf("nodes %v still pending recovery", p)
	}
	if e.inj.ArmedPending() != 0 {
		return fmt.Errorf("%d armed faults never fired", e.inj.ArmedPending())
	}
	// Retry reconciliation: each armed drop/corrupt on a coordinator pair
	// fails exactly one in-flight call, which the pool must absorb with a
	// retry. (Node-to-node faults retry inside the node pools and are
	// invisible to coordinator stats; hence a lower bound, not equality.)
	firedDisruptive := 0
	for _, f := range e.inj.Log() {
		if f.Round == round && f.Armed && f.Pair.Src == chaos.Coordinator &&
			(f.Kind == chaos.Drop || f.Kind == chaos.Corrupt) {
			firedDisruptive++
		}
	}
	if int(rr.RPCRetries) < firedDisruptive {
		return fmt.Errorf("RPC retries %d < %d armed coordinator-pair faults", rr.RPCRetries, firedDisruptive)
	}
	tree, err := e.checkTrace(e.coord.RoundStats().TraceID)
	if err != nil {
		return err
	}
	// Straggler attribution over the verified tree: who this round's
	// wall-clock waited on, exported per round, plus the rolling per-peer
	// latency windows behind the outlier gauges. Timing-dependent, so the
	// record fields stay out of the round digest. The attribution and the
	// round's root span context are kept for the adaptive advisor, which
	// nests its decision spans under the round trace.
	e.lastAttr = collect.Attribute(tree)
	if e.lastAttr != nil {
		e.lastAttr.Export(e.cfg.Registry)
		rr.Straggler = e.lastAttr.Straggler
		rr.Wall = e.lastAttr.Wall
	}
	e.lastCtx = obs.SpanContext{}
	if root := tree.Root(); root != nil {
		e.lastCtx = obs.SpanContext{Trace: root.Trace, Span: root.ID}
	}
	// Data spans only: a member's control rpc includes its own downstream
	// ship stalls, so a slow keeper would smear into every member's window
	// and never cross the outlier factor (see ObserveDataSpans).
	e.outliers.ObserveDataSpans(tree.Spans)
	return nil
}

// finish runs the end-of-soak checks (fault schedule consumed, chunked path
// exercised, liveness floor, span leaks) and assembles the result.
func (e *soakEnv) finish() (*SoakResult, error) {
	cfg := e.cfg
	e.res.FaultLog = e.inj.Log()
	e.res.Epoch = e.coord.Epoch()
	e.res.Counters = e.inj.Counters().Snapshot()
	var err error
	e.res.Checksums, err = e.coord.Checksums()
	if err != nil {
		return e.res, err
	}
	// When the chunked path is active the soak must actually have exercised
	// it: a soak that silently fell back to monolithic shipping would pass
	// every state invariant while testing nothing this config asked for.
	if resolveChunkSize(cfg.ChunkSize) > 0 {
		var chunksSent int64
		for n := 0; n < e.layout.Nodes; n++ {
			st, err := e.coord.NodeStats(n)
			if err != nil {
				return e.fail(cfg.Rounds, "fetch node %d stats: %v", n, err)
			}
			chunksSent += st.ChunksSent
		}
		if chunksSent == 0 {
			return e.fail(cfg.Rounds, "chunked data path configured but no node shipped a chunk")
		}
	}
	// Same discipline for the dedup cache: a dedup soak where no member ever
	// consulted the cache verified nothing about it.
	if cfg.Dedup {
		var hits, misses int64
		for n := 0; n < e.layout.Nodes; n++ {
			st, err := e.coord.NodeStats(n)
			if err != nil {
				return e.fail(cfg.Rounds, "fetch node %d stats: %v", n, err)
			}
			hits += st.DedupHits
			misses += st.DedupMisses
		}
		if hits+misses == 0 {
			return e.fail(cfg.Rounds, "dedup configured but no node consulted the page-hash cache")
		}
		if cfg.Workload == WorkloadRewrite && hits == 0 {
			return e.fail(cfg.Rounds, "dedup under the rewrite workload produced zero cache hits")
		}
	}
	// Liveness floor: chaos may abort rounds, but the protocol must keep
	// committing — a soak that never advances is a silent deadlock.
	if e.res.Epoch < uint64(cfg.Rounds)/2 {
		return e.fail(cfg.Rounds, "only %d epochs committed across %d rounds", e.res.Epoch, cfg.Rounds)
	}
	// Span-leak check (own tracer only; a shared tracer may carry the
	// caller's spans): abandoned handlers get the RPC deadline to drain.
	if e.ownTracer {
		deadline := time.Now().Add(cfg.RPCTimeout + 2*time.Second)
		for e.tr.OpenSpans() != 0 && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
		if n := e.tr.OpenSpans(); n != 0 {
			return e.fail(cfg.Rounds, "%d spans still open after soak", n)
		}
	}
	return e.res, nil
}

// RunSoak executes the soak and verifies, after every round:
//
//   - every VM's committed-image checksum matches the in-process Shadow
//     model (bit-identical state despite injected faults),
//   - every VM's protocol epoch equals the coordinator's epoch and never
//     regresses,
//   - nodes declared dead mid-commit (PartialCommitError) are recovered and
//     repaired before the round ends — no lingering pending-recovery state,
//   - pool retry counters reconcile with the armed fault schedule: every
//     armed drop/corrupt on a coordinator pair forces at least one retry,
//   - every armed fault actually fired (the schedule was consumed) — including
//     chunk-frame faults aimed at individual MsgDeltaChunk shipments when
//     ChunkFaults is set,
//   - the round's span tree is complete: the checkpoint trace has exactly one
//     root and no span whose parent was never recorded.
//
// With cfg.Service set the same cluster, faults, and invariants run with the
// protocol driven through the declarative control plane instead: see
// SoakConfig.Service.
//
// An invariant violation (or a protocol operation failing where it must not)
// returns an error naming the round and the seed; the partial SoakResult is
// returned alongside for post-mortem.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Layout == nil {
		return nil, fmt.Errorf("soak: nil layout")
	}
	if cfg.ControllerRestarts > 0 && !cfg.Service {
		return nil, fmt.Errorf("soak: ControllerRestarts requires Service mode")
	}
	if cfg.Adaptive && cfg.Service {
		return nil, fmt.Errorf("soak: Adaptive is classic-loop only, not Service mode")
	}
	if cfg.Service {
		return runSoakService(cfg)
	}
	e, err := newSoakEnv(cfg)
	if err != nil {
		return nil, err
	}
	defer e.close()
	coord, shadow, inj, sc := e.coord, e.shadow, e.inj, e.sc

	for r := 0; r < cfg.Rounds; r++ {
		round := inj.NextRound()
		rr := RoundRecord{Round: round}
		e.applySlowPlan(r)
		var victims []int
		if e.kills != nil {
			victims = e.kills.Victims(r)
		}
		rr.Kills = victims

		// Workload phase, fault-free: a lost or duplicated step RPC would
		// desynchronize the real workload streams from the shadow's, turning
		// model noise into false invariant violations (see DESIGN.md).
		if inj.ArmedPending() != 0 {
			return e.fail(round, "%d armed faults never fired", inj.ArmedPending())
		}
		steps := e.roundSteps()
		if err := coord.Step(steps); err != nil {
			return e.fail(round, "step: %v", err)
		}
		shadow.Step(steps)

		partitioned := e.armRoundFaults(victims)

		// Kill phase: victims drop dead before the checkpoint, so the round
		// exercises prepare-failure abort (or, if timing conspires, a
		// mid-commit death) followed by full recovery.
		for _, v := range victims {
			sc.nodes[v].Close()
			inj.RecordKill(v)
		}

		inj.Resume()
		ckErr := coord.Checkpoint()
		inj.Pause()
		if partitioned[0] >= 0 {
			inj.HealPair(partitioned[0], partitioned[1])
		}
		st := coord.RoundStats()
		rr.BytesShipped += st.BytesShipped
		rr.RPCRetries += st.RPCRetries

		var partial *PartialCommitError
		switch {
		case ckErr == nil:
			if len(victims) > 0 {
				return e.fail(round, "checkpoint succeeded with dead nodes %v", victims)
			}
			shadow.Commit()
		case errors.As(ckErr, &partial):
			// The epoch advanced; the named nodes are casualties.
			shadow.Commit()
			rr.DeadDuring = partial.Nodes
		default:
			rr.Aborted = true
			shadow.Abort()
		}

		// Repair cycle: scheduled victims plus anything commit declared dead.
		down := map[int]bool{}
		for _, v := range victims {
			down[v] = true
		}
		for _, n := range rr.DeadDuring {
			if !down[n] {
				// Declared dead by the commit phase without being scheduled
				// (persistent injected faults): its daemon is still running,
				// but to the coordinator it is gone — take it down for real
				// and put it through the same repair cycle.
				sc.nodes[n].Close()
				inj.RecordKill(n)
				down[n] = true
			}
		}
		if len(down) > 0 {
			var downList []int
			for n := range down {
				downList = append(downList, n)
			}
			sort.Ints(downList)
			if err := e.recoverAndRepair(obs.SpanContext{}, downList); err != nil {
				return e.fail(round, "%v", err)
			}
			st = coord.RoundStats()
			rr.BytesShipped += st.BytesShipped
			rr.RPCRetries += st.RPCRetries
		}

		if err := e.verifyRound(round, &rr); err != nil {
			return e.fail(round, "%v", err)
		}
		e.tickHealth()
		e.stepAdapt(&rr)
		rr.Epoch = coord.Epoch()
		e.res.Rounds = append(e.res.Rounds, rr)
		if cfg.RoundInterval > 0 && r < cfg.Rounds-1 {
			time.Sleep(cfg.RoundInterval)
		}
	}

	return e.finish()
}
