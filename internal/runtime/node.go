package runtime

import (
	"fmt"
	"hash/fnv"
	"sync"

	"dvdc/internal/core"
	"dvdc/internal/transport"
	"dvdc/internal/vm"
	"dvdc/internal/wire"
)

// Node is one DVDC node daemon: it hosts VM members, runs their synthetic
// workloads on command, maintains parity blocks for the groups assigned to
// it, and serves the wire protocol.
type Node struct {
	mu      sync.Mutex
	id      int
	server  *transport.Server
	peers   map[int]string
	conns   map[int]*transport.Conn
	members map[string]*memberState
	keepers map[int]*keeperState // by group (orthogonality: at most one block of a group per node)

	compress bool
	stats    NodeStats
}

type memberState struct {
	mem      *core.Member
	workload vm.Workload
	cfg      VMConfig
	staged   *core.Delta // captured but uncommitted (two-phase)
}

type keeperState struct {
	keeper *core.MKeeper
	cfg    KeeperConfig
	staged map[string]*core.Delta // member -> delta awaiting commit
}

// NewNode starts a node daemon listening on addr ("127.0.0.1:0" for tests).
func NewNode(addr string) (*Node, error) {
	n := &Node{
		peers:   map[int]string{},
		conns:   map[int]*transport.Conn{},
		members: map[string]*memberState{},
		keepers: map[int]*keeperState{},
	}
	s, err := transport.Listen(addr, n.handle)
	if err != nil {
		return nil, err
	}
	n.server = s
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.server.Addr() }

// Close stops the daemon.
func (n *Node) Close() error {
	n.mu.Lock()
	for _, c := range n.conns {
		c.Close()
	}
	n.conns = map[int]*transport.Conn{}
	n.mu.Unlock()
	return n.server.Close()
}

// peer returns a (cached) connection to another node.
func (n *Node) peer(id int) (*transport.Conn, error) {
	n.mu.Lock()
	c, ok := n.conns[id]
	addr, haveAddr := n.peers[id]
	n.mu.Unlock()
	if ok {
		return c, nil
	}
	if !haveAddr {
		return nil, fmt.Errorf("runtime: node %d has no address for peer %d", n.id, id)
	}
	c, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if prev, raced := n.conns[id]; raced {
		n.mu.Unlock()
		c.Close()
		return prev, nil
	}
	n.conns[id] = c
	n.mu.Unlock()
	return c, nil
}

// callPeer routes a request to another node, short-circuiting self-calls to
// the local handler (no loopback round trip, no lock-order hazards). A
// transport failure invalidates the cached connection and retries once over
// a fresh dial, so a daemon replaced on the same address is reachable again.
func (n *Node) callPeer(id int, msg *wire.Message) (*wire.Message, error) {
	if id == n.id {
		return n.handle(msg)
	}
	c, err := n.peer(id)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(msg)
	if err == nil {
		return resp, nil
	}
	// Remote errors come back as MsgError replies, so err here means the
	// connection itself broke: drop it and retry once.
	n.mu.Lock()
	if n.conns[id] == c {
		delete(n.conns, id)
	}
	n.mu.Unlock()
	c.Close()
	c, derr := n.peer(id)
	if derr != nil {
		return nil, err // report the original transport failure
	}
	return c.Call(msg)
}

// handle dispatches one request. The node lock is held by the individual
// operations, not across peer calls, to avoid distributed deadlock.
func (n *Node) handle(req *wire.Message) (*wire.Message, error) {
	switch req.Type {
	case wire.MsgHello:
		return &wire.Message{Type: wire.MsgHelloOK, Arg: uint64(n.id)}, nil
	case wire.MsgConfigure:
		return n.onConfigure(req)
	case wire.MsgStep:
		return n.onStep(req)
	case wire.MsgPrepare:
		return n.onPrepare(req)
	case wire.MsgCommit:
		return n.onCommit(req)
	case wire.MsgAbort:
		return n.onAbort(req)
	case wire.MsgDelta:
		return n.onDelta(req)
	case wire.MsgGetImage:
		return n.onGetImage(req)
	case wire.MsgGetParity:
		return n.onGetParity(req)
	case wire.MsgEvict:
		return n.onEvict(req)
	case wire.MsgReconstruct:
		return n.onReconstruct(req)
	case wire.MsgInstall:
		return n.onInstall(req)
	case wire.MsgChecksum:
		return n.onChecksum(req)
	case wire.MsgRollback:
		return n.onRollback(req)
	case wire.MsgRebuildKeeper:
		return n.onRebuildKeeper(req)
	case wire.MsgSetParity:
		return n.onSetParity(req)
	case wire.MsgStats:
		return n.onStats(req)
	default:
		return nil, fmt.Errorf("runtime: node %d: unhandled message %v", n.id, req.Type)
	}
}

func (n *Node) onConfigure(req *wire.Message) (*wire.Message, error) {
	var cfg NodeConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, fmt.Errorf("runtime: bad configure payload: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.id = cfg.NodeID
	n.peers = cfg.Peers
	n.compress = cfg.Compress
	for _, vc := range cfg.VMs {
		m, err := vm.NewMachine(vc.Name, vc.Pages, vc.PageSize)
		if err != nil {
			return nil, err
		}
		mem, err := core.NewMember(m)
		if err != nil {
			return nil, err
		}
		n.members[vc.Name] = &memberState{
			mem:      mem,
			workload: vm.NewUniform(vc.Seed),
			cfg:      vc,
		}
	}
	for _, kc := range cfg.Keepers {
		// Initial member images are all-zero, so the initial parity block is
		// all-zero too: no bulk transfer needed at setup.
		initial := map[string][]byte{}
		for _, name := range kc.Members {
			initial[name] = make([]byte, kc.Pages*kc.PageSize)
		}
		k, err := core.NewMKeeper(kc.Group, kc.ParityIdx, kc.Tolerance, initial)
		if err != nil {
			return nil, err
		}
		n.keepers[kc.Group] = &keeperState{keeper: k, cfg: kc, staged: map[string]*core.Delta{}}
	}
	return &wire.Message{Type: wire.MsgConfigureOK}, nil
}

func (n *Node) onStep(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ms := range n.members {
		for i := uint64(0); i < req.Arg; i++ {
			ms.workload.Step(ms.mem.Machine())
		}
	}
	return &wire.Message{Type: wire.MsgStepOK}, nil
}

// onPrepare captures a delta for every hosted member and ships it to every
// parity node of the member's group, staging everything for commit.
func (n *Node) onPrepare(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	type shipment struct {
		ms    *memberState
		delta *core.Delta
	}
	var out []shipment
	for _, ms := range n.members {
		if ms.staged != nil {
			n.mu.Unlock()
			return nil, fmt.Errorf("runtime: node %d: %q already has a staged delta", n.id, ms.cfg.Name)
		}
		d, err := ms.mem.CaptureDelta()
		if err != nil {
			n.mu.Unlock()
			return nil, err
		}
		ms.staged = d
		out = append(out, shipment{ms: ms, delta: d})
	}
	n.mu.Unlock()

	for _, sh := range out {
		payload := encodeDelta(sh.delta, n.compress)
		n.mu.Lock()
		n.stats.DeltasSent += int64(len(sh.ms.cfg.ParityNodes))
		n.stats.DeltaRawBytes += sh.delta.PayloadBytes() * int64(len(sh.ms.cfg.ParityNodes))
		n.stats.DeltaWireBytes += int64(len(payload)) * int64(len(sh.ms.cfg.ParityNodes))
		n.mu.Unlock()
		msg := &wire.Message{
			Type: wire.MsgDelta, Epoch: sh.delta.Epoch,
			Group: int32(sh.ms.cfg.Group), VM: sh.delta.VMID, Payload: payload,
		}
		for _, parity := range sh.ms.cfg.ParityNodes {
			reply, err := n.callPeer(parity, msg)
			if err != nil {
				return nil, fmt.Errorf("runtime: shipping delta of %q to node %d: %w", sh.delta.VMID, parity, err)
			}
			if reply.Type != wire.MsgDeltaOK {
				return nil, fmt.Errorf("runtime: unexpected reply %v to delta", reply.Type)
			}
		}
	}
	return &wire.Message{Type: wire.MsgPrepareOK, Epoch: req.Epoch}, nil
}

func (n *Node) onDelta(req *wire.Message) (*wire.Message, error) {
	d, err := decodeDelta(req.Payload)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ks, ok := n.keepers[int(req.Group)]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", n.id, req.Group)
	}
	if prev, dup := ks.staged[d.VMID]; dup && prev.Epoch != d.Epoch {
		return nil, fmt.Errorf("runtime: conflicting staged delta for %q", d.VMID)
	}
	ks.staged[d.VMID] = d
	return &wire.Message{Type: wire.MsgDeltaOK, Epoch: d.Epoch}, nil
}

func (n *Node) onCommit(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ks := range n.keepers {
		for id, d := range ks.staged {
			if err := ks.keeper.ApplyDelta(d); err != nil {
				return nil, fmt.Errorf("runtime: commit group %d member %q: %w", ks.keeper.Group(), id, err)
			}
			delete(ks.staged, id)
		}
	}
	for _, ms := range n.members {
		ms.staged = nil // capture already advanced the committed image
	}
	return &wire.Message{Type: wire.MsgCommitOK, Epoch: req.Epoch}, nil
}

func (n *Node) onAbort(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ks := range n.keepers {
		ks.staged = map[string]*core.Delta{}
	}
	for _, ms := range n.members {
		if ms.staged == nil {
			continue
		}
		if err := ms.mem.UndoCapture(ms.staged); err != nil {
			return nil, err
		}
		ms.staged = nil
	}
	return &wire.Message{Type: wire.MsgAbortOK, Epoch: req.Epoch}, nil
}

func (n *Node) onGetImage(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.members[req.VM]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d does not host %q", n.id, req.VM)
	}
	return &wire.Message{
		Type: wire.MsgImage, VM: req.VM,
		Epoch:   ms.mem.Epoch(),
		Payload: ms.mem.CommittedImage(),
	}, nil
}

// onGetParity serves this node's parity block for a group.
func (n *Node) onGetParity(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ks, ok := n.keepers[int(req.Group)]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", n.id, req.Group)
	}
	return &wire.Message{
		Type: wire.MsgGetParityOK, Group: req.Group,
		Arg:     uint64(ks.keeper.ParityIndex()),
		Payload: ks.keeper.Parity(),
	}, nil
}

// onReconstruct runs on a surviving parity node: it pulls survivor images
// and the group's alive parity blocks (its own plus peers'), solves the
// erasure system, and returns the requested lost VM's committed image.
func (n *Node) onReconstruct(req *wire.Message) (*wire.Message, error) {
	var cfg reconstructConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	n.mu.Lock()
	ks, ok := n.keepers[cfg.Group]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", n.id, cfg.Group)
	}
	survivors := map[string][]byte{}
	var epoch uint64
	for member, nodeID := range cfg.Survivors {
		img, err := n.callPeer(nodeID, &wire.Message{Type: wire.MsgGetImage, VM: member})
		if err != nil {
			return nil, fmt.Errorf("runtime: fetching survivor %q from node %d: %w", member, nodeID, err)
		}
		survivors[member] = img.Payload
		epoch = img.Epoch
	}
	parityBlocks := map[int][]byte{}
	for idx, nodeID := range cfg.ParityPeers {
		pb, err := n.callPeer(nodeID, &wire.Message{Type: wire.MsgGetParity, Group: int32(cfg.Group)})
		if err != nil {
			return nil, fmt.Errorf("runtime: fetching parity[%d] from node %d: %w", idx, nodeID, err)
		}
		if int(pb.Arg) != idx {
			return nil, fmt.Errorf("runtime: node %d served parity[%d], wanted [%d]", nodeID, pb.Arg, idx)
		}
		parityBlocks[idx] = pb.Payload
	}
	rebuilt, err := core.ReconstructMembers(cfg.Tolerance, ks.keeper.Members(), survivors, parityBlocks, cfg.AllLost)
	if err != nil {
		return nil, err
	}
	img, ok := rebuilt[cfg.LostVM]
	if !ok {
		return nil, fmt.Errorf("runtime: reconstruction did not yield %q", cfg.LostVM)
	}
	return &wire.Message{Type: wire.MsgReconstructOK, VM: cfg.LostVM, Epoch: epoch, Payload: img}, nil
}

func (n *Node) onInstall(req *wire.Message) (*wire.Message, error) {
	var cfg installConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	m, err := vm.NewMachine(cfg.Name, cfg.Pages, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	mem, err := core.NewMember(m)
	if err != nil {
		return nil, err
	}
	if err := mem.RestoreImage(req.Payload, cfg.Epoch); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.members[cfg.Name]; dup {
		return nil, fmt.Errorf("runtime: node %d already hosts %q", n.id, cfg.Name)
	}
	n.members[cfg.Name] = &memberState{
		mem:      mem,
		workload: vm.NewUniform(cfg.Seed),
		cfg:      cfg.VMConfig,
	}
	return &wire.Message{Type: wire.MsgInstallOK, VM: cfg.Name}, nil
}

func (n *Node) onChecksum(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.members[req.VM]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d does not host %q", n.id, req.VM)
	}
	h := fnv.New64a()
	h.Write(ms.mem.CommittedImage())
	return &wire.Message{Type: wire.MsgChecksumOK, VM: req.VM, Arg: h.Sum64(), Epoch: ms.mem.Epoch()}, nil
}

func (n *Node) onRollback(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ms := range n.members {
		// An uncommitted prepared capture must be undone first so the
		// committed image returns to the last COMMIT-ed epoch; then the
		// machine state rolls back to it.
		if ms.staged != nil {
			if err := ms.mem.UndoCapture(ms.staged); err != nil {
				return nil, err
			}
			ms.staged = nil
		}
		if err := ms.mem.Rollback(); err != nil {
			return nil, err
		}
	}
	for _, ks := range n.keepers {
		ks.staged = map[string]*core.Delta{}
	}
	return &wire.Message{Type: wire.MsgRollbackOK}, nil
}

// onRebuildKeeper makes this node the holder of one parity block of a group
// by pulling every member's committed image and folding them.
func (n *Node) onRebuildKeeper(req *wire.Message) (*wire.Message, error) {
	var cfg rebuildKeeperConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	initial := map[string][]byte{}
	for _, member := range cfg.Members {
		nodeID, ok := cfg.MemberNodes[member]
		if !ok {
			return nil, fmt.Errorf("runtime: rebuild keeper: no node for member %q", member)
		}
		img, err := n.callPeer(nodeID, &wire.Message{Type: wire.MsgGetImage, VM: member})
		if err != nil {
			return nil, fmt.Errorf("runtime: rebuild keeper: fetch %q: %w", member, err)
		}
		initial[member] = img.Payload
	}
	k, err := core.NewMKeeper(cfg.Group, cfg.ParityIdx, cfg.Tolerance, initial)
	if err != nil {
		return nil, err
	}
	if err := k.SetEpochs(cfg.Epochs); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.keepers[cfg.Group] = &keeperState{keeper: k, cfg: cfg.KeeperConfig, staged: map[string]*core.Delta{}}
	return &wire.Message{Type: wire.MsgRebuildKeeperOK, Group: int32(cfg.Group)}, nil
}

// onEvict removes a hosted VM and returns its committed image and protocol
// epoch so the coordinator can install it elsewhere. The VM must be
// quiescent (no dirty pages, no staged delta): rebalancing runs immediately
// after a commit, so live state equals committed state and the move is a
// plain image transfer.
func (n *Node) onEvict(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.members[req.VM]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d does not host %q", n.id, req.VM)
	}
	if ms.staged != nil {
		return nil, fmt.Errorf("runtime: %q has a staged delta; commit or abort first", req.VM)
	}
	if ms.mem.Machine().DirtyCount() != 0 {
		return nil, fmt.Errorf("runtime: %q has uncommitted dirty pages; checkpoint first", req.VM)
	}
	img := ms.mem.CommittedImage()
	epoch := ms.mem.Epoch()
	delete(n.members, req.VM)
	return &wire.Message{Type: wire.MsgEvictOK, VM: req.VM, Epoch: epoch, Payload: img}, nil
}

// onStats serves the node's protocol counters.
func (n *Node) onStats(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	st := n.stats
	n.mu.Unlock()
	text, err := encodeJSON(st)
	if err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgStatsOK, Text: text}, nil
}

// onSetParity points hosted members of a group at a new parity node for one
// parity block (after a keeper was re-homed during recovery). Epoch carries
// the parity index, Arg the new node id.
func (n *Node) onSetParity(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := int(req.Epoch)
	for _, ms := range n.members {
		if ms.cfg.Group != int(req.Group) {
			continue
		}
		if idx < 0 || idx >= len(ms.cfg.ParityNodes) {
			return nil, fmt.Errorf("runtime: parity index %d out of range for %q", idx, ms.cfg.Name)
		}
		ms.cfg.ParityNodes[idx] = int(req.Arg)
	}
	return &wire.Message{Type: wire.MsgSetParityOK, Group: req.Group}, nil
}

// SetPeers updates the peer address map (coordinator uses it after
// recovery re-homes responsibilities; addresses of dead nodes stay mapped
// but are never dialed again).
func (n *Node) SetPeers(peers map[int]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = peers
}
