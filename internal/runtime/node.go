package runtime

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"dvdc/internal/core"
	"dvdc/internal/obs"
	"dvdc/internal/transport"
	"dvdc/internal/vm"
	"dvdc/internal/wire"
)

// Node is one DVDC node daemon: it hosts VM members, runs their synthetic
// workloads on command, maintains parity blocks for the groups assigned to
// it, and serves the wire protocol.
//
// Locking is two-level so independent VMs make progress in parallel: the
// structural mutex mu guards only the identity and the maps (who is hosted,
// who the peers are), while each memberState and keeperState carries its own
// lock for its data path. Lock order is mu before any member/keeper lock,
// and no lock is ever held across a peer call.
type Node struct {
	mu         sync.Mutex
	id         int
	server     *transport.Server
	peers      map[int]string
	pools      map[int]*transport.Pool
	members    map[string]*memberState
	keepers    map[int]*keeperState // by group (orthogonality: at most one block of a group per node)
	compress   bool
	rpcTimeout time.Duration
	fanout     int
	dialer     transport.DialFunc
	tracer     *obs.Tracer
	registry   *obs.Registry

	statsMu sync.Mutex
	stats   NodeStats
}

type memberState struct {
	mu       sync.Mutex
	mem      *core.Member
	workload vm.Workload
	cfg      VMConfig
	staged   *core.Delta // captured but uncommitted (two-phase)
}

type keeperState struct {
	mu     sync.Mutex
	keeper *core.MKeeper
	cfg    KeeperConfig
	staged map[string]*core.Delta // member -> delta awaiting commit
}

// NodeOptions customizes how a node daemon touches the network. The zero
// value is plain TCP on both sides; fault-injection layers (internal/chaos)
// substitute their own hooks.
type NodeOptions struct {
	Dialer transport.DialFunc   // outbound peer connections (nil = TCP)
	Listen transport.ListenFunc // the daemon's own listener (nil = TCP)

	// Observability (both optional): traced requests get per-handler spans in
	// this node's lane, and the registry gets the node's peer-pool health
	// series and RPC latency histograms.
	Tracer   *obs.Tracer
	Registry *obs.Registry
}

// NewNode starts a node daemon listening on addr ("127.0.0.1:0" for tests).
func NewNode(addr string) (*Node, error) {
	return NewNodeWith(addr, NodeOptions{})
}

// NewNodeWith starts a node daemon with custom network hooks.
func NewNodeWith(addr string, opts NodeOptions) (*Node, error) {
	n := &Node{
		peers:    map[int]string{},
		pools:    map[int]*transport.Pool{},
		members:  map[string]*memberState{},
		keepers:  map[int]*keeperState{},
		dialer:   opts.Dialer,
		tracer:   opts.Tracer,
		registry: opts.Registry,
	}
	s, err := transport.ListenWith(addr, n.handle, opts.Listen)
	if err != nil {
		return nil, err
	}
	n.server = s
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.server.Addr() }

// SetRPCTimeout bounds every peer call this node makes (delta shipping,
// recovery image pulls). Applies to pools created after the call, so set it
// before the node receives traffic. 0 means no deadline.
func (n *Node) SetRPCTimeout(d time.Duration) {
	n.mu.Lock()
	n.rpcTimeout = d
	n.mu.Unlock()
}

// SetFanout bounds how many members are prepared/stepped/shipped
// concurrently (0 = one goroutine per member).
func (n *Node) SetFanout(k int) {
	n.mu.Lock()
	n.fanout = k
	n.mu.Unlock()
}

// Close stops the daemon.
func (n *Node) Close() error {
	n.mu.Lock()
	for _, p := range n.pools {
		p.Close()
	}
	n.pools = map[int]*transport.Pool{}
	n.mu.Unlock()
	return n.server.Close()
}

// nodeID reads the node's identity under the structural lock.
func (n *Node) nodeID() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.id
}

// pool returns the (lazily created) connection pool for a peer.
func (n *Node) pool(id int) (*transport.Pool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.pools[id]; ok {
		return p, nil
	}
	addr, ok := n.peers[id]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d has no address for peer %d", n.id, id)
	}
	p := transport.NewPool(addr, transport.PoolOptions{
		CallTimeout: n.rpcTimeout,
		Dialer:      n.dialer,
		Peer:        fmt.Sprintf("node%d", id),
		Tracer:      n.tracer,
		Registry:    n.registry,
	})
	n.pools[id] = p
	return p, nil
}

// callPeer routes a request to another node, short-circuiting self-calls to
// the local handler (no loopback round trip, no lock-order hazards). The
// pool re-dials and retries once when a cached connection turns out stale,
// so a daemon replaced on the same address is reachable again.
func (n *Node) callPeer(id int, msg *wire.Message) (*wire.Message, error) {
	if id == n.nodeID() {
		return n.handle(msg)
	}
	p, err := n.pool(id)
	if err != nil {
		return nil, err
	}
	return p.Call(msg)
}

// snapshotMembers copies the member list under the structural lock.
func (n *Node) snapshotMembers() []*memberState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*memberState, 0, len(n.members))
	for _, ms := range n.members {
		out = append(out, ms)
	}
	return out
}

// snapshotKeepers copies the keeper list under the structural lock.
func (n *Node) snapshotKeepers() []*keeperState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*keeperState, 0, len(n.keepers))
	for _, ks := range n.keepers {
		out = append(out, ks)
	}
	return out
}

// handle serves one request: traced requests get a handler span in this
// node's lane (child of the caller's RPC-attempt span), then dispatch. Locks
// are taken by the individual operations, never across peer calls, to avoid
// distributed deadlock.
func (n *Node) handle(req *wire.Message) (*wire.Message, error) {
	ctx := obs.SpanContext{Trace: req.Trace, Span: req.Span}
	n.mu.Lock()
	tr, id := n.tracer, n.id
	n.mu.Unlock()
	sp := tr.Child(ctx, "node."+req.Type.String(), fmt.Sprintf("node%d", id))
	resp, err := n.dispatch(sp.ContextOr(ctx), req)
	sp.FinishErr(err)
	return resp, err
}

// dispatch routes one request to its handler. ctx is the request's span
// context (the handler span when traced) for handlers that make onward peer
// calls.
func (n *Node) dispatch(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	switch req.Type {
	case wire.MsgHello:
		return &wire.Message{Type: wire.MsgHelloOK, Arg: uint64(n.nodeID())}, nil
	case wire.MsgConfigure:
		return n.onConfigure(req)
	case wire.MsgStep:
		return n.onStep(req)
	case wire.MsgPrepare:
		return n.onPrepare(ctx, req)
	case wire.MsgCommit:
		return n.onCommit(ctx, req)
	case wire.MsgAbort:
		return n.onAbort(req)
	case wire.MsgDelta:
		return n.onDelta(req)
	case wire.MsgGetImage:
		return n.onGetImage(req)
	case wire.MsgGetParity:
		return n.onGetParity(req)
	case wire.MsgEvict:
		return n.onEvict(req)
	case wire.MsgReconstruct:
		return n.onReconstruct(ctx, req)
	case wire.MsgInstall:
		return n.onInstall(req)
	case wire.MsgChecksum:
		return n.onChecksum(req)
	case wire.MsgRollback:
		return n.onRollback(req)
	case wire.MsgRebuildKeeper:
		return n.onRebuildKeeper(ctx, req)
	case wire.MsgSetParity:
		return n.onSetParity(req)
	case wire.MsgSetParityBatch:
		return n.onSetParityBatch(req)
	case wire.MsgStats:
		return n.onStats(req)
	default:
		return nil, fmt.Errorf("runtime: node %d: unhandled message %v", n.nodeID(), req.Type)
	}
}

func (n *Node) onConfigure(req *wire.Message) (*wire.Message, error) {
	var cfg NodeConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, fmt.Errorf("runtime: bad configure payload: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.id = cfg.NodeID
	n.peers = cfg.Peers
	n.compress = cfg.Compress
	// Drop pools whose peer moved to a new address.
	for id, p := range n.pools {
		if addr, ok := cfg.Peers[id]; !ok || addr != p.Addr() {
			p.Close()
			delete(n.pools, id)
		}
	}
	// A configuration is the node's complete assignment: members and keepers
	// from a previous life (an earlier controller session, or state left
	// behind before a Repair) must not leak into the new one, or they ship
	// conflicting deltas for VMs that now live elsewhere.
	n.members = map[string]*memberState{}
	n.keepers = map[int]*keeperState{}
	for _, vc := range cfg.VMs {
		m, err := vm.NewMachine(vc.Name, vc.Pages, vc.PageSize)
		if err != nil {
			return nil, err
		}
		mem, err := core.NewMember(m)
		if err != nil {
			return nil, err
		}
		n.members[vc.Name] = &memberState{
			mem:      mem,
			workload: vm.NewUniform(vc.Seed),
			cfg:      vc,
		}
	}
	for _, kc := range cfg.Keepers {
		// Initial member images are all-zero, so the initial parity block is
		// all-zero too: no bulk transfer needed at setup.
		initial := map[string][]byte{}
		for _, name := range kc.Members {
			initial[name] = make([]byte, kc.Pages*kc.PageSize)
		}
		k, err := core.NewMKeeper(kc.Group, kc.ParityIdx, kc.Tolerance, initial)
		if err != nil {
			return nil, err
		}
		n.keepers[kc.Group] = &keeperState{keeper: k, cfg: kc, staged: map[string]*core.Delta{}}
	}
	return &wire.Message{Type: wire.MsgConfigureOK}, nil
}

func (n *Node) onStep(req *wire.Message) (*wire.Message, error) {
	members := n.snapshotMembers()
	n.mu.Lock()
	fan := n.fanout
	n.mu.Unlock()
	if err := parallelDo(len(members), fan, func(i int) error {
		ms := members[i]
		ms.mu.Lock()
		defer ms.mu.Unlock()
		for s := uint64(0); s < req.Arg; s++ {
			ms.workload.Step(ms.mem.Machine())
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgStepOK}, nil
}

// onPrepare captures a delta for every hosted member and ships it to every
// parity node of the member's group, staging everything for commit. Members
// are captured and shipped concurrently: each holds only its own lock during
// capture, and shipping happens with no locks held, so deltas bound for
// distinct parity peers overlap on the wire. The reply's Arg carries the
// wire bytes shipped, so the coordinator can aggregate per-round volume.
func (n *Node) onPrepare(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	members := n.snapshotMembers()
	n.mu.Lock()
	id, compress, fan := n.id, n.compress, n.fanout
	tr := n.tracer
	n.mu.Unlock()
	lane := fmt.Sprintf("node%d", id)

	type shipment struct {
		delta  *core.Delta
		group  int
		parity []int
	}
	ships := make([]shipment, len(members))
	// Phase 1: capture and stage under each member's own lock. A failure
	// leaves earlier members staged; the coordinator's abort undoes them.
	if err := parallelDo(len(members), fan, func(i int) error {
		ms := members[i]
		ms.mu.Lock()
		defer ms.mu.Unlock()
		if ms.staged != nil {
			return fmt.Errorf("runtime: node %d: %q already has a staged delta", id, ms.cfg.Name)
		}
		d, err := ms.mem.CaptureDelta()
		if err != nil {
			return err
		}
		ms.staged = d
		ships[i] = shipment{delta: d, group: ms.cfg.Group, parity: append([]int(nil), ms.cfg.ParityNodes...)}
		return nil
	}); err != nil {
		return nil, err
	}
	// Phase 2: encode and ship, members and parity peers concurrently. Each
	// member's shipment gets a span so the timeline shows deltas to distinct
	// parity peers overlapping; the shared message carries the ship span's
	// context (the pool re-stamps Span per RPC attempt on its own copy).
	var wireBytes atomic.Int64
	if err := parallelDo(len(members), fan, func(i int) (shipErr error) {
		sh := ships[i]
		payload := encodeDelta(sh.delta, compress)
		peers := int64(len(sh.parity))
		n.statsMu.Lock()
		n.stats.DeltasSent += peers
		n.stats.DeltaRawBytes += sh.delta.PayloadBytes() * peers
		n.stats.DeltaWireBytes += int64(len(payload)) * peers
		n.statsMu.Unlock()
		wireBytes.Add(int64(len(payload)) * peers)
		span := tr.Child(ctx, "ship "+sh.delta.VMID, lane)
		span.SetAttr("bytes", fmt.Sprint(len(payload)))
		defer func() { span.FinishErr(shipErr) }()
		sctx := span.ContextOr(ctx)
		msg := &wire.Message{
			Type: wire.MsgDelta, Epoch: sh.delta.Epoch,
			Group: int32(sh.group), VM: sh.delta.VMID, Payload: payload,
			Trace: sctx.Trace, Span: sctx.Span,
		}
		return parallelDo(len(sh.parity), 0, func(j int) error {
			reply, err := n.callPeer(sh.parity[j], msg)
			if err != nil {
				return fmt.Errorf("runtime: shipping delta of %q to node %d: %w", sh.delta.VMID, sh.parity[j], err)
			}
			if reply.Type != wire.MsgDeltaOK {
				return fmt.Errorf("runtime: unexpected reply %v to delta", reply.Type)
			}
			return nil
		})
	}); err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgPrepareOK, Epoch: req.Epoch, Arg: uint64(wireBytes.Load())}, nil
}

func (n *Node) onDelta(req *wire.Message) (*wire.Message, error) {
	d, err := decodeDelta(req.Payload)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	ks, ok := n.keepers[int(req.Group)]
	id := n.id
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", id, req.Group)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if prev, dup := ks.staged[d.VMID]; dup && prev.Epoch != d.Epoch {
		return nil, fmt.Errorf("runtime: conflicting staged delta for %q", d.VMID)
	}
	ks.staged[d.VMID] = d
	return &wire.Message{Type: wire.MsgDeltaOK, Epoch: d.Epoch}, nil
}

func (n *Node) onCommit(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	keepers := n.snapshotKeepers()
	n.mu.Lock()
	fan := n.fanout
	tr := n.tracer
	id := n.id
	n.mu.Unlock()
	lane := fmt.Sprintf("node%d", id)
	// Fold staged deltas into parity, keepers in parallel (the XOR/RS fold
	// is real CPU work and keepers are independent).
	if err := parallelDo(len(keepers), fan, func(i int) (foldErr error) {
		ks := keepers[i]
		ks.mu.Lock()
		defer ks.mu.Unlock()
		span := tr.Child(ctx, fmt.Sprintf("fold g%d", ks.keeper.Group()), lane)
		span.SetAttr("staged", fmt.Sprint(len(ks.staged)))
		defer func() { span.FinishErr(foldErr) }()
		for id, d := range ks.staged {
			if err := ks.keeper.ApplyDelta(d); err != nil {
				return fmt.Errorf("runtime: commit group %d member %q: %w", ks.keeper.Group(), id, err)
			}
			delete(ks.staged, id)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, ms := range n.snapshotMembers() {
		ms.mu.Lock()
		ms.staged = nil // capture already advanced the committed image
		ms.mu.Unlock()
	}
	return &wire.Message{Type: wire.MsgCommitOK, Epoch: req.Epoch}, nil
}

func (n *Node) onAbort(req *wire.Message) (*wire.Message, error) {
	for _, ks := range n.snapshotKeepers() {
		ks.mu.Lock()
		ks.staged = map[string]*core.Delta{}
		ks.mu.Unlock()
	}
	for _, ms := range n.snapshotMembers() {
		ms.mu.Lock()
		if ms.staged != nil {
			if err := ms.mem.UndoCapture(ms.staged); err != nil {
				ms.mu.Unlock()
				return nil, err
			}
			ms.staged = nil
		}
		ms.mu.Unlock()
	}
	return &wire.Message{Type: wire.MsgAbortOK, Epoch: req.Epoch}, nil
}

// member looks a hosted member up under the structural lock.
func (n *Node) member(name string) (*memberState, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.members[name]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d does not host %q", n.id, name)
	}
	return ms, nil
}

func (n *Node) onGetImage(req *wire.Message) (*wire.Message, error) {
	ms, err := n.member(req.VM)
	if err != nil {
		return nil, err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return &wire.Message{
		Type: wire.MsgImage, VM: req.VM,
		Epoch:   ms.mem.Epoch(),
		Payload: ms.mem.CommittedImage(),
	}, nil
}

// onGetParity serves this node's parity block for a group.
func (n *Node) onGetParity(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	ks, ok := n.keepers[int(req.Group)]
	id := n.id
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", id, req.Group)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return &wire.Message{
		Type: wire.MsgGetParityOK, Group: req.Group,
		Arg:     uint64(ks.keeper.ParityIndex()),
		Payload: ks.keeper.Parity(),
	}, nil
}

// onReconstruct runs on a surviving parity node: it pulls survivor images
// and the group's alive parity blocks (its own plus peers'), solves the
// erasure system, and returns the requested lost VM's committed image.
// Survivor images and parity blocks are fetched concurrently.
func (n *Node) onReconstruct(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	var cfg reconstructConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	n.mu.Lock()
	ks, ok := n.keepers[cfg.Group]
	id := n.id
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", id, cfg.Group)
	}
	type fetch struct {
		member string // survivor image when non-empty
		parity int    // parity index otherwise
		node   int
	}
	var fetches []fetch
	for member, nodeID := range cfg.Survivors {
		fetches = append(fetches, fetch{member: member, node: nodeID})
	}
	for idx, nodeID := range cfg.ParityPeers {
		fetches = append(fetches, fetch{parity: idx, node: nodeID, member: ""})
	}
	var mu sync.Mutex
	survivors := map[string][]byte{}
	parityBlocks := map[int][]byte{}
	var epoch uint64
	if err := parallelDo(len(fetches), 0, func(i int) error {
		f := fetches[i]
		if f.member != "" {
			img, err := n.callPeer(f.node, &wire.Message{Type: wire.MsgGetImage, VM: f.member, Trace: ctx.Trace, Span: ctx.Span})
			if err != nil {
				return fmt.Errorf("runtime: fetching survivor %q from node %d: %w", f.member, f.node, err)
			}
			mu.Lock()
			survivors[f.member] = img.Payload
			epoch = img.Epoch
			mu.Unlock()
			return nil
		}
		pb, err := n.callPeer(f.node, &wire.Message{Type: wire.MsgGetParity, Group: int32(cfg.Group), Trace: ctx.Trace, Span: ctx.Span})
		if err != nil {
			return fmt.Errorf("runtime: fetching parity[%d] from node %d: %w", f.parity, f.node, err)
		}
		if int(pb.Arg) != f.parity {
			return fmt.Errorf("runtime: node %d served parity[%d], wanted [%d]", f.node, pb.Arg, f.parity)
		}
		mu.Lock()
		parityBlocks[f.parity] = pb.Payload
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	ks.mu.Lock()
	memberNames := ks.keeper.Members()
	ks.mu.Unlock()
	rebuilt, err := core.ReconstructMembers(cfg.Tolerance, memberNames, survivors, parityBlocks, cfg.AllLost)
	if err != nil {
		return nil, err
	}
	img, ok := rebuilt[cfg.LostVM]
	if !ok {
		return nil, fmt.Errorf("runtime: reconstruction did not yield %q", cfg.LostVM)
	}
	return &wire.Message{Type: wire.MsgReconstructOK, VM: cfg.LostVM, Epoch: epoch, Payload: img}, nil
}

func (n *Node) onInstall(req *wire.Message) (*wire.Message, error) {
	var cfg installConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	m, err := vm.NewMachine(cfg.Name, cfg.Pages, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	mem, err := core.NewMember(m)
	if err != nil {
		return nil, err
	}
	if err := mem.RestoreImage(req.Payload, cfg.Epoch); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.members[cfg.Name]; dup {
		return nil, fmt.Errorf("runtime: node %d already hosts %q", n.id, cfg.Name)
	}
	n.members[cfg.Name] = &memberState{
		mem:      mem,
		workload: vm.NewUniform(cfg.Seed),
		cfg:      cfg.VMConfig,
	}
	return &wire.Message{Type: wire.MsgInstallOK, VM: cfg.Name}, nil
}

func (n *Node) onChecksum(req *wire.Message) (*wire.Message, error) {
	ms, err := n.member(req.VM)
	if err != nil {
		return nil, err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	h := fnv.New64a()
	h.Write(ms.mem.CommittedImage())
	return &wire.Message{Type: wire.MsgChecksumOK, VM: req.VM, Arg: h.Sum64(), Epoch: ms.mem.Epoch()}, nil
}

func (n *Node) onRollback(req *wire.Message) (*wire.Message, error) {
	members := n.snapshotMembers()
	n.mu.Lock()
	fan := n.fanout
	n.mu.Unlock()
	if err := parallelDo(len(members), fan, func(i int) error {
		ms := members[i]
		ms.mu.Lock()
		defer ms.mu.Unlock()
		// An uncommitted prepared capture must be undone first so the
		// committed image returns to the last COMMIT-ed epoch; then the
		// machine state rolls back to it.
		if ms.staged != nil {
			if err := ms.mem.UndoCapture(ms.staged); err != nil {
				return err
			}
			ms.staged = nil
		}
		return ms.mem.Rollback()
	}); err != nil {
		return nil, err
	}
	for _, ks := range n.snapshotKeepers() {
		ks.mu.Lock()
		ks.staged = map[string]*core.Delta{}
		ks.mu.Unlock()
	}
	return &wire.Message{Type: wire.MsgRollbackOK}, nil
}

// onRebuildKeeper makes this node the holder of one parity block of a group
// by pulling every member's committed image (concurrently) and folding them.
func (n *Node) onRebuildKeeper(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	var cfg rebuildKeeperConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	initial := map[string][]byte{}
	if err := parallelDo(len(cfg.Members), 0, func(i int) error {
		member := cfg.Members[i]
		nodeID, ok := cfg.MemberNodes[member]
		if !ok {
			return fmt.Errorf("runtime: rebuild keeper: no node for member %q", member)
		}
		img, err := n.callPeer(nodeID, &wire.Message{Type: wire.MsgGetImage, VM: member, Trace: ctx.Trace, Span: ctx.Span})
		if err != nil {
			return fmt.Errorf("runtime: rebuild keeper: fetch %q: %w", member, err)
		}
		mu.Lock()
		initial[member] = img.Payload
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	k, err := core.NewMKeeper(cfg.Group, cfg.ParityIdx, cfg.Tolerance, initial)
	if err != nil {
		return nil, err
	}
	if err := k.SetEpochs(cfg.Epochs); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.keepers[cfg.Group] = &keeperState{keeper: k, cfg: cfg.KeeperConfig, staged: map[string]*core.Delta{}}
	return &wire.Message{Type: wire.MsgRebuildKeeperOK, Group: int32(cfg.Group)}, nil
}

// onEvict removes a hosted VM and returns its committed image and protocol
// epoch so the coordinator can install it elsewhere. The VM must be
// quiescent (no dirty pages, no staged delta): rebalancing runs immediately
// after a commit, so live state equals committed state and the move is a
// plain image transfer.
func (n *Node) onEvict(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.members[req.VM]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d does not host %q", n.id, req.VM)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.staged != nil {
		return nil, fmt.Errorf("runtime: %q has a staged delta; commit or abort first", req.VM)
	}
	if ms.mem.Machine().DirtyCount() != 0 {
		return nil, fmt.Errorf("runtime: %q has uncommitted dirty pages; checkpoint first", req.VM)
	}
	img := ms.mem.CommittedImage()
	epoch := ms.mem.Epoch()
	delete(n.members, req.VM)
	return &wire.Message{Type: wire.MsgEvictOK, VM: req.VM, Epoch: epoch, Payload: img}, nil
}

// onStats serves the node's protocol counters.
func (n *Node) onStats(req *wire.Message) (*wire.Message, error) {
	n.statsMu.Lock()
	st := n.stats
	n.statsMu.Unlock()
	text, err := encodeJSON(st)
	if err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgStatsOK, Text: text}, nil
}

// setParity points hosted members of one group at a new parity node for one
// parity block (after a keeper was re-homed during recovery).
func (n *Node) setParity(group, idx, node int) error {
	for _, ms := range n.snapshotMembers() {
		ms.mu.Lock()
		if ms.cfg.Group != group {
			ms.mu.Unlock()
			continue
		}
		if idx < 0 || idx >= len(ms.cfg.ParityNodes) {
			name := ms.cfg.Name
			ms.mu.Unlock()
			return fmt.Errorf("runtime: parity index %d out of range for %q", idx, name)
		}
		ms.cfg.ParityNodes[idx] = node
		ms.mu.Unlock()
	}
	return nil
}

// onSetParity applies a single reassignment. Epoch carries the parity
// index, Arg the new node id.
func (n *Node) onSetParity(req *wire.Message) (*wire.Message, error) {
	if err := n.setParity(int(req.Group), int(req.Epoch), int(req.Arg)); err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgSetParityOK, Group: req.Group}, nil
}

// onSetParityBatch applies a whole recovery's worth of parity reassignments
// in one round trip (JSON list of parityUpdate in Text).
func (n *Node) onSetParityBatch(req *wire.Message) (*wire.Message, error) {
	var updates []parityUpdate
	if err := decodeJSON(req.Text, &updates); err != nil {
		return nil, fmt.Errorf("runtime: bad set-parity batch: %w", err)
	}
	for _, u := range updates {
		if err := n.setParity(u.Group, u.Idx, u.Node); err != nil {
			return nil, err
		}
	}
	return &wire.Message{Type: wire.MsgSetParityBatchOK, Arg: uint64(len(updates))}, nil
}

// SetPeers updates the peer address map (coordinator uses it after
// recovery re-homes responsibilities; addresses of dead nodes stay mapped
// but are never dialed again).
func (n *Node) SetPeers(peers map[int]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = peers
	for id, p := range n.pools {
		if addr, ok := peers[id]; !ok || addr != p.Addr() {
			p.Close()
			delete(n.pools, id)
		}
	}
}
