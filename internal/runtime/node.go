package runtime

import (
	"fmt"
	"hash/fnv"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvdc/internal/bufpool"
	"dvdc/internal/core"
	"dvdc/internal/obs"
	"dvdc/internal/transport"
	"dvdc/internal/vm"
	"dvdc/internal/wire"
)

// Node is one DVDC node daemon: it hosts VM members, runs their synthetic
// workloads on command, maintains parity blocks for the groups assigned to
// it, and serves the wire protocol.
//
// Locking is two-level so independent VMs make progress in parallel: the
// structural mutex mu guards only the identity and the maps (who is hosted,
// who the peers are), while each memberState and keeperState carries its own
// lock for its data path. Lock order is mu before any member/keeper lock,
// and no lock is ever held across a peer call.
type Node struct {
	mu         sync.Mutex
	id         int
	server     *transport.Server
	peers      map[int]string
	pools      map[int]*transport.Pool
	members    map[string]*memberState
	keepers    map[int]*keeperState       // by group (orthogonality: at most one block of a group per node)
	installs   map[string]*wire.Assembler // VM -> image chunks staged by MsgInstallChunk
	compress   bool
	chunkSize  int           // effective chunk payload size; 0 = monolithic data path
	pipeWidth  int           // in-flight chunk batches per (stream, peer); 0 = default
	dedup      bool          // cross-epoch page-hash dedup on the ship path
	foldSem    chan struct{} // bounds concurrent per-group fold workers
	rpcTimeout time.Duration
	fanout     int
	dialer     transport.DialFunc
	tracer     *obs.Tracer
	registry   *obs.Registry
	recorder   *obs.FlightRecorder

	statsMu sync.Mutex
	stats   NodeStats
}

type memberState struct {
	mu       sync.Mutex
	mem      *core.Member
	workload vm.Workload
	cfg      VMConfig
	staged   *core.Delta // captured but uncommitted (two-phase)

	// Cross-epoch page-dedup cache (dedup.go): pageHashes holds the content
	// hash of every page as of the member's last committed epoch (lazily —
	// only pages that have shipped), stagedHashes the updates of the current
	// prepare, promoted at commit and dropped on invalidation.
	pageHashes   map[int]uint64
	stagedHashes map[int]uint64
}

type keeperState struct {
	mu     sync.Mutex
	keeper *core.MKeeper
	cfg    KeeperConfig
	staged map[string]*core.Delta // member -> delta awaiting commit (monolithic path)

	// Chunked data path: arriving delta chunks fold into pending (a pooled
	// accumulation buffer the size of the parity block, allocated lazily on
	// first chunk and then kept resident), and streams tracks per-member
	// delivery so duplicates are dropped idempotently and commit can verify
	// completeness. touched records the byte range of every fold op, so
	// commit XORs — and the next round's reuse re-zeroes — only the bytes
	// folds actually wrote. Invariant: pending is all-zero outside touched.
	pending []byte
	streams map[string]*chunkStream
	touched [][2]int

	// Async fold worker (one drainer goroutine per keeper, node-bounded by
	// foldSem): the chunk handler validates and enqueues under mu, then
	// replies; the drainer folds into pending with mu released, so network
	// reads and the RS fold of independent groups overlap. foldBusy is true
	// while a drainer is live; foldCond signals its exit. Anyone about to
	// read or drop pending must waitFolds first. The first async fold error
	// parks in foldErr and surfaces at commit.
	foldCond *sync.Cond // tied to mu
	foldBusy bool
	foldQ    []foldJob
	foldErr  error
}

// foldJob is one validated chunk batch awaiting its parity fold: the ops to
// fold plus the owned buffers to recycle afterwards.
type foldJob struct {
	vm      string
	ops     []foldOp
	payload []byte // owned request payload (raw chunk data aliases it); nil if none
}

// foldOp is one chunk's fold: data either aliases the job's payload or is a
// pooled inflate buffer the drainer returns after folding.
type foldOp struct {
	off    int
	data   []byte
	pooled bool
}

// newKeeperState wires a keeperState around a keeper.
func newKeeperState(k *core.MKeeper, cfg KeeperConfig) *keeperState {
	ks := &keeperState{
		keeper:  k,
		cfg:     cfg,
		staged:  map[string]*core.Delta{},
		streams: map[string]*chunkStream{},
	}
	ks.foldCond = sync.NewCond(&ks.mu)
	return ks
}

// waitFolds blocks until the async fold queue drains. Caller holds ks.mu.
func (ks *keeperState) waitFolds() {
	for ks.foldBusy {
		ks.foldCond.Wait()
	}
}

// chunkStream tracks one member's in-flight delta chunk stream on a keeper.
// A re-delivered index (the transport retries once over a fresh dial) must
// NOT fold twice — XOR would cancel it back out — so delivery is recorded
// per chunk index.
type chunkStream struct {
	epoch uint64
	count uint32
	seen  []bool
	got   uint32
}

// dropPending discards a keeper's chunked-round state (abort/rollback),
// first letting any in-flight async folds finish so the pending buffer is
// not cleared under a worker. The buffer itself stays resident — folds only
// ever wrote inside touched, so re-zeroing just those ranges restores the
// all-zero invariant without an image-sized clear. Caller holds ks.mu.
func (ks *keeperState) dropPending() {
	ks.waitFolds()
	ks.foldErr = nil
	if ks.pending != nil {
		for _, r := range ks.touched {
			clear(ks.pending[r[0]:r[1]])
		}
	}
	ks.touched = ks.touched[:0]
	if len(ks.streams) > 0 {
		ks.streams = map[string]*chunkStream{}
	}
}

// coalesceRanges sorts and merges touched byte ranges in place so overlaps
// from different members' chunks collapse into disjoint runs — the form
// CommitPendingRanges requires (an overlap would XOR those bytes twice).
func coalesceRanges(rs [][2]int) [][2]int {
	if len(rs) < 2 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i][0] < rs[j][0] })
	out := rs[:1]
	for _, r := range rs[1:] {
		if last := &out[len(out)-1]; r[0] <= last[1] {
			last[1] = max(last[1], r[1])
		} else {
			out = append(out, r)
		}
	}
	return out
}

// NodeOptions customizes how a node daemon touches the network. The zero
// value is plain TCP on both sides; fault-injection layers (internal/chaos)
// substitute their own hooks.
type NodeOptions struct {
	Dialer transport.DialFunc   // outbound peer connections (nil = TCP)
	Listen transport.ListenFunc // the daemon's own listener (nil = TCP)

	// Observability (all optional): traced requests get per-handler spans in
	// this node's lane, the registry gets the node's peer-pool health series
	// and RPC latency histograms, and the flight recorder logs every peer RPC
	// outcome for postmortem bundles.
	Tracer   *obs.Tracer
	Registry *obs.Registry
	Recorder *obs.FlightRecorder
}

// NewNode starts a node daemon listening on addr ("127.0.0.1:0" for tests).
func NewNode(addr string) (*Node, error) {
	return NewNodeWith(addr, NodeOptions{})
}

// NewNodeWith starts a node daemon with custom network hooks.
func NewNodeWith(addr string, opts NodeOptions) (*Node, error) {
	n := &Node{
		peers:    map[int]string{},
		pools:    map[int]*transport.Pool{},
		members:  map[string]*memberState{},
		keepers:  map[int]*keeperState{},
		installs: map[string]*wire.Assembler{},
		foldSem:  make(chan struct{}, max(1, goruntime.NumCPU()-1)),
		dialer:   opts.Dialer,
		tracer:   opts.Tracer,
		registry: opts.Registry,
		recorder: opts.Recorder,
	}
	if opts.Registry != nil {
		mountBufpoolStats(opts.Registry)
	}
	s, err := transport.ListenWith(addr, n.handle, opts.Listen)
	if err != nil {
		return nil, err
	}
	n.server = s
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.server.Addr() }

// SetRPCTimeout bounds every peer call this node makes (delta shipping,
// recovery image pulls). Applies to pools created after the call, so set it
// before the node receives traffic. 0 means no deadline.
func (n *Node) SetRPCTimeout(d time.Duration) {
	n.mu.Lock()
	n.rpcTimeout = d
	n.mu.Unlock()
}

// SetFanout bounds how many members are prepared/stepped/shipped
// concurrently (0 = one goroutine per member).
func (n *Node) SetFanout(k int) {
	n.mu.Lock()
	n.fanout = k
	n.mu.Unlock()
}

// Close stops the daemon.
func (n *Node) Close() error {
	n.mu.Lock()
	for _, p := range n.pools {
		p.Close()
	}
	n.pools = map[int]*transport.Pool{}
	n.mu.Unlock()
	return n.server.Close()
}

// nodeID reads the node's identity under the structural lock.
func (n *Node) nodeID() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.id
}

// pool returns the (lazily created) connection pool for a peer.
func (n *Node) pool(id int) (*transport.Pool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.pools[id]; ok {
		return p, nil
	}
	addr, ok := n.peers[id]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d has no address for peer %d", n.id, id)
	}
	p := transport.NewPool(addr, transport.PoolOptions{
		CallTimeout: n.rpcTimeout,
		Dialer:      n.dialer,
		Peer:        fmt.Sprintf("node%d", id),
		Tracer:      n.tracer,
		Registry:    n.registry,
		Recorder:    n.recorder,
	})
	n.pools[id] = p
	return p, nil
}

// callPeer routes a request to another node, short-circuiting self-calls to
// the local handler (no loopback round trip, no lock-order hazards). The
// pool re-dials and retries once when a cached connection turns out stale,
// so a daemon replaced on the same address is reachable again.
func (n *Node) callPeer(id int, msg *wire.Message) (*wire.Message, error) {
	if id == n.nodeID() {
		return n.handle(msg)
	}
	p, err := n.pool(id)
	if err != nil {
		return nil, err
	}
	return p.Call(msg)
}

// snapshotMembers copies the member list under the structural lock.
func (n *Node) snapshotMembers() []*memberState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*memberState, 0, len(n.members))
	for _, ms := range n.members {
		out = append(out, ms)
	}
	return out
}

// snapshotKeepers copies the keeper list under the structural lock.
func (n *Node) snapshotKeepers() []*keeperState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*keeperState, 0, len(n.keepers))
	for _, ks := range n.keepers {
		out = append(out, ks)
	}
	return out
}

// handle serves one request: traced requests get a handler span in this
// node's lane (child of the caller's RPC-attempt span), then dispatch. Locks
// are taken by the individual operations, never across peer calls, to avoid
// distributed deadlock.
func (n *Node) handle(req *wire.Message) (*wire.Message, error) {
	ctx := obs.SpanContext{Trace: req.Trace, Span: req.Span}
	n.mu.Lock()
	tr, id := n.tracer, n.id
	n.mu.Unlock()
	sp := tr.Child(ctx, "node."+req.Type.String(), fmt.Sprintf("node%d", id))
	resp, err := n.dispatch(sp.ContextOr(ctx), req)
	sp.FinishErr(err)
	return resp, err
}

// dispatch routes one request to its handler. ctx is the request's span
// context (the handler span when traced) for handlers that make onward peer
// calls.
func (n *Node) dispatch(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	switch req.Type {
	case wire.MsgHello:
		return &wire.Message{Type: wire.MsgHelloOK, Arg: uint64(n.nodeID())}, nil
	case wire.MsgConfigure:
		return n.onConfigure(req)
	case wire.MsgStep:
		return n.onStep(req)
	case wire.MsgPrepare:
		return n.onPrepare(ctx, req)
	case wire.MsgCommit:
		return n.onCommit(ctx, req)
	case wire.MsgAbort:
		return n.onAbort(req)
	case wire.MsgDelta:
		return n.onDelta(req)
	case wire.MsgDeltaChunk:
		return n.onDeltaChunk(req)
	case wire.MsgReadChunk:
		return n.onReadChunk(req)
	case wire.MsgInstallChunk:
		return n.onInstallChunk(req)
	case wire.MsgGetImage:
		return n.onGetImage(req)
	case wire.MsgGetParity:
		return n.onGetParity(req)
	case wire.MsgEvict:
		return n.onEvict(req)
	case wire.MsgReconstruct:
		return n.onReconstruct(ctx, req)
	case wire.MsgInstall:
		return n.onInstall(req)
	case wire.MsgChecksum:
		return n.onChecksum(req)
	case wire.MsgRollback:
		return n.onRollback(req)
	case wire.MsgRebuildKeeper:
		return n.onRebuildKeeper(ctx, req)
	case wire.MsgSetParity:
		return n.onSetParity(req)
	case wire.MsgSetParityBatch:
		return n.onSetParityBatch(req)
	case wire.MsgStats:
		return n.onStats(req)
	case wire.MsgRetune:
		return n.onRetune(req)
	default:
		return nil, fmt.Errorf("runtime: node %d: unhandled message %v", n.nodeID(), req.Type)
	}
}

func (n *Node) onConfigure(req *wire.Message) (*wire.Message, error) {
	var cfg NodeConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, fmt.Errorf("runtime: bad configure payload: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.id = cfg.NodeID
	n.peers = cfg.Peers
	n.compress = cfg.Compress
	n.chunkSize = resolveChunkSize(cfg.ChunkSize)
	n.pipeWidth = resolvePipelineWidth(cfg.PipelineWidth)
	n.dedup = cfg.Dedup
	n.installs = map[string]*wire.Assembler{}
	// Drop pools whose peer moved to a new address.
	for id, p := range n.pools {
		if addr, ok := cfg.Peers[id]; !ok || addr != p.Addr() {
			p.Close()
			delete(n.pools, id)
		}
	}
	// A configuration is the node's complete assignment: members and keepers
	// from a previous life (an earlier controller session, or state left
	// behind before a Repair) must not leak into the new one, or they ship
	// conflicting deltas for VMs that now live elsewhere.
	n.members = map[string]*memberState{}
	n.keepers = map[int]*keeperState{}
	for _, vc := range cfg.VMs {
		m, err := vm.NewMachine(vc.Name, vc.Pages, vc.PageSize)
		if err != nil {
			return nil, err
		}
		mem, err := core.NewMember(m)
		if err != nil {
			return nil, err
		}
		n.members[vc.Name] = &memberState{
			mem:      mem,
			workload: newWorkload(vc.Workload, vc.Seed),
			cfg:      vc,
		}
	}
	for _, kc := range cfg.Keepers {
		// Initial member images are all-zero, so the initial parity block is
		// all-zero too: no bulk transfer needed at setup.
		initial := map[string][]byte{}
		for _, name := range kc.Members {
			initial[name] = make([]byte, kc.Pages*kc.PageSize)
		}
		k, err := core.NewMKeeper(kc.Group, kc.ParityIdx, kc.Tolerance, initial)
		if err != nil {
			return nil, err
		}
		n.keepers[kc.Group] = newKeeperState(k, kc)
	}
	return &wire.Message{Type: wire.MsgConfigureOK}, nil
}

// onRetune applies a live data-path retune: chunk size and pipeline width
// change between rounds without the full reconfigure (which would wipe
// members, keepers, and the dedup cache). Tuning only shapes how staged
// deltas travel — never what is committed — so it is safe mid-protocol; the
// next prepare simply ships with the new granularity.
func (n *Node) onRetune(req *wire.Message) (*wire.Message, error) {
	var rt retuneConfig
	if err := decodeJSON(req.Text, &rt); err != nil {
		return nil, fmt.Errorf("runtime: bad retune payload: %w", err)
	}
	n.mu.Lock()
	wasChunked := n.chunkSize > 0
	nowChunked := resolveChunkSize(rt.ChunkSize) > 0
	if wasChunked != nowChunked {
		n.mu.Unlock()
		return nil, fmt.Errorf("runtime: retune cannot cross the chunked/monolithic boundary (have chunked=%v)", wasChunked)
	}
	n.chunkSize = resolveChunkSize(rt.ChunkSize)
	n.pipeWidth = resolvePipelineWidth(rt.PipelineWidth)
	n.mu.Unlock()
	return &wire.Message{Type: wire.MsgRetuneOK}, nil
}

func (n *Node) onStep(req *wire.Message) (*wire.Message, error) {
	members := n.snapshotMembers()
	n.mu.Lock()
	fan := n.fanout
	n.mu.Unlock()
	if err := parallelDo(len(members), fan, func(i int) error {
		ms := members[i]
		ms.mu.Lock()
		defer ms.mu.Unlock()
		for s := uint64(0); s < req.Arg; s++ {
			ms.workload.Step(ms.mem.Machine())
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgStepOK}, nil
}

// shipment is one member's captured delta plus the routing and geometry the
// ship phase needs with no locks held.
type shipment struct {
	delta      *core.Delta
	group      int
	parity     []int
	pageSize   int
	imageBytes int
}

// onPrepare captures a delta for every hosted member and ships it to every
// parity node of the member's group, staging everything for commit. Members
// are captured and shipped concurrently: each holds only its own lock during
// capture, and shipping happens with no locks held, so deltas bound for
// distinct parity peers overlap on the wire. With the (default) chunked data
// path the delta travels as fixed-size chunk frames with several in flight
// per peer, so transfer pipelines with the keeper's per-chunk parity folds.
// The reply's Arg carries the wire bytes shipped and Text a prepareSummary,
// so the coordinator can aggregate per-round volume.
func (n *Node) onPrepare(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	members := n.snapshotMembers()
	n.mu.Lock()
	id, compress, fan, cs, pw, dedup := n.id, n.compress, n.fanout, n.chunkSize, resolvePipelineWidth(n.pipeWidth), n.dedup
	tr := n.tracer
	reg := n.registry
	n.mu.Unlock()
	lane := fmt.Sprintf("node%d", id)

	ships := make([]shipment, len(members))
	var deduped atomic.Int64
	// Phase 1: capture and stage under each member's own lock. A failure
	// leaves earlier members staged; the coordinator's abort undoes them.
	if err := parallelDo(len(members), fan, func(i int) error {
		ms := members[i]
		ms.mu.Lock()
		defer ms.mu.Unlock()
		if ms.staged != nil {
			return fmt.Errorf("runtime: node %d: %q already has a staged delta", id, ms.cfg.Name)
		}
		d, err := ms.mem.CaptureDeltaInto(bufpool.Get)
		if err != nil {
			return err
		}
		ms.staged = d
		shipped := d
		if dedup {
			var hits, misses int64
			shipped, hits, misses = ms.dedupFilter(d)
			if hits > 0 {
				deduped.Add(hits)
				saved := hits * int64(ms.cfg.PageSize)
				n.statsMu.Lock()
				n.stats.DedupHits += hits
				n.stats.DedupMisses += misses
				n.stats.DedupSavedBytes += saved
				n.statsMu.Unlock()
				reg.Counter("dvdc_dedup_hits_total").Add(hits)
				reg.Counter("dvdc_dedup_bytes_saved_total").Add(saved)
				if misses > 0 {
					reg.Counter("dvdc_dedup_misses_total").Add(misses)
				}
			} else if misses > 0 {
				n.statsMu.Lock()
				n.stats.DedupMisses += misses
				n.statsMu.Unlock()
				reg.Counter("dvdc_dedup_misses_total").Add(misses)
			}
		}
		ships[i] = shipment{
			delta:      shipped,
			group:      ms.cfg.Group,
			parity:     append([]int(nil), ms.cfg.ParityNodes...),
			pageSize:   ms.cfg.PageSize,
			imageBytes: ms.cfg.Pages * ms.cfg.PageSize,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Phase 2: encode and ship, members and parity peers concurrently. Each
	// member's shipment gets a span so the timeline shows deltas to distinct
	// parity peers overlapping; the shared message carries the ship span's
	// context (the pool re-stamps Span per RPC attempt on its own copy).
	var wireBytes, chunksSent atomic.Int64
	if err := parallelDo(len(members), fan, func(i int) (shipErr error) {
		sh := ships[i]
		span := tr.Child(ctx, "ship "+sh.delta.VMID, lane)
		defer func() { span.FinishErr(shipErr) }()
		if cs > 0 {
			return n.shipChunked(span.ContextOr(ctx), span, sh, cs, pw, compress, &wireBytes, &chunksSent)
		}
		payload := encodeDelta(sh.delta, compress)
		peers := int64(len(sh.parity))
		n.statsMu.Lock()
		n.stats.DeltasSent += peers
		n.stats.DeltaRawBytes += sh.delta.PayloadBytes() * peers
		n.stats.DeltaWireBytes += int64(len(payload)) * peers
		n.statsMu.Unlock()
		wireBytes.Add(int64(len(payload)) * peers)
		span.SetAttr("bytes", fmt.Sprint(len(payload)))
		sctx := span.ContextOr(ctx)
		msg := &wire.Message{
			Type: wire.MsgDelta, Epoch: sh.delta.Epoch,
			Group: int32(sh.group), VM: sh.delta.VMID, Payload: payload,
			Trace: sctx.Trace, Span: sctx.Span,
		}
		return parallelDo(len(sh.parity), 0, func(j int) error {
			reply, err := n.callPeer(sh.parity[j], msg)
			if err != nil {
				return fmt.Errorf("runtime: shipping delta of %q to node %d: %w", sh.delta.VMID, sh.parity[j], err)
			}
			if reply.Type != wire.MsgDeltaOK {
				return fmt.Errorf("runtime: unexpected reply %v to delta", reply.Type)
			}
			return nil
		})
	}); err != nil {
		return nil, err
	}
	text, err := encodeJSON(prepareSummary{Chunks: chunksSent.Load(), Deduped: deduped.Load()})
	if err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgPrepareOK, Epoch: req.Epoch, Arg: uint64(wireBytes.Load()), Text: text}, nil
}

// shipChunked ships one member's delta to every parity peer of its group as
// chunk frames. Chunks follow dirty-page runs, so a scattered delta yields
// many frames far smaller than chunkSize; shipping each as its own message
// would make framing and syscalls dominate the round. Frames are therefore
// packed back-to-back into batches of about chunkSize wire bytes, one message
// per batch — every chunk inside keeps its own offset and CRC and is still
// folded individually on arrival.
//
// Batches are scatter-gather lists (wire.FrameWriter): each frame is a tiny
// pooled header slot plus a data segment aliasing the chunk buffer, and the
// transport writes the segments in sequence — page data crosses from the
// delta chunk buffers to the socket without ever being copied into a batch
// buffer. Batches are built once and shared read-only across peers; per peer,
// up to chunkPipelineWidth batches are in flight so the network transfer
// overlaps the keeper's incremental folds.
func (n *Node) shipChunked(sctx obs.SpanContext, span *obs.Active, sh shipment, chunkSize, pipeWidth int, compress bool, wireBytes, chunksSent *atomic.Int64) error {
	// Compression needs each chunk's bytes contiguous (Deflate consumes one
	// slice), so that path materializes pooled chunk buffers. The plain path
	// ships the captured page buffers themselves as scatter segments — the
	// dirty bytes are never copied between capture and the socket. The pages
	// belong to the staged delta, which outlives the prepare-phase ship.
	var chunks []wire.Chunk
	var chunkSegs [][][]byte
	release := func() {}
	if compress {
		chunks, release = deltaChunks(sh.delta, sh.pageSize, sh.imageBytes, chunkSize)
	} else {
		chunks, chunkSegs = deltaChunkScatter(sh.delta, sh.pageSize, sh.imageBytes, chunkSize)
	}
	defer release()
	budget := max(chunkSize, chunkBatchBudget) + wire.ChunkHeaderLen
	var raw, wireB int64
	var batches []*wire.FrameWriter
	var cur *wire.FrameWriter
	for i := range chunks {
		c := &chunks[i]
		raw += int64(c.RawLen)
		need := wire.ChunkHeaderLen + int(c.RawLen)
		if compress {
			c.Deflate()
			need = wire.ChunkHeaderLen + len(c.Data)
		}
		// A frame larger than the budget (planChunks widened a degenerate
		// chunk size to honor the stream bound) gets a batch of its own.
		if cur == nil || cur.Len()+need > budget {
			cur = &wire.FrameWriter{Alloc: bufpool.Get}
			batches = append(batches, cur)
		}
		if compress {
			cur.AppendChunk(c)
		} else {
			cur.AppendChunkScatter(c, chunkSegs[i])
		}
	}
	defer func() {
		for _, fw := range batches {
			fw.Release(bufpool.Put)
		}
	}()
	for _, fw := range batches {
		wireB += int64(fw.Len())
	}
	peers := int64(len(sh.parity))
	n.statsMu.Lock()
	n.stats.DeltasSent += peers
	n.stats.DeltaRawBytes += raw * peers
	n.stats.DeltaWireBytes += wireB * peers
	n.stats.ChunksSent += int64(len(chunks)) * peers
	n.statsMu.Unlock()
	wireBytes.Add(wireB * peers)
	chunksSent.Add(int64(len(chunks)) * peers)
	span.SetAttr("bytes", fmt.Sprint(wireB))
	span.SetAttr("chunks", fmt.Sprint(len(chunks)))
	span.SetAttr("batches", fmt.Sprint(len(batches)))
	selfID := n.nodeID()
	return parallelDo(len(sh.parity), 0, func(j int) error {
		peer := sh.parity[j]
		return parallelDo(len(batches), pipeWidth, func(k int) error {
			msg := &wire.Message{
				Type: wire.MsgDeltaChunk, Epoch: sh.delta.Epoch,
				Group: int32(sh.group), VM: sh.delta.VMID,
				PayloadSegs: batches[k].Segments(),
				Trace:       sctx.Trace, Span: sctx.Span,
			}
			if peer == selfID {
				// Self-calls bypass the wire, so the handler sees no framed
				// payload; hand it the contiguous form a socket read would have
				// produced. The handler may take ownership (nil-ing Payload) to
				// fold asynchronously; otherwise the buffer comes back here.
				msg.Payload = flattenSegments(batches[k])
				msg.PayloadSegs = nil
			}
			reply, err := n.callPeer(peer, msg)
			if peer == selfID && msg.Payload != nil {
				bufpool.Put(msg.Payload)
			}
			if err != nil {
				return fmt.Errorf("runtime: shipping chunk batch %d/%d of %q to node %d: %w",
					k+1, len(batches), sh.delta.VMID, peer, err)
			}
			if reply.Type != wire.MsgDeltaChunkOK {
				return fmt.Errorf("runtime: unexpected reply %v to delta chunk", reply.Type)
			}
			return nil
		})
	})
}

// flattenSegments copies a FrameWriter's scatter list into one pooled buffer.
func flattenSegments(fw *wire.FrameWriter) []byte {
	out := bufpool.Get(fw.Len())[:0]
	for _, seg := range fw.Segments() {
		out = append(out, seg...)
	}
	return out
}

func (n *Node) onDelta(req *wire.Message) (*wire.Message, error) {
	d, err := decodeDelta(req.Payload)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	ks, ok := n.keepers[int(req.Group)]
	id := n.id
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", id, req.Group)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if prev, dup := ks.staged[d.VMID]; dup && prev.Epoch != d.Epoch {
		return nil, fmt.Errorf("runtime: conflicting staged delta for %q", d.VMID)
	}
	ks.staged[d.VMID] = d
	return &wire.Message{Type: wire.MsgDeltaOK, Epoch: d.Epoch}, nil
}

// onDeltaChunk accepts delta chunks for the keeper's pending accumulation
// buffer — the streaming half of the chunked data path. The payload carries
// one or more self-delimiting chunk frames (the sender batches small frames
// into one message); each is verified individually against its stream under
// ks.mu, then the whole batch is enqueued for the keeper's fold drainer and
// the reply goes out before the RS fold runs. The fold happens off the live
// parity block so two-phase semantics hold: abort drops the pending buffer,
// commit waits for the queue to drain and lands it atomically. Redelivered
// chunks (the transport retries once over a fresh dial when a connection
// drops, resending whole batches) are detected by index and skipped without
// folding again, since a second XOR fold would cancel the first.
func (n *Node) onDeltaChunk(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	ks, ok := n.keepers[int(req.Group)]
	id := n.id
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", id, req.Group)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	job := foldJob{vm: req.VM}
	aliases := false
	// An empty payload decodes to a short-header error on the first
	// iteration, so a batch always contains at least one frame.
	for buf := req.Payload; ; {
		c, adv, err := wire.DecodeChunkPrefix(buf)
		if err != nil {
			return nil, err
		}
		op, fold, err := n.validateChunk(ks, req, &c)
		if err != nil {
			return nil, err
		}
		if fold {
			job.ops = append(job.ops, op)
			if !op.pooled && len(op.data) > 0 {
				aliases = true // raw chunk data points into req.Payload
			}
		}
		if buf = buf[adv:]; len(buf) == 0 {
			break
		}
	}
	// The batch passed validation: its streams exist, so commit will expect a
	// pending buffer even if every chunk was a duplicate or empty.
	if ks.pending == nil {
		ks.pending = bufpool.GetZero(ks.keeper.Size())
	}
	if len(job.ops) > 0 {
		if aliases {
			// Take the payload: the drainer folds from it after this handler
			// returns, and recycles it. The transport treats a nil-ed request
			// payload as ownership transferred.
			job.payload = req.Payload
			req.Payload = nil
		}
		ks.foldQ = append(ks.foldQ, job)
		if !ks.foldBusy {
			ks.foldBusy = true
			go n.foldDrain(ks)
		}
	}
	return &wire.Message{Type: wire.MsgDeltaChunkOK, Epoch: req.Epoch, VM: req.VM}, nil
}

// validateChunk checks one decoded chunk against its stream, records its
// delivery, and materializes the fold op (inflating compressed chunks into
// pooled buffers). fold is false for idempotently dropped duplicates. Caller
// holds ks.mu.
func (n *Node) validateChunk(ks *keeperState, req *wire.Message, c *wire.Chunk) (op foldOp, fold bool, err error) {
	k := ks.keeper
	if int(c.Total) != k.Size() {
		return op, false, fmt.Errorf("runtime: chunk stream for %q describes a %d-byte image, group %d uses %d",
			req.VM, c.Total, req.Group, k.Size())
	}
	if req.Epoch != k.Epoch(req.VM)+1 {
		return op, false, fmt.Errorf("runtime: chunk stream for %q at epoch %d, keeper folded %d",
			req.VM, req.Epoch, k.Epoch(req.VM))
	}
	st := ks.streams[req.VM]
	if st == nil {
		st = &chunkStream{epoch: req.Epoch, count: c.Count, seen: make([]bool, c.Count)}
		ks.streams[req.VM] = st
	} else if st.epoch != req.Epoch || st.count != c.Count {
		return op, false, fmt.Errorf("runtime: conflicting chunk stream for %q (epoch %d, %d chunks; had epoch %d, %d)",
			req.VM, req.Epoch, c.Count, st.epoch, st.count)
	}
	if st.seen[c.Index] {
		n.statsMu.Lock()
		n.stats.DupChunks++
		n.statsMu.Unlock()
		return op, false, nil
	}
	data, err := c.Inflate(bufpool.Get)
	if err != nil {
		return op, false, err
	}
	st.seen[c.Index] = true
	st.got++
	if len(data) > 0 {
		ks.touched = append(ks.touched, [2]int{int(c.Offset), int(c.Offset) + len(data)})
	}
	return foldOp{off: int(c.Offset), data: data, pooled: c.Flags&wire.ChunkFlate != 0}, true, nil
}

// foldDrain is the keeper's fold worker: it pops queued chunk batches and
// folds them into the pending buffer with ks.mu released, so the handler can
// keep accepting (and validating) the next batches off the wire while this
// one folds. A node-wide semaphore bounds how many keepers fold at once.
// Exactly one drainer runs per keeper (same-group chunks may overlap byte
// ranges, so their folds must not race each other); distinct groups fold in
// parallel. Exits when the queue is empty, waking waitFolds waiters.
func (n *Node) foldDrain(ks *keeperState) {
	n.mu.Lock()
	reg := n.registry
	n.mu.Unlock()
	for {
		ks.mu.Lock()
		if len(ks.foldQ) == 0 {
			ks.foldBusy = false
			ks.foldCond.Broadcast()
			ks.mu.Unlock()
			return
		}
		job := ks.foldQ[0]
		ks.foldQ = ks.foldQ[1:]
		k, pending := ks.keeper, ks.pending
		ks.mu.Unlock()

		n.foldSem <- struct{}{}
		start := time.Now()
		var ferr error
		for _, op := range job.ops {
			if ferr == nil {
				ferr = k.FoldInto(pending, job.vm, op.off, op.data)
			}
			if op.pooled {
				bufpool.Put(op.data) // inflated copy is ours; raw chunks alias the payload
			}
		}
		foldD := time.Since(start)
		<-n.foldSem
		if job.payload != nil {
			bufpool.Put(job.payload)
		}
		n.statsMu.Lock()
		n.stats.ChunksReceived += int64(len(job.ops))
		n.stats.FoldNanos += foldD.Nanoseconds()
		n.statsMu.Unlock()
		if reg != nil {
			reg.Histogram("dvdc_chunk_fold_seconds", obs.LatencyBuckets()).Observe(foldD.Seconds())
		}
		if ferr != nil {
			ks.mu.Lock()
			if ks.foldErr == nil {
				ks.foldErr = ferr
			}
			ks.mu.Unlock()
		}
	}
}

func (n *Node) onCommit(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	keepers := n.snapshotKeepers()
	n.mu.Lock()
	fan := n.fanout
	tr := n.tracer
	id := n.id
	n.mu.Unlock()
	lane := fmt.Sprintf("node%d", id)
	// Fold staged deltas into parity, keepers in parallel (the XOR/RS fold
	// is real CPU work and keepers are independent).
	if err := parallelDo(len(keepers), fan, func(i int) (foldErr error) {
		ks := keepers[i]
		ks.mu.Lock()
		defer ks.mu.Unlock()
		span := tr.Child(ctx, fmt.Sprintf("fold g%d", ks.keeper.Group()), lane)
		span.SetAttr("staged", fmt.Sprint(len(ks.staged)))
		defer func() { span.FinishErr(foldErr) }()
		// The async fold queue must land before pending is read or committed;
		// an error parked by the drainer fails the commit here.
		ks.waitFolds()
		if err := ks.foldErr; err != nil {
			ks.foldErr = nil
			return fmt.Errorf("runtime: commit group %d: async chunk fold: %w", ks.keeper.Group(), err)
		}
		for id, d := range ks.staged {
			if err := ks.keeper.ApplyDelta(d); err != nil {
				return fmt.Errorf("runtime: commit group %d member %q: %w", ks.keeper.Group(), id, err)
			}
			delete(ks.staged, id)
		}
		// Chunked path: every member's stream must have delivered all of its
		// chunks (prepare succeeded, so they did unless the protocol broke),
		// then the whole accumulation lands atomically. A retried commit finds
		// no streams and no pending buffer and is a no-op — idempotent.
		if len(ks.streams) > 0 {
			span.SetAttr("streams", fmt.Sprint(len(ks.streams)))
			epochs := make(map[string]uint64, len(ks.streams))
			for vmid, st := range ks.streams {
				if st.got != st.count {
					return fmt.Errorf("runtime: commit group %d: chunk stream for %q incomplete (%d/%d)",
						ks.keeper.Group(), vmid, st.got, st.count)
				}
				epochs[vmid] = st.epoch
			}
			if ks.pending == nil {
				return fmt.Errorf("runtime: commit group %d: chunk streams without a pending fold buffer", ks.keeper.Group())
			}
			// Folds only wrote inside touched, so commit drains just those
			// ranges — XOR into parity and re-zero in one fused pass: the
			// buffer stays resident and all-zero for the next round, and a
			// sparse round costs O(folded bytes) instead of O(image) per
			// group.
			if err := ks.keeper.DrainPendingRanges(ks.pending, epochs, coalesceRanges(ks.touched)); err != nil {
				return fmt.Errorf("runtime: commit group %d: %w", ks.keeper.Group(), err)
			}
			ks.touched = ks.touched[:0]
			ks.streams = map[string]*chunkStream{}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, ms := range n.snapshotMembers() {
		ms.mu.Lock()
		releaseDelta(ms.staged)
		ms.staged = nil // capture already advanced the committed image
		ms.dedupCommit()
		ms.mu.Unlock()
	}
	return &wire.Message{Type: wire.MsgCommitOK, Epoch: req.Epoch}, nil
}

// releaseDelta returns a pooled-capture delta's page buffers. Only deltas
// from CaptureDeltaInto(bufpool.Get) flow here; keeper-side deltas are
// decoded copies and never released this way.
func releaseDelta(d *core.Delta) {
	if d == nil {
		return
	}
	for i := range d.Pages {
		bufpool.Put(d.Pages[i].Data)
		d.Pages[i].Data = nil
	}
}

func (n *Node) onAbort(req *wire.Message) (*wire.Message, error) {
	for _, ks := range n.snapshotKeepers() {
		ks.mu.Lock()
		ks.staged = map[string]*core.Delta{}
		ks.dropPending()
		ks.mu.Unlock()
	}
	for _, ms := range n.snapshotMembers() {
		ms.mu.Lock()
		if ms.staged != nil {
			if err := ms.mem.UndoCapture(ms.staged); err != nil {
				ms.mu.Unlock()
				return nil, err
			}
			releaseDelta(ms.staged)
			ms.staged = nil
		}
		// The hashes staged for the aborted epoch are now stale (their pages
		// reverted with the capture); the committed entries survive — parity
		// did not move.
		ms.dedupAbort()
		ms.mu.Unlock()
	}
	return &wire.Message{Type: wire.MsgAbortOK, Epoch: req.Epoch}, nil
}

// member looks a hosted member up under the structural lock.
func (n *Node) member(name string) (*memberState, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.members[name]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d does not host %q", n.id, name)
	}
	return ms, nil
}

func (n *Node) onGetImage(req *wire.Message) (*wire.Message, error) {
	ms, err := n.member(req.VM)
	if err != nil {
		return nil, err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return &wire.Message{
		Type: wire.MsgImage, VM: req.VM,
		Epoch:   ms.mem.Epoch(),
		Payload: ms.mem.CommittedImage(),
	}, nil
}

// onGetParity serves this node's parity block for a group.
func (n *Node) onGetParity(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	ks, ok := n.keepers[int(req.Group)]
	id := n.id
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", id, req.Group)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return &wire.Message{
		Type: wire.MsgGetParityOK, Group: req.Group,
		Arg:     uint64(ks.keeper.ParityIndex()),
		Payload: ks.keeper.Parity(),
	}, nil
}

// readChunkPayload cuts one chunk out of a total-byte block served by fetch
// (which must return a fresh copy of [off, off+n)) and encodes it.
func readChunkPayload(total, index, chunkSize int, fetch func(off, n int) ([]byte, error)) ([]byte, error) {
	count := wire.ChunkCount(total, chunkSize)
	if index < 0 || index >= count {
		return nil, fmt.Errorf("runtime: chunk index %d outside [0,%d)", index, count)
	}
	lo := index * chunkSize
	nb := min(chunkSize, total-lo)
	if total == 0 {
		lo, nb = 0, 0
	}
	data, err := fetch(lo, nb)
	if err != nil {
		return nil, err
	}
	c := wire.Chunk{
		Offset: uint64(lo), Total: uint64(total),
		Index: uint32(index), Count: uint32(count),
		RawLen: uint32(nb), Data: data,
	}
	return encodePooledChunk(&c), nil
}

// onReadChunk serves one chunk of a committed image (Text "image", keyed by
// VM) or a parity block (Text "parity", keyed by Group) — the chunked twin
// of MsgGetImage/MsgGetParity that never materializes a full copy per
// request. Arg packs uint64(index)<<32 | uint32(chunkSize). Image replies
// carry the member's committed epoch; parity replies carry the parity index
// in Arg so the caller can verify it got the block it asked for.
func (n *Node) onReadChunk(req *wire.Message) (*wire.Message, error) {
	index := int(req.Arg >> 32)
	chunkSize := int(uint32(req.Arg))
	if chunkSize <= 0 {
		return nil, fmt.Errorf("runtime: read-chunk with chunk size %d", chunkSize)
	}
	switch req.Text {
	case "image":
		ms, err := n.member(req.VM)
		if err != nil {
			return nil, err
		}
		ms.mu.Lock()
		defer ms.mu.Unlock()
		payload, err := readChunkPayload(ms.mem.CommittedLen(), index, chunkSize, ms.mem.CommittedRange)
		if err != nil {
			return nil, err
		}
		return &wire.Message{Type: wire.MsgReadChunkOK, VM: req.VM, Epoch: ms.mem.Epoch(), Payload: payload}, nil
	case "parity":
		n.mu.Lock()
		ks, ok := n.keepers[int(req.Group)]
		id := n.id
		n.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", id, req.Group)
		}
		ks.mu.Lock()
		defer ks.mu.Unlock()
		payload, err := readChunkPayload(ks.keeper.Size(), index, chunkSize, ks.keeper.ParityRange)
		if err != nil {
			return nil, err
		}
		return &wire.Message{
			Type: wire.MsgReadChunkOK, Group: req.Group,
			Arg: uint64(ks.keeper.ParityIndex()), Payload: payload,
		}, nil
	default:
		return nil, fmt.Errorf("runtime: read-chunk of unknown source %q", req.Text)
	}
}

// fetchChunked pulls a committed image (source "image", keyed by VM) or a
// parity block (source "parity", keyed by group) from a peer in chunkSize
// pieces, keeping chunkPipelineWidth requests in flight. It returns the
// assembled block in a pooled buffer (the caller may bufpool.Put it), the
// Epoch of the first reply, and the first reply's Arg (the serving keeper's
// parity index on parity reads).
func (n *Node) fetchChunked(ctx obs.SpanContext, node int, source, vmName string, group, chunkSize int) ([]byte, uint64, int, error) {
	req := func(index int) *wire.Message {
		return &wire.Message{
			Type: wire.MsgReadChunk, Text: source, VM: vmName, Group: int32(group),
			Arg:   uint64(index)<<32 | uint64(uint32(chunkSize)),
			Trace: ctx.Trace, Span: ctx.Span,
		}
	}
	// Chunk 0 reveals the stream shape (count, total) and the epoch.
	first, err := n.callPeer(node, req(0))
	if err != nil {
		return nil, 0, 0, err
	}
	if first.Type != wire.MsgReadChunkOK {
		return nil, 0, 0, fmt.Errorf("runtime: unexpected reply %v to read-chunk", first.Type)
	}
	c0, err := wire.DecodeChunk(first.Payload)
	if err != nil {
		return nil, 0, 0, err
	}
	epoch, arg := first.Epoch, int(first.Arg)
	asm := &wire.Assembler{Alloc: bufpool.Get}
	abandon := func(e error) ([]byte, uint64, int, error) {
		if b := asm.Buffer(); b != nil {
			bufpool.Put(b)
		}
		return nil, 0, 0, e
	}
	if err := asm.Add(c0); err != nil {
		return abandon(err)
	}
	var mu sync.Mutex
	if err := parallelDo(int(c0.Count)-1, chunkPipelineWidth, func(i int) error {
		resp, err := n.callPeer(node, req(i+1))
		if err != nil {
			return err
		}
		c, err := wire.DecodeChunk(resp.Payload)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return asm.Add(c)
	}); err != nil {
		return abandon(err)
	}
	blk, err := asm.Bytes()
	if err != nil {
		return abandon(err)
	}
	return blk, epoch, arg, nil
}

// onReconstruct runs on a surviving parity node: it pulls survivor images
// and the group's alive parity blocks (its own plus peers'), solves the
// erasure system, and returns the requested lost VM's committed image.
// Survivor images and parity blocks are fetched concurrently.
func (n *Node) onReconstruct(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	var cfg reconstructConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	n.mu.Lock()
	ks, ok := n.keepers[cfg.Group]
	id, cs := n.id, n.chunkSize
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runtime: node %d keeps no parity for group %d", id, cfg.Group)
	}
	type fetch struct {
		member string // survivor image when non-empty
		parity int    // parity index otherwise
		node   int
	}
	var fetches []fetch
	for member, nodeID := range cfg.Survivors {
		fetches = append(fetches, fetch{member: member, node: nodeID})
	}
	for idx, nodeID := range cfg.ParityPeers {
		fetches = append(fetches, fetch{parity: idx, node: nodeID, member: ""})
	}
	var mu sync.Mutex
	survivors := map[string][]byte{}
	parityBlocks := map[int][]byte{}
	var epoch uint64
	if err := parallelDo(len(fetches), 0, func(i int) error {
		f := fetches[i]
		if f.member != "" {
			var img []byte
			var e uint64
			var err error
			if cs > 0 {
				img, e, _, err = n.fetchChunked(ctx, f.node, "image", f.member, 0, cs)
			} else {
				var reply *wire.Message
				reply, err = n.callPeer(f.node, &wire.Message{Type: wire.MsgGetImage, VM: f.member, Trace: ctx.Trace, Span: ctx.Span})
				if err == nil {
					img, e = reply.Payload, reply.Epoch
				}
			}
			if err != nil {
				return fmt.Errorf("runtime: fetching survivor %q from node %d: %w", f.member, f.node, err)
			}
			mu.Lock()
			survivors[f.member] = img
			epoch = e
			mu.Unlock()
			return nil
		}
		var blk []byte
		var gotIdx int
		var err error
		if cs > 0 {
			blk, _, gotIdx, err = n.fetchChunked(ctx, f.node, "parity", "", cfg.Group, cs)
		} else {
			var pb *wire.Message
			pb, err = n.callPeer(f.node, &wire.Message{Type: wire.MsgGetParity, Group: int32(cfg.Group), Trace: ctx.Trace, Span: ctx.Span})
			if err == nil {
				blk, gotIdx = pb.Payload, int(pb.Arg)
			}
		}
		if err != nil {
			return fmt.Errorf("runtime: fetching parity[%d] from node %d: %w", f.parity, f.node, err)
		}
		if gotIdx != f.parity {
			return fmt.Errorf("runtime: node %d served parity[%d], wanted [%d]", f.node, gotIdx, f.parity)
		}
		mu.Lock()
		parityBlocks[f.parity] = blk
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	ks.mu.Lock()
	memberNames := ks.keeper.Members()
	ks.mu.Unlock()
	rebuilt, err := core.ReconstructMembers(cfg.Tolerance, memberNames, survivors, parityBlocks, cfg.AllLost)
	if cs > 0 {
		// The chunked fetches returned pooled buffers; ReconstructMembers
		// copied them into its shards, so they can go back to the pool.
		for _, img := range survivors {
			bufpool.Put(img)
		}
		for _, blk := range parityBlocks {
			bufpool.Put(blk)
		}
	}
	if err != nil {
		return nil, err
	}
	img, ok := rebuilt[cfg.LostVM]
	if !ok {
		return nil, fmt.Errorf("runtime: reconstruction did not yield %q", cfg.LostVM)
	}
	return &wire.Message{Type: wire.MsgReconstructOK, VM: cfg.LostVM, Epoch: epoch, Payload: img}, nil
}

// onInstallChunk stages one chunk of an incoming VM image. The image lands
// via MsgInstall with Arg=1 (and no payload) once every chunk has arrived;
// exact re-deliveries are idempotent inside the assembler.
func (n *Node) onInstallChunk(req *wire.Message) (*wire.Message, error) {
	c, err := wire.DecodeChunk(req.Payload)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	asm, ok := n.installs[req.VM]
	if !ok {
		asm = &wire.Assembler{Alloc: bufpool.Get}
		n.installs[req.VM] = asm
	}
	err = asm.Add(c)
	n.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgInstallChunkOK, VM: req.VM}, nil
}

// onInstall adopts a VM: monolithically (image in Payload), or — when Arg is
// 1 — from the chunk stream previously staged by MsgInstallChunk.
func (n *Node) onInstall(req *wire.Message) (*wire.Message, error) {
	var cfg installConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	img := req.Payload
	var pooled []byte
	if req.Arg == 1 {
		n.mu.Lock()
		asm, ok := n.installs[cfg.Name]
		delete(n.installs, cfg.Name)
		n.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("runtime: install of %q has no staged chunk stream", cfg.Name)
		}
		var err error
		if img, err = asm.Bytes(); err != nil {
			return nil, err
		}
		pooled = img
	}
	m, err := vm.NewMachine(cfg.Name, cfg.Pages, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	mem, err := core.NewMember(m)
	if err != nil {
		return nil, err
	}
	if err := mem.RestoreImage(img, cfg.Epoch); err != nil {
		return nil, err
	}
	if pooled != nil {
		bufpool.Put(pooled) // RestoreImage copied it
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.members[cfg.Name]; dup {
		return nil, fmt.Errorf("runtime: node %d already hosts %q", n.id, cfg.Name)
	}
	n.members[cfg.Name] = &memberState{
		mem:      mem,
		workload: newWorkload(cfg.Workload, cfg.Seed),
		cfg:      cfg.VMConfig,
	}
	return &wire.Message{Type: wire.MsgInstallOK, VM: cfg.Name}, nil
}

func (n *Node) onChecksum(req *wire.Message) (*wire.Message, error) {
	ms, err := n.member(req.VM)
	if err != nil {
		return nil, err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	h := fnv.New64a()
	h.Write(ms.mem.CommittedImage())
	return &wire.Message{Type: wire.MsgChecksumOK, VM: req.VM, Arg: h.Sum64(), Epoch: ms.mem.Epoch()}, nil
}

func (n *Node) onRollback(req *wire.Message) (*wire.Message, error) {
	members := n.snapshotMembers()
	n.mu.Lock()
	fan := n.fanout
	reg := n.registry
	n.mu.Unlock()
	if err := parallelDo(len(members), fan, func(i int) error {
		ms := members[i]
		ms.mu.Lock()
		defer ms.mu.Unlock()
		// An uncommitted prepared capture must be undone first so the
		// committed image returns to the last COMMIT-ed epoch; then the
		// machine state rolls back to it.
		if ms.staged != nil {
			if err := ms.mem.UndoCapture(ms.staged); err != nil {
				return err
			}
			releaseDelta(ms.staged)
			ms.staged = nil
		}
		// Rollback rewinds the committed image, so every cached page hash is
		// for content that no longer exists.
		if dropped := ms.dedupInvalidate(); dropped > 0 {
			n.statsMu.Lock()
			n.stats.DedupInvalidations += dropped
			n.statsMu.Unlock()
			reg.Counter("dvdc_dedup_invalidations_total").Add(dropped)
		}
		return ms.mem.Rollback()
	}); err != nil {
		return nil, err
	}
	for _, ks := range n.snapshotKeepers() {
		ks.mu.Lock()
		ks.staged = map[string]*core.Delta{}
		ks.dropPending()
		ks.mu.Unlock()
	}
	return &wire.Message{Type: wire.MsgRollbackOK}, nil
}

// onRebuildKeeper makes this node the holder of one parity block of a group
// by pulling every member's committed image (concurrently) and folding them.
func (n *Node) onRebuildKeeper(ctx obs.SpanContext, req *wire.Message) (*wire.Message, error) {
	var cfg rebuildKeeperConfig
	if err := decodeJSON(req.Text, &cfg); err != nil {
		return nil, err
	}
	n.mu.Lock()
	cs := n.chunkSize
	n.mu.Unlock()
	var mu sync.Mutex
	initial := map[string][]byte{}
	if err := parallelDo(len(cfg.Members), 0, func(i int) error {
		member := cfg.Members[i]
		nodeID, ok := cfg.MemberNodes[member]
		if !ok {
			return fmt.Errorf("runtime: rebuild keeper: no node for member %q", member)
		}
		var img []byte
		var err error
		if cs > 0 {
			img, _, _, err = n.fetchChunked(ctx, nodeID, "image", member, 0, cs)
		} else {
			var reply *wire.Message
			reply, err = n.callPeer(nodeID, &wire.Message{Type: wire.MsgGetImage, VM: member, Trace: ctx.Trace, Span: ctx.Span})
			if err == nil {
				img = reply.Payload
			}
		}
		if err != nil {
			return fmt.Errorf("runtime: rebuild keeper: fetch %q: %w", member, err)
		}
		mu.Lock()
		initial[member] = img
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	k, err := core.NewMKeeper(cfg.Group, cfg.ParityIdx, cfg.Tolerance, initial)
	if cs > 0 {
		// NewMKeeper folds the images into a fresh parity block without
		// retaining them; the pooled fetch buffers can go back.
		for _, img := range initial {
			bufpool.Put(img)
		}
	}
	if err != nil {
		return nil, err
	}
	if err := k.SetEpochs(cfg.Epochs); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.keepers[cfg.Group] = newKeeperState(k, cfg.KeeperConfig)
	return &wire.Message{Type: wire.MsgRebuildKeeperOK, Group: int32(cfg.Group)}, nil
}

// onEvict removes a hosted VM and returns its committed image and protocol
// epoch so the coordinator can install it elsewhere. The VM must be
// quiescent (no dirty pages, no staged delta): rebalancing runs immediately
// after a commit, so live state equals committed state and the move is a
// plain image transfer.
func (n *Node) onEvict(req *wire.Message) (*wire.Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms, ok := n.members[req.VM]
	if !ok {
		return nil, fmt.Errorf("runtime: node %d does not host %q", n.id, req.VM)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.staged != nil {
		return nil, fmt.Errorf("runtime: %q has a staged delta; commit or abort first", req.VM)
	}
	if ms.mem.Machine().DirtyCount() != 0 {
		return nil, fmt.Errorf("runtime: %q has uncommitted dirty pages; checkpoint first", req.VM)
	}
	img := ms.mem.CommittedImage()
	epoch := ms.mem.Epoch()
	delete(n.members, req.VM)
	return &wire.Message{Type: wire.MsgEvictOK, VM: req.VM, Epoch: epoch, Payload: img}, nil
}

// onStats serves the node's protocol counters.
func (n *Node) onStats(req *wire.Message) (*wire.Message, error) {
	n.statsMu.Lock()
	st := n.stats
	n.statsMu.Unlock()
	text, err := encodeJSON(st)
	if err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgStatsOK, Text: text}, nil
}

// setParity points hosted members of one group at a new parity node for one
// parity block (after a keeper was re-homed during recovery).
func (n *Node) setParity(group, idx, node int) error {
	n.mu.Lock()
	reg := n.registry
	n.mu.Unlock()
	for _, ms := range n.snapshotMembers() {
		ms.mu.Lock()
		if ms.cfg.Group != group {
			ms.mu.Unlock()
			continue
		}
		if idx < 0 || idx >= len(ms.cfg.ParityNodes) {
			name := ms.cfg.Name
			ms.mu.Unlock()
			return fmt.Errorf("runtime: parity index %d out of range for %q", idx, name)
		}
		ms.cfg.ParityNodes[idx] = node
		// A re-homed parity block was rebuilt from committed images; the dedup
		// cache's notion of "already folded" no longer matches what the new
		// keeper saw, so the next epoch must ship every dirty page.
		if dropped := ms.dedupInvalidate(); dropped > 0 {
			n.statsMu.Lock()
			n.stats.DedupInvalidations += dropped
			n.statsMu.Unlock()
			reg.Counter("dvdc_dedup_invalidations_total").Add(dropped)
		}
		ms.mu.Unlock()
	}
	return nil
}

// onSetParity applies a single reassignment. Epoch carries the parity
// index, Arg the new node id.
func (n *Node) onSetParity(req *wire.Message) (*wire.Message, error) {
	if err := n.setParity(int(req.Group), int(req.Epoch), int(req.Arg)); err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.MsgSetParityOK, Group: req.Group}, nil
}

// onSetParityBatch applies a whole recovery's worth of parity reassignments
// in one round trip (JSON list of parityUpdate in Text).
func (n *Node) onSetParityBatch(req *wire.Message) (*wire.Message, error) {
	var updates []parityUpdate
	if err := decodeJSON(req.Text, &updates); err != nil {
		return nil, fmt.Errorf("runtime: bad set-parity batch: %w", err)
	}
	for _, u := range updates {
		if err := n.setParity(u.Group, u.Idx, u.Node); err != nil {
			return nil, err
		}
	}
	return &wire.Message{Type: wire.MsgSetParityBatchOK, Arg: uint64(len(updates))}, nil
}

// SetPeers updates the peer address map (coordinator uses it after
// recovery re-homes responsibilities; addresses of dead nodes stay mapped
// but are never dialed again).
func (n *Node) SetPeers(peers map[int]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = peers
	for id, p := range n.pools {
		if addr, ok := peers[id]; !ok || addr != p.Addr() {
			p.Close()
			delete(n.pools, id)
		}
	}
}
