package runtime

import (
	"testing"

	"dvdc/internal/cluster"
)

// testCluster spins up one node daemon per layout node on loopback and a
// coordinator over them.
func testCluster(t *testing.T, layout *cluster.Layout) (*Coordinator, []*Node) {
	t.Helper()
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	coord, err := NewCoordinator(layout, addrs, 16, 64, 12345)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}
	return coord, nodes
}

func paperLayout(t *testing.T) *cluster.Layout {
	t.Helper()
	l, err := cluster.Paper12VM()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSetupAndCheckpointRounds(t *testing.T) {
	coord, _ := testCluster(t, paperLayout(t))
	for round := 0; round < 3; round++ {
		if err := coord.Step(50); err != nil {
			t.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if coord.Epoch() != 3 {
		t.Errorf("epoch = %d, want 3", coord.Epoch())
	}
	sums, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 12 {
		t.Errorf("checksums for %d VMs, want 12", len(sums))
	}
}

func TestKillNodeAndRecoverRestoresCommittedState(t *testing.T) {
	for victim := 0; victim < 4; victim++ {
		coord, nodes := testCluster(t, paperLayout(t))
		if err := coord.Step(80); err != nil {
			t.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		committed, err := coord.Checksums()
		if err != nil {
			t.Fatal(err)
		}
		// Uncommitted churn: must disappear after recovery's rollback.
		if err := coord.Step(40); err != nil {
			t.Fatal(err)
		}

		nodes[victim].Close() // node dies with 3 VMs and 1 parity block
		plan, err := coord.RecoverNode(victim)
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if len(plan.Steps) != 4 {
			t.Errorf("victim %d: %d recovery steps, want 4", victim, len(plan.Steps))
		}

		after, err := coord.Checksums()
		if err != nil {
			t.Fatal(err)
		}
		for vmName, want := range committed {
			if after[vmName] != want {
				t.Errorf("victim %d: VM %q checksum changed after recovery", victim, vmName)
			}
		}
	}
}

func TestClusterKeepsWorkingAfterRecovery(t *testing.T) {
	coord, nodes := testCluster(t, paperLayout(t))
	if err := coord.Step(30); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	nodes[1].Close()
	if _, err := coord.RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	// Post-recovery the cluster must run more rounds, including parity
	// updates to re-homed keepers.
	for round := 0; round < 3; round++ {
		if err := coord.Step(30); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if coord.Epoch() != 4 {
		t.Errorf("epoch = %d, want 4", coord.Epoch())
	}
}

func TestSecondRecoveryAfterRepairlessFailureFails(t *testing.T) {
	coord, nodes := testCluster(t, paperLayout(t))
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	nodes[0].Close()
	if _, err := coord.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	// The 4-node layout recovered degraded; a second node death now exceeds
	// tolerance for at least one group and planning must fail.
	nodes[2].Close()
	if _, err := coord.RecoverNode(2); err == nil {
		t.Error("second failure should be unrecoverable (degraded single parity)")
	}
}

func TestRecoveryWithSpareNodesStaysOrthogonal(t *testing.T) {
	layout, err := cluster.BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	coord, nodes := testCluster(t, layout)
	if err := coord.Step(40); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	committed, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	nodes[2].Close()
	plan, err := coord.RecoverNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degraded {
		t.Error("recovery should preserve orthogonality with spare nodes")
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for vmName, want := range committed {
		if after[vmName] != want {
			t.Errorf("VM %q state lost", vmName)
		}
	}
	// Sequential second failure must also recover (groups are small).
	if err := coord.Step(20); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	nodes[5].Close()
	if _, err := coord.RecoverNode(5); err != nil {
		t.Fatalf("second sequential failure: %v", err)
	}
}

func TestCheckpointAfterAbortedRoundStillConsistent(t *testing.T) {
	coord, nodes := testCluster(t, paperLayout(t))
	if err := coord.Step(30); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	committed, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	// Kill a node, then attempt a checkpoint: prepare fails, round aborts.
	if err := coord.Step(10); err != nil {
		t.Fatal(err)
	}
	nodes[3].Close()
	if err := coord.Checkpoint(); err == nil {
		t.Fatal("checkpoint with a dead node should fail")
	}
	if coord.Epoch() != 1 {
		t.Errorf("epoch advanced to %d despite failed round", coord.Epoch())
	}
	// Recovery must land the cluster back on the committed epoch.
	if _, err := coord.RecoverNode(3); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for vmName, want := range committed {
		if after[vmName] != want {
			t.Errorf("VM %q diverged through abort+recovery", vmName)
		}
	}
	// And further rounds succeed.
	if err := coord.Step(10); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	layout := paperLayout(t)
	if _, err := NewCoordinator(nil, nil, 4, 64, 1); err == nil {
		t.Error("nil layout should fail")
	}
	if _, err := NewCoordinator(layout, map[int]string{}, 4, 64, 1); err == nil {
		t.Error("missing addresses should fail")
	}
	addrs := map[int]string{0: "a", 1: "b", 2: "c", 3: "d"}
	if _, err := NewCoordinator(layout, addrs, 0, 64, 1); err == nil {
		t.Error("bad geometry should fail")
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	coord, _ := testCluster(t, paperLayout(t))
	_ = coord
	// Exercise the codec directly with a synthetic delta.
	d := sampleDelta()
	got, err := decodeDelta(encodeDelta(d, false))
	if err != nil {
		t.Fatal(err)
	}
	if got.VMID != d.VMID || got.Epoch != d.Epoch || len(got.Pages) != len(d.Pages) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range d.Pages {
		if got.Pages[i].Index != d.Pages[i].Index || string(got.Pages[i].Data) != string(d.Pages[i].Data) {
			t.Fatalf("page %d differs", i)
		}
	}
	// Truncations rejected.
	enc := encodeDelta(d, false)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeDelta(enc[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}
