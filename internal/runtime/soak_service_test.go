package runtime

import (
	"testing"

	"dvdc/internal/chaos"
	"dvdc/internal/obs"
	"dvdc/internal/service"
)

// TestSoakServiceReconcileUnderFault is the acceptance gate for the
// declarative control plane under fault: the full chaos soak (armed one-shot
// faults, transient partitions, Poisson node kills) driven entirely through
// service requests. On a kill round the checkpoint request's first attempt
// fails against the dead victims, enters backoff, and the reconciler runs the
// queued restore request's repair cycle before the retry commits — every
// round RunSoak asserts both requests reached a terminal phase with current
// observed generations, recovery Succeeded, the cluster's state bit-matches
// the shadow model, and the round trace is rooted under a reconcile span.
//
// Same-seed digest equality is deliberately NOT asserted in service mode:
// the number of checkpoint attempts a kill round burns depends on whether the
// restore request was enqueued before or after the first attempt's backoff
// expired, and extra aborted attempts shift the (informational) shipped-bytes
// tallies. Convergence and state invariants hold regardless.
func TestSoakServiceReconcileUnderFault(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := SoakConfig{
		Layout:        paperLayout(t),
		Rounds:        8,
		StepsPerRound: 25,
		Seed:          424242,
		ArmPerRound:   2,
		PPartition:    0.2,
		KillMTBF:      120,
		Service:       true,
		Registry:      reg,
		// Kill the controller twice mid-soak: the journal under a temp state
		// dir must carry each interrupted round's requests across the restart,
		// and every shadow/convergence assertion below stays in force.
		ControllerRestarts: 2,
		StateDir:           t.TempDir(),
	}
	// The kill plan is a pure function of the seed; the reconcile-under-fault
	// path only exists if this seed actually schedules kills.
	plan, err := chaos.PlanPoissonKills(cfg.Layout.Nodes, cfg.Rounds, cfg.KillMTBF, 10, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalKills() == 0 {
		t.Fatalf("seed %d schedules no kills; pick a seed that does", cfg.Seed)
	}

	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("service soak failed: %v\nfault log:\n%s", err, faultLines(res))
	}
	if len(res.Rounds) != cfg.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(res.Rounds), cfg.Rounds)
	}
	if res.Epoch == 0 {
		t.Fatal("service soak committed no epochs")
	}
	if res.Counters["kill"] == 0 || res.Counters["restart"] == 0 {
		t.Errorf("kill/restart never exercised: counters %v", res.Counters)
	}

	killRounds, reconcileRetries := 0, 0
	for _, rr := range res.Rounds {
		if len(rr.Kills) > 0 {
			killRounds++
		}
		reconcileRetries += rr.Retries
	}
	if killRounds == 0 {
		t.Fatal("no round recorded a kill despite a non-empty kill plan")
	}
	// Every kill round burns at least one checkpoint attempt against the dead
	// victims before the restore heals the cluster.
	if reconcileRetries == 0 {
		t.Error("kill rounds recorded no reconcile retries: the fail/backoff/recover path never ran")
	}

	// The control plane's metrics must account for the harness's submissions:
	// one checkpoint request per round, one restore request per kill round.
	ckSubmitted := reg.Counter("dvdc_service_requests_total",
		"tenant", "soak", "kind", string(service.KindCheckpoint)).Value()
	if ckSubmitted != int64(cfg.Rounds) {
		t.Errorf("dvdc_service_requests_total{kind=Checkpoint} = %d, want %d", ckSubmitted, cfg.Rounds)
	}
	rsSubmitted := reg.Counter("dvdc_service_requests_total",
		"tenant", "soak", "kind", string(service.KindRestore)).Value()
	if rsSubmitted != int64(killRounds) {
		t.Errorf("dvdc_service_requests_total{kind=Restore} = %d, want %d", rsSubmitted, killRounds)
	}
	if n := reg.Counter("dvdc_service_reconciles_total",
		"result", "succeeded", "kind", string(service.KindCheckpoint)).Value(); n == 0 {
		t.Error("dvdc_service_reconciles_total{result=succeeded,kind=Checkpoint} never incremented")
	}
	if n := reg.Counter("dvdc_service_retries_total", "tenant", "soak").Value(); n == 0 {
		t.Error("dvdc_service_retries_total{tenant=soak} never incremented despite kill rounds")
	}
	if n := reg.Counter("dvdc_service_admission_rejected_total",
		"tenant", "soak", "reason", "quota").Value(); n != 0 {
		t.Errorf("harness submissions hit the quota gate %d times", n)
	}

	// Durability: both scheduled controller restarts happened, every mutation
	// went through the journal, and the batched fsync policy actually batched.
	if res.ControllerRestarts != cfg.ControllerRestarts {
		t.Errorf("performed %d controller restarts, want %d", res.ControllerRestarts, cfg.ControllerRestarts)
	}
	appends := reg.Counter("dvdc_service_journal_appends_total").Value()
	if appends == 0 {
		t.Error("dvdc_service_journal_appends_total never incremented despite a durable soak")
	}
	fsyncs := reg.Counter("dvdc_service_journal_fsyncs_total").Value()
	if fsyncs == 0 || fsyncs >= appends {
		t.Errorf("journal fsyncs = %d for %d appends, want 0 < fsyncs < appends (batching)", fsyncs, appends)
	}
}

// TestSoakServiceChunkFaults runs the service-driven soak with the chunked
// data path forced small and one-shot chunk-frame faults armed every round:
// the reconciler's checkpoint attempts must absorb faults landing on
// individual MsgDeltaChunk shipments (pool retries + keeper-side dedup) while
// kills still route through the restore request's repair cycle.
func TestSoakServiceChunkFaults(t *testing.T) {
	cfg := SoakConfig{
		Layout:        paperLayout(t),
		Rounds:        8,
		StepsPerRound: 25,
		Seed:          31337,
		ChunkSize:     256,
		ChunkFaults:   2,
		ArmPerRound:   1,
		PPartition:    0.2,
		KillMTBF:      150,
		Service:       true,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("service soak failed: %v\nfault log:\n%s", err, faultLines(res))
	}
	chunkFaults := 0
	for _, f := range res.FaultLog {
		if f.Armed && f.Pair.Src != chaos.Coordinator {
			chunkFaults++
		}
	}
	if chunkFaults == 0 {
		t.Error("no armed chunk-frame fault fired under the service-driven soak")
	}
}
