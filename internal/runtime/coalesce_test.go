package runtime

import (
	"reflect"
	"testing"
)

// TestCoalesceRanges pins the merge semantics the commit path depends on:
// CommitPendingRanges XORs every byte of every range into the parity image,
// so overlapping ranges from different members' chunks would XOR those bytes
// twice and corrupt the parity. The output must be sorted, disjoint runs;
// adjacent ranges may merge (harmless — the union covers the same bytes).
func TestCoalesceRanges(t *testing.T) {
	cases := []struct {
		name string
		in   [][2]int
		want [][2]int
	}{
		{"nil", nil, nil},
		{"empty", [][2]int{}, [][2]int{}},
		{"single", [][2]int{{3, 9}}, [][2]int{{3, 9}}},
		{"disjoint sorted", [][2]int{{0, 4}, {8, 12}}, [][2]int{{0, 4}, {8, 12}}},
		{"disjoint unsorted", [][2]int{{8, 12}, {0, 4}}, [][2]int{{0, 4}, {8, 12}}},
		{"adjacent", [][2]int{{0, 4}, {4, 8}}, [][2]int{{0, 8}}},
		{"overlapping", [][2]int{{0, 6}, {4, 10}}, [][2]int{{0, 10}}},
		{"contained", [][2]int{{0, 10}, {2, 5}}, [][2]int{{0, 10}}},
		{"duplicate", [][2]int{{3, 7}, {3, 7}}, [][2]int{{3, 7}}},
		{"chain collapses", [][2]int{{6, 9}, {0, 4}, {3, 7}, {8, 12}}, [][2]int{{0, 12}}},
		{"empty range glues neighbors", [][2]int{{5, 5}, {0, 5}, {5, 9}}, [][2]int{{0, 9}}},
		{
			"chunk-grid shuffle",
			[][2]int{{512, 768}, {0, 256}, {256, 512}, {1024, 1280}},
			[][2]int{{0, 768}, {1024, 1280}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := coalesceRanges(append([][2]int(nil), tc.in...))
			// nil and empty are interchangeable: both mean "no bytes touched".
			if (len(got) != 0 || len(tc.want) != 0) && !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("coalesceRanges(%v) = %v, want %v", tc.in, got, tc.want)
			}
			// The invariants CommitPendingRanges relies on, stated directly:
			// sorted starts, strictly disjoint interiors.
			for i := 1; i < len(got); i++ {
				if got[i][0] < got[i-1][1] {
					t.Fatalf("ranges %v and %v overlap", got[i-1], got[i])
				}
			}
		})
	}
}
