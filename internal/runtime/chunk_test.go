package runtime

import (
	"bytes"
	"testing"

	"dvdc/internal/checkpoint"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/transport"
	"dvdc/internal/wire"
)

// chunkedCluster is testCluster with data-path options applied before Setup.
func chunkedCluster(t *testing.T, layout *cluster.Layout, chunkSize int, compress bool) (*Coordinator, []*Node) {
	t.Helper()
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	coord, err := NewCoordinator(layout, addrs, 16, 64, 12345)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coord.SetChunkSize(chunkSize)
	coord.SetCompress(compress)
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}
	return coord, nodes
}

// TestChunkedRoundMatchesMonolithic drives two identical clusters — one on
// the legacy monolithic data path, one chunked with a chunk size small
// enough that every delta splits — through the same workload and asserts
// bit-identical committed state, matching epochs, and that the chunk
// counters moved only on the chunked cluster.
func TestChunkedRoundMatchesMonolithic(t *testing.T) {
	for _, compress := range []bool{false, true} {
		mono, _ := chunkedCluster(t, paperLayout(t), -1, compress)
		chunked, _ := chunkedCluster(t, paperLayout(t), 256, compress)
		for round := 0; round < 3; round++ {
			for _, c := range []*Coordinator{mono, chunked} {
				if err := c.Step(50); err != nil {
					t.Fatal(err)
				}
				if err := c.Checkpoint(); err != nil {
					t.Fatalf("compress=%v round %d: %v", compress, round, err)
				}
			}
		}
		mstates, err := mono.VMStates()
		if err != nil {
			t.Fatal(err)
		}
		cstates, err := chunked.VMStates()
		if err != nil {
			t.Fatal(err)
		}
		for name, ms := range mstates {
			cs, ok := cstates[name]
			if !ok {
				t.Fatalf("chunked cluster lost %q", name)
			}
			if ms != cs {
				t.Errorf("compress=%v: %q diverges: mono %+v chunked %+v", compress, name, ms, cs)
			}
		}
		if st := mono.RoundStats(); st.ChunksShipped != 0 {
			t.Errorf("monolithic round reported %d chunks", st.ChunksShipped)
		}
		if st := chunked.RoundStats(); st.ChunksShipped == 0 {
			t.Error("chunked round reported no chunks shipped")
		}
		var sent, received int64
		for n := 0; n < chunked.Layout().Nodes; n++ {
			st, err := chunked.NodeStats(n)
			if err != nil {
				t.Fatal(err)
			}
			sent += st.ChunksSent
			received += st.ChunksReceived
		}
		if sent == 0 || received == 0 {
			t.Errorf("chunk counters did not move: sent=%d received=%d", sent, received)
		}
	}
}

// TestChunkedRecoveryAndRebalance exercises the full failure lifecycle on
// the chunked data path (which also drives reconstruction fetches, keeper
// rebuilds, and installs through the chunk protocol): kill a node, recover,
// repair, rebalance, and keep checkpointing — committed state must match
// what the monolithic path would produce.
func TestChunkedRecoveryAndRebalance(t *testing.T) {
	coord, nodes := chunkedCluster(t, paperLayout(t), 512, false)
	if err := coord.Step(80); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	committed, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	victim := 1
	addr := nodes[victim].Addr()
	nodes[victim].Close()
	if _, err := coord.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for name, sum := range committed {
		if after[name] != sum {
			t.Errorf("%q checksum changed across chunked recovery", name)
		}
	}
	// Repair the node on its old address and rebalance over the chunked path.
	rn, err := NewNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rn.Close() })
	if err := coord.Repair(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Step(40); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateChunkFoldsOnce proves keeper-side idempotency: delivering the
// same chunk frame twice folds it exactly once (a second XOR fold would
// cancel the first), with the duplicate acknowledged and counted.
func TestDuplicateChunkFoldsOnce(t *testing.T) {
	layout := paperLayout(t)
	coord, _ := chunkedCluster(t, layout, 0, false)
	const pages, pageSize = 16, 64

	// Pick group 0's first member and first parity node.
	g := layout.Groups[0]
	member := g.Members[0]
	parityNode := g.ParityNodes[0]

	// A reference keeper over the same (all-zero) initial images.
	initial := map[string][]byte{}
	for _, m := range g.Members {
		initial[m] = make([]byte, pages*pageSize)
	}
	ref, err := core.NewMKeeper(0, 0, layout.Tolerance, initial)
	if err != nil {
		t.Fatal(err)
	}

	// One two-chunk stream for epoch 1, second chunk sent twice.
	img := pages * pageSize
	data := make([]byte, img/2)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	chunks := []wire.Chunk{
		{Offset: 0, Total: uint64(img), Index: 0, Count: 2, RawLen: uint32(len(data)), Data: data},
		{Offset: uint64(img / 2), Total: uint64(img), Index: 1, Count: 2, RawLen: uint32(len(data)), Data: data},
	}
	conn, err := transport.Dial(coord.addrs[parityNode])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(c *wire.Chunk) {
		t.Helper()
		resp, err := conn.Call(&wire.Message{
			Type: wire.MsgDeltaChunk, Epoch: 1, Group: 0, VM: member,
			Payload: wire.EncodeChunk(c),
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != wire.MsgDeltaChunkOK {
			t.Fatalf("reply %v", resp.Type)
		}
	}
	send(&chunks[0])
	send(&chunks[1])
	send(&chunks[1]) // exact re-delivery
	if resp, err := conn.Call(&wire.Message{Type: wire.MsgCommit, Epoch: 1}); err != nil || resp.Type != wire.MsgCommitOK {
		t.Fatalf("commit: %v %v", resp, err)
	}

	// Reference folds each chunk once.
	pendingBuf := make([]byte, img)
	for _, c := range chunks {
		if err := ref.FoldInto(pendingBuf, member, int(c.Offset), c.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.CommitPending(pendingBuf, map[string]uint64{member: 1}); err != nil {
		t.Fatal(err)
	}

	pb, err := conn.Call(&wire.Message{Type: wire.MsgGetParity, Group: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Payload, ref.Parity()) {
		t.Fatal("duplicate chunk changed parity: double fold detected")
	}
	st, err := coord.NodeStats(parityNode)
	if err != nil {
		t.Fatal(err)
	}
	if st.DupChunks != 1 {
		t.Errorf("DupChunks = %d, want 1", st.DupChunks)
	}
	if st.ChunksReceived != 2 {
		t.Errorf("ChunksReceived = %d, want 2", st.ChunksReceived)
	}
}

// TestReadChunkServesImagesAndParity drives the chunked read protocol
// directly: image and parity reads must reassemble to exactly what the
// monolithic MsgGetImage / MsgGetParity return.
func TestReadChunkServesImagesAndParity(t *testing.T) {
	layout := paperLayout(t)
	coord, _ := chunkedCluster(t, layout, 0, false)
	if err := coord.Step(60); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	v := layout.VMs[0]
	conn, err := transport.Dial(coord.addrs[v.Node])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	whole, err := conn.Call(&wire.Message{Type: wire.MsgGetImage, VM: v.Name})
	if err != nil {
		t.Fatal(err)
	}
	const cs = 300 // deliberately not a divisor of the image size
	asm := &wire.Assembler{}
	count := wire.ChunkCount(len(whole.Payload), cs)
	for i := 0; i < count; i++ {
		resp, err := conn.Call(&wire.Message{
			Type: wire.MsgReadChunk, Text: "image", VM: v.Name,
			Arg: uint64(i)<<32 | cs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Epoch != whole.Epoch {
			t.Fatalf("chunk read epoch %d, image epoch %d", resp.Epoch, whole.Epoch)
		}
		c, err := wire.DecodeChunk(resp.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := asm.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := asm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, whole.Payload) {
		t.Fatal("chunked image read diverges from monolithic")
	}
	// Out-of-range index and unknown source must error cleanly.
	if _, err := conn.Call(&wire.Message{Type: wire.MsgReadChunk, Text: "image", VM: v.Name, Arg: uint64(count)<<32 | cs}); err == nil {
		t.Fatal("out-of-range chunk index accepted")
	}
	if _, err := conn.Call(&wire.Message{Type: wire.MsgReadChunk, Text: "disk", VM: v.Name, Arg: cs}); err == nil {
		t.Fatal("unknown read source accepted")
	}

	g := layout.Groups[v.Group]
	pconn, err := transport.Dial(coord.addrs[g.ParityNodes[0]])
	if err != nil {
		t.Fatal(err)
	}
	defer pconn.Close()
	pwhole, err := pconn.Call(&wire.Message{Type: wire.MsgGetParity, Group: int32(v.Group)})
	if err != nil {
		t.Fatal(err)
	}
	pasm := &wire.Assembler{}
	pcount := wire.ChunkCount(len(pwhole.Payload), cs)
	for i := 0; i < pcount; i++ {
		resp, err := pconn.Call(&wire.Message{
			Type: wire.MsgReadChunk, Text: "parity", Group: int32(v.Group),
			Arg: uint64(i)<<32 | cs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Arg != pwhole.Arg {
			t.Fatalf("parity chunk read index %d, monolithic %d", resp.Arg, pwhole.Arg)
		}
		c, err := wire.DecodeChunk(resp.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := pasm.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	pgot, err := pasm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pgot, pwhole.Payload) {
		t.Fatal("chunked parity read diverges from monolithic")
	}
}

// TestDeltaChunksCoverDelta pins the splitter: chunks must tile exactly the
// delta's dirty bytes at image offsets, within the configured size.
func TestDeltaChunksCoverDelta(t *testing.T) {
	const pages, pageSize = 8, 128
	d := &core.Delta{VMID: "vm", Epoch: 1}
	want := make(map[int]byte)                // image offset -> expected byte
	for _, pi := range []int{0, 1, 2, 5, 7} { // two runs + a tail page
		data := make([]byte, pageSize)
		for j := range data {
			data[j] = byte(pi*31 + j)
			want[pi*pageSize+j] = data[j]
		}
		d.Pages = append(d.Pages, checkpoint.PageRecord{Index: pi, Data: data})
	}
	chunks, release := deltaChunks(d, pageSize, pages*pageSize, 100)
	defer release()
	got := make(map[int]byte)
	for _, c := range chunks {
		if len(c.Data) > 100 {
			t.Fatalf("chunk of %d bytes exceeds chunk size", len(c.Data))
		}
		if int(c.Total) != pages*pageSize {
			t.Fatalf("chunk Total = %d", c.Total)
		}
		for j, b := range c.Data {
			off := int(c.Offset) + j
			if _, dup := got[off]; dup {
				t.Fatalf("offset %d covered twice", off)
			}
			got[off] = b
		}
	}
	if len(got) != len(want) {
		t.Fatalf("chunks cover %d bytes, delta has %d", len(got), len(want))
	}
	for off, b := range want {
		if got[off] != b {
			t.Fatalf("offset %d: got %#x want %#x", off, got[off], b)
		}
	}

	// Empty delta: a single zero-length chunk still carries the shape.
	empty, erel := deltaChunks(&core.Delta{VMID: "vm", Epoch: 2}, pageSize, pages*pageSize, 100)
	defer erel()
	if len(empty) != 1 || empty[0].Count != 1 || empty[0].RawLen != 0 {
		t.Fatalf("empty delta chunks = %+v", empty)
	}
}
