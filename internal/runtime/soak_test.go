package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dvdc/internal/chaos"
	"dvdc/internal/cluster"
	"dvdc/internal/wire"
)

// TestSoakPaperLayoutInvariants runs the full chaos soak on the paper's
// 4-node/12-VM layout: probabilistic corrupt/drop/delay on every link, two
// armed one-shot faults per round, transient partitions, and Poisson node
// kills — with every invariant in RunSoak checked after every round.
func TestSoakPaperLayoutInvariants(t *testing.T) {
	cfg := SoakConfig{
		Layout:        paperLayout(t),
		Rounds:        10,
		StepsPerRound: 30,
		Seed:          424242,
		Chaos:         chaos.Config{PCorrupt: 0.01, PDrop: 0.01, PDelay: 0.05, DelayMin: time.Millisecond, DelayMax: 3 * time.Millisecond},
		ArmPerRound:   2,
		PPartition:    0.2,
		KillMTBF:      120,
	}
	// The kill plan is a pure function of the seed; make sure this seed
	// actually exercises the kill/recover path before trusting the soak.
	plan, err := chaos.PlanPoissonKills(cfg.Layout.Nodes, cfg.Rounds, cfg.KillMTBF, 10, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalKills() == 0 {
		t.Fatalf("seed %d schedules no kills; pick a seed that does", cfg.Seed)
	}

	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("soak failed: %v\nfault log:\n%s", err, faultLines(res))
	}
	if res.Epoch == 0 {
		t.Fatal("soak committed no epochs")
	}
	if res.Counters["kill"] == 0 || res.Counters["restart"] == 0 {
		t.Errorf("kill/restart never exercised: counters %v", res.Counters)
	}
	if len(res.FaultLog) == 0 {
		t.Error("no faults fired across the whole soak")
	}
	killed := false
	for _, rr := range res.Rounds {
		if len(rr.Kills) > 0 {
			killed = true
		}
	}
	if !killed {
		t.Error("no round recorded a kill despite a non-empty kill plan")
	}
}

// TestSoakChunkFaults pins the chunk-level chaos satellite: with the chunked
// data path forced to a small chunk size so every delta splits, one-shot
// drop/corrupt faults aimed at individual MsgDeltaChunk frames fire every
// round — and the cluster must still commit bit-identical state (RunSoak
// checks every VM against the shadow model after each round). The node pools
// absorb the severed connection with a retry, and the keeper-side stream
// dedup keeps the re-sent chunks from double-folding.
func TestSoakChunkFaults(t *testing.T) {
	for _, seed := range []int64{424242, 31337} {
		cfg := SoakConfig{
			Layout:        paperLayout(t),
			Rounds:        8,
			StepsPerRound: 25,
			Seed:          seed,
			ChunkSize:     256, // several chunks per delta at the 16x64B geometry
			ChunkFaults:   2,
			ArmPerRound:   1,
			PPartition:    0.2,
			KillMTBF:      150,
		}
		res, err := RunSoak(cfg)
		if err != nil {
			t.Fatalf("seed %d: soak failed: %v\nfault log:\n%s", seed, err, faultLines(res))
		}
		chunkFaults := 0
		for _, f := range res.FaultLog {
			// The only node-to-node armed faults in this config are the
			// chunk-frame ones; coordinator-pair arms have Src == Coordinator.
			if f.Armed && f.Pair.Src != chaos.Coordinator {
				chunkFaults++
			}
		}
		if chunkFaults == 0 {
			t.Errorf("seed %d: no armed chunk-frame fault fired", seed)
		}
	}
}

// TestSoakReproducibleBySeed is the acceptance gate for determinism: two
// soaks with the same seed (armed faults + kills, no probabilistic traffic)
// must produce identical fault logs, round digests, final checksums, and
// epochs; a different seed must diverge.
func TestSoakReproducibleBySeed(t *testing.T) {
	mk := func(seed int64) SoakConfig {
		return SoakConfig{
			Layout:        paperLayout(t),
			Rounds:        8,
			StepsPerRound: 25,
			Seed:          seed,
			ArmPerRound:   2,
			KillMTBF:      150,
		}
	}
	a, err := RunSoak(mk(7))
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := RunSoak(mk(7))
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if la, lb := fmt.Sprint(a.FaultLogDigest()), fmt.Sprint(b.FaultLogDigest()); la != lb {
		t.Errorf("fault logs diverged under one seed:\nA: %s\nB: %s", la, lb)
	}
	if da, db := fmt.Sprint(a.RoundDigest()), fmt.Sprint(b.RoundDigest()); da != db {
		t.Errorf("round digests diverged under one seed:\nA: %s\nB: %s", da, db)
	}
	if a.Epoch != b.Epoch {
		t.Errorf("final epochs diverged: %d vs %d", a.Epoch, b.Epoch)
	}
	if fmt.Sprint(a.Checksums) != fmt.Sprint(b.Checksums) {
		t.Error("final checksums diverged under one seed")
	}

	c, err := RunSoak(mk(8))
	if err != nil {
		t.Fatalf("run C: %v", err)
	}
	if fmt.Sprint(a.FaultLogDigest()) == fmt.Sprint(c.FaultLogDigest()) &&
		fmt.Sprint(a.RoundDigest()) == fmt.Sprint(c.RoundDigest()) {
		t.Error("different seeds produced identical fault logs and round digests")
	}
}

// TestSoakLargerLayouts scales the soak beyond the paper's configuration:
// 8 nodes (56 VMs), and 16 nodes with bounded group size unless -short.
func TestSoakLargerLayouts(t *testing.T) {
	cases := []struct {
		name   string
		layout func() (*cluster.Layout, error)
		rounds int
		long   bool
	}{
		{"8node", func() (*cluster.Layout, error) { return cluster.BuildDistributed(8, 1, 1) }, 6, false},
		{"16node", func() (*cluster.Layout, error) { return cluster.BuildDistributedGroups(16, 1, 1, 4) }, 5, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.long && testing.Short() {
				t.Skip("16-node soak skipped in -short mode")
			}
			layout, err := tc.layout()
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunSoak(SoakConfig{
				Layout:        layout,
				Rounds:        tc.rounds,
				StepsPerRound: 20,
				Seed:          90210,
				ArmPerRound:   2,
				KillMTBF:      200,
			})
			if err != nil {
				t.Fatalf("soak failed: %v\nfault log:\n%s", err, faultLines(res))
			}
			if res.Epoch == 0 {
				t.Fatal("soak committed no epochs")
			}
		})
	}
}

// TestRecoverRestoresByteIdenticalImages is the satellite property test: for
// every orthogonal layout the cluster package can build, killing any single
// node and running RecoverNodes must restore every VM's committed image
// byte-for-byte — not just checksum-equal.
func TestRecoverRestoresByteIdenticalImages(t *testing.T) {
	layouts := []struct {
		name  string
		build func() (*cluster.Layout, error)
	}{
		{"first-shot-4", func() (*cluster.Layout, error) { return cluster.BuildFirstShot(4) }},
		{"dedicated-4x2", func() (*cluster.Layout, error) { return cluster.BuildDedicated(4, 2) }},
		{"paper-12vm", cluster.Paper12VM},
		{"distributed-groups-6", func() (*cluster.Layout, error) { return cluster.BuildDistributedGroups(6, 1, 1, 3) }},
	}
	for _, lc := range layouts {
		t.Run(lc.name, func(t *testing.T) {
			probe, err := lc.build()
			if err != nil {
				t.Fatal(err)
			}
			for victim := 0; victim < probe.Nodes; victim++ {
				layout, err := lc.build()
				if err != nil {
					t.Fatal(err)
				}
				coord, nodes := testCluster(t, layout)
				steps := uint64(40 + 13*victim) // vary the write stream per victim
				if err := coord.Step(steps); err != nil {
					t.Fatal(err)
				}
				if err := coord.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				before := fetchImages(t, coord)
				nodes[victim].Close()
				if _, err := coord.RecoverNodes(victim); err != nil {
					t.Fatalf("victim %d: recover: %v", victim, err)
				}
				after := fetchImages(t, coord)
				if len(after) != len(before) {
					t.Fatalf("victim %d: %d VMs after recovery, want %d", victim, len(after), len(before))
				}
				for name, img := range before {
					if !bytes.Equal(img, after[name]) {
						t.Errorf("victim %d: VM %q image diverged after recovery", victim, name)
					}
				}
			}
		})
	}
}

// fetchImages pulls every VM's committed image from whichever node currently
// hosts it, per the coordinator's live layout.
func fetchImages(t *testing.T, coord *Coordinator) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, v := range coord.Layout().VMs {
		resp, err := coord.call(v.Node, &wire.Message{Type: wire.MsgGetImage, VM: v.Name})
		if err != nil {
			t.Fatalf("fetch image %q from node %d: %v", v.Name, v.Node, err)
		}
		out[v.Name] = resp.Payload
	}
	return out
}

// TestChaosSoakRace is the race-detector satellite: checkpoints race against
// a node being killed from another goroutine mid-round, then the cluster is
// recovered, repaired, and re-checkpointed — all under a wall-clock budget so
// a deadlock inside the RPC layer fails fast instead of hanging go test.
func TestChaosSoakRace(t *testing.T) {
	layout := paperLayout(t)
	coord, nodes := testCluster(t, layout)
	rpcTimeout := 2 * time.Second
	coord.SetRPCTimeout(rpcTimeout)
	for _, n := range nodes {
		n.SetRPCTimeout(rpcTimeout)
	}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}

	iters := 4
	if testing.Short() {
		iters = 2
	}
	rng := rand.New(rand.NewSource(1701))
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := coord.Step(30); err != nil {
			t.Fatalf("iter %d: step: %v", i, err)
		}
		victim := rng.Intn(layout.Nodes)
		delay := time.Duration(rng.Intn(3000)) * time.Microsecond
		killed := make(chan struct{})
		go func() {
			time.Sleep(delay)
			nodes[victim].Close()
			close(killed)
		}()
		ckErr := coord.Checkpoint()
		<-killed
		var partial *PartialCommitError
		switch {
		case ckErr == nil, errors.As(ckErr, &partial):
			// Kill landed late enough (or the round absorbed it); the victim
			// is down now either way.
		default:
			// Prepare-phase abort; fall through to recovery.
		}
		if _, err := coord.RecoverNodes(victim); err != nil {
			t.Fatalf("iter %d: recover node %d: %v", i, victim, err)
		}
		n, err := NewNode(addrs[victim])
		if err != nil {
			t.Fatalf("iter %d: restart node %d: %v", i, victim, err)
		}
		n.SetRPCTimeout(rpcTimeout)
		nodes[victim] = n
		t.Cleanup(func() { n.Close() })
		if err := coord.Repair(victim); err != nil {
			t.Fatalf("iter %d: repair node %d: %v", i, victim, err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatalf("iter %d: post-recovery checkpoint: %v", i, err)
		}
		if _, err := coord.Rebalance(); err != nil {
			t.Fatalf("iter %d: rebalance: %v", i, err)
		}
	}
	// Deadline budget: each iteration does a handful of RPC rounds; anything
	// past this means a call sat on a dead connection instead of timing out.
	budget := time.Duration(iters) * 8 * rpcTimeout
	if elapsed := time.Since(start); elapsed > budget {
		t.Fatalf("soak took %v, budget %v — RPC deadlines not honored", elapsed, budget)
	}
}

func faultLines(res *SoakResult) string {
	if res == nil {
		return "(no result)"
	}
	var buf bytes.Buffer
	for _, l := range res.FaultLogDigest() {
		buf.WriteString("  " + l + "\n")
	}
	return buf.String()
}
