package runtime

import (
	"bytes"
	"sync"
	"testing"

	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/transport"
	"dvdc/internal/wire"
)

// TestConcurrentGroupFoldRace drives a layout with two stacked group sets —
// every node hosts members and keepers of eight groups, so each checkpoint
// round runs many foldDrain goroutines concurrently per node — and asserts
// the chunked cluster commits bit-identical state to a monolithic twin, then
// survives a casualty. Run under -race this is the concurrency pin for the
// parallel fold workers.
func TestConcurrentGroupFoldRace(t *testing.T) {
	layout, err := cluster.BuildDistributed(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mono, _ := chunkedCluster(t, layout, -1, false)
	chunked, cnodes := chunkedCluster(t, layout, 128, false)
	for round := 0; round < 3; round++ {
		for _, c := range []*Coordinator{mono, chunked} {
			if err := c.Step(50); err != nil {
				t.Fatal(err)
			}
			if err := c.Checkpoint(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	mstates, err := mono.VMStates()
	if err != nil {
		t.Fatal(err)
	}
	cstates, err := chunked.VMStates()
	if err != nil {
		t.Fatal(err)
	}
	for name, ms := range mstates {
		if cs, ok := cstates[name]; !ok || ms != cs {
			t.Errorf("%q diverges: mono %+v chunked %+v", name, ms, cstates[name])
		}
	}
	before, err := chunked.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	cnodes[2].Close()
	if _, err := chunked.RecoverNode(2); err != nil {
		t.Fatal(err)
	}
	after, err := chunked.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range before {
		if after[name] != want {
			t.Errorf("%q diverged across recovery under concurrent folds", name)
		}
	}
}

// TestDuplicateChunkRedeliveryMidFoldRace redelivers an entire chunk stream
// from a second connection while the first stream's folds are in flight: the
// seen-set must admit each chunk exactly once no matter how the two streams
// interleave with the async drainer, so committed parity equals a reference
// keeper that folded each chunk once.
func TestDuplicateChunkRedeliveryMidFoldRace(t *testing.T) {
	layout := paperLayout(t)
	coord, _ := chunkedCluster(t, layout, 0, false)
	const pages, pageSize = 16, 64
	img := pages * pageSize

	g := layout.Groups[0]
	member := g.Members[0]
	parityNode := g.ParityNodes[0]

	initial := map[string][]byte{}
	for _, m := range g.Members {
		initial[m] = make([]byte, img)
	}
	ref, err := core.NewMKeeper(0, 0, layout.Tolerance, initial)
	if err != nil {
		t.Fatal(err)
	}

	// 16 chunks tiling the image, distinct content per chunk.
	const count = 16
	chunkLen := img / count
	chunks := make([]wire.Chunk, count)
	for i := range chunks {
		data := make([]byte, chunkLen)
		for j := range data {
			data[j] = byte(i*37 + j*11 + 5)
		}
		chunks[i] = wire.Chunk{
			Offset: uint64(i * chunkLen), Total: uint64(img),
			Index: uint32(i), Count: count,
			RawLen: uint32(chunkLen), Data: data,
		}
	}

	// Two connections race the same stream: one forward, one reversed, so
	// redeliveries land while earlier folds are still draining.
	send := func(order []int) error {
		conn, err := transport.Dial(coord.addrs[parityNode])
		if err != nil {
			return err
		}
		defer conn.Close()
		for _, i := range order {
			resp, err := conn.Call(&wire.Message{
				Type: wire.MsgDeltaChunk, Epoch: 1, Group: 0, VM: member,
				Payload: wire.EncodeChunk(&chunks[i]),
			})
			if err != nil {
				return err
			}
			if resp.Type != wire.MsgDeltaChunkOK {
				return errUnexpectedReply(resp.Type)
			}
		}
		return nil
	}
	forward := make([]int, count)
	reverse := make([]int, count)
	for i := range forward {
		forward[i] = i
		reverse[i] = count - 1 - i
	}
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for _, order := range [][]int{forward, reverse} {
		wg.Add(1)
		go func(order []int) {
			defer wg.Done()
			errs <- send(order)
		}(order)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	conn, err := transport.Dial(coord.addrs[parityNode])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if resp, err := conn.Call(&wire.Message{Type: wire.MsgCommit, Epoch: 1}); err != nil || resp.Type != wire.MsgCommitOK {
		t.Fatalf("commit: %v %v", resp, err)
	}

	pendingBuf := make([]byte, img)
	for _, c := range chunks {
		if err := ref.FoldInto(pendingBuf, member, int(c.Offset), c.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.CommitPending(pendingBuf, map[string]uint64{member: 1}); err != nil {
		t.Fatal(err)
	}
	pb, err := conn.Call(&wire.Message{Type: wire.MsgGetParity, Group: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Payload, ref.Parity()) {
		t.Fatal("racing redelivery changed parity: a chunk folded twice or not at all")
	}
	st, err := coord.NodeStats(parityNode)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksReceived != count {
		t.Errorf("ChunksReceived = %d, want %d", st.ChunksReceived, count)
	}
	if st.DupChunks != count {
		t.Errorf("DupChunks = %d, want %d", st.DupChunks, count)
	}
}

type errUnexpectedReply wire.MsgType

func (e errUnexpectedReply) Error() string { return "unexpected reply type" }

// TestAbortRacesInFlightFolds fires MsgAbort from a second connection while a
// chunk stream is mid-fold: dropPending must wait out the drainer before
// discarding the pending buffer (never yank it from under a fold), late
// chunks may legitimately restart a stream, and a final abort leaves the
// keeper clean — proven by a full coordinator round plus casualty recovery
// committing bit-identical state afterwards.
func TestAbortRacesInFlightFolds(t *testing.T) {
	layout := paperLayout(t)
	coord, nodes := chunkedCluster(t, layout, 0, false)
	const pages, pageSize = 16, 64
	img := pages * pageSize

	g := layout.Groups[0]
	member := g.Members[0]
	parityNode := g.ParityNodes[0]

	const count = 16
	chunkLen := img / count
	sender, err := transport.Dial(coord.addrs[parityNode])
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	aborter, err := transport.Dial(coord.addrs[parityNode])
	if err != nil {
		t.Fatal(err)
	}
	defer aborter.Close()

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < count; i++ {
			data := make([]byte, chunkLen)
			for j := range data {
				data[j] = byte(i*13 + j*7 + 1)
			}
			c := wire.Chunk{
				Offset: uint64(i * chunkLen), Total: uint64(img),
				Index: uint32(i), Count: count,
				RawLen: uint32(chunkLen), Data: data,
			}
			if _, err := sender.Call(&wire.Message{
				Type: wire.MsgDeltaChunk, Epoch: 1, Group: 0, VM: member,
				Payload: wire.EncodeChunk(&c),
			}); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	go func() {
		defer wg.Done()
		// Several aborts spread across the stream maximize the chance one
		// lands while a fold is in flight.
		for k := 0; k < 4; k++ {
			if _, err := aborter.Call(&wire.Message{Type: wire.MsgAbort, Epoch: 1}); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Final abort: whatever partial stream the race left behind is dropped,
	// so the hand-crafted garbage never reaches committed parity.
	if resp, err := aborter.Call(&wire.Message{Type: wire.MsgAbort, Epoch: 1}); err != nil || resp.Type != wire.MsgAbortOK {
		t.Fatalf("final abort: %v %v", resp, err)
	}

	// The cluster must still run real rounds and reconstruct cleanly.
	if err := coord.Step(60); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	nodes[parityNode].Close()
	if _, err := coord.RecoverNode(parityNode); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range before {
		if after[name] != want {
			t.Errorf("%q diverged after abort raced in-flight folds", name)
		}
	}
}
