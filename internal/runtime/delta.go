package runtime

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"dvdc/internal/checkpoint"
	"dvdc/internal/core"
	"dvdc/internal/wire"
)

// Delta wire codec: a leading tag byte (0 = raw, 1 = flate-compressed body),
// then epoch u64, vmid u16+bytes, count u32, then per page index u32,
// len u32, data. All little-endian. Compression implements the paper's
// Sec. IV-C suggestion of "suitably compressing the differences of the last
// checkpoint when sending information over the network"; since deltas are
// XORs against the previous image, unchanged bytes are zero and compress
// extremely well.

const (
	deltaRaw        = 0
	deltaCompressed = 1
)

// encodeDelta serializes a core.Delta for a MsgDelta payload. When compress
// is set and compression actually shrinks the body, the compressed form is
// emitted; otherwise raw.
func encodeDelta(d *core.Delta, compress bool) []byte {
	body := encodeDeltaBody(d)
	if compress {
		var buf bytes.Buffer
		buf.WriteByte(deltaCompressed)
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err == nil {
			if _, err := w.Write(body); err == nil && w.Close() == nil && buf.Len() < len(body)+1 {
				return buf.Bytes()
			}
		}
	}
	out := make([]byte, 0, len(body)+1)
	out = append(out, deltaRaw)
	return append(out, body...)
}

func encodeDeltaBody(d *core.Delta) []byte {
	n := 8 + 2 + len(d.VMID) + 4
	for _, p := range d.Pages {
		n += 8 + len(p.Data)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint64(out, d.Epoch)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(d.VMID)))
	out = append(out, d.VMID...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(d.Pages)))
	for _, p := range d.Pages {
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Index))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Data)))
		out = append(out, p.Data...)
	}
	return out
}

// decodeDelta parses a MsgDelta payload, transparently inflating the
// compressed form.
func decodeDelta(b []byte) (*core.Delta, error) {
	bad := func(what string) (*core.Delta, error) {
		return nil, fmt.Errorf("runtime: corrupt delta: %s", what)
	}
	if len(b) < 1 {
		return bad("empty payload")
	}
	switch b[0] {
	case deltaRaw:
		b = b[1:]
	case deltaCompressed:
		// Bound the inflated size so a crafted tiny payload cannot act as a
		// decompression bomb; legitimate deltas fit in a wire frame.
		r := flate.NewReader(bytes.NewReader(b[1:]))
		inflated, err := io.ReadAll(io.LimitReader(r, wire.MaxFrame+1))
		r.Close()
		if err != nil {
			return bad("inflate: " + err.Error())
		}
		if len(inflated) > wire.MaxFrame {
			return bad("inflated payload exceeds frame limit")
		}
		b = inflated
	default:
		return bad("unknown tag")
	}
	if len(b) < 14 {
		return bad("short header")
	}
	off := 0
	d := &core.Delta{}
	d.Epoch = binary.LittleEndian.Uint64(b[off:])
	off += 8
	vl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+vl > len(b) {
		return bad("truncated vmid")
	}
	d.VMID = string(b[off : off+vl])
	off += vl
	if off+4 > len(b) {
		return bad("truncated count")
	}
	count := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	// Each page record needs at least 8 bytes: bound the preallocation by
	// what the buffer could possibly hold.
	if count < 0 || count > (len(b)-off)/8 {
		return bad("absurd page count")
	}
	d.Pages = make([]checkpoint.PageRecord, 0, count)
	for i := 0; i < count; i++ {
		if off+8 > len(b) {
			return bad("truncated page header")
		}
		idx := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		dl := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if dl < 0 || off+dl > len(b) {
			return bad("truncated page data")
		}
		d.Pages = append(d.Pages, checkpoint.PageRecord{
			Index: idx,
			Data:  append([]byte(nil), b[off:off+dl]...),
		})
		off += dl
	}
	if off != len(b) {
		return bad("trailing bytes")
	}
	return d, nil
}
