package runtime

import (
	"fmt"
	"hash/fnv"

	"dvdc/internal/cluster"
	"dvdc/internal/vm"
)

// Shadow is an in-process model of what the distributed cluster's committed
// VM state must be. It runs the same vm.Machine and vm.Workload types the
// nodes run, seeded identically (vmWorkloadSeed, and the coordinator's
// post-recovery and post-rebalance reseed formulas), and mirrors each
// coordinator lifecycle operation: step, commit, abort, recovery, rebalance.
// Because workloads are deterministic and page content depends only on the
// write stream, the shadow's committed images are bit-identical to the
// cluster's — any divergence the soak harness sees is a real protocol bug
// (or an injected fault the protocol failed to mask), never model noise.
//
// The shadow deliberately models no parity, no placement, and no transport:
// it is the oracle for *what* the committed state must be, not *where* it
// lives or how it got there.
type Shadow struct {
	seedBase int64
	workload string // workload kind every VM runs ("" = uniform)
	epoch    uint64
	vms      map[string]*shadowVM
}

type shadowVM struct {
	machine   *vm.Machine
	workload  vm.Workload
	committed []byte
}

// NewShadow mirrors a freshly Setup() cluster: every VM at protocol epoch 0
// with its initial image committed and a workload seeded exactly like the
// coordinator seeds the real one.
func NewShadow(layout *cluster.Layout, pages, pageSize int, seed int64) (*Shadow, error) {
	return NewShadowWith(layout, pages, pageSize, seed, "")
}

// NewShadowWith is NewShadow for a cluster whose coordinator was given a
// non-default workload kind (Coordinator.SetWorkload): the shadow must run
// the same kind or the write streams diverge immediately.
func NewShadowWith(layout *cluster.Layout, pages, pageSize int, seed int64, workload string) (*Shadow, error) {
	s := &Shadow{seedBase: seed, workload: workload, vms: map[string]*shadowVM{}}
	for _, v := range layout.VMs {
		m, err := vm.NewMachine(v.Name, pages, pageSize)
		if err != nil {
			return nil, err
		}
		sv := &shadowVM{
			machine:  m,
			workload: newWorkload(workload, vmWorkloadSeed(seed, v.Name)),
		}
		sv.committed = m.Image()
		m.BeginEpoch()
		s.vms[v.Name] = sv
	}
	return s, nil
}

// Epoch returns the shadow's committed protocol epoch.
func (s *Shadow) Epoch() uint64 { return s.epoch }

// Step mirrors Coordinator.Step: n workload steps on every VM.
func (s *Shadow) Step(n uint64) {
	for _, sv := range s.vms {
		for i := uint64(0); i < n; i++ {
			sv.workload.Step(sv.machine)
		}
	}
}

// Commit mirrors a checkpoint round that entered the commit phase — including
// one that ended in a *PartialCommitError*: the epoch advances and every VM's
// committed image becomes its live state. (VMs hosted on the node that failed
// mid-commit are covered too: their deltas were folded into surviving parity
// during the round, so their reconstruction yields exactly this image.)
func (s *Shadow) Commit() {
	s.epoch++
	for _, sv := range s.vms {
		sv.committed = sv.machine.Image()
		sv.machine.BeginEpoch()
	}
}

// Abort mirrors a checkpoint round that failed during prepare: committed
// images and the epoch stay put, and the machines keep their stepped state
// (the real protocol's UndoCapture touches only the committed side).
func (s *Shadow) Abort() {}

// Recover mirrors Coordinator.RecoverNodes: every surviving VM rolls its
// machine back to the committed image, and each VM the plan restored gets a
// fresh workload stream seeded with the coordinator's post-respawn formula at
// the given committed epoch.
func (s *Shadow) Recover(plan *cluster.Plan, epoch uint64) error {
	for name, sv := range s.vms {
		if err := sv.machine.LoadImage(sv.committed); err != nil {
			return fmt.Errorf("shadow: rollback %q: %w", name, err)
		}
	}
	for _, st := range plan.Steps {
		if st.Kind != cluster.RestoreVM {
			continue
		}
		sv, ok := s.vms[st.VM]
		if !ok {
			return fmt.Errorf("shadow: recovery plan restores unknown VM %q", st.VM)
		}
		sv.workload = newWorkload(s.workload, vmWorkloadSeed(s.seedBase, st.VM)+int64(epoch)+1)
	}
	return nil
}

// Rebalance mirrors Coordinator.Rebalance: each moved VM is re-installed from
// its committed image (it is quiescent right after a commit) with a fresh
// workload stream under the rebalance reseed formula.
func (s *Shadow) Rebalance(plan *cluster.Plan, epoch uint64) error {
	for _, st := range plan.Steps {
		if st.Kind != cluster.RestoreVM {
			continue
		}
		sv, ok := s.vms[st.VM]
		if !ok {
			return fmt.Errorf("shadow: rebalance plan moves unknown VM %q", st.VM)
		}
		if err := sv.machine.LoadImage(sv.committed); err != nil {
			return fmt.Errorf("shadow: reinstall %q: %w", st.VM, err)
		}
		sv.workload = newWorkload(s.workload, vmWorkloadSeed(s.seedBase, st.VM)+int64(epoch)+7919)
	}
	return nil
}

// Checksums returns the FNV-1a checksum of every VM's committed image, the
// same fingerprint the nodes compute for MsgChecksum.
func (s *Shadow) Checksums() map[string]uint64 {
	out := make(map[string]uint64, len(s.vms))
	for name, sv := range s.vms {
		h := fnv.New64a()
		h.Write(sv.committed)
		out[name] = h.Sum64()
	}
	return out
}
