package runtime

import (
	"testing"

	"dvdc/internal/cluster"
)

// tolerance2Cluster spins up a 7-node, tolerance-2 cluster over TCP.
func tolerance2Cluster(t *testing.T) (*Coordinator, []*Node, *cluster.Layout) {
	t.Helper()
	layout, err := cluster.BuildDistributedGroups(7, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	coord, nodes := testCluster(t, layout)
	return coord, nodes, layout
}

func TestMultiParitySetupAndRounds(t *testing.T) {
	coord, _, layout := tolerance2Cluster(t)
	for round := 0; round < 3; round++ {
		if err := coord.Step(40); err != nil {
			t.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	sums, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(layout.VMs) {
		t.Errorf("checksums for %d VMs, want %d", len(sums), len(layout.VMs))
	}
}

func TestSimultaneousDoubleNodeDeathOverTCP(t *testing.T) {
	coord, nodes, _ := tolerance2Cluster(t)
	if err := coord.Step(60); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	committed, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Step(30); err != nil { // uncommitted churn
		t.Fatal(err)
	}

	// Two daemons die at once.
	nodes[1].Close()
	nodes[4].Close()
	plan, err := coord.RecoverNodes(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("empty recovery plan")
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for vmName, want := range committed {
		if after[vmName] != want {
			t.Errorf("VM %q state lost in double failure", vmName)
		}
	}
	// The cluster keeps checkpointing on the 5 survivors.
	if err := coord.Step(20); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestAllDoubleDeathPairsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("O(n^2) socket clusters")
	}
	layout, err := cluster.BuildDistributedGroups(6, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < layout.Nodes; a++ {
		for b := a + 1; b < layout.Nodes; b++ {
			coord, nodes := testCluster(t, layout.Clone())
			if err := coord.Step(30); err != nil {
				t.Fatal(err)
			}
			if err := coord.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			committed, err := coord.Checksums()
			if err != nil {
				t.Fatal(err)
			}
			nodes[a].Close()
			nodes[b].Close()
			if _, err := coord.RecoverNodes(a, b); err != nil {
				t.Fatalf("pair (%d,%d): %v", a, b, err)
			}
			after, err := coord.Checksums()
			if err != nil {
				t.Fatalf("pair (%d,%d): %v", a, b, err)
			}
			for vmName, want := range committed {
				if after[vmName] != want {
					t.Errorf("pair (%d,%d): VM %q diverged", a, b, vmName)
				}
			}
			coord.Close()
			for _, n := range nodes {
				n.Close()
			}
		}
	}
}

func TestSequentialDoubleDeathOverTCP(t *testing.T) {
	coord, nodes, _ := tolerance2Cluster(t)
	if err := coord.Step(40); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	nodes[0].Close()
	if _, err := coord.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	if err := coord.Step(20); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	committed, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	nodes[3].Close()
	if _, err := coord.RecoverNode(3); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for vmName, want := range committed {
		if after[vmName] != want {
			t.Errorf("VM %q diverged through sequential failures", vmName)
		}
	}
}

func TestTripleDeathExceedsTolerance(t *testing.T) {
	coord, nodes, layout := tolerance2Cluster(t)
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Find a triple that defeats some group.
	for a := 0; a < layout.Nodes; a++ {
		for b := a + 1; b < layout.Nodes; b++ {
			for cc := b + 1; cc < layout.Nodes; cc++ {
				if coord.Layout().Survives(a, b, cc) {
					continue
				}
				nodes[a].Close()
				nodes[b].Close()
				nodes[cc].Close()
				if _, err := coord.RecoverNodes(a, b, cc); err == nil {
					t.Error("unsurvivable triple accepted")
				}
				return
			}
		}
	}
	t.Skip("no unsurvivable triple in this layout")
}
