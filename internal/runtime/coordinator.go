package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvdc/internal/bufpool"
	"dvdc/internal/cluster"
	"dvdc/internal/metrics"
	"dvdc/internal/obs"
	"dvdc/internal/transport"
	"dvdc/internal/wire"
)

// commitRetryBackoff is the base delay between commit attempts on one node;
// the shared concurrency and failure-handling defaults live in defaults.go.
const commitRetryBackoff = 10 * time.Millisecond

// Coordinator drives a set of node daemons through the DVDC protocol:
// initial configuration, workload execution, two-phase checkpoint rounds,
// and recovery after a node death. It owns the live cluster.Layout and keeps
// it in sync with what the nodes are doing.
//
// Control-plane traffic fans out: every phase (setup, step, prepare, commit,
// checksum, parity refresh) contacts all nodes concurrently over per-peer
// connection pools, bounded by the fan-out width, and every RPC carries an
// I/O deadline so a hung node surfaces as a timeout instead of wedging the
// cluster. Protocol entry points (Setup, Step, Checkpoint, Quiesce,
// RecoverNodes, Repair, Rebalance) serialize on an internal round mutex —
// one protocol operation at a time, concurrent callers queue — while each
// round is internally parallel. Read paths (Epoch, RoundStats, Checksums,
// VMStates) are safe to call from other goroutines at any time.
type Coordinator struct {
	roundMu sync.Mutex // serializes protocol operations (one round at a time)

	mu      sync.Mutex // guards pools, dead, pending, retiredRetries
	pools   map[int]*transport.Pool
	dead    map[int]bool
	pending map[int]bool // dead but not yet recovered (declared dead mid-commit)

	layout         *cluster.Layout
	addrs          map[int]string
	pages          int
	pageSize       int
	epoch          atomic.Uint64
	seedBase       int64
	compress       bool
	chunkSize      int    // data-path granularity: 0 default chunked, <0 monolithic
	pipeWidth      int    // in-flight chunk batches per (stream, peer); 0 = default
	workload       string // workload kind for every VM ("" = uniform)
	dedup          bool   // cross-epoch page-hash dedup on node ship paths
	rpcTimeout     time.Duration
	fanoutW        int
	commitRetries  int
	retiredRetries int64 // retry counts of pools already closed
	dialer         transport.DialFunc
	tracer         *obs.Tracer
	registry       *obs.Registry
	recorder       *obs.FlightRecorder

	statsMu   sync.Mutex
	lastRound RoundStats
	phases    *metrics.Phases
}

// NewCoordinator wires a layout to node addresses. addrs must cover every
// node index in the layout.
func NewCoordinator(layout *cluster.Layout, addrs map[int]string, pages, pageSize int, seed int64) (*Coordinator, error) {
	if layout == nil {
		return nil, fmt.Errorf("runtime: nil layout")
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	for n := 0; n < layout.Nodes; n++ {
		if _, ok := addrs[n]; !ok {
			return nil, fmt.Errorf("runtime: no address for node %d", n)
		}
	}
	if pages <= 0 || pageSize <= 0 {
		return nil, fmt.Errorf("runtime: bad geometry %dx%d", pages, pageSize)
	}
	return &Coordinator{
		layout:        layout,
		addrs:         addrs,
		pools:         map[int]*transport.Pool{},
		dead:          map[int]bool{},
		pending:       map[int]bool{},
		pages:         pages,
		pageSize:      pageSize,
		seedBase:      seed,
		rpcTimeout:    DefaultRPCTimeout,
		fanoutW:       DefaultFanout,
		commitRetries: DefaultCommitRetries,
		phases:        metrics.NewPhases(),
	}, nil
}

// SetCompress enables flate compression of delta shipments; call before
// Setup (the flag rides the node configuration).
func (c *Coordinator) SetCompress(on bool) { c.compress = on }

// SetChunkSize selects the data-path granularity: 0 (the default) means the
// chunked pipeline at wire.DefaultChunkSize, a positive value sets the chunk
// payload size, and a negative value falls back to the legacy monolithic
// shipments. Call before Setup — the setting rides the node configuration.
func (c *Coordinator) SetChunkSize(n int) { c.chunkSize = n }

// effectiveChunkSize resolves the configured granularity (0 = monolithic).
func (c *Coordinator) effectiveChunkSize() int { return resolveChunkSize(c.chunkSize) }

// SetPipelineWidth bounds the in-flight chunk batches per (stream, peer) on
// every node's chunked ship path (<= 0 restores the built-in default). Call
// before Setup — the setting rides the node configuration; for a live change
// use Retune.
func (c *Coordinator) SetPipelineWidth(w int) { c.pipeWidth = w }

// Retune live-adjusts the cluster's data-path tuning — chunk payload size and
// per-(stream, peer) pipeline width — without reconfiguring membership: every
// alive node receives a MsgRetune, and later configurations (Repair after a
// node rejoins) inherit the new values. Serializes with protocol rounds on the
// round mutex, so a retune never lands mid-checkpoint. A retune may not cross
// the chunked/monolithic boundary — that would change the shipped
// representation between epochs.
func (c *Coordinator) Retune(chunkSize, pipelineWidth int) error {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	if (resolveChunkSize(c.chunkSize) > 0) != (resolveChunkSize(chunkSize) > 0) {
		return fmt.Errorf("runtime: retune cannot cross the chunked/monolithic boundary (have chunked=%v)",
			resolveChunkSize(c.chunkSize) > 0)
	}
	text, err := encodeJSON(retuneConfig{ChunkSize: chunkSize, PipelineWidth: pipelineWidth})
	if err != nil {
		return err
	}
	if err := c.fanout(obs.SpanContext{}, "retune", c.aliveNodes(),
		func(int) *wire.Message { return &wire.Message{Type: wire.MsgRetune, Text: text} },
		func(n int, resp *wire.Message) error {
			if resp.Type != wire.MsgRetuneOK {
				return fmt.Errorf("runtime: node %d replied %v to retune", n, resp.Type)
			}
			return nil
		}); err != nil {
		return err
	}
	c.mu.Lock()
	c.chunkSize = chunkSize
	c.pipeWidth = pipelineWidth
	c.mu.Unlock()
	return nil
}

// SetWorkload selects the synthetic workload kind every VM runs ("" =
// uniform; see WorkloadUniform, WorkloadRewrite). Call before Setup — the
// kind rides each VMConfig, and the Shadow model must be built with the same
// kind to stay bit-identical.
func (c *Coordinator) SetWorkload(kind string) { c.workload = kind }

// SetDedup enables the cross-epoch page-hash dedup cache on every node's
// ship path. Call before Setup (the flag rides the node configuration).
func (c *Coordinator) SetDedup(on bool) { c.dedup = on }

// SetRPCTimeout bounds every coordinator RPC (0 disables deadlines). Applies
// to connections opened after the call, so set it before the first round.
func (c *Coordinator) SetRPCTimeout(d time.Duration) {
	c.mu.Lock()
	c.rpcTimeout = d
	c.mu.Unlock()
}

// SetDialer substitutes the raw stream opener used for every subsequent
// coordinator-to-node connection (nil restores plain TCP). Fault-injection
// layers (internal/chaos) hook in here; like SetRPCTimeout it only affects
// pools created after the call, so set it before the first round.
func (c *Coordinator) SetDialer(d transport.DialFunc) {
	c.mu.Lock()
	c.dialer = d
	c.mu.Unlock()
}

// SetObserver attaches a span tracer and metrics registry (either may be
// nil). Checkpoint rounds, recoveries, and rebalances open root spans whose
// trace ids ride every RPC of the round; the registry gets per-phase duration
// histograms, round counters, and each peer pool's health series. Like
// SetDialer, pool-level instrumentation only reaches pools created after the
// call, so attach before the first round.
func (c *Coordinator) SetObserver(tr *obs.Tracer, reg *obs.Registry) {
	c.mu.Lock()
	c.tracer = tr
	c.registry = reg
	c.mu.Unlock()
	// Live tuning gauges: what the data path is currently configured to do,
	// so dashboards (and the adaptive advisor's paper trail) can correlate
	// retunes with round-time shifts.
	reg.GaugeFunc("dvdc_chunk_size_bytes", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(resolveChunkSize(c.chunkSize))
	})
	reg.GaugeFunc("dvdc_pipeline_width", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(resolvePipelineWidth(c.pipeWidth))
	})
}

// SetFlightRecorder attaches a black-box flight recorder (may be nil). Every
// pool RPC outcome lands in its bounded log, and a PartialCommitError — the
// protocol's "a node died mid-commit" failure — auto-dumps a postmortem
// bundle. Like SetObserver, pool-level wiring only reaches pools created
// after the call, so attach before the first round.
func (c *Coordinator) SetFlightRecorder(rec *obs.FlightRecorder) {
	c.mu.Lock()
	c.recorder = rec
	c.mu.Unlock()
}

// SetFanout bounds how many nodes each control-plane phase contacts
// concurrently (<= 0 restores the default).
func (c *Coordinator) SetFanout(k int) {
	if k <= 0 {
		k = DefaultFanout
	}
	c.mu.Lock()
	c.fanoutW = k
	c.mu.Unlock()
}

// NodeStats fetches a node's protocol counters.
func (c *Coordinator) NodeStats(node int) (NodeStats, error) {
	resp, err := c.call(node, &wire.Message{Type: wire.MsgStats})
	if err != nil {
		return NodeStats{}, err
	}
	var st NodeStats
	if err := decodeJSON(resp.Text, &st); err != nil {
		return NodeStats{}, err
	}
	return st, nil
}

// Layout exposes the live layout.
func (c *Coordinator) Layout() *cluster.Layout { return c.layout }

// Epoch returns the last committed checkpoint epoch. Safe to call from any
// goroutine, including while a round is in flight on another.
func (c *Coordinator) Epoch() uint64 { return c.epoch.Load() }

// RoundStats returns the stats of the most recent checkpoint round (and
// recovery, if one has run).
func (c *Coordinator) RoundStats() RoundStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.lastRound
}

// Phases exposes the per-phase wall-clock summaries accumulated across all
// rounds and recoveries.
func (c *Coordinator) Phases() *metrics.Phases { return c.phases }

// pool returns (lazily creating) the connection pool for an alive node.
func (c *Coordinator) pool(node int) (*transport.Pool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead[node] {
		return nil, fmt.Errorf("runtime: node %d is marked dead", node)
	}
	if p, ok := c.pools[node]; ok {
		return p, nil
	}
	p := transport.NewPool(c.addrs[node], transport.PoolOptions{
		CallTimeout: c.rpcTimeout,
		Dialer:      c.dialer,
		Peer:        fmt.Sprintf("node%d", node),
		Tracer:      c.tracer,
		Registry:    c.registry,
		Recorder:    c.recorder,
	})
	c.pools[node] = p
	return p, nil
}

// observePhase lands one phase duration in both the in-process summaries and
// (when a registry is attached) the exported per-phase histogram.
func (c *Coordinator) observePhase(name string, d time.Duration) {
	c.phases.Observe(name, d)
	c.mu.Lock()
	reg := c.registry
	c.mu.Unlock()
	if reg != nil {
		reg.Histogram("dvdc_round_phase_seconds", obs.LatencyBuckets(), "phase", name).Observe(d.Seconds())
	}
}

// call sends one RPC to a node over its pool. The pool re-dials and retries
// once when a cached connection went stale (the daemon restarted on the same
// address), and enforces the per-call deadline. Safe for concurrent use.
func (c *Coordinator) call(node int, msg *wire.Message) (*wire.Message, error) {
	p, err := c.pool(node)
	if err != nil {
		return nil, err
	}
	return p.Call(msg)
}

// markDead declares a node dead: its pool is closed and no further calls
// reach it. pendingRecovery tags nodes the commit phase lost, which still
// need RecoverNodes.
func (c *Coordinator) markDead(node int, pendingRecovery bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead[node] = true
	if pendingRecovery {
		c.pending[node] = true
	}
	if p, ok := c.pools[node]; ok {
		c.retiredRetries += p.Retries()
		p.Close()
		delete(c.pools, node)
	}
}

// totalRetries sums transport retries across live and retired pools.
func (c *Coordinator) totalRetries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.retiredRetries
	for _, p := range c.pools {
		t += p.Retries()
	}
	return t
}

// aliveNodes lists nodes not marked dead, ascending.
func (c *Coordinator) aliveNodes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for n := 0; n < c.layout.Nodes; n++ {
		if !c.dead[n] {
			out = append(out, n)
		}
	}
	return out
}

func (c *Coordinator) fanoutWidth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fanoutW
}

// fanout sends one request to each node concurrently (bounded by the
// fan-out width) and feeds each reply to handle, in node order. Every node
// is attempted even after a failure, and handle runs for every successful
// reply — so a caller can learn which nodes succeeded even when the phase as
// a whole fails. The first error in node order is returned, wrapped with op.
// Built messages are stamped with ctx (every build call site allocates a
// fresh message, so stamping in place is safe); a zero ctx leaves the phase
// untraced.
func (c *Coordinator) fanout(ctx obs.SpanContext, op string, nodes []int, build func(node int) *wire.Message, handle func(node int, resp *wire.Message) error) error {
	resps := make([]*wire.Message, len(nodes))
	errs := make([]error, len(nodes))
	parallelDo(len(nodes), c.fanoutWidth(), func(i int) error { //nolint:errcheck // errors land in errs
		msg := build(nodes[i])
		if msg == nil {
			return nil
		}
		if ctx.Valid() && msg.Trace == 0 {
			msg.Trace, msg.Span = ctx.Trace, ctx.Span
		}
		resps[i], errs[i] = c.call(nodes[i], msg)
		return nil
	})
	var first error
	for i, node := range nodes {
		if errs[i] != nil {
			if first == nil {
				first = fmt.Errorf("runtime: %s on node %d: %w", op, node, errs[i])
			}
			continue
		}
		if resps[i] == nil || handle == nil {
			continue
		}
		if err := handle(node, resps[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// vmSeed derives a deterministic workload seed per VM.
func (c *Coordinator) vmSeed(name string) int64 {
	return vmWorkloadSeed(c.seedBase, name)
}

// vmWorkloadSeed is the coordinator's per-VM workload seed derivation,
// shared with the Shadow model so both sides drive identical workload
// streams from the same base seed.
func vmWorkloadSeed(base int64, name string) int64 {
	h := base
	for _, r := range name {
		h = h*131 + int64(r)
	}
	return h
}

// vmConfig renders the current VMConfig for a VM name.
func (c *Coordinator) vmConfig(v cluster.VMPlacement) VMConfig {
	g := c.layout.Groups[v.Group]
	return VMConfig{
		Name:        v.Name,
		Pages:       c.pages,
		PageSize:    c.pageSize,
		Group:       v.Group,
		ParityNodes: append([]int(nil), g.ParityNodes...),
		Seed:        c.vmSeed(v.Name),
		Workload:    c.workload,
	}
}

// nodeConfig renders the full initial assignment for one node.
func (c *Coordinator) nodeConfig(n int) NodeConfig {
	cfg := NodeConfig{NodeID: n, Peers: c.addrs, Compress: c.compress, ChunkSize: c.chunkSize, Dedup: c.dedup, PipelineWidth: c.pipeWidth}
	for _, v := range c.layout.VMs {
		if v.Node == n {
			cfg.VMs = append(cfg.VMs, c.vmConfig(v))
		}
	}
	for _, g := range c.layout.Groups {
		for i, pn := range g.ParityNodes {
			if pn == n {
				cfg.Keepers = append(cfg.Keepers, KeeperConfig{
					Group:     g.Index,
					ParityIdx: i,
					Tolerance: c.layout.Tolerance,
					Members:   append([]string(nil), g.Members...),
					Pages:     c.pages,
					PageSize:  c.pageSize,
				})
			}
		}
	}
	return cfg
}

// Setup pushes the initial configuration to every node, concurrently.
func (c *Coordinator) Setup() error {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	nodes := make([]int, c.layout.Nodes)
	msgs := make([]*wire.Message, c.layout.Nodes)
	for n := 0; n < c.layout.Nodes; n++ {
		nodes[n] = n
		text, err := encodeJSON(c.nodeConfig(n))
		if err != nil {
			return err
		}
		msgs[n] = &wire.Message{Type: wire.MsgConfigure, Text: text}
	}
	return c.fanout(obs.SpanContext{}, "configure", nodes,
		func(n int) *wire.Message { return msgs[n] },
		func(n int, resp *wire.Message) error {
			if resp.Type != wire.MsgConfigureOK {
				return fmt.Errorf("runtime: node %d replied %v to configure", n, resp.Type)
			}
			return nil
		})
}

// Step runs the synthetic workload n steps on every alive node's VMs,
// concurrently across nodes.
func (c *Coordinator) Step(n uint64) error {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	return c.fanout(obs.SpanContext{}, "step", c.aliveNodes(),
		func(int) *wire.Message { return &wire.Message{Type: wire.MsgStep, Arg: n} },
		nil)
}

// Checkpoint executes one two-phase checkpoint round: PREPARE on every alive
// node in parallel (each captures deltas and ships them to parity peers),
// then COMMIT in parallel.
//
// Failure semantics, phase by phase:
//   - If any prepare fails, the round is aborted on every node that
//     prepared and the error returned; the cluster stays at the previous
//     committed epoch.
//   - Once the commit phase starts, the round always completes: commit
//     cannot be undone after any node has folded its staged deltas, so the
//     epoch advances. A node whose commit keeps failing through the retry
//     budget is declared dead and the error returned is a
//     *PartialCommitError naming it; run RecoverNodes over those nodes to
//     restore redundancy. This keeps every reachable node's notion of the
//     committed epoch in sync — there is no state in which half the cluster
//     committed an epoch the coordinator disowned.
func (c *Coordinator) Checkpoint() error { return c.CheckpointIn(obs.SpanContext{}) }

// CheckpointIn is Checkpoint with a parent span context: the round's root
// span joins the caller's trace (the service reconciler passes its reconcile
// span here so the whole round tree hangs under the attempt that drove it).
// A zero context roots a fresh trace, which is what Checkpoint does.
func (c *Coordinator) CheckpointIn(parent obs.SpanContext) error {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	next := c.epoch.Load() + 1
	alive := c.aliveNodes()
	stats := RoundStats{Epoch: next}
	// A recovery's wall-clock is reported with the round that observed it and
	// then carried — flagged — on subsequent rounds until the next recovery
	// overwrites it, so readers can tell "recovery happened this round" from
	// "this is the residue of an earlier one".
	if prev := c.RoundStats(); prev.RecoveryWall > 0 {
		stats.RecoveryWall = prev.RecoveryWall
		stats.RecoveryTraceID = prev.RecoveryTraceID
		stats.RecoveryCarried = true
	}
	retriesBefore := c.totalRetries()

	c.mu.Lock()
	tr := c.tracer
	c.mu.Unlock()
	root := tr.Start(parent, "round", "coord")
	root.SetAttr("epoch", fmt.Sprintf("%d", next))
	stats.TraceID = root.TraceID()

	// Phase 1: prepare everywhere.
	t0 := time.Now()
	prep := tr.Child(root.Context(), "prepare", "coord")
	prepErr := c.fanout(prep.ContextOr(obs.SpanContext{}), "prepare", alive,
		func(int) *wire.Message { return &wire.Message{Type: wire.MsgPrepare, Epoch: next} },
		func(node int, resp *wire.Message) error {
			if resp.Type != wire.MsgPrepareOK {
				return fmt.Errorf("runtime: node %d replied %v to prepare", node, resp.Type)
			}
			stats.BytesShipped += int64(resp.Arg)
			if resp.Text != "" {
				var ps prepareSummary
				if decodeJSON(resp.Text, &ps) == nil {
					stats.ChunksShipped += ps.Chunks
					stats.DedupedPages += ps.Deduped
				}
			}
			return nil
		})
	prep.FinishErr(prepErr)
	stats.PrepareWall = time.Since(t0)
	c.observePhase("prepare", stats.PrepareWall)
	if prepErr != nil {
		// Abort every alive node, not only those whose prepare succeeded: a
		// node that captured some members and then failed mid-prepare holds
		// staged deltas too, and a node that missed a previous abort (the
		// abort RPC itself was lost) would otherwise fail every future
		// prepare on its stale staged delta without ever being cleaned up —
		// a livelock. Abort is an idempotent no-op on a clean node, so
		// over-aborting is safe; best effort either way — a node that cannot
		// abort now is caught by the next prepare's staged-delta check.
		abort := tr.Child(root.Context(), "abort", "coord")
		c.fanout(abort.ContextOr(obs.SpanContext{}), "abort", alive, //nolint:errcheck
			func(int) *wire.Message { return &wire.Message{Type: wire.MsgAbort, Epoch: next} },
			nil)
		abort.Finish()
		stats.Aborted = true
		stats.RPCRetries = c.totalRetries() - retriesBefore
		c.recordRound(stats)
		root.FinishErr(prepErr)
		return prepErr
	}

	// Phase 2: commit everywhere, retrying per node; a persistently failing
	// committer is a node failure, not a round failure.
	var failedMu sync.Mutex
	var failed []int
	t1 := time.Now()
	commit := tr.Child(root.Context(), "commit", "coord")
	commitCtx := commit.ContextOr(obs.SpanContext{})
	parallelDo(len(alive), c.fanoutWidth(), func(i int) error { //nolint:errcheck // failures collected in failed
		node := alive[i]
		var lastErr error
		for attempt := 0; attempt < c.commitRetries; attempt++ {
			if attempt > 0 {
				time.Sleep(commitRetryBackoff << (attempt - 1))
			}
			resp, err := c.call(node, &wire.Message{Type: wire.MsgCommit, Epoch: next, Trace: commitCtx.Trace, Span: commitCtx.Span})
			if err == nil && resp.Type == wire.MsgCommitOK {
				return nil
			}
			if err == nil {
				err = fmt.Errorf("runtime: node %d replied %v to commit", node, resp.Type)
			}
			lastErr = err
		}
		_ = lastErr
		failedMu.Lock()
		failed = append(failed, node)
		failedMu.Unlock()
		return nil
	})
	commit.Finish()
	stats.CommitWall = time.Since(t1)
	c.observePhase("commit", stats.CommitWall)
	stats.RPCRetries = c.totalRetries() - retriesBefore

	sort.Ints(failed)
	if len(failed) == len(alive) {
		// No node committed: the round effectively never entered commit.
		stats.Aborted = true
		c.recordRound(stats)
		err := fmt.Errorf("runtime: commit of epoch %d failed on every node", next)
		root.FinishErr(err)
		return err
	}
	c.epoch.Store(next)
	for _, node := range failed {
		c.markDead(node, true)
	}
	stats.DeadDuring = failed
	c.recordRound(stats)
	if len(failed) > 0 {
		err := &PartialCommitError{Epoch: next, Nodes: failed}
		root.FinishErr(err)
		// The black-box moment: a node died mid-commit. Dump the flight
		// recorder's pre-failure window before recovery traffic overwrites it.
		c.mu.Lock()
		rec := c.recorder
		c.mu.Unlock()
		rec.Note("partial-commit", "epoch", fmt.Sprintf("%d", next), "nodes", fmt.Sprintf("%v", failed))
		rec.AutoDump("partial-commit") //nolint:errcheck // never turn a postmortem into a second failure
		return err
	}
	root.Finish()
	return nil
}

func (c *Coordinator) recordRound(r RoundStats) {
	c.statsMu.Lock()
	c.lastRound = r
	c.statsMu.Unlock()
	c.mu.Lock()
	reg := c.registry
	c.mu.Unlock()
	if reg == nil {
		return
	}
	result := "committed"
	switch {
	case r.Aborted:
		result = "aborted"
	case len(r.DeadDuring) > 0:
		result = "partial"
	}
	reg.Counter("dvdc_rounds_total", "result", result).Inc()
	reg.Histogram("dvdc_round_shipped_bytes", obs.ByteBuckets()).Observe(float64(r.BytesShipped))
	// End-to-end round wall, the health engine's round_time_p99 signal. Phase
	// walls are already split out in dvdc_round_phase_seconds.
	reg.Histogram("dvdc_round_seconds", obs.LatencyBuckets()).Observe((r.PrepareWall + r.CommitWall).Seconds())
}

// installVM pushes a rebuilt or evicted committed image to its new host.
// With the chunked data path active the image travels as concurrent
// MsgInstallChunk frames followed by a finalizing MsgInstall (Arg=1, no
// payload); otherwise one monolithic MsgInstall carries the whole image.
func (c *Coordinator) installVM(ctx obs.SpanContext, node int, vmName, text string, img []byte) error {
	cs := c.effectiveChunkSize()
	if cs <= 0 {
		resp, err := c.call(node, &wire.Message{Type: wire.MsgInstall, VM: vmName, Text: text, Payload: img, Trace: ctx.Trace, Span: ctx.Span})
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgInstallOK {
			return fmt.Errorf("runtime: node %d replied %v to install", node, resp.Type)
		}
		return nil
	}
	count := wire.ChunkCount(len(img), cs)
	if err := parallelDo(count, chunkPipelineWidth, func(i int) error {
		ch, err := wire.ChunkOf(img, i, cs)
		if err != nil {
			return err
		}
		enc := encodePooledChunk(&ch)
		resp, err := c.call(node, &wire.Message{Type: wire.MsgInstallChunk, VM: vmName, Payload: enc, Trace: ctx.Trace, Span: ctx.Span})
		bufpool.Put(enc) // Call wrote the frame before returning
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgInstallChunkOK {
			return fmt.Errorf("runtime: node %d replied %v to install-chunk", node, resp.Type)
		}
		return nil
	}); err != nil {
		return err
	}
	resp, err := c.call(node, &wire.Message{Type: wire.MsgInstall, VM: vmName, Text: text, Arg: 1, Trace: ctx.Trace, Span: ctx.Span})
	if err != nil {
		return err
	}
	if resp.Type != wire.MsgInstallOK {
		return fmt.Errorf("runtime: node %d replied %v to install", node, resp.Type)
	}
	return nil
}

// Checksums fetches the committed-image checksum of every VM, concurrently.
func (c *Coordinator) Checksums() (map[string]uint64, error) {
	vms := c.layout.VMs
	sums := make([]uint64, len(vms))
	if err := parallelDo(len(vms), c.fanoutWidth(), func(i int) error {
		v := vms[i]
		resp, err := c.call(v.Node, &wire.Message{Type: wire.MsgChecksum, VM: v.Name})
		if err != nil {
			return fmt.Errorf("runtime: checksum %q on node %d: %w", v.Name, v.Node, err)
		}
		sums[i] = resp.Arg
		return nil
	}); err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for i, v := range vms {
		out[v.Name] = sums[i]
	}
	return out, nil
}

// Quiesce undoes any staged-but-uncommitted captures left on alive nodes and
// returns every member's committed image to the last committed epoch. After
// an aborted round this is normally a no-op — the abort fanout already ran —
// but when the abort RPCs themselves were lost to a network fault, stale
// staged state survives until the next abort reaches the node. Chaos and
// soak harnesses call Quiesce before measuring committed state so a lost
// abort cannot masquerade as state divergence. Quiesce serializes with the
// other protocol operations: called while a round is in flight it blocks
// until the round finishes, rather than racing an abort against a commit.
func (c *Coordinator) Quiesce() error {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	return c.fanout(obs.SpanContext{}, "abort", c.aliveNodes(),
		func(int) *wire.Message { return &wire.Message{Type: wire.MsgAbort, Epoch: c.epoch.Load() + 1} },
		nil)
}

// VMState is one VM's committed-state fingerprint as reported by its host.
type VMState struct {
	Checksum uint64 // FNV-1a of the committed image
	Epoch    uint64 // protocol epoch of the committed image
}

// VMStates fetches every VM's committed-image checksum and protocol epoch,
// concurrently. The soak harness checks these against its shadow model after
// every round: checksums must match and epochs must never regress.
func (c *Coordinator) VMStates() (map[string]VMState, error) {
	vms := c.layout.VMs
	states := make([]VMState, len(vms))
	if err := parallelDo(len(vms), c.fanoutWidth(), func(i int) error {
		v := vms[i]
		resp, err := c.call(v.Node, &wire.Message{Type: wire.MsgChecksum, VM: v.Name})
		if err != nil {
			return fmt.Errorf("runtime: checksum %q on node %d: %w", v.Name, v.Node, err)
		}
		states[i] = VMState{Checksum: resp.Arg, Epoch: resp.Epoch}
		return nil
	}); err != nil {
		return nil, err
	}
	out := map[string]VMState{}
	for i, v := range vms {
		out[v.Name] = states[i]
	}
	return out, nil
}

// RecoverNode handles the death of a single node; see RecoverNodes.
func (c *Coordinator) RecoverNode(failed int) (*cluster.Plan, error) {
	return c.RecoverNodes(failed)
}

// RecoverNodes handles the simultaneous death of up to `tolerance` nodes:
// it plans recovery against the layout, has surviving parity nodes solve the
// erasure system for every lost VM (pulling survivor images and the group's
// remaining parity blocks over the wire), installs the rebuilt VMs on their
// target nodes, re-homes lost parity blocks, rolls every surviving VM back
// to the committed epoch, and updates the layout. Reconstructions and parity
// re-homes run concurrently across groups — groups share no VMs and no
// parity blocks (orthogonality), so their recoveries are independent. The
// failed nodes must already be unreachable (or are about to be treated as
// such); the caller names them explicitly. Nodes the commit phase already
// declared dead (see PartialCommitError) may — and must — be passed here.
func (c *Coordinator) RecoverNodes(failed ...int) (*cluster.Plan, error) {
	return c.RecoverNodesIn(obs.SpanContext{}, failed...)
}

// RecoverNodesIn is RecoverNodes with a parent span context, so a recovery
// driven by the service reconciler nests under its reconcile span. A zero
// context roots a fresh trace.
func (c *Coordinator) RecoverNodesIn(parent obs.SpanContext, failed ...int) (plan *cluster.Plan, err error) {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	if len(failed) == 0 {
		return &cluster.Plan{}, nil
	}
	t0 := time.Now()
	c.mu.Lock()
	tr := c.tracer
	c.mu.Unlock()
	root := tr.Start(parent, "recovery", "coord")
	root.SetAttr("failed", fmt.Sprintf("%v", failed))
	defer func() { root.FinishErr(err) }()
	seen := map[int]bool{}
	c.mu.Lock()
	for _, f := range failed {
		if seen[f] {
			c.mu.Unlock()
			return nil, fmt.Errorf("runtime: node %d named twice", f)
		}
		seen[f] = true
		if c.dead[f] && !c.pending[f] {
			c.mu.Unlock()
			return nil, fmt.Errorf("runtime: node %d already recovered", f)
		}
	}
	// Plan against every node that is currently unavailable, not just the
	// new casualties, so targets are never chosen among the already-dead.
	downSet := map[int]bool{}
	for _, f := range failed {
		downSet[f] = true
	}
	for n := range c.dead {
		downSet[n] = true
	}
	c.mu.Unlock()
	var down []int
	for n := range downSet {
		down = append(down, n)
	}
	sort.Ints(down)

	// Snapshot source locations before mutating the layout.
	nodeOf := map[string]int{}
	for _, v := range c.layout.VMs {
		nodeOf[v.Name] = v.Node
	}
	parityOf := map[int][]int{}
	for _, g := range c.layout.Groups {
		parityOf[g.Index] = append([]int(nil), g.ParityNodes...)
	}
	plan, err = c.layout.PlanRecovery(down...)
	if err != nil {
		return nil, err
	}
	for _, f := range failed {
		c.markDead(f, false)
		c.mu.Lock()
		delete(c.pending, f)
		c.mu.Unlock()
	}
	isDead := func(n int) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.dead[n]
	}

	// Roll every surviving node back to the committed epoch first, so the
	// survivor images used for reconstruction are the committed ones.
	rollback := tr.Child(root.Context(), "rollback", "coord")
	rbErr := c.fanout(rollback.ContextOr(obs.SpanContext{}), "rollback", c.aliveNodes(),
		func(int) *wire.Message { return &wire.Message{Type: wire.MsgRollback} },
		nil)
	rollback.FinishErr(rbErr)
	if rbErr != nil {
		return nil, rbErr
	}

	// Group the lost VMs so each reconstruction request can name all of its
	// group's casualties (the solver needs the full erasure pattern), and so
	// independent groups can recover concurrently.
	lostByGroup := map[int][]string{}
	restoresByGroup := map[int][]cluster.Step{}
	var restoreGroups []int
	for _, s := range plan.Steps {
		if s.Kind != cluster.RestoreVM {
			continue
		}
		if _, ok := restoresByGroup[s.Group]; !ok {
			restoreGroups = append(restoreGroups, s.Group)
		}
		lostByGroup[s.Group] = append(lostByGroup[s.Group], s.VM)
		restoresByGroup[s.Group] = append(restoresByGroup[s.Group], s)
	}
	sort.Ints(restoreGroups)

	// Restore lost VMs: per group, a surviving parity node solves and each
	// target installs. Groups run in parallel; within a group the steps run
	// in order. newHomes collects per-group placement updates, merged into
	// nodeOf after the parallel section (groups never share VMs, so the
	// per-group maps are disjoint).
	newHomes := make([]map[string]int, len(restoreGroups))
	if err := parallelDo(len(restoreGroups), c.fanoutWidth(), func(gi int) (gerr error) {
		group := restoreGroups[gi]
		gspan := tr.Child(root.Context(), fmt.Sprintf("restore g%d", group), "coord")
		gctx := gspan.ContextOr(obs.SpanContext{})
		defer func() { gspan.FinishErr(gerr) }()
		homes := map[string]int{}
		newHomes[gi] = homes
		g := c.layout.Groups[group]
		// Alive parity blocks of this group (by original homes).
		peers := map[int]int{}
		solver := -1
		for i, pn := range parityOf[group] {
			if isDead(pn) {
				continue
			}
			peers[i] = pn
			if solver == -1 {
				solver = pn
			}
		}
		if len(peers) < len(lostByGroup[group]) {
			return fmt.Errorf("runtime: group %d lost %d members but only %d parity blocks survive",
				group, len(lostByGroup[group]), len(peers))
		}
		for _, s := range restoresByGroup[group] {
			rc := reconstructConfig{
				LostVM:      s.VM,
				AllLost:     lostByGroup[group],
				Group:       group,
				Tolerance:   c.layout.Tolerance,
				Survivors:   map[string]int{},
				ParityPeers: peers,
			}
			lostSet := map[string]bool{}
			for _, lv := range rc.AllLost {
				lostSet[lv] = true
			}
			for _, m := range g.Members {
				if !lostSet[m] {
					rc.Survivors[m] = nodeOf[m]
				}
			}
			text, err := encodeJSON(rc)
			if err != nil {
				return err
			}
			resp, err := c.call(solver, &wire.Message{Type: wire.MsgReconstruct, Group: int32(group), Text: text, Trace: gctx.Trace, Span: gctx.Span})
			if err != nil {
				return fmt.Errorf("runtime: reconstruct %q on node %d: %w", s.VM, solver, err)
			}
			v, _ := c.layout.VM(s.VM)
			ic := installConfig{VMConfig: c.vmConfig(v), Epoch: resp.Epoch}
			ic.Seed = c.vmSeed(s.VM) + int64(c.epoch.Load()) + 1 // fresh workload stream after respawn
			itext, err := encodeJSON(ic)
			if err != nil {
				return err
			}
			if err := c.installVM(gctx, s.TargetNode, s.VM, itext, resp.Payload); err != nil {
				return fmt.Errorf("runtime: install %q on node %d: %w", s.VM, s.TargetNode, err)
			}
			homes[s.VM] = s.TargetNode
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, homes := range newHomes {
		for vmName, node := range homes {
			nodeOf[vmName] = node
		}
	}

	// Apply the plan so the layout reflects new VM homes before keepers are
	// rebuilt (the rebuild pulls images from the *current* hosts).
	if err := c.layout.ApplyRecovery(plan); err != nil {
		return nil, err
	}

	// Re-home lost parity blocks and point the group's members at them.
	// Again parallel across groups, ordered within a group (parityOf[group]
	// is consumed entry by entry as blocks are rebuilt).
	rehomesByGroup := map[int][]cluster.Step{}
	var rehomeGroups []int
	for _, s := range plan.Steps {
		if s.Kind != cluster.RehomeParity {
			continue
		}
		if _, ok := rehomesByGroup[s.Group]; !ok {
			rehomeGroups = append(rehomeGroups, s.Group)
		}
		rehomesByGroup[s.Group] = append(rehomesByGroup[s.Group], s)
	}
	sort.Ints(rehomeGroups)
	if err := parallelDo(len(rehomeGroups), c.fanoutWidth(), func(gi int) (gerr error) {
		group := rehomeGroups[gi]
		gspan := tr.Child(root.Context(), fmt.Sprintf("rehome g%d", group), "coord")
		gctx := gspan.ContextOr(obs.SpanContext{})
		defer func() { gspan.FinishErr(gerr) }()
		g := c.layout.Groups[group]
		for _, s := range rehomesByGroup[group] {
			// Which parity index died and is not yet rebuilt this pass?
			idx := -1
			for i, pn := range parityOf[group] {
				if pn >= 0 && isDead(pn) {
					idx = i
					parityOf[group][i] = -1 // consumed
					break
				}
			}
			if idx == -1 {
				return fmt.Errorf("runtime: group %d has no dead parity block to re-home", group)
			}
			rk := rebuildKeeperConfig{
				KeeperConfig: KeeperConfig{
					Group:     group,
					ParityIdx: idx,
					Tolerance: c.layout.Tolerance,
					Members:   append([]string(nil), g.Members...),
					Pages:     c.pages,
					PageSize:  c.pageSize,
				},
				MemberNodes: map[string]int{},
				Epochs:      map[string]uint64{},
			}
			for _, m := range g.Members {
				rk.MemberNodes[m] = nodeOf[m]
				rk.Epochs[m] = c.epoch.Load()
			}
			text, err := encodeJSON(rk)
			if err != nil {
				return err
			}
			if _, err := c.call(s.TargetNode, &wire.Message{Type: wire.MsgRebuildKeeper, Group: int32(group), Text: text, Trace: gctx.Trace, Span: gctx.Span}); err != nil {
				return fmt.Errorf("runtime: rebuild keeper %d on node %d: %w", group, s.TargetNode, err)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Refresh every member's parity pointers for all groups touched by the
	// failure (blocks may have moved, and reconstructed VMs carry copies of
	// the pre-failure assignment): one batched message per node.
	touched := map[int]bool{}
	for _, s := range plan.Steps {
		touched[s.Group] = true
	}
	if err := c.refreshParityPointers(root.ContextOr(obs.SpanContext{}), touched); err != nil {
		return nil, err
	}
	d := time.Since(t0)
	c.observePhase("recovery", d)
	c.statsMu.Lock()
	c.lastRound.RecoveryWall = d
	c.lastRound.RecoveryCarried = false
	c.lastRound.RecoveryTraceID = root.TraceID()
	c.statsMu.Unlock()
	return plan, nil
}

// refreshParityPointers pushes the current parity-node assignment of the
// given groups to every alive node, batched into one MsgSetParityBatch per
// node instead of one MsgSetParity per (group, parity block, node).
func (c *Coordinator) refreshParityPointers(ctx obs.SpanContext, groups map[int]bool) error {
	var sorted []int
	for g := range groups {
		sorted = append(sorted, g)
	}
	sort.Ints(sorted)
	var updates []parityUpdate
	for _, gi := range sorted {
		for i, pn := range c.layout.Groups[gi].ParityNodes {
			updates = append(updates, parityUpdate{Group: gi, Idx: i, Node: pn})
		}
	}
	if len(updates) == 0 {
		return nil
	}
	text, err := encodeJSON(updates)
	if err != nil {
		return err
	}
	return c.fanout(ctx, "set-parity", c.aliveNodes(),
		func(int) *wire.Message { return &wire.Message{Type: wire.MsgSetParityBatch, Text: text} },
		func(node int, resp *wire.Message) error {
			if resp.Type != wire.MsgSetParityBatchOK {
				return fmt.Errorf("runtime: node %d replied %v to set-parity batch", node, resp.Type)
			}
			return nil
		})
}

// Repair marks a previously failed node as back in service. Its daemon must
// be listening on the original address again (or a replacement daemon on the
// same address); it starts empty and picks up work via Rebalance. A node the
// commit phase declared dead must be recovered (RecoverNodes) before repair.
func (c *Coordinator) Repair(node int) error {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	c.mu.Lock()
	dead, pending := c.dead[node], c.pending[node]
	c.mu.Unlock()
	if !dead {
		return fmt.Errorf("runtime: node %d is not dead", node)
	}
	if pending {
		return fmt.Errorf("runtime: node %d failed mid-commit and has not been recovered; run RecoverNodes first", node)
	}
	probe, err := transport.Dial(c.addrs[node])
	if err != nil {
		return fmt.Errorf("runtime: node %d not reachable for repair: %w", node, err)
	}
	probe.Close()
	c.mu.Lock()
	delete(c.dead, node)
	c.mu.Unlock()
	// The rejoined daemon needs a fresh configuration (peers, compression,
	// chunking); it hosts nothing until rebalance moves VMs or parity to it.
	cfg := NodeConfig{NodeID: node, Peers: c.addrs, Compress: c.compress, ChunkSize: c.chunkSize, Dedup: c.dedup, PipelineWidth: c.pipeWidth}
	text, err := encodeJSON(cfg)
	if err != nil {
		return err
	}
	if _, err := c.call(node, &wire.Message{Type: wire.MsgConfigure, Text: text}); err != nil {
		return fmt.Errorf("runtime: reconfigure repaired node %d: %w", node, err)
	}
	return nil
}

// Rebalance restores strict orthogonality after degraded recoveries, once
// repaired nodes have rejoined: co-located VMs move (evict from the old
// host, install on the new — the VMs are quiescent right after a commit, so
// the move is a committed-image transfer), and co-located parity blocks are
// recomputed on their new homes. VM moves and parity rebuilds each run
// concurrently (moves touch disjoint VMs, rebuilds disjoint parity blocks).
// Call immediately after Checkpoint, before any Step.
func (c *Coordinator) Rebalance() (plan *cluster.Plan, err error) {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	t0 := time.Now()
	c.mu.Lock()
	tr := c.tracer
	var down []int
	for n := range c.dead {
		down = append(down, n)
	}
	c.mu.Unlock()
	root := tr.Start(obs.SpanContext{}, "rebalance", "coord")
	defer func() { root.FinishErr(err) }()
	rctx := root.ContextOr(obs.SpanContext{})
	plan, err = c.layout.PlanRebalance(down...)
	if err != nil {
		return nil, err
	}
	// Move VMs first, concurrently (each move is its own evict+install pair
	// and no two steps touch the same VM or the same parity block).
	var moves []cluster.Step
	for _, s := range plan.Steps {
		if s.Kind == cluster.RestoreVM {
			moves = append(moves, s)
		}
	}
	if err := parallelDo(len(moves), c.fanoutWidth(), func(i int) error {
		s := moves[i]
		v, ok := c.layout.VM(s.VM)
		if !ok {
			return fmt.Errorf("runtime: rebalance of unknown VM %q", s.VM)
		}
		resp, err := c.call(v.Node, &wire.Message{Type: wire.MsgEvict, VM: s.VM, Trace: rctx.Trace, Span: rctx.Span})
		if err != nil {
			return fmt.Errorf("runtime: evict %q from node %d: %w", s.VM, v.Node, err)
		}
		ic := installConfig{VMConfig: c.vmConfig(v), Epoch: resp.Epoch}
		ic.Seed = c.vmSeed(s.VM) + int64(c.epoch.Load()) + 7919
		text, err := encodeJSON(ic)
		if err != nil {
			return err
		}
		if err := c.installVM(rctx, s.TargetNode, s.VM, text, resp.Payload); err != nil {
			return fmt.Errorf("runtime: install %q on node %d: %w", s.VM, s.TargetNode, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Apply the placement so parity rebuilds see the new VM homes, then
	// rebuild the moved parity blocks on their targets, concurrently.
	if err := c.layout.ApplyRebalance(plan); err != nil {
		return nil, err
	}
	var rehomes []cluster.Step
	for _, s := range plan.Steps {
		if s.Kind == cluster.RehomeParity {
			rehomes = append(rehomes, s)
		}
	}
	if err := c.rebuildRehomes(rctx, rehomes); err != nil {
		return nil, err
	}
	// Refresh parity pointers on every alive node for touched groups.
	touched := map[int]bool{}
	for _, s := range plan.Steps {
		touched[s.Group] = true
	}
	if err := c.refreshParityPointers(rctx, touched); err != nil {
		return nil, err
	}
	c.observePhase("rebalance", time.Since(t0))
	return plan, nil
}

// rebuildRehomes rebuilds each RehomeParity step's parity block on its target
// node, concurrently, against the already-applied layout (each rebuild pulls
// every member's committed image and folds them on the new keeper).
func (c *Coordinator) rebuildRehomes(rctx obs.SpanContext, rehomes []cluster.Step) error {
	nodeOf := map[string]int{}
	for _, v := range c.layout.VMs {
		nodeOf[v.Name] = v.Node
	}
	return parallelDo(len(rehomes), c.fanoutWidth(), func(i int) error {
		s := rehomes[i]
		idx := s.SourceNodes[0]
		g := c.layout.Groups[s.Group]
		rk := rebuildKeeperConfig{
			KeeperConfig: KeeperConfig{
				Group:     s.Group,
				ParityIdx: idx,
				Tolerance: c.layout.Tolerance,
				Members:   append([]string(nil), g.Members...),
				Pages:     c.pages,
				PageSize:  c.pageSize,
			},
			MemberNodes: map[string]int{},
			Epochs:      map[string]uint64{},
		}
		for _, m := range g.Members {
			rk.MemberNodes[m] = nodeOf[m]
			rk.Epochs[m] = c.epoch.Load()
		}
		text, err := encodeJSON(rk)
		if err != nil {
			return err
		}
		if _, err := c.call(s.TargetNode, &wire.Message{Type: wire.MsgRebuildKeeper, Group: int32(s.Group), Text: text, Trace: rctx.Trace, Span: rctx.Span}); err != nil {
			return fmt.Errorf("runtime: rebuild keeper %d on node %d: %w", s.Group, s.TargetNode, err)
		}
		return nil
	})
}

// EvacuateKeepers drains every parity block off one (alive) node — the
// placement response to the telemetry plane flagging the node as habitually
// slow. Each evacuated block is recomputed on an orthogonality-preserving
// target (cluster.PlanKeeperEvacuation) and every alive node's parity
// pointers are refreshed, exactly the recovery/rebalance machinery — the
// node keeps its hosted VMs, it just stops being a fan-in point. Call right
// after a committed Checkpoint, before any Step, like Rebalance. Layouts
// with no legal target (the paper's minimal 4-node placement) fail loudly;
// an empty plan means the node already keeps no parity.
func (c *Coordinator) EvacuateKeepers(node int) (plan *cluster.Plan, err error) {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	t0 := time.Now()
	c.mu.Lock()
	tr := c.tracer
	if c.dead[node] {
		c.mu.Unlock()
		return nil, fmt.Errorf("runtime: cannot evacuate keepers off dead node %d", node)
	}
	var down []int
	for n := range c.dead {
		down = append(down, n)
	}
	c.mu.Unlock()
	root := tr.Start(obs.SpanContext{}, "evacuate", "coord")
	root.SetAttr("node", fmt.Sprint(node))
	defer func() { root.FinishErr(err) }()
	rctx := root.ContextOr(obs.SpanContext{})
	plan, err = c.layout.PlanKeeperEvacuation(node, down...)
	if err != nil {
		return nil, err
	}
	if len(plan.Steps) == 0 {
		return plan, nil
	}
	if err := c.layout.ApplyRebalance(plan); err != nil {
		return nil, err
	}
	if err := c.rebuildRehomes(rctx, plan.Steps); err != nil {
		return nil, err
	}
	touched := map[int]bool{}
	for _, s := range plan.Steps {
		touched[s.Group] = true
	}
	if err := c.refreshParityPointers(rctx, touched); err != nil {
		return nil, err
	}
	c.observePhase("evacuate", time.Since(t0))
	return plan, nil
}

// Close drops every coordinator connection.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for n, p := range c.pools {
		p.Close()
		delete(c.pools, n)
	}
}
