package runtime

import (
	"fmt"
	"sort"

	"dvdc/internal/cluster"
	"dvdc/internal/transport"
	"dvdc/internal/wire"
)

// Coordinator drives a set of node daemons through the DVDC protocol:
// initial configuration, workload execution, two-phase checkpoint rounds,
// and recovery after a node death. It owns the live cluster.Layout and keeps
// it in sync with what the nodes are doing.
type Coordinator struct {
	layout   *cluster.Layout
	addrs    map[int]string
	conns    map[int]*transport.Conn
	dead     map[int]bool
	pages    int
	pageSize int
	epoch    uint64
	seedBase int64
	compress bool
}

// NewCoordinator wires a layout to node addresses. addrs must cover every
// node index in the layout.
func NewCoordinator(layout *cluster.Layout, addrs map[int]string, pages, pageSize int, seed int64) (*Coordinator, error) {
	if layout == nil {
		return nil, fmt.Errorf("runtime: nil layout")
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	for n := 0; n < layout.Nodes; n++ {
		if _, ok := addrs[n]; !ok {
			return nil, fmt.Errorf("runtime: no address for node %d", n)
		}
	}
	if pages <= 0 || pageSize <= 0 {
		return nil, fmt.Errorf("runtime: bad geometry %dx%d", pages, pageSize)
	}
	return &Coordinator{
		layout:   layout,
		addrs:    addrs,
		conns:    map[int]*transport.Conn{},
		dead:     map[int]bool{},
		pages:    pages,
		pageSize: pageSize,
		seedBase: seed,
	}, nil
}

// SetCompress enables flate compression of delta shipments; call before
// Setup (the flag rides the node configuration).
func (c *Coordinator) SetCompress(on bool) { c.compress = on }

// NodeStats fetches a node's protocol counters.
func (c *Coordinator) NodeStats(node int) (NodeStats, error) {
	resp, err := c.call(node, &wire.Message{Type: wire.MsgStats})
	if err != nil {
		return NodeStats{}, err
	}
	var st NodeStats
	if err := decodeJSON(resp.Text, &st); err != nil {
		return NodeStats{}, err
	}
	return st, nil
}

// Layout exposes the live layout.
func (c *Coordinator) Layout() *cluster.Layout { return c.layout }

// Epoch returns the last committed checkpoint epoch.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

func (c *Coordinator) conn(node int) (*transport.Conn, error) {
	if c.dead[node] {
		return nil, fmt.Errorf("runtime: node %d is marked dead", node)
	}
	if cc, ok := c.conns[node]; ok {
		return cc, nil
	}
	cc, err := transport.Dial(c.addrs[node])
	if err != nil {
		return nil, err
	}
	c.conns[node] = cc
	return cc, nil
}

func (c *Coordinator) call(node int, msg *wire.Message) (*wire.Message, error) {
	cc, err := c.conn(node)
	if err != nil {
		return nil, err
	}
	resp, err := cc.Call(msg)
	if err != nil {
		// Drop the cached connection so a retry re-dials.
		cc.Close()
		delete(c.conns, node)
		return nil, err
	}
	return resp, nil
}

// aliveNodes lists nodes not marked dead, ascending.
func (c *Coordinator) aliveNodes() []int {
	var out []int
	for n := 0; n < c.layout.Nodes; n++ {
		if !c.dead[n] {
			out = append(out, n)
		}
	}
	return out
}

// vmSeed derives a deterministic workload seed per VM.
func (c *Coordinator) vmSeed(name string) int64 {
	var h int64 = c.seedBase
	for _, r := range name {
		h = h*131 + int64(r)
	}
	return h
}

// vmConfig renders the current VMConfig for a VM name.
func (c *Coordinator) vmConfig(v cluster.VMPlacement) VMConfig {
	g := c.layout.Groups[v.Group]
	return VMConfig{
		Name:        v.Name,
		Pages:       c.pages,
		PageSize:    c.pageSize,
		Group:       v.Group,
		ParityNodes: append([]int(nil), g.ParityNodes...),
		Seed:        c.vmSeed(v.Name),
	}
}

// Setup pushes the initial configuration to every node.
func (c *Coordinator) Setup() error {
	for n := 0; n < c.layout.Nodes; n++ {
		cfg := NodeConfig{NodeID: n, Peers: c.addrs, Compress: c.compress}
		for _, v := range c.layout.VMs {
			if v.Node == n {
				cfg.VMs = append(cfg.VMs, c.vmConfig(v))
			}
		}
		for _, g := range c.layout.Groups {
			for i, pn := range g.ParityNodes {
				if pn == n {
					cfg.Keepers = append(cfg.Keepers, KeeperConfig{
						Group:     g.Index,
						ParityIdx: i,
						Tolerance: c.layout.Tolerance,
						Members:   append([]string(nil), g.Members...),
						Pages:     c.pages,
						PageSize:  c.pageSize,
					})
				}
			}
		}
		text, err := encodeJSON(cfg)
		if err != nil {
			return err
		}
		resp, err := c.call(n, &wire.Message{Type: wire.MsgConfigure, Text: text})
		if err != nil {
			return fmt.Errorf("runtime: configure node %d: %w", n, err)
		}
		if resp.Type != wire.MsgConfigureOK {
			return fmt.Errorf("runtime: node %d replied %v to configure", n, resp.Type)
		}
	}
	return nil
}

// Step runs the synthetic workload n steps on every alive node's VMs.
func (c *Coordinator) Step(n uint64) error {
	for _, node := range c.aliveNodes() {
		if _, err := c.call(node, &wire.Message{Type: wire.MsgStep, Arg: n}); err != nil {
			return fmt.Errorf("runtime: step on node %d: %w", node, err)
		}
	}
	return nil
}

// Checkpoint executes one two-phase checkpoint round: PREPARE on every alive
// node (each captures deltas and ships them to parity peers), then COMMIT.
// If any prepare fails, the round is aborted everywhere and the error
// returned; the cluster stays at the previous committed epoch.
func (c *Coordinator) Checkpoint() error {
	next := c.epoch + 1
	prepared := []int{}
	var prepErr error
	for _, node := range c.aliveNodes() {
		resp, err := c.call(node, &wire.Message{Type: wire.MsgPrepare, Epoch: next})
		if err != nil {
			prepErr = fmt.Errorf("runtime: prepare on node %d: %w", node, err)
			break
		}
		if resp.Type != wire.MsgPrepareOK {
			prepErr = fmt.Errorf("runtime: node %d replied %v to prepare", node, resp.Type)
			break
		}
		prepared = append(prepared, node)
	}
	if prepErr != nil {
		for _, node := range prepared {
			// Best effort: a node that cannot abort will be caught by the
			// next prepare's staged-delta check.
			c.call(node, &wire.Message{Type: wire.MsgAbort, Epoch: next}) //nolint:errcheck
		}
		return prepErr
	}
	for _, node := range c.aliveNodes() {
		resp, err := c.call(node, &wire.Message{Type: wire.MsgCommit, Epoch: next})
		if err != nil {
			return fmt.Errorf("runtime: commit on node %d: %w", node, err)
		}
		if resp.Type != wire.MsgCommitOK {
			return fmt.Errorf("runtime: node %d replied %v to commit", node, resp.Type)
		}
	}
	c.epoch = next
	return nil
}

// Checksums fetches the committed-image checksum of every VM.
func (c *Coordinator) Checksums() (map[string]uint64, error) {
	out := map[string]uint64{}
	for _, v := range c.layout.VMs {
		resp, err := c.call(v.Node, &wire.Message{Type: wire.MsgChecksum, VM: v.Name})
		if err != nil {
			return nil, fmt.Errorf("runtime: checksum %q on node %d: %w", v.Name, v.Node, err)
		}
		out[v.Name] = resp.Arg
	}
	return out, nil
}

// RecoverNode handles the death of a single node; see RecoverNodes.
func (c *Coordinator) RecoverNode(failed int) (*cluster.Plan, error) {
	return c.RecoverNodes(failed)
}

// RecoverNodes handles the simultaneous death of up to `tolerance` nodes:
// it plans recovery against the layout, has surviving parity nodes solve the
// erasure system for every lost VM (pulling survivor images and the group's
// remaining parity blocks over the wire), installs the rebuilt VMs on their
// target nodes, re-homes lost parity blocks, rolls every surviving VM back
// to the committed epoch, and updates the layout. The failed nodes must
// already be unreachable (or are about to be treated as such); the caller
// names them explicitly.
func (c *Coordinator) RecoverNodes(failed ...int) (*cluster.Plan, error) {
	if len(failed) == 0 {
		return &cluster.Plan{}, nil
	}
	for _, f := range failed {
		if c.dead[f] {
			return nil, fmt.Errorf("runtime: node %d already recovered", f)
		}
	}
	// Snapshot source locations before mutating the layout.
	nodeOf := map[string]int{}
	for _, v := range c.layout.VMs {
		nodeOf[v.Name] = v.Node
	}
	parityOf := map[int][]int{}
	for _, g := range c.layout.Groups {
		parityOf[g.Index] = append([]int(nil), g.ParityNodes...)
	}
	// Plan against every node that is currently unavailable, not just the
	// new casualties, so targets are never chosen among the already-dead.
	down := append([]int(nil), failed...)
	for n := range c.dead {
		down = append(down, n)
	}
	plan, err := c.layout.PlanRecovery(down...)
	if err != nil {
		return nil, err
	}
	for _, f := range failed {
		c.dead[f] = true
		if cc, ok := c.conns[f]; ok {
			cc.Close()
			delete(c.conns, f)
		}
	}

	// Roll every surviving node back to the committed epoch first, so the
	// survivor images used for reconstruction are the committed ones.
	for _, node := range c.aliveNodes() {
		if _, err := c.call(node, &wire.Message{Type: wire.MsgRollback}); err != nil {
			return nil, fmt.Errorf("runtime: rollback on node %d: %w", node, err)
		}
	}

	// Group the lost VMs so each reconstruction request can name all of its
	// group's casualties (the solver needs the full erasure pattern).
	lostByGroup := map[int][]string{}
	for _, s := range plan.Steps {
		if s.Kind == cluster.RestoreVM {
			lostByGroup[s.Group] = append(lostByGroup[s.Group], s.VM)
		}
	}

	// Restore lost VMs: a surviving parity node of the group solves, the
	// target installs.
	for _, s := range plan.Steps {
		if s.Kind != cluster.RestoreVM {
			continue
		}
		g := c.layout.Groups[s.Group]
		// Alive parity blocks of this group (by original homes).
		peers := map[int]int{}
		solver := -1
		for i, pn := range parityOf[s.Group] {
			if c.dead[pn] {
				continue
			}
			peers[i] = pn
			if solver == -1 {
				solver = pn
			}
		}
		if len(peers) < len(lostByGroup[s.Group]) {
			return nil, fmt.Errorf("runtime: group %d lost %d members but only %d parity blocks survive",
				s.Group, len(lostByGroup[s.Group]), len(peers))
		}
		rc := reconstructConfig{
			LostVM:      s.VM,
			AllLost:     lostByGroup[s.Group],
			Group:       s.Group,
			Tolerance:   c.layout.Tolerance,
			Survivors:   map[string]int{},
			ParityPeers: peers,
		}
		lostSet := map[string]bool{}
		for _, lv := range rc.AllLost {
			lostSet[lv] = true
		}
		for _, m := range g.Members {
			if !lostSet[m] {
				rc.Survivors[m] = nodeOf[m]
			}
		}
		text, err := encodeJSON(rc)
		if err != nil {
			return nil, err
		}
		resp, err := c.call(solver, &wire.Message{Type: wire.MsgReconstruct, Group: int32(s.Group), Text: text})
		if err != nil {
			return nil, fmt.Errorf("runtime: reconstruct %q on node %d: %w", s.VM, solver, err)
		}
		v, _ := c.layout.VM(s.VM)
		ic := installConfig{VMConfig: c.vmConfig(v), Epoch: resp.Epoch}
		ic.Seed = c.vmSeed(s.VM) + int64(c.epoch) + 1 // fresh workload stream after respawn
		itext, err := encodeJSON(ic)
		if err != nil {
			return nil, err
		}
		if _, err := c.call(s.TargetNode, &wire.Message{Type: wire.MsgInstall, VM: s.VM, Text: itext, Payload: resp.Payload}); err != nil {
			return nil, fmt.Errorf("runtime: install %q on node %d: %w", s.VM, s.TargetNode, err)
		}
		nodeOf[s.VM] = s.TargetNode
	}

	// Apply the plan so the layout reflects new VM homes before keepers are
	// rebuilt (the rebuild pulls images from the *current* hosts).
	if err := c.layout.ApplyRecovery(plan); err != nil {
		return nil, err
	}

	// Re-home lost parity blocks and point the group's members at them.
	for _, s := range plan.Steps {
		if s.Kind != cluster.RehomeParity {
			continue
		}
		g := c.layout.Groups[s.Group]
		// Which parity index died and is not yet rebuilt this pass?
		idx := -1
		for i, pn := range parityOf[s.Group] {
			if pn >= 0 && c.dead[pn] {
				idx = i
				parityOf[s.Group][i] = -1 // consumed
				break
			}
		}
		if idx == -1 {
			return nil, fmt.Errorf("runtime: group %d has no dead parity block to re-home", s.Group)
		}
		rk := rebuildKeeperConfig{
			KeeperConfig: KeeperConfig{
				Group:     s.Group,
				ParityIdx: idx,
				Tolerance: c.layout.Tolerance,
				Members:   append([]string(nil), g.Members...),
				Pages:     c.pages,
				PageSize:  c.pageSize,
			},
			MemberNodes: map[string]int{},
			Epochs:      map[string]uint64{},
		}
		for _, m := range g.Members {
			rk.MemberNodes[m] = nodeOf[m]
			rk.Epochs[m] = c.epoch
		}
		text, err := encodeJSON(rk)
		if err != nil {
			return nil, err
		}
		if _, err := c.call(s.TargetNode, &wire.Message{Type: wire.MsgRebuildKeeper, Group: int32(s.Group), Text: text}); err != nil {
			return nil, fmt.Errorf("runtime: rebuild keeper %d on node %d: %w", s.Group, s.TargetNode, err)
		}
	}

	// Refresh every member's parity pointers for all groups touched by the
	// failure (blocks may have moved, and reconstructed VMs carry copies of
	// the pre-failure assignment).
	touched := map[int]bool{}
	for _, s := range plan.Steps {
		touched[s.Group] = true
	}
	var groups []int
	for g := range touched {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, gi := range groups {
		g := c.layout.Groups[gi]
		for i, pn := range g.ParityNodes {
			for _, node := range c.aliveNodes() {
				if _, err := c.call(node, &wire.Message{
					Type: wire.MsgSetParity, Group: int32(gi),
					Epoch: uint64(i), Arg: uint64(pn),
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return plan, nil
}

// Repair marks a previously failed node as back in service. Its daemon must
// be listening on the original address again (or a replacement daemon on the
// same address); it starts empty and picks up work via Rebalance.
func (c *Coordinator) Repair(node int) error {
	if !c.dead[node] {
		return fmt.Errorf("runtime: node %d is not dead", node)
	}
	probe, err := transport.Dial(c.addrs[node])
	if err != nil {
		return fmt.Errorf("runtime: node %d not reachable for repair: %w", node, err)
	}
	probe.Close()
	delete(c.dead, node)
	// The rejoined daemon needs a fresh configuration (peers, compression);
	// it hosts nothing until rebalance moves VMs or parity to it.
	cfg := NodeConfig{NodeID: node, Peers: c.addrs, Compress: c.compress}
	text, err := encodeJSON(cfg)
	if err != nil {
		return err
	}
	if _, err := c.call(node, &wire.Message{Type: wire.MsgConfigure, Text: text}); err != nil {
		return fmt.Errorf("runtime: reconfigure repaired node %d: %w", node, err)
	}
	return nil
}

// Rebalance restores strict orthogonality after degraded recoveries, once
// repaired nodes have rejoined: co-located VMs move (evict from the old
// host, install on the new — the VMs are quiescent right after a commit, so
// the move is a committed-image transfer), and co-located parity blocks are
// recomputed on their new homes. Call immediately after Checkpoint, before
// any Step.
func (c *Coordinator) Rebalance() (*cluster.Plan, error) {
	var down []int
	for n := range c.dead {
		down = append(down, n)
	}
	plan, err := c.layout.PlanRebalance(down...)
	if err != nil {
		return nil, err
	}
	// Move VMs first.
	for _, s := range plan.Steps {
		if s.Kind != cluster.RestoreVM {
			continue
		}
		v, ok := c.layout.VM(s.VM)
		if !ok {
			return nil, fmt.Errorf("runtime: rebalance of unknown VM %q", s.VM)
		}
		resp, err := c.call(v.Node, &wire.Message{Type: wire.MsgEvict, VM: s.VM})
		if err != nil {
			return nil, fmt.Errorf("runtime: evict %q from node %d: %w", s.VM, v.Node, err)
		}
		ic := installConfig{VMConfig: c.vmConfig(v), Epoch: resp.Epoch}
		ic.Seed = c.vmSeed(s.VM) + int64(c.epoch) + 7919
		text, err := encodeJSON(ic)
		if err != nil {
			return nil, err
		}
		if _, err := c.call(s.TargetNode, &wire.Message{Type: wire.MsgInstall, VM: s.VM, Text: text, Payload: resp.Payload}); err != nil {
			return nil, fmt.Errorf("runtime: install %q on node %d: %w", s.VM, s.TargetNode, err)
		}
	}
	// Apply the placement so parity rebuilds see the new VM homes, then
	// rebuild the moved parity blocks on their targets.
	if err := c.layout.ApplyRebalance(plan); err != nil {
		return nil, err
	}
	nodeOf := map[string]int{}
	for _, v := range c.layout.VMs {
		nodeOf[v.Name] = v.Node
	}
	for _, s := range plan.Steps {
		if s.Kind != cluster.RehomeParity {
			continue
		}
		idx := s.SourceNodes[0]
		g := c.layout.Groups[s.Group]
		rk := rebuildKeeperConfig{
			KeeperConfig: KeeperConfig{
				Group:     s.Group,
				ParityIdx: idx,
				Tolerance: c.layout.Tolerance,
				Members:   append([]string(nil), g.Members...),
				Pages:     c.pages,
				PageSize:  c.pageSize,
			},
			MemberNodes: map[string]int{},
			Epochs:      map[string]uint64{},
		}
		for _, m := range g.Members {
			rk.MemberNodes[m] = nodeOf[m]
			rk.Epochs[m] = c.epoch
		}
		text, err := encodeJSON(rk)
		if err != nil {
			return nil, err
		}
		if _, err := c.call(s.TargetNode, &wire.Message{Type: wire.MsgRebuildKeeper, Group: int32(s.Group), Text: text}); err != nil {
			return nil, fmt.Errorf("runtime: rebuild keeper %d on node %d: %w", s.Group, s.TargetNode, err)
		}
	}
	// Refresh parity pointers on every alive node for touched groups.
	touched := map[int]bool{}
	for _, s := range plan.Steps {
		touched[s.Group] = true
	}
	var groups []int
	for g := range touched {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, gi := range groups {
		g := c.layout.Groups[gi]
		for i, pn := range g.ParityNodes {
			for _, node := range c.aliveNodes() {
				if _, err := c.call(node, &wire.Message{
					Type: wire.MsgSetParity, Group: int32(gi),
					Epoch: uint64(i), Arg: uint64(pn),
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return plan, nil
}

// Close drops every coordinator connection.
func (c *Coordinator) Close() {
	for n, cc := range c.conns {
		cc.Close()
		delete(c.conns, n)
	}
}
