package runtime

import (
	"fmt"
	"time"
)

// RoundStats is the coordinator's record of its most recent checkpoint round
// (and, when one has run, the most recent recovery): per-phase wall-clock,
// delta volume, and transport health. Fetch it with Coordinator.RoundStats
// after Checkpoint; cmd/dvdcctl prints it per round.
type RoundStats struct {
	Epoch         uint64        // epoch the round targeted
	PrepareWall   time.Duration // prepare fan-out wall-clock (capture + delta shipping)
	CommitWall    time.Duration // commit fan-out wall-clock (parity folding)
	RecoveryWall  time.Duration // most recent RecoverNodes wall-clock (0 if none yet)
	BytesShipped  int64         // delta wire bytes shipped cluster-wide this round
	ChunksShipped int64         // delta chunk frames shipped cluster-wide (0 on the monolithic path)
	DedupedPages  int64         // dirty pages skipped by the page-dedup cache this round
	RPCRetries    int64         // transport re-dials/retries during this round
	Aborted       bool          // the round failed in prepare and was aborted
	DeadDuring    []int         // nodes declared dead by the commit phase

	// Observability. TraceID names the round's span tree (0 when no tracer is
	// attached); RecoveryTraceID names the most recent recovery's tree.
	// RecoveryCarried distinguishes "RecoveryWall is the residue of an earlier
	// round's recovery" from "a recovery ran since the last Checkpoint": the
	// wall-clock of a recovery is reported once as fresh, then carried —
	// flagged — on later rounds until the next recovery overwrites it.
	TraceID         uint64
	RecoveryTraceID uint64
	RecoveryCarried bool
}

// String renders a one-line per-round report.
func (r RoundStats) String() string {
	s := fmt.Sprintf("epoch %d: prepare %v, commit %v, %d B shipped",
		r.Epoch, r.PrepareWall.Round(time.Microsecond), r.CommitWall.Round(time.Microsecond), r.BytesShipped)
	if r.ChunksShipped > 0 {
		s += fmt.Sprintf(" in %d chunks", r.ChunksShipped)
	}
	if r.RecoveryWall > 0 {
		s += fmt.Sprintf(", recovery %v", r.RecoveryWall.Round(time.Microsecond))
		if r.RecoveryCarried {
			s += " (carried)"
		}
	}
	if r.RPCRetries > 0 {
		s += fmt.Sprintf(", %d rpc retries", r.RPCRetries)
	}
	if r.Aborted {
		s += " [aborted]"
	}
	if len(r.DeadDuring) > 0 {
		s += fmt.Sprintf(" [nodes %v died in commit]", r.DeadDuring)
	}
	return s
}

// PartialCommitError reports a checkpoint round whose commit phase lost
// nodes. The round still committed — the epoch advanced, and the named
// nodes were declared dead — because a commit cannot be rolled back once
// any node has applied it (the cluster-wide invariant is: a round that
// enters the commit phase always completes, and committers that stay
// unreachable through the retry budget are treated as node failures).
// The caller should run RecoverNodes over Nodes to restore redundancy.
type PartialCommitError struct {
	Epoch uint64 // the epoch that was committed despite the losses
	Nodes []int  // nodes declared dead during commit
}

// Error implements error.
func (e *PartialCommitError) Error() string {
	return fmt.Sprintf("runtime: epoch %d committed, but nodes %v failed commit and were declared dead (recovery required)",
		e.Epoch, e.Nodes)
}

// CasualtyNodes satisfies the service layer's CasualtyError classification:
// the reconciler sees this error, knows the epoch advanced anyway, and drives
// recovery over the named nodes before calling the request converged.
func (e *PartialCommitError) CasualtyNodes() []int {
	return append([]int(nil), e.Nodes...)
}
