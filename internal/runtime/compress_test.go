package runtime

import (
	"bytes"
	"testing"

	"dvdc/internal/checkpoint"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
)

func TestCompressedDeltaCodecRoundTrip(t *testing.T) {
	d := sampleDelta()
	enc := encodeDelta(d, true)
	got, err := decodeDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.VMID != d.VMID || got.Epoch != d.Epoch || len(got.Pages) != len(d.Pages) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range d.Pages {
		if !bytes.Equal(got.Pages[i].Data, d.Pages[i].Data) {
			t.Fatalf("page %d differs", i)
		}
	}
}

func TestCompressedDeltaShrinksSparsePayloads(t *testing.T) {
	// A delta whose pages are mostly zero (typical: a few bytes changed per
	// page) must compress well.
	d := &core.Delta{VMID: "vm", Epoch: 1}
	for i := 0; i < 32; i++ {
		page := make([]byte, 4096)
		page[7] = byte(i + 1)
		d.Pages = append(d.Pages, checkpoint.PageRecord{Index: i, Data: page})
	}
	raw := encodeDelta(d, false)
	comp := encodeDelta(d, true)
	if len(comp) >= len(raw)/10 {
		t.Errorf("compressed %d bytes vs raw %d: expected >10x shrink", len(comp), len(raw))
	}
	got, err := decodeDelta(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pages) != 32 || got.Pages[7].Data[7] != 8 {
		t.Error("compressed round trip corrupted data")
	}
}

func TestDecodeDeltaRejectsBadTags(t *testing.T) {
	if _, err := decodeDelta(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := decodeDelta([]byte{9, 1, 2, 3}); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := decodeDelta([]byte{deltaCompressed, 0xff, 0xff}); err == nil {
		t.Error("corrupt flate stream accepted")
	}
}

func TestClusterWithCompressionEndToEnd(t *testing.T) {
	layout, err := cluster.Paper12VM()
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
		defer n.Close()
	}
	coord, err := NewCoordinator(layout, addrs, 16, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.SetCompress(true)
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Step(60); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	committed, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	// Wire bytes must be below raw bytes (synthetic stamps compress).
	var raw, wireB int64
	for i := 0; i < layout.Nodes; i++ {
		st, err := coord.NodeStats(i)
		if err != nil {
			t.Fatal(err)
		}
		raw += st.DeltaRawBytes
		wireB += st.DeltaWireBytes
	}
	if raw == 0 || wireB >= raw {
		t.Errorf("compression ineffective: raw=%d wire=%d", raw, wireB)
	}
	// Kill + recover still works with compression enabled.
	nodes[0].Close()
	if _, err := coord.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for vmName, want := range committed {
		if after[vmName] != want {
			t.Errorf("VM %q diverged under compression", vmName)
		}
	}
}
