package runtime

import (
	"sort"

	"dvdc/internal/bufpool"
	"dvdc/internal/checkpoint"
	"dvdc/internal/core"
	"dvdc/internal/obs"
	"dvdc/internal/wire"
)

// chunkPipelineWidth bounds the in-flight chunk frames per (stream, peer):
// enough to overlap network transfer with the receiver's per-chunk parity
// fold, small enough that one stream cannot monopolize a connection pool.
const chunkPipelineWidth = 4

// chunkBatchBudget floors the wire bytes packed into one MsgDeltaChunk
// message. The chunk size bounds fold granularity and per-chunk buffer
// memory; the batch budget bounds round trips. Tying them together made a
// small chunk size pay one RPC per chunkSize bytes — with 64 KiB chunks a
// 4.7 MB delta cost ~72 round trips a round. Batches of several chunks keep
// the fold granularity while amortizing framing and scheduler ping-pong;
// chunk sizes above the floor keep one chunk per batch as before.
const chunkBatchBudget = 256 << 10

// resolveChunkSize maps the configuration encoding to an effective chunk
// size: 0 selects the default chunked pipeline, a negative value the legacy
// monolithic data path (returned as 0 = "no chunking"), positive values pass
// through.
func resolveChunkSize(v int) int {
	switch {
	case v == 0:
		return wire.DefaultChunkSize
	case v < 0:
		return 0
	default:
		return v
	}
}

// resolvePipelineWidth maps the configuration encoding to an effective
// in-flight chunk-batch width: nonpositive selects the default.
func resolvePipelineWidth(v int) int {
	if v <= 0 {
		return chunkPipelineWidth
	}
	return v
}

// planChunks lays a captured delta out as image-coordinate chunk frames:
// dirty pages are sorted, contiguous page runs merged, and each run cut into
// pieces of at most chunkSize bytes. Offset/Total address the member's image
// rather than a packed stream, so a keeper folds each chunk into its pending
// parity buffer the moment it arrives — no reassembly, no delta-sized buffer
// on either side. The returned chunks carry ranges only (no Data); pages is
// the sorted page list the ranges were planned over. An empty delta yields
// one zero-length chunk so the epoch still reaches the keeper.
func planChunks(d *core.Delta, pageSize, imageBytes, chunkSize int) ([]wire.Chunk, []checkpoint.PageRecord) {
	pages := append([]checkpoint.PageRecord(nil), d.Pages...)
	sort.Slice(pages, func(i, j int) bool { return pages[i].Index < pages[j].Index })

	// A pathological chunk size could exceed the wire's stream bound;
	// doubling until it fits terminates quickly and only ever runs under
	// degenerate configurations.
	var chunks []wire.Chunk
	for {
		chunks = chunks[:0]
		for i := 0; i < len(pages); {
			j := i
			for j+1 < len(pages) && pages[j+1].Index == pages[j].Index+1 {
				j++
			}
			runOff := pages[i].Index * pageSize
			runLen := (j - i + 1) * pageSize
			for at := 0; at < runLen; at += chunkSize {
				n := min(chunkSize, runLen-at)
				chunks = append(chunks, wire.Chunk{
					Offset: uint64(runOff + at),
					Total:  uint64(imageBytes),
					RawLen: uint32(n),
				})
			}
			i = j + 1
		}
		if len(chunks) <= wire.MaxChunkCount {
			break
		}
		chunkSize *= 2
	}
	if len(chunks) == 0 {
		chunks = append(chunks, wire.Chunk{Total: uint64(imageBytes), Count: 1})
	}
	count := uint32(len(chunks))
	for i := range chunks {
		chunks[i].Index = uint32(i)
		chunks[i].Count = count
	}
	return chunks, pages
}

// deltaChunks renders a delta as chunk frames with materialized data: each
// chunk's bytes are copied from its pages into one pooled contiguous buffer.
// The compressing ship path and the tests use this form; call release once
// the chunks (and any encodings aliasing them) are out of use.
func deltaChunks(d *core.Delta, pageSize, imageBytes, chunkSize int) ([]wire.Chunk, func()) {
	chunks, pages := planChunks(d, pageSize, imageBytes, chunkSize)
	var bufs [][]byte
	for ci := range chunks {
		c := &chunks[ci]
		n := int(c.RawLen)
		if n == 0 {
			continue
		}
		buf := bufpool.Get(n)
		bufs = append(bufs, buf)
		off := int(c.Offset)
		for k := 0; k < n; {
			pi := (off + k) / pageSize
			ri := sort.Search(len(pages), func(x int) bool { return pages[x].Index >= pi })
			po := (off + k) % pageSize
			k += copy(buf[k:], pages[ri].Data[po:])
		}
		c.Data = buf
	}
	release := func() {
		for _, b := range bufs {
			bufpool.Put(b)
		}
	}
	return chunks, release
}

// deltaChunkScatter renders a delta as chunk frames whose data stays in the
// captured page buffers: segs[i] is chunk i's data as a scatter list of page
// (sub)slices, for FrameWriter.AppendChunkScatter. Nothing is copied — the
// delta's pages are aliased, so they must outlive the encoded segments (the
// staged capture lives until commit, well past the prepare-phase ship).
func deltaChunkScatter(d *core.Delta, pageSize, imageBytes, chunkSize int) ([]wire.Chunk, [][][]byte) {
	chunks, pages := planChunks(d, pageSize, imageBytes, chunkSize)
	segs := make([][][]byte, len(chunks))
	for ci := range chunks {
		c := &chunks[ci]
		n := int(c.RawLen)
		off := int(c.Offset)
		for k := 0; k < n; {
			pi := (off + k) / pageSize
			ri := sort.Search(len(pages), func(x int) bool { return pages[x].Index >= pi })
			po := (off + k) % pageSize
			take := min(pageSize-po, n-k)
			segs[ci] = append(segs[ci], pages[ri].Data[po:po+take])
			k += take
		}
	}
	return chunks, segs
}

// encodePooledChunk renders a chunk's wire encoding into a pooled buffer
// sized so the append never reallocates out of its size class.
func encodePooledChunk(c *wire.Chunk) []byte {
	return wire.AppendChunk(bufpool.Get(wire.ChunkHeaderLen + len(c.Data))[:0], c)
}

// mountBufpoolStats exposes the process-wide buffer pool counters on a
// registry. Counters are global to the pool, so re-binding from every node
// sharing a registry is idempotent (CounterFunc replaces the reader).
func mountBufpoolStats(reg *obs.Registry) {
	reg.CounterFunc("dvdc_bufpool_gets_total", func() float64 { return float64(bufpool.Snapshot().Gets) })
	reg.CounterFunc("dvdc_bufpool_misses_total", func() float64 { return float64(bufpool.Snapshot().Misses) })
	reg.CounterFunc("dvdc_bufpool_puts_total", func() float64 { return float64(bufpool.Snapshot().Puts) })
	reg.CounterFunc("dvdc_bufpool_oversize_total", func() float64 { return float64(bufpool.Snapshot().Oversize) })
}
