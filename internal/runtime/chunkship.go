package runtime

import (
	"sort"

	"dvdc/internal/bufpool"
	"dvdc/internal/checkpoint"
	"dvdc/internal/core"
	"dvdc/internal/obs"
	"dvdc/internal/wire"
)

// chunkPipelineWidth bounds the in-flight chunk frames per (stream, peer):
// enough to overlap network transfer with the receiver's per-chunk parity
// fold, small enough that one stream cannot monopolize a connection pool.
const chunkPipelineWidth = 4

// resolveChunkSize maps the configuration encoding to an effective chunk
// size: 0 selects the default chunked pipeline, a negative value the legacy
// monolithic data path (returned as 0 = "no chunking"), positive values pass
// through.
func resolveChunkSize(v int) int {
	switch {
	case v == 0:
		return wire.DefaultChunkSize
	case v < 0:
		return 0
	default:
		return v
	}
}

// deltaChunks renders a captured delta as image-coordinate chunk frames:
// dirty pages are sorted, contiguous page runs merged, and each run cut into
// pieces of at most chunkSize bytes. Offset/Total address the member's image
// rather than a packed stream, so a keeper folds each chunk into its pending
// parity buffer the moment it arrives — no reassembly, no delta-sized buffer
// on either side. Chunk data lives in pooled buffers; call release once the
// chunks (and any encodings aliasing them) are out of use. An empty delta
// yields one zero-length chunk so the epoch still reaches the keeper.
func deltaChunks(d *core.Delta, pageSize, imageBytes, chunkSize int) ([]wire.Chunk, func()) {
	pages := append([]checkpoint.PageRecord(nil), d.Pages...)
	sort.Slice(pages, func(i, j int) bool { return pages[i].Index < pages[j].Index })

	// First pass: byte ranges only. A pathological chunk size could exceed
	// the wire's stream bound; doubling until it fits terminates quickly and
	// only ever runs under degenerate configurations.
	var chunks []wire.Chunk
	for {
		chunks = chunks[:0]
		for i := 0; i < len(pages); {
			j := i
			for j+1 < len(pages) && pages[j+1].Index == pages[j].Index+1 {
				j++
			}
			runOff := pages[i].Index * pageSize
			runLen := (j - i + 1) * pageSize
			for at := 0; at < runLen; at += chunkSize {
				n := min(chunkSize, runLen-at)
				chunks = append(chunks, wire.Chunk{
					Offset: uint64(runOff + at),
					Total:  uint64(imageBytes),
					RawLen: uint32(n),
				})
			}
			i = j + 1
		}
		if len(chunks) <= wire.MaxChunkCount {
			break
		}
		chunkSize *= 2
	}

	// Second pass: copy page bytes into pooled chunk buffers. A chunk may
	// span several pages of its run.
	var bufs [][]byte
	for ci := range chunks {
		c := &chunks[ci]
		n := int(c.RawLen)
		buf := bufpool.Get(n)
		bufs = append(bufs, buf)
		off := int(c.Offset)
		for k := 0; k < n; {
			pi := (off + k) / pageSize
			ri := sort.Search(len(pages), func(x int) bool { return pages[x].Index >= pi })
			po := (off + k) % pageSize
			k += copy(buf[k:], pages[ri].Data[po:])
		}
		c.Data = buf
	}
	if len(chunks) == 0 {
		chunks = append(chunks, wire.Chunk{Total: uint64(imageBytes), Count: 1})
	}
	count := uint32(len(chunks))
	for i := range chunks {
		chunks[i].Index = uint32(i)
		chunks[i].Count = count
	}
	release := func() {
		for _, b := range bufs {
			bufpool.Put(b)
		}
	}
	return chunks, release
}

// encodePooledChunk renders a chunk's wire encoding into a pooled buffer
// sized so the append never reallocates out of its size class.
func encodePooledChunk(c *wire.Chunk) []byte {
	return wire.AppendChunk(bufpool.Get(wire.ChunkHeaderLen + len(c.Data))[:0], c)
}

// mountBufpoolStats exposes the process-wide buffer pool counters on a
// registry. Counters are global to the pool, so re-binding from every node
// sharing a registry is idempotent (CounterFunc replaces the reader).
func mountBufpoolStats(reg *obs.Registry) {
	reg.CounterFunc("dvdc_bufpool_gets_total", func() float64 { return float64(bufpool.Snapshot().Gets) })
	reg.CounterFunc("dvdc_bufpool_misses_total", func() float64 { return float64(bufpool.Snapshot().Misses) })
	reg.CounterFunc("dvdc_bufpool_puts_total", func() float64 { return float64(bufpool.Snapshot().Puts) })
	reg.CounterFunc("dvdc_bufpool_oversize_total", func() float64 { return float64(bufpool.Snapshot().Oversize) })
}
