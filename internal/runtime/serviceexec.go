package runtime

import (
	"sync"

	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/transport"
)

// ServiceExecutor adapts a Coordinator to the service control plane's
// Executor seam (internal/service declares the interface; this type satisfies
// it structurally, so the mechanism layer never imports the policy layer).
// The reconciler calls it from one goroutine at a time, and the coordinator's
// round mutex serializes against any other caller, so the adapter adds no
// locking of its own beyond the recorded plan.
type ServiceExecutor struct {
	coord *Coordinator

	mu       sync.Mutex
	forced   map[int]bool  // externally declared deaths awaiting a restore
	lastPlan *cluster.Plan // most recent recovery plan (CLI reporting)
}

// NewServiceExecutor wraps a configured coordinator.
func NewServiceExecutor(c *Coordinator) *ServiceExecutor {
	return &ServiceExecutor{coord: c, forced: map[int]bool{}}
}

// DeclareFailed records an external failure declaration: the next restore
// naming n recovers it even if its daemon still answers probes. This is the
// classic `dvdcctl -kill` semantic — the operator (or a failure detector)
// says a node is gone and the controller stops talking to it, whether or not
// the process is actually dead.
func (e *ServiceExecutor) DeclareFailed(nodes ...int) {
	e.mu.Lock()
	for _, n := range nodes {
		e.forced[n] = true
	}
	e.mu.Unlock()
}

// Coordinator exposes the wrapped coordinator (read paths: Epoch, RoundStats,
// Layout) for callers that report on rounds the service drove.
func (e *ServiceExecutor) Coordinator() *Coordinator { return e.coord }

// ExecuteCheckpoint runs steps workload steps (0 = none) and one two-phase
// checkpoint round inside the caller's span context. A *PartialCommitError
// passes through unwrapped — it satisfies the service layer's CasualtyError,
// telling the reconciler the epoch advanced but recovery is owed.
func (e *ServiceExecutor) ExecuteCheckpoint(ctx obs.SpanContext, steps uint64) (uint64, error) {
	if steps > 0 {
		if err := e.coord.Step(steps); err != nil {
			return e.coord.Epoch(), err
		}
	}
	err := e.coord.CheckpointIn(ctx)
	return e.coord.Epoch(), err
}

// ExecuteRestore drives recovery over the subset of nodes that actually need
// it, making restores level-triggered: nodes already recovered (or never
// down) are skipped, so re-reconciling a converged restore is a no-op rather
// than an "already recovered" error.
func (e *ServiceExecutor) ExecuteRestore(ctx obs.SpanContext, nodes []int) (uint64, error) {
	var need []int
	for _, n := range nodes {
		e.mu.Lock()
		forced := e.forced[n]
		e.mu.Unlock()
		if forced || e.needsRecovery(n) {
			need = append(need, n)
		}
	}
	if len(need) == 0 {
		return e.coord.Epoch(), nil
	}
	plan, err := e.coord.RecoverNodesIn(ctx, need...)
	if err != nil {
		return e.coord.Epoch(), err
	}
	e.mu.Lock()
	for _, n := range need {
		delete(e.forced, n)
	}
	e.lastPlan = plan
	e.mu.Unlock()
	return e.coord.Epoch(), nil
}

// needsRecovery decides whether a node still owes a recovery pass: declared
// dead mid-commit means yes, already recovered means no, and an undeclared
// node is probed — an unreachable daemon is a death the coordinator has not
// witnessed yet.
func (e *ServiceExecutor) needsRecovery(n int) bool {
	e.coord.mu.Lock()
	dead, pending := e.coord.dead[n], e.coord.pending[n]
	addr, known := e.coord.addrs[n]
	e.coord.mu.Unlock()
	switch {
	case !known:
		return false
	case dead && pending:
		return true
	case dead:
		return false // recovered; awaiting Repair/Rebalance
	default:
		conn, err := transport.Dial(addr)
		if err != nil {
			return true
		}
		conn.Close()
		return false
	}
}

// Quiesce satisfies the service layer's optional Quiescer: reconciler
// shutdown aborts any staged-but-uncommitted captures.
func (e *ServiceExecutor) Quiesce() error { return e.coord.Quiesce() }

// LastPlan returns the most recent recovery plan the executor drove (nil if
// none).
func (e *ServiceExecutor) LastPlan() *cluster.Plan {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastPlan
}
