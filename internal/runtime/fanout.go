package runtime

import "sync"

// parallelDo runs f(0..n-1) concurrently, bounded by width goroutines
// (width <= 0 means unbounded). Every item runs even after a failure; the
// first error by index is returned, so error selection is deterministic
// regardless of completion order.
func parallelDo(n, width int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if width <= 0 || width > n {
		width = n
	}
	if n == 1 || width == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := f(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
