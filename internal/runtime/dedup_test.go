package runtime

import (
	"testing"

	"dvdc/internal/chaos"
	"dvdc/internal/cluster"
	"dvdc/internal/wire"
)

// dedupCluster is chunkedCluster with workload kind and dedup applied.
func dedupCluster(t *testing.T, layout *cluster.Layout, chunkSize int, workload string, dedup bool) (*Coordinator, []*Node) {
	t.Helper()
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	coord, err := NewCoordinator(layout, addrs, 16, 64, 12345)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coord.SetChunkSize(chunkSize)
	coord.SetWorkload(workload)
	coord.SetDedup(dedup)
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}
	return coord, nodes
}

// clusterDedupStats sums the dedup counters across every node.
func clusterDedupStats(t *testing.T, coord *Coordinator) (hits, misses, saved int64) {
	t.Helper()
	for n := 0; n < coord.Layout().Nodes; n++ {
		st, err := coord.NodeStats(n)
		if err != nil {
			t.Fatal(err)
		}
		hits += st.DedupHits
		misses += st.DedupMisses
		saved += st.DedupSavedBytes
	}
	return hits, misses, saved
}

// TestDedupRewriteWorkloadSavesShippedBytes drives two identical clusters on
// the rewrite workload — one with the page-dedup cache, one without — and
// asserts the dedup cluster commits bit-identical state while shipping
// strictly less on every repeated epoch, with the hit counters moving.
func TestDedupRewriteWorkloadSavesShippedBytes(t *testing.T) {
	plain, _ := dedupCluster(t, paperLayout(t), 256, WorkloadRewrite, false)
	dedup, dnodes := dedupCluster(t, paperLayout(t), 256, WorkloadRewrite, true)

	const rounds = 4
	var plainShipped, dedupShipped [rounds]int64
	for r := 0; r < rounds; r++ {
		for _, c := range []*Coordinator{plain, dedup} {
			if err := c.Step(60); err != nil {
				t.Fatal(err)
			}
			if err := c.Checkpoint(); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
		plainShipped[r] = plain.RoundStats().BytesShipped
		dedupShipped[r] = dedup.RoundStats().BytesShipped
		if r > 0 && dedup.RoundStats().DedupedPages == 0 {
			t.Errorf("round %d: no pages deduped under the rewrite workload", r)
		}
	}
	// Round 0 fills the cache (every page misses); repeated epochs must ship
	// strictly less than the dedup-free twin.
	for r := 1; r < rounds; r++ {
		if dedupShipped[r] >= plainShipped[r] {
			t.Errorf("round %d: dedup shipped %d bytes, plain %d", r, dedupShipped[r], plainShipped[r])
		}
	}

	pstates, err := plain.VMStates()
	if err != nil {
		t.Fatal(err)
	}
	dstates, err := dedup.VMStates()
	if err != nil {
		t.Fatal(err)
	}
	for name, ps := range pstates {
		if ds, ok := dstates[name]; !ok || ps != ds {
			t.Errorf("%q diverges under dedup: plain %+v dedup %+v", name, ps, dstates[name])
		}
	}
	hits, misses, saved := clusterDedupStats(t, dedup)
	if hits == 0 || misses == 0 || saved == 0 {
		t.Errorf("dedup counters did not move: hits=%d misses=%d saved=%d", hits, misses, saved)
	}

	// The skipped folds must not have corrupted parity: kill a node and
	// verify recovery reconstructs bit-identical images.
	before, err := dedup.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	dnodes[1].Close()
	if _, err := dedup.RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	after, err := dedup.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range before {
		if after[name] != want {
			t.Errorf("%q diverged across recovery with dedup on", name)
		}
	}
}

// TestDedupAbortInvalidatesCache proves a failed round drops exactly the
// stale entries: after prepare+abort every member's staged hashes are gone
// (they named content whose capture was undone) while the committed entries
// survive (parity never moved, so they still describe what the keepers hold).
// The post-abort round then re-ships every genuinely changed page as a miss,
// legitimately hits for store-back pages, and commits state that survives
// casualty recovery bit-identically.
func TestDedupAbortInvalidatesCache(t *testing.T) {
	coord, nodes := dedupCluster(t, paperLayout(t), 256, WorkloadRewrite, true)
	// Two rounds to populate the cache and start hitting it.
	for r := 0; r < 2; r++ {
		if err := coord.Step(60); err != nil {
			t.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	hitsBefore, _, _ := clusterDedupStats(t, coord)
	if hitsBefore == 0 {
		t.Fatal("cache never hit; test premise broken")
	}
	if err := coord.Step(30); err != nil {
		t.Fatal(err)
	}
	// Manual prepare (stages hashes) then abort (must drop the staged ones).
	for i, n := range nodes {
		if _, err := n.handle(&wire.Message{Type: wire.MsgPrepare, Epoch: coord.Epoch() + 1}); err != nil {
			t.Fatalf("prepare node %d: %v", i, err)
		}
	}
	for i, n := range nodes {
		if _, err := n.handle(&wire.Message{Type: wire.MsgAbort, Epoch: coord.Epoch() + 1}); err != nil {
			t.Fatalf("abort node %d: %v", i, err)
		}
	}
	for i, n := range nodes {
		for _, ms := range n.snapshotMembers() {
			ms.mu.Lock()
			if len(ms.stagedHashes) != 0 {
				t.Errorf("node %d member %q: %d staged hashes survived abort",
					i, ms.cfg.Name, len(ms.stagedHashes))
			}
			if len(ms.pageHashes) == 0 {
				t.Errorf("node %d member %q: committed cache entries wrongly dropped by abort",
					i, ms.cfg.Name)
			}
			ms.mu.Unlock()
		}
	}
	// The post-abort round must re-ship every genuinely changed page (new
	// misses) and may legitimately hit for store-back pages whose content
	// still matches the surviving committed entries.
	h0, m0, _ := clusterDedupStats(t, coord)
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	h1, m1, _ := clusterDedupStats(t, coord)
	if h1 == h0 {
		t.Error("post-abort round never hit the surviving committed entries")
	}
	if m1 == m0 {
		t.Error("post-abort round recorded no misses despite changed pages")
	}
	// Parity must agree with the re-shipped pages: casualty recovery yields
	// bit-identical images.
	before, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].Close()
	if _, err := coord.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range before {
		if after[name] != want {
			t.Errorf("%q diverged across post-abort recovery", name)
		}
	}
}

// TestDedupRecoveryInvalidatesCache proves the parity-reassignment path drops
// the cache: after a casualty recovery re-homes a keeper, every surviving
// member of the affected groups starts cold (the rebuilt parity block has no
// memory of what the old keeper was told).
func TestDedupRecoveryInvalidatesCache(t *testing.T) {
	layout := paperLayout(t)
	coord, nodes := dedupCluster(t, layout, 256, WorkloadRewrite, true)
	for r := 0; r < 2; r++ {
		if err := coord.Step(60); err != nil {
			t.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a node that keeps parity for at least one group.
	victim := layout.Groups[0].ParityNodes[0]
	addr := nodes[victim].Addr()
	nodes[victim].Close()
	if _, err := coord.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	// Every group had its pointers refreshed or its keeper rebuilt; the
	// conservative invalidation clears all survivors' caches for regrouped
	// members. At minimum, members of the victim's groups must be cold.
	cold := 0
	for i, n := range nodes {
		if i == victim {
			continue
		}
		for _, ms := range n.snapshotMembers() {
			ms.mu.Lock()
			if len(ms.pageHashes) == 0 {
				cold++
			}
			ms.mu.Unlock()
		}
	}
	if cold == 0 {
		t.Error("no member cache went cold across recovery")
	}
	// Restart the victim on its old address and repair it back in, then keep
	// running: dedup must re-warm from cold.
	rn, err := NewNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rn.Close() })
	if err := coord.Repair(victim); err != nil {
		t.Fatal(err)
	}
	hitsAfterRecovery, _, _ := clusterDedupStats(t, coord)
	for r := 0; r < 2; r++ {
		if err := coord.Step(40); err != nil {
			t.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _, _ := clusterDedupStats(t, coord); hits == hitsAfterRecovery {
		t.Error("cache never re-warmed after recovery")
	}
}

// TestPoisonedDedupCacheCorruptsParity is the negative control the soak
// battery's shadow invariant relies on: the skip decision is hash-only by
// design, so a poisoned cache entry (claiming a changed page is unchanged)
// silently rots parity — undetectable while the member is alive, caught the
// moment reconstruction reproduces the stale content. If this test ever
// starts passing recovery cleanly, the dedup path has grown a second check
// and the soak invariant is no longer load-bearing.
func TestPoisonedDedupCacheCorruptsParity(t *testing.T) {
	layout := paperLayout(t)
	coord, nodes := dedupCluster(t, layout, 256, "", true)
	if err := coord.Step(60); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Step(60); err != nil {
		t.Fatal(err)
	}
	// Poison: plant the hash of the CURRENT live content for every page of
	// one member, so the next prepare skips its genuinely changed pages.
	victim := layout.VMs[0].Node
	var poisoned string
	for _, ms := range nodes[victim].snapshotMembers() {
		ms.mu.Lock()
		if poisoned == "" {
			poisoned = ms.cfg.Name
			if ms.pageHashes == nil {
				ms.pageHashes = map[int]uint64{}
			}
			m := ms.mem.Machine()
			for i := 0; i < m.NumPages(); i++ {
				ms.pageHashes[i] = m.PageHash(i)
			}
		}
		ms.mu.Unlock()
	}
	if poisoned == "" {
		t.Fatalf("node %d hosts no members", victim)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	nodes[victim].Close()
	if _, err := coord.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	if after[poisoned] == before[poisoned] {
		t.Fatalf("reconstruction of %q matched despite a poisoned dedup cache — the corruption went undetected", poisoned)
	}
}

// TestSoakDedupChunkFaultChaos is the satellite's pinned-seed soak: dedup on,
// rewrite workload, chunk-level drop/corrupt faults, node kills — RunSoak
// asserts bit-identical images against the shadow after every round, and its
// finish checks require the cache to have been exercised (hits > 0 under
// rewrite). The seeds are pinned so a regression replays deterministically.
func TestSoakDedupChunkFaultChaos(t *testing.T) {
	for _, seed := range []int64{424242, 31337} {
		cfg := SoakConfig{
			Layout:        paperLayout(t),
			Rounds:        8,
			StepsPerRound: 25,
			Seed:          seed,
			ChunkSize:     256,
			ChunkFaults:   2,
			Workload:      WorkloadRewrite,
			Dedup:         true,
			ArmPerRound:   1,
			PPartition:    0.2,
			KillMTBF:      150,
		}
		res, err := RunSoak(cfg)
		if err != nil {
			t.Fatalf("seed %d: dedup soak failed: %v\nfault log:\n%s", seed, err, faultLines(res))
		}
		chunkFaults := 0
		for _, f := range res.FaultLog {
			if f.Armed && f.Pair.Src != chaos.Coordinator {
				chunkFaults++
			}
		}
		if chunkFaults == 0 {
			t.Errorf("seed %d: no armed chunk-frame fault fired", seed)
		}
	}
}
