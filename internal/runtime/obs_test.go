package runtime

import (
	"bytes"
	"strings"
	"testing"

	"dvdc/internal/chaos"
	"dvdc/internal/obs"
)

// obsCluster is testCluster with a shared tracer and registry attached to
// the coordinator and every node daemon, plus injector hooks when inj is
// non-nil.
func obsCluster(t *testing.T, tr *obs.Tracer, reg *obs.Registry, inj *chaos.Injector) (*Coordinator, []*Node) {
	t.Helper()
	layout := paperLayout(t)
	nodes := make([]*Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		opts := NodeOptions{Tracer: tr, Registry: reg}
		if inj != nil {
			opts.Dialer = inj.Dialer(i)
			opts.Listen = inj.ListenFunc(i)
		}
		n, err := NewNodeWith("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
		if inj != nil {
			inj.Register(i, n.Addr())
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	coord, err := NewCoordinator(layout, addrs, 16, 64, 12345)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coord.SetObserver(tr, reg)
	if inj != nil {
		coord.SetDialer(inj.Dialer(chaos.Coordinator))
	}
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}
	return coord, nodes
}

// TestCheckpointTracePropagation proves the trace context survives the whole
// control path over real loopback TCP: one checkpoint produces a single span
// tree whose root is the coordinator's round span and whose leaves include
// per-peer RPC attempts, node-side handler spans, and per-member delta
// shipments — all sharing the round's trace id.
func TestCheckpointTracePropagation(t *testing.T) {
	tr := obs.NewTracer(0)
	reg := obs.NewRegistry()
	coord, _ := obsCluster(t, tr, reg, nil)

	if err := coord.Step(20); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := coord.RoundStats()
	if st.TraceID == 0 {
		t.Fatal("round recorded no trace id")
	}
	spans := tr.TraceSpans(st.TraceID)
	byID := map[uint64]obs.Span{}
	names := map[string]int{}
	for _, s := range spans {
		byID[s.ID] = s
		switch {
		case strings.HasPrefix(s.Name, "rpc "):
			names["rpc"]++
		case strings.HasPrefix(s.Name, "node."):
			names["node"]++
		case strings.HasPrefix(s.Name, "ship "):
			names["ship"]++
		default:
			names[s.Name]++
		}
	}
	for _, want := range []string{"round", "prepare", "commit", "rpc", "node", "ship"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}
	// Every span must chain to the round root through recorded parents.
	for _, s := range spans {
		cur := s
		for cur.Parent != 0 {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %q has unrecorded parent %x", s.Name, cur.Parent)
			}
			cur = p
		}
		if cur.Name != "round" {
			t.Errorf("span %q roots at %q, want the round span", s.Name, cur.Name)
		}
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("%d spans still open after checkpoint", n)
	}

	// The registry saw the round: per-phase durations, per-peer RPC latency.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, want := range []string{
		`dvdc_round_phase_seconds_count{phase="prepare"} 1`,
		`dvdc_round_phase_seconds_count{phase="commit"} 1`,
		`dvdc_rounds_total{result="committed"} 1`,
		`dvdc_rpc_latency_seconds_bucket{peer="node0",le="+Inf"}`,
		// The chunked data path keeps several frames in flight per peer, so the
		// pool may open extra connections — assert the series exists rather
		// than pinning a concurrency-dependent dial count.
		`dvdc_pool_dials_total{peer="node1"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestChaosFaultLinksToRetrySpan is the causality acceptance test: an armed
// corrupt fault on a coordinator link must surface in the trace as a
// chaos.corrupt event parented at the exact RPC attempt it mangled, with the
// pool's retry attempt recorded as a sibling span under the same phase span.
func TestChaosFaultLinksToRetrySpan(t *testing.T) {
	tr := obs.NewTracer(0)
	inj := chaos.New(1, chaos.Config{})
	inj.SetTracer(tr)
	coord, _ := obsCluster(t, tr, nil, inj)

	if err := coord.Step(10); err != nil {
		t.Fatal(err)
	}
	// The next frame the coordinator sends node 1 — its prepare — gets an
	// over-limit length prefix; the pool must absorb it with one retry.
	inj.Arm(chaos.Pair{Src: chaos.Coordinator, Dst: 1}, chaos.Corrupt)
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("checkpoint did not survive the armed corrupt: %v", err)
	}
	st := coord.RoundStats()
	if st.RPCRetries == 0 {
		t.Fatal("armed corrupt caused no pool retry")
	}
	spans := tr.TraceSpans(st.TraceID)
	byID := map[uint64]obs.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var linked bool
	for _, ev := range spans {
		if ev.Name != "chaos.corrupt" {
			continue
		}
		if ev.Attrs["pair"] == "" || ev.Attrs["armed"] != "true" {
			t.Errorf("chaos event attrs = %v, want pair and armed=true", ev.Attrs)
		}
		hit, ok := byID[ev.Parent]
		if !ok || !strings.HasPrefix(hit.Name, "rpc ") {
			t.Fatalf("chaos event parent %x is not a recorded rpc span", ev.Parent)
		}
		// The retry: another rpc span for the same peer under the same phase
		// span, tagged with its attempt number.
		for _, s := range spans {
			if s.ID != hit.ID && s.Parent == hit.Parent && s.Name == hit.Name &&
				s.Attrs["peer"] == hit.Attrs["peer"] && s.Attrs["attempt"] != "" {
				linked = true
			}
		}
	}
	if !linked {
		t.Fatal("no chaos.corrupt event linked to an rpc attempt with a retry sibling")
	}
}

// TestRecoveryWallCarriedRendering pins the carried-recovery fix: the wall
// clock of a recovery reports fresh once, then stays visible — flagged
// "(carried)" — on later rounds instead of silently posing as a new recovery.
func TestRecoveryWallCarriedRendering(t *testing.T) {
	tr := obs.NewTracer(0)
	coord, _ := obsCluster(t, tr, nil, nil)

	if err := coord.Step(10); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s := coord.RoundStats().String(); strings.Contains(s, "recovery") {
		t.Errorf("pre-recovery stats mention recovery: %q", s)
	}

	if _, err := coord.RecoverNode(2); err != nil {
		t.Fatal(err)
	}
	st := coord.RoundStats()
	if st.RecoveryWall == 0 || st.RecoveryCarried {
		t.Fatalf("stats right after recovery = %+v, want fresh recovery wall", st)
	}
	if st.RecoveryTraceID == 0 {
		t.Error("recovery recorded no trace id")
	}
	if s := st.String(); !strings.Contains(s, "recovery ") || strings.Contains(s, "(carried)") {
		t.Errorf("fresh recovery renders as %q", s)
	}
	if rs := tr.TraceSpans(st.RecoveryTraceID); len(rs) == 0 || rs[len(rs)-1].Trace == 0 {
		t.Error("recovery trace has no spans")
	}

	for round := 0; round < 2; round++ {
		if err := coord.Step(10); err != nil {
			t.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		st = coord.RoundStats()
		if !st.RecoveryCarried || st.RecoveryWall == 0 {
			t.Fatalf("round %d after recovery: stats = %+v, want carried recovery wall", round, st)
		}
		if s := st.String(); !strings.Contains(s, "(carried)") {
			t.Errorf("carried recovery renders as %q", s)
		}
	}
}

// TestSoakTraceJSONL runs a kill-free soak with a JSONL sink and a registry
// and checks the whole observability surface end to end: the sink parses
// back, every round has a complete trace with armed-fault events linked into
// it, and the exposition carries the per-peer and per-phase series.
func TestSoakTraceJSONL(t *testing.T) {
	var sink bytes.Buffer
	reg := obs.NewRegistry()
	cfg := SoakConfig{
		Layout:        paperLayout(t),
		Rounds:        4,
		StepsPerRound: 20,
		Seed:          99,
		ArmPerRound:   2,
		TraceSink:     &sink,
		Registry:      reg,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	if len(res.Rounds) != cfg.Rounds {
		t.Fatalf("%d rounds recorded, want %d", len(res.Rounds), cfg.Rounds)
	}

	spans, err := obs.ReadJSONL(&sink)
	if err != nil {
		t.Fatal(err)
	}
	order, byTrace := obs.GroupTraces(spans)
	rounds := 0
	faultEvents := 0
	for _, id := range order {
		byID := map[uint64]bool{}
		for _, s := range byTrace[id] {
			byID[s.ID] = true
		}
		isRound := false
		for _, s := range byTrace[id] {
			if s.Parent == 0 && s.Name == "round" {
				isRound = true
			}
			if strings.HasPrefix(s.Name, "chaos.") {
				faultEvents++
				if !byID[s.Parent] {
					t.Errorf("fault event %q in trace %016x has unrecorded parent %x", s.Name, id, s.Parent)
				}
			}
		}
		if isRound {
			rounds++
		}
	}
	if rounds < cfg.Rounds {
		t.Errorf("JSONL holds %d round traces, want >= %d", rounds, cfg.Rounds)
	}
	if faultEvents == 0 {
		t.Error("no chaos.* events in the JSONL despite armed faults every round")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, want := range []string{
		"dvdc_chaos_faults_total{kind=",
		`dvdc_round_phase_seconds_bucket{phase="prepare",le=`,
		"dvdc_rpc_latency_seconds_bucket{peer=",
		"dvdc_pool_retries_total{peer=",
		"dvdc_round_shipped_bytes_sum",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The timeline viewer renders every round trace without choking.
	for _, id := range order {
		if out := obs.RenderTimeline(byTrace[id], 90); !strings.Contains(out, "spans") {
			t.Errorf("timeline render for trace %016x produced %q", id, out)
		}
	}
}
