package runtime

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/service"
)

// soakServiceExec adapts the soak environment to the service layer's Executor
// seam. Unlike the production ServiceExecutor it mirrors every protocol
// outcome into the shadow model and the chaos bookkeeping, exactly as the
// classic loop does inline: resume injection around the round, heal the
// round's transient partition after the first attempt, commit or abort the
// shadow to match the coordinator, and take commit-declared casualties'
// daemons down for real. The reconciler calls it from one goroutine; the
// harness goroutine only touches shared state through the mutex, and only
// between requests (submit before, read after terminal).
type soakServiceExec struct {
	e *soakEnv

	mu          sync.Mutex
	downNow     map[int]bool // daemons currently closed, awaiting restore
	partitioned [2]int       // transient partition to heal after the next attempt
	bytes       int64        // delta bytes shipped across the round's protocol rounds
	aborts      int          // checkpoint attempts that aborted this round
	deadDuring  []int        // commit-declared casualties this round
	violation   error        // invariant broken inside an executor call
}

// beginRound resets the per-round accumulators and records the transient
// partition the next checkpoint attempt must heal.
func (x *soakServiceExec) beginRound(partitioned [2]int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.partitioned = partitioned
	x.bytes, x.aborts, x.deadDuring, x.violation = 0, 0, nil, nil
}

// markDown records a daemon the harness killed, so restores know it is owed.
func (x *soakServiceExec) markDown(n int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.downNow[n] = true
}

// takeRound returns and clears the round's accumulators.
func (x *soakServiceExec) takeRound() (bytes int64, aborts int, dead []int, violation error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	bytes, aborts, dead, violation = x.bytes, x.aborts, x.deadDuring, x.violation
	x.bytes, x.aborts, x.deadDuring, x.violation = 0, 0, nil, nil
	return
}

// ExecuteCheckpoint runs one chaos-exposed checkpoint round and mirrors its
// outcome into the shadow. Steps are driven by the harness (a retried attempt
// must not re-step the workloads), so steps is normally 0.
func (x *soakServiceExec) ExecuteCheckpoint(ctx obs.SpanContext, steps uint64) (uint64, error) {
	e := x.e
	if steps > 0 {
		if err := e.coord.Step(steps); err != nil {
			return e.coord.Epoch(), err
		}
		e.shadow.Step(steps)
	}
	e.inj.Resume()
	ckErr := e.coord.CheckpointIn(ctx)
	e.inj.Pause()

	x.mu.Lock()
	defer x.mu.Unlock()
	if x.partitioned[0] >= 0 {
		e.inj.HealPair(x.partitioned[0], x.partitioned[1])
		x.partitioned = [2]int{-1, -1}
	}
	x.bytes += e.coord.RoundStats().BytesShipped

	var partial *PartialCommitError
	switch {
	case ckErr == nil:
		if len(x.downNow) > 0 && x.violation == nil {
			var down []int
			for n := range x.downNow {
				down = append(down, n)
			}
			sort.Ints(down)
			x.violation = fmt.Errorf("checkpoint succeeded with dead nodes %v", down)
		}
		e.shadow.Commit()
	case errors.As(ckErr, &partial):
		// The epoch advanced; the named nodes are casualties. A casualty whose
		// daemon still runs (persistent injected faults) is taken down for
		// real, exactly as the classic loop does, so the recovery that the
		// reconciler drives next restarts it cleanly.
		e.shadow.Commit()
		x.deadDuring = append(x.deadDuring, partial.Nodes...)
		for _, n := range partial.Nodes {
			if !x.downNow[n] {
				e.sc.nodes[n].Close()
				e.inj.RecordKill(n)
				x.downNow[n] = true
			}
		}
	default:
		x.aborts++
		e.shadow.Abort()
	}
	return e.coord.Epoch(), ckErr
}

// ExecuteRestore runs the full repair cycle over whichever of the named nodes
// are actually down, level-triggered: nodes already restored (an earlier
// inline casualty recovery, say) are skipped, so the harness's standing
// restore request converges as a no-op when the checkpoint's own reconcile
// already healed the cluster.
func (x *soakServiceExec) ExecuteRestore(ctx obs.SpanContext, nodes []int) (uint64, error) {
	e := x.e
	need := map[int]bool{}
	x.mu.Lock()
	for _, n := range nodes {
		if x.downNow[n] {
			need[n] = true
		}
	}
	x.mu.Unlock()
	// Anything the coordinator holds as pending recovery is owed a pass even
	// if nobody named it; its daemon comes down first so the restart below
	// binds the same address cleanly.
	for _, n := range e.coord.pendingRecovery() {
		if need[n] {
			continue
		}
		x.mu.Lock()
		if !x.downNow[n] {
			e.sc.nodes[n].Close()
			e.inj.RecordKill(n)
			x.downNow[n] = true
		}
		x.mu.Unlock()
		need[n] = true
	}
	if len(need) == 0 {
		return e.coord.Epoch(), nil
	}
	var down []int
	for n := range need {
		down = append(down, n)
	}
	sort.Ints(down)
	if err := e.recoverAndRepair(ctx, down); err != nil {
		return e.coord.Epoch(), err
	}
	x.mu.Lock()
	for _, n := range down {
		delete(x.downNow, n)
	}
	x.bytes += e.coord.RoundStats().BytesShipped
	x.mu.Unlock()
	return e.coord.Epoch(), nil
}

// Quiesce lets Reconciler.Stop abort staged captures left by an interrupted
// attempt.
func (x *soakServiceExec) Quiesce() error { return x.e.coord.Quiesce() }

// runSoakService drives the same chaos soak through the declarative control
// plane: each round the harness steps the workloads, arms the round's faults,
// and kills the scheduled victims — then, instead of invoking the coordinator,
// submits a Checkpoint request (plus a Restore request naming the victims on
// kill rounds) to an in-process Service and waits for the reconciler to drive
// both to a terminal phase. The serial reconciler makes convergence under
// fault deterministic: the checkpoint attempt fails against the dead victims
// and enters backoff, the restore request (same priority, later submission)
// runs the repair cycle, and the checkpoint's retry then commits on the
// healed cluster. On top of the classic per-round invariants the loop asserts
// request convergence: no request stuck in a non-terminal phase, observed
// generations caught up to spec generations, mandatory recovery Succeeded,
// casualty-carrying checkpoints converged through the inline recovery path,
// and the round's span tree rooted under the reconcile span that drove it.
func runSoakService(cfg SoakConfig) (*SoakResult, error) {
	e, err := newSoakEnv(cfg)
	if err != nil {
		return nil, err
	}
	defer e.close()

	exec := &soakServiceExec{e: e, downNow: map[int]bool{}, partitioned: [2]int{-1, -1}}
	stateDir := cfg.StateDir
	if stateDir == "" && cfg.ControllerRestarts > 0 {
		dir, err := os.MkdirTemp("", "dvdcsoak-state-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}
	svcOpts := service.Options{
		// A kill round burns one attempt discovering the victims are dead and
		// converges on the retry after the restore heals the cluster;
		// probabilistic chaos can abort a few more. Short backoff keeps the
		// retry cadence well inside the RPC deadline budget.
		MaxRetries: 6,
		Backoff:    25 * time.Millisecond,
		Tracer:     e.tr,
		Registry:   cfg.Registry,
		StateDir:   stateDir,
		// Small thresholds so a multi-round soak exercises fsync batching and
		// compaction, not just appends. (An in-process restart never loses
		// OS-buffered writes, so the batched window costs the test nothing.)
		SyncBatch:    4,
		CompactBytes: 32 << 10,
	}
	svc, err := service.Open(exec, svcOpts)
	if err != nil {
		return nil, err
	}
	svc.Start()
	defer func() { svc.Stop() }() // svc is reassigned on restart rounds

	// Spread the restarts across the soak, none on the last round (the
	// restarted controller should prove itself over at least one more).
	restartOn := map[int]bool{}
	for i := 1; i <= cfg.ControllerRestarts; i++ {
		restartOn[i*cfg.Rounds/(cfg.ControllerRestarts+1)] = true
	}

	const tenant = "soak"
	timeout := 20 * cfg.RPCTimeout

	for r := 0; r < cfg.Rounds; r++ {
		round := e.inj.NextRound()
		rr := RoundRecord{Round: round}
		e.applySlowPlan(r)
		var victims []int
		if e.kills != nil {
			victims = e.kills.Victims(r)
		}
		rr.Kills = victims

		restart := restartOn[r]
		if restart {
			// The controller "dies" early in the round: stop the reconciler
			// now, while the cluster is clean — its shutdown quiesce must not
			// race this round's armed faults or dead victims — so the
			// submissions below land in the journal untouched (Pending), the
			// way a crash between persisting and scheduling leaves them.
			svc.Reconciler.Stop()
		}

		if e.inj.ArmedPending() != 0 {
			return e.fail(round, "%d armed faults never fired", e.inj.ArmedPending())
		}
		// Workload phase, fault-free, driven by the harness rather than via
		// Spec.Steps: a retried checkpoint attempt must re-run the protocol
		// round but never re-step the workloads, or the real streams would
		// outrun the shadow's.
		if err := e.coord.Step(cfg.StepsPerRound); err != nil {
			return e.fail(round, "step: %v", err)
		}
		e.shadow.Step(cfg.StepsPerRound)

		exec.beginRound(e.armRoundFaults(victims))

		for _, v := range victims {
			e.sc.nodes[v].Close()
			e.inj.RecordKill(v)
			exec.markDown(v)
		}

		retriesBefore := e.coord.totalRetries()

		ck, err := svc.Submit(service.KindCheckpoint, service.Spec{Tenant: tenant})
		if err != nil {
			return e.fail(round, "submit checkpoint: %v", err)
		}
		var rs *service.Request
		if len(victims) > 0 {
			if rs, err = svc.Submit(service.KindRestore, service.Spec{Tenant: tenant, Nodes: victims}); err != nil {
				return e.fail(round, "submit restore: %v", err)
			}
		}

		if restart {
			// Crash the controller with the round's requests admitted but
			// untouched: close the journal out from under everything and bring
			// up a fresh service over the same state dir. The replayed store
			// must carry both requests forward, at no lower revision, still
			// pending — then the restarted reconciler has to converge them
			// against the dead victims exactly as a live one would.
			revBefore := svc.Store.Rev()
			if err := svc.Store.Close(); err != nil {
				return e.fail(round, "close store for controller restart: %v", err)
			}
			if svc, err = service.Open(exec, svcOpts); err != nil {
				return e.fail(round, "controller restart: %v", err)
			}
			if got := svc.Store.Rev(); got < revBefore {
				return e.fail(round, "store revision regressed across restart: %d -> %d", revBefore, got)
			}
			ids := []string{ck.ID}
			if rs != nil {
				ids = append(ids, rs.ID)
			}
			for _, id := range ids {
				req, ok := svc.Store.Get(id)
				if !ok {
					return e.fail(round, "request %s lost across controller restart", id)
				}
				if req.Status.Phase.Terminal() {
					return e.fail(round, "request %s already %s before the restarted controller ran",
						id, req.Status.Phase)
				}
			}
			e.res.ControllerRestarts++
			svc.Start()
		}

		ckDone, err := svc.WaitTerminal(ck.ID, timeout)
		if err != nil {
			return e.fail(round, "checkpoint request: %v", err)
		}
		var rsDone *service.Request
		if rs != nil {
			if rsDone, err = svc.WaitTerminal(rs.ID, timeout); err != nil {
				return e.fail(round, "restore request: %v", err)
			}
		}

		bytes, aborts, dead, violation := exec.takeRound()
		if violation != nil {
			return e.fail(round, "%v", violation)
		}
		rr.BytesShipped = bytes
		rr.Aborted = aborts > 0
		rr.DeadDuring = dead
		rr.RPCRetries = e.coord.totalRetries() - retriesBefore
		rr.Retries = ckDone.Status.Retries
		if rsDone != nil {
			rr.Retries += rsDone.Status.Retries
		}

		// Request convergence. Recovery is mandatory wherever it was owed, and
		// a checkpoint that lost nodes mid-commit must have converged through
		// the inline casualty path rather than giving up. A checkpoint Failed
		// on a clean cluster is the service-mode analog of a classic aborted
		// round (chaos won every attempt) and is tolerated; the liveness floor
		// at the end still bounds how often.
		if rsDone != nil && rsDone.Status.Phase != service.PhaseSucceeded {
			return e.fail(round, "restore request %s ended %s: %s",
				rsDone.ID, rsDone.Status.Phase, rsDone.Status.Message)
		}
		if len(dead) > 0 && ckDone.Status.Phase != service.PhaseSucceeded {
			return e.fail(round, "checkpoint request %s lost nodes %v mid-commit but ended %s: %s",
				ckDone.ID, dead, ckDone.Status.Phase, ckDone.Status.Message)
		}
		for _, req := range []*service.Request{ckDone, rsDone} {
			if req == nil {
				continue
			}
			if req.Status.ObservedGeneration != req.Generation {
				return e.fail(round, "request %s observed generation %d behind spec generation %d",
					req.ID, req.Status.ObservedGeneration, req.Generation)
			}
		}

		if err := e.verifyRound(round, &rr); err != nil {
			return e.fail(round, "%v", err)
		}
		e.tickHealth()
		// Request↔trace linkage: every request the reconciler drove to
		// Succeeded must carry the trace id(s) of its reconcile rounds, and
		// each must resolve to a closed single-root span tree in the
		// collector — the end-to-end jump from a request object to the exact
		// protocol rounds that served it.
		for _, req := range []*service.Request{ckDone, rsDone} {
			if req == nil || req.Status.Phase != service.PhaseSucceeded {
				continue
			}
			if len(req.Status.TraceIDs) == 0 {
				return e.fail(round, "request %s succeeded with no trace ids", req.ID)
			}
			for _, hexID := range req.Status.TraceIDs {
				tid, err := strconv.ParseUint(hexID, 16, 64)
				if err != nil {
					return e.fail(round, "request %s trace id %q not hex: %v", req.ID, hexID, err)
				}
				if _, err := e.checkTrace(tid); err != nil {
					return e.fail(round, "request %s trace %s: %v", req.ID, hexID, err)
				}
			}
		}
		// In service mode the control plane owns the root of every protocol
		// span tree: the round's trace must carry the reconcile span that
		// drove it.
		if tid := e.coord.RoundStats().TraceID; tid != 0 {
			found := false
			for _, s := range e.tr.TraceSpans(tid) {
				if s.Name == "reconcile" {
					found = true
					break
				}
			}
			if !found {
				return e.fail(round, "round trace %016x has no reconcile span", tid)
			}
		}
		rr.Epoch = e.coord.Epoch()
		e.res.Rounds = append(e.res.Rounds, rr)
		if cfg.RoundInterval > 0 && r < cfg.Rounds-1 {
			time.Sleep(cfg.RoundInterval)
		}
	}

	return e.finish()
}
