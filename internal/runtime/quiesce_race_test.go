package runtime

import (
	"sync"
	"testing"
)

// TestQuiesceRacingCheckpoint hammers Quiesce from one goroutine while
// another drives checkpoint rounds. The coordinator serializes protocol
// operations on its round mutex, so a Quiesce that lands mid-round must wait
// for the round to finish — it may never abort an epoch a concurrent commit
// is in the middle of landing. Run under -race this also proves the epoch
// reads in Quiesce's abort messages are synchronized with the commit path's
// epoch advance.
func TestQuiesceRacingCheckpoint(t *testing.T) {
	coord, _ := testCluster(t, paperLayout(t))

	const rounds = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := coord.Quiesce(); err != nil {
				t.Errorf("quiesce: %v", err)
				return
			}
			// Interleaved reads: Epoch must be callable from any goroutine.
			_ = coord.Epoch()
		}
	}()

	for i := 0; i < rounds; i++ {
		if err := coord.Step(5); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := coord.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// Every round must have committed despite the concurrent aborts: a
	// Quiesce between rounds only clears staged state (a no-op on a clean
	// cluster), never a committed epoch.
	if got := coord.Epoch(); got != rounds {
		t.Fatalf("epoch = %d, want %d (quiesce rolled back a committed round?)", got, rounds)
	}
	states, err := coord.VMStates()
	if err != nil {
		t.Fatal(err)
	}
	for vm, st := range states {
		if st.Epoch != rounds {
			t.Errorf("%s committed epoch %d, want %d", vm, st.Epoch, rounds)
		}
	}
}
