package runtime

import (
	"testing"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/obs/health"
)

// TestSoakSlowNodeFiresRoundTimeSLO pins the health engine end to end on a
// live cluster: a pinned-seed soak makes one node habitually slow for a
// window of rounds, and the round-time SLO must fire while the node drags
// rounds past the objective and resolve once it is healed. The evaluator
// runs in FixedStep mode, ticked once per round by the soak loop, so the
// alert timeline is a pure function of the measured round walls — which the
// slow-node delay separates from the objective by an order of magnitude on
// both sides.
func TestSoakSlowNodeFiresRoundTimeSLO(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewFlightRecorder(0)
	ev := health.New(health.Options{Registry: reg, Recorder: rec, FixedStep: time.Second})
	ev.AddSignal(health.HistSignal(reg, "round_time", "dvdc_round_seconds"))
	// Median over short windows, not p99: the median of the window is immune
	// to a single outlier round on a loaded CI machine, while four slow
	// rounds in a row move it an order of magnitude past the objective.
	ev.AddRule(health.Rule{
		Name: "round_time_slo", Signal: "round_time", Unit: "s",
		Objective: 0.06, Quantile: 0.5,
		FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second,
	})

	cfg := SoakConfig{
		Layout:        paperLayout(t),
		Rounds:        10,
		StepsPerRound: 10,
		Seed:          424242,
		Registry:      reg,
		Recorder:      rec,
		Health:        ev,
		// Rounds 2..5 (0-based) run against a node whose every frame is
		// stretched by 200ms: a clean round on this layout is ~20ms of wall,
		// a slow one at least one delayed frame per phase.
		SlowDelay: 200 * time.Millisecond,
		SlowNode:  1,
		SlowFrom:  2,
		SlowUntil: 6,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("soak failed: %v\nfault log:\n%s", err, faultLines(res))
	}

	// The standing fault is in the deterministic fault log exactly once.
	slowFaults := 0
	for _, f := range res.FaultLog {
		if f.Kind.String() == "slow" {
			slowFaults++
			if f.Node != cfg.SlowNode {
				t.Errorf("slow fault logged against node %d, want %d", f.Node, cfg.SlowNode)
			}
		}
	}
	if slowFaults != 1 {
		t.Errorf("fault log carries %d slow faults, want exactly 1 (logged at arm time, not per frame)", slowFaults)
	}

	// The alert timeline: fired while the slow window was live, resolved
	// after the heal, nothing firing at the end.
	var fireTick, resolveTick int64 = -1, -1
	for _, tr := range ev.History() {
		if tr.Rule != "round_time_slo" {
			continue
		}
		switch tr.To {
		case health.StateFiring:
			if fireTick < 0 {
				fireTick = tr.Tick
			}
		case health.StateResolved:
			resolveTick = tr.Tick
		}
	}
	if fireTick < 0 {
		t.Fatalf("round_time_slo never fired across the slow window; history: %+v, report: %+v",
			ev.History(), ev.Report())
	}
	// Tick N follows 0-based round N-1. The first slow round is round 2
	// (tick 3) and the heal lands before round 6 (tick 7): the alert cannot
	// fire before the fault and must fire before the first clean evaluation.
	if fireTick < 3 || fireTick > 7 {
		t.Errorf("round_time_slo fired at tick %d, want within the slow window [3, 7]", fireTick)
	}
	if resolveTick < 0 {
		t.Fatalf("round_time_slo never resolved after the heal; report: %+v", ev.Report())
	}
	if resolveTick <= fireTick {
		t.Errorf("resolved at tick %d, not after firing at tick %d", resolveTick, fireTick)
	}
	if firing := ev.Firing(); len(firing) != 0 {
		t.Errorf("rules still firing after the heal: %v", firing)
	}

	// The exported alert metrics tell the same story: the firing gauge is
	// back to 0 and both transitions were counted.
	reg.Collect()
	if v, ok := reg.Value("dvdc_alert_firing", "rule", "round_time_slo"); !ok || v != 0 {
		t.Errorf("dvdc_alert_firing{rule=round_time_slo} = %v (ok=%v), want 0", v, ok)
	}
	if v, _ := reg.Value("dvdc_alert_transitions_total", "rule", "round_time_slo", "to", "firing"); v < 1 {
		t.Errorf("dvdc_alert_transitions_total{to=firing} = %v, want >= 1", v)
	}
	if v, _ := reg.Value("dvdc_alert_transitions_total", "rule", "round_time_slo", "to", "resolved"); v < 1 {
		t.Errorf("dvdc_alert_transitions_total{to=resolved} = %v, want >= 1", v)
	}

	// And the flight recorder holds the transitions, so a postmortem bundle
	// dumped near the incident explains itself.
	alerts := 0
	for _, en := range rec.Entries() {
		if en.Kind == "alert" && en.Name == "round_time_slo" {
			alerts++
		}
	}
	if alerts < 2 {
		t.Errorf("flight recorder carries %d alert entries, want >= 2 (firing + resolved)", alerts)
	}
}
