package runtime

import (
	"bytes"
	"testing"
)

// FuzzDecodeDelta hits the delta codec (both raw and compressed framings)
// with arbitrary bytes: never panic; accepted deltas re-encode to an
// equivalent delta.
func FuzzDecodeDelta(f *testing.F) {
	f.Add(encodeDelta(sampleDelta(), false))
	f.Add(encodeDelta(sampleDelta(), true))
	f.Add([]byte{deltaCompressed, 1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := decodeDelta(data)
		if err != nil {
			return
		}
		again, err := decodeDelta(encodeDelta(d, false))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.VMID != d.VMID || again.Epoch != d.Epoch || len(again.Pages) != len(d.Pages) {
			t.Fatal("round trip mismatch")
		}
		for i := range d.Pages {
			if again.Pages[i].Index != d.Pages[i].Index ||
				!bytes.Equal(again.Pages[i].Data, d.Pages[i].Data) {
				t.Fatal("page mismatch")
			}
		}
	})
}
