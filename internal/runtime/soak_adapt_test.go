package runtime

import (
	"strings"
	"testing"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/obs/adapt"
)

// adaptLayout builds the 6-node, 18-VM, groupSize-3 distributed layout used
// by the adaptive soaks. Unlike the paper's minimal 4-node Fig. 4 (where
// every other node already carries an element of every group and keeper
// evacuation is structurally impossible), each group here leaves two nodes
// free, so a flagged keeper can always be drained orthogonally.
func adaptLayout(t *testing.T) *cluster.Layout {
	t.Helper()
	layout, err := cluster.BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return layout
}

// meanWall averages the checkpoint wall clock of rounds [from, to] (1-based,
// inclusive).
func meanWall(rounds []RoundRecord, from, to int) time.Duration {
	var sum time.Duration
	var n int
	for _, rr := range rounds {
		if rr.Round >= from && rr.Round <= to {
			sum += rr.Wall
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// TestSoakAdaptiveConvergesUnderSlowNode is the ROADMAP convergence
// experiment: under identical pinned-seed slow-node chaos (a keeper whose
// data-plane ingest delays every bulk frame shipped to it), the adaptive
// cluster's round time must converge back toward the pre-fault baseline —
// the advisor flags the keeper as a habitual outlier and drains its parity
// to orthogonal nodes — while the static cluster's round time stays pinned
// at the injected delay for the rest of the run. Both runs keep the full
// shadow-invariant battery green, and every applied decision is traceable
// through the round record, the dvdc_adapt_* metric family, the flight
// recorder, and the dvdcctl adapt renderers.
func TestSoakAdaptiveConvergesUnderSlowNode(t *testing.T) {
	const (
		rounds   = 16
		slowFrom = 3 // 0-based: first slow round is 1-based round 4
		delay    = 25 * time.Millisecond
	)
	run := func(adaptive bool) (*SoakResult, *obs.Registry, *obs.FlightRecorder) {
		reg := obs.NewRegistry()
		rec := obs.NewFlightRecorder(4096)
		res, err := RunSoak(SoakConfig{
			Layout:        adaptLayout(t),
			Rounds:        rounds,
			StepsPerRound: 24,
			Pages:         64,
			PageSize:      256,
			ChunkSize:     512,
			Seed:          7,
			RoundSeconds:  10,
			SlowDelay:     delay,
			SlowNode:      1,
			SlowFrom:      slowFrom,
			SlowUntil:     0, // through the last round: only adaptation can help
			Adaptive:      adaptive,
			Registry:      reg,
			Recorder:      rec,
		})
		if err != nil {
			t.Fatalf("soak (adaptive=%v): %v", adaptive, err)
		}
		return res, reg, rec
	}
	static, _, _ := run(false)
	adaptiveRes, reg, rec := run(true)

	// Round 1 pays one-time setup costs; rounds 2..slowFrom are the clean
	// baseline, the last four rounds the post-fault steady state.
	baseline := meanWall(adaptiveRes.Rounds, 2, slowFrom)
	staticTail := meanWall(static.Rounds, rounds-3, rounds)
	adaptiveTail := meanWall(adaptiveRes.Rounds, rounds-3, rounds)
	if baseline <= 0 || staticTail <= 0 || adaptiveTail <= 0 {
		t.Fatalf("missing walls: baseline=%v staticTail=%v adaptiveTail=%v", baseline, staticTail, adaptiveTail)
	}
	// The static cluster cannot shed the keeper: every round keeps paying the
	// ingest delay on at least one serialized delta ship.
	if staticTail < delay*4/5 {
		t.Errorf("static tail %v implausibly below the injected %v delay", staticTail, delay)
	}
	// The adaptive cluster must land measurably below static and within a
	// bounded factor of its own pre-fault baseline.
	if adaptiveTail >= staticTail/2 {
		t.Errorf("adaptive tail %v did not converge (static tail %v)", adaptiveTail, staticTail)
	}
	if adaptiveTail > baseline*5 {
		t.Errorf("adaptive tail %v not within 5x pre-fault baseline %v", adaptiveTail, baseline)
	}

	// The convergence must come from an applied keeper rebalance, recorded on
	// the round that applied it, naming the slow node.
	var applied []adapt.Decision
	var all []adapt.Decision
	for _, rr := range adaptiveRes.Rounds {
		all = append(all, rr.Adapt...)
		for _, d := range rr.Adapt {
			if d.Rule == adapt.RuleKeeperRebalance && d.Action == adapt.ActionApplied {
				applied = append(applied, d)
			}
		}
	}
	if len(applied) == 0 {
		t.Fatalf("no applied keeper_rebalance decision; decisions:\n%s", adapt.RenderDecisions(all))
	}
	d := applied[0]
	if d.Inputs["peer"] != "node1" {
		t.Errorf("keeper rebalance drained %q, want node1", d.Inputs["peer"])
	}
	if d.Inputs["p99 node1"] == "" || d.Inputs["cluster_median"] == "" {
		t.Errorf("decision inputs missing outlier evidence: %v", d.Inputs)
	}
	for _, rr := range static.Rounds {
		if len(rr.Adapt) != 0 {
			t.Fatalf("static run recorded decisions: %+v", rr.Adapt)
		}
	}

	// End-to-end traceability of the applied decision: metric family, flight
	// note, decision-log rendering, and the scraped dvdcctl adapt view.
	if v, _ := reg.Value("dvdc_adapt_applies_total", "rule", adapt.RuleKeeperRebalance); v < 1 {
		t.Errorf("dvdc_adapt_applies_total{keeper_rebalance} = %v, want >= 1", v)
	}
	var noted bool
	for _, e := range rec.Entries() {
		if e.Kind == "note" && e.Name == "adapt" {
			noted = true
			break
		}
	}
	if !noted {
		t.Error("no adapt note in the flight recorder")
	}
	log := adapt.RenderDecisions(all)
	if !strings.Contains(log, adapt.RuleKeeperRebalance) || !strings.Contains(log, adapt.ActionApplied) {
		t.Errorf("decision log missing the applied rebalance:\n%s", log)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	view := adapt.BuildView(sb.String())
	if !view.Active || view.TotalApplied() < 1 {
		t.Errorf("scraped adapt view inactive or empty: %+v", view)
	}
}
