package runtime

import (
	"testing"

	"dvdc/internal/wire"
)

// TestExplicitPrepareAbortCycle drives the two-phase protocol by hand:
// prepare captures deltas and ships them; abort must undo the captures so
// the next round re-ships the same pages and commits the same state as if
// the aborted round had never happened.
func TestExplicitPrepareAbortCycle(t *testing.T) {
	coord, nodes := testCluster(t, paperLayout(t))
	if err := coord.Step(40); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Step(25); err != nil {
		t.Fatal(err)
	}

	// Manual prepare on every node, then abort everywhere.
	for i, n := range nodes {
		resp, err := n.handle(&wire.Message{Type: wire.MsgPrepare, Epoch: coord.Epoch() + 1})
		if err != nil {
			t.Fatalf("prepare node %d: %v", i, err)
		}
		if resp.Type != wire.MsgPrepareOK {
			t.Fatalf("node %d: %v", i, resp.Type)
		}
	}
	for i, n := range nodes {
		if _, err := n.handle(&wire.Message{Type: wire.MsgAbort, Epoch: coord.Epoch() + 1}); err != nil {
			t.Fatalf("abort node %d: %v", i, err)
		}
	}
	// After the abort the committed state must equal the last commit.
	mid, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for vmName, want := range base {
		if mid[vmName] != want {
			t.Errorf("VM %q committed state changed by aborted round", vmName)
		}
	}
	// A real checkpoint must now succeed and include the un-done dirt.
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for vmName, want := range base {
		if after[vmName] != want {
			changed++
		}
	}
	if changed == 0 {
		t.Error("post-abort checkpoint committed nothing despite dirty VMs")
	}
	// Parity must still be consistent: kill a node and verify recovery.
	nodes[0].Close()
	if _, err := coord.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	final, err := coord.Checksums()
	if err != nil {
		t.Fatal(err)
	}
	for vmName, want := range after {
		if final[vmName] != want {
			t.Errorf("VM %q diverged after abort+commit+recovery", vmName)
		}
	}
}

// TestDoublePrepareRejected ensures a node refuses to stage twice.
func TestDoublePrepareRejected(t *testing.T) {
	_, nodes := testCluster(t, paperLayout(t))
	if _, err := nodes[0].handle(&wire.Message{Type: wire.MsgPrepare, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].handle(&wire.Message{Type: wire.MsgPrepare, Epoch: 2}); err == nil {
		t.Error("second prepare without commit/abort should fail")
	}
}

// TestUnknownMessageRejected covers the handler's default branch.
func TestUnknownMessageRejected(t *testing.T) {
	_, nodes := testCluster(t, paperLayout(t))
	if _, err := nodes[0].handle(&wire.Message{Type: wire.MsgType(250)}); err == nil {
		t.Error("unknown message should fail")
	}
}
