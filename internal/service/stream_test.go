package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// TestStreamWatchDeliversUpdates reads the raw ndjson watch stream and checks
// it carries the request's whole phase history in one connection: current
// state first, then one reply per change, ending at the terminal phase.
func TestStreamWatchDeliversUpdates(t *testing.T) {
	release := make(chan struct{})
	exec := &gatedExec{gate: release}
	svc := startService(t, exec, Options{})

	mux := http.NewServeMux()
	svc.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	req, err := svc.Submit(KindCheckpoint, Spec{Tenant: "a", Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Open the stream while the executor is still gated, so the connection is
	// guaranteed to witness at least one pre-terminal phase.
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/requests/%s/watch?rev=-1&timeout=5s&stream=1", srv.URL, url.PathEscape(req.ID)))
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var replies []watchReply
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var wr watchReply
		if err := json.Unmarshal(sc.Bytes(), &wr); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		replies = append(replies, wr)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(replies) < 2 {
		t.Fatalf("stream carried %d replies, want the phase history (>= 2)", len(replies))
	}
	for i := 1; i < len(replies); i++ {
		if replies[i].Rev <= replies[i-1].Rev {
			t.Fatalf("stream revs not increasing: %d then %d", replies[i-1].Rev, replies[i].Rev)
		}
	}
	last := replies[len(replies)-1]
	if last.Request == nil || !last.Request.Terminal() {
		t.Fatalf("stream ended before terminal phase: %+v", last)
	}
	if last.Request.Status.Phase != PhaseSucceeded {
		t.Fatalf("final phase = %s, want Succeeded", last.Request.Status.Phase)
	}
}

// TestStreamSlowConsumerDoesNotWedge pins the regression the streaming watch
// must never introduce: a consumer that connects and then stops reading may
// block its own handler goroutine on the response write, but the store's
// level-trigger Wait has no per-watcher queue — status writes and other
// watchers must proceed at full speed.
func TestStreamSlowConsumerDoesNotWedge(t *testing.T) {
	exec := &fakeExec{}
	svc := New(exec, Options{}) // reconciler not started: the test drives status writes
	mux := http.NewServeMux()
	svc.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	req, err := svc.Submit(KindCheckpoint, Spec{Tenant: "a", Steps: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The slow consumer: a raw TCP client that sends the request and never
	// reads a byte of the response, so kernel buffers fill and the stream
	// handler blocks mid-write.
	conn, err := net.Dial("tcp", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /api/v1/requests/%s/watch?rev=-1&timeout=30s&stream=1 HTTP/1.1\r\nHost: x\r\n\r\n", url.PathEscape(req.ID))
	time.Sleep(50 * time.Millisecond) // let the handler enter its loop

	// Hammer large status writes: far more bytes than any socket buffer, so
	// the slow consumer's handler is certainly wedged on write by the end.
	big := strings.Repeat("x", 64*1024)
	start := time.Now()
	for i := 0; i < 200; i++ {
		if _, err := svc.Store.UpdateStatus(req.ID, func(_ time.Time, r *Request) {
			r.Status.Message = fmt.Sprintf("%s %d", big, i)
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := svc.Store.UpdateStatus(req.ID, func(_ time.Time, r *Request) {
		r.Status.Phase = PhaseSucceeded
		r.Status.Message = "done"
	}); err != nil {
		t.Fatal(err)
	}
	writeWall := time.Since(start)
	if writeWall > 5*time.Second {
		t.Fatalf("201 status writes took %v with a slow stream consumer attached — store wedged", writeWall)
	}

	// A well-behaved watcher opened alongside the wedged one converges fast.
	cl := NewClient(srv.URL)
	t0 := time.Now()
	final, err := cl.Watch(req.ID, 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status.Phase != PhaseSucceeded {
		t.Fatalf("fast watcher saw %s, want Succeeded", final.Status.Phase)
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("fast watcher took %v beside a slow consumer", d)
	}
}
