// Package journal is the append-only record log backing the service store.
// The format reuses the internal/wire framing idioms — little-endian, explicit
// lengths, CRC32-IEEE, a hard size bound against corrupt length prefixes — but
// for a durable on-disk log rather than a network frame:
//
//	file   = magic  record*
//	magic  = "DVDCJNL1"                             (8 bytes)
//	record = len uint32 | crc uint32 | payload      (crc over len bytes ++ payload)
//
// The recovery contract is prefix consistency: a scan stops at the first
// framing violation (short frame, oversized length, CRC mismatch) and treats
// everything before it as the valid prefix — a torn tail from a crash mid-write
// is silently dropped, never partially applied. Only a wrong magic is a hard
// error: the file is not a journal, and loading it would be silent corruption.
// Semantic validation of payloads is the caller's job (and is where "fail
// loudly" lives: a CRC-valid record that decodes to garbage must be rejected,
// not skipped).
package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// MaxRecord bounds one payload. Anything larger in a length prefix is treated
// as corruption, so a flipped bit can never drive a multi-gigabyte read.
const MaxRecord = 16 << 20

// headerLen and frameLen size the fixed parts of the format.
const (
	headerLen = 8
	frameLen  = 8 // len + crc
)

var magic = []byte("DVDCJNL1")

// ErrNotJournal reports a file whose header is not the journal magic. Unlike
// a torn tail this is never recoverable-by-truncation: the file is something
// else entirely and must not be loaded or overwritten silently.
var ErrNotJournal = errors.New("journal: bad magic (not a journal file)")

// AppendHeader appends the file header to dst.
func AppendHeader(dst []byte) []byte { return append(dst, magic...) }

// AppendRecord appends one framed record to dst.
func AppendRecord(dst, payload []byte) []byte {
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(lenb[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	dst = append(dst, lenb[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return append(dst, payload...)
}

// ScanBytes walks a journal image and returns every intact payload plus the
// byte length of the valid prefix. Payloads alias b. A torn tail (truncated
// frame, oversized length, CRC mismatch) stops the scan without error; a
// header that cannot be the journal magic returns ErrNotJournal. An empty or
// header-only image is a valid journal with zero records.
func ScanBytes(b []byte) (payloads [][]byte, valid int64, err error) {
	if len(b) < headerLen {
		// A short file that is a prefix of the magic is a crash before the
		// header landed; anything else is not a journal.
		if !bytes.HasPrefix(magic, b) {
			return nil, 0, ErrNotJournal
		}
		return nil, 0, nil
	}
	if !bytes.Equal(b[:headerLen], magic) {
		return nil, 0, ErrNotJournal
	}
	off := int64(headerLen)
	for {
		rest := b[off:]
		if len(rest) < frameLen {
			return payloads, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[:4]))
		if n > MaxRecord || frameLen+n > int64(len(rest)) {
			return payloads, off, nil
		}
		want := binary.LittleEndian.Uint32(rest[4:8])
		crc := crc32.ChecksumIEEE(rest[:4])
		crc = crc32.Update(crc, crc32.IEEETable, rest[frameLen:frameLen+n])
		if crc != want {
			return payloads, off, nil
		}
		payloads = append(payloads, rest[frameLen:frameLen+n])
		off += frameLen + n
	}
}

// Options tune a Writer.
type Options struct {
	// SyncBatch is the number of appends between fsyncs; <= 1 syncs every
	// append. Close and Sync always flush regardless of the batch.
	SyncBatch int
	// OnFsync, if set, is called after every fsync of the log with the fsync's
	// wall-clock duration (metrics hook: count + latency histogram).
	OnFsync func(d time.Duration)
}

// RecoverInfo summarizes what Recover found on disk.
type RecoverInfo struct {
	Records      int   // intact records in the valid prefix
	DroppedBytes int64 // torn tail truncated away
}

// Writer is an append handle on a journal file. All methods are safe for
// concurrent use.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64
	batch   int
	pending int
	onFsync func(time.Duration)
	scratch []byte
}

// Recover opens (creating if absent) the journal at path, scans it, truncates
// any torn tail, and returns an append Writer positioned after the valid
// prefix plus the intact payloads in order. Payloads are freshly allocated:
// they do not alias any internal buffer.
func Recover(path string, opts Options) (*Writer, [][]byte, RecoverInfo, error) {
	var info RecoverInfo
	b, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, info, fmt.Errorf("journal: read %s: %w", path, err)
	}
	payloads, valid, err := ScanBytes(b)
	if err != nil {
		return nil, nil, info, fmt.Errorf("journal: %s: %w", path, err)
	}
	info.Records = len(payloads)
	info.DroppedBytes = int64(len(b)) - valid

	w := &Writer{path: path, batch: opts.SyncBatch, onFsync: opts.OnFsync}
	if w.batch < 1 {
		w.batch = 1
	}
	if valid < headerLen {
		// Fresh (or torn-before-header) file: rewrite it from scratch.
		f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, info, err
		}
		if _, err = f.Write(magic); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, nil, info, err
		}
		w.f, w.size = f, headerLen
	} else {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, info, err
		}
		if info.DroppedBytes > 0 {
			if err := f.Truncate(valid); err == nil {
				err = f.Sync()
			}
			if err != nil {
				f.Close()
				return nil, nil, info, err
			}
		}
		w.f, w.size = f, valid
	}
	if err := syncDir(path); err != nil {
		w.f.Close()
		return nil, nil, info, err
	}
	// Detach the payloads from the file image before it goes out of scope.
	out := make([][]byte, len(payloads))
	for i, p := range payloads {
		out[i] = append([]byte(nil), p...)
	}
	return w, out, info, nil
}

// Append frames payload and writes it, fsyncing when the batch fills.
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("journal: writer closed")
	}
	w.scratch = AppendRecord(w.scratch[:0], payload)
	if _, err := w.f.Write(w.scratch); err != nil {
		return err
	}
	w.size += int64(len(w.scratch))
	w.pending++
	if w.pending >= w.batch {
		return w.syncLocked()
	}
	return nil
}

// Sync flushes any batched appends to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.pending == 0 {
		return nil
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.pending = 0
	if w.onFsync != nil {
		w.onFsync(time.Since(t0))
	}
	return nil
}

// Size returns the current file size in bytes (header included).
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Rewrite atomically replaces the journal's contents with the given payloads
// (compaction): a temp file gets header + records + fsync, then renames over
// the log, and the writer continues appending to the new file. A crash at any
// point leaves either the old complete log or the new complete log.
func (w *Writer) Rewrite(payloads ...[]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("journal: writer closed")
	}
	buf := AppendHeader(nil)
	for _, p := range payloads {
		if len(p) > MaxRecord {
			return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord %d", len(p), MaxRecord)
		}
		buf = AppendRecord(buf, p)
	}
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	fsyncWall := time.Since(t0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, w.path)
	}
	if err == nil {
		err = syncDir(w.path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// The old fd still points at the unlinked inode; swap to the new file.
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f.Close()
	w.f, w.size, w.pending = nf, int64(len(buf)), 0
	if w.onFsync != nil {
		w.onFsync(fsyncWall)
	}
	return nil
}

// Close flushes batched appends and closes the file. Idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir fsyncs the directory holding path so a freshly created or renamed
// journal survives a crash of the whole machine, not just the process.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
