package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openFresh(t *testing.T, opts Options) (*Writer, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.log")
	w, payloads, info, err := Recover(path, opts)
	if err != nil {
		t.Fatalf("Recover(fresh): %v", err)
	}
	if len(payloads) != 0 || info.Records != 0 || info.DroppedBytes != 0 {
		t.Fatalf("fresh journal not empty: payloads=%d info=%+v", len(payloads), info)
	}
	t.Cleanup(func() { w.Close() })
	return w, path
}

func reopen(t *testing.T, path string) ([][]byte, RecoverInfo) {
	t.Helper()
	w, payloads, info, err := Recover(path, Options{})
	if err != nil {
		t.Fatalf("Recover(%s): %v", path, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close after reopen: %v", err)
	}
	return payloads, info
}

func TestJournalRoundTrip(t *testing.T) {
	w, path := openFresh(t, Options{})
	want := [][]byte{[]byte("one"), []byte(""), []byte("three is a bit longer")}
	for _, p := range want {
		if err := w.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got, want := w.Size(), int64(headerLen+3*frameLen+3+0+21); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	payloads, info := reopen(t, path)
	if info.DroppedBytes != 0 || info.Records != len(want) {
		t.Fatalf("reopen info = %+v", info)
	}
	if len(payloads) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(payloads), len(want))
	}
	for i := range want {
		if !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, payloads[i], want[i])
		}
	}
}

func TestJournalTornTailTruncatedOnRecover(t *testing.T) {
	w, path := openFresh(t, Options{})
	if err := w.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial frame: simulate with raw garbage.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x09, 0x00, 0x00} // half a length prefix
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, payloads, info, err := Recover(path, Options{})
	if err != nil {
		t.Fatalf("Recover(torn): %v", err)
	}
	if info.Records != 1 || info.DroppedBytes != int64(len(torn)) {
		t.Fatalf("info = %+v, want 1 record / %d dropped", info, len(torn))
	}
	if len(payloads) != 1 || string(payloads[0]) != "kept" {
		t.Fatalf("payloads = %q", payloads)
	}
	// The tail must be physically gone and appends must land cleanly after it.
	if err := w2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	payloads, info = reopen(t, path)
	if info.DroppedBytes != 0 || len(payloads) != 2 || string(payloads[1]) != "after" {
		t.Fatalf("after truncation+append: payloads=%q info=%+v", payloads, info)
	}
}

func TestJournalCRCMismatchStopsScan(t *testing.T) {
	buf := AppendHeader(nil)
	buf = AppendRecord(buf, []byte("good"))
	mark := len(buf)
	buf = AppendRecord(buf, []byte("evil"))
	buf[mark+frameLen] ^= 0xff // flip a payload byte in the second record
	buf = AppendRecord(buf, []byte("unreachable"))

	payloads, valid, err := ScanBytes(buf)
	if err != nil {
		t.Fatalf("ScanBytes: %v", err)
	}
	if len(payloads) != 1 || string(payloads[0]) != "good" {
		t.Fatalf("payloads = %q, want just %q", payloads, "good")
	}
	if valid != int64(mark) {
		t.Fatalf("valid = %d, want %d", valid, mark)
	}
}

func TestJournalBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	if err := os.WriteFile(path, []byte("NOTAJRNL-some-other-format"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Recover(path, Options{}); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("Recover(bad magic) = %v, want ErrNotJournal", err)
	}
	// The imposter file must not have been touched.
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "NOTAJRNL-some-other-format" {
		t.Fatalf("bad-magic file was modified: %q, %v", b, err)
	}
}

func TestJournalPartialHeaderTreatedAsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	if err := os.WriteFile(path, magic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	w, payloads, info, err := Recover(path, Options{})
	if err != nil {
		t.Fatalf("Recover(partial header): %v", err)
	}
	if len(payloads) != 0 || info.DroppedBytes != 3 {
		t.Fatalf("payloads=%d info=%+v", len(payloads), info)
	}
	if err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	payloads, _ = reopen(t, path)
	if len(payloads) != 1 || string(payloads[0]) != "first" {
		t.Fatalf("payloads = %q", payloads)
	}
}

func TestJournalFsyncBatching(t *testing.T) {
	fsyncs := 0
	w, _ := openFresh(t, Options{SyncBatch: 4, OnFsync: func(time.Duration) { fsyncs++ }})
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if fsyncs != 2 { // at appends 4 and 8
		t.Fatalf("fsyncs after 10 appends at batch 4 = %d, want 2", fsyncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 3 { // Close flushes the 2 stragglers
		t.Fatalf("fsyncs after Close = %d, want 3", fsyncs)
	}
}

func TestJournalRewrite(t *testing.T) {
	w, path := openFresh(t, Options{})
	for i := 0; i < 50; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%02d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Size()
	if err := w.Rewrite([]byte("snapshot")); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if w.Size() >= before {
		t.Fatalf("Rewrite did not shrink: %d -> %d", before, w.Size())
	}
	// Appends continue on the new file.
	if err := w.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	payloads, info := reopen(t, path)
	if info.DroppedBytes != 0 {
		t.Fatalf("info = %+v", info)
	}
	if len(payloads) != 2 || string(payloads[0]) != "snapshot" || string(payloads[1]) != "tail" {
		t.Fatalf("payloads = %q", payloads)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("compaction temp file left behind: %v", err)
	}
}

func TestJournalMaxRecordEnforced(t *testing.T) {
	w, _ := openFresh(t, Options{})
	if err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("Append accepted an oversized record")
	}
	// An oversized length prefix in the bytes themselves is a torn tail.
	buf := AppendHeader(nil)
	buf = AppendRecord(buf, []byte("ok"))
	cut := len(buf)
	buf = append(buf, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	payloads, valid, err := ScanBytes(buf)
	if err != nil || len(payloads) != 1 || valid != int64(cut) {
		t.Fatalf("oversized length: payloads=%d valid=%d err=%v", len(payloads), valid, err)
	}
}

func TestJournalScanEveryPrefix(t *testing.T) {
	buf := AppendHeader(nil)
	var ends []int
	for i := 0; i < 5; i++ {
		buf = AppendRecord(buf, bytes.Repeat([]byte{byte('a' + i)}, i*7+1))
		ends = append(ends, len(buf))
	}
	for cut := 0; cut <= len(buf); cut++ {
		payloads, valid, err := ScanBytes(buf[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantRecords := 0
		for _, e := range ends {
			if e <= cut {
				wantRecords++
			}
		}
		if len(payloads) != wantRecords {
			t.Fatalf("cut %d: %d records, want %d", cut, len(payloads), wantRecords)
		}
		wantValid := int64(0)
		if cut >= headerLen {
			wantValid = headerLen
			if wantRecords > 0 {
				wantValid = int64(ends[wantRecords-1])
			}
		}
		if valid != wantValid {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, wantValid)
		}
	}
}
