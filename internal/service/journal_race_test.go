package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStoreWritersRacingCompaction hammers Create/UpdateStatus from several
// goroutines while another forces compactions as fast as it can. Run with
// -race. The store must stay coherent (every write it acknowledged survives a
// reopen) because the snapshot, the rewrite, and every append all happen
// under the store mutex — a compaction can neither miss a racing record nor
// tear one.
func TestStoreWritersRacingCompaction(t *testing.T) {
	dir := t.TempDir()
	// Manual compactions only, and a large sync batch so fsync latency does
	// not serialize the writers into a polite queue.
	st, _, err := OpenStore(dir, DurableOptions{CompactBytes: -1, SyncBatch: 64})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		created  atomic.Int64
		compacts atomic.Int64
	)
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w)
			for !stop.Load() {
				req, err := st.Create(KindCheckpoint, Spec{Tenant: tenant})
				if err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
				created.Add(1)
				if _, err := st.UpdateStatus(req.ID, func(now time.Time, r *Request) {
					r.Status.Phase = PhaseSucceeded
					r.Status.ObservedGeneration = r.Generation
					r.Status.setCondition(now, CondComplete, true, "Succeeded", "")
				}); err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := st.Compact(); err != nil {
				errs <- fmt.Errorf("compactor: %v", err)
				return
			}
			compacts.Add(1)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if created.Load() == 0 || compacts.Load() == 0 {
		t.Fatalf("race produced no contention: %d creates, %d compactions", created.Load(), compacts.Load())
	}

	wantImage := storeImage(t, st)
	wantRev := st.Rev()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, err := OpenStore(dir, DurableOptions{CompactBytes: -1})
	if err != nil {
		t.Fatalf("reopen after %d creates / %d compactions: %v", created.Load(), compacts.Load(), err)
	}
	defer st2.Close()
	if got := storeImage(t, st2); got != wantImage {
		t.Fatalf("replay after racing compactions diverged (%d creates, %d compactions)",
			created.Load(), compacts.Load())
	}
	if st2.Rev() != wantRev {
		t.Fatalf("rev after racing compactions = %d, want %d", st2.Rev(), wantRev)
	}
}
