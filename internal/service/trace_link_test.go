package service

import (
	"strconv"
	"testing"
	"time"

	"dvdc/internal/obs"
)

// TestStatusCarriesRoundTraceIDs pins the request↔trace linkage: a request
// the reconciler drives to Succeeded carries the trace id of every reconcile
// round in its Status, each resolving in the collector to a trace rooted by a
// reconcile span — and, because the ids are stamped inside the journaled
// InProgress transition, they survive a controller restart's replay.
func TestStatusCarriesRoundTraceIDs(t *testing.T) {
	dir := t.TempDir()
	tr := obs.NewTracer(1 << 12)
	exec := &fakeExec{}
	svc, err := Open(exec, Options{StateDir: dir, Backoff: 2 * time.Millisecond, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	req, err := svc.Submit(KindCheckpoint, Spec{Tenant: "alpha", Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.WaitTerminal(req.ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status.Phase != PhaseSucceeded {
		t.Fatalf("request ended %s: %s", done.Status.Phase, done.Status.Message)
	}
	if len(done.Status.TraceIDs) == 0 {
		t.Fatal("Succeeded request carries no trace ids")
	}
	for _, hexID := range done.Status.TraceIDs {
		tid, err := strconv.ParseUint(hexID, 16, 64)
		if err != nil || len(hexID) != 16 {
			t.Fatalf("trace id %q is not 16-digit hex: %v", hexID, err)
		}
		// The reconcile span wraps the terminal status write, so it finishes
		// (and reaches the ring) strictly after WaitTerminal can return —
		// give it a moment, as a real collector scrape naturally would.
		found := false
		var spans []obs.Span
		for deadline := time.Now().Add(2 * time.Second); !found && !time.Now().After(deadline); {
			spans = tr.TraceSpans(tid)
			for _, s := range spans {
				if s.Name == "reconcile" {
					found = true
				}
			}
			if !found {
				time.Sleep(time.Millisecond)
			}
		}
		if !found {
			t.Fatalf("trace %s has no finished reconcile span; spans: %+v", hexID, spans)
		}
	}

	// Restart: the replayed store must return the identical trace ids — the
	// linkage is durable state, not a live-process artifact.
	svc.Stop()
	svc2, err := Open(&fakeExec{}, Options{StateDir: dir, Backoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Stop()
	svc2.Start()
	got, ok := svc2.Store.Get(req.ID)
	if !ok {
		t.Fatalf("request %s lost across restart", req.ID)
	}
	if len(got.Status.TraceIDs) != len(done.Status.TraceIDs) {
		t.Fatalf("trace ids across restart = %v, want %v", got.Status.TraceIDs, done.Status.TraceIDs)
	}
	for i := range got.Status.TraceIDs {
		if got.Status.TraceIDs[i] != done.Status.TraceIDs[i] {
			t.Fatalf("trace ids across restart = %v, want %v", got.Status.TraceIDs, done.Status.TraceIDs)
		}
	}
}
