package service

import (
	"fmt"
	"sort"
	"sync"
)

// Quota bounds one tenant's use of the service.
type Quota struct {
	// MaxActive caps the tenant's non-terminal requests (Pending, Scheduled,
	// InProgress). 0 means "use the admission layer's default".
	MaxActive int `json:"max_active"`
}

// DefaultMaxActive is the per-tenant active-request cap when no quota was
// configured for the tenant and no default override was given.
const DefaultMaxActive = 4

// QuotaError is the admission layer's typed rejection: the tenant is at its
// active-request cap. The HTTP API maps it to 429 Too Many Requests.
type QuotaError struct {
	Tenant string `json:"tenant"`
	Limit  int    `json:"limit"`
	Active int    `json:"active"`
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q at quota (%d of %d active requests)", e.Tenant, e.Active, e.Limit)
}

// Admission is the gate every submission passes: spec validation, then the
// per-tenant active-request quota against the store's live counts. It is
// deliberately stateless about requests themselves — the store is the one
// source of truth — so admission decisions stay correct across restarts of
// the reconciler.
type Admission struct {
	mu           sync.Mutex
	quotas       map[string]Quota
	defaultQuota Quota
}

// NewAdmission builds an admission gate. quotas maps tenant -> quota;
// tenants not named fall back to defaultMaxActive (<= 0 picks
// DefaultMaxActive).
func NewAdmission(quotas map[string]Quota, defaultMaxActive int) *Admission {
	if defaultMaxActive <= 0 {
		defaultMaxActive = DefaultMaxActive
	}
	a := &Admission{quotas: map[string]Quota{}, defaultQuota: Quota{MaxActive: defaultMaxActive}}
	for t, q := range quotas {
		a.quotas[t] = q
	}
	return a
}

// QuotaFor resolves the effective quota of a tenant.
func (a *Admission) QuotaFor(tenant string) Quota {
	a.mu.Lock()
	defer a.mu.Unlock()
	q, ok := a.quotas[tenant]
	if !ok || q.MaxActive <= 0 {
		return a.defaultQuota
	}
	return q
}

// SetQuota installs or replaces one tenant's quota.
func (a *Admission) SetQuota(tenant string, q Quota) {
	a.mu.Lock()
	a.quotas[tenant] = q
	a.mu.Unlock()
}

// Tenants lists tenants with explicit quotas, sorted.
func (a *Admission) Tenants() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.quotas))
	for t := range a.quotas {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Admit validates the spec and checks the tenant's quota against the store.
// A *QuotaError (as opposed to a validation error) means "try again later",
// not "the request is malformed".
func (a *Admission) Admit(st *Store, kind Kind, spec Spec) error {
	if err := kind.Validate(spec); err != nil {
		return err
	}
	q := a.QuotaFor(spec.Tenant)
	if active := st.ActiveByTenant()[spec.Tenant]; active >= q.MaxActive {
		return &QuotaError{Tenant: spec.Tenant, Limit: q.MaxActive, Active: active}
	}
	return nil
}
