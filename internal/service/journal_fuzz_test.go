package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dvdc/internal/service/journal"
)

var regenJournalCorpus = flag.Bool("regen-journal-corpus", false, "rewrite the journal fuzz corpus under testdata/")

const journalCorpusDir = "testdata/fuzz/FuzzJournalReplay"

// corpusTime is the fixed clock every corpus record carries, so the generator
// produces identical bytes on every machine.
var corpusTime = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// corpusRecord marshals a journalRecord, panicking on the impossible (the
// corpus is hand-built from known-good values).
func corpusRecord(rec journalRecord) []byte {
	b, err := json.Marshal(rec)
	if err != nil {
		panic(err)
	}
	return b
}

// corpusRequest builds a canonical stored object for the corpus.
func corpusRequest(kind Kind, seq int64, phase Phase, spec Spec) *Request {
	r := &Request{
		APIVersion: APIVersion,
		Kind:       kind,
		ID:         fmt.Sprintf("%s-%d", idPrefix(kind), seq),
		Generation: 1,
		Created:    corpusTime,
		Spec:       spec,
		Status:     Status{Phase: phase},
	}
	r.Status.setCondition(corpusTime, CondAdmitted, true, "Admitted", "passed admission control")
	if phase == PhaseInProgress || phase.Terminal() {
		r.Status.ObservedGeneration = 1
	}
	return r
}

// corpusBase is a fully valid journal image: header, creates, status walks,
// and a snapshot — every record shape replay accepts.
func corpusBase() []byte {
	ck := corpusRequest(KindCheckpoint, 1, PhasePending, Spec{Tenant: "alpha", Steps: 25})
	rs := corpusRequest(KindRestore, 2, PhasePending, Spec{Tenant: "beta", Nodes: []int{1, 3}})
	ckDone := corpusRequest(KindCheckpoint, 1, PhaseSucceeded, Spec{Tenant: "alpha", Steps: 25})
	ckDone.Status.Epoch = 7
	records := [][]byte{
		corpusRecord(journalRecord{Op: opCreate, Rev: 1, NextID: 1, Req: ck}),
		corpusRecord(journalRecord{Op: opCreate, Rev: 2, NextID: 2, Req: rs}),
		corpusRecord(journalRecord{Op: opStatus, Rev: 3, Req: ckDone}),
		corpusRecord(journalRecord{Op: opSnapshot, Rev: 3, Snapshot: &journalSnapshot{
			Rev: 3, NextID: 2, Requests: []*Request{ckDone, rs},
		}}),
		corpusRecord(journalRecord{Op: opCreate, Rev: 4, NextID: 3, Req: corpusRequest(
			KindCheckpoint, 3, PhaseInProgress, Spec{Tenant: "alpha", Priority: 2})}),
	}
	buf := journal.AppendHeader(nil)
	for _, p := range records {
		buf = journal.AppendRecord(buf, p)
	}
	return buf
}

// journalCorpus deterministically generates the checked-in seed corpus for
// FuzzJournalReplay: the valid base image plus the crash and corruption
// shapes recovery must survive — truncations at and between record
// boundaries, bit flips, CRC-valid records whose payloads are semantic
// garbage (the "fail loudly" cases), and non-journal files. The generator is
// the source of truth; TestJournalCorpusCheckedIn fails if the files on disk
// drift (rerun with -regen-journal-corpus to refresh).
func journalCorpus() [][]byte {
	rng := rand.New(rand.NewSource(0x0DDC0DE))
	base := corpusBase()
	var out [][]byte
	add := func(b []byte) { out = append(out, b) }

	add(append([]byte(nil), base...)) // canonical anchor

	// Truncations: empty, partial header, mid-record, one byte short.
	for _, cut := range []int{0, 3, 8, 20, len(base) / 2, len(base) - 1} {
		add(append([]byte(nil), base[:cut]...))
	}
	// Bit flips anywhere (CRC territory) and specifically in the magic.
	for i := 0; i < 4; i++ {
		m := append([]byte(nil), base...)
		m[rng.Intn(len(m))] ^= 1 << uint(rng.Intn(8))
		add(m)
	}
	m := append([]byte(nil), base...)
	m[2] ^= 0xff
	add(m)

	// CRC-valid but semantically rotten records: framing accepts them, replay
	// must reject them loudly. Each is appended to a valid prefix.
	rotten := [][]byte{
		[]byte("{not json"),
		[]byte(`{"op":"teleport","rev":1}`),
		corpusRecord(journalRecord{Op: opCreate, Rev: 99, NextID: 1,
			Req: corpusRequest(KindCheckpoint, 1, PhasePending, Spec{Tenant: "alpha"})}), // rev gap
		corpusRecord(journalRecord{Op: opCreate, Rev: 1, NextID: 1,
			Req: corpusRequest(KindCheckpoint, 1, Phase("Limbo"), Spec{Tenant: "alpha"})}), // bad phase
		corpusRecord(journalRecord{Op: opCreate, Rev: 1, NextID: 7,
			Req: corpusRequest(KindCheckpoint, 1, PhasePending, Spec{Tenant: "alpha"})}), // id/next-id mismatch
		corpusRecord(journalRecord{Op: opStatus, Rev: 1,
			Req: corpusRequest(KindCheckpoint, 5, PhasePending, Spec{Tenant: "alpha"})}), // status for unknown id
		corpusRecord(journalRecord{Op: opCreate, Rev: 1, NextID: 1,
			Req: corpusRequest(KindRestore, 1, PhasePending, Spec{Tenant: "alpha"})}), // restore without nodes
	}
	for _, p := range rotten {
		add(journal.AppendRecord(journal.AppendHeader(nil), p))
	}
	// A duplicate create (id cr-3 already exists) appended to the full base,
	// and an empty record (unknown op) likewise.
	add(journal.AppendRecord(append([]byte(nil), base...),
		corpusRecord(journalRecord{Op: opCreate, Rev: 5, NextID: 4,
			Req: corpusRequest(KindCheckpoint, 3, PhasePending, Spec{Tenant: "alpha"})})))
	add(journal.AppendRecord(append([]byte(nil), base...), corpusRecord(journalRecord{})))

	// Not journals at all.
	add([]byte("DVDCJNL2-wrong-version"))
	g := make([]byte, 64)
	rng.Read(g)
	add(g)
	return out
}

func journalCorpusPath(i int) string {
	return filepath.Join(journalCorpusDir, fmt.Sprintf("crash-%03d", i))
}

// encodeJournalSeed renders one entry in the `go test fuzz v1` seed format.
func encodeJournalSeed(b []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n")
}

// decodeJournalSeed parses a single-[]byte v1 seed file.
func decodeJournalSeed(data []byte) ([]byte, error) {
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		return nil, fmt.Errorf("not a v1 corpus file")
	}
	body := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		return nil, fmt.Errorf("unquote corpus literal: %w", err)
	}
	return []byte(s), nil
}

// TestJournalCorpusCheckedIn pins the checked-in corpus to the generator.
func TestJournalCorpusCheckedIn(t *testing.T) {
	entries := journalCorpus()
	if *regenJournalCorpus {
		if err := os.MkdirAll(journalCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, e := range entries {
			if err := os.WriteFile(journalCorpusPath(i), encodeJournalSeed(e), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d corpus entries", len(entries))
		return
	}
	for i, e := range entries {
		got, err := os.ReadFile(journalCorpusPath(i))
		if err != nil {
			t.Fatalf("corpus entry %d missing (run go test -run TestJournalCorpusCheckedIn -regen-journal-corpus): %v", i, err)
		}
		if !bytes.Equal(got, encodeJournalSeed(e)) {
			t.Errorf("corpus entry %d drifted from generator", i)
		}
	}
}

// TestJournalCorpusBaseReplays anchors the corpus to the replay contract: the
// canonical base image must replay cleanly to the expected store.
func TestJournalCorpusBaseReplays(t *testing.T) {
	payloads, valid, err := journal.ScanBytes(corpusBase())
	if err != nil || valid != int64(len(corpusBase())) {
		t.Fatalf("base image not fully valid: %d/%d, %v", valid, len(corpusBase()), err)
	}
	img, err := replayRecords(payloads)
	if err != nil {
		t.Fatalf("base image rejected: %v", err)
	}
	if img.rev != 4 || img.nextID != 3 || len(img.order) != 3 {
		t.Fatalf("base image = rev %d nextID %d %d requests", img.rev, img.nextID, len(img.order))
	}
}

// checkReplayedImage asserts everything replay accepted is coherent: valid
// objects only, order/index agreement, sane counters.
func checkReplayedImage(t *testing.T, img *replayState) {
	t.Helper()
	if len(img.order) != len(img.byID) {
		t.Fatalf("order has %d ids, index has %d", len(img.order), len(img.byID))
	}
	for _, id := range img.order {
		r, ok := img.byID[id]
		if !ok {
			t.Fatalf("ordered id %q missing from index", id)
		}
		if err := validateStored(r); err != nil {
			t.Fatalf("replay accepted an invalid object: %v", err)
		}
		if r.ID != id {
			t.Fatalf("index id %q holds object %q", id, r.ID)
		}
		seq, _ := idSuffix(r)
		if seq > img.nextID {
			t.Fatalf("object %q outruns nextID %d", r.ID, img.nextID)
		}
	}
	if img.rev < int64(len(img.order)) {
		t.Fatalf("rev %d below %d objects (every object costs at least one revision)", img.rev, len(img.order))
	}
}

// FuzzJournalReplay feeds arbitrary bytes through the full recovery path:
// scan, replay, validate. It must never panic, and whatever it accepts must
// be a coherent prefix-consistent store of valid objects. Determinism is part
// of the contract: scanning the same bytes twice must agree.
func FuzzJournalReplay(f *testing.F) {
	for _, seed := range journalCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid, err := journal.ScanBytes(data)
		payloads2, valid2, err2 := journal.ScanBytes(data)
		if valid != valid2 || len(payloads) != len(payloads2) || (err == nil) != (err2 == nil) {
			t.Fatalf("ScanBytes is nondeterministic: (%d,%d,%v) vs (%d,%d,%v)",
				len(payloads), valid, err, len(payloads2), valid2, err2)
		}
		if err != nil {
			return // not a journal: refused before replay
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		img, err := replayRecords(payloads)
		if err != nil {
			return // fail-loudly path: corruption named, nothing loaded
		}
		checkReplayedImage(t, img)
	})
}
