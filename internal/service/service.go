package service

import (
	"fmt"
	"time"

	"dvdc/internal/obs"
)

// Options configures a Service.
type Options struct {
	// Quotas maps tenant -> quota; unnamed tenants get DefaultMaxActive (or
	// DefaultQuota when > 0).
	Quotas       map[string]Quota
	DefaultQuota int
	// Reconciler tuning.
	MaxRetries int
	Backoff    time.Duration
	// Observability (either may be nil).
	Tracer   *obs.Tracer
	Registry *obs.Registry
	// StateDir, when non-empty, backs the store with a durable journal there
	// (Open only): requests survive controller restarts and the reconciler
	// resumes whatever was in flight.
	StateDir string
	// CompactBytes and SyncBatch tune the journal (see DurableOptions).
	CompactBytes int64
	SyncBatch    int
}

// Service bundles the control plane: the object store, the admission gate,
// and the reconciler, plus the submit/watch entry points every caller (CLI,
// soak harness, HTTP API) shares.
type Service struct {
	Store      *Store
	Admission  *Admission
	Reconciler *Reconciler
	// Replay describes what Open recovered from the state dir (zero for a
	// memory-backed service).
	Replay ReplayInfo
	reg    *obs.Registry
}

// Open assembles a service over an executor, replaying opts.StateDir into the
// store when set (an empty StateDir yields the in-memory service New builds).
// Call Start to begin reconciling — which is also what resumes any request
// the previous controller left Pending, Scheduled, or InProgress.
func Open(exec Executor, opts Options) (*Service, error) {
	st := NewStore()
	var replay ReplayInfo
	if opts.StateDir != "" {
		var err error
		st, replay, err = OpenStore(opts.StateDir, DurableOptions{
			CompactBytes: opts.CompactBytes,
			SyncBatch:    opts.SyncBatch,
			Registry:     opts.Registry,
		})
		if err != nil {
			return nil, err
		}
	}
	adm := NewAdmission(opts.Quotas, opts.DefaultQuota)
	rec := NewReconciler(st, exec, ReconcilerOptions{
		MaxRetries: opts.MaxRetries,
		Backoff:    opts.Backoff,
		Tracer:     opts.Tracer,
		Registry:   opts.Registry,
	})
	return &Service{Store: st, Admission: adm, Reconciler: rec, Replay: replay, reg: opts.Registry}, nil
}

// New assembles a memory-backed service over an executor (use Open for a
// durable one). Call Start to begin reconciling.
func New(exec Executor, opts Options) *Service {
	opts.StateDir = ""
	svc, err := Open(exec, opts)
	if err != nil {
		// Unreachable: only the durable path can fail.
		panic(err)
	}
	return svc
}

// Start launches the reconciler loop.
func (s *Service) Start() {
	go s.Reconciler.Run()
}

// Stop halts the reconciler (after any in-flight attempt), quiesces the
// executor, and closes the store's journal so another controller can open the
// state dir. Idempotent.
func (s *Service) Stop() {
	s.Reconciler.Stop()
	s.Store.Close() //nolint:errcheck // appends are already synced per batch; nothing actionable here
}

// Submit admits and stores one request. The returned copy carries the
// assigned id; a *QuotaError means the tenant is at its cap.
func (s *Service) Submit(kind Kind, spec Spec) (*Request, error) {
	if err := s.Admission.Admit(s.Store, kind, spec); err != nil {
		if s.reg != nil {
			reason := "invalid"
			if _, ok := err.(*QuotaError); ok {
				reason = "quota"
			}
			s.reg.Counter("dvdc_service_admission_rejected_total",
				"tenant", spec.Tenant, "reason", reason).Inc()
		}
		return nil, err
	}
	req, err := s.Store.Create(kind, spec)
	if err != nil {
		return nil, err
	}
	if s.reg != nil {
		s.reg.Counter("dvdc_service_requests_total",
			"tenant", spec.Tenant, "kind", string(kind)).Inc()
	}
	return req, nil
}

// WaitTerminal blocks until the request reaches a terminal phase or the
// timeout passes, returning the final copy. A timeout returns the last
// observed copy and an error naming its stuck phase.
func (s *Service) WaitTerminal(id string, timeout time.Duration) (*Request, error) {
	deadline := time.Now().Add(timeout)
	rev := int64(-1)
	for {
		req, ok := s.Store.Get(id)
		if !ok {
			return nil, fmt.Errorf("service: no request %q", id)
		}
		if req.Terminal() {
			return req, nil
		}
		if !time.Now().Before(deadline) {
			return req, fmt.Errorf("service: request %s stuck in phase %s after %v", id, req.Status.Phase, timeout)
		}
		rev = s.Store.Wait(rev, deadline)
	}
}
