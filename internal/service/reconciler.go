package service

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dvdc/internal/obs"
)

// Executor is the reconciler's seam to the runtime: the two protocol
// operations a request can demand, each taking the reconcile span's context
// so the round's span tree roots under the reconcile attempt that drove it.
// Implementations execute synchronously and are called from exactly one
// goroutine at a time — the reconciler serializes execution because the
// underlying coordinator runs one protocol round at a time.
type Executor interface {
	// ExecuteCheckpoint runs steps workload steps (0 = none) and one
	// two-phase checkpoint round, returning the committed epoch. An error
	// implementing CasualtyError means the round committed but lost the
	// named nodes mid-commit; any other error means the round did not
	// commit and may be retried.
	ExecuteCheckpoint(ctx obs.SpanContext, steps uint64) (epoch uint64, err error)
	// ExecuteRestore drives the recovery protocol over the named failed
	// nodes, returning the epoch the recovery certified. Nodes already
	// healthy are skipped — restores are level-triggered, so re-reconciling
	// an already-converged restore is a cheap no-op.
	ExecuteRestore(ctx obs.SpanContext, nodes []int) (epoch uint64, err error)
}

// CasualtyError classifies executor errors that name mid-round node deaths
// (the runtime's *PartialCommitError satisfies it): the epoch advanced, the
// nodes are gone, and the reconciler must drive recovery before the request
// can converge.
type CasualtyError interface {
	error
	CasualtyNodes() []int
}

// Quiescer is optionally implemented by executors that can abort staged
// protocol state; the reconciler calls it once on Stop so a request
// interrupted between attempts leaves no staged captures behind.
type Quiescer interface {
	Quiesce() error
}

// Reconciler defaults.
const (
	// DefaultMaxRetries is the execution attempts per request before Failed.
	DefaultMaxRetries = 4
	// DefaultBackoff is the base retry delay, doubled per failed attempt.
	DefaultBackoff = 100 * time.Millisecond
)

// Reconciler drives every stored request to a terminal phase: it promotes
// Pending objects into the priority queue, executes the queue one request at
// a time (priority descending, submission order within a priority), retries
// failed attempts with exponential backoff up to the retry budget, and
// recovers mid-round casualties inline. It is level-triggered: each pass
// re-reads the store and acts on what it finds, so a crash-restart of the
// loop (or a request re-submitted after a partial run) converges the same
// way a clean run does.
type Reconciler struct {
	store      *Store
	exec       Executor
	tracer     *obs.Tracer
	reg        *obs.Registry
	maxRetries int
	backoff    time.Duration

	nextAttempt map[string]time.Time // backoff deadlines by request id

	stop chan struct{}
	done chan struct{}
}

// ReconcilerOptions tunes a reconciler; the zero value picks defaults.
type ReconcilerOptions struct {
	MaxRetries int           // attempts per request before Failed (<=0 = DefaultMaxRetries)
	Backoff    time.Duration // base retry delay (<=0 = DefaultBackoff)
	Tracer     *obs.Tracer   // reconcile spans (nil = untraced)
	Registry   *obs.Registry // dvdc_service_* metrics (nil = unmetered)
}

// NewReconciler wires a reconciler to a store and an executor. Call Run (or
// Service.Start) to begin reconciling.
func NewReconciler(store *Store, exec Executor, opts ReconcilerOptions) *Reconciler {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	return &Reconciler{
		store:       store,
		exec:        exec,
		tracer:      opts.Tracer,
		reg:         opts.Registry,
		maxRetries:  opts.MaxRetries,
		backoff:     opts.Backoff,
		nextAttempt: map[string]time.Time{},
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// Run reconciles until Stop, blocking the calling goroutine.
func (r *Reconciler) Run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		progressed := r.reconcileOnce()
		r.exportPhases()
		if progressed {
			continue
		}
		// Nothing ready: sleep until the store changes, the earliest backoff
		// deadline passes, or Stop.
		wait := time.Hour
		now := time.Now()
		for _, t := range r.nextAttempt {
			if d := t.Sub(now); d < wait {
				wait = d
			}
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		timer := time.NewTimer(wait)
		select {
		case <-r.stop:
			timer.Stop()
			return
		case <-r.store.Changed():
			timer.Stop()
		case <-timer.C:
		}
	}
}

// Stop halts the loop after the in-flight attempt (if any) finishes, then
// quiesces the executor so no staged protocol state outlives the service.
func (r *Reconciler) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
	if q, ok := r.exec.(Quiescer); ok {
		q.Quiesce() //nolint:errcheck // best effort: the cluster may already be gone
	}
}

// reconcileOnce makes one pass: promote Pending requests, re-queue orphaned
// InProgress ones, then execute the best ready Scheduled request. Returns
// whether it did anything.
func (r *Reconciler) reconcileOnce() bool {
	reqs := r.store.List("")
	progressed := false
	for _, req := range reqs {
		switch req.Status.Phase {
		case PhasePending:
			if r.transition(req.ID, PhaseScheduled, func(now time.Time, req *Request) {
				req.Status.setCondition(now, CondScheduled, true, "Queued", "entered the priority queue")
			}) == nil {
				progressed = true
			}
		case PhaseInProgress:
			// Only a dead controller leaves InProgress behind: this loop is
			// the sole phase writer and holds InProgress exactly for the
			// duration of a synchronous attempt, so finding it at the top of a
			// pass means the attempt's process is gone. Re-queue and re-drive;
			// the executor is level-triggered, so an attempt that actually
			// finished before the crash converges as a cheap no-op.
			if r.transition(req.ID, PhaseScheduled, func(now time.Time, req *Request) {
				req.Status.setCondition(now, CondScheduled, true, "Queued", "entered the priority queue")
				req.Status.setCondition(now, CondResumed, true, "ControllerRestart",
					"found in flight at controller start; re-driving the attempt")
			}) == nil {
				progressed = true
				if r.reg != nil {
					r.reg.Counter("dvdc_service_resumes_total", "kind", string(req.Kind)).Inc()
				}
			}
		}
	}
	if pick := r.pick(); pick != nil {
		return r.execute(pick) || progressed
	}
	return progressed
}

// pick selects the next Scheduled request whose backoff deadline has passed:
// highest priority first, submission order within a priority.
func (r *Reconciler) pick() *Request {
	now := time.Now()
	var ready []*Request
	for _, req := range r.store.List("") {
		if req.Status.Phase != PhaseScheduled && req.Status.Phase != PhasePending {
			continue
		}
		if t, ok := r.nextAttempt[req.ID]; ok && now.Before(t) {
			continue
		}
		ready = append(ready, req)
	}
	if len(ready) == 0 {
		return nil
	}
	// List returns submission order; a stable sort by priority preserves it
	// within each priority class.
	sort.SliceStable(ready, func(i, j int) bool {
		return ready[i].Spec.Priority > ready[j].Spec.Priority
	})
	return ready[0]
}

// execute runs one attempt of one request and lands the outcome in status,
// reporting whether it made progress (false when the store refused the
// InProgress write, so the loop parks rather than re-picking forever).
func (r *Reconciler) execute(req *Request) bool {
	attempt := req.Status.Retries + 1
	// Root the attempt's trace before the InProgress write so the journaled
	// status already links to it: a controller killed mid-attempt replays a
	// request that still names the trace its rounds ran under.
	span := r.tracer.Start(obs.SpanContext{}, "reconcile", "coord")
	span.SetAttr("request", req.ID)
	span.SetAttr("kind", string(req.Kind))
	span.SetAttr("tenant", req.Spec.Tenant)
	span.SetAttr("attempt", fmt.Sprintf("%d", attempt))
	ctx := span.ContextOr(obs.SpanContext{})

	if err := r.transition(req.ID, PhaseInProgress, func(now time.Time, req *Request) {
		req.Status.ObservedGeneration = req.Generation
		req.Status.setCondition(now, CondExecuting, true, "Attempt",
			fmt.Sprintf("attempt %d of %d", attempt, r.maxRetries))
		if span.TraceID() != 0 {
			req.Status.addTraceID(fmt.Sprintf("%016x", span.TraceID()))
		}
	}); err != nil {
		span.FinishErr(err)
		return false
	}

	t0 := time.Now()
	var epoch uint64
	var err error
	switch req.Kind {
	case KindRestore:
		epoch, err = r.exec.ExecuteRestore(ctx, req.Spec.Nodes)
	default:
		epoch, err = r.exec.ExecuteCheckpoint(ctx, req.Spec.Steps)
	}
	if r.reg != nil {
		r.reg.Histogram("dvdc_service_reconcile_seconds", obs.LatencyBuckets(),
			"kind", string(req.Kind)).Observe(time.Since(t0).Seconds())
	}

	// A checkpoint that committed but lost nodes mid-commit converges by
	// recovering the casualties inline: the epoch already advanced, so the
	// tenant's request is satisfiable — the cluster just owes itself
	// redundancy first.
	var casualty CasualtyError
	if err != nil && errors.As(err, &casualty) {
		nodes := append([]int(nil), casualty.CasualtyNodes()...)
		span.Event("partial-commit", "nodes", fmt.Sprintf("%v", nodes))
		repoch, rerr := r.exec.ExecuteRestore(ctx, nodes)
		if rerr == nil {
			r.terminal(req.ID, PhaseSucceeded, repoch, nodes,
				fmt.Sprintf("committed epoch %d; recovered mid-commit casualties %v", epochOr(repoch, epoch), nodes))
			span.SetAttr("outcome", "succeeded-after-recovery")
			span.Finish()
			r.count("succeeded", req)
			return true
		}
		r.terminal(req.ID, PhaseFailed, epoch, nodes,
			fmt.Sprintf("committed epoch %d but recovery of casualties %v failed: %v", epoch, nodes, rerr))
		span.SetAttr("outcome", "failed")
		span.FinishErr(rerr)
		r.count("failed", req)
		return true
	}

	if err == nil {
		r.terminal(req.ID, PhaseSucceeded, epoch, nil, "")
		span.SetAttr("outcome", "succeeded")
		span.Finish()
		r.count("succeeded", req)
		return true
	}

	// Plain failure: the round did not commit (or the restore did not
	// converge). Retry with exponential backoff while budget remains.
	if attempt < r.maxRetries {
		delay := r.backoff << (attempt - 1)
		r.nextAttempt[req.ID] = time.Now().Add(delay)
		r.transition(req.ID, PhaseScheduled, func(now time.Time, req *Request) {
			req.Status.Retries = attempt
			req.Status.Message = fmt.Sprintf("attempt %d failed: %v (retrying in %v)", attempt, err, delay)
			req.Status.setCondition(now, CondRetrying, true, "Backoff", req.Status.Message)
		})
		span.SetAttr("outcome", "retry")
		span.FinishErr(err)
		r.count("retried", req)
		return true
	}
	r.terminal(req.ID, PhaseFailed, 0, nil,
		fmt.Sprintf("gave up after %d attempts: %v", attempt, err))
	span.SetAttr("outcome", "failed")
	span.FinishErr(err)
	r.count("failed", req)
	return true
}

// epochOr returns a if nonzero, else b.
func epochOr(a, b uint64) uint64 {
	if a != 0 {
		return a
	}
	return b
}

// transition moves a request to a phase, counting the transition. A non-nil
// error means the store refused the write (a poisoned journal): the caller
// must treat the pass as not-progressed so the loop parks instead of spinning
// on a store it can no longer move.
func (r *Reconciler) transition(id string, phase Phase, mutate func(now time.Time, req *Request)) error {
	_, err := r.store.UpdateStatus(id, func(now time.Time, req *Request) {
		req.Status.Phase = phase
		if mutate != nil {
			mutate(now, req)
		}
	})
	if err != nil {
		return err
	}
	if r.reg != nil {
		r.reg.Counter("dvdc_service_transitions_total", "phase", string(phase)).Inc()
	}
	return nil
}

// terminal lands a request in Succeeded or Failed.
func (r *Reconciler) terminal(id string, phase Phase, epoch uint64, casualties []int, message string) {
	delete(r.nextAttempt, id)
	r.transition(id, phase, func(now time.Time, req *Request) {
		req.Status.ObservedGeneration = req.Generation
		if epoch != 0 {
			req.Status.Epoch = epoch
		}
		if len(casualties) > 0 {
			req.Status.Casualties = append([]int(nil), casualties...)
			req.Status.setCondition(now, CondRecovered, phase == PhaseSucceeded,
				"Casualties", fmt.Sprintf("nodes %v lost mid-round", casualties))
		}
		if message != "" {
			req.Status.Message = message
		}
		req.Status.setCondition(now, CondComplete, phase == PhaseSucceeded, string(phase), message)
	})
}

// count tallies one finished attempt by result, kind, and tenant.
func (r *Reconciler) count(result string, req *Request) {
	if r.reg == nil {
		return
	}
	r.reg.Counter("dvdc_service_reconciles_total", "result", result, "kind", string(req.Kind)).Inc()
	if result == "retried" {
		r.reg.Counter("dvdc_service_retries_total", "tenant", req.Spec.Tenant).Inc()
	}
}

// exportPhases refreshes the per-phase population gauges.
func (r *Reconciler) exportPhases() {
	if r.reg == nil {
		return
	}
	counts := r.store.PhaseCounts()
	for _, p := range []Phase{PhasePending, PhaseScheduled, PhaseInProgress, PhaseSucceeded, PhaseFailed} {
		r.reg.Gauge("dvdc_service_requests", "phase", string(p)).Set(int64(counts[p]))
	}
}
